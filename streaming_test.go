package ancrfid_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"github.com/ancrfid/ancrfid"
)

// streamingHash runs one campaign cell with the given Stream setting and
// hashes everything observable about it — the aggregated Result, the
// byte-exact JSONL trace, and the metrics-registry dump — mirroring the
// differential golden harness. Streaming is a memory-management mode only
// (retire identified tags, recycle resolved collision recordings), so the
// hash must not depend on cfg.Stream.
func streamingHash(t *testing.T, proto, channel string, workers int, stream bool) string {
	t.Helper()
	p, err := ancrfid.ByName(proto)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ancrfid.SimConfig{
		Tags: 200, Runs: 2, Seed: 7, Workers: workers, PAckLoss: 0.05, Stream: stream,
	}
	if channel == "signal" {
		cfg.Tags = 25
		cfg.NewChannel = func(r *ancrfid.RNG) ancrfid.Channel {
			return ancrfid.NewSignalChannel(ancrfid.SignalChannelConfig{
				NoiseSigma: 0.03,
				MaxCancel:  2,
			}, r)
		}
	}
	var trace bytes.Buffer
	jsonl := ancrfid.NewJSONLTracer(&trace)
	reg := ancrfid.NewRegistry()
	cfg.Tracer = jsonl
	cfg.Metrics = reg
	res, err := ancrfid.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Err(); err != nil {
		t.Fatalf("trace write: %v", err)
	}
	var dump strings.Builder
	if _, err := reg.WriteTo(&dump); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%#v\n", res)
	h.Write(trace.Bytes())
	h.Write([]byte(dump.String()))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestStreamingBitIdentical proves the streaming contract: for populations
// that fit in memory, Stream=true produces the same Result, the same trace
// bytes and the same registry contents as Stream=false, for the ANC
// protocols (which exercise retirement, record spill and arena recycling)
// and a non-ANC control, over both channels and both campaign paths.
func TestStreamingBitIdentical(t *testing.T) {
	for _, proto := range []string{"FCAT-2", "SCAT-2", "DFSA"} {
		for _, channel := range []string{"abstract", "signal"} {
			for _, workers := range []int{1, 8} {
				proto, channel, workers := proto, channel, workers
				name := fmt.Sprintf("%s/%s/workers=%d", proto, channel, workers)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					plain := streamingHash(t, proto, channel, workers, false)
					stream := streamingHash(t, proto, channel, workers, true)
					if plain != stream {
						t.Errorf("streaming changed observable behaviour:\n plain  %s\n stream %s", plain, stream)
					}
				})
			}
		}
	}
}

// megaNTags is the population of the streaming smoke campaign: the
// "mega-N" scale from ISSUE 8 where per-tag state dominates memory and
// the paper's O(N) structures must be actively retired to stay bounded.
const megaNTags = 1_000_000

// megaNHeapCeiling is the live-heap budget of the mega-N campaign.
// Calibrated on the reference machine: streaming settles at ~312 MB
// (population, known-tag map and retained arenas), while non-streaming
// peaks at ~425 MB because every resolved collision recording stays
// pinned in the record store. 380 MB therefore passes streaming with
// headroom and fails a broken retire/spill path.
const megaNHeapCeiling = 380 << 20

// TestStreamingCampaignMegaN runs a full 10^6-tag FCAT campaign in
// streaming mode and asserts it completes with bounded live memory and
// exact accounting: every tag identified exactly once, either directly or
// via ANC resolution. This is the CI smoke test for the mega-N path; it
// takes ~12 s on a warm machine.
func TestStreamingCampaignMegaN(t *testing.T) {
	if testing.Short() {
		t.Skip("mega-N campaign skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("mega-N campaign skipped under the race detector")
	}
	var liveHeap uint64
	cfg := ancrfid.SimConfig{
		Tags:    megaNTags,
		Runs:    1,
		Seed:    42,
		Workers: 1,
		Stream:  true,
		// Progress fires inside the runner after the run completes, while
		// the campaign scratch (population, channel arenas, session cores)
		// is still live — the steady-state footprint, not the post-return
		// garbage-collected one.
		Progress: func(run int, m ancrfid.Metrics, err error) {
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			liveHeap = ms.HeapAlloc
		},
	}
	res, err := ancrfid.Run(ancrfid.NewFCAT(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(res.Runs))
	}
	m := res.Runs[0]
	if got := m.DirectIDs + m.ResolvedIDs; got != megaNTags {
		t.Errorf("identified %d of %d tags (direct %d, resolved %d)",
			got, megaNTags, m.DirectIDs, m.ResolvedIDs)
	}
	if m.ResolvedIDs == 0 {
		t.Error("no ANC resolutions at mega-N scale; collision recovery path idle")
	}
	if liveHeap == 0 {
		t.Fatal("progress callback never fired")
	}
	if liveHeap > megaNHeapCeiling {
		t.Errorf("live heap %.1f MB exceeds the %d MB streaming ceiling",
			float64(liveHeap)/(1<<20), megaNHeapCeiling>>20)
	}
	t.Logf("mega-N: %d slots, %d direct + %d resolved, live heap %.1f MB",
		m.EmptySlots+m.SingletonSlots+m.CollisionSlots,
		m.DirectIDs, m.ResolvedIDs, float64(liveHeap)/(1<<20))
}

// BenchmarkCampaignN measures whole-campaign throughput at mega-N scale in
// streaming mode. Wired into CI with -benchtime=1x so the 10^6-tag FCAT
// inventory is exercised end to end on every merge without dominating the
// bench job.
func BenchmarkCampaignN(b *testing.B) {
	b.Run("N=1e6", func(b *testing.B) {
		cfg := ancrfid.SimConfig{
			Tags: megaNTags, Runs: 1, Seed: 42, Workers: 1, Stream: true,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ancrfid.Run(ancrfid.NewFCAT(2), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if got := res.Runs[0].DirectIDs + res.Runs[0].ResolvedIDs; got != megaNTags {
				b.Fatalf("identified %d of %d tags", got, megaNTags)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(megaNTags)*float64(b.N)/b.Elapsed().Seconds(), "tags/sec")
	})
}
