package ancrfid_test

import (
	"math"
	"strings"
	"testing"

	"github.com/ancrfid/ancrfid"
)

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"FCAT-2": "FCAT-2",
		"fcat-3": "FCAT-3",
		"FCAT":   "FCAT-2",
		"SCAT-4": "SCAT-4",
		"dfsa":   "DFSA",
		"EDFSA":  "EDFSA",
		"abs":    "ABS",
		"AQS":    "AQS",
	} {
		p, err := ancrfid.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("ByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "XYZ", "FCAT-x", "FCAT-0", "FCAT-99"} {
		if _, err := ancrfid.ByName(bad); err == nil {
			t.Errorf("ByName(%q) should fail", bad)
		}
	}
}

// TestHeadlineClaim verifies the paper's abstract: FCAT-2 improves reading
// throughput over the best existing protocols by roughly half (51.1% ~
// 70.6% across baselines in the paper; we accept 40-75% for a small-N
// Monte-Carlo).
func TestHeadlineClaim(t *testing.T) {
	cfg := ancrfid.SimConfig{Tags: 4000, Runs: 8, Seed: 2024}
	fcat, err := ancrfid.Run(ancrfid.NewFCAT(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []ancrfid.Protocol{
		ancrfid.NewDFSA(), ancrfid.NewEDFSA(), ancrfid.NewABS(), ancrfid.NewAQS(),
	} {
		bres, err := ancrfid.Run(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gain := fcat.Throughput.Mean/bres.Throughput.Mean - 1
		if gain < 0.40 || gain > 0.80 {
			t.Errorf("FCAT-2 gain over %s = %.1f%%, want ~51-71%%",
				base.Name(), gain*100)
		}
	}
}

// TestLambdaOrdering verifies Table I's ordering and the diminishing
// returns of larger lambda (Section VI-A).
func TestLambdaOrdering(t *testing.T) {
	cfg := ancrfid.SimConfig{Tags: 5000, Runs: 6, Seed: 7}
	tput := make(map[int]float64)
	for _, lambda := range []int{2, 3, 4} {
		cfg.Lambda = lambda
		res, err := ancrfid.Run(ancrfid.NewFCAT(lambda), cfg)
		if err != nil {
			t.Fatal(err)
		}
		tput[lambda] = res.Throughput.Mean
	}
	if !(tput[2] < tput[3] && tput[3] < tput[4]) {
		t.Fatalf("throughput not increasing with lambda: %v", tput)
	}
	if gain34 := tput[4] - tput[3]; gain34 >= tput[3]-tput[2] {
		t.Errorf("improvement should diminish: 2->3 %.1f, 3->4 %.1f",
			tput[3]-tput[2], gain34)
	}
}

// TestOmegaUnimodal spot-checks Fig. 5: throughput at the computed optimum
// beats clearly-off omegas on both sides.
func TestOmegaUnimodal(t *testing.T) {
	measure := func(w float64) float64 {
		p := ancrfid.NewFCATWith(ancrfid.FCATConfig{Lambda: 2, Omega: w})
		res, err := ancrfid.Run(p, ancrfid.SimConfig{Tags: 3000, Runs: 5, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput.Mean
	}
	low, opt, high := measure(0.5), measure(ancrfid.OptimalOmega(2)), measure(2.8)
	if !(opt > low && opt > high) {
		t.Fatalf("omega sweep not unimodal around the optimum: %.1f / %.1f / %.1f", low, opt, high)
	}
}

func TestTxModelsAgreeOnThroughput(t *testing.T) {
	base := ancrfid.SimConfig{Tags: 2000, Runs: 5, Seed: 4}
	hash := base
	hash.TxModel = ancrfid.TxHash
	a, err := ancrfid.Run(ancrfid.NewFCAT(2), base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ancrfid.Run(ancrfid.NewFCAT(2), hash)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a.Throughput.Mean-b.Throughput.Mean) / a.Throughput.Mean; rel > 0.05 {
		t.Fatalf("binomial (%v) and hash (%v) models differ by %.1f%%",
			a.Throughput.Mean, b.Throughput.Mean, rel*100)
	}
}

// TestSignalChannelEndToEnd runs the full FCAT protocol over real MSK
// waveform mixing and cancellation — the substitution DESIGN.md promises —
// and checks that collision records actually contribute IDs.
func TestSignalChannelEndToEnd(t *testing.T) {
	cfg := ancrfid.SimConfig{
		Tags: 150, Runs: 2, Seed: 5,
		NewChannel: func(r *ancrfid.RNG) ancrfid.Channel {
			return ancrfid.NewSignalChannel(ancrfid.SignalChannelConfig{MaxCancel: 2}, r)
		},
	}
	res, err := ancrfid.Run(ancrfid.NewFCAT(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Runs {
		if m.Identified() != 150 {
			t.Fatalf("identified %d of 150 over the signal channel", m.Identified())
		}
	}
	if res.ResolvedIDs.Mean < 10 {
		t.Fatalf("only %.0f IDs resolved via real cancellation", res.ResolvedIDs.Mean)
	}
}

func TestBoundsFacade(t *testing.T) {
	tm := ancrfid.ICodeTiming()
	if a := ancrfid.AlohaBound(tm); math.Abs(a-131.7) > 0.2 {
		t.Errorf("ALOHA bound %v", a)
	}
	if b := ancrfid.ANCBound(tm, 2); math.Abs(b-210.1) > 0.3 {
		t.Errorf("ANC bound %v", b)
	}
	if w := ancrfid.OptimalOmega(3); math.Abs(w-1.817) > 0.001 {
		t.Errorf("optimal omega %v", w)
	}
}

func TestPopulationFacade(t *testing.T) {
	r := ancrfid.NewRNG(1)
	ids := ancrfid.Population(r, 100)
	if len(ids) != 100 {
		t.Fatalf("population size %d", len(ids))
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		s := id.String()
		if seen[s] {
			t.Fatal("duplicate ID")
		}
		seen[s] = true
		if !strings.Contains(s, "-") {
			t.Fatalf("unexpected ID format %q", s)
		}
	}
}

// TestSCATVersusFCAT verifies the motivation for FCAT (Section V-A): the
// framed protocol's lower advertisement overhead yields strictly better
// throughput at the same lambda.
func TestSCATVersusFCAT(t *testing.T) {
	cfg := ancrfid.SimConfig{Tags: 3000, Runs: 5, Seed: 6}
	s, err := ancrfid.Run(ancrfid.NewSCAT(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ancrfid.Run(ancrfid.NewFCAT(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Throughput.Mean <= s.Throughput.Mean {
		t.Fatalf("FCAT (%v) should beat SCAT (%v)", f.Throughput.Mean, s.Throughput.Mean)
	}
}

// TestFrameSizeStability spot-checks Fig. 6: f = 30 and f = 100 perform
// about the same, while f = 2 is clearly worse (advertisement overhead).
func TestFrameSizeStability(t *testing.T) {
	measure := func(f int) float64 {
		p := ancrfid.NewFCATWith(ancrfid.FCATConfig{Lambda: 2, FrameSize: f})
		res, err := ancrfid.Run(p, ancrfid.SimConfig{Tags: 3000, Runs: 5, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput.Mean
	}
	t30, t100, t2 := measure(30), measure(100), measure(2)
	if rel := math.Abs(t30-t100) / t30; rel > 0.04 {
		t.Errorf("f=30 (%v) and f=100 (%v) differ by %.1f%%", t30, t100, rel*100)
	}
	if t2 >= t30 {
		t.Errorf("f=2 (%v) should underperform f=30 (%v)", t2, t30)
	}
}

// TestFCAT5Diminishing reproduces the paper's FCAT-5 remark (Section
// VI-A): at N = 10000 it reads 270.9 tags/s, "only slightly better" than
// FCAT-4's 265.1 — the margin that justifies keeping lambda small.
func TestFCAT5Diminishing(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-tag campaign")
	}
	measure := func(lambda int) float64 {
		res, err := ancrfid.Run(ancrfid.NewFCAT(lambda), ancrfid.SimConfig{
			Tags: 10000, Runs: 5, Seed: 9, Lambda: lambda,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput.Mean
	}
	t4, t5 := measure(4), measure(5)
	if t5 <= t4 {
		t.Fatalf("FCAT-5 (%v) should edge out FCAT-4 (%v)", t5, t4)
	}
	if gain := t5/t4 - 1; gain > 0.05 {
		t.Fatalf("FCAT-5 gain %.1f%% too large; the paper reports ~2%%", gain*100)
	}
	t.Logf("FCAT-4 %.1f, FCAT-5 %.1f (paper: 265.1, 270.9)", t4, t5)
}

// TestEnergyOrdering checks the energy axis (paper reference [14]): tree
// protocols make each tag transmit at every level of its root path, an
// order of magnitude more than the ALOHA family.
func TestEnergyOrdering(t *testing.T) {
	cfg := ancrfid.SimConfig{Tags: 2000, Runs: 3, Seed: 13}
	perTag := func(p ancrfid.Protocol) float64 {
		res, err := ancrfid.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, m := range res.Runs {
			sum += m.TransmissionsPerTag()
		}
		return sum / float64(len(res.Runs))
	}
	dfsa := perTag(ancrfid.NewDFSA())
	fcat := perTag(ancrfid.NewFCAT(2))
	abs := perTag(ancrfid.NewABS())
	if dfsa < 2 || dfsa > 4 {
		t.Errorf("DFSA tx/tag %v, want ~e", dfsa)
	}
	if fcat < 2 || fcat > 5 {
		t.Errorf("FCAT tx/tag %v, want a few", fcat)
	}
	// ABS: ~log2(N) transmissions per tag.
	if abs < 8 {
		t.Errorf("ABS tx/tag %v, want ~log2(N)", abs)
	}
	if abs < 2.5*fcat {
		t.Errorf("tree energy should dwarf ALOHA-family: ABS %v vs FCAT %v", abs, fcat)
	}
}
