package ancrfid_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid"
)

// sessionEnv builds one deterministic single-run environment.
func sessionEnv(chanKind string, seed uint64) *ancrfid.Env {
	r := ancrfid.NewRNG(seed)
	tags := 60
	if chanKind == "signal" {
		tags = 20
	}
	pop := ancrfid.Population(r, tags)
	var ch ancrfid.Channel
	if chanKind == "signal" {
		ch = ancrfid.NewSignalChannel(ancrfid.SignalChannelConfig{NoiseSigma: 0.03, MaxCancel: 2}, r)
	} else {
		ch = ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{Lambda: 2}, r)
	}
	return &ancrfid.Env{RNG: r, Tags: pop, Channel: ch, Timing: ancrfid.ICodeTiming()}
}

// driveToDone steps the session until it reports done, collecting nothing;
// the caller inspects Metrics and the Env tracer.
func driveToDone(t *testing.T, s ancrfid.Session) {
	t.Helper()
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatalf("%s: %v", s.Protocol(), err)
		}
		if done {
			return
		}
	}
}

// TestSessionCheckpointResume proves the checkpoint contract for every
// protocol over both channels: snapshotting mid-run is side-effect free,
// and restoring rewinds the session (RNG and channel state included) so
// the replayed remainder is bit-identical — same metrics, same trace
// bytes — and a checkpoint can be restored more than once.
func TestSessionCheckpointResume(t *testing.T) {
	for _, proto := range allProtocols {
		for _, chanKind := range []string{"abstract", "signal"} {
			t.Run(fmt.Sprintf("%s/%s", proto, chanKind), func(t *testing.T) {
				p, err := ancrfid.ByName(proto)
				if err != nil {
					t.Fatal(err)
				}
				sp, ok := ancrfid.AsSession(p)
				if !ok {
					t.Fatalf("%s does not implement SessionProtocol", proto)
				}

				env := sessionEnv(chanKind, 17)
				s := sp.Begin(env)
				for i := 0; i < 12; i++ {
					if done, err := s.Step(); err != nil {
						t.Fatal(err)
					} else if done {
						break
					}
				}
				cp, err := s.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if cp.Protocol() != p.Name() {
					t.Fatalf("checkpoint names %q, want %q", cp.Protocol(), p.Name())
				}

				var traceA bytes.Buffer
				env.Tracer = ancrfid.NewJSONLTracer(&traceA)
				driveToDone(t, s)
				mA := s.Metrics()

				for replay := 0; replay < 2; replay++ {
					if err := s.Restore(cp); err != nil {
						t.Fatalf("restore %d: %v", replay, err)
					}
					var traceB bytes.Buffer
					env.Tracer = ancrfid.NewJSONLTracer(&traceB)
					driveToDone(t, s)
					if mB := s.Metrics(); mB != mA {
						t.Fatalf("replay %d diverged:\n got %+v\nwant %+v", replay, mB, mA)
					}
					if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
						t.Fatalf("replay %d produced a different trace stream", replay)
					}
				}
			})
		}
	}
}

// TestSessionCheckpointMismatch checks every cross-protocol restore is
// rejected with ErrCheckpointMismatch, and that the rejection never
// half-applies: the victim session continues bit-identically to an
// undisturbed twin afterwards.
func TestSessionCheckpointMismatch(t *testing.T) {
	for _, from := range allProtocols {
		for _, to := range allProtocols {
			if from == to {
				continue
			}
			t.Run(from+"->"+to, func(t *testing.T) {
				fp, err := ancrfid.ByName(from)
				if err != nil {
					t.Fatal(err)
				}
				fsp, _ := ancrfid.AsSession(fp)
				donor := fsp.Begin(sessionEnv("abstract", 1))
				cp, err := donor.Snapshot()
				if err != nil {
					t.Fatal(err)
				}

				mk := func() ancrfid.Session {
					tp, err := ancrfid.ByName(to)
					if err != nil {
						t.Fatal(err)
					}
					tsp, _ := ancrfid.AsSession(tp)
					s := tsp.Begin(sessionEnv("abstract", 2))
					for i := 0; i < 5; i++ {
						if _, err := s.Step(); err != nil {
							t.Fatal(err)
						}
					}
					return s
				}
				victim, control := mk(), mk()
				if err := victim.Restore(cp); err != ancrfid.ErrCheckpointMismatch {
					t.Fatalf("restoring a %s checkpoint into %s: want ErrCheckpointMismatch, got %v",
						from, to, err)
				}
				driveToDone(t, victim)
				driveToDone(t, control)
				if victim.Metrics() != control.Metrics() {
					t.Fatalf("rejected restore perturbed the session:\nvictim  %+v\ncontrol %+v",
						victim.Metrics(), control.Metrics())
				}
			})
		}
	}
}

// TestDynamicFCATContinuousInventory is the acceptance scenario: FCAT
// under Poisson arrivals at >= 50 tags/s over >= 10 s of simulated time
// completes with every admitted tag identified or explicitly still-active
// at cutoff.
func TestDynamicFCATContinuousInventory(t *testing.T) {
	sp, ok := ancrfid.AsSession(ancrfid.NewFCAT(2))
	if !ok {
		t.Fatal("FCAT does not implement SessionProtocol")
	}
	res, err := ancrfid.RunDynamic(sp, ancrfid.DynamicSimConfig{
		Config: ancrfid.SimConfig{Tags: 20, Runs: 3, Seed: 9, Workers: 4},
		Workload: ancrfid.WorkloadConfig{
			Duration:    12 * time.Second,
			ArrivalRate: 55,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range res.Runs {
		if rep.Duration < 12*time.Second {
			t.Fatalf("run %d stopped at %v, before the horizon", i, rep.Duration)
		}
		// Expect roughly rate*duration arrivals; well below that means the
		// schedule stalled.
		if rep.Admitted < 400 {
			t.Fatalf("run %d admitted only %d tags at 55/s over 12s", i, rep.Admitted)
		}
		if rep.DepartedUnread != 0 {
			t.Fatalf("run %d reported %d missed reads with no departures configured", i, rep.DepartedUnread)
		}
		if rep.Identified+rep.ActiveUnread != rep.Admitted {
			t.Fatalf("run %d accounting leak: identified %d + still-active %d != admitted %d",
				i, rep.Identified, rep.ActiveUnread, rep.Admitted)
		}
		// The reader must keep up with the offered load: nearly everything
		// identified, only the most recent arrivals still in flight.
		if rep.ActiveUnread > 25 {
			t.Fatalf("run %d left %d of %d tags unidentified at cutoff", i, rep.ActiveUnread, rep.Admitted)
		}
	}
	if res.Throughput.Mean < 50 {
		t.Fatalf("mean identification throughput %.1f tags/s, want >= 50", res.Throughput.Mean)
	}
}
