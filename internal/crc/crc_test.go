package crc

import (
	"testing"
	"testing/quick"
)

func TestKnownVector(t *testing.T) {
	// The standard check value for CRC-16/CCITT-FALSE.
	if got := Checksum([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("Checksum(123456789) = %#04x, want 0x29b1", got)
	}
}

func TestEmptyData(t *testing.T) {
	// CRC-16/CCITT-FALSE of no data is the initial value.
	if got := Checksum(nil); got != 0xFFFF {
		t.Fatalf("Checksum(nil) = %#04x, want 0xffff", got)
	}
}

func TestVerify(t *testing.T) {
	data := []byte{0xde, 0xad, 0xbe, 0xef}
	sum := Checksum(data)
	if !Verify(data, sum) {
		t.Fatal("Verify rejected the correct checksum")
	}
	if Verify(data, sum^1) {
		t.Fatal("Verify accepted a wrong checksum")
	}
}

func TestSingleBitErrorsDetected(t *testing.T) {
	// A CRC with polynomial degree 16 detects every single-bit error.
	data := []byte{0x31, 0x41, 0x59, 0x26, 0x53, 0x58, 0x97, 0x93, 0x23, 0x84}
	sum := Checksum(data)
	for byteIdx := range data {
		for bit := 0; bit < 8; bit++ {
			corrupted := make([]byte, len(data))
			copy(corrupted, data)
			corrupted[byteIdx] ^= 1 << bit
			if Checksum(corrupted) == sum {
				t.Fatalf("single-bit flip at byte %d bit %d undetected", byteIdx, bit)
			}
		}
	}
}

func TestBurstErrorsDetected(t *testing.T) {
	// CRC-16 detects all burst errors up to 16 bits long.
	data := make([]byte, 12)
	for i := range data {
		data[i] = byte(i * 37)
	}
	sum := Checksum(data)
	for start := 0; start < len(data)-2; start++ {
		corrupted := make([]byte, len(data))
		copy(corrupted, data)
		corrupted[start] ^= 0xFF
		corrupted[start+1] ^= 0xFF
		if Checksum(corrupted) == sum {
			t.Fatalf("16-bit burst at byte %d undetected", start)
		}
	}
}

func TestChecksumDeterministic(t *testing.T) {
	prop := func(data []byte) bool {
		return Checksum(data) == Checksum(data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomCorruptionDetected(t *testing.T) {
	// Flipping one random bit of random data must change the checksum.
	prop := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		sum := Checksum(data)
		i := int(pos) % (len(data) * 8)
		corrupted := make([]byte, len(data))
		copy(corrupted, data)
		corrupted[i/8] ^= 1 << (i % 8)
		return Checksum(corrupted) != sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
