// Package crc implements the 16-bit cyclic redundancy check carried inside
// every tag ID.
//
// The paper (Section III-A) requires each 96-bit ID to embed a CRC so the
// reader can (a) tell a singleton slot from a collision slot by attempting a
// decode, and (b) verify the residual signal after subtracting known signals
// from a collision record. We use CRC-16/CCITT-FALSE (polynomial 0x1021,
// initial value 0xFFFF), the variant used by ISO 18000-6 / EPC Gen2 readers.
package crc

// Size is the number of CRC bits appended to a tag ID payload.
const Size = 16

var table = makeTable()

func makeTable() [256]uint16 {
	var t [256]uint16
	const poly = 0x1021
	for i := 0; i < 256; i++ {
		c := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if c&0x8000 != 0 {
				c = c<<1 ^ poly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}

// Checksum returns the CRC-16/CCITT-FALSE of data.
func Checksum(data []byte) uint16 {
	c := uint16(0xFFFF)
	for _, b := range data {
		c = c<<8 ^ table[byte(c>>8)^b]
	}
	return c
}

// Verify reports whether sum is the correct checksum for data.
func Verify(data []byte, sum uint16) bool {
	return Checksum(data) == sum
}
