package crc

import "testing"

// FuzzChecksumDetectsMutation checks that flipping any bit of any input
// always changes the checksum — the single-error detection guarantee of a
// degree-16 CRC.
func FuzzChecksumDetectsMutation(f *testing.F) {
	f.Add([]byte{0x00}, uint16(0))
	f.Add([]byte("hello, rfid"), uint16(13))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint16(42))
	f.Fuzz(func(t *testing.T, data []byte, pos uint16) {
		if len(data) == 0 {
			return
		}
		sum := Checksum(data)
		i := int(pos) % (len(data) * 8)
		mutated := make([]byte, len(data))
		copy(mutated, data)
		mutated[i/8] ^= 1 << (i % 8)
		if Checksum(mutated) == sum {
			t.Fatalf("bit flip at %d undetected for input %x", i, data)
		}
	})
}
