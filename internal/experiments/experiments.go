// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is a function from Options to a
// Rendered result (typed rows flattened to strings); the cmd/tables binary
// and the repository benchmarks are thin wrappers around this package.
//
// Experiment ids: table1, table2, table3, table4, fig3, fig4, fig5, fig6
// (the paper's evaluation) plus the extensions crdsa, energy, estimators,
// noise and progress. See DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for the paper-versus-measured record.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"github.com/ancrfid/ancrfid/internal/plot"
	"github.com/ancrfid/ancrfid/internal/protocol"
)

// Options control an experiment run.
type Options struct {
	// Runs overrides the Monte-Carlo repetition count (0 = per-experiment
	// default: 100 for the tables, 20 for the simulation figures, exact
	// analytics for fig3/fig4).
	Runs int
	// Seed selects the deterministic seed (0 = 1).
	Seed uint64
	// TxModel selects the transmission model (0 = binomial fast model).
	TxModel protocol.TxModel
	// Progress, when non-nil, receives one line per completed data point.
	// Writes are serialized; under Workers > 1 lines may arrive out of
	// data-point order.
	Progress io.Writer
	// Sizes overrides the population grid of table1 (nil = the paper's
	// 1000..20000 step 1000).
	Sizes []int
	// Workers bounds the concurrency of an experiment: data points run on
	// up to Workers goroutines and every campaign inherits it as
	// sim.Config.Workers. 0 or 1 = fully sequential. Tables and figures
	// are deterministic for any worker count — each data point owns its
	// output slot, and the campaigns themselves merge deterministically.
	Workers int
}

func (o Options) withDefaults(defaultRuns int) Options {
	if o.Runs <= 0 {
		o.Runs = defaultRuns
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TxModel == 0 {
		o.TxModel = protocol.TxBinomial
	}
	return o
}

// progressMu serializes progress lines: data points of a parallel
// experiment report completion from their worker goroutines.
var progressMu sync.Mutex

func (o Options) progressf(format string, args ...any) {
	if o.Progress != nil {
		progressMu.Lock()
		defer progressMu.Unlock()
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// points runs fn(0), ..., fn(n-1) on up to o.Workers goroutines; each fn
// must write its result into the per-index slot it owns. Indices are
// dispatched in ascending order, so the error returned — the failure with
// the lowest index among the runs executed — is the same error a
// sequential pass would hit first, for any worker count.
func (o Options) points(n int, fn func(i int) error) error {
	workers := o.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		next     int
		errIdx   = -1
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if errIdx >= 0 || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Rendered is an experiment's output in displayable form.
type Rendered struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes record deviations, parameters and reading hints.
	Notes []string
	// Series carries the figure experiments' numeric curves for plotting;
	// empty for the tables.
	Series []plot.Series
}

// WritePlot renders the experiment's numeric series as an ASCII chart; it
// is an error for experiments without series (the tables).
func (r Rendered) WritePlot(w io.Writer) error {
	if len(r.Series) == 0 {
		return fmt.Errorf("experiments: %s has no plottable series", r.ID)
	}
	return plot.Render(w, fmt.Sprintf("%s — %s", strings.ToUpper(r.ID), r.Title), r.Series, 72, 24)
}

// WriteText renders the experiment as an aligned text table.
func (r Rendered) WriteText(w io.Writer) error {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(r.ID), r.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		return strings.Join(parts, "  ")
	}
	header := line(r.Header)
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the experiment as CSV (header row first).
func (r Rendered) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// runner is an experiment entry point.
type runner func(Options) (Rendered, error)

var registry = map[string]runner{
	"table1": Table1,
	"table2": Table2,
	"table3": Table3,
	"table4": Table4,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	// Extension experiments beyond the paper's evaluation.
	"crdsa":      CRDSA,
	"energy":     Energy,
	"estimators": Estimators,
	"noise":      Noise,
	"progress":   Progress,
}

// IDs returns the known experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) (Rendered, error) {
	r, ok := registry[strings.ToLower(strings.TrimSpace(id))]
	if !ok {
		return Rendered{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opts)
}

// sizeOr returns the first population override from opts.Sizes, or def.
func (o Options) sizeOr(def int) int {
	if len(o.Sizes) > 0 && o.Sizes[0] > 0 {
		return o.Sizes[0]
	}
	return def
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func d0(v float64) string { return fmt.Sprintf("%.0f", v) }
