package experiments

import (
	"fmt"
	"strconv"

	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	"github.com/ancrfid/ancrfid/internal/edfsa"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/sim"
	"github.com/ancrfid/ancrfid/internal/treeproto"
)

// comparisonProtocols builds the seven protocols of Tables I and II in
// paper column order, together with the ANC capability each needs from the
// channel (baselines do not resolve collisions, so lambda is irrelevant for
// them; 2 is used).
type namedProtocol struct {
	p      protocol.Protocol
	lambda int
}

func comparisonProtocols() []namedProtocol {
	return []namedProtocol{
		{fcat.New(fcat.Config{Lambda: 2}), 2},
		{fcat.New(fcat.Config{Lambda: 3}), 3},
		{fcat.New(fcat.Config{Lambda: 4}), 4},
		{dfsa.New(dfsa.Config{}), 2},
		{edfsa.New(edfsa.Config{}), 2},
		{treeproto.NewABS(), 2},
		{treeproto.NewAQS(), 2},
	}
}

func campaign(opts Options, tags, lambda int) sim.Config {
	return sim.Config{
		Tags:    tags,
		Runs:    opts.Runs,
		Seed:    opts.Seed,
		Lambda:  lambda,
		TxModel: opts.TxModel,
		Workers: opts.Workers,
	}
}

// Table1 reproduces Table I: reading throughput (tag IDs per second) of
// FCAT-2/3/4 against DFSA, EDFSA, ABS and AQS as the population grows from
// 1,000 to 20,000 tags.
func Table1(opts Options) (Rendered, error) {
	opts = opts.withDefaults(sim.DefaultRuns)
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = make([]int, 0, 20)
		for n := 1000; n <= 20000; n += 1000 {
			sizes = append(sizes, n)
		}
	}
	protos := comparisonProtocols()
	out := Rendered{
		ID:     "table1",
		Title:  "Reading throughput (tags/sec) vs population size",
		Header: []string{"N"},
		Notes: []string{
			fmt.Sprintf("mean of %d runs per cell; seed %d", opts.Runs, opts.Seed),
			fmt.Sprintf("bounds at I-Code timing: ALOHA 1/(eT)=%.1f, tree 1/(2.88T)=%.1f", alohaBound(), treeBound()),
		},
	}
	for _, np := range protos {
		out.Header = append(out.Header, np.p.Name())
	}
	rows := make([][]string, len(sizes))
	err := opts.points(len(sizes), func(i int) error {
		n := sizes[i]
		row := []string{strconv.Itoa(n)}
		for _, np := range protos {
			res, err := sim.Run(np.p, campaign(opts, n, np.lambda))
			if err != nil {
				return err
			}
			row = append(row, f1(res.Throughput.Mean))
		}
		rows[i] = row
		opts.progressf("table1: N=%d done\n", n)
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// Table2 reproduces Table II: the empty/singleton/collision slot breakdown
// for each protocol at N = 10,000.
func Table2(opts Options) (Rendered, error) {
	opts = opts.withDefaults(sim.DefaultRuns)
	n := opts.sizeOr(10000)
	protos := comparisonProtocols()
	out := Rendered{
		ID:     "table2",
		Title:  fmt.Sprintf("Empty, singleton and collision slots at N = %d", n),
		Header: []string{"slots"},
		Notes:  []string{fmt.Sprintf("mean of %d runs per cell; seed %d", opts.Runs, opts.Seed)},
	}
	kinds := []string{"empty", "singleton", "collision", "total"}
	cells := make([][]string, len(kinds))
	for i := range cells {
		cells[i] = []string{kinds[i]}
	}
	results := make([]sim.Result, len(protos))
	err := opts.points(len(protos), func(i int) error {
		np := protos[i]
		res, err := sim.Run(np.p, campaign(opts, n, np.lambda))
		if err != nil {
			return err
		}
		results[i] = res
		opts.progressf("table2: %s done\n", np.p.Name())
		return nil
	})
	if err != nil {
		return out, err
	}
	for i, np := range protos {
		out.Header = append(out.Header, np.p.Name())
		res := results[i]
		cells[0] = append(cells[0], d0(res.EmptySlots.Mean))
		cells[1] = append(cells[1], d0(res.SingletonSlots.Mean))
		cells[2] = append(cells[2], d0(res.CollisionSlots.Mean))
		cells[3] = append(cells[3], d0(res.TotalSlots.Mean))
	}
	out.Rows = cells
	return out, nil
}

// Table3 reproduces Table III: the number of tag IDs recovered from
// collision slots by FCAT-2/3/4.
func Table3(opts Options) (Rendered, error) {
	opts = opts.withDefaults(sim.DefaultRuns)
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = []int{1000, 5000, 10000, 15000, 20000}
	}
	out := Rendered{
		ID:     "table3",
		Title:  "Tag IDs resolved from collision slots",
		Header: []string{"N", "FCAT-2", "FCAT-3", "FCAT-4"},
		Notes:  []string{fmt.Sprintf("mean of %d runs per cell; seed %d", opts.Runs, opts.Seed)},
	}
	rows := make([][]string, len(sizes))
	err := opts.points(len(sizes), func(i int) error {
		n := sizes[i]
		row := []string{strconv.Itoa(n)}
		for _, lambda := range []int{2, 3, 4} {
			p := fcat.New(fcat.Config{Lambda: lambda})
			res, err := sim.Run(p, campaign(opts, n, lambda))
			if err != nil {
				return err
			}
			row = append(row, d0(res.ResolvedIDs.Mean))
		}
		rows[i] = row
		opts.progressf("table3: N=%d done\n", n)
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// Table4 reproduces Table IV: for each lambda, the optimal omega found by
// sweeping (with its maximum throughput) against the computed omega
// (lambda!)^(1/lambda) (with FCAT's throughput at that omega).
func Table4(opts Options) (Rendered, error) {
	opts = opts.withDefaults(30)
	n := opts.sizeOr(10000)
	out := Rendered{
		ID:    "table4",
		Title: fmt.Sprintf("Swept-optimal omega vs computed omega (N = %d)", n),
		Header: []string{
			"lambda", "optimal w", "max tput", "computed w", "FCAT tput",
		},
		Notes: []string{
			fmt.Sprintf("sweep step 0.05 over [0.7, 3.2]; %d runs per point; seed %d", opts.Runs, opts.Seed),
		},
	}
	var sweep []float64
	for w := 0.70; w <= 3.201; w += 0.05 {
		sweep = append(sweep, w)
	}
	for _, lambda := range []int{2, 3, 4} {
		// Measure the whole sweep (parallel across omegas), then scan it in
		// order so ties resolve exactly as the sequential sweep did.
		tputs := make([]float64, len(sweep))
		err := opts.points(len(sweep), func(i int) error {
			tput, err := fcatThroughput(opts, n, lambda, sweep[i], 0)
			tputs[i] = tput
			return err
		})
		if err != nil {
			return out, err
		}
		bestOmega, bestTput := 0.0, -1.0
		for i, w := range sweep {
			if tputs[i] > bestTput {
				bestTput, bestOmega = tputs[i], w
			}
		}
		computed := analysis.OptimalOmega(lambda)
		computedTput, err := fcatThroughput(opts, n, lambda, computed, 0)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, []string{
			strconv.Itoa(lambda), f2(bestOmega), f1(bestTput), f2(computed), f1(computedTput),
		})
		opts.progressf("table4: lambda=%d done (best w=%.2f)\n", lambda, bestOmega)
	}
	return out, nil
}

// fcatThroughput measures FCAT's mean throughput at an explicit omega (and
// frame size, 0 = default) over the campaign defined by opts.
func fcatThroughput(opts Options, tags, lambda int, omega float64, frameSize int) (float64, error) {
	p := fcat.New(fcat.Config{Lambda: lambda, Omega: omega, FrameSize: frameSize})
	res, err := sim.Run(p, campaign(opts, tags, lambda))
	if err != nil {
		return 0, err
	}
	return res.Throughput.Mean, nil
}
