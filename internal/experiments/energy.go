package experiments

import (
	"fmt"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/crdsa"
	"github.com/ancrfid/ancrfid/internal/scat"
	"github.com/ancrfid/ancrfid/internal/sim"
	"github.com/ancrfid/ancrfid/internal/stats"
)

// tagTxPowerWatts is the transmit power of a battery-powered active tag
// used for the energy estimate (10 mW, a typical active-tag figure).
const tagTxPowerWatts = 0.010

// Energy is an extension experiment along the axis of the paper's
// reference [14] (power consumption of anti-collision protocols): how many
// times must each tag key its transmitter, and what does a read cost the
// tag batteries? Tree protocols make every tag answer at each level of its
// root path (~log2 N transmissions); ALOHA-family tags answer a handful of
// times; FCAT sits between DFSA and the trees because the optimal load
// omega > 1 makes tags report more often, while CRDSA's replicas double
// the count by design.
func Energy(opts Options) (Rendered, error) {
	opts = opts.withDefaults(30)
	n := opts.sizeOr(5000)
	txJoule := tagTxPowerWatts * air.ICode().Bits(air.ICode().IDBits).Seconds()
	out := Rendered{
		ID:    "energy",
		Title: fmt.Sprintf("Tag energy: transmissions per tag and per-tag energy (N = %d)", n),
		Header: []string{
			"protocol", "tags/sec", "tx/tag", "uJ/tag",
		},
		Notes: []string{
			fmt.Sprintf("%d runs per row; seed %d; energy model: %d mW over one %d-bit ID (%.1f uJ per transmission)",
				opts.Runs, opts.Seed, int(tagTxPowerWatts*1000), air.ICode().IDBits, txJoule*1e6),
			"extension experiment along the paper's reference [14]: not a table in the paper",
		},
	}
	protos := comparisonProtocols()
	protos = append(protos,
		namedProtocol{scat.New(scat.Config{Lambda: 2}), 2},
		namedProtocol{crdsa.New(crdsa.Config{}), 8},
	)
	for _, np := range protos {
		res, err := sim.Run(np.p, campaign(opts, n, np.lambda))
		if err != nil {
			return out, err
		}
		var perTag []float64
		for _, m := range res.Runs {
			perTag = append(perTag, m.TransmissionsPerTag())
		}
		tx := stats.Summarize(perTag)
		out.Rows = append(out.Rows, []string{
			np.p.Name(),
			f1(res.Throughput.Mean),
			f2(tx.Mean),
			f1(tx.Mean * txJoule * 1e6),
		})
		opts.progressf("energy: %s done\n", np.p.Name())
	}
	return out, nil
}
