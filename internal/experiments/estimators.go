package experiments

import (
	"fmt"
	"math"

	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/estimate"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/stats"
)

// Estimators is an extension experiment backing Section V-C's estimator
// choice with measurements: at the design load it simulates many frames
// and compares the per-frame population estimators — the paper's Eq. 12
// closed form, the self-consistent exact inversion of Eq. 10, and the
// empty-slot alternative the paper rejects for its higher variance. The
// analytic standard deviation (Eq. 25) is printed beside the measured one.
func Estimators(opts Options) (Rendered, error) {
	opts = opts.withDefaults(1)
	n := opts.sizeOr(10000)
	const (
		f      = 30
		frames = 5000
	)
	omega := analysis.OptimalOmega(2)
	p := omega / float64(n)
	out := Rendered{
		ID:    "estimators",
		Title: fmt.Sprintf("Per-frame population estimators at the design load (N = %d, f = %d, %d frames)", n, f, frames),
		Header: []string{
			"estimator", "mean N^/N", "std N^/N", "analytic std", "usable frames",
		},
		Notes: []string{
			fmt.Sprintf("seed %d; p = omega/N with omega = 1.414", opts.Seed),
			"the paper rejects the empty-slot estimator for its higher variance (Section V-C)",
			"analytic std: sqrt of Eq. 25 for the collision estimators; '-' where the paper gives no formula",
			"at the design load the closed form measures below the analytic std: fixing omega = N*p acts as",
			"shrinkage toward the design assumption (lower variance on-design, bias when the load drifts)",
			"extension experiment: not a table in the paper",
		},
	}

	r := rng.New(opts.Seed)
	type sample struct{ nc, n0 int }
	samples := make([]sample, frames)
	for i := range samples {
		var nc, n0 int
		for s := 0; s < f; s++ {
			switch k := r.Binomial(n, p); {
			case k == 0:
				n0++
			case k >= 2:
				nc++
			}
		}
		samples[i] = sample{nc, n0}
	}

	kinds := []struct {
		name     string
		analytic string
		invert   func(sample) (float64, bool)
	}{
		{"exact (Eq. 10 inverted)", f4(math.Sqrt(analysis.EstimatorVariance(omega, f))), func(s sample) (float64, bool) {
			return estimate.Exact(s.nc, f, p)
		}},
		{"closed form (Eq. 12)", f4(math.Sqrt(analysis.EstimatorVariance(omega, f))), func(s sample) (float64, bool) {
			return estimate.ClosedForm(s.nc, f, p, omega)
		}},
		{"empty slots (Eq. 7)", "-", func(s sample) (float64, bool) {
			return estimate.FromEmpty(s.n0, f, p)
		}},
	}
	for _, k := range kinds {
		var rel []float64
		for _, s := range samples {
			if est, ok := k.invert(s); ok {
				rel = append(rel, est/float64(n))
			}
		}
		sum := stats.Summarize(rel)
		out.Rows = append(out.Rows, []string{
			k.name, f4(sum.Mean), f4(sum.Std), k.analytic, fmt.Sprintf("%d/%d", sum.N, frames),
		})
		opts.progressf("estimators: %s done\n", k.name)
	}
	return out, nil
}
