package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// tinyOpts keeps experiment tests fast: minimal runs, small populations.
func tinyOpts() Options {
	return Options{Runs: 2, Seed: 1, Sizes: []int{400}}
}

func checkRendered(t *testing.T, r Rendered) {
	t.Helper()
	if r.ID == "" || r.Title == "" {
		t.Fatalf("missing id/title: %+v", r)
	}
	if len(r.Header) == 0 || len(r.Rows) == 0 {
		t.Fatalf("%s: empty table", r.ID)
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("%s row %d has %d cells, header has %d", r.ID, i, len(row), len(r.Header))
		}
		for j, cell := range row {
			if cell == "" {
				t.Fatalf("%s row %d cell %d empty", r.ID, i, j)
			}
		}
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	want := []string{"crdsa", "energy", "estimators", "fig3", "fig4", "fig5", "fig6", "noise", "progress", "table1", "table2", "table3", "table4"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestRunDispatch(t *testing.T) {
	r, err := Run("FIG4", Options{}) // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig4" {
		t.Fatalf("dispatched to %s", r.ID)
	}
}

func TestEverySimulatedExperimentSmall(t *testing.T) {
	// Run each simulation-backed experiment at a tiny budget and check the
	// rendered output is well-formed; the full-budget numbers live in
	// docs/results.txt.
	for _, id := range []string{"table2", "table3", "table4", "fig5", "fig6", "crdsa", "energy", "estimators", "noise", "progress"} {
		opts := Options{Runs: 1, Seed: 1, Sizes: []int{250}}
		r, err := Run(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		checkRendered(t, r)
	}
}

// TestWorkersDoNotChangeOutput: every experiment must render identically
// whatever Options.Workers is — data points own their output slots and the
// campaigns merge deterministically.
func TestWorkersDoNotChangeOutput(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table4", "fig5", "noise"} {
		seq, err := Run(id, Options{Runs: 2, Seed: 3, Sizes: []int{250}})
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		par, err := Run(id, Options{Runs: 2, Seed: 3, Sizes: []int{250}, Workers: 8})
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: Workers=8 output differs from sequential", id)
		}
	}
}

// TestPointsErrorIsLowestIndex: the parallel point dispatcher must report
// the same error a sequential pass would hit first.
func TestPointsErrorIsLowestIndex(t *testing.T) {
	boom := func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("point %d failed", i)
		}
		return nil
	}
	seqErr := Options{Workers: 1}.points(10, boom)
	parErr := Options{Workers: 4}.points(10, boom)
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got %v / %v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("parallel error %q differs from sequential %q", parErr, seqErr)
	}
	if err := (Options{Workers: 4}).points(10, func(int) error { return nil }); err != nil {
		t.Fatalf("clean pass errored: %v", err)
	}
	var sentinel = errors.New("x")
	if err := (Options{Workers: 16}).points(1, func(int) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("single-point pool lost the error: %v", err)
	}
}

func TestFigureExperimentsCarrySeries(t *testing.T) {
	for _, id := range []string{"fig5", "fig6", "noise", "progress"} {
		r, err := Run(id, Options{Runs: 1, Seed: 1, Sizes: []int{250}})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Series) == 0 {
			t.Errorf("%s has no plot series", id)
		}
		var sb strings.Builder
		if err := r.WritePlot(&sb); err != nil {
			t.Errorf("%s: WritePlot: %v", id, err)
		}
	}
	// Tables must refuse to plot.
	r, err := Run("table2", Options{Runs: 1, Seed: 1, Sizes: []int{100}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WritePlot(&sb); err == nil {
		t.Error("a table should not render as a plot")
	}
}

func TestTable1Small(t *testing.T) {
	r, err := Table1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, r)
	if len(r.Header) != 8 { // N + 7 protocols
		t.Fatalf("header %v", r.Header)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != "400" {
		t.Fatalf("rows %v", r.Rows)
	}
}

func TestTable3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full N grid")
	}
	opts := Options{Runs: 1, Seed: 1}
	r, err := Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, r)
	if len(r.Rows) != 5 {
		t.Fatalf("table3 should have 5 population rows, got %d", len(r.Rows))
	}
}

func TestFig3Analytic(t *testing.T) {
	r, err := Fig3(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, r)
	if len(r.Header) != 7 {
		t.Fatalf("fig3 header %v", r.Header)
	}
}

func TestFig4Analytic(t *testing.T) {
	r, err := Fig4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, r)
	// E(n1) must be non-monotonic over the grid (the figure's point).
	prevUp := false
	sawPeak := false
	var prev float64
	for i, row := range r.Rows {
		var v float64
		if _, err := sscan(row[2], &v); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			up := v > prev
			if prevUp && !up {
				sawPeak = true
			}
			prevUp = up
		}
		prev = v
	}
	if !sawPeak {
		t.Fatal("E(n1) should rise then fall over the population grid")
	}
}

func TestWriteText(t *testing.T) {
	r := Rendered{
		ID: "x", Title: "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"X — t", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := Rendered{
		ID: "x", Title: "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", `va"l,ue`}},
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, `"va""l,ue"`) {
		t.Fatalf("csv quoting: %q", out)
	}
}

// sscan parses a float cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
