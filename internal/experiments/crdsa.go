package experiments

import (
	"fmt"
	"strconv"

	"github.com/ancrfid/ancrfid/internal/crdsa"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/sim"
)

// CRDSA is an extension experiment beyond the paper's tables: it compares
// the paper's FCAT against CRDSA (the satellite-network collision-
// resolution scheme of the paper's reference [22], Section III-C) under
// the same channel, as the ANC decoder capability lambda grows. FCAT's
// adaptive report probability targets exactly lambda-resolvable
// collisions, whereas CRDSA relies on replica diversity; with a deep
// canceller CRDSA closes much of the gap, with today's lambda = 2 it
// trails far behind.
func CRDSA(opts Options) (Rendered, error) {
	opts = opts.withDefaults(30)
	n := opts.sizeOr(10000)
	out := Rendered{
		ID:     "crdsa",
		Title:  fmt.Sprintf("FCAT vs CRDSA (reference [22]) as cancellation deepens (N = %d)", n),
		Header: []string{"lambda", "FCAT", "CRDSA", "CRDSA-3rep"},
		Notes: []string{
			fmt.Sprintf("%d runs per cell; seed %d", opts.Runs, opts.Seed),
			"CRDSA-3rep transmits three replicas per frame (IRSA-style)",
			"extension experiment: not a table in the paper",
			"FCAT degrades beyond lambda ~4: omega = (lambda!)^(1/lambda) starves the " +
				"singleton slots that seed the resolution cascade (omega*e^-omega -> 0), " +
				"the dynamics behind the paper's remark that large lambda is practically unnecessary",
		},
	}
	for _, lambda := range []int{2, 4, 8, 16} {
		row := []string{strconv.Itoa(lambda)}
		pf := fcat.New(fcat.Config{Lambda: lambda})
		res, err := sim.Run(pf, campaign(opts, n, lambda))
		if err != nil {
			return out, err
		}
		row = append(row, f1(res.Throughput.Mean))
		for _, replicas := range []int{2, 3} {
			pc := crdsa.New(crdsa.Config{Replicas: replicas})
			res, err := sim.Run(pc, campaign(opts, n, lambda))
			if err != nil {
				return out, err
			}
			row = append(row, f1(res.Throughput.Mean))
		}
		out.Rows = append(out.Rows, row)
		opts.progressf("crdsa: lambda=%d done\n", lambda)
	}
	return out, nil
}
