package experiments

import (
	"fmt"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/plot"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/sim"
)

// Noise is an extension experiment quantifying Section IV-E: as channel
// noise spoils a growing share of collision records, FCAT's ANC gain
// erodes gracefully — reads always complete because unresolved tags simply
// retransmit — and below the crossover a contention-only reader (DFSA) is
// the better choice, exactly the paper's recommendation for hostile
// environments.
func Noise(opts Options) (Rendered, error) {
	opts = opts.withDefaults(20)
	n := opts.sizeOr(5000)
	out := Rendered{
		ID:     "noise",
		Title:  fmt.Sprintf("FCAT-2 under record-spoiling noise (N = %d)", n),
		Header: []string{"P(spoiled)", "FCAT-2", "IDs via ANC", "DFSA"},
		Notes: []string{
			fmt.Sprintf("%d runs per point; seed %d", opts.Runs, opts.Seed),
			"extension experiment quantifying Section IV-E: not a figure in the paper",
			"the crossover marks where the paper's advice to fall back to a contention-only protocol applies",
		},
	}
	dres, err := sim.Run(dfsa.New(dfsa.Config{}), campaign(opts, n, 2))
	if err != nil {
		return out, err
	}

	pBads := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	rows := make([][]string, len(pBads))
	fTputs := make([]float64, len(pBads))
	err = opts.points(len(pBads), func(i int) error {
		pBad := pBads[i]
		cfg := campaign(opts, n, 2)
		cfg.NewChannel = func(r *rng.Source) channel.Channel {
			return channel.NewAbstract(channel.AbstractConfig{Lambda: 2, PUnresolvable: pBad}, r)
		}
		fres, err := sim.Run(fcat.New(fcat.Config{Lambda: 2}), cfg)
		if err != nil {
			return err
		}
		rows[i] = []string{
			f2(pBad),
			f1(fres.Throughput.Mean),
			d0(fres.ResolvedIDs.Mean),
			f1(dres.Throughput.Mean),
		}
		fTputs[i] = fres.Throughput.Mean
		opts.progressf("noise: p=%.1f done\n", pBad)
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	series := []plot.Series{{Name: "FCAT-2"}, {Name: "DFSA"}}
	for i, pBad := range pBads {
		series[0].X = append(series[0].X, pBad)
		series[0].Y = append(series[0].Y, fTputs[i])
		series[1].X = append(series[1].X, pBad)
		series[1].Y = append(series[1].Y, dres.Throughput.Mean)
	}
	out.Series = series
	return out, nil
}
