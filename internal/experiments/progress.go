package experiments

import (
	"fmt"
	"strconv"

	"github.com/ancrfid/ancrfid/internal/dfsa"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/plot"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/sim"
	"github.com/ancrfid/ancrfid/internal/treeproto"
)

// Progress is an extension experiment: the identification-progress curve
// (unique IDs collected vs slots used) of one run per protocol. It
// visualises *why* FCAT wins — almost every slot carries an ID now or
// later — and shows ABS's strictly paced tree walk versus DFSA's
// geometric backlog decay.
func Progress(opts Options) (Rendered, error) {
	opts = opts.withDefaults(1)
	n := opts.sizeOr(10000)
	sampleStep := n / 20
	if sampleStep < 1 {
		sampleStep = 1
	}
	out := Rendered{
		ID:     "progress",
		Title:  fmt.Sprintf("Identification progress: IDs collected vs slots (N = %d, single run)", n),
		Header: []string{"slot", "FCAT-2", "DFSA", "ABS"},
		Notes: []string{
			fmt.Sprintf("seed %d, run 0; curves sampled every %d slots", opts.Seed, sampleStep),
			"extension experiment: not a figure in the paper",
		},
	}

	protos := []struct {
		name string
		p    protocol.Protocol
	}{
		{"FCAT-2", fcat.New(fcat.Config{Lambda: 2})},
		{"DFSA", dfsa.New(dfsa.Config{})},
		{"ABS", treeproto.NewABS()},
	}

	curves := make([][]int, len(protos)) // identified count at each sample point
	maxSamples := 0
	for i, np := range protos {
		curve, err := progressCurve(opts, np.p, n, sampleStep)
		if err != nil {
			return out, err
		}
		curves[i] = curve
		if len(curve) > maxSamples {
			maxSamples = len(curve)
		}
		opts.progressf("progress: %s done (%d samples)\n", np.name, len(curve))
	}

	series := make([]plot.Series, len(protos))
	for i, np := range protos {
		series[i].Name = np.name
	}
	for s := 0; s < maxSamples; s++ {
		row := []string{strconv.Itoa(s * sampleStep)}
		for i := range protos {
			v := n // a finished protocol stays at N
			if s < len(curves[i]) {
				v = curves[i][s]
			}
			row = append(row, strconv.Itoa(v))
			series[i].X = append(series[i].X, float64(s*sampleStep))
			series[i].Y = append(series[i].Y, float64(v))
		}
		out.Rows = append(out.Rows, row)
	}
	out.Series = series
	return out, nil
}

// progressCurve runs one campaign run with a slot observer sampling the
// cumulative identified count every step slots.
func progressCurve(opts Options, p protocol.Protocol, tags, step int) ([]int, error) {
	var curve []int
	cfg := sim.Config{
		Tags:    tags,
		Runs:    1,
		Seed:    opts.Seed,
		Lambda:  2,
		TxModel: opts.TxModel,
	}
	// RunOnce builds the env internally; hook the observer through a
	// wrapper protocol that injects OnSlot before delegating.
	hooked := observerProtocol{inner: p, hook: func(ev protocol.SlotEvent) {
		if ev.Seq%step == 0 {
			curve = append(curve, ev.Identified)
		}
	}}
	if _, err := sim.RunOnce(hooked, cfg, 0); err != nil {
		return nil, err
	}
	return curve, nil
}

// observerProtocol injects a slot observer into the run's environment.
type observerProtocol struct {
	inner protocol.Protocol
	hook  func(protocol.SlotEvent)
}

func (o observerProtocol) Name() string { return o.inner.Name() }

func (o observerProtocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	env.OnSlot = o.hook
	return o.inner.Run(env)
}
