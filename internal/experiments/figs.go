package experiments

import (
	"fmt"
	"math"
	"strconv"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/estimate"
	"github.com/ancrfid/ancrfid/internal/plot"
	"github.com/ancrfid/ancrfid/internal/rng"
)

func alohaBound() float64 {
	return analysis.AlohaBound(air.ICode().Slot().Seconds())
}

func treeBound() float64 {
	return analysis.TreeBound(air.ICode().Slot().Seconds())
}

// fig3Omegas are the three design constants of Fig. 3 (lambda = 2, 3, 4).
var fig3Omegas = []float64{1.414, 1.817, 2.213}

// Fig3 reproduces Fig. 3: the relative bias of the embedded estimator with
// respect to the number of tags, for omega = 1.414, 1.817 and 2.213
// (f = 30). The analytic curve is Eq. 16; next to it we report the bias
// measured by direct Monte-Carlo frame simulation of the paper's Eq. 12
// estimator, which the analytic approximation tracks closely.
func Fig3(opts Options) (Rendered, error) {
	opts = opts.withDefaults(1)
	const (
		frameSize      = 30
		framesPerPoint = 20000
	)
	out := Rendered{
		ID:     "fig3",
		Title:  "Estimator relative bias |Bias(N^/N)| vs number of tags (f = 30)",
		Header: []string{"N"},
		Notes: []string{
			"analytic: Eq. 16; measured: mean of Eq. 12 over 20000 simulated frames",
			"the paper reads off ~0.0082, ~0.011 and ~0.014 for the three omegas",
		},
	}
	for _, w := range fig3Omegas {
		out.Header = append(out.Header,
			fmt.Sprintf("w=%.3f analytic", w),
			fmt.Sprintf("w=%.3f measured", w))
	}
	// Fig3 threads one RNG stream through every data point, so its points
	// stay sequential regardless of Options.Workers: splitting the stream
	// would change the measured-bias numbers.
	r := rng.New(opts.Seed)
	series := make([]plot.Series, 2*len(fig3Omegas))
	for i, w := range fig3Omegas {
		series[2*i].Name = fmt.Sprintf("w=%.3f analytic", w)
		series[2*i+1].Name = fmt.Sprintf("w=%.3f measured", w)
	}
	for n := 2000; n <= 40000; n += 2000 {
		row := []string{strconv.Itoa(n)}
		for i, w := range fig3Omegas {
			analytic := math.Abs(analysis.EstimatorBias(n, w, frameSize))
			measured := math.Abs(measuredBias(r, n, w, frameSize, framesPerPoint))
			row = append(row, f4(analytic), f4(measured))
			series[2*i].X = append(series[2*i].X, float64(n))
			series[2*i].Y = append(series[2*i].Y, analytic)
			series[2*i+1].X = append(series[2*i+1].X, float64(n))
			series[2*i+1].Y = append(series[2*i+1].Y, measured)
		}
		out.Rows = append(out.Rows, row)
		opts.progressf("fig3: N=%d done\n", n)
	}
	out.Series = series
	return out, nil
}

// measuredBias simulates frames of f slots with N tags reporting at
// p = omega/N, applies the paper's closed-form estimator to each frame's
// collision count, and returns the mean relative bias.
func measuredBias(r *rng.Source, n int, omega float64, f, frames int) float64 {
	p := omega / float64(n)
	var sum float64
	used := 0
	for i := 0; i < frames; i++ {
		nc := 0
		for s := 0; s < f; s++ {
			if r.Binomial(n, p) >= 2 {
				nc++
			}
		}
		est, ok := estimate.ClosedForm(nc, f, p, omega)
		if !ok {
			// Saturated frame (all slots collided): Eq. 12 diverges; the
			// protocol grows its guess instead of estimating. Skip, as the
			// analysis conditions on informative frames.
			continue
		}
		sum += est / float64(n)
		used++
	}
	if used == 0 {
		return math.NaN()
	}
	return sum/float64(used) - 1
}

// Fig4 reproduces Fig. 4: the expected numbers of empty, singleton and
// collision slots per frame (f = 30) as the number of tags varies while the
// report probability stays fixed. The paper's caption gives
// "p_i = 1.414/N_i"; for the plotted curves to vary (and to make the
// figure's point that N is not monotonic in E(n1)), p must be held at the
// reference population 10,000, i.e. p = 1.414/10000, while N varies.
func Fig4(opts Options) (Rendered, error) {
	opts = opts.withDefaults(1)
	const (
		frameSize = 30
		refTags   = 10000
	)
	p := 1.414 / float64(refTags)
	out := Rendered{
		ID:     "fig4",
		Title:  "Expected slot counts per frame vs number of tags (f = 30, p = 1.414/10000)",
		Header: []string{"N", "E(n0)", "E(n1)", "E(nc)"},
		Notes: []string{
			"E(n1) peaks near N = 1/p and is non-monotonic: the reason the paper estimates from collision slots",
		},
	}
	series := []plot.Series{{Name: "E(n0)"}, {Name: "E(n1)"}, {Name: "E(nc)"}}
	for n := 2000; n <= 40000; n += 2000 {
		e0 := analysis.ExpectedEmpty(n, p, frameSize)
		e1 := analysis.ExpectedSingleton(n, p, frameSize)
		ec := analysis.ExpectedCollision(n, p, frameSize)
		out.Rows = append(out.Rows, []string{strconv.Itoa(n), f2(e0), f2(e1), f2(ec)})
		for i, v := range []float64{e0, e1, ec} {
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, v)
		}
	}
	out.Series = series
	return out, nil
}

// Fig5 reproduces Fig. 5: FCAT's reading throughput as a function of the
// report-probability constant omega, for lambda = 2, 3, 4 at N = 10,000.
// The curves are unimodal with maxima at the computed optimal omegas.
func Fig5(opts Options) (Rendered, error) {
	opts = opts.withDefaults(20)
	n := opts.sizeOr(10000)
	out := Rendered{
		ID:     "fig5",
		Title:  fmt.Sprintf("FCAT throughput vs omega (N = %d)", n),
		Header: []string{"omega", "FCAT-2", "FCAT-3", "FCAT-4"},
		Notes: []string{
			fmt.Sprintf("%d runs per point; seed %d", opts.Runs, opts.Seed),
			"optima expected near 1.414 / 1.817 / 2.213",
		},
	}
	var omegas []float64
	for w := 0.2; w <= 3.001; w += 0.1 {
		omegas = append(omegas, w)
	}
	rows := make([][]string, len(omegas))
	tputs := make([][3]float64, len(omegas))
	err := opts.points(len(omegas), func(j int) error {
		w := omegas[j]
		row := []string{f2(w)}
		for i, lambda := range []int{2, 3, 4} {
			tput, err := fcatThroughput(opts, n, lambda, w, 0)
			if err != nil {
				return err
			}
			row = append(row, f1(tput))
			tputs[j][i] = tput
		}
		rows[j] = row
		opts.progressf("fig5: omega=%.2f done\n", w)
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	series := []plot.Series{{Name: "FCAT-2"}, {Name: "FCAT-3"}, {Name: "FCAT-4"}}
	for j, w := range omegas {
		for i := range series {
			series[i].X = append(series[i].X, w)
			series[i].Y = append(series[i].Y, tputs[j][i])
		}
	}
	out.Series = series
	return out, nil
}

// Fig6 reproduces Fig. 6: FCAT's reading throughput as a function of the
// frame size f at N = 10,000, showing throughput stabilises for f >= 10.
func Fig6(opts Options) (Rendered, error) {
	opts = opts.withDefaults(20)
	n := opts.sizeOr(10000)
	out := Rendered{
		ID:     "fig6",
		Title:  fmt.Sprintf("FCAT throughput vs frame size (N = %d)", n),
		Header: []string{"f", "FCAT-2", "FCAT-3", "FCAT-4"},
		Notes: []string{
			fmt.Sprintf("%d runs per point; seed %d", opts.Runs, opts.Seed),
			"the paper reports throughput stabilises for f >= 10",
		},
	}
	fs := []int{2, 5, 10, 15, 20, 30, 40, 60, 80, 100, 125, 150, 175, 200}
	rows := make([][]string, len(fs))
	tputs := make([][3]float64, len(fs))
	err := opts.points(len(fs), func(j int) error {
		f := fs[j]
		row := []string{strconv.Itoa(f)}
		for i, lambda := range []int{2, 3, 4} {
			tput, err := fcatThroughput(opts, n, lambda, 0, f)
			if err != nil {
				return err
			}
			row = append(row, f1(tput))
			tputs[j][i] = tput
		}
		rows[j] = row
		opts.progressf("fig6: f=%d done\n", f)
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	series := []plot.Series{{Name: "FCAT-2"}, {Name: "FCAT-3"}, {Name: "FCAT-4"}}
	for j, f := range fs {
		for i := range series {
			series[i].X = append(series[i].X, float64(f))
			series[i].Y = append(series[i].Y, tputs[j][i])
		}
	}
	out.Series = series
	return out, nil
}
