package scat

import (
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags int, cfg channel.AbstractConfig) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(cfg, r),
		Timing:  air.ICode(),
		TxModel: protocol.TxBinomial,
	}
}

func TestName(t *testing.T) {
	if got := New(Config{Lambda: 3}).Name(); got != "SCAT-3" {
		t.Errorf("Name = %q", got)
	}
	if got := New(Config{}).Name(); got != "SCAT-2" {
		t.Errorf("default Name = %q", got)
	}
}

func TestDefaults(t *testing.T) {
	p := New(Config{})
	if p.cfg.Lambda != 2 || p.cfg.Omega < 1.41 || p.cfg.Omega > 1.42 || p.cfg.EmptyProbeAfter != 10 {
		t.Fatalf("unexpected defaults: %+v", p.cfg)
	}
}

func TestIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 2, 10, 500, 3000} {
		e := env(uint64(n), n, channel.AbstractConfig{Lambda: 2})
		m, err := New(Config{Lambda: 2}).Run(e)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.Identified() != n {
			t.Fatalf("N=%d: identified %d", n, m.Identified())
		}
		if m.TotalSlots() != m.EmptySlots+m.SingletonSlots+m.CollisionSlots {
			t.Fatal("slot accounting inconsistent")
		}
		if m.OnAir <= 0 {
			t.Fatal("no air time recorded")
		}
	}
}

func TestEmptyPopulation(t *testing.T) {
	e := env(1, 0, channel.AbstractConfig{Lambda: 2})
	m, err := New(Config{}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 0 {
		t.Fatal("identified tags in an empty field")
	}
	// Termination needs only the probe sequence.
	if m.TotalSlots() > 10 {
		t.Fatalf("%d slots to discover an empty field", m.TotalSlots())
	}
}

func TestCollisionResolutionContributes(t *testing.T) {
	e := env(5, 2000, channel.AbstractConfig{Lambda: 2})
	m, err := New(Config{Lambda: 2}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	// At the optimal load ~41% of IDs come from collision records.
	if m.ResolvedIDs < 500 {
		t.Fatalf("only %d IDs resolved from collisions", m.ResolvedIDs)
	}
	if m.DirectIDs+m.ResolvedIDs != 2000 {
		t.Fatal("direct+resolved != N")
	}
}

func TestKnownNUnderestimateRecovers(t *testing.T) {
	// The reader believes there are only 100 tags but 400 are present; the
	// p=1 probe discovers the shortfall and the run still completes.
	e := env(6, 400, channel.AbstractConfig{Lambda: 2})
	m, err := New(Config{Lambda: 2, KnownN: 100}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 400 {
		t.Fatalf("identified %d of 400", m.Identified())
	}
}

func TestKnownNOverestimate(t *testing.T) {
	e := env(7, 100, channel.AbstractConfig{Lambda: 2})
	m, err := New(Config{Lambda: 2, KnownN: 400}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 100 {
		t.Fatalf("identified %d of 100", m.Identified())
	}
}

func TestHashTransmissionModel(t *testing.T) {
	e := env(8, 300, channel.AbstractConfig{Lambda: 2})
	e.TxModel = protocol.TxHash
	m, err := New(Config{Lambda: 2}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 300 {
		t.Fatalf("hash model identified %d of 300", m.Identified())
	}
}

func TestUnresolvableChannelStillCompletes(t *testing.T) {
	// With every record spoiled SCAT degenerates to pure ALOHA but must
	// still read every tag (Section IV-E).
	e := env(9, 500, channel.AbstractConfig{Lambda: 2, PUnresolvable: 1})
	m, err := New(Config{Lambda: 2}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 500 || m.ResolvedIDs != 0 {
		t.Fatalf("identified=%d resolved=%d", m.Identified(), m.ResolvedIDs)
	}
}

func TestCorruptionRetries(t *testing.T) {
	// 20% of singletons are corrupted; affected tags retransmit until read.
	e := env(10, 300, channel.AbstractConfig{Lambda: 2, PCorruptSingleton: 0.2})
	m, err := New(Config{Lambda: 2}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 300 {
		t.Fatalf("identified %d of 300 under corruption", m.Identified())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() protocol.Metrics {
		e := env(11, 800, channel.AbstractConfig{Lambda: 2})
		m, err := New(Config{Lambda: 2}).Run(e)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different metrics:\n%+v\n%+v", a, b)
	}
}

func TestPreEstimationPhase(t *testing.T) {
	// With the real pre-step of reference [24] instead of an oracle N,
	// SCAT still identifies everyone and pays visible probe overhead.
	e := env(20, 2000, channel.AbstractConfig{Lambda: 2})
	withPre, err := New(Config{Lambda: 2, PreEstimate: true}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if withPre.Identified() != 2000 {
		t.Fatalf("identified %d of 2000 with pre-estimation", withPre.Identified())
	}
	e2 := env(20, 2000, channel.AbstractConfig{Lambda: 2})
	oracle, err := New(Config{Lambda: 2}).Run(e2)
	if err != nil {
		t.Fatal(err)
	}
	if withPre.TotalSlots() <= oracle.TotalSlots() {
		t.Fatalf("pre-estimation should cost probe slots: %d vs oracle %d",
			withPre.TotalSlots(), oracle.TotalSlots())
	}
	// The overhead must stay modest (a handful of 64-slot probe frames).
	if withPre.TotalSlots() > oracle.TotalSlots()+1500 {
		t.Fatalf("pre-estimation overhead too large: %d vs %d",
			withPre.TotalSlots(), oracle.TotalSlots())
	}
}

func TestSCATPaysPerSlotAdvertisement(t *testing.T) {
	// SCAT's air time must exceed slots * slot duration by the per-slot
	// advertisement cost.
	e := env(12, 500, channel.AbstractConfig{Lambda: 2})
	m, err := New(Config{Lambda: 2}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	tm := air.ICode()
	bareSlots := time.Duration(m.TotalSlots()) * tm.Slot()
	minAds := time.Duration(m.TotalSlots()) * tm.SlotAdvertisement()
	if m.OnAir < bareSlots+minAds {
		t.Fatalf("air time %v does not include per-slot advertisements (>= %v)", m.OnAir, bareSlots+minAds)
	}
}

func TestAckLossStillCompletes(t *testing.T) {
	e := env(30, 400, channel.AbstractConfig{Lambda: 2})
	e.PAckLoss = 0.4
	m, err := New(Config{Lambda: 2}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 400 {
		t.Fatalf("identified %d of 400 under ack loss", m.Identified())
	}
}

func TestAckLossNoDoubleCounting(t *testing.T) {
	e := env(31, 300, channel.AbstractConfig{Lambda: 2})
	e.PAckLoss = 0.5
	counts := make(map[tagid.ID]int)
	e.OnIdentified = func(id tagid.ID, _ bool) { counts[id]++ }
	if _, err := New(Config{Lambda: 2}).Run(e); err != nil {
		t.Fatal(err)
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("tag %v counted %d times", id, c)
		}
	}
}
