package scat

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// newAllocRun builds a session in the state Begin would, against the given env.
func newAllocRun(p *Protocol, e *protocol.Env, n int) *session {
	return &session{
		p:      p,
		env:    e,
		m:      protocol.Metrics{Tags: len(e.Tags)},
		active: protocol.NewActiveSet(e.Tags),
		store:  record.NewStore(),
		buf:    make([]tagid.ID, 0, 64),
		seen:   make(map[tagid.ID]struct{}, len(e.Tags)),
		n:      n,
	}
}

// TestEmptySlotZeroAlloc drives the steady-state empty-slot loop (a reader
// waiting on a population that never reports — here, an empty field with an
// overshooting pre-estimate) and requires it to be allocation-free with the
// tracer off.
func TestEmptySlotZeroAlloc(t *testing.T) {
	for _, tx := range []protocol.TxModel{protocol.TxBinomial, protocol.TxHash} {
		e := env(1, 0, channel.AbstractConfig{Lambda: 2})
		e.TxModel = tx
		// A huge probe trigger keeps the run from terminating on the
		// consecutive-empty heuristic while the guard measures.
		r := newAllocRun(New(Config{EmptyProbeAfter: 1 << 30}), e, 400)
		slot := uint64(0)
		for ; slot < 32; slot++ { // warm up buffers and maps
			if r.doSlot(slot) {
				t.Fatal("empty steady state terminated")
			}
		}
		allocs := testing.AllocsPerRun(300, func() {
			if r.doSlot(slot) {
				t.Fatal("empty steady state terminated")
			}
			slot++
		})
		if allocs != 0 {
			t.Errorf("tx=%v: empty slot allocates %v times, want 0", tx, allocs)
		}
	}
}

// TestSingletonSlotZeroAlloc drives the steady-state singleton loop: one
// tag whose acknowledgements are all lost retransmits forever, exercising
// the duplicate-discard path, the acknowledgement draw and the (empty)
// resolution cascade every slot. It must be allocation-free with the
// tracer off.
func TestSingletonSlotZeroAlloc(t *testing.T) {
	for _, tx := range []protocol.TxModel{protocol.TxBinomial, protocol.TxHash} {
		e := env(2, 1, channel.AbstractConfig{Lambda: 2})
		e.TxModel = tx
		e.PAckLoss = 1
		r := newAllocRun(New(Config{}), e, 1)
		slot := uint64(0)
		for ; slot < 32; slot++ {
			if r.doSlot(slot) {
				t.Fatal("singleton steady state terminated")
			}
		}
		if r.m.SingletonSlots == 0 || r.m.Identified() != 1 {
			t.Fatalf("unexpected warmup state: %+v", r.m)
		}
		allocs := testing.AllocsPerRun(300, func() {
			if r.doSlot(slot) {
				t.Fatal("singleton steady state terminated")
			}
			slot++
		})
		if allocs != 0 {
			t.Errorf("tx=%v: singleton slot allocates %v times, want 0", tx, allocs)
		}
	}
}
