// Package scat implements the Slotted Collision-Aware Tag identification
// protocol (paper, Section IV).
//
// SCAT is the paper's first protocol: every slot begins with an
// advertisement carrying the slot index and a report probability
// p_i = omega / N_i, where N_i is the number of tags not yet identified
// (SCAT assumes the total population N is known from a pre-estimation
// step). Tags whose report hash passes transmit their ID; the reader
// decodes singletons directly, records collision slots, and resolves
// records through analog network coding as constituents become known.
// IDs recovered from records are acknowledged in full (96 bits) — the
// overhead FCAT later removes.
package scat

import (
	"fmt"
	"math"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/channel"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/prestep"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Config parameterises SCAT.
type Config struct {
	// Lambda is the ANC decoder capability the protocol is tuned for; it
	// selects the default Omega and appears in the protocol name. It must
	// match the channel's capability for the tuning to be optimal.
	Lambda int

	// Omega overrides the report-probability constant omega = N_i * p_i.
	// Zero selects the optimal (lambda!)^(1/lambda) from Section IV-C.
	Omega float64

	// KnownN overrides the population size the reader assumes (SCAT's
	// pre-estimated N). Zero uses the true population size, i.e. a perfect
	// pre-estimate — unless PreEstimate is set.
	KnownN int

	// PreEstimate runs the real pre-estimation phase of the paper's
	// reference [24] (package prestep) to obtain N, spending probe slots
	// and air time before identification starts. It overrides KnownN.
	PreEstimate bool

	// PreEstimateConfig tunes the pre-estimation phase (zero values take
	// the prestep defaults).
	PreEstimateConfig prestep.Config

	// EmptyProbeAfter is the number of consecutive empty slots after which
	// the reader probes with p = 1 to test for termination (Section IV-A).
	// Zero selects the default of 10: at the optimal load an empty slot
	// has probability ~0.24, so a shorter run fires spurious probes — each
	// of which makes every outstanding tag transmit at once, wasting a
	// collision slot and a burst of tag energy.
	EmptyProbeAfter int
}

// Protocol is a configured SCAT instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns a SCAT instance. Zero config fields take defaults
// (lambda = 2, the optimal omega, perfect pre-estimate).
func New(cfg Config) *Protocol {
	if cfg.Lambda < 1 {
		cfg.Lambda = 2
	}
	if cfg.Omega <= 0 {
		cfg.Omega = analysis.OptimalOmega(cfg.Lambda)
	}
	if cfg.EmptyProbeAfter <= 0 {
		cfg.EmptyProbeAfter = 10
	}
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("SCAT-%d", p.cfg.Lambda) }

// Run implements protocol.Protocol.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	m, err := p.run(env)
	env.TraceRunEnd(p.Name(), m, err)
	return m, err
}

// run carries one identification round's state; doSlot advances it by one
// slot. The struct form (rather than loop-local closures) lets the steady
// state be driven slot-by-slot, which the allocation-regression tests use.
type run struct {
	p      *Protocol
	env    *protocol.Env
	m      protocol.Metrics
	clock  air.Clock
	active *protocol.ActiveSet
	store  *record.Store
	buf    []tagid.ID
	seen   map[tagid.ID]struct{}

	// n is the reader's current belief of the population size.
	n                     int
	consecutiveEmpty      int
	consecutiveCollisions int
}

func (p *Protocol) run(env *protocol.Env) (protocol.Metrics, error) {
	r := &run{
		p:      p,
		env:    env,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		active: protocol.NewActiveSet(env.Tags),
		store:  record.NewStore(),
		buf:    make([]tagid.ID, 0, 64),
		seen:   make(map[tagid.ID]struct{}, len(env.Tags)),
	}
	r.store.Tracer = env.Tracer
	env.TraceRunStart(p.Name())
	r.n = p.cfg.KnownN
	if r.n <= 0 {
		r.n = len(env.Tags)
	}
	if p.cfg.PreEstimate {
		pre, err := prestep.Estimate(env, p.cfg.PreEstimateConfig)
		if err != nil {
			r.m.OnAir = pre.OnAir
			return r.m, fmt.Errorf("pre-estimation: %w", err)
		}
		r.n = int(math.Round(pre.Estimate))
		r.m.EmptySlots += pre.EmptySlots
		r.m.SingletonSlots += pre.SingletonSlots
		r.m.CollisionSlots += pre.CollisionSlots
		r.clock.Add(pre.OnAir)
		env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(r.n)})
	}
	budget := env.SlotBudget()
	for slot := uint64(0); ; slot++ {
		if int(slot) >= budget {
			r.m.OnAir = r.clock.Elapsed()
			return r.m, protocol.ErrNoProgress
		}
		if r.doSlot(slot) {
			return r.m, nil
		}
	}
}

// countDirect and countResolved record a first-time identification;
// duplicates (retransmissions after a lost acknowledgement) are discarded,
// as Section IV-E prescribes.
func (r *run) countDirect(id tagid.ID) {
	if _, dup := r.seen[id]; dup {
		return
	}
	r.seen[id] = struct{}{}
	r.m.DirectIDs++
	r.env.NotifyIdentified(id, false)
}

func (r *run) countResolved(res record.Resolved) {
	if _, dup := r.seen[res.ID]; dup {
		return
	}
	r.seen[res.ID] = struct{}{}
	r.m.ResolvedIDs++
	r.env.NotifyIdentified(res.ID, true)
	// SCAT broadcasts each recovered ID in full so the tag stops
	// participating (Section IV-A).
	r.clock.Add(r.env.Timing.ResolvedIDAck())
}

// doSlot runs one advertisement + slot and reports whether the round
// terminated (the final probe proved the population exhausted).
func (r *run) doSlot(slot uint64) (done bool) {
	p, env := r.p, r.env
	remaining := r.n - r.m.Identified()
	// Termination: after enough consecutive empty slots (or once the
	// reader believes no tag is left) probe with p = 1; a further empty
	// slot proves the population is exhausted.
	probe := remaining <= 0 || r.consecutiveEmpty >= p.cfg.EmptyProbeAfter
	reportProb := 1.0
	if !probe {
		reportProb = p.cfg.Omega / float64(remaining)
		if reportProb > 1 {
			reportProb = 1
		}
	}

	r.clock.Add(env.Timing.SlotAdvertisement() + env.Timing.Slot())
	env.TraceAdvert(obsev.AdvertEvent{Seq: int(slot), P: reportProb})
	r.buf = r.active.Transmitters(env.RNG, env.TxModel, slot, reportProb, r.buf)
	obs := env.Channel.Observe(r.buf)

	switch obs.Kind {
	case channel.Empty:
		r.m.EmptySlots++
		if probe {
			r.m.OnAir = r.clock.Elapsed()
			// The terminating probe is a counted slot like any other;
			// report it so observers see exactly TotalSlots() events.
			env.NotifySlot(protocol.SlotEvent{
				Seq:        r.m.TotalSlots() - 1,
				Kind:       obs.Kind,
				Identified: r.m.Identified(),
			})
			return true
		}
		r.consecutiveEmpty++
		r.consecutiveCollisions = 0
	case channel.Singleton:
		r.m.SingletonSlots++
		r.consecutiveEmpty = 0
		r.consecutiveCollisions = 0
		r.countDirect(obs.ID)
		delivered := env.AckDelivered()
		env.TraceAck(obsev.AckEvent{
			Seq: int(slot), ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			r.active.Remove(obs.ID)
		}
		for _, res := range r.store.OnIdentified(obs.ID) {
			r.countResolved(res)
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: int(slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
			})
			if delivered {
				r.active.Remove(res.ID)
			}
		}
	case channel.Collision:
		r.m.CollisionSlots++
		r.consecutiveEmpty = 0
		r.consecutiveCollisions++
		// Storing the record can resolve it immediately when all but
		// one member are known retransmitters.
		for _, res := range r.store.Add(slot, obs.Mix, r.buf) {
			r.countResolved(res)
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: int(slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
			})
			if delivered {
				r.active.Remove(res.ID)
			}
		}
		if probe && remaining <= 0 {
			// The pre-estimate undershot: a p=1 probe collided, so tags
			// remain. Raise the reader's belief past the identified
			// count to resume normal operation.
			r.n = r.m.Identified() + 2
			env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(r.n), Identified: r.m.Identified()})
		}
		if r.consecutiveCollisions >= 25 {
			// At the design load a collision happens with probability
			// ~0.41, so 25 in a row (~2e-10) only occur when the
			// pre-estimate undershoots badly and p is far too high.
			// Double the believed deficit to recover.
			deficit := r.n - r.m.Identified()
			if deficit < 1 {
				deficit = 1
			}
			r.n = r.m.Identified() + 2*deficit
			r.consecutiveCollisions = 0
			env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(r.n), Identified: r.m.Identified()})
		}
	}
	r.m.TagTransmissions += len(r.buf)
	env.NotifySlot(protocol.SlotEvent{
		Seq:          r.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(r.buf),
		Identified:   r.m.Identified(),
	})
	return false
}
