// Package scat implements the Slotted Collision-Aware Tag identification
// protocol (paper, Section IV).
//
// SCAT is the paper's first protocol: every slot begins with an
// advertisement carrying the slot index and a report probability
// p_i = omega / N_i, where N_i is the number of tags not yet identified
// (SCAT assumes the total population N is known from a pre-estimation
// step). Tags whose report hash passes transmit their ID; the reader
// decodes singletons directly, records collision slots, and resolves
// records through analog network coding as constituents become known.
// IDs recovered from records are acknowledged in full (96 bits) — the
// overhead FCAT later removes.
package scat

import (
	"fmt"
	"math"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/channel"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/prestep"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Config parameterises SCAT.
type Config struct {
	// Lambda is the ANC decoder capability the protocol is tuned for; it
	// selects the default Omega and appears in the protocol name. It must
	// match the channel's capability for the tuning to be optimal.
	Lambda int

	// Omega overrides the report-probability constant omega = N_i * p_i.
	// Zero selects the optimal (lambda!)^(1/lambda) from Section IV-C.
	Omega float64

	// KnownN overrides the population size the reader assumes (SCAT's
	// pre-estimated N). Zero uses the true population size, i.e. a perfect
	// pre-estimate — unless PreEstimate is set.
	KnownN int

	// PreEstimate runs the real pre-estimation phase of the paper's
	// reference [24] (package prestep) to obtain N, spending probe slots
	// and air time before identification starts. It overrides KnownN.
	PreEstimate bool

	// PreEstimateConfig tunes the pre-estimation phase (zero values take
	// the prestep defaults).
	PreEstimateConfig prestep.Config

	// EmptyProbeAfter is the number of consecutive empty slots after which
	// the reader probes with p = 1 to test for termination (Section IV-A).
	// Zero selects the default of 10: at the optimal load an empty slot
	// has probability ~0.24, so a shorter run fires spurious probes — each
	// of which makes every outstanding tag transmit at once, wasting a
	// collision slot and a burst of tag energy.
	EmptyProbeAfter int
}

// Protocol is a configured SCAT instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns a SCAT instance. Zero config fields take defaults
// (lambda = 2, the optimal omega, perfect pre-estimate).
func New(cfg Config) *Protocol {
	if cfg.Lambda < 1 {
		cfg.Lambda = 2
	}
	if cfg.Omega <= 0 {
		cfg.Omega = analysis.OptimalOmega(cfg.Lambda)
	}
	if cfg.EmptyProbeAfter <= 0 {
		cfg.EmptyProbeAfter = 10
	}
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("SCAT-%d", p.cfg.Lambda) }

// Run implements protocol.Protocol.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	m, err := p.run(env)
	env.TraceRunEnd(p.Name(), m, err)
	return m, err
}

func (p *Protocol) run(env *protocol.Env) (protocol.Metrics, error) {
	var (
		m      = protocol.Metrics{Tags: len(env.Tags)}
		clock  air.Clock
		active = protocol.NewActiveSet(env.Tags)
		store  = record.NewStore()
		buf    = make([]tagid.ID, 0, 64)
	)
	store.Tracer = env.Tracer
	env.TraceRunStart(p.Name())
	n := p.cfg.KnownN
	if n <= 0 {
		n = len(env.Tags)
	}
	if p.cfg.PreEstimate {
		pre, err := prestep.Estimate(env, p.cfg.PreEstimateConfig)
		if err != nil {
			m.OnAir = pre.OnAir
			return m, fmt.Errorf("pre-estimation: %w", err)
		}
		n = int(math.Round(pre.Estimate))
		m.EmptySlots += pre.EmptySlots
		m.SingletonSlots += pre.SingletonSlots
		m.CollisionSlots += pre.CollisionSlots
		clock.Add(pre.OnAir)
		env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(n)})
	}
	budget := env.SlotBudget()
	consecutiveEmpty := 0
	consecutiveCollisions := 0
	seen := make(map[tagid.ID]struct{}, len(env.Tags))

	// countDirect and countResolved record a first-time identification;
	// duplicates (retransmissions after a lost acknowledgement) are
	// discarded, as Section IV-E prescribes.
	countDirect := func(id tagid.ID) {
		if _, dup := seen[id]; dup {
			return
		}
		seen[id] = struct{}{}
		m.DirectIDs++
		env.NotifyIdentified(id, false)
	}
	countResolved := func(res record.Resolved) {
		if _, dup := seen[res.ID]; dup {
			return
		}
		seen[res.ID] = struct{}{}
		m.ResolvedIDs++
		env.NotifyIdentified(res.ID, true)
		// SCAT broadcasts each recovered ID in full so the tag stops
		// participating (Section IV-A).
		clock.Add(env.Timing.ResolvedIDAck())
	}

	for slot := uint64(0); ; slot++ {
		if int(slot) >= budget {
			m.OnAir = clock.Elapsed()
			return m, protocol.ErrNoProgress
		}

		remaining := n - m.Identified()
		// Termination: after enough consecutive empty slots (or once the
		// reader believes no tag is left) probe with p = 1; a further empty
		// slot proves the population is exhausted.
		probe := remaining <= 0 || consecutiveEmpty >= p.cfg.EmptyProbeAfter
		reportProb := 1.0
		if !probe {
			reportProb = p.cfg.Omega / float64(remaining)
			if reportProb > 1 {
				reportProb = 1
			}
		}

		clock.Add(env.Timing.SlotAdvertisement() + env.Timing.Slot())
		env.TraceAdvert(obsev.AdvertEvent{Seq: int(slot), P: reportProb})
		buf = active.Transmitters(env.RNG, env.TxModel, slot, reportProb, buf)
		obs := env.Channel.Observe(buf)

		switch obs.Kind {
		case channel.Empty:
			m.EmptySlots++
			if probe {
				m.OnAir = clock.Elapsed()
				// The terminating probe is a counted slot like any other;
				// report it so observers see exactly TotalSlots() events.
				env.NotifySlot(protocol.SlotEvent{
					Seq:        m.TotalSlots() - 1,
					Kind:       obs.Kind,
					Identified: m.Identified(),
				})
				return m, nil
			}
			consecutiveEmpty++
			consecutiveCollisions = 0
		case channel.Singleton:
			m.SingletonSlots++
			consecutiveEmpty = 0
			consecutiveCollisions = 0
			countDirect(obs.ID)
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: int(slot), ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
			})
			if delivered {
				active.Remove(obs.ID)
			}
			for _, res := range store.OnIdentified(obs.ID) {
				countResolved(res)
				delivered := env.AckDelivered()
				env.TraceAck(obsev.AckEvent{
					Seq: int(slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
				})
				if delivered {
					active.Remove(res.ID)
				}
			}
		case channel.Collision:
			m.CollisionSlots++
			consecutiveEmpty = 0
			consecutiveCollisions++
			// Storing the record can resolve it immediately when all but
			// one member are known retransmitters.
			for _, res := range store.Add(slot, obs.Mix, buf) {
				countResolved(res)
				delivered := env.AckDelivered()
				env.TraceAck(obsev.AckEvent{
					Seq: int(slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
				})
				if delivered {
					active.Remove(res.ID)
				}
			}
			if probe && remaining <= 0 {
				// The pre-estimate undershot: a p=1 probe collided, so tags
				// remain. Raise the reader's belief past the identified
				// count to resume normal operation.
				n = m.Identified() + 2
				env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(n), Identified: m.Identified()})
			}
			if consecutiveCollisions >= 25 {
				// At the design load a collision happens with probability
				// ~0.41, so 25 in a row (~2e-10) only occur when the
				// pre-estimate undershoots badly and p is far too high.
				// Double the believed deficit to recover.
				deficit := n - m.Identified()
				if deficit < 1 {
					deficit = 1
				}
				n = m.Identified() + 2*deficit
				consecutiveCollisions = 0
				env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(n), Identified: m.Identified()})
			}
		}
		m.TagTransmissions += len(buf)
		env.NotifySlot(protocol.SlotEvent{
			Seq:          m.TotalSlots() - 1,
			Kind:         obs.Kind,
			Transmitters: len(buf),
			Identified:   m.Identified(),
		})
	}
}
