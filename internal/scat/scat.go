// Package scat implements the Slotted Collision-Aware Tag identification
// protocol (paper, Section IV).
//
// SCAT is the paper's first protocol: every slot begins with an
// advertisement carrying the slot index and a report probability
// p_i = omega / N_i, where N_i is the number of tags not yet identified
// (SCAT assumes the total population N is known from a pre-estimation
// step). Tags whose report hash passes transmit their ID; the reader
// decodes singletons directly, records collision slots, and resolves
// records through analog network coding as constituents become known.
// IDs recovered from records are acknowledged in full (96 bits) — the
// overhead FCAT later removes.
package scat

import (
	"fmt"
	"maps"
	"math"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/channel"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/prestep"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Config parameterises SCAT.
type Config struct {
	// Lambda is the ANC decoder capability the protocol is tuned for; it
	// selects the default Omega and appears in the protocol name. It must
	// match the channel's capability for the tuning to be optimal.
	Lambda int

	// Omega overrides the report-probability constant omega = N_i * p_i.
	// Zero selects the optimal (lambda!)^(1/lambda) from Section IV-C.
	Omega float64

	// KnownN overrides the population size the reader assumes (SCAT's
	// pre-estimated N). Zero uses the true population size, i.e. a perfect
	// pre-estimate — unless PreEstimate is set.
	KnownN int

	// PreEstimate runs the real pre-estimation phase of the paper's
	// reference [24] (package prestep) to obtain N, spending probe slots
	// and air time before identification starts. It overrides KnownN.
	PreEstimate bool

	// PreEstimateConfig tunes the pre-estimation phase (zero values take
	// the prestep defaults).
	PreEstimateConfig prestep.Config

	// EmptyProbeAfter is the number of consecutive empty slots after which
	// the reader probes with p = 1 to test for termination (Section IV-A).
	// Zero selects the default of 10: at the optimal load an empty slot
	// has probability ~0.24, so a shorter run fires spurious probes — each
	// of which makes every outstanding tag transmit at once, wasting a
	// collision slot and a burst of tag energy.
	EmptyProbeAfter int
}

// Protocol is a configured SCAT instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns a SCAT instance. Zero config fields take defaults
// (lambda = 2, the optimal omega, perfect pre-estimate).
func New(cfg Config) *Protocol {
	if cfg.Lambda < 1 {
		cfg.Lambda = 2
	}
	if cfg.Omega <= 0 {
		cfg.Omega = analysis.OptimalOmega(cfg.Lambda)
	}
	if cfg.EmptyProbeAfter <= 0 {
		cfg.EmptyProbeAfter = 10
	}
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("SCAT-%d", p.cfg.Lambda) }

var _ protocol.SessionProtocol = (*Protocol)(nil)

// Run implements protocol.Protocol by driving a fresh session to
// completion.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	return protocol.RunSession(p, env)
}

// session carries one identification round's state; doSlot advances it by
// one slot. The struct form (rather than loop-local closures) lets the
// steady state be driven slot-by-slot, which the allocation-regression
// tests use and protocol.Session requires.
type session struct {
	p      *Protocol
	env    *protocol.Env
	m      protocol.Metrics
	clock  air.Clock
	active *protocol.ActiveSet
	store  *record.Store
	buf    []tagid.ID
	seen   map[tagid.ID]struct{}

	// n is the reader's current belief of the population size.
	n                     int
	consecutiveEmpty      int
	consecutiveCollisions int

	slot    uint64
	budget  int
	needPre bool
	err     error
}

var _ protocol.Session = (*session)(nil)

// sessionScratch is the reusable core of a session (see protocol.Scratch):
// the active set, the record store and the seen map are session-sized, so a
// campaign worker reinitialises them in place between runs instead of
// reallocating. The per-slot transmitter buffer stays per-session — its
// slice header would go stale in the scratch as the session grows it.
type sessionScratch struct {
	active *protocol.ActiveSet
	store  *record.Store
	seen   map[tagid.ID]struct{}
}

// scratchKey namespaces this protocol's state in the shared container.
const scratchKey = "scat"

// Begin implements protocol.SessionProtocol.
func (p *Protocol) Begin(env *protocol.Env) protocol.Session {
	s := &session{
		p:       p,
		env:     env,
		m:       protocol.Metrics{Tags: len(env.Tags)},
		buf:     make([]tagid.ID, 0, 64),
		budget:  env.SlotBudget(),
		needPre: p.cfg.PreEstimate,
	}
	if sc, _ := env.Scratch.Get(scratchKey).(*sessionScratch); sc != nil {
		sc.active.ResetTags(env.Tags)
		sc.store.Reset()
		clear(sc.seen)
		s.active, s.store, s.seen = sc.active, sc.store, sc.seen
	} else {
		s.active = protocol.NewActiveSet(env.Tags)
		s.store = record.NewStore()
		s.seen = make(map[tagid.ID]struct{}, len(env.Tags))
		env.Scratch.Put(scratchKey, &sessionScratch{active: s.active, store: s.store, seen: s.seen})
	}
	s.store.Tracer = env.Tracer
	s.store.Quarantine = env.Hardened()
	if env.Stream {
		s.active.SetStream(true)
		if rel, ok := env.Channel.(channel.Releaser); ok {
			s.store.SetReleaser(rel)
		}
	}
	env.Clock = &s.clock
	env.TraceRunStart(p.Name())
	s.n = p.cfg.KnownN
	if s.n <= 0 {
		s.n = len(env.Tags)
	}
	return s
}

// Protocol implements protocol.Session.
func (r *session) Protocol() string { return r.p.Name() }

// Step implements protocol.Session. The first step runs the pre-estimation
// phase when configured; every other step is one advertisement + report
// slot. Stepping a done session keeps probing the field at p = 1, so newly
// admitted tags are picked back up.
func (r *session) Step() (bool, error) {
	if r.err != nil {
		return false, r.err
	}
	if r.needPre {
		r.needPre = false
		pre, err := prestep.Estimate(r.env, r.p.cfg.PreEstimateConfig)
		if err != nil {
			r.clock.Add(pre.OnAir)
			r.err = fmt.Errorf("pre-estimation: %w", err)
			return false, r.err
		}
		r.n = int(math.Round(pre.Estimate))
		r.m.EmptySlots += pre.EmptySlots
		r.m.SingletonSlots += pre.SingletonSlots
		r.m.CollisionSlots += pre.CollisionSlots
		r.clock.Add(pre.OnAir)
		r.env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(r.n)})
		return false, nil
	}
	if int(r.slot) >= r.budget {
		r.err = protocol.ErrNoProgress
		return false, r.err
	}
	done := r.doSlot(r.slot)
	r.slot++
	return done, nil
}

// Admit implements protocol.Session. SCAT assumes a known population, so an
// admission also raises the reader's belief n (a portal sensor announcing
// the arrival); even without that, the consecutive-collision recovery would
// re-locate the count.
func (r *session) Admit(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := r.seen[id]; identified {
			continue
		}
		if r.active.Add(id) {
			r.m.Tags++
			r.n++
			r.store.Readmit(id)
		}
	}
}

// Revoke implements protocol.Session. A departed unidentified tag lowers the
// believed population and invalidates its pending record memberships.
func (r *session) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		if !r.active.Remove(id) {
			continue
		}
		if _, identified := r.seen[id]; !identified {
			r.store.Revoke(id)
			if r.n > r.m.Identified() {
				r.n--
			}
		}
	}
}

// Metrics implements protocol.Session.
func (r *session) Metrics() protocol.Metrics {
	m := r.m
	m.OnAir = r.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (r *session) Elapsed() time.Duration { return r.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (r *session) Outstanding() int { return r.active.Len() }

// checkpoint is a deep copy of a SCAT session's state.
type checkpoint struct {
	name   string
	m      protocol.Metrics
	clock  air.Clock
	active *protocol.ActiveSet
	store  *record.Store
	seen   map[tagid.ID]struct{}

	n                     int
	consecutiveEmpty      int
	consecutiveCollisions int

	slot    uint64
	budget  int
	needPre bool
	err     error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *checkpoint) Protocol() string { return c.name }

// Snapshot implements protocol.Session.
func (r *session) Snapshot() (protocol.Checkpoint, error) {
	store, err := r.store.Clone()
	if err != nil {
		return nil, err
	}
	cp := &checkpoint{
		name:                  r.p.Name(),
		m:                     r.m,
		clock:                 r.clock,
		active:                r.active.Clone(),
		store:                 store,
		seen:                  maps.Clone(r.seen),
		n:                     r.n,
		consecutiveEmpty:      r.consecutiveEmpty,
		consecutiveCollisions: r.consecutiveCollisions,
		slot:                  r.slot,
		budget:                r.budget,
		needPre:               r.needPre,
		err:                   r.err,
		rng:                   *r.env.RNG,
	}
	if st, ok := r.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (r *session) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*checkpoint)
	if !ok || cp.name != r.p.Name() {
		return protocol.ErrCheckpointMismatch
	}
	store, err := cp.store.Clone()
	if err != nil {
		return err
	}
	r.m = cp.m
	r.clock = cp.clock
	r.active = cp.active.Clone()
	r.store = store
	r.seen = maps.Clone(cp.seen)
	r.n = cp.n
	r.consecutiveEmpty = cp.consecutiveEmpty
	r.consecutiveCollisions = cp.consecutiveCollisions
	r.slot = cp.slot
	r.budget = cp.budget
	r.needPre = cp.needPre
	r.err = cp.err
	*r.env.RNG = cp.rng
	if cp.chanState != nil {
		r.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}

// countDirect and countResolved record a first-time identification;
// duplicates (retransmissions after a lost acknowledgement) are discarded,
// as Section IV-E prescribes.
func (r *session) countDirect(id tagid.ID) {
	if _, dup := r.seen[id]; dup {
		return
	}
	r.seen[id] = struct{}{}
	r.m.DirectIDs++
	r.env.NotifyIdentified(id, false)
}

func (r *session) countResolved(res record.Resolved) {
	if _, dup := r.seen[res.ID]; dup {
		return
	}
	r.seen[res.ID] = struct{}{}
	r.m.ResolvedIDs++
	r.env.NotifyIdentified(res.ID, true)
	// SCAT broadcasts each recovered ID in full so the tag stops
	// participating (Section IV-A).
	r.clock.Add(r.env.Timing.ResolvedIDAck())
}

// doSlot runs one advertisement + slot and reports whether the round
// terminated (the final probe proved the population exhausted).
func (r *session) doSlot(slot uint64) (done bool) {
	p, env := r.p, r.env
	remaining := r.n - r.m.Identified()
	// Termination: after enough consecutive empty slots (or once the
	// reader believes no tag is left) probe with p = 1; a further empty
	// slot proves the population is exhausted.
	probe := remaining <= 0 || r.consecutiveEmpty >= p.cfg.EmptyProbeAfter
	reportProb := 1.0
	if !probe {
		reportProb = p.cfg.Omega / float64(remaining)
		if reportProb > 1 {
			reportProb = 1
		}
	}

	r.clock.Add(env.Timing.SlotAdvertisement() + env.Timing.Slot())
	env.TraceAdvert(obsev.AdvertEvent{Seq: int(slot), P: reportProb})
	r.buf = r.active.Transmitters(env.RNG, env.TxModel, slot, reportProb, r.buf)
	obs := env.Channel.Observe(r.buf)

	switch obs.Kind {
	case channel.Empty:
		r.m.EmptySlots++
		if probe {
			r.m.OnAir = r.clock.Elapsed()
			// The terminating probe is a counted slot like any other;
			// report it so observers see exactly TotalSlots() events.
			env.NotifySlot(protocol.SlotEvent{
				Seq:        r.m.TotalSlots() - 1,
				Kind:       obs.Kind,
				Identified: r.m.Identified(),
			})
			return true
		}
		r.consecutiveEmpty++
		r.consecutiveCollisions = 0
	case channel.Singleton:
		r.m.SingletonSlots++
		r.consecutiveEmpty = 0
		r.consecutiveCollisions = 0
		r.countDirect(obs.ID)
		delivered := env.AckDelivered()
		env.TraceAck(obsev.AckEvent{
			Seq: int(slot), ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			r.active.Remove(obs.ID)
		}
		for _, res := range r.store.OnIdentified(obs.ID) {
			r.countResolved(res)
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: int(slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
			})
			if delivered {
				r.active.Remove(res.ID)
			}
		}
	case channel.Collision:
		r.m.CollisionSlots++
		r.consecutiveEmpty = 0
		r.consecutiveCollisions++
		// Storing the record can resolve it immediately when all but
		// one member are known retransmitters.
		for _, res := range r.store.Add(slot, obs.Mix, r.buf) {
			r.countResolved(res)
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: int(slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
			})
			if delivered {
				r.active.Remove(res.ID)
			}
		}
		if probe && remaining <= 0 {
			// The pre-estimate undershot: a p=1 probe collided, so tags
			// remain. Raise the reader's belief past the identified
			// count to resume normal operation.
			r.n = r.m.Identified() + 2
			env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(r.n), Identified: r.m.Identified()})
		}
		if r.consecutiveCollisions >= 25 {
			// At the design load a collision happens with probability
			// ~0.41, so 25 in a row (~2e-10) only occur when the
			// pre-estimate undershoots badly and p is far too high.
			// Double the believed deficit to recover.
			deficit := r.n - r.m.Identified()
			if deficit < 1 {
				deficit = 1
			}
			r.n = r.m.Identified() + 2*deficit
			r.consecutiveCollisions = 0
			env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(r.n), Identified: r.m.Identified()})
		}
	case channel.Captured:
		// Capture effect: a collision on the air whose strongest member
		// decoded anyway. Acknowledge the captured ID like a direct read,
		// then store the residual recording; Add subtracts the captured tag
		// and can resolve the rest immediately.
		r.m.CollisionSlots++
		r.consecutiveEmpty = 0
		r.consecutiveCollisions++
		r.countDirect(obs.ID)
		delivered := env.AckDelivered()
		env.TraceAck(obsev.AckEvent{
			Seq: int(slot), ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			r.active.Remove(obs.ID)
		}
		for _, res := range r.store.OnIdentified(obs.ID) {
			r.countResolved(res)
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: int(slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
			})
			if delivered {
				r.active.Remove(res.ID)
			}
		}
		for _, res := range r.store.Add(slot, obs.Mix, r.buf) {
			r.countResolved(res)
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: int(slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
			})
			if delivered {
				r.active.Remove(res.ID)
			}
		}
		if probe && remaining <= 0 {
			r.n = r.m.Identified() + 2
			env.TraceEstimate(obsev.EstimateEvent{Estimate: float64(r.n), Identified: r.m.Identified()})
		}
	}
	r.m.TagTransmissions += len(r.buf)
	env.NotifySlot(protocol.SlotEvent{
		Seq:          r.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(r.buf),
		Identified:   r.m.Identified(),
	})
	return false
}
