package signal

import (
	"math"
	"math/cmplx"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Batched structure-of-arrays kernels. A Plane stores the I and Q sample
// sequences of a waveform in two flat float64 slices, so the hot kernels
// (synthesis, gain fitting, cancellation, envelope test, demodulation) run
// as straight-line loops over contiguous memory: the compiler eliminates
// bounds checks, and independent accumulator chains keep both FP ports
// busy instead of serialising on one complex accumulator.
//
// Every kernel in this file is bit-identical to its scalar Waveform
// counterpart: each output value is produced by the exact same sequence of
// floating-point operations, in the same order, as the complex128 code
// path. (Go's complex multiply lowers to the naive four-multiply form with
// individually rounded parts, which is exactly what the plane loops spell
// out; conjugation and negation are exact, so Hermitian mirrors reuse the
// transposed dot product instead of recomputing it.) The only deliberate
// exception is EnvelopeFlatPlane's fast path, which uses reassociated
// moment sums to *bound* the decision — whenever the bound is not
// conclusive it falls back to the exact scalar-order loop, so the returned
// boolean is always the one the scalar test computes.
// FuzzBatchedSignalEquivalence pins all of this.

// Plane is the structure-of-arrays layout of a Waveform: Re holds the
// in-phase (real) samples and Im the quadrature (imaginary) samples.
// Both slices always have equal length.
type Plane struct {
	Re, Im []float64
}

// Len returns the number of samples.
func (p *Plane) Len() int { return len(p.Re) }

// Reset sizes the plane to n samples, reusing capacity, and zeroes them.
func (p *Plane) Reset(n int) {
	if cap(p.Re) < n {
		p.Re = make([]float64, n)
		p.Im = make([]float64, n)
		return
	}
	p.Re = p.Re[:n]
	p.Im = p.Im[:n]
	clear(p.Re)
	clear(p.Im)
}

// resize sizes the plane to n samples, reusing capacity, without zeroing.
func (p *Plane) resize(n int) {
	if cap(p.Re) < n {
		p.Re = make([]float64, n)
		p.Im = make([]float64, n)
		return
	}
	p.Re = p.Re[:n]
	p.Im = p.Im[:n]
}

// SetWaveform copies the interleaved waveform into the plane.
func (p *Plane) SetWaveform(w Waveform) {
	p.resize(len(w))
	for i, s := range w {
		p.Re[i] = real(s)
		p.Im[i] = imag(s)
	}
}

// Waveform interleaves the plane back into a complex waveform, appending
// to dst[:0]'s backing array.
func (p *Plane) Waveform(dst Waveform) Waveform {
	dst = dst[:0]
	for i := range p.Re {
		dst = append(dst, complex(p.Re[i], p.Im[i]))
	}
	return dst
}

// CopyFrom makes p an independent copy of src.
func (p *Plane) CopyFrom(src *Plane) {
	p.resize(src.Len())
	copy(p.Re, src.Re)
	copy(p.Im, src.Im)
}

// ModulateInto is Modulate writing into a reusable plane.
func ModulateInto(p *Plane, data []byte, nbits, spb int) {
	p.resize(1 + nbits*spb)
	phase := 0.0
	p.Re[0], p.Im[0] = 1, 0
	n := 1
	for i := 0; i < nbits; i++ {
		step := phaseStepPerBit / float64(spb)
		if data[i/8]>>(7-i%8)&1 == 0 {
			step = -step
		}
		for s := 0; s < spb; s++ {
			phase += step
			e := cmplx.Exp(complex(0, phase))
			p.Re[n], p.Im[n] = real(e), imag(e)
			n++
		}
	}
}

// ModulateIDInto is ModulateID writing into a reusable plane.
func ModulateIDInto(p *Plane, id tagid.ID, spb int) {
	ModulateInto(p, id.Bytes(), tagid.Bits, spb)
}

// RotationInto fills p with the n-sample phase ramp e^(i*dw*k), the
// frequency-offset rotation a drifting tag applies to its waveform. The
// samples are computed by the exact expression the scalar synthesis loop
// uses, so a cached rotation plane reproduces its bits.
func RotationInto(p *Plane, dw float64, n int) {
	p.resize(n)
	for i := 0; i < n; i++ {
		e := cmplx.Exp(complex(0, dw * float64(i)))
		p.Re[i], p.Im[i] = real(e), imag(e)
	}
}

// AccumulateScaled adds gain-scaled ref into p sample-wise: p += ref * g.
// Bit-identical to `rx[i] += ref[i] * g` over complex128.
func (p *Plane) AccumulateScaled(ref *Plane, g complex128) {
	gr, gi := real(g), imag(g)
	n := p.Len()
	pr, pi := p.Re[:n], p.Im[:n]
	rr, ri := ref.Re[:n], ref.Im[:n]
	for k := range pr {
		sr, si := rr[k], ri[k]
		pr[k] += sr*gr - si*gi
		pi[k] += sr*gi + si*gr
	}
}

// AccumulateScaledRotated adds a rotated, gain-scaled ref into p:
// p[k] += (ref[k] * rot[k]) * g, the association order of the scalar
// synthesis loop `rx[i] += s * e^(i*dw*i) * g`.
func (p *Plane) AccumulateScaledRotated(ref, rot *Plane, g complex128) {
	gr, gi := real(g), imag(g)
	n := p.Len()
	pr, pi := p.Re[:n], p.Im[:n]
	rr, ri := ref.Re[:n], ref.Im[:n]
	wr, wi := rot.Re[:n], rot.Im[:n]
	for k := range pr {
		sr, si := rr[k], ri[k]
		tr := sr*wr[k] - si*wi[k]
		ti := sr*wi[k] + si*wr[k]
		pr[k] += tr*gr - ti*gi
		pi[k] += tr*gi + ti*gr
	}
}

// AddNoisePlane adds complex AWGN in place, drawing the generator in the
// exact order AddNoise does (I then Q per sample).
func AddNoisePlane(p *Plane, sigma float64, r *rng.Source) {
	if sigma <= 0 {
		return
	}
	s := sigma / math.Sqrt2
	n := p.Len()
	pr, pi := p.Re[:n], p.Im[:n]
	for k := range pr {
		pr[k] += s * r.NormFloat64()
		pi[k] += s * r.NormFloat64()
	}
}

// DecodeIDPlane is DecodeID over a plane: differential MSK demodulation of
// a 96-bit waveform plus CRC verification. The per-bit decision integrates
// imag(w[n] * conj(w[n-1])) with the scalar loop's operation order.
func DecodeIDPlane(p *Plane, spb int) (tagid.ID, bool) {
	if p.Len() != 1+tagid.Bits*spb {
		return tagid.ID{}, false
	}
	var id tagid.ID
	re, im := p.Re, p.Im[:len(p.Re)]
	for i := 0; i < tagid.Bits; i++ {
		var ai float64
		base := 1 + i*spb
		for s := 0; s < spb; s++ {
			xr, xi := re[base+s], im[base+s]
			yr, yi := re[base+s-1], im[base+s-1]
			ai += xi*yr - xr*yi
		}
		if ai > 0 {
			id[i/8] |= 1 << (7 - i%8)
		}
	}
	return id, id.Valid()
}

// EnvelopeFlatPlane is EnvelopeFlat over a plane. The fast path makes one
// branchless pass accumulating the first two moments of the squared
// magnitude X = |s|^2 (reassociated into independent partial sums, so the
// loop is add/mul throughput-bound instead of sqrt throughput-bound like
// the scalar test) and decides from a rigorous envelope bound:
//
//	Var(m) <= E[(m - sqrt(q))^2] = E[(X-q)^2 / (m + sqrt(q))^2] <= Var(X)/q
//
// for m = |s| >= 0 and q = E[X], hence sd <= sqrt(Var(X)/q) and
// mean = E[m] >= sqrt(q - Var(X)/q). When those bounds (inflated by a
// tolerance covering the reassociation error) prove the scalar test would
// accept, the answer is true without touching a square root per sample;
// anything else — including every rejection — falls back to the exact
// scalar-order loop, so the decision is always bit-identical to
// EnvelopeFlat.
func EnvelopeFlatPlane(p *Plane, noiseSigma float64) bool {
	n := p.Len()
	if n == 0 {
		return true
	}
	re, im := p.Re, p.Im[:len(p.Re)]
	var s0, s1, q0, q1 float64
	k := 0
	for ; k+2 <= n; k += 2 {
		x0 := re[k]*re[k] + im[k]*im[k]
		x1 := re[k+1]*re[k+1] + im[k+1]*im[k+1]
		s0 += x0
		q0 += x0 * x0
		s1 += x1
		q1 += x1 * x1
	}
	if k < n {
		x := re[k]*re[k] + im[k]*im[k]
		s0 += x
		q0 += x * x
	}
	nf := float64(n)
	q := (s0 + s1) / nf
	if q > 0 {
		varX := (q0+q1)/nf - q*q
		if varX < 0 {
			varX = 0
		}
		vq := varX / q
		mLo2 := q - vq
		if mLo2 < 0 {
			mLo2 = 0
		}
		// tol absorbs the difference between the reassociated moments here
		// and the sequential sums of the scalar loop (relative error
		// ~n*2^-53, amplified by the variance cancellation to ~1e-7 absolute
		// in the worst perfectly-flat case); the accept margin of a true
		// singleton is ~1e-2, so the guard band costs nothing.
		tol := 1e-5 + 1e-9*q
		sdHi := math.Sqrt(vq)
		mLo := math.Sqrt(mLo2)
		if sdHi+tol <= 3*noiseSigma+0.02*(mLo-tol) {
			return true
		}
	}
	// Inconclusive: run the scalar test's exact operation sequence.
	var sum, sumsq float64
	for k := 0; k < n; k++ {
		msq := re[k]*re[k] + im[k]*im[k]
		sum += math.Sqrt(msq)
		sumsq += msq
	}
	mean := sum / nf
	varsum := sumsq/nf - mean*mean
	if varsum < 0 {
		varsum = 0
	}
	sd := math.Sqrt(varsum)
	return sd <= 3*noiseSigma+0.02*mean
}

// EstimateGainsPlane is GainScratch.EstimateGains over planes: it builds
// the normal equations (R^H R) g = R^H y with fused dot-product loops and
// solves the same small complex system. The Gram matrix is Hermitian, so
// only the upper triangle is computed; the mirrored entry a[j][i] =
// conj(a[i][j]) is bit-identical to the scalar path's independent dot
// product because negation is exact and IEEE rounding is sign-symmetric
// (the one corner case, an imaginary part that accumulates to exactly
// zero, is recomputed in scalar order). Self-products have an exactly-zero
// imaginary part in the scalar path too (each term is p - p for the same
// rounded product p), so they are stored as real. The result is
// bit-identical to EstimateGains on the interleaved inputs.
func (s *GainScratch) EstimateGainsPlane(dst []complex128, mixed *Plane, refs []*Plane) []complex128 {
	m := len(refs)
	if m == 0 {
		return nil
	}
	if cap(s.buf) < m*m+m {
		s.buf = make([]complex128, m*m+m)
	}
	a := s.buf[:m*m]
	b := s.buf[m*m : m*m+m]
	n := mixed.Len()
	mr, mi := mixed.Re[:n], mixed.Im[:n]
	for i := 0; i < m; i++ {
		// Fused pass: the reference's self-energy and its correlation with
		// the recording share one loop (three independent accumulator
		// chains, each in the scalar path's per-sample order).
		xr, xi := refs[i].Re[:n], refs[i].Im[:n]
		var sr, br, bi float64
		for k := range xr {
			r, q := xr[k], xi[k]
			sr += r*r + q*q
			br += r*mr[k] + q*mi[k]
			bi += r*mi[k] - q*mr[k]
		}
		a[i*m+i] = complex(sr, 0)
		b[i] = complex(br, bi)
		for j := i + 1; j < m; j++ {
			ur, ui := refs[j].Re[:n], refs[j].Im[:n]
			var dr, di float64
			for k := range xr {
				r, q := xr[k], xi[k]
				dr += r*ur[k] + q*ui[k]
				di += r*ui[k] - q*ur[k]
			}
			a[i*m+j] = complex(dr, di)
			if di == 0 {
				// An exactly-zero imaginary part can carry a different zero
				// sign through the mirrored accumulation; recompute the
				// transposed dot's imaginary part in its own scalar order.
				di = 0
				for k := range xr {
					di += ur[k]*xi[k] - ui[k]*xr[k]
				}
				a[j*m+i] = complex(dr, di)
			} else {
				a[j*m+i] = complex(dr, -di)
			}
		}
	}
	if cap(dst) < m {
		dst = make([]complex128, m)
	}
	dst = dst[:m]
	if !solveComplex(a, b, dst, m) {
		return nil
	}
	return dst
}

// CancelIntoPlane is CancelInto over planes: dst = mixed - sum_k gains[k] *
// refs[k], with the scalar loop's per-reference, per-sample operation
// order. dst must not alias any of the refs; it may be (and typically is)
// a reusable buffer.
func CancelIntoPlane(dst, mixed *Plane, refs []*Plane, gains []complex128) *Plane {
	n := mixed.Len()
	if dst != mixed {
		dst.CopyFrom(mixed)
	}
	dr, di := dst.Re[:n], dst.Im[:n]
	for k, ref := range refs {
		g := gains[k]
		gr, gi := real(g), imag(g)
		rr, ri := ref.Re[:n], ref.Im[:n]
		for i := range dr {
			sr, si := rr[i], ri[i]
			dr[i] -= sr*gr - si*gi
			di[i] -= sr*gi + si*gr
		}
	}
	return dst
}

// offsetCorrelationPlane is offsetCorrelation over planes.
func offsetCorrelationPlane(mixed, ref *Plane, dw float64) float64 {
	rot := cmplx.Exp(complex(0, dw))
	phase := complex(1, 0)
	n := ref.Len()
	rr, ri := ref.Re[:n], ref.Im[:n]
	mr, mi := mixed.Re[:n], mixed.Im[:n]
	var dotr, doti float64
	for k := range rr {
		pr, pi := real(phase), imag(phase)
		sr, si := rr[k], ri[k]
		tr := sr*pr - si*pi
		ti := sr*pi + si*pr
		dotr += tr*mr[k] + ti*mi[k]
		doti += tr*mi[k] - ti*mr[k]
		phase *= rot
	}
	return cmplx.Abs(complex(dotr, doti))
}

// lsGainAtOffsetPlane is lsGainAtOffset over planes.
func lsGainAtOffsetPlane(mixed, ref *Plane, dw float64) complex128 {
	rot := cmplx.Exp(complex(0, dw))
	phase := complex(1, 0)
	n := ref.Len()
	rr, ri := ref.Re[:n], ref.Im[:n]
	mr, mi := mixed.Re[:n], mixed.Im[:n]
	var dotr, doti, er float64
	for k := range rr {
		pr, pi := real(phase), imag(phase)
		sr, si := rr[k], ri[k]
		tr := sr*pr - si*pi
		ti := sr*pi + si*pr
		dotr += tr*mr[k] + ti*mi[k]
		doti += tr*mi[k] - ti*mr[k]
		er += tr*tr + ti*ti
		phase *= rot
	}
	energy := complex(er, 0)
	if energy == 0 {
		return 0
	}
	return complex(dotr, doti) / energy
}

// EstimateGainAndOffsetPlane is EstimateGainAndOffset over planes: the
// same coarse scan plus golden-section refinement, evaluating the plane
// correlation kernel.
func EstimateGainAndOffsetPlane(mixed, ref *Plane, spb int) (gain complex128, offset float64) {
	if mixed.Len() != ref.Len() || ref.Len() == 0 {
		return 0, 0
	}
	bound := maxOffsetSearch(spb)
	step := math.Pi / (2 * float64(ref.Len()))
	best, bestMag := 0.0, -1.0
	for dw := -bound; dw <= bound; dw += step {
		if mag := offsetCorrelationPlane(mixed, ref, dw); mag > bestMag {
			bestMag, best = mag, dw
		}
	}
	lo, hi := best-step, best+step
	const phi = 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := offsetCorrelationPlane(mixed, ref, a), offsetCorrelationPlane(mixed, ref, b)
	for i := 0; i < 40; i++ {
		if fa < fb {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = offsetCorrelationPlane(mixed, ref, b)
		} else {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = offsetCorrelationPlane(mixed, ref, a)
		}
	}
	offset = (lo + hi) / 2
	gain = lsGainAtOffsetPlane(mixed, ref, offset)
	return gain, offset
}

// CancelWithOffsetIntoPlane is CancelWithOffsetInto over planes:
// dst[n] = mixed[n] - gain * phase_n * ref[n] with phase_n the running
// offset rotation. dst may be mixed itself (in-place peeling); it must not
// alias ref.
func CancelWithOffsetIntoPlane(dst, mixed, ref *Plane, gain complex128, offset float64) *Plane {
	n := mixed.Len()
	if dst != mixed {
		dst.CopyFrom(mixed)
	}
	rot := cmplx.Exp(complex(0, offset))
	phase := complex(1, 0)
	dr, di := dst.Re[:n], dst.Im[:n]
	rr, ri := ref.Re[:n], ref.Im[:n]
	for k := range dr {
		gp := gain * phase
		gr, gi := real(gp), imag(gp)
		sr, si := rr[k], ri[k]
		dr[k] -= gr*sr - gi*si
		di[k] -= gr*si + gi*sr
		phase *= rot
	}
	return dst
}
