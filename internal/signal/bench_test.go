package signal

import (
	"fmt"
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// BenchmarkEstimateGains measures the joint least-squares gain fit at the
// collision multiplicities the ANC decoder works at (lambda = 1..3), on
// the batched SoA plane kernels the signal channel's decoder uses (see
// soa.go; TestPlaneEstimateGainsBitIdentical pins them to the scalar
// path).
func BenchmarkEstimateGains(b *testing.B) {
	r := rng.New(5)
	for _, m := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("refs=%d", m), func(b *testing.B) {
			refs := make([]*Plane, m)
			mixed := &Plane{}
			mixed.Reset(1 + tagid.Bits*DefaultSamplesPerBit)
			for i := range refs {
				refs[i] = &Plane{}
				ModulateIDInto(refs[i], tagid.Random(r), DefaultSamplesPerBit)
				mixed.AccumulateScaled(refs[i], 1)
			}
			var s GainScratch
			var gains []complex128
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gains = s.EstimateGainsPlane(gains[:0], mixed, refs)
				if gains == nil {
					b.Fatal("singular system")
				}
			}
		})
	}
}

// BenchmarkEstimateGainsScalar keeps the legacy complex128 loop on the
// board for comparison against the plane kernel above.
func BenchmarkEstimateGainsScalar(b *testing.B) {
	r := rng.New(5)
	for _, m := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("refs=%d", m), func(b *testing.B) {
			refs := make([]Waveform, m)
			for i := range refs {
				refs[i] = ModulateID(tagid.Random(r), DefaultSamplesPerBit)
			}
			mixed := Mix(refs...)
			var s GainScratch
			var gains []complex128
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gains = s.EstimateGains(gains[:0], mixed, refs)
				if gains == nil {
					b.Fatal("singular system")
				}
			}
		})
	}
}

// BenchmarkEnvelopeFlat measures the envelope test on a clean singleton
// waveform (the common, accepting case) via the branchless plane fast
// path.
func BenchmarkEnvelopeFlat(b *testing.B) {
	r := rng.New(6)
	p := &Plane{}
	ModulateIDInto(p, tagid.Random(r), DefaultSamplesPerBit)
	w := &Plane{}
	w.Reset(p.Len())
	w.AccumulateScaled(p, complex(0.8, 0.3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !EnvelopeFlatPlane(w, 0.03) {
			b.Fatal("singleton envelope not flat")
		}
	}
}

// BenchmarkEnvelopeFlatScalar is the legacy sqrt-per-sample loop, kept for
// comparison.
func BenchmarkEnvelopeFlatScalar(b *testing.B) {
	r := rng.New(6)
	w := Scale(ModulateID(tagid.Random(r), DefaultSamplesPerBit), complex(0.8, 0.3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !EnvelopeFlat(w, 0.03) {
			b.Fatal("singleton envelope not flat")
		}
	}
}
