package signal

import (
	"fmt"
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// BenchmarkEstimateGains measures the joint least-squares gain fit at the
// collision multiplicities the ANC decoder works at (lambda = 1..3), using
// the reusable scratch the signal channel's decoder uses.
func BenchmarkEstimateGains(b *testing.B) {
	r := rng.New(5)
	for _, m := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("refs=%d", m), func(b *testing.B) {
			refs := make([]Waveform, m)
			for i := range refs {
				refs[i] = ModulateID(tagid.Random(r), DefaultSamplesPerBit)
			}
			mixed := Mix(refs...)
			var s GainScratch
			var gains []complex128
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gains = s.EstimateGains(gains[:0], mixed, refs)
				if gains == nil {
					b.Fatal("singular system")
				}
			}
		})
	}
}

// BenchmarkEnvelopeFlat measures the single-pass envelope test on a
// clean singleton waveform (the common, accepting case).
func BenchmarkEnvelopeFlat(b *testing.B) {
	r := rng.New(6)
	w := Scale(ModulateID(tagid.Random(r), DefaultSamplesPerBit), complex(0.8, 0.3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !EnvelopeFlat(w, 0.03) {
			b.Fatal("singleton envelope not flat")
		}
	}
}
