package signal

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Bit-identity is the contract: the batched kernels must produce the exact
// bits of the scalar path (including zero signs), so the differential
// golden, chaos, and fleet suites cannot tell the two implementations
// apart. Comparisons therefore go through math.Float64bits, never through
// ==, which would hide a +0/-0 divergence.

func planeOf(w Waveform) *Plane {
	var p Plane
	p.SetWaveform(w)
	return &p
}

func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func complexBitsEq(a, b complex128) bool {
	return bitsEq(real(a), real(b)) && bitsEq(imag(a), imag(b))
}

func requirePlaneBits(t *testing.T, what string, w Waveform, p *Plane) {
	t.Helper()
	if len(w) != p.Len() {
		t.Fatalf("%s: length %d vs plane %d", what, len(w), p.Len())
	}
	for i := range w {
		if !bitsEq(real(w[i]), p.Re[i]) || !bitsEq(imag(w[i]), p.Im[i]) {
			t.Fatalf("%s: sample %d = (%x,%x), plane (%x,%x)", what, i,
				math.Float64bits(real(w[i])), math.Float64bits(imag(w[i])),
				math.Float64bits(p.Re[i]), math.Float64bits(p.Im[i]))
		}
	}
}

func TestPlaneModulateBitIdentical(t *testing.T) {
	r := rng.New(41)
	var p Plane
	for _, factor := range []int{1, 2, 4, 8} {
		for i := 0; i < 10; i++ {
			id := tagid.Random(r)
			ModulateIDInto(&p, id, factor)
			requirePlaneBits(t, "modulate", ModulateID(id, factor), &p)
		}
	}
}

func TestPlaneDecodeBitIdentical(t *testing.T) {
	r := rng.New(42)
	for i := 0; i < 30; i++ {
		id := tagid.Random(r)
		w := ModulateID(id, spb)
		if i%2 == 0 {
			w = Scale(w, cmplx.Rect(0.2+r.Float64(), 2*math.Pi*r.Float64()))
		}
		if i%3 == 0 {
			w = AddNoise(w, 0.2, r)
		}
		wantID, wantOK := DecodeID(w, spb)
		gotID, gotOK := DecodeIDPlane(planeOf(w), spb)
		if wantID != gotID || wantOK != gotOK {
			t.Fatalf("decode (%v,%v), scalar (%v,%v)", gotID, gotOK, wantID, wantOK)
		}
	}
	if _, ok := DecodeIDPlane(planeOf(make(Waveform, 17)), spb); ok {
		t.Fatal("plane decode accepted a wrong-length waveform")
	}
}

func TestPlaneEnvelopeMatchesScalar(t *testing.T) {
	r := rng.New(43)
	const sigma = 0.03
	cases := []Waveform{
		nil,
		Scale(ModulateID(tagid.Random(r), spb), complex(0.8, 0.3)),
		AddNoise(Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(0.8, 1.0)), sigma, r),
		AddNoise(Mix(
			Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(0.9, 0.3)),
			Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(0.5, 2.1)),
		), sigma, r),
		// Near-threshold: envelope variance right around the decision line,
		// where the fast-path bound must hand off to the exact fallback.
		AddNoise(Scale(ModulateID(tagid.Random(r), spb), complex(0.1, 0)), sigma, r),
		make(Waveform, 64), // all-zero recording: q == 0 guard
	}
	for i := 0; i < 40; i++ {
		a := Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(0.3+r.Float64(), 2*math.Pi*r.Float64()))
		if i%2 == 1 {
			a = Mix(a, Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(r.Float64(), 2*math.Pi*r.Float64())))
		}
		cases = append(cases, AddNoise(a, sigma*r.Float64()*2, r))
	}
	for i, w := range cases {
		want := EnvelopeFlat(w, sigma)
		got := EnvelopeFlatPlane(planeOf(w), sigma)
		if want != got {
			t.Fatalf("case %d: plane envelope %v, scalar %v", i, got, want)
		}
	}
}

func randomRefs(r *rng.Source, m int) ([]Waveform, []*Plane) {
	refs := make([]Waveform, m)
	planes := make([]*Plane, m)
	for i := range refs {
		refs[i] = ModulateID(tagid.Random(r), spb)
		planes[i] = planeOf(refs[i])
	}
	return refs, planes
}

func TestPlaneEstimateGainsBitIdentical(t *testing.T) {
	r := rng.New(44)
	var sw, sp GainScratch
	for _, m := range []int{1, 2, 3} {
		for i := 0; i < 10; i++ {
			refs, planes := randomRefs(r, m)
			parts := make([]Waveform, m)
			for k := range parts {
				parts[k] = Scale(refs[k], cmplx.Rect(0.3+r.Float64(), 2*math.Pi*r.Float64()))
			}
			mixed := AddNoise(Mix(parts...), 0.03, r)
			want := sw.EstimateGains(nil, mixed, refs)
			got := sp.EstimateGainsPlane(nil, planeOf(mixed), planes)
			if (want == nil) != (got == nil) || len(want) != len(got) {
				t.Fatalf("m=%d: gains %v vs scalar %v", m, got, want)
			}
			for k := range want {
				if !complexBitsEq(want[k], got[k]) {
					t.Fatalf("m=%d gain %d: %v vs scalar %v", m, k, got[k], want[k])
				}
			}
			// Residual cancellation must match bit-for-bit too.
			res := CancelInto(nil, mixed, refs, want)
			var dst Plane
			CancelIntoPlane(&dst, planeOf(mixed), planes, got)
			requirePlaneBits(t, "cancel", res, &dst)
		}
	}
}

func TestPlaneEstimateGainsSingular(t *testing.T) {
	// Duplicate references: the Gram matrix is singular, and its off-diagonal
	// imaginary parts are exactly zero — the Hermitian-mirror corner case.
	ref := ModulateID(tagid.New(1, 1), spb)
	var s GainScratch
	got := s.EstimateGainsPlane(nil, planeOf(ref.Clone()), []*Plane{planeOf(ref), planeOf(ref)})
	if got != nil {
		t.Fatalf("singular system should return nil, got %v", got)
	}
}

func TestPlaneAccumulateScaledBitIdentical(t *testing.T) {
	r := rng.New(45)
	for i := 0; i < 20; i++ {
		ref := ModulateID(tagid.Random(r), spb)
		g := cmplx.Rect(0.3+r.Float64(), 2*math.Pi*r.Float64())
		rx := make(Waveform, len(ref))
		for n := range rx {
			rx[n] = complex(r.NormFloat64(), r.NormFloat64())
		}
		var p Plane
		p.SetWaveform(rx)
		for n := range rx {
			rx[n] += ref[n] * g
		}
		p.AccumulateScaled(planeOf(ref), g)
		requirePlaneBits(t, "accumulate", rx, &p)

		// Rotated path: rx[n] += ref[n] * e^(i*dw*n) * g, left-associated.
		dw := (2*r.Float64() - 1) * maxOffsetSearch(spb)
		var rot Plane
		RotationInto(&rot, dw, len(ref))
		for n := range rx {
			rx[n] += ref[n] * cmplx.Exp(complex(0, dw*float64(n))) * g
		}
		p.AccumulateScaledRotated(planeOf(ref), &rot, g)
		requirePlaneBits(t, "accumulate-rotated", rx, &p)
	}
}

func TestPlaneAddNoiseBitIdentical(t *testing.T) {
	w := Scale(ModulateID(tagid.New(7, 7), spb), complex(0.6, -0.2))
	p := planeOf(w)
	want := AddNoise(w, 0.05, rng.New(99))
	AddNoisePlane(p, 0.05, rng.New(99))
	requirePlaneBits(t, "noise", want, p)
}

func TestPlaneOffsetKernelsBitIdentical(t *testing.T) {
	r := rng.New(46)
	for i := 0; i < 10; i++ {
		ref := ModulateID(tagid.Random(r), spb)
		dw := (2*r.Float64() - 1) * maxOffsetSearch(spb)
		g := cmplx.Rect(0.5+0.5*r.Float64(), 2*math.Pi*r.Float64())
		mixed := AddNoise(Scale(ApplyFrequencyOffset(ref, dw), g), 0.02, r)
		wantG, wantDW := EstimateGainAndOffset(mixed, ref, spb)
		gotG, gotDW := EstimateGainAndOffsetPlane(planeOf(mixed), planeOf(ref), spb)
		if !complexBitsEq(wantG, gotG) || !bitsEq(wantDW, gotDW) {
			t.Fatalf("offset fit (%v,%v), scalar (%v,%v)", gotG, gotDW, wantG, wantDW)
		}
		res := CancelWithOffsetInto(nil, mixed, ref, wantG, wantDW)
		var dst Plane
		CancelWithOffsetIntoPlane(&dst, planeOf(mixed), planeOf(ref), gotG, gotDW)
		requirePlaneBits(t, "offset-cancel", res, &dst)

		// In-place peeling (dst aliases mixed) must match as well.
		inPlace := planeOf(mixed)
		CancelWithOffsetIntoPlane(inPlace, inPlace, planeOf(ref), gotG, gotDW)
		requirePlaneBits(t, "offset-cancel-in-place", res, inPlace)
	}
	if g, dw := EstimateGainAndOffsetPlane(&Plane{}, &Plane{}, spb); g != 0 || dw != 0 {
		t.Fatal("degenerate plane offset fit should return zeros")
	}
}

func TestPlaneWaveformRoundTrip(t *testing.T) {
	w := AddNoise(ModulateID(tagid.New(2, 3), spb), 0.1, rng.New(50))
	p := planeOf(w)
	back := p.Waveform(nil)
	requirePlaneBits(t, "round-trip", back, p)
	if len(back) != len(w) {
		t.Fatal("round-trip length mismatch")
	}
}

// FuzzBatchedSignalEquivalence synthesizes a random collision (1-3 tags,
// random gains, optional per-tag frequency offsets, noise) with both the
// scalar waveform path and the batched plane path, then requires every
// kernel decision and every produced sample to agree bit-for-bit.
func FuzzBatchedSignalEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(1), false)
	f.Add(uint64(2), uint8(2), false)
	f.Add(uint64(3), uint8(3), true)
	f.Add(uint64(0xdeadbeef), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed uint64, mRaw uint8, offsets bool) {
		m := 1 + int(mRaw)%3
		r := rng.New(seed)
		rp := rng.New(seed) // plane path replays the same draw sequence

		// Scalar synthesis, mirroring channel.Signal.Observe.
		refs := make([]Waveform, m)
		rx := make(Waveform, 1+tagid.Bits*spb)
		gains := make([]complex128, m)
		dws := make([]float64, m)
		for i := 0; i < m; i++ {
			refs[i] = ModulateID(tagid.Random(r), spb)
			gains[i] = cmplx.Rect(0.3+0.7*r.Float64(), 2*math.Pi*r.Float64())
			if offsets {
				dws[i] = (2*r.Float64() - 1) * maxOffsetSearch(spb)
			}
			for n := range rx {
				if offsets {
					rx[n] += refs[i][n] * cmplx.Exp(complex(0, dws[i]*float64(n))) * gains[i]
				} else {
					rx[n] += refs[i][n] * gains[i]
				}
			}
		}
		rx = AddNoise(rx, 0.03, r)

		// Batched synthesis over planes, identical draw order.
		planes := make([]*Plane, m)
		var prx, rot Plane
		prx.Reset(1 + tagid.Bits*spb)
		for i := 0; i < m; i++ {
			planes[i] = &Plane{}
			ModulateIDInto(planes[i], tagid.Random(rp), spb)
			g := cmplx.Rect(0.3+0.7*rp.Float64(), 2*math.Pi*rp.Float64())
			if offsets {
				dw := (2*rp.Float64() - 1) * maxOffsetSearch(spb)
				RotationInto(&rot, dw, prx.Len())
				prx.AccumulateScaledRotated(planes[i], &rot, g)
			} else {
				prx.AccumulateScaled(planes[i], g)
			}
		}
		AddNoisePlane(&prx, 0.03, rp)
		requirePlaneBits(t, "synthesis", rx, &prx)

		// Decode + envelope decisions.
		wantID, wantOK := DecodeID(rx, spb)
		gotID, gotOK := DecodeIDPlane(&prx, spb)
		if wantID != gotID || wantOK != gotOK {
			t.Fatalf("decode (%v,%v), scalar (%v,%v)", gotID, gotOK, wantID, wantOK)
		}
		if w, g := EnvelopeFlat(rx, 0.03), EnvelopeFlatPlane(&prx, 0.03); w != g {
			t.Fatalf("envelope %v, scalar %v", g, w)
		}

		// Joint gain fit + cancellation.
		var sw, sp GainScratch
		wantGains := sw.EstimateGains(nil, rx, refs)
		gotGains := sp.EstimateGainsPlane(nil, &prx, planes)
		if (wantGains == nil) != (gotGains == nil) {
			t.Fatalf("gain fit nil mismatch: %v vs %v", gotGains, wantGains)
		}
		for k := range wantGains {
			if !complexBitsEq(wantGains[k], gotGains[k]) {
				t.Fatalf("gain %d: %v vs scalar %v", k, gotGains[k], wantGains[k])
			}
		}
		if wantGains != nil {
			res := CancelInto(nil, rx, refs, wantGains)
			var dst Plane
			CancelIntoPlane(&dst, &prx, planes, gotGains)
			requirePlaneBits(t, "cancel", res, &dst)
		}

		// Offset estimation path (iterative peeling's inner kernels).
		wantG, wantDW := EstimateGainAndOffset(rx, refs[0], spb)
		gotG, gotDW := EstimateGainAndOffsetPlane(&prx, planes[0], spb)
		if !complexBitsEq(wantG, gotG) || !bitsEq(wantDW, gotDW) {
			t.Fatalf("offset fit (%v,%v), scalar (%v,%v)", gotG, gotDW, wantG, wantDW)
		}
		resW := CancelWithOffsetInto(nil, rx, refs[0], wantG, wantDW)
		var dst Plane
		CancelWithOffsetIntoPlane(&dst, &prx, planes[0], gotG, gotDW)
		requirePlaneBits(t, "offset-cancel", resW, &dst)
	})
}

// TestPlaneKernelsZeroAlloc pins the steady-state plane kernels at zero
// allocations once their buffers are warm.
func TestPlaneKernelsZeroAlloc(t *testing.T) {
	r := rng.New(60)
	refs, planes := randomRefs(r, 2)
	parts := make([]Waveform, 2)
	for k := range parts {
		parts[k] = Scale(refs[k], cmplx.Rect(0.5+0.5*r.Float64(), 2*math.Pi*r.Float64()))
	}
	mixed := planeOf(AddNoise(Mix(parts...), 0.03, r))
	var s GainScratch
	var gains []complex128
	var dst Plane
	allocs := testing.AllocsPerRun(100, func() {
		gains = s.EstimateGainsPlane(gains[:0], mixed, planes)
		if gains == nil {
			t.Fatal("singular system")
		}
		CancelIntoPlane(&dst, mixed, planes, gains)
		if !EnvelopeFlatPlane(mixed, 0.5) {
			t.Fatal("envelope")
		}
		DecodeIDPlane(mixed, spb)
	})
	if allocs != 0 {
		t.Fatalf("warm plane kernels allocate %v times, want 0", allocs)
	}
}
