package signal

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

const spb = DefaultSamplesPerBit

func TestModulateLength(t *testing.T) {
	id := tagid.New(1, 2)
	w := ModulateID(id, spb)
	if len(w) != 1+tagid.Bits*spb {
		t.Fatalf("waveform length %d, want %d", len(w), 1+tagid.Bits*spb)
	}
}

func TestModulateConstantEnvelope(t *testing.T) {
	w := ModulateID(tagid.New(3, 4), spb)
	for i, s := range w {
		if math.Abs(cmplx.Abs(s)-1) > 1e-9 {
			t.Fatalf("sample %d magnitude %v, want 1 (MSK is constant-envelope)", i, cmplx.Abs(s))
		}
	}
}

func TestModulatePhaseContinuity(t *testing.T) {
	// MSK phase advances at most pi/2 per bit, i.e. pi/(2*spb) per sample.
	w := ModulateID(tagid.New(5, 6), spb)
	maxStep := math.Pi/(2*spb) + 1e-9
	for i := 1; i < len(w); i++ {
		d := cmplx.Phase(w[i] * cmplx.Conj(w[i-1]))
		if math.Abs(d) > maxStep {
			t.Fatalf("phase jump %v at sample %d exceeds %v", d, i, maxStep)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	prop := func(hi uint16, lo uint64) bool {
		id := tagid.New(hi, lo)
		got, ok := DecodeID(ModulateID(id, spb), spb)
		return ok && got == id
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripUnderGainAndPhase(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		id := tagid.Random(r)
		gain := cmplx.Rect(0.2+r.Float64(), 2*math.Pi*r.Float64())
		got, ok := DecodeID(Scale(ModulateID(id, spb), gain), spb)
		if !ok || got != id {
			t.Fatalf("round trip failed under gain %v", gain)
		}
	}
}

func TestRoundTripUnderNoise(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		id := tagid.Random(r)
		w := AddNoise(ModulateID(id, spb), 0.1, r)
		got, ok := DecodeID(w, spb)
		if !ok || got != id {
			t.Fatalf("decode failed at sigma=0.1 (iteration %d)", i)
		}
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	if _, ok := DecodeID(make(Waveform, 17), spb); ok {
		t.Fatal("DecodeID accepted a wrong-length waveform")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	r := rng.New(3)
	w := make(Waveform, 1+tagid.Bits*spb)
	for i := range w {
		w[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	if _, ok := DecodeID(w, spb); ok {
		t.Fatal("DecodeID accepted pure noise (CRC should reject)")
	}
}

func TestMixPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mix of unequal lengths did not panic")
		}
	}()
	Mix(make(Waveform, 4), make(Waveform, 5))
}

func TestMixEmpty(t *testing.T) {
	if Mix() != nil {
		t.Fatal("Mix() should return nil")
	}
}

func TestMixIsSampleWiseSum(t *testing.T) {
	a := Waveform{1, 2i}
	b := Waveform{3, 4}
	m := Mix(a, b)
	if m[0] != 4 || m[1] != complex(4, 2) {
		t.Fatalf("Mix = %v", m)
	}
}

func TestTwoCollisionDoesNotDecodeDirectly(t *testing.T) {
	// Equal-amplitude superpositions must fail the plain decode (CRC).
	r := rng.New(4)
	failures := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		a, b := tagid.Random(r), tagid.Random(r)
		mixed := Mix(
			Scale(ModulateID(a, spb), cmplx.Rect(0.8, 2*math.Pi*r.Float64())),
			Scale(ModulateID(b, spb), cmplx.Rect(0.8, 2*math.Pi*r.Float64())),
		)
		if _, ok := DecodeID(mixed, spb); !ok {
			failures++
		}
	}
	if failures < trials-2 {
		t.Fatalf("equal-amplitude collisions decoded directly %d/%d times", trials-failures, trials)
	}
}

func TestEnvelopeFlat(t *testing.T) {
	r := rng.New(5)
	const sigma = 0.03
	single := AddNoise(Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(0.8, 1.0)), sigma, r)
	if !EnvelopeFlat(single, sigma) {
		t.Fatal("single MSK signal failed the envelope test")
	}
	mixed := AddNoise(Mix(
		Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(0.9, 0.3)),
		Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(0.5, 2.1)),
	), sigma, r)
	if EnvelopeFlat(mixed, sigma) {
		t.Fatal("two-signal mix passed the envelope test")
	}
	if !EnvelopeFlat(nil, sigma) {
		t.Fatal("empty waveform should trivially pass")
	}
}

func TestEstimateGainsSingle(t *testing.T) {
	r := rng.New(6)
	for i := 0; i < 20; i++ {
		id := tagid.Random(r)
		ref := ModulateID(id, spb)
		gain := cmplx.Rect(0.3+r.Float64(), 2*math.Pi*r.Float64())
		got := EstimateGains(Scale(ref, gain), []Waveform{ref})
		if len(got) != 1 || cmplx.Abs(got[0]-gain) > 1e-9 {
			t.Fatalf("gain estimate %v, want %v", got, gain)
		}
	}
}

func TestEstimateGainsJoint(t *testing.T) {
	// With both references known, the joint LS recovers both gains almost
	// exactly even though the signals overlap.
	r := rng.New(7)
	a, b := tagid.Random(r), tagid.Random(r)
	refA, refB := ModulateID(a, spb), ModulateID(b, spb)
	gA, gB := cmplx.Rect(0.9, 0.5), cmplx.Rect(0.6, -1.2)
	mixed := Mix(Scale(refA, gA), Scale(refB, gB))
	gains := EstimateGains(mixed, []Waveform{refA, refB})
	if gains == nil {
		t.Fatal("joint estimation failed")
	}
	if cmplx.Abs(gains[0]-gA) > 1e-6 || cmplx.Abs(gains[1]-gB) > 1e-6 {
		t.Fatalf("joint gains %v, want %v %v", gains, gA, gB)
	}
}

func TestEstimateGainsEmpty(t *testing.T) {
	if EstimateGains(make(Waveform, 8), nil) != nil {
		t.Fatal("no references should yield nil")
	}
}

func TestEstimateGainsSingularSystem(t *testing.T) {
	ref := ModulateID(tagid.New(1, 1), spb)
	// Two identical references make the normal equations singular.
	if got := EstimateGains(ref.Clone(), []Waveform{ref, ref}); got != nil {
		t.Fatalf("singular system should return nil, got %v", got)
	}
}

func TestCancellationRecoversHiddenID(t *testing.T) {
	// The core ANC property: subtract the known signal, decode the other.
	r := rng.New(8)
	for i := 0; i < 30; i++ {
		a, b := tagid.Random(r), tagid.Random(r)
		refA := ModulateID(a, spb)
		mixed := AddNoise(Mix(
			Scale(refA, cmplx.Rect(0.5+0.5*r.Float64(), 2*math.Pi*r.Float64())),
			Scale(ModulateID(b, spb), cmplx.Rect(0.5+0.5*r.Float64(), 2*math.Pi*r.Float64())),
		), 0.02, r)
		gains := EstimateGains(mixed, []Waveform{refA})
		residual := Cancel(mixed, []Waveform{refA}, gains)
		got, ok := DecodeID(residual, spb)
		if !ok || got != b {
			t.Fatalf("iteration %d: failed to recover hidden ID", i)
		}
	}
}

func TestThreeWayCancellation(t *testing.T) {
	// A 3-collision resolves once two constituents are known (lambda = 3).
	r := rng.New(9)
	ids := []tagid.ID{tagid.Random(r), tagid.Random(r), tagid.Random(r)}
	var parts []Waveform
	for _, id := range ids {
		parts = append(parts, Scale(ModulateID(id, spb), cmplx.Rect(0.4+0.6*r.Float64(), 2*math.Pi*r.Float64())))
	}
	mixed := AddNoise(Mix(parts...), 0.02, r)
	refs := []Waveform{ModulateID(ids[0], spb), ModulateID(ids[1], spb)}
	gains := EstimateGains(mixed, refs)
	got, ok := DecodeID(Cancel(mixed, refs, gains), spb)
	if !ok || got != ids[2] {
		t.Fatal("3-collision did not resolve with two known constituents")
	}
}

func TestEstimateTwoAmplitudes(t *testing.T) {
	r := rng.New(10)
	for i := 0; i < 30; i++ {
		a := 0.5 + 0.5*r.Float64()
		b := 0.2 + 0.5*r.Float64()
		if b > a {
			a, b = b, a
		}
		// A small carrier-frequency offset between the two tags makes their
		// relative phase sweep the circle — the estimator's derivation
		// condition (independent oscillators always differ slightly).
		mixed := Mix(
			Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(a, 2*math.Pi*r.Float64())),
			ApplyFrequencyOffset(
				Scale(ModulateID(tagid.Random(r), spb), cmplx.Rect(b, 2*math.Pi*r.Float64())),
				0.05),
		)
		gotA, gotB, ok := EstimateTwoAmplitudes(mixed)
		if !ok {
			t.Fatalf("estimation failed for A=%v B=%v", a, b)
		}
		// The energy-statistics estimator is approximate: the 4AB/pi term
		// assumes a uniform relative-phase distribution over the window.
		if math.Abs(gotA-a) > 0.15*a+0.05 || math.Abs(gotB-b) > 0.3*b+0.1 {
			t.Errorf("amplitudes (%v,%v), want (%v,%v)", gotA, gotB, a, b)
		}
	}
}

func TestEstimateTwoAmplitudesRejectsEmpty(t *testing.T) {
	if _, _, ok := EstimateTwoAmplitudes(nil); ok {
		t.Fatal("empty waveform should not estimate")
	}
}

func TestEnergy(t *testing.T) {
	w := Waveform{complex(3, 4), complex(0, 0)}
	if got := w.Energy(); math.Abs(got-12.5) > 1e-12 {
		t.Fatalf("Energy = %v, want 12.5", got)
	}
	var empty Waveform
	if empty.Energy() != 0 {
		t.Fatal("empty waveform energy != 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	w := Waveform{1, 2}
	c := w.Clone()
	c[0] = 99
	if w[0] == 99 {
		t.Fatal("Clone shares backing array")
	}
}

func TestAddNoiseZeroSigma(t *testing.T) {
	r := rng.New(11)
	w := Waveform{1, 2}
	got := AddNoise(w, 0, r)
	if got[0] != 1 || got[1] != 2 {
		t.Fatal("zero-sigma noise modified the waveform")
	}
}

func TestDemodulateArbitraryBits(t *testing.T) {
	data := []byte{0b10110010, 0b01011100}
	w := Modulate(data, 16, spb)
	got := Demodulate(w, 16, spb)
	if got[0] != data[0] || got[1] != data[1] {
		t.Fatalf("demodulated %08b %08b, want %08b %08b", got[0], got[1], data[0], data[1])
	}
}

func TestRoundTripAcrossOversamplingFactors(t *testing.T) {
	// The modem must work at any oversampling factor, including the
	// minimal spb=1 (one sample per bit).
	r := rng.New(20)
	for _, factor := range []int{1, 2, 4, 8, 16} {
		for i := 0; i < 10; i++ {
			id := tagid.Random(r)
			got, ok := DecodeID(ModulateID(id, factor), factor)
			if !ok || got != id {
				t.Fatalf("spb=%d: round trip failed", factor)
			}
		}
	}
}

func TestNoiseToleranceDegradesGracefully(t *testing.T) {
	// Decode success should be near-certain at low noise and near-zero at
	// extreme noise, with a transition in between (no cliff at sigma=0).
	r := rng.New(21)
	rate := func(sigma float64) float64 {
		ok := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			id := tagid.Random(r)
			w := AddNoise(Scale(ModulateID(id, spb), complex(0.8, 0)), sigma, r)
			if got, valid := DecodeID(w, spb); valid && got == id {
				ok++
			}
		}
		return float64(ok) / trials
	}
	if low := rate(0.05); low < 0.95 {
		t.Errorf("decode rate %.2f at sigma=0.05, want ~1", low)
	}
	if high := rate(1.5); high > 0.2 {
		t.Errorf("decode rate %.2f at sigma=1.5, want ~0", high)
	}
}
