// Package signal implements the physical layer the paper's analog network
// coding relies on: MSK modulation over a complex-baseband channel, signal
// mixing (collisions), additive white Gaussian noise, the energy-equation
// amplitude estimator from Katti et al. that the paper reproduces in
// Section II-B, and interference cancellation — re-encoding a known tag ID,
// estimating its complex channel gain inside a mixed recording by least
// squares, subtracting it, and decoding what remains.
//
// The paper evaluates its protocols with a slot-level simulator that assumes
// "k-collision slots with k <= lambda are resolvable". This package removes
// the assumption: tests and examples resolve real superimposed MSK
// waveforms, and the signal-backed channel in package channel runs the full
// protocols over these waveforms.
package signal

import (
	"math"
	"math/cmplx"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// DefaultSamplesPerBit is the oversampling factor used by the simulator.
// Four samples per bit keeps waveforms small while leaving enough samples
// for the gain estimators to average interference away.
const DefaultSamplesPerBit = 4

// phaseStepPerBit is the MSK phase advance over one bit: +pi/2 for a '1'
// and -pi/2 for a '0' (paper, Section II-B).
const phaseStepPerBit = math.Pi / 2

// Waveform is a complex-baseband sample sequence.
type Waveform []complex128

// Clone returns an independent copy of the waveform.
func (w Waveform) Clone() Waveform {
	c := make(Waveform, len(w))
	copy(c, w)
	return c
}

// Energy returns the mean squared magnitude of the waveform.
func (w Waveform) Energy() float64 {
	if len(w) == 0 {
		return 0
	}
	var e float64
	for _, s := range w {
		re, im := real(s), imag(s)
		e += re*re + im*im
	}
	return e / float64(len(w))
}

// Modulate MSK-modulates nbits bits (packed MSB-first in data) at spb
// samples per bit with unit amplitude and zero initial phase. The first
// sample is a pilot at the initial phase so that a differential demodulator
// has a reference for the first bit; the result therefore has
// 1 + nbits*spb samples.
func Modulate(data []byte, nbits, spb int) Waveform {
	w := make(Waveform, 1+nbits*spb)
	phase := 0.0
	w[0] = complex(1, 0)
	n := 1
	for i := 0; i < nbits; i++ {
		step := phaseStepPerBit / float64(spb)
		if data[i/8]>>(7-i%8)&1 == 0 {
			step = -step
		}
		for s := 0; s < spb; s++ {
			phase += step
			w[n] = cmplx.Exp(complex(0, phase))
			n++
		}
	}
	return w
}

// ModulateID returns the canonical unit-gain waveform of a 96-bit tag ID.
// The reader regenerates this reference when it cancels a known tag out of
// a recorded collision.
func ModulateID(id tagid.ID, spb int) Waveform {
	return Modulate(id.Bytes(), tagid.Bits, spb)
}

// Scale returns the waveform multiplied by a complex channel gain
// (attenuation and phase shift).
func Scale(w Waveform, gain complex128) Waveform {
	out := make(Waveform, len(w))
	for i, s := range w {
		out[i] = s * gain
	}
	return out
}

// ApplyFrequencyOffset rotates the waveform by a per-sample phase increment,
// modelling the carrier-frequency offset between a tag's oscillator and the
// reader's. Independent oscillators always differ slightly; the offset makes
// the relative phase of two superimposed signals sweep the full circle over
// a packet, which is the condition under which the energy-statistics
// amplitude estimator of Katti et al. (EstimateTwoAmplitudes) is derived.
func ApplyFrequencyOffset(w Waveform, radPerSample float64) Waveform {
	out := make(Waveform, len(w))
	for i, s := range w {
		out[i] = s * cmplx.Exp(complex(0, radPerSample*float64(i)))
	}
	return out
}

// Mix sums the waveforms sample-wise, modelling simultaneous transmissions
// arriving at the reader. All inputs must have equal length (the reader's
// signal slot-synchronises the tags, Section II-B); Mix panics otherwise.
func Mix(ws ...Waveform) Waveform {
	if len(ws) == 0 {
		return nil
	}
	out := make(Waveform, len(ws[0]))
	for _, w := range ws {
		if len(w) != len(out) {
			panic("signal: Mix of unequal-length waveforms")
		}
		for i, s := range w {
			out[i] += s
		}
	}
	return out
}

// AddNoise adds complex AWGN with per-sample standard deviation sigma
// (sigma^2 split evenly between I and Q) in place and returns w.
func AddNoise(w Waveform, sigma float64, r *rng.Source) Waveform {
	if sigma <= 0 {
		return w
	}
	s := sigma / math.Sqrt2
	for i := range w {
		w[i] += complex(s*r.NormFloat64(), s*r.NormFloat64())
	}
	return w
}

// Demodulate recovers nbits bits from an MSK waveform produced by Modulate
// (pilot sample first) by integrating the differential phase over each bit
// interval. It is gain- and phase-offset invariant.
func Demodulate(w Waveform, nbits, spb int) []byte {
	out := make([]byte, (nbits+7)/8)
	for i := 0; i < nbits; i++ {
		var acc complex128
		base := 1 + i*spb
		for s := 0; s < spb; s++ {
			acc += w[base+s] * cmplx.Conj(w[base+s-1])
		}
		if imag(acc) > 0 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}

// DecodeID demodulates a 96-bit waveform and reports whether the embedded
// CRC verifies. This is exactly how the reader distinguishes a clean
// singleton (or a fully cancelled collision residual) from garbage.
func DecodeID(w Waveform, spb int) (tagid.ID, bool) {
	if len(w) != 1+tagid.Bits*spb {
		return tagid.ID{}, false
	}
	bits := Demodulate(w, tagid.Bits, spb)
	var id tagid.ID
	copy(id[:], bits)
	return id, id.Valid()
}

// EnvelopeFlat reports whether the waveform has the constant envelope of a
// single MSK transmission: the magnitude standard deviation must sit within
// the noise floor (noiseSigma) plus a small relative guard. Readers use
// this to reject capture-effect decodes — the stronger of two superimposed
// MSK signals often demodulates with a valid CRC, but the mix's envelope
// gives the collision away.
func EnvelopeFlat(w Waveform, noiseSigma float64) bool {
	if len(w) == 0 {
		return true
	}
	var mean float64
	mags := make([]float64, len(w))
	for i, s := range w {
		m := cmplx.Abs(s)
		mags[i] = m
		mean += m
	}
	mean /= float64(len(w))
	var varsum float64
	for _, m := range mags {
		d := m - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(len(w)))
	return sd <= 3*noiseSigma+0.02*mean
}

// EstimateGains jointly least-squares-fits the complex gains of the given
// reference waveforms inside mixed: it solves min ||mixed - R g||^2 where
// the columns of R are the references. With one reference this is the
// matched-filter estimate; with several it is the joint successive
// interference cancellation step used to peel multi-tag collisions.
func EstimateGains(mixed Waveform, refs []Waveform) []complex128 {
	m := len(refs)
	if m == 0 {
		return nil
	}
	// Normal equations: (R^H R) g = R^H y, an m x m complex system.
	a := make([][]complex128, m)
	b := make([]complex128, m)
	for i := 0; i < m; i++ {
		a[i] = make([]complex128, m)
		for j := 0; j < m; j++ {
			var dot complex128
			for n := range mixed {
				dot += cmplx.Conj(refs[i][n]) * refs[j][n]
			}
			a[i][j] = dot
		}
		var dot complex128
		for n := range mixed {
			dot += cmplx.Conj(refs[i][n]) * mixed[n]
		}
		b[i] = dot
	}
	return solveComplex(a, b)
}

// Cancel subtracts gain-weighted references from mixed and returns the
// residual waveform.
func Cancel(mixed Waveform, refs []Waveform, gains []complex128) Waveform {
	out := mixed.Clone()
	for k, ref := range refs {
		g := gains[k]
		for i := range out {
			out[i] -= g * ref[i]
		}
	}
	return out
}

// solveComplex solves the small dense complex system a*x = b by Gaussian
// elimination with partial pivoting. It returns nil when the system is
// singular (e.g. two identical references).
func solveComplex(a [][]complex128, b []complex128) []complex128 {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := cmplx.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]complex128, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x
}

// EstimateTwoAmplitudes recovers the two constituent amplitudes A >= B of a
// two-signal MSK mix from the energy statistics the paper quotes from Katti
// et al. (Section II-B):
//
//	mu    = E[|y[n]|^2]                     = A^2 + B^2
//	sigma = (2/W) sum_{|y[n]|^2 > mu} |y|^2 = A^2 + B^2 + 4AB/pi
//
// It reports ok=false when the statistics are inconsistent with a two-signal
// mix (e.g. pure noise).
func EstimateTwoAmplitudes(mixed Waveform) (a, b float64, ok bool) {
	w := len(mixed)
	if w == 0 {
		return 0, 0, false
	}
	mu := mixed.Energy()
	var above float64
	for _, s := range mixed {
		re, im := real(s), imag(s)
		if p := re*re + im*im; p > mu {
			above += p
		}
	}
	sigma := 2 * above / float64(w)
	ab := (sigma - mu) * math.Pi / 4
	if ab <= 0 || mu <= 0 {
		return 0, 0, false
	}
	// A^2 and B^2 are the roots of x^2 - mu*x + (AB)^2 = 0.
	disc := mu*mu - 4*ab*ab
	if disc < 0 {
		// Near-equal amplitudes push the discriminant slightly negative
		// under noise; clamp to the equal-amplitude solution.
		disc = 0
	}
	root := math.Sqrt(disc)
	a2 := (mu + root) / 2
	b2 := (mu - root) / 2
	if b2 < 0 {
		b2 = 0
	}
	return math.Sqrt(a2), math.Sqrt(b2), true
}
