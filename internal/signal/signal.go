// Package signal implements the physical layer the paper's analog network
// coding relies on: MSK modulation over a complex-baseband channel, signal
// mixing (collisions), additive white Gaussian noise, the energy-equation
// amplitude estimator from Katti et al. that the paper reproduces in
// Section II-B, and interference cancellation — re-encoding a known tag ID,
// estimating its complex channel gain inside a mixed recording by least
// squares, subtracting it, and decoding what remains.
//
// The paper evaluates its protocols with a slot-level simulator that assumes
// "k-collision slots with k <= lambda are resolvable". This package removes
// the assumption: tests and examples resolve real superimposed MSK
// waveforms, and the signal-backed channel in package channel runs the full
// protocols over these waveforms.
package signal

import (
	"math"
	"math/cmplx"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// DefaultSamplesPerBit is the oversampling factor used by the simulator.
// Four samples per bit keeps waveforms small while leaving enough samples
// for the gain estimators to average interference away.
const DefaultSamplesPerBit = 4

// phaseStepPerBit is the MSK phase advance over one bit: +pi/2 for a '1'
// and -pi/2 for a '0' (paper, Section II-B).
const phaseStepPerBit = math.Pi / 2

// Waveform is a complex-baseband sample sequence.
type Waveform []complex128

// Clone returns an independent copy of the waveform.
func (w Waveform) Clone() Waveform {
	c := make(Waveform, len(w))
	copy(c, w)
	return c
}

// Energy returns the mean squared magnitude of the waveform.
func (w Waveform) Energy() float64 {
	if len(w) == 0 {
		return 0
	}
	var e float64
	for _, s := range w {
		re, im := real(s), imag(s)
		e += re*re + im*im
	}
	return e / float64(len(w))
}

// Modulate MSK-modulates nbits bits (packed MSB-first in data) at spb
// samples per bit with unit amplitude and zero initial phase. The first
// sample is a pilot at the initial phase so that a differential demodulator
// has a reference for the first bit; the result therefore has
// 1 + nbits*spb samples.
func Modulate(data []byte, nbits, spb int) Waveform {
	w := make(Waveform, 1+nbits*spb)
	phase := 0.0
	w[0] = complex(1, 0)
	n := 1
	for i := 0; i < nbits; i++ {
		step := phaseStepPerBit / float64(spb)
		if data[i/8]>>(7-i%8)&1 == 0 {
			step = -step
		}
		for s := 0; s < spb; s++ {
			phase += step
			w[n] = cmplx.Exp(complex(0, phase))
			n++
		}
	}
	return w
}

// ModulateID returns the canonical unit-gain waveform of a 96-bit tag ID.
// The reader regenerates this reference when it cancels a known tag out of
// a recorded collision.
func ModulateID(id tagid.ID, spb int) Waveform {
	return Modulate(id.Bytes(), tagid.Bits, spb)
}

// Scale returns the waveform multiplied by a complex channel gain
// (attenuation and phase shift).
func Scale(w Waveform, gain complex128) Waveform {
	out := make(Waveform, len(w))
	for i, s := range w {
		out[i] = s * gain
	}
	return out
}

// ApplyFrequencyOffset rotates the waveform by a per-sample phase increment,
// modelling the carrier-frequency offset between a tag's oscillator and the
// reader's. Independent oscillators always differ slightly; the offset makes
// the relative phase of two superimposed signals sweep the full circle over
// a packet, which is the condition under which the energy-statistics
// amplitude estimator of Katti et al. (EstimateTwoAmplitudes) is derived.
func ApplyFrequencyOffset(w Waveform, radPerSample float64) Waveform {
	out := make(Waveform, len(w))
	for i, s := range w {
		out[i] = s * cmplx.Exp(complex(0, radPerSample*float64(i)))
	}
	return out
}

// Mix sums the waveforms sample-wise, modelling simultaneous transmissions
// arriving at the reader. All inputs must have equal length (the reader's
// signal slot-synchronises the tags, Section II-B); Mix panics otherwise.
func Mix(ws ...Waveform) Waveform {
	if len(ws) == 0 {
		return nil
	}
	out := make(Waveform, len(ws[0]))
	for _, w := range ws {
		if len(w) != len(out) {
			panic("signal: Mix of unequal-length waveforms")
		}
		for i, s := range w {
			out[i] += s
		}
	}
	return out
}

// AddNoise adds complex AWGN with per-sample standard deviation sigma
// (sigma^2 split evenly between I and Q) in place and returns w.
func AddNoise(w Waveform, sigma float64, r *rng.Source) Waveform {
	if sigma <= 0 {
		return w
	}
	s := sigma / math.Sqrt2
	for i := range w {
		w[i] += complex(s*r.NormFloat64(), s*r.NormFloat64())
	}
	return w
}

// Demodulate recovers nbits bits from an MSK waveform produced by Modulate
// (pilot sample first) by integrating the differential phase over each bit
// interval. It is gain- and phase-offset invariant.
func Demodulate(w Waveform, nbits, spb int) []byte {
	out := make([]byte, (nbits+7)/8)
	demodulateInto(out, w, nbits, spb)
	return out
}

// demodulateInto sets the demodulated bits in out, which must be zeroed and
// at least ceil(nbits/8) long.
func demodulateInto(out []byte, w Waveform, nbits, spb int) {
	for i := 0; i < nbits; i++ {
		var acc complex128
		base := 1 + i*spb
		for s := 0; s < spb; s++ {
			acc += w[base+s] * cmplx.Conj(w[base+s-1])
		}
		if imag(acc) > 0 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
}

// DecodeID demodulates a 96-bit waveform and reports whether the embedded
// CRC verifies. This is exactly how the reader distinguishes a clean
// singleton (or a fully cancelled collision residual) from garbage.
func DecodeID(w Waveform, spb int) (tagid.ID, bool) {
	if len(w) != 1+tagid.Bits*spb {
		return tagid.ID{}, false
	}
	var id tagid.ID
	demodulateInto(id[:], w, tagid.Bits, spb)
	return id, id.Valid()
}

// EnvelopeFlat reports whether the waveform has the constant envelope of a
// single MSK transmission: the magnitude standard deviation must sit within
// the noise floor (noiseSigma) plus a small relative guard. Readers use
// this to reject capture-effect decodes — the stronger of two superimposed
// MSK signals often demodulates with a valid CRC, but the mix's envelope
// gives the collision away.
func EnvelopeFlat(w Waveform, noiseSigma float64) bool {
	if len(w) == 0 {
		return true
	}
	// Single pass over the samples: accumulate the first two magnitude
	// moments and form the variance as E[m^2] - E[m]^2. The subtraction can
	// lose relative precision when the envelope really is flat, but the
	// absolute error (~machine-epsilon * mean^2) is ten orders of magnitude
	// below the 2% relative guard in the decision threshold.
	var sum, sumsq float64
	for _, s := range w {
		re, im := real(s), imag(s)
		msq := re*re + im*im
		sum += math.Sqrt(msq)
		sumsq += msq
	}
	n := float64(len(w))
	mean := sum / n
	varsum := sumsq/n - mean*mean
	if varsum < 0 {
		varsum = 0
	}
	sd := math.Sqrt(varsum)
	return sd <= 3*noiseSigma+0.02*mean
}

// EstimateGains jointly least-squares-fits the complex gains of the given
// reference waveforms inside mixed: it solves min ||mixed - R g||^2 where
// the columns of R are the references. With one reference this is the
// matched-filter estimate; with several it is the joint successive
// interference cancellation step used to peel multi-tag collisions.
func EstimateGains(mixed Waveform, refs []Waveform) []complex128 {
	var s GainScratch
	return s.EstimateGains(nil, mixed, refs)
}

// GainScratch holds the normal-equation buffers for repeated least-squares
// gain fits, so a decoder running one fit per cancellation attempt stays
// allocation-free. The zero value is ready to use; a GainScratch must not
// be shared between goroutines.
type GainScratch struct {
	buf []complex128 // m*m matrix followed by the m-vector, one backing array
}

// EstimateGains is EstimateGains with caller-provided result storage: the
// gains are appended to dst[:0]'s backing array (grown as needed) and the
// normal equations are built in the scratch buffer. It performs the exact
// same floating-point operations as the package-level EstimateGains, in the
// same order, so the two are bit-identical. Returns nil when the system is
// singular (e.g. two identical references).
func (s *GainScratch) EstimateGains(dst []complex128, mixed Waveform, refs []Waveform) []complex128 {
	m := len(refs)
	if m == 0 {
		return nil
	}
	if cap(s.buf) < m*m+m {
		s.buf = make([]complex128, m*m+m)
	}
	// Normal equations: (R^H R) g = R^H y, an m x m complex system.
	a := s.buf[:m*m]
	b := s.buf[m*m : m*m+m]
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var dot complex128
			for n := range mixed {
				dot += cmplx.Conj(refs[i][n]) * refs[j][n]
			}
			a[i*m+j] = dot
		}
		var dot complex128
		for n := range mixed {
			dot += cmplx.Conj(refs[i][n]) * mixed[n]
		}
		b[i] = dot
	}
	if cap(dst) < m {
		dst = make([]complex128, m)
	}
	dst = dst[:m]
	if !solveComplex(a, b, dst, m) {
		return nil
	}
	return dst
}

// Cancel subtracts gain-weighted references from mixed and returns the
// residual waveform.
func Cancel(mixed Waveform, refs []Waveform, gains []complex128) Waveform {
	return CancelInto(nil, mixed, refs, gains)
}

// CancelInto is Cancel with a caller-provided destination buffer, reused
// across calls to keep the decoder's steady state allocation-free. dst may
// be nil (a fresh buffer is allocated) but must not alias any of the refs.
func CancelInto(dst, mixed Waveform, refs []Waveform, gains []complex128) Waveform {
	if cap(dst) < len(mixed) {
		dst = make(Waveform, len(mixed))
	}
	dst = dst[:len(mixed)]
	copy(dst, mixed)
	for k, ref := range refs {
		g := gains[k]
		for i := range dst {
			dst[i] -= g * ref[i]
		}
	}
	return dst
}

// solveComplex solves the small dense complex system a*x = b by Gaussian
// elimination with partial pivoting, a stored row-major n x n. It mutates a
// and b, writes the solution into x (length n), and reports false when the
// system is singular (e.g. two identical references).
func solveComplex(a, b, x []complex128, n int) bool {
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := cmplx.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return false
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[pivot*n+c] = a[pivot*n+c], a[col*n+c]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] / a[col*n+col]
			for c := col; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r*n+c] * x[c]
		}
		x[r] = v / a[r*n+r]
	}
	return true
}

// EstimateTwoAmplitudes recovers the two constituent amplitudes A >= B of a
// two-signal MSK mix from the energy statistics the paper quotes from Katti
// et al. (Section II-B):
//
//	mu    = E[|y[n]|^2]                     = A^2 + B^2
//	sigma = (2/W) sum_{|y[n]|^2 > mu} |y|^2 = A^2 + B^2 + 4AB/pi
//
// It reports ok=false when the statistics are inconsistent with a two-signal
// mix (e.g. pure noise).
func EstimateTwoAmplitudes(mixed Waveform) (a, b float64, ok bool) {
	w := len(mixed)
	if w == 0 {
		return 0, 0, false
	}
	mu := mixed.Energy()
	var above float64
	for _, s := range mixed {
		re, im := real(s), imag(s)
		if p := re*re + im*im; p > mu {
			above += p
		}
	}
	sigma := 2 * above / float64(w)
	ab := (sigma - mu) * math.Pi / 4
	if ab <= 0 || mu <= 0 {
		return 0, 0, false
	}
	// A^2 and B^2 are the roots of x^2 - mu*x + (AB)^2 = 0.
	disc := mu*mu - 4*ab*ab
	if disc < 0 {
		// Near-equal amplitudes push the discriminant slightly negative
		// under noise; clamp to the equal-amplitude solution.
		disc = 0
	}
	root := math.Sqrt(disc)
	a2 := (mu + root) / 2
	b2 := (mu - root) / 2
	if b2 < 0 {
		b2 = 0
	}
	return math.Sqrt(a2), math.Sqrt(b2), true
}
