package signal

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/ancrfid/ancrfid/internal/tagid"
)

// FuzzRoundTrip checks that modulation followed by demodulation recovers
// any ID exactly, under any channel phase rotation and gain.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint64(0), 0.0, 1.0)
	f.Add(uint16(0xFFFF), ^uint64(0), 1.5, 0.25)
	f.Add(uint16(0xA5A5), uint64(0x123456789ABCDEF0), -2.9, 3.0)
	f.Fuzz(func(t *testing.T, hi uint16, lo uint64, phase, amp float64) {
		if math.IsNaN(phase) || math.IsInf(phase, 0) || math.Abs(phase) > 1e6 {
			return
		}
		if math.IsNaN(amp) || amp < 1e-6 || amp > 1e6 {
			return
		}
		id := tagid.New(hi, lo)
		w := ModulateID(id, DefaultSamplesPerBit)
		got, ok := DecodeID(Scale(w, cmplx.Rect(amp, phase)), DefaultSamplesPerBit)
		if !ok || got != id {
			t.Fatalf("round trip failed for %v at amp %v phase %v", id, amp, phase)
		}
	})
}

// FuzzDecodeNeverPanics feeds arbitrary complex data into the decoder.
func FuzzDecodeNeverPanics(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, raw []byte) {
		w := make(Waveform, len(raw))
		for i, b := range raw {
			w[i] = complex(float64(b)/32-4, float64(b^0x5A)/32-4)
		}
		// Must classify or reject, never panic.
		_, _ = DecodeID(w, DefaultSamplesPerBit)
		_ = EnvelopeFlat(w, 0.05)
	})
}
