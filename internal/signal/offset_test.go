package signal

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func TestEstimateGainAndOffsetClean(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		id := tagid.Random(r)
		ref := ModulateID(id, spb)
		trueGain := cmplx.Rect(0.4+r.Float64(), 2*math.Pi*r.Float64())
		trueOffset := (2*r.Float64() - 1) * maxOffsetSearch(spb) * 0.8
		rx := Scale(ApplyFrequencyOffset(ref, trueOffset), trueGain)

		gain, offset := EstimateGainAndOffset(rx, ref, spb)
		if math.Abs(offset-trueOffset) > 2e-4 {
			t.Fatalf("offset estimate %v, want %v", offset, trueOffset)
		}
		if cmplx.Abs(gain-trueGain) > 0.02*cmplx.Abs(trueGain)+1e-3 {
			t.Fatalf("gain estimate %v, want %v", gain, trueGain)
		}
	}
}

func TestEstimateGainAndOffsetDegenerate(t *testing.T) {
	if g, dw := EstimateGainAndOffset(nil, nil, spb); g != 0 || dw != 0 {
		t.Fatal("empty inputs should return zeros")
	}
	if g, _ := EstimateGainAndOffset(make(Waveform, 3), make(Waveform, 5), spb); g != 0 {
		t.Fatal("mismatched lengths should return zero gain")
	}
}

func TestCancelWithOffsetResolvesDriftingCollision(t *testing.T) {
	// Two tags whose oscillators drift in opposite directions collide; the
	// offset-aware canceller recovers the hidden ID where the plain LS
	// canceller fails.
	r := rng.New(2)
	resolvedOffsetAware, resolvedPlain := 0, 0
	const trials = 15
	for i := 0; i < trials; i++ {
		a, b := tagid.Random(r), tagid.Random(r)
		refA := ModulateID(a, spb)
		dwA := maxOffsetSearch(spb) * 0.6
		dwB := -maxOffsetSearch(spb) * 0.5
		mixed := AddNoise(Mix(
			Scale(ApplyFrequencyOffset(refA, dwA), cmplx.Rect(0.9, 1.0)),
			Scale(ApplyFrequencyOffset(ModulateID(b, spb), dwB), cmplx.Rect(0.8, -0.7)),
		), 0.02, r)

		gain, dw := EstimateGainAndOffset(mixed, refA, spb)
		if got, ok := DecodeID(CancelWithOffset(mixed, refA, gain, dw), spb); ok && got == b {
			resolvedOffsetAware++
		}

		gains := EstimateGains(mixed, []Waveform{refA})
		if got, ok := DecodeID(Cancel(mixed, []Waveform{refA}, gains), spb); ok && got == b {
			resolvedPlain++
		}
	}
	if resolvedOffsetAware < trials*2/3 {
		t.Fatalf("offset-aware cancellation resolved only %d/%d", resolvedOffsetAware, trials)
	}
	if resolvedOffsetAware <= resolvedPlain {
		t.Fatalf("offset-aware (%d) should beat plain LS (%d) under drift",
			resolvedOffsetAware, resolvedPlain)
	}
}

func TestOffsetSearchBound(t *testing.T) {
	// The searchable bound must stay well under MSK's per-sample step so
	// demodulation of the residual remains reliable.
	if maxOffsetSearch(spb) >= math.Pi/(2*spb) {
		t.Fatal("offset search bound exceeds the modulation step")
	}
}
