package signal

import (
	"math"
	"math/cmplx"
)

// Carrier-frequency offset estimation. Independent tag oscillators never
// sit exactly on the reader's frequency: a tag's contribution to a
// recorded slot is g * e^(i*dw*n) * ref[n], a complex gain g plus a linear
// phase ramp dw (radians per sample). Katti et al. handle the same effect
// in ANC; the canceller here estimates (g, dw) per constituent so that
// collision records resolve even when tags drift.

// maxOffsetSearch bounds the per-sample offset magnitude the estimator
// searches (radians/sample). MSK tolerates offsets well below the
// per-sample modulation step of pi/(2*spb); a quarter of that step is a
// generous real-world bound.
func maxOffsetSearch(spb int) float64 {
	return math.Pi / (8 * float64(spb))
}

// EstimateGainAndOffset fits mixed ~ g * e^(i*dw*n) * ref[n] by scanning
// candidate offsets and taking, for each, the closed-form least-squares
// gain; the (g, dw) with the largest correlation magnitude wins, refined
// by two rounds of golden-section search around the best coarse candidate.
// The other constituents of the mix act as noise on the estimate, exactly
// as in single-gain estimation.
func EstimateGainAndOffset(mixed, ref Waveform, spb int) (gain complex128, offset float64) {
	if len(mixed) != len(ref) || len(ref) == 0 {
		return 0, 0
	}
	bound := maxOffsetSearch(spb)
	// Coarse scan: the correlation's main lobe has width ~2pi/len, so a
	// step of pi/(2*len) cannot skip it.
	step := math.Pi / (2 * float64(len(ref)))
	best, bestMag := 0.0, -1.0
	for dw := -bound; dw <= bound; dw += step {
		if mag := offsetCorrelation(mixed, ref, dw); mag > bestMag {
			bestMag, best = mag, dw
		}
	}
	// Golden-section refinement within one coarse step.
	lo, hi := best-step, best+step
	const phi = 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := offsetCorrelation(mixed, ref, a), offsetCorrelation(mixed, ref, b)
	for i := 0; i < 40; i++ {
		if fa < fb {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = offsetCorrelation(mixed, ref, b)
		} else {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = offsetCorrelation(mixed, ref, a)
		}
	}
	offset = (lo + hi) / 2
	gain = lsGainAtOffset(mixed, ref, offset)
	return gain, offset
}

// offsetCorrelation returns |<mixed, e^(i*dw*n)*ref>|, the matched-filter
// response at candidate offset dw.
func offsetCorrelation(mixed, ref Waveform, dw float64) float64 {
	var dot complex128
	rot := cmplx.Exp(complex(0, dw))
	phase := complex(1, 0)
	for n := range ref {
		dot += cmplx.Conj(ref[n]*phase) * mixed[n]
		phase *= rot
	}
	return cmplx.Abs(dot)
}

// lsGainAtOffset returns the least-squares gain of the offset-rotated
// reference inside mixed.
func lsGainAtOffset(mixed, ref Waveform, dw float64) complex128 {
	var dot, energy complex128
	rot := cmplx.Exp(complex(0, dw))
	phase := complex(1, 0)
	for n := range ref {
		r := ref[n] * phase
		dot += cmplx.Conj(r) * mixed[n]
		energy += cmplx.Conj(r) * r
		phase *= rot
	}
	if energy == 0 {
		return 0
	}
	return dot / energy
}

// CancelWithOffset subtracts gain * e^(i*offset*n) * ref from mixed and
// returns the residual.
func CancelWithOffset(mixed, ref Waveform, gain complex128, offset float64) Waveform {
	return CancelWithOffsetInto(nil, mixed, ref, gain, offset)
}

// CancelWithOffsetInto is CancelWithOffset with a caller-provided
// destination buffer. dst may be nil (a fresh buffer is allocated) or alias
// mixed (iterative peeling cancels in place); it must not alias ref.
func CancelWithOffsetInto(dst, mixed, ref Waveform, gain complex128, offset float64) Waveform {
	if cap(dst) < len(mixed) {
		dst = make(Waveform, len(mixed))
	}
	dst = dst[:len(mixed)]
	copy(dst, mixed)
	rot := cmplx.Exp(complex(0, offset))
	phase := complex(1, 0)
	for n := range ref {
		dst[n] -= gain * phase * ref[n]
		phase *= rot
	}
	return dst
}
