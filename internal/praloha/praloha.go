// Package praloha implements Pseudo-Random framed ALOHA (Ricciato &
// Castiglione, "Pseudo-random ALOHA for enhanced collision recovery in
// RFID", arXiv:1209.4763): each tag derives its slot choice by hashing its
// identity with the frame counter instead of drawing fresh randomness, so
// the reader — which learns identities as it reads — can replay the slot
// choices of every tag it already knows.
//
// The protocol targets the re-inventory scenario the paper motivates: the
// reader knows how many tags are outstanding (from admission control or a
// prior inventory round), so no backlog estimator is needed — every frame
// is sized directly by the MPR-optimal load rule L = backlog/mu*_M
// (estimate.MPRFrameSize). The payoff of determinism is on the decode
// side: an identified tag that retransmits (lost acknowledgement, or as a
// collision constituent) is a *known* signal, so its future collisions
// enter the record store pre-subtracted and cascade resolution gets
// strictly cheaper as the read progresses. Records too crowded to ever
// resolve (more than M+1 constituents — a captured slot's residual still
// fits) are dropped at the door via record.Store.DropAbove.
//
// Tag slot choices draw nothing from the run's RNG stream: the hash
// schedule is pure (tagid.HashPrefix.FrameSlot), which is what makes the
// reader-side replay sound.
package praloha

import (
	"fmt"
	"maps"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	"github.com/ancrfid/ancrfid/internal/estimate"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Config parameterises pseudo-random ALOHA.
type Config struct {
	// M is the reception capability the frame-size rule is tuned for; it
	// should match the channel's capability (Lambda or
	// Capability.MaxOrder). Zero or negative selects 2.
	M int
	// MaxFrame caps the frame size; zero means uncapped.
	MaxFrame int
}

// Protocol is a configured PRALOHA instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns a PRALOHA instance; M defaults to 2.
func New(cfg Config) *Protocol {
	if cfg.M < 1 {
		cfg.M = 2
	}
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("PRALOHA-%d", p.cfg.M) }

var _ protocol.SessionProtocol = (*Protocol)(nil)

// Run implements protocol.Protocol by driving a fresh session to
// completion.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	return protocol.RunSession(p, env)
}

// session carries one PRALOHA execution: DFSA's slot loop with hashed
// bucketing, roster-sized frames and a persistent record store.
type session struct {
	p       *Protocol
	env     *protocol.Env
	m       protocol.Metrics
	clock   air.Clock
	unread  []tagid.ID
	seen    map[tagid.ID]struct{}
	store   *record.Store
	scratch dfsa.FrameScratch

	slots, budget int
	// frame is the frame counter hashed into every tag's slot choice; it
	// only ever increments, so no two frames repeat a schedule.
	frame uint64

	// Current-frame state, meaningful while inFrame.
	inFrame       bool
	frameLen      int
	slotJ         int
	transmissions int
	occ           [][]tagid.ID
	read          map[tagid.ID]struct{}

	err error
}

var _ protocol.Session = (*session)(nil)

// sessionScratch is the reusable core of a session (see protocol.Scratch).
type sessionScratch struct {
	store *record.Store
	seen  map[tagid.ID]struct{}
}

// scratchKey namespaces this protocol's state in the shared container.
const scratchKey = "praloha"

// Begin implements protocol.SessionProtocol.
func (p *Protocol) Begin(env *protocol.Env) protocol.Session {
	s := &session{
		p:      p,
		env:    env,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		unread: make([]tagid.ID, len(env.Tags)),
		budget: env.SlotBudget(),
	}
	if sc, _ := env.Scratch.Get(scratchKey).(*sessionScratch); sc != nil {
		sc.store.Reset()
		clear(sc.seen)
		s.store, s.seen = sc.store, sc.seen
	} else {
		s.store = record.NewStore()
		s.seen = make(map[tagid.ID]struct{}, len(env.Tags))
		env.Scratch.Put(scratchKey, &sessionScratch{store: s.store, seen: s.seen})
	}
	s.store.Tracer = env.Tracer
	s.store.Quarantine = env.Hardened()
	s.store.DropAbove = p.cfg.M + 1
	if env.Stream {
		if rel, ok := env.Channel.(channel.Releaser); ok {
			s.store.SetReleaser(rel)
		}
	}
	env.Clock = &s.clock
	env.TraceRunStart(p.Name())
	copy(s.unread, env.Tags)
	return s
}

// Protocol implements protocol.Session.
func (s *session) Protocol() string { return s.p.Name() }

// Step implements protocol.Session. A done session keeps stepping one-slot
// frames, so newly admitted tags are observed on the next frame.
func (s *session) Step() (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	if !s.inFrame {
		if s.slots >= s.budget {
			s.err = protocol.ErrNoProgress
			return false, s.err
		}
		// The outstanding count is known exactly, so the frame is sized
		// straight from the MPR-optimal load rule — no estimator phase.
		f := estimate.MPRFrameSize(float64(len(s.unread)), s.p.cfg.M)
		if len(s.unread) > 1 && f < 2 {
			// A one-slot frame can never separate an all-unknown backlog:
			// the load rule happily packs a tail of two tags into one slot
			// (mu*_M > 1), which with an open-loop schedule would collide
			// them forever. Two slots give the hash room to split them.
			f = 2
		}
		if s.p.cfg.MaxFrame > 0 && f > s.p.cfg.MaxFrame {
			f = s.p.cfg.MaxFrame
		}
		s.frame++
		s.clock.Add(s.env.Timing.FrameAnnouncement())
		s.m.Frames++
		s.env.TraceFrame(obsev.FrameEvent{Seq: s.slots, Frame: s.m.Frames, Size: f, P: 1})
		// Bucket by hash replay, not by RNG: slot = H(tag, frame).
		s.occ = s.scratch.Buckets(f)
		for _, id := range s.unread {
			j := id.HashPrefix().FrameSlot(s.frame, f)
			s.occ[j] = append(s.occ[j], id)
		}
		s.read = s.scratch.Read()
		s.frameLen = f
		s.slotJ, s.transmissions = 0, 0
		s.inFrame = true
	}

	tx := s.occ[s.slotJ]
	s.transmissions += len(tx)
	slot := uint64(s.m.TotalSlots())
	obs := s.env.Channel.Observe(tx)
	switch obs.Kind {
	case channel.Empty:
		s.m.EmptySlots++
	case channel.Singleton:
		s.m.SingletonSlots++
		s.countDirect(obs.ID)
		for _, res := range s.store.OnIdentified(obs.ID) {
			s.countResolved(res)
		}
	case channel.Collision:
		s.m.CollisionSlots++
		for _, res := range s.store.Add(slot, obs.Mix, tx) {
			s.countResolved(res)
		}
	case channel.Captured:
		// The slot collided but its strongest constituent decoded through;
		// the residual recording joins the store with the captured tag
		// already known.
		s.m.CollisionSlots++
		s.countDirect(obs.ID)
		for _, res := range s.store.OnIdentified(obs.ID) {
			s.countResolved(res)
		}
		for _, res := range s.store.Add(slot, obs.Mix, tx) {
			s.countResolved(res)
		}
	}
	s.m.TagTransmissions += len(tx)
	s.env.NotifySlot(protocol.SlotEvent{
		Seq:          s.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(tx),
		Identified:   s.m.Identified(),
	})
	s.slotJ++
	s.slots++
	s.clock.Add(s.env.Timing.Slot())
	if s.slotJ < s.frameLen {
		return false, nil
	}

	// Frame end: silence the tags read this frame.
	s.inFrame = false
	if len(s.read) > 0 {
		remaining := s.unread[:0]
		for _, id := range s.unread {
			if _, ok := s.read[id]; !ok {
				remaining = append(remaining, id)
			}
		}
		s.unread = remaining
	}
	if s.transmissions == 0 {
		return true, nil
	}
	return false, nil
}

// countDirect records a first-time identification from a singleton or
// captured slot and acknowledges it; the tag joins the read set only if
// the acknowledgement lands.
func (s *session) countDirect(id tagid.ID) {
	if _, dup := s.seen[id]; !dup {
		s.seen[id] = struct{}{}
		s.m.DirectIDs++
		s.env.NotifyIdentified(id, false)
	}
	delivered := s.env.AckDelivered()
	s.env.TraceAck(obsev.AckEvent{
		Seq: s.m.TotalSlots() - 1, ID: id, Kind: obsev.AckDirect, Delivered: delivered,
	})
	if delivered {
		s.read[id] = struct{}{}
	}
}

// countResolved records an ID recovered from a collision record,
// acknowledged by broadcasting the resolved slot's index.
func (s *session) countResolved(res record.Resolved) {
	if _, dup := s.seen[res.ID]; !dup {
		s.seen[res.ID] = struct{}{}
		s.m.ResolvedIDs++
		s.env.NotifyIdentified(res.ID, true)
	}
	s.clock.Add(s.env.Timing.ResolvedIndexAck())
	delivered := s.env.AckDelivered()
	s.env.TraceAck(obsev.AckEvent{
		Seq: s.m.TotalSlots() - 1, ID: res.ID, Kind: obsev.AckResolvedIndex, Delivered: delivered,
	})
	if delivered {
		s.read[res.ID] = struct{}{}
	}
}

// Admit implements protocol.Session: the tags join the unread backlog and
// first transmit in the next frame's bucketing (their hash schedule covers
// every frame, so no handshake is needed).
func (s *session) Admit(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := s.seen[id]; identified {
			continue
		}
		if containsID(s.unread, id) {
			continue
		}
		s.unread = append(s.unread, id)
		s.m.Tags++
		s.store.Readmit(id)
	}
}

// Revoke implements protocol.Session: the tags leave the backlog, stop
// transmitting immediately, and their pending record memberships are
// voided so stale cascades cannot identify a departed tag.
func (s *session) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := s.seen[id]; !identified {
			s.store.Revoke(id)
		}
		if !removeID(&s.unread, id) {
			continue
		}
		if s.inFrame {
			for j := s.slotJ; j < s.frameLen; j++ {
				bucket := s.occ[j]
				if removeID(&bucket, id) {
					s.occ[j] = bucket
					break
				}
			}
		}
	}
}

// containsID reports whether ids contains id.
func containsID(ids []tagid.ID, id tagid.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// removeID deletes id from *ids preserving order; it reports whether the
// id was present.
func removeID(ids *[]tagid.ID, id tagid.ID) bool {
	for i, v := range *ids {
		if v == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			return true
		}
	}
	return false
}

// Metrics implements protocol.Session.
func (s *session) Metrics() protocol.Metrics {
	m := s.m
	m.OnAir = s.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (s *session) Elapsed() time.Duration { return s.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (s *session) Outstanding() int { return len(s.unread) }

// checkpoint is a deep copy of a PRALOHA session's state.
type checkpoint struct {
	name   string
	m      protocol.Metrics
	clock  air.Clock
	unread []tagid.ID
	seen   map[tagid.ID]struct{}
	store  *record.Store

	slots, budget int
	frame         uint64

	inFrame       bool
	frameLen      int
	slotJ         int
	transmissions int
	occ           [][]tagid.ID
	read          map[tagid.ID]struct{}

	err error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *checkpoint) Protocol() string { return c.name }

// Snapshot implements protocol.Session.
func (s *session) Snapshot() (protocol.Checkpoint, error) {
	store, err := s.store.Clone()
	if err != nil {
		return nil, err
	}
	cp := &checkpoint{
		name:          s.p.Name(),
		m:             s.m,
		clock:         s.clock,
		unread:        append([]tagid.ID(nil), s.unread...),
		seen:          maps.Clone(s.seen),
		store:         store,
		slots:         s.slots,
		budget:        s.budget,
		frame:         s.frame,
		inFrame:       s.inFrame,
		frameLen:      s.frameLen,
		slotJ:         s.slotJ,
		transmissions: s.transmissions,
		err:           s.err,
		rng:           *s.env.RNG,
	}
	if s.inFrame {
		cp.occ = cloneBuckets(s.occ)
		cp.read = maps.Clone(s.read)
	}
	if st, ok := s.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (s *session) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*checkpoint)
	if !ok || cp.name != s.p.Name() {
		return protocol.ErrCheckpointMismatch
	}
	store, err := cp.store.Clone()
	if err != nil {
		return err
	}
	s.m = cp.m
	s.clock = cp.clock
	s.unread = append(s.unread[:0:0], cp.unread...)
	s.seen = maps.Clone(cp.seen)
	s.store = store
	s.slots = cp.slots
	s.budget = cp.budget
	s.frame = cp.frame
	s.inFrame = cp.inFrame
	s.frameLen = cp.frameLen
	s.slotJ = cp.slotJ
	s.transmissions = cp.transmissions
	s.occ = nil
	s.read = nil
	if cp.inFrame {
		s.occ = cloneBuckets(cp.occ)
		s.read = maps.Clone(cp.read)
	}
	s.err = cp.err
	*s.env.RNG = cp.rng
	if cp.chanState != nil {
		s.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}

// cloneBuckets deep-copies a frame's slot-occupancy buckets.
func cloneBuckets(occ [][]tagid.ID) [][]tagid.ID {
	out := make([][]tagid.ID, len(occ))
	for i, b := range occ {
		if len(b) > 0 {
			out[i] = append([]tagid.ID(nil), b...)
		}
	}
	return out
}
