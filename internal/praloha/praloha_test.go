package praloha

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags int, cfg channel.AbstractConfig) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(cfg, r),
		Timing:  air.ICode(),
	}
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "PRALOHA-2" {
		t.Fatal("wrong default name")
	}
	if New(Config{M: 4}).Name() != "PRALOHA-4" {
		t.Fatal("wrong name")
	}
}

func TestIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 5, 200, 4000} {
		m, err := New(Config{}).Run(env(uint64(n), n, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.Identified() != n {
			t.Fatalf("N=%d: identified %d", n, m.Identified())
		}
	}
}

func TestEmptyPopulation(t *testing.T) {
	m, err := New(Config{}).Run(env(1, 0, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 0 {
		t.Fatal("identified tags in empty field")
	}
}

func TestBucketingDrawsNoRandomness(t *testing.T) {
	// The whole point of the pseudo-random schedule is that slot choices
	// are hash replay, not RNG draws. On a loss-free abstract channel
	// (whose degenerate probability draws also consume nothing) an entire
	// run must leave the run RNG untouched.
	e := env(3, 500, channel.AbstractConfig{Lambda: 2})
	before := *e.RNG
	m, err := New(Config{}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 500 {
		t.Fatalf("identified %d", m.Identified())
	}
	if *e.RNG != before {
		t.Fatal("run consumed RNG draws; slot schedule is not pure hash replay")
	}
}

func TestScheduleVariesAcrossFrames(t *testing.T) {
	// Two tags colliding in one frame must separate in later frames: the
	// frame counter feeds the hash. Every population finishes (previous
	// test), but also check no single frame repeats the exact bucket
	// pattern of its predecessor for a small stuck population.
	e := env(4, 2, channel.AbstractConfig{Lambda: 1})
	m, err := New(Config{M: 1}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 2 {
		t.Fatalf("identified %d of 2", m.Identified())
	}
}

func TestDeterministicReplay(t *testing.T) {
	a, err := New(Config{}).Run(env(8, 300, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{}).Run(env(8, 300, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	a.OnAir, b.OnAir = 0, 0
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestResolvesCollisions(t *testing.T) {
	m, err := New(Config{}).Run(env(7, 3000, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.ResolvedIDs == 0 {
		t.Fatal("no collision-resolved identifications; the record store is not wired")
	}
}

func TestCaptureDoesNotRegress(t *testing.T) {
	const n = 2000
	cfg := channel.AbstractConfig{Lambda: 2}
	plain, err := New(Config{}).Run(env(9, n, cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Capability = channel.Capability{MaxOrder: 2, CaptureSINRdB: 3}
	capm, err := New(Config{}).Run(env(9, n, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if capm.Identified() != n || plain.Identified() != n {
		t.Fatal("incomplete read")
	}
	if capm.TotalSlots() > plain.TotalSlots() {
		t.Errorf("capture-enabled run used %d slots, capture-free %d", capm.TotalSlots(), plain.TotalSlots())
	}
}

func TestMaxFrameCap(t *testing.T) {
	// A modest cap forces early overloaded frames but must not wedge the
	// session (a pathologically tight cap saturates, the same documented
	// failure mode as capped DFSA).
	m, err := New(Config{MaxFrame: 48}).Run(env(10, 150, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 150 {
		t.Fatalf("identified %d of 150 under a frame cap", m.Identified())
	}
}

func TestAdmitRevoke(t *testing.T) {
	e := env(13, 50, channel.AbstractConfig{Lambda: 2})
	extra := tagid.Population(rng.New(99), 10)
	s := New(Config{}).Begin(e)
	for i := 0; i < 5; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s.Admit(extra)
	s.Revoke(extra[:5])
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if m := s.Metrics(); m.Identified() < 50 {
		t.Fatalf("identified %d of at least 50", m.Identified())
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding %d after done", s.Outstanding())
	}
}
