// Package crdsa implements Contention Resolution Diversity Slotted ALOHA
// (Casini, De Gaudenzi & Herrero, IEEE Trans. Wireless Comm. 2007 — the
// paper's reference [22], discussed in Section III-C as the prior use of
// collision resolution in satellite access networks).
//
// Each unread tag transmits its ID twice, in two distinct randomly chosen
// slots of a frame; the replica carries a pointer to its twin's slot. The
// reader decodes singleton slots directly and then iterates interference
// cancellation: every decoded tag's replica is subtracted from its twin
// slot, which may strip a collision down to a decodable residual, whose
// tag is cancelled in turn, and so on until no slot changes.
//
// The paper contrasts CRDSA with its own design: CRDSA predicts throughput
// for a known offered load, whereas FCAT adapts the report probability to
// an embedded population estimate. Including CRDSA here lets the
// evaluation compare the two collision-resolution philosophies under the
// same channel model; the channel's ANC capability (lambda) bounds how
// deep a collision the cancellation can strip, so emulating classic CRDSA
// (full packet re-encoding) requires a channel with a large lambda.
package crdsa

import (
	"math"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// OptimalLoad is the offered load G = N/L at which CRDSA's throughput
// peaks (~0.55 packets/slot at G ~ 0.65 for two replicas; Casini et al.,
// Fig. 9).
const OptimalLoad = 0.65

// Config parameterises CRDSA.
type Config struct {
	// Replicas is the number of copies each tag transmits per frame
	// (default 2, the classic scheme).
	Replicas int
	// InitialBacklog seeds the frame sizing; zero grants the perfect
	// initial estimate (population size), matching the other baselines.
	InitialBacklog int
}

// Protocol is a configured CRDSA instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns a CRDSA instance.
func New(cfg Config) *Protocol {
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "CRDSA" }

// Run implements protocol.Protocol.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	m, err := p.run(env)
	env.TraceRunEnd(p.Name(), m, err)
	return m, err
}

func (p *Protocol) run(env *protocol.Env) (protocol.Metrics, error) {
	var (
		m     = protocol.Metrics{Tags: len(env.Tags)}
		clock air.Clock
	)
	env.TraceRunStart(p.Name())
	unread := make([]tagid.ID, len(env.Tags))
	copy(unread, env.Tags)
	seen := make(map[tagid.ID]struct{}, len(env.Tags))
	backlog := p.cfg.InitialBacklog
	if backlog <= 0 {
		backlog = len(env.Tags)
	}
	budget := env.SlotBudget()
	slots := 0
	// growth dilutes the frame after a fruitless one: with few tags and
	// several replicas a matched frame can deadlock deterministically
	// (e.g. two tags with three replicas in three slots collide in every
	// slot forever), so a no-progress frame doubles the next frame's size
	// until reads resume.
	growth := 1

	for {
		if slots >= budget {
			m.OnAir = clock.Elapsed()
			return m, protocol.ErrNoProgress
		}
		frameSize := int(math.Round(float64(backlog)/OptimalLoad)) * growth
		if frameSize < p.cfg.Replicas+1 {
			frameSize = p.cfg.Replicas + 1
		}
		clock.Add(env.Timing.FrameAnnouncement())
		m.Frames++
		env.TraceFrame(obsev.FrameEvent{Seq: slots, Frame: m.Frames, Size: frameSize, P: 1})

		read, transmissions := p.runFrame(env, frameSize, unread, seen, &m)
		slots += frameSize
		clock.AddSlots(env.Timing, frameSize)

		if transmissions == 0 {
			m.OnAir = clock.Elapsed()
			return m, nil
		}
		if len(read) == 0 {
			growth *= 2
		} else {
			growth = 1
		}
		if len(read) > 0 {
			remaining := unread[:0]
			for _, id := range unread {
				if _, ok := read[id]; !ok {
					remaining = append(remaining, id)
				}
			}
			unread = remaining
		}
		backlog -= len(read)
		if backlog < 1 {
			backlog = 1
		}
	}
}

// runFrame simulates one CRDSA frame: replica placement, per-slot
// observation, and the iterative cancellation loop.
func (p *Protocol) runFrame(env *protocol.Env, frameSize int, unread []tagid.ID, seen map[tagid.ID]struct{}, m *protocol.Metrics) (read map[tagid.ID]struct{}, transmissions int) {
	read = make(map[tagid.ID]struct{})

	// Replica placement: each tag picks Replicas distinct slots. In the
	// real scheme a decoded packet's header points at its twin slots; the
	// record store's member index realises the same knowledge.
	occupants := make([][]tagid.ID, frameSize)
	replicas := p.cfg.Replicas
	if replicas > frameSize {
		replicas = frameSize
	}
	for _, id := range unread {
		for _, s := range env.RNG.SampleDistinct(replicas, frameSize) {
			occupants[s] = append(occupants[s], id)
		}
		transmissions++
	}

	// First pass: observe every slot, decode singletons, record collisions.
	// Tags already identified in earlier frames (but retransmitting after a
	// lost acknowledgement) are marked known so their replicas are
	// subtracted on sight.
	store := record.NewStore()
	store.Tracer = env.Tracer
	for _, id := range unread {
		if _, ok := seen[id]; ok {
			store.MarkKnown(id)
		}
	}
	var queue []tagid.ID
	for s, tx := range occupants {
		obs := env.Channel.Observe(tx)
		switch obs.Kind {
		case channel.Empty:
			m.EmptySlots++
		case channel.Singleton:
			m.SingletonSlots++
			if _, dup := seen[obs.ID]; !dup {
				// A tag can appear in two singleton slots of one frame;
				// it is read once and its twin is simply redundant.
				seen[obs.ID] = struct{}{}
				m.DirectIDs++
				env.NotifyIdentified(obs.ID, false)
				queue = append(queue, obs.ID)
			}
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: s, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
			})
			if delivered {
				read[obs.ID] = struct{}{}
			}
		case channel.Collision:
			m.CollisionSlots++
			for _, res := range store.Add(uint64(s), obs.Mix, tx) {
				if _, dup := seen[res.ID]; dup {
					continue
				}
				seen[res.ID] = struct{}{}
				m.ResolvedIDs++
				env.NotifyIdentified(res.ID, true)
				delivered := env.AckDelivered()
				env.TraceAck(obsev.AckEvent{
					Seq: s, ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
				})
				if delivered {
					read[res.ID] = struct{}{}
				}
			}
		}
		m.TagTransmissions += len(tx)
		env.NotifySlot(protocol.SlotEvent{
			Seq:          m.TotalSlots() - 1,
			Kind:         obs.Kind,
			Transmitters: len(tx),
			Identified:   m.Identified(),
		})
	}

	// Iterative cancellation: each decoded tag's replicas are subtracted
	// from their slots; every stripped-bare record yields a new tag, whose
	// replicas the store cascades through in turn.
	for _, id := range queue {
		for _, res := range store.OnIdentified(id) {
			if _, dup := seen[res.ID]; dup {
				continue
			}
			seen[res.ID] = struct{}{}
			m.ResolvedIDs++
			env.NotifyIdentified(res.ID, true)
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: int(res.Slot), ID: res.ID, Kind: obsev.AckResolvedID, Delivered: delivered,
			})
			if delivered {
				read[res.ID] = struct{}{}
			}
		}
	}
	return read, transmissions
}
