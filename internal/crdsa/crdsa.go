// Package crdsa implements Contention Resolution Diversity Slotted ALOHA
// (Casini, De Gaudenzi & Herrero, IEEE Trans. Wireless Comm. 2007 — the
// paper's reference [22], discussed in Section III-C as the prior use of
// collision resolution in satellite access networks).
//
// Each unread tag transmits its ID twice, in two distinct randomly chosen
// slots of a frame; the replica carries a pointer to its twin's slot. The
// reader decodes singleton slots directly and then iterates interference
// cancellation: every decoded tag's replica is subtracted from its twin
// slot, which may strip a collision down to a decodable residual, whose
// tag is cancelled in turn, and so on until no slot changes.
//
// The paper contrasts CRDSA with its own design: CRDSA predicts throughput
// for a known offered load, whereas FCAT adapts the report probability to
// an embedded population estimate. Including CRDSA here lets the
// evaluation compare the two collision-resolution philosophies under the
// same channel model; the channel's ANC capability (lambda) bounds how
// deep a collision the cancellation can strip, so emulating classic CRDSA
// (full packet re-encoding) requires a channel with a large lambda.
package crdsa

import (
	"maps"
	"math"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// OptimalLoad is the offered load G = N/L at which CRDSA's throughput
// peaks (~0.55 packets/slot at G ~ 0.65 for two replicas; Casini et al.,
// Fig. 9).
const OptimalLoad = 0.65

// Config parameterises CRDSA.
type Config struct {
	// Replicas is the number of copies each tag transmits per frame
	// (default 2, the classic scheme).
	Replicas int
	// InitialBacklog seeds the frame sizing; zero grants the perfect
	// initial estimate (population size), matching the other baselines.
	InitialBacklog int
}

// Protocol is a configured CRDSA instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns a CRDSA instance.
func New(cfg Config) *Protocol {
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "CRDSA" }

var _ protocol.SessionProtocol = (*Protocol)(nil)

// Run implements protocol.Protocol by driving a fresh session to
// completion.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	return protocol.RunSession(p, env)
}

// session carries one CRDSA execution. A step is one report slot; the
// frame boundaries (replica placement at the front, the iterative
// cancellation pass, unread filter and backlog update at the back) fold
// into the steps that run the frame's first and last slots.
type session struct {
	p      *Protocol
	env    *protocol.Env
	m      protocol.Metrics
	clock  air.Clock
	unread []tagid.ID
	seen   map[tagid.ID]struct{}

	slots, budget int
	backlog       int
	// growth dilutes the frame after a fruitless one: with few tags and
	// several replicas a matched frame can deadlock deterministically
	// (e.g. two tags with three replicas in three slots collide in every
	// slot forever), so a no-progress frame doubles the next frame's size
	// until reads resume.
	growth int

	// Current-frame state, meaningful while inFrame.
	inFrame       bool
	frameLen      int
	slotJ         int
	transmissions int
	occ           [][]tagid.ID
	store         *record.Store
	queue         []tagid.ID
	read          map[tagid.ID]struct{}

	err error
}

var _ protocol.Session = (*session)(nil)

// Begin implements protocol.SessionProtocol.
func (p *Protocol) Begin(env *protocol.Env) protocol.Session {
	s := &session{
		p:      p,
		env:    env,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		unread: make([]tagid.ID, len(env.Tags)),
		seen:   make(map[tagid.ID]struct{}, len(env.Tags)),
		budget: env.SlotBudget(),
		growth: 1,
	}
	env.Clock = &s.clock
	env.TraceRunStart(p.Name())
	copy(s.unread, env.Tags)
	s.backlog = p.cfg.InitialBacklog
	if s.backlog <= 0 {
		s.backlog = len(env.Tags)
	}
	return s
}

// Protocol implements protocol.Session.
func (s *session) Protocol() string { return s.p.Name() }

// Step implements protocol.Session. A done session keeps stepping: with
// the backlog floored at one, the minimum-size frame keeps polling the
// field, so newly admitted tags are observed in the next frame.
func (s *session) Step() (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	if !s.inFrame {
		if s.slots >= s.budget {
			s.err = protocol.ErrNoProgress
			return false, s.err
		}
		frameSize := int(math.Round(float64(s.backlog)/OptimalLoad)) * s.growth
		if frameSize < s.p.cfg.Replicas+1 {
			frameSize = s.p.cfg.Replicas + 1
		}
		s.clock.Add(s.env.Timing.FrameAnnouncement())
		s.m.Frames++
		s.env.TraceFrame(obsev.FrameEvent{Seq: s.slots, Frame: s.m.Frames, Size: frameSize, P: 1})

		// Replica placement: each tag picks Replicas distinct slots. In
		// the real scheme a decoded packet's header points at its twin
		// slots; the record store's member index realises the same
		// knowledge.
		s.occ = make([][]tagid.ID, frameSize)
		replicas := s.p.cfg.Replicas
		if replicas > frameSize {
			replicas = frameSize
		}
		s.transmissions = 0
		for _, id := range s.unread {
			for _, slot := range s.env.RNG.SampleDistinct(replicas, frameSize) {
				s.occ[slot] = append(s.occ[slot], id)
			}
			s.transmissions++
		}

		// Tags already identified in earlier frames (but retransmitting
		// after a lost acknowledgement) are marked known so their replicas
		// are subtracted on sight.
		s.store = record.NewStore()
		s.store.Tracer = s.env.Tracer
		s.store.Quarantine = s.env.Hardened()
		for _, id := range s.unread {
			if _, ok := s.seen[id]; ok {
				s.store.MarkKnown(id)
			}
		}
		s.queue = s.queue[:0]
		s.read = make(map[tagid.ID]struct{})
		s.frameLen = frameSize
		s.slotJ = 0
		s.inFrame = true
	}

	// Observe one slot: decode a singleton directly, record a collision.
	j := s.slotJ
	tx := s.occ[j]
	obs := s.env.Channel.Observe(tx)
	switch obs.Kind {
	case channel.Empty:
		s.m.EmptySlots++
	case channel.Singleton:
		s.m.SingletonSlots++
		if _, dup := s.seen[obs.ID]; !dup {
			// A tag can appear in two singleton slots of one frame; it is
			// read once and its twin is simply redundant.
			s.seen[obs.ID] = struct{}{}
			s.m.DirectIDs++
			s.env.NotifyIdentified(obs.ID, false)
			s.queue = append(s.queue, obs.ID)
		}
		delivered := s.env.AckDelivered()
		s.env.TraceAck(obsev.AckEvent{
			Seq: j, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			s.read[obs.ID] = struct{}{}
		}
	case channel.Collision:
		s.m.CollisionSlots++
		for _, res := range s.store.Add(uint64(j), obs.Mix, tx) {
			s.countResolved(j, res.ID)
		}
	case channel.Captured:
		// Capture effect: the slot collided but the strongest replica
		// decoded. Treat the captured ID as a direct read feeding the
		// end-of-frame cancellation queue, and keep the recording — with
		// the captured tag known, Add subtracts it on arrival.
		s.m.CollisionSlots++
		if _, dup := s.seen[obs.ID]; !dup {
			s.seen[obs.ID] = struct{}{}
			s.m.DirectIDs++
			s.env.NotifyIdentified(obs.ID, false)
			s.queue = append(s.queue, obs.ID)
		}
		delivered := s.env.AckDelivered()
		s.env.TraceAck(obsev.AckEvent{
			Seq: j, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			s.read[obs.ID] = struct{}{}
		}
		s.store.MarkKnown(obs.ID)
		for _, res := range s.store.Add(uint64(j), obs.Mix, tx) {
			s.countResolved(j, res.ID)
		}
	}
	s.m.TagTransmissions += len(tx)
	s.env.NotifySlot(protocol.SlotEvent{
		Seq:          s.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(tx),
		Identified:   s.m.Identified(),
	})
	s.slotJ++
	s.slots++
	s.clock.Add(s.env.Timing.Slot())
	if s.slotJ < s.frameLen {
		return false, nil
	}

	// Frame end. Iterative cancellation: each decoded tag's replicas are
	// subtracted from their slots; every stripped-bare record yields a new
	// tag, whose replicas the store cascades through in turn.
	s.inFrame = false
	for _, id := range s.queue {
		for _, res := range s.store.OnIdentified(id) {
			s.countResolved(int(res.Slot), res.ID)
		}
	}
	s.store = nil
	if s.transmissions == 0 {
		return true, nil
	}
	if len(s.read) == 0 {
		s.growth *= 2
	} else {
		s.growth = 1
	}
	if len(s.read) > 0 {
		remaining := s.unread[:0]
		for _, id := range s.unread {
			if _, ok := s.read[id]; !ok {
				remaining = append(remaining, id)
			}
		}
		s.unread = remaining
	}
	s.backlog -= len(s.read)
	if s.backlog < 1 {
		s.backlog = 1
	}
	return false, nil
}

// countResolved counts a tag recovered by interference cancellation and
// acknowledges it. seq is the slot the acknowledgement is attributed to:
// the current slot for record-time resolutions, the record's own slot for
// the frame-end cascade.
func (s *session) countResolved(seq int, id tagid.ID) {
	if _, dup := s.seen[id]; dup {
		return
	}
	s.seen[id] = struct{}{}
	s.m.ResolvedIDs++
	s.env.NotifyIdentified(id, true)
	delivered := s.env.AckDelivered()
	s.env.TraceAck(obsev.AckEvent{
		Seq: seq, ID: id, Kind: obsev.AckResolvedID, Delivered: delivered,
	})
	if delivered {
		s.read[id] = struct{}{}
	}
}

// Admit implements protocol.Session: the tags join the unread backlog,
// place replicas from the next frame on, and raise the backlog estimate
// the frame sizing uses.
func (s *session) Admit(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := s.seen[id]; identified {
			continue
		}
		if containsID(s.unread, id) {
			continue
		}
		s.unread = append(s.unread, id)
		s.m.Tags++
		s.backlog++
	}
}

// Revoke implements protocol.Session: the tags leave the backlog, their
// not-yet-observed replicas are stripped from the current frame, and their
// already-recorded replicas are invalidated in the frame's store.
func (s *session) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		if !removeID(&s.unread, id) {
			continue
		}
		if s.inFrame {
			for j := s.slotJ; j < s.frameLen; j++ {
				bucket := s.occ[j]
				if removeID(&bucket, id) {
					s.occ[j] = bucket
				}
			}
			if _, identified := s.seen[id]; !identified {
				s.store.Revoke(id)
			}
		}
		if s.backlog > 1 {
			s.backlog--
		}
	}
}

// containsID reports whether ids contains id.
func containsID(ids []tagid.ID, id tagid.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// removeID deletes id from *ids preserving order; it reports whether the
// id was present.
func removeID(ids *[]tagid.ID, id tagid.ID) bool {
	for i, v := range *ids {
		if v == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			return true
		}
	}
	return false
}

// Metrics implements protocol.Session.
func (s *session) Metrics() protocol.Metrics {
	m := s.m
	m.OnAir = s.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (s *session) Elapsed() time.Duration { return s.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (s *session) Outstanding() int { return len(s.unread) }

// checkpoint is a deep copy of a CRDSA session's state.
type checkpoint struct {
	name   string
	m      protocol.Metrics
	clock  air.Clock
	unread []tagid.ID
	seen   map[tagid.ID]struct{}

	slots, budget int
	backlog       int
	growth        int

	inFrame       bool
	frameLen      int
	slotJ         int
	transmissions int
	occ           [][]tagid.ID
	store         *record.Store
	queue         []tagid.ID
	read          map[tagid.ID]struct{}

	err error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *checkpoint) Protocol() string { return c.name }

// Snapshot implements protocol.Session.
func (s *session) Snapshot() (protocol.Checkpoint, error) {
	cp := &checkpoint{
		name:          s.p.Name(),
		m:             s.m,
		clock:         s.clock,
		unread:        append([]tagid.ID(nil), s.unread...),
		seen:          maps.Clone(s.seen),
		slots:         s.slots,
		budget:        s.budget,
		backlog:       s.backlog,
		growth:        s.growth,
		inFrame:       s.inFrame,
		frameLen:      s.frameLen,
		slotJ:         s.slotJ,
		transmissions: s.transmissions,
		err:           s.err,
		rng:           *s.env.RNG,
	}
	if s.inFrame {
		var err error
		if cp.store, err = s.store.Clone(); err != nil {
			return nil, err
		}
		cp.occ = make([][]tagid.ID, len(s.occ))
		for i, b := range s.occ {
			if len(b) > 0 {
				cp.occ[i] = append([]tagid.ID(nil), b...)
			}
		}
		cp.queue = append([]tagid.ID(nil), s.queue...)
		cp.read = maps.Clone(s.read)
	}
	if st, ok := s.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (s *session) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*checkpoint)
	if !ok || cp.name != s.p.Name() {
		return protocol.ErrCheckpointMismatch
	}
	var store *record.Store
	if cp.inFrame {
		var err error
		if store, err = cp.store.Clone(); err != nil {
			return err
		}
	}
	s.m = cp.m
	s.clock = cp.clock
	s.unread = append(s.unread[:0:0], cp.unread...)
	s.seen = maps.Clone(cp.seen)
	s.slots = cp.slots
	s.budget = cp.budget
	s.backlog = cp.backlog
	s.growth = cp.growth
	s.inFrame = cp.inFrame
	s.frameLen = cp.frameLen
	s.slotJ = cp.slotJ
	s.transmissions = cp.transmissions
	s.store = store
	s.occ = nil
	s.queue = nil
	s.read = nil
	if cp.inFrame {
		s.occ = make([][]tagid.ID, len(cp.occ))
		for i, b := range cp.occ {
			if len(b) > 0 {
				s.occ[i] = append([]tagid.ID(nil), b...)
			}
		}
		s.queue = append([]tagid.ID(nil), cp.queue...)
		s.read = maps.Clone(cp.read)
	}
	s.err = cp.err
	*s.env.RNG = cp.rng
	if cp.chanState != nil {
		s.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}
