package crdsa

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags, lambda int) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(channel.AbstractConfig{Lambda: lambda}, r),
		Timing:  air.ICode(),
	}
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "CRDSA" {
		t.Fatal("wrong name")
	}
}

func TestIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 2, 10, 500, 3000} {
		m, err := New(Config{}).Run(env(uint64(n), n, 16))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.Identified() != n {
			t.Fatalf("N=%d: identified %d", n, m.Identified())
		}
	}
}

func TestEmptyPopulation(t *testing.T) {
	m, err := New(Config{}).Run(env(1, 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 0 {
		t.Fatal("identified tags in an empty field")
	}
}

func TestCancellationContributes(t *testing.T) {
	// At the optimal load a large share of packets are recovered by
	// interference cancellation rather than clean singles.
	m, err := New(Config{}).Run(env(2, 3000, 16))
	if err != nil {
		t.Fatal(err)
	}
	if m.ResolvedIDs == 0 {
		t.Fatal("no IDs recovered by cancellation")
	}
	if float64(m.ResolvedIDs)/3000 < 0.15 {
		t.Fatalf("cancellation share suspiciously low: %d/3000", m.ResolvedIDs)
	}
}

func TestBeatsPlainALOHAWithDeepCancellation(t *testing.T) {
	// With an unconstrained canceller (large lambda), CRDSA's per-slot
	// efficiency exceeds framed ALOHA's 1/e (that is its whole point).
	const n = 5000
	m, err := New(Config{}).Run(env(3, n, 16))
	if err != nil {
		t.Fatal(err)
	}
	perSlot := float64(n) / float64(m.TotalSlots())
	if perSlot < 0.40 {
		t.Fatalf("per-slot efficiency %.3f, want > 0.40 (ALOHA is 0.368)", perSlot)
	}
}

func TestLambdaLimitsCancellation(t *testing.T) {
	// With lambda=2 only two-deep collisions strip; completion still holds
	// but more IDs come from singletons.
	shallow, err := New(Config{}).Run(env(4, 2000, 2))
	if err != nil {
		t.Fatal(err)
	}
	deep, err := New(Config{}).Run(env(4, 2000, 16))
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Identified() != 2000 || deep.Identified() != 2000 {
		t.Fatal("incomplete run")
	}
	if shallow.ResolvedIDs >= deep.ResolvedIDs {
		t.Fatalf("lambda=2 resolved %d, lambda=16 resolved %d — deeper cancellation should recover more",
			shallow.ResolvedIDs, deep.ResolvedIDs)
	}
}

func TestSingleReplicaDegeneratesToFramedALOHA(t *testing.T) {
	// Replicas=1 is plain framed ALOHA (no twin to cancel).
	m, err := New(Config{Replicas: 1}).Run(env(5, 1000, 16))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 1000 {
		t.Fatalf("identified %d", m.Identified())
	}
}

func TestThreeReplicas(t *testing.T) {
	// IRSA-style three replicas still complete (more cancellation fuel,
	// more channel load).
	m, err := New(Config{Replicas: 3}).Run(env(6, 1000, 16))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 1000 {
		t.Fatalf("identified %d", m.Identified())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() protocol.Metrics {
		m, err := New(Config{}).Run(env(7, 800, 16))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(), run(); a != b {
		t.Fatal("same seed, different metrics")
	}
}

func TestCorruptionRetries(t *testing.T) {
	r := rng.New(8)
	e := &protocol.Env{
		RNG:  r,
		Tags: tagid.Population(r, 300),
		Channel: channel.NewAbstract(channel.AbstractConfig{
			Lambda: 16, PCorruptSingleton: 0.2,
		}, r),
		Timing: air.ICode(),
	}
	m, err := New(Config{}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 300 {
		t.Fatalf("identified %d of 300 under corruption", m.Identified())
	}
}

func TestAckLossStillCompletes(t *testing.T) {
	e := env(9, 400, 16)
	e.PAckLoss = 0.4
	m, err := New(Config{}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 400 {
		t.Fatalf("identified %d of 400 under ack loss", m.Identified())
	}
}

func TestAckLossNoDoubleCounting(t *testing.T) {
	e := env(10, 300, 16)
	e.PAckLoss = 0.5
	counts := make(map[tagid.ID]int)
	e.OnIdentified = func(id tagid.ID, _ bool) { counts[id]++ }
	if _, err := New(Config{}).Run(e); err != nil {
		t.Fatal(err)
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("tag %v counted %d times", id, c)
		}
	}
}

func TestNoProgressFrameGrowth(t *testing.T) {
	// Regression: two tags with three replicas in a matched frame collide
	// in every slot forever; the no-progress growth rule must break the
	// deadlock.
	e := env(11, 2, 2)
	e.MaxSlots = 2000
	m, err := New(Config{Replicas: 3}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 2 {
		t.Fatalf("identified %d of 2", m.Identified())
	}
}
