package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func testID(b byte) tagid.ID {
	var id tagid.ID
	id[0] = b
	return id
}

// emitOneOfEach drives every Tracer method once with distinctive values.
func emitOneOfEach(t Tracer) {
	t.RunStart(RunStartEvent{Protocol: "FCAT-2", Tags: 10})
	t.FrameStart(FrameEvent{Seq: 0, Frame: 1, Size: 30, P: 0.25})
	t.Advertisement(AdvertEvent{Seq: 0, P: 0.5})
	t.SlotDone(SlotEvent{Seq: 0, Kind: channel.Collision, Transmitters: 3, Identified: 0})
	t.RecordCreated(RecordEvent{Slot: 0, Multiplicity: 3, Unknown: 3})
	t.SlotDone(SlotEvent{Seq: 1, Kind: channel.Singleton, Transmitters: 1, Identified: 1})
	t.TagIdentified(IdentifyEvent{ID: testID(1)})
	t.AckSent(AckEvent{Seq: 1, ID: testID(1), Kind: AckDirect, Delivered: true})
	t.CascadeStep(CascadeEvent{ID: testID(1), Records: 1, Depth: 0})
	t.RecordResolved(ResolveEvent{Slot: 0, ID: testID(2), Trigger: testID(1), Depth: 1})
	t.TagIdentified(IdentifyEvent{ID: testID(2), ViaResolution: true})
	t.AckSent(AckEvent{Seq: 1, ID: testID(2), Kind: AckResolvedIndex, Delivered: false})
	t.SlotDone(SlotEvent{Seq: 2, Kind: channel.Empty, Transmitters: 0, Identified: 2})
	t.EstimatorUpdate(EstimateEvent{Frame: 1, Estimate: 8.5, FrameEst: 7.0, Identified: 2})
	t.TagArrival(ArrivalEvent{ID: testID(3), At: 5 * time.Millisecond, Active: 2})
	t.SessionCheckpoint(CheckpointEvent{Seq: 0, At: 6 * time.Millisecond, Active: 2, Identified: 2})
	t.TagDeparture(DepartureEvent{ID: testID(3), At: 9 * time.Millisecond, Identified: false})
	t.RunEnd(RunEndEvent{Protocol: "FCAT-2", Slots: 3, Frames: 1, Direct: 1, Resolved: 1})
}

func TestMetricsTracerCounts(t *testing.T) {
	reg := NewRegistry()
	mt := NewMetricsTracer(reg)
	emitOneOfEach(mt)

	want := map[string]int64{
		MetricRunsStarted:     1,
		MetricRunsCompleted:   1,
		MetricRunsFailed:      0,
		MetricSlotsEmpty:      1,
		MetricSlotsSingleton:  1,
		MetricSlotsCollision:  1,
		MetricFrames:          1,
		MetricAdverts:         1,
		MetricTxTotal:         4,
		MetricIDsDirect:       1,
		MetricIDsResolved:     1,
		MetricAcksSent:        2,
		MetricAcksLost:        1,
		MetricRecordsCreated:  1,
		MetricRecordsResolved: 1,
		MetricRecordsSpent:    0,
		MetricCascadeSteps:    1,

		MetricTagsArrived:        1,
		MetricTagsDeparted:       1,
		MetricTagsDepartedUnread: 1,
		MetricCheckpoints:        1,
	}
	for name, v := range want {
		if got := reg.Value(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if got := reg.Histogram(HistTxPerSlot).Count(); got != 3 {
		t.Errorf("tx histogram count %d, want 3", got)
	}
	if got := reg.Histogram(HistTxPerSlot).Sum(); got != 4 {
		t.Errorf("tx histogram sum %d, want 4", got)
	}
}

func TestMetricsTracerFailedRun(t *testing.T) {
	reg := NewRegistry()
	mt := NewMetricsTracer(reg)
	mt.RunStart(RunStartEvent{Protocol: "X", Tags: 1})
	mt.RunEnd(RunEndEvent{Protocol: "X", Err: "boom"})
	if got := reg.Value(MetricRunsFailed); got != 1 {
		t.Errorf("runs.failed = %d, want 1", got)
	}
	if got := reg.Value(MetricRunsCompleted); got != 0 {
		t.Errorf("runs.completed = %d, want 0", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			h := reg.Histogram("hist")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 17))
			}
		}()
	}
	wg.Wait()
	if got := reg.Value("shared"); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
	if got := reg.Histogram("hist").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1 << 50} {
		h.Observe(v)
	}
	cases := []struct {
		bucket int
		want   int64
	}{
		{0, 1}, // 0
		{1, 1}, // 1
		{2, 2}, // 2, 3
		{3, 2}, // 4..7 -> 4, 7
		{4, 1}, // 8..15 -> 8
	}
	for _, c := range cases {
		if got := h.Bucket(c.bucket); got != c.want {
			t.Errorf("bucket %d = %d, want %d", c.bucket, got, c.want)
		}
	}
	// The out-of-range value lands in the last bucket.
	if got := h.Bucket(histBuckets - 1); got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
}

func TestRegistryWriteToParsesAsKeyValue(t *testing.T) {
	reg := NewRegistry()
	mt := NewMetricsTracer(reg)
	emitOneOfEach(mt)

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	prev := ""
	for sc.Scan() {
		lines++
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("line %q is not `key value`", sc.Text())
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			t.Fatalf("value in %q is not an integer: %v", sc.Text(), err)
		}
		if fields[0] <= prev && !strings.Contains(fields[0], ".le.") &&
			!strings.HasSuffix(fields[0], ".count") && !strings.HasSuffix(fields[0], ".sum") {
			t.Errorf("counter keys not sorted: %q after %q", fields[0], prev)
		}
		prev = fields[0]
	}
	if lines == 0 {
		t.Fatal("empty dump")
	}
}

func TestJSONLValidAndVersioned(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	emitOneOfEach(j)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	evs := map[string]int{}
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not JSON: %v", sc.Text(), err)
		}
		if v, ok := m["v"].(float64); !ok || int(v) != SchemaVersion {
			t.Fatalf("line %q missing schema version %d", sc.Text(), SchemaVersion)
		}
		ev, ok := m["ev"].(string)
		if !ok {
			t.Fatalf("line %q missing ev", sc.Text())
		}
		if run, ok := m["run"].(float64); !ok || int(run) != 0 {
			t.Fatalf("line %q: run %v, want 0", sc.Text(), m["run"])
		}
		evs[ev]++
	}
	for _, ev := range []string{"run_start", "run_end", "frame", "advert", "slot",
		"identify", "ack", "record", "cascade", "resolve", "estimate",
		"arrival", "departure", "checkpoint"} {
		if evs[ev] == 0 {
			t.Errorf("no %q event emitted", ev)
		}
	}
}

func TestJSONLRunCounter(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	emitOneOfEach(j)
	emitOneOfEach(j)
	sc := bufio.NewScanner(&buf)
	last := -1
	for sc.Scan() {
		var m struct {
			Run int `json:"run"`
		}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		last = m.Run
	}
	if last != 1 {
		t.Fatalf("last run index %d, want 1", last)
	}
}

func TestTimelineRenders(t *testing.T) {
	var buf bytes.Buffer
	tl := NewTimeline(&buf)
	emitOneOfEach(tl)
	if err := tl.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"run FCAT-2 tags=10",
		"frame 1 size=30",
		"[0000] C tx=3",
		"[0001] S tx=1",
		"[0002] . tx=0",
		"ack direct",
		"ack resolved-index",
		"LOST",
		"record @0 mult=3",
		"resolve @0 ->",
		"estimate 8.5",
		"arrive",
		"depart",
		"UNREAD",
		"checkpoint 0 at",
		"run end: 3 slots",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q:\n%s", want, out)
		}
	}
}

func TestHooksAndMulti(t *testing.T) {
	var slots, resolves int
	h := &Hooks{
		OnSlotDone:       func(SlotEvent) { slots++ },
		OnRecordResolved: func(ResolveEvent) { resolves++ },
	}
	reg := NewRegistry()
	m := Multi(nil, h, NewMetricsTracer(reg))
	emitOneOfEach(m)
	if slots != 3 || resolves != 1 {
		t.Errorf("hooks saw %d slots, %d resolves; want 3, 1", slots, resolves)
	}
	if got := reg.Value(MetricSlotsCollision); got != 1 {
		t.Errorf("multi did not reach metrics tracer: collisions %d", got)
	}
	// Hooks with all-nil fields must accept the full stream.
	emitOneOfEach(&Hooks{})
	// Multi with zero or one live tracer collapses.
	if Multi() != nil || Multi(nil) != nil {
		t.Error("Multi of no tracers should be nil")
	}
	if Multi(h) != Tracer(h) {
		t.Error("Multi of one tracer should be that tracer")
	}
}

func TestAckKindString(t *testing.T) {
	for k, want := range map[AckKind]string{
		AckDirect:        "direct",
		AckResolvedIndex: "resolved-index",
		AckResolvedID:    "resolved-id",
		AckKind(99):      "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("AckKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
