package obs

import (
	"bytes"
	"testing"
)

// TestBufferReplayIdentical records a stream containing every event type
// and checks the replayed JSONL bytes match a direct emission exactly —
// the property the parallel sim harness relies on.
func TestBufferReplayIdentical(t *testing.T) {
	var direct bytes.Buffer
	emitOneOfEach(NewJSONL(&direct))

	buf := &Buffer{}
	emitOneOfEach(buf)
	if buf.Len() != 18 {
		t.Fatalf("buffered %d events, want 18", buf.Len())
	}
	var replayed bytes.Buffer
	buf.Replay(NewJSONL(&replayed))

	if !bytes.Equal(direct.Bytes(), replayed.Bytes()) {
		t.Fatalf("replayed trace differs from direct trace\ndirect:\n%s\nreplayed:\n%s",
			direct.String(), replayed.String())
	}
}

// TestBufferReplayTwiceAndReset checks Replay is non-destructive and Reset
// empties the buffer.
func TestBufferReplayTwiceAndReset(t *testing.T) {
	buf := &Buffer{}
	emitOneOfEach(buf)

	var a, b bytes.Buffer
	buf.Replay(NewJSONL(&a))
	buf.Replay(NewJSONL(&b))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("second replay differs from first")
	}

	buf.Replay(nil) // nil target is a no-op

	buf.Reset()
	if buf.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", buf.Len())
	}
	var c bytes.Buffer
	buf.Replay(NewJSONL(&c))
	if c.Len() != 0 {
		t.Fatalf("replay after Reset emitted %d bytes", c.Len())
	}
}

// TestBufferInterleavingPreserved checks that events of the same type keep
// their relative order across interleavings with other types.
func TestBufferInterleavingPreserved(t *testing.T) {
	buf := &Buffer{}
	buf.SlotDone(SlotEvent{Seq: 0})
	buf.FrameStart(FrameEvent{Frame: 1})
	buf.SlotDone(SlotEvent{Seq: 1})
	buf.FrameStart(FrameEvent{Frame: 2})
	buf.SlotDone(SlotEvent{Seq: 2})

	var got []int
	buf.Replay(&Hooks{
		OnSlotDone:   func(ev SlotEvent) { got = append(got, ev.Seq) },
		OnFrameStart: func(ev FrameEvent) { got = append(got, -ev.Frame) },
	})
	want := []int{0, -1, 1, -2, 2}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
}
