package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/channel"
)

// feedSyntheticRun drives a small hand-written event stream through a
// tracer: a run with one frame of three slots (empty, singleton, collision
// with a resolution), then frame-end decode work and a run end.
func feedSyntheticRun(tr Tracer) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr.RunStart(RunStartEvent{Protocol: "SYN", Tags: 3})
	tr.FrameStart(FrameEvent{Seq: 0, Frame: 1, Size: 3, At: ms(1)})
	tr.SlotDone(SlotEvent{Seq: 0, Kind: channel.Empty, At: ms(2)})
	tr.TagIdentified(IdentifyEvent{At: ms(3)})
	tr.AckSent(AckEvent{Seq: 1, Kind: AckDirect, Delivered: true, At: ms(3)})
	tr.SlotDone(SlotEvent{Seq: 1, Kind: channel.Singleton, Transmitters: 1, Identified: 1, At: ms(3)})
	tr.RecordCreated(RecordEvent{Slot: 2, Multiplicity: 2, Unknown: 1})
	tr.SlotDone(SlotEvent{Seq: 2, Kind: channel.Collision, Transmitters: 2, Identified: 1, At: ms(4)})
	// Frame-end resolution phase: cascade work after the last slot.
	tr.CascadeStep(CascadeEvent{Records: 1, Depth: 0})
	tr.RecordResolved(ResolveEvent{Slot: 2, Depth: 1})
	tr.TagIdentified(IdentifyEvent{ViaResolution: true, At: ms(5)})
	tr.EstimatorUpdate(EstimateEvent{Frame: 1, Estimate: 3, Identified: 2, At: ms(5)})
	tr.RunEnd(RunEndEvent{Protocol: "SYN", Slots: 3, At: ms(6)})
}

// TestSpanBuilderHierarchy checks the span stream of the synthetic run:
// parent links resolve, intervals nest, the frame-end decode work lands in
// a resolution-phase span, and the campaign span closes last.
func TestSpanBuilderHierarchy(t *testing.T) {
	var spans []Span
	b := NewSpanBuilder(SpanSinkFunc(func(s Span) { spans = append(spans, s) }))
	feedSyntheticRun(b)
	b.Close()

	byID := make(map[uint64]Span, len(spans))
	count := map[SpanKind]int{}
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		byID[s.ID] = s
		count[s.Kind]++
	}
	for _, s := range spans {
		if s.Start > s.End {
			t.Errorf("span %d (%v): start %v > end %v", s.ID, s.Kind, s.Start, s.End)
		}
		if s.Kind == SpanCampaign {
			if s.Parent != 0 || s.ID != 1 {
				t.Errorf("campaign span must be ID 1 with no parent, got %+v", s)
			}
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %d (%v): parent %d never emitted", s.ID, s.Kind, s.Parent)
			continue
		}
		if s.Start < p.Start || s.End > p.End {
			t.Errorf("span %d (%v) [%v,%v] outside parent %d (%v) [%v,%v]",
				s.ID, s.Kind, s.Start, s.End, p.ID, p.Kind, p.Start, p.End)
		}
	}
	if spans[len(spans)-1].Kind != SpanCampaign {
		t.Error("campaign span must close last")
	}
	want := map[SpanKind]int{
		SpanCampaign: 1, SpanRun: 1, SpanFrame: 1, SpanSlot: 3,
		SpanResolution: 1, SpanIdentify: 2, SpanAck: 1, SpanRecord: 1,
		SpanCascade: 1, SpanResolve: 1, SpanEstimate: 1,
	}
	for k, n := range want {
		if count[k] != n {
			t.Errorf("%v spans: got %d, want %d", k, count[k], n)
		}
	}
	// The resolution phase must hold the cascade/resolve instants and the
	// via-resolution identify.
	var resolution Span
	for _, s := range spans {
		if s.Kind == SpanResolution {
			resolution = s
		}
	}
	holds := 0
	for _, s := range spans {
		if s.Parent == resolution.ID {
			holds++
		}
	}
	if holds != 3 {
		t.Errorf("resolution phase holds %d instants, want 3 (cascade, resolve, identify)", holds)
	}
}

// TestSpanBuilderRestartRewind: a crash-restart rewinds the cursor; spans
// opened after the restart must still nest inside their parents.
func TestSpanBuilderRestartRewind(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	var spans []Span
	b := NewSpanBuilder(SpanSinkFunc(func(s Span) { spans = append(spans, s) }))
	b.RunStart(RunStartEvent{Protocol: "SYN", Tags: 2})
	b.SlotDone(SlotEvent{Seq: 0, Kind: channel.Collision, Transmitters: 2, At: ms(10)})
	b.SessionCheckpoint(CheckpointEvent{Seq: 0, At: ms(10)})
	b.SlotDone(SlotEvent{Seq: 1, Kind: channel.Collision, Transmitters: 2, At: ms(20)})
	b.FaultInjected(FaultEvent{Kind: FaultCrash})
	b.ReaderRestart(RestartEvent{Wall: 2, At: ms(10), Checkpoint: 0})
	b.SlotDone(SlotEvent{Seq: 1, Kind: channel.Singleton, Transmitters: 1, At: ms(20)})
	b.RunEnd(RunEndEvent{At: ms(20)})
	b.Close()

	byID := make(map[uint64]Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Start > s.End {
			t.Errorf("span %d (%v): start %v > end %v", s.ID, s.Kind, s.Start, s.End)
		}
		if s.Kind == SpanCampaign {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d (%v): parent %d never emitted", s.ID, s.Kind, s.Parent)
		}
		if s.Start < p.Start || s.End > p.End {
			t.Errorf("span %d (%v) [%v,%v] outside parent [%v,%v]",
				s.ID, s.Kind, s.Start, s.End, p.Start, p.End)
		}
	}
	// The replayed slot starts at the rewound cursor, not at the crash time.
	var replayed Span
	for _, s := range spans[4:] { // after the restart instant
		if s.Kind == SpanSlot {
			replayed = s
		}
	}
	if replayed.Start != ms(10) {
		t.Errorf("replayed slot starts at %v, want the checkpoint time 10ms", replayed.Start)
	}
}

// TestChromeTraceValidJSON: the exporter's output is a well-formed JSON
// array of trace events with the fields Perfetto needs.
func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	b := NewSpanBuilder(ct)
	feedSyntheticRun(b)
	b.Close()
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	for _, ev := range events {
		for _, key := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		switch ph := ev["ph"].(string); ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("duration event missing dur: %v", ev)
			}
		case "i":
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
}

// TestWritePrometheusFormat: the exposition declares a type for every
// family, mangles names into the rfid_ namespace and keeps histogram
// buckets cumulative.
func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	tr := NewMetricsTracer(reg)
	feedSyntheticRun(tr)

	var buf bytes.Buffer
	if _, err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rfid_runs_completed_total counter\nrfid_runs_completed_total 1\n",
		"# TYPE rfid_hist_tx_per_slot histogram\n",
		"rfid_hist_tx_per_slot_bucket{le=\"+Inf\"} 3\n",
		"# TYPE rfid_sketch_ident_latency_us summary\n",
		"rfid_sketch_ident_latency_us{quantile=\"0.5\"}",
		"rfid_sketch_ident_latency_us_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets never decrease.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "rfid_hist_tx_per_slot_bucket{le=\"") || strings.Contains(line, "+Inf") {
			continue
		}
		var le, c int64
		if _, err := sscan2(line, &le, &c); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if c < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = c
	}
	// Two dumps are byte-identical.
	var buf2 bytes.Buffer
	if _, err := WritePrometheus(&buf2, reg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two expositions of the same registry differ")
	}
}

// sscan2 pulls le and count out of a bucket sample line.
func sscan2(line string, le, c *int64) (int, error) {
	i := strings.Index(line, "le=\"") + 4
	j := strings.Index(line[i:], "\"")
	k := strings.LastIndex(line, " ")
	n1, err := parseInt(line[i:i+j], le)
	if err != nil {
		return n1, err
	}
	return parseInt(line[k+1:], c)
}

func parseInt(s string, out *int64) (int, error) {
	var v int64
	neg := false
	for i := 0; i < len(s); i++ {
		if i == 0 && s[i] == '-' {
			neg = true
			continue
		}
		if s[i] < '0' || s[i] > '9' {
			return 0, &json.SyntaxError{}
		}
		v = v*10 + int64(s[i]-'0')
	}
	if neg {
		v = -v
	}
	*out = v
	return 1, nil
}

// TestRegistryDumpSorted: the text dump lists every metric name in sorted
// order and two dumps are byte-identical.
func TestRegistryDumpSorted(t *testing.T) {
	reg := NewRegistry()
	tr := NewMetricsTracer(reg)
	feedSyntheticRun(tr)

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		key, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %q is not key value", line)
		}
		names = append(names, key)
	}
	for i := 1; i < len(names); i++ {
		// Sub-keys of one metric (.count, .le.*, .p50...) may interleave
		// legally; the base-name sequence must be non-decreasing.
		a, b := baseName(names[i-1]), baseName(names[i])
		if a > b {
			t.Fatalf("dump not sorted: %q before %q", names[i-1], names[i])
		}
	}
	var buf2 bytes.Buffer
	if _, err := reg.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two dumps of the same registry differ")
	}
}

// baseName strips the dump suffixes the registry appends to histogram and
// sketch families.
func baseName(key string) string {
	for _, suf := range []string{".count", ".sum", ".p50", ".p90", ".p95", ".p99"} {
		if strings.HasSuffix(key, suf) {
			return strings.TrimSuffix(key, suf)
		}
	}
	if i := strings.Index(key, ".le."); i >= 0 {
		return key[:i]
	}
	return key
}

// TestSpanEmitNoAlloc: folding events into spans with a no-op sink must not
// allocate on the per-slot path (the builder's state is flat structs).
func TestSpanEmitNoAlloc(t *testing.T) {
	b := NewSpanBuilder(SpanSinkFunc(func(Span) {}))
	b.RunStart(RunStartEvent{Protocol: "SYN", Tags: 1})
	seq := 0
	allocs := testing.AllocsPerRun(1000, func() {
		b.TagIdentified(IdentifyEvent{At: time.Duration(seq) * time.Millisecond})
		b.SlotDone(SlotEvent{Seq: seq, Kind: channel.Singleton, Transmitters: 1,
			At: time.Duration(seq+1) * time.Millisecond})
		seq++
	})
	if allocs != 0 {
		t.Errorf("span emission allocates %v per slot, want 0", allocs)
	}
}
