package obs

import (
	"fmt"
	"io"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Timeline renders the event stream as a human-readable slot timeline, the
// debugging view of a run: one line per slot (`.` empty, `S` singleton,
// `C` collision) with indented annotations for frames, acknowledgements,
// record activity, cascade steps and estimator updates. Example:
//
//	run FCAT-2 tags=50
//	    frame 1 size=30 p=0.02828
//	[0007] C tx=2                              record @7 mult=2
//	[0012] S tx=1 id=30f1-4e2a99c0b51d-77aa    ack direct ok
//	           cascade 30f1-4e2a99c0b51d-77aa -> 1 record (depth 0)
//	           resolve @7 -> a012-... (depth 1)
//	    estimate 48.2 (frame est 47.0, identified 9)
//	run end: 61 slots, 2 frames, 38 direct + 12 resolved
//
// Not safe for concurrent use; errors are sticky and reported by Err.
type Timeline struct {
	w   io.Writer
	err error
}

var _ Tracer = (*Timeline)(nil)

// NewTimeline returns a timeline writer over w.
func NewTimeline(w io.Writer) *Timeline {
	return &Timeline{w: w}
}

// Err returns the first write error, if any.
func (t *Timeline) Err() error { return t.err }

func (t *Timeline) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func (t *Timeline) RunStart(ev RunStartEvent) {
	t.printf("run %s tags=%d\n", ev.Protocol, ev.Tags)
}

func (t *Timeline) RunEnd(ev RunEndEvent) {
	if ev.Err != "" {
		t.printf("run end: %d slots, %d frames, %d direct + %d resolved, ERROR %s\n",
			ev.Slots, ev.Frames, ev.Direct, ev.Resolved, ev.Err)
		return
	}
	t.printf("run end: %d slots, %d frames, %d direct + %d resolved\n",
		ev.Slots, ev.Frames, ev.Direct, ev.Resolved)
}

func (t *Timeline) FrameStart(ev FrameEvent) {
	if ev.P > 0 {
		t.printf("    frame %d size=%d p=%.5f\n", ev.Frame, ev.Size, ev.P)
		return
	}
	t.printf("    frame %d size=%d\n", ev.Frame, ev.Size)
}

func (t *Timeline) Advertisement(ev AdvertEvent) {
	t.printf("    advert p=%.5f\n", ev.P)
}

func glyph(k channel.Kind) byte {
	switch k {
	case channel.Empty:
		return '.'
	case channel.Singleton:
		return 'S'
	case channel.Collision:
		return 'C'
	case channel.Captured:
		return 'P'
	default:
		return '?'
	}
}

func (t *Timeline) SlotDone(ev SlotEvent) {
	t.printf("[%04d] %c tx=%d identified=%d\n", ev.Seq, glyph(ev.Kind), ev.Transmitters, ev.Identified)
}

func (t *Timeline) TagIdentified(ev IdentifyEvent) {
	how := "direct"
	if ev.ViaResolution {
		how = "resolved"
	}
	t.printf("           identify %s (%s)\n", ev.ID, how)
}

func (t *Timeline) AckSent(ev AckEvent) {
	fate := "ok"
	if !ev.Delivered {
		fate = "LOST"
	}
	t.printf("           ack %s %s %s\n", ev.Kind, ev.ID, fate)
}

func (t *Timeline) RecordCreated(ev RecordEvent) {
	t.printf("           record @%d mult=%d unknown=%d\n", ev.Slot, ev.Multiplicity, ev.Unknown)
}

func (t *Timeline) CascadeStep(ev CascadeEvent) {
	t.printf("           cascade %s -> %d records (depth %d)\n", ev.ID, ev.Records, ev.Depth)
}

func (t *Timeline) RecordResolved(ev ResolveEvent) {
	if ev.Dup {
		t.printf("           resolve @%d spent (residual %s already known)\n", ev.Slot, ev.ID)
		return
	}
	t.printf("           resolve @%d -> %s (depth %d)\n", ev.Slot, ev.ID, ev.Depth)
}

func (t *Timeline) EstimatorUpdate(ev EstimateEvent) {
	t.printf("    estimate %.1f (frame est %.1f, identified %d)\n", ev.Estimate, ev.FrameEst, ev.Identified)
}

func (t *Timeline) TagArrival(ev ArrivalEvent) {
	t.printf("    arrive %s at %v (active %d)\n", ev.ID, ev.At, ev.Active)
}

func (t *Timeline) TagDeparture(ev DepartureEvent) {
	fate := "identified"
	if !ev.Identified {
		fate = "UNREAD"
	}
	t.printf("    depart %s at %v (%s)\n", ev.ID, ev.At, fate)
}

func (t *Timeline) SessionCheckpoint(ev CheckpointEvent) {
	t.printf("    checkpoint %d at %v (active %d, identified %d)\n", ev.Seq, ev.At, ev.Active, ev.Identified)
}

func (t *Timeline) FaultInjected(ev FaultEvent) {
	if ev.ID == (tagid.ID{}) {
		t.printf("           fault %s @%d\n", ev.Kind, ev.Slot)
		return
	}
	t.printf("           fault %s @%d id=%s\n", ev.Kind, ev.Slot, ev.ID)
}

func (t *Timeline) RecordQuarantined(ev QuarantineEvent) {
	t.printf("           quarantine @%d (%s, %d members)\n", ev.Slot, ev.Reason, ev.Members)
}

func (t *Timeline) ReaderRestart(ev RestartEvent) {
	t.printf("    RESTART at wall slot %d -> checkpoint %d (%v)\n", ev.Wall, ev.Checkpoint, ev.At)
}

func (t *Timeline) FleetActivity(ev FleetEvent) {
	if ev.Kind == FleetMigration {
		t.printf("    fleet reader=%d migrate %s zone %d -> %d at %v\n",
			ev.Reader, ev.ID, ev.From, ev.Zone, ev.At)
		return
	}
	t.printf("    fleet reader=%d zone=%d %s at %v\n", ev.Reader, ev.Zone, ev.Kind, ev.At)
}
