package obs

import (
	"bufio"
	"io"
	"strconv"
)

// ChromeTrace is a SpanSink writing the Chrome trace-event JSON array format,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing. Duration
// spans become complete events (ph "X"), instants become instant events
// (ph "i"); timestamps are simulated air time in microseconds. Each run gets
// its own thread lane (tid = run index + 1; the campaign span sits on tid 0),
// so parallel-campaign traces lay the runs side by side.
//
// The writer buffers internally: call Close to terminate the JSON array and
// flush, and check Err for any deferred write error. Output depends only on
// the span stream, so it inherits the stream's worker-count determinism.
type ChromeTrace struct {
	w     *bufio.Writer
	buf   []byte
	first bool
	err   error
}

var _ SpanSink = (*ChromeTrace)(nil)

// NewChromeTrace returns a trace writer emitting into w.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	t := &ChromeTrace{w: bufio.NewWriter(w), first: true, buf: make([]byte, 0, 256)}
	t.buf = append(t.buf, "[\n"...)
	return t
}

// EmitSpan implements SpanSink.
func (t *ChromeTrace) EmitSpan(s Span) {
	if t.err != nil {
		return
	}
	b := t.buf
	if t.first {
		t.first = false
	} else {
		b = append(b, ",\n"...)
	}
	tid := s.Run + 1
	if s.Run < 0 {
		tid = 0
	}
	b = append(b, `{"name":"`...)
	b = append(b, s.Kind.String()...)
	if s.Label != "" {
		b = append(b, ' ')
		b = appendJSONString(b, s.Label)
	}
	b = append(b, `","ph":"`...)
	if s.Kind.Instant() {
		b = append(b, `i","s":"t`...)
	} else {
		b = append(b, 'X')
	}
	b = append(b, `","pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, s.Start.Microseconds(), 10)
	if !s.Kind.Instant() {
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, (s.End - s.Start).Microseconds(), 10)
	}
	b = append(b, `,"args":{"id":`...)
	b = strconv.AppendInt(b, int64(s.ID), 10)
	b = append(b, `,"parent":`...)
	b = strconv.AppendInt(b, int64(s.Parent), 10)
	if s.Seq >= 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendInt(b, int64(s.Seq), 10)
	}
	b = append(b, `,"n1":`...)
	b = strconv.AppendInt(b, int64(s.N1), 10)
	b = append(b, `,"n2":`...)
	b = strconv.AppendInt(b, int64(s.N2), 10)
	b = append(b, "}}"...)
	_, t.err = t.w.Write(b)
	t.buf = b[:0]
}

// appendJSONString appends s with the characters JSON requires escaped.
// Protocol names are plain ASCII; anything exotic falls back to \u escapes.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return b
}

// Close terminates the JSON array and flushes. It does not close the
// underlying writer.
func (t *ChromeTrace) Close() error {
	if t.err == nil {
		_, t.err = t.w.WriteString("\n]\n")
	}
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the first write error, if any.
func (t *ChromeTrace) Err() error { return t.err }
