// Server-plane observability: the metric families and typed events of the
// inventory session server (internal/server, cmd/rfidserver). The server
// reuses the campaign observability plane — its per-session protocol
// events flow through MetricsTracer into the same Registry, and /metrics
// is WritePrometheus over that registry — so these names cover only what
// the campaign plane cannot see: the HTTP request ladder, the durable
// checkpoint store, startup recovery and lifecycle evictions.
package obs

import "time"

// Registry names of the server plane. WritePrometheus exposes them under
// the rfid_ namespace with '.' mangled to '_' (for example
// "server.recovery.quarantined" serves as
// rfid_server_recovery_quarantined_total).
const (
	// Request ladder.
	MetricServerRequests           = "server.requests"
	MetricServerRequestErrors      = "server.request_errors"
	MetricServerRejectBackpressure = "server.rejected.backpressure"
	MetricServerRejectRatelimit    = "server.rejected.ratelimit"
	MetricServerRejectDraining     = "server.rejected.draining"
	HistServerStepBatch            = "server.step_batch"

	// Session lifecycle.
	MetricServerSessionsCreated     = "server.sessions.created"
	MetricServerSessionsDeleted     = "server.sessions.deleted"
	MetricServerSessionsPoisoned    = "server.sessions.poisoned"
	MetricServerSessionsReactivated = "server.sessions.reactivated"
	MetricServerEvictIdle           = "server.evictions.idle"
	MetricServerSteps               = "server.steps"

	// Durable checkpoint store.
	MetricServerCheckpointWrites = "server.checkpoint.writes"
	MetricServerCheckpointErrors = "server.checkpoint.errors"
	MetricServerCheckpointBytes  = "server.checkpoint.bytes"

	// Startup recovery ladder (the rfid_server_recovery_* families the
	// durability contract pins).
	MetricServerRecoveryScanned       = "server.recovery.scanned"
	MetricServerRecoveryRecovered     = "server.recovery.recovered"
	MetricServerRecoveryQuarantined   = "server.recovery.quarantined"
	MetricServerRecoveryReplayedSteps = "server.recovery.replayed_steps"

	// Invariant audit (must stay zero; non-zero means a protocol or the
	// replay machinery broke the no-duplicate/no-phantom contract).
	MetricServerDupIdents = "server.invariant.dup_idents"
	MetricServerPhantoms  = "server.invariant.phantoms"
)

// ServerRequestEvent is one API request's outcome.
type ServerRequestEvent struct {
	// Op is the request kind: "create", "step", "admit", "revoke",
	// "snapshot", "status", "list", "delete", "idents".
	Op string
	// Session is the target session ID ("" for list).
	Session string
	// Status is the HTTP status served.
	Status int
}

// ServerRecoveryEvent is one session's fate during the startup recovery
// scan.
type ServerRecoveryEvent struct {
	// Session is the session ID (or the file path when no record
	// decoded).
	Session string
	// Steps is the replayed step count (recovered sessions only).
	Steps uint64
	// Quarantined reports the checkpoint was set aside instead of
	// recovered; Err carries the typed reason.
	Quarantined bool
	Err         string
}

// ServerEvictEvent is one idle session passivated to its checkpoint.
type ServerEvictEvent struct {
	Session string
	// Idle is how long the session sat untouched.
	Idle time.Duration
}

// ServerSink receives server-plane events. Implementations must tolerate
// concurrent calls from the HTTP layer and the shard workers.
type ServerSink interface {
	ServerRequest(ServerRequestEvent)
	ServerRecovery(ServerRecoveryEvent)
	ServerEvict(ServerEvictEvent)
}

// serverMetrics folds server events into a Registry — the ServerSink
// analogue of MetricsTracer.
type serverMetrics struct {
	requests, requestErrors          *Counter
	recovered, quarantined, replayed *Counter
	scanned                          *Counter
	evictions                        *Counter
}

// NewServerMetrics returns a ServerSink that folds events into reg's
// server.* families. Counters are registered eagerly so /metrics exposes
// zero-valued families from the first scrape — a recovery pass that
// quarantined nothing still reports rfid_server_recovery_quarantined_total 0.
func NewServerMetrics(reg *Registry) ServerSink {
	return &serverMetrics{
		requests:      reg.Counter(MetricServerRequests),
		requestErrors: reg.Counter(MetricServerRequestErrors),
		scanned:       reg.Counter(MetricServerRecoveryScanned),
		recovered:     reg.Counter(MetricServerRecoveryRecovered),
		quarantined:   reg.Counter(MetricServerRecoveryQuarantined),
		replayed:      reg.Counter(MetricServerRecoveryReplayedSteps),
		evictions:     reg.Counter(MetricServerEvictIdle),
	}
}

func (m *serverMetrics) ServerRequest(ev ServerRequestEvent) {
	m.requests.Inc()
	if ev.Status >= 500 {
		m.requestErrors.Inc()
	}
}

func (m *serverMetrics) ServerRecovery(ev ServerRecoveryEvent) {
	m.scanned.Inc()
	if ev.Quarantined {
		m.quarantined.Inc()
		return
	}
	m.recovered.Inc()
	m.replayed.Add(int64(ev.Steps))
}

func (m *serverMetrics) ServerEvict(ServerEvictEvent) {
	m.evictions.Inc()
}
