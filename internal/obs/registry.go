package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds the value 0, bucket i >= 1 holds values in [2^(i-1), 2^i - 1].
// 40 buckets cover every count the simulator can produce.
const histBuckets = 40

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is an atomic histogram over non-negative integer values with
// power-of-two buckets, plus exact count and sum. Concurrent Observe calls
// are safe; a snapshot taken while writers are active is approximate (each
// bucket is individually consistent).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 -> 0, v -> bits.Len(v).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Bucket returns the number of observations in bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if i < 0 || i >= histBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Registry is a concurrency-safe collection of named counters, histograms
// and quantile sketches. Lookup-or-create takes a mutex; the returned
// handles update atomically, so hot paths should cache them (as
// MetricsTracer does). One registry can aggregate a whole campaign: the sim
// harness feeds every run of a campaign into the same registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	sketches map[string]*Sketch
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		sketches: make(map[string]*Sketch),
	}
}

// Counter returns the named counter, creating it at zero if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it empty if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Sketch returns the named quantile sketch, creating it empty if needed.
func (r *Registry) Sketch(name string) *Sketch {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sketches[name]
	if !ok {
		s = &Sketch{}
		r.sketches[name] = s
	}
	return s
}

// Value returns the named counter's current value (0 if absent).
func (r *Registry) Value(name string) int64 {
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// sketchQuantiles are the fixed quantiles the text dump and the Prometheus
// exposition report for every sketch.
var sketchQuantiles = []struct {
	q     float64
	key   string // dump suffix
	label string // Prometheus quantile label value
}{
	{0.50, "p50", "0.5"},
	{0.90, "p90", "0.9"},
	{0.95, "p95", "0.95"},
	{0.99, "p99", "0.99"},
}

// snapshot copies the handle maps under the lock so dumps iterate without
// holding it; the atomic handles stay live.
func (r *Registry) snapshot() (names []string, counters map[string]*Counter, hists map[string]*Histogram, sketches map[string]*Sketch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters = make(map[string]*Counter, len(r.counters))
	hists = make(map[string]*Histogram, len(r.hists))
	sketches = make(map[string]*Sketch, len(r.sketches))
	seen := make(map[string]struct{}, len(r.counters)+len(r.hists)+len(r.sketches))
	add := func(name string) {
		if _, ok := seen[name]; !ok {
			seen[name] = struct{}{}
			names = append(names, name)
		}
	}
	for name, c := range r.counters {
		counters[name] = c
		add(name)
	}
	for name, h := range r.hists {
		hists[name] = h
		add(name)
	}
	for name, s := range r.sketches {
		sketches[name] = s
		add(name)
	}
	sort.Strings(names)
	return names, counters, hists, sketches
}

// WriteTo dumps the registry as sorted expvar/Prometheus-style text: one
// "key value" pair per line, metric names in sorted order. Counters dump as
// "name value"; histograms as "name.count", "name.sum" and cumulative
// "name.le.<upper>" bucket lines (only up to the last non-empty bucket);
// sketches as "name.count", "name.p50/.p90/.p95/.p99" and "name.sum". All
// values are integers, and two dumps of the same campaign are byte-identical
// regardless of worker count or dump order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	names, counters, hists, sketches := r.snapshot()

	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, name := range names {
		if c, ok := counters[name]; ok {
			if err := emit("%s %d\n", name, c.Value()); err != nil {
				return total, err
			}
		}
		if h, ok := hists[name]; ok {
			if err := emit("%s.count %d\n%s.sum %d\n", name, h.Count(), name, h.Sum()); err != nil {
				return total, err
			}
			last := histBuckets - 1
			for last > 0 && h.Bucket(last) == 0 {
				last--
			}
			cum := int64(0)
			for i := 0; i <= last; i++ {
				cum += h.Bucket(i)
				if err := emit("%s.le.%d %d\n", name, BucketUpper(i), cum); err != nil {
					return total, err
				}
			}
		}
		if s, ok := sketches[name]; ok {
			if err := emit("%s.count %d\n", name, s.Count()); err != nil {
				return total, err
			}
			for _, sq := range sketchQuantiles {
				if err := emit("%s.%s %d\n", name, sq.key, s.Quantile(sq.q)); err != nil {
					return total, err
				}
			}
			if err := emit("%s.sum %d\n", name, s.Sum()); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}
