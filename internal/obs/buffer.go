package obs

// eventKind indexes the event types a Buffer can hold, in the order the
// Tracer interface declares them.
type eventKind uint8

const (
	kindRunStart eventKind = iota
	kindRunEnd
	kindFrameStart
	kindAdvertisement
	kindSlotDone
	kindTagIdentified
	kindAckSent
	kindRecordCreated
	kindCascadeStep
	kindRecordResolved
	kindEstimatorUpdate
	kindTagArrival
	kindTagDeparture
	kindSessionCheckpoint
	kindFaultInjected
	kindRecordQuarantined
	kindReaderRestart
	kindFleetActivity
)

// Buffer is a Tracer that records a run's event stream in memory and plays
// it back later, in the exact order it was recorded. The sim harness uses
// one Buffer per concurrent run so that a parallel campaign can replay the
// runs' streams back-to-back in run-index order, making the merged trace
// byte-identical to a sequential campaign's.
//
// Events are stored in per-type slices (no interface boxing, one
// allocation per slice growth); the order slice remembers the interleaving.
// A Buffer is not safe for concurrent use — it records exactly one run.
type Buffer struct {
	order []eventKind

	runStarts  []RunStartEvent
	runEnds    []RunEndEvent
	frames     []FrameEvent
	adverts    []AdvertEvent
	slots      []SlotEvent
	identifies []IdentifyEvent
	acks       []AckEvent
	records    []RecordEvent
	cascades   []CascadeEvent
	resolves   []ResolveEvent
	estimates  []EstimateEvent

	arrivals    []ArrivalEvent
	departures  []DepartureEvent
	checkpoints []CheckpointEvent

	faults      []FaultEvent
	quarantines []QuarantineEvent
	restarts    []RestartEvent
	fleets      []FleetEvent
}

var _ Tracer = (*Buffer)(nil)

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.order) }

// Reset empties the buffer, retaining capacity.
func (b *Buffer) Reset() {
	b.order = b.order[:0]
	b.runStarts = b.runStarts[:0]
	b.runEnds = b.runEnds[:0]
	b.frames = b.frames[:0]
	b.adverts = b.adverts[:0]
	b.slots = b.slots[:0]
	b.identifies = b.identifies[:0]
	b.acks = b.acks[:0]
	b.records = b.records[:0]
	b.cascades = b.cascades[:0]
	b.resolves = b.resolves[:0]
	b.estimates = b.estimates[:0]
	b.arrivals = b.arrivals[:0]
	b.departures = b.departures[:0]
	b.checkpoints = b.checkpoints[:0]
	b.faults = b.faults[:0]
	b.quarantines = b.quarantines[:0]
	b.restarts = b.restarts[:0]
	b.fleets = b.fleets[:0]
}

// Replay delivers every buffered event to t in recorded order. A nil t is
// a no-op. The buffer is left intact; call Reset to reuse it.
func (b *Buffer) Replay(t Tracer) {
	if t == nil {
		return
	}
	var cursor [kindFleetActivity + 1]int
	for _, k := range b.order {
		i := cursor[k]
		cursor[k]++
		switch k {
		case kindRunStart:
			t.RunStart(b.runStarts[i])
		case kindRunEnd:
			t.RunEnd(b.runEnds[i])
		case kindFrameStart:
			t.FrameStart(b.frames[i])
		case kindAdvertisement:
			t.Advertisement(b.adverts[i])
		case kindSlotDone:
			t.SlotDone(b.slots[i])
		case kindTagIdentified:
			t.TagIdentified(b.identifies[i])
		case kindAckSent:
			t.AckSent(b.acks[i])
		case kindRecordCreated:
			t.RecordCreated(b.records[i])
		case kindCascadeStep:
			t.CascadeStep(b.cascades[i])
		case kindRecordResolved:
			t.RecordResolved(b.resolves[i])
		case kindEstimatorUpdate:
			t.EstimatorUpdate(b.estimates[i])
		case kindTagArrival:
			t.TagArrival(b.arrivals[i])
		case kindTagDeparture:
			t.TagDeparture(b.departures[i])
		case kindSessionCheckpoint:
			t.SessionCheckpoint(b.checkpoints[i])
		case kindFaultInjected:
			t.FaultInjected(b.faults[i])
		case kindRecordQuarantined:
			t.RecordQuarantined(b.quarantines[i])
		case kindReaderRestart:
			t.ReaderRestart(b.restarts[i])
		case kindFleetActivity:
			t.FleetActivity(b.fleets[i])
		}
	}
}

func (b *Buffer) RunStart(ev RunStartEvent) {
	b.order = append(b.order, kindRunStart)
	b.runStarts = append(b.runStarts, ev)
}

func (b *Buffer) RunEnd(ev RunEndEvent) {
	b.order = append(b.order, kindRunEnd)
	b.runEnds = append(b.runEnds, ev)
}

func (b *Buffer) FrameStart(ev FrameEvent) {
	b.order = append(b.order, kindFrameStart)
	b.frames = append(b.frames, ev)
}

func (b *Buffer) Advertisement(ev AdvertEvent) {
	b.order = append(b.order, kindAdvertisement)
	b.adverts = append(b.adverts, ev)
}

func (b *Buffer) SlotDone(ev SlotEvent) {
	b.order = append(b.order, kindSlotDone)
	b.slots = append(b.slots, ev)
}

func (b *Buffer) TagIdentified(ev IdentifyEvent) {
	b.order = append(b.order, kindTagIdentified)
	b.identifies = append(b.identifies, ev)
}

func (b *Buffer) AckSent(ev AckEvent) {
	b.order = append(b.order, kindAckSent)
	b.acks = append(b.acks, ev)
}

func (b *Buffer) RecordCreated(ev RecordEvent) {
	b.order = append(b.order, kindRecordCreated)
	b.records = append(b.records, ev)
}

func (b *Buffer) CascadeStep(ev CascadeEvent) {
	b.order = append(b.order, kindCascadeStep)
	b.cascades = append(b.cascades, ev)
}

func (b *Buffer) RecordResolved(ev ResolveEvent) {
	b.order = append(b.order, kindRecordResolved)
	b.resolves = append(b.resolves, ev)
}

func (b *Buffer) EstimatorUpdate(ev EstimateEvent) {
	b.order = append(b.order, kindEstimatorUpdate)
	b.estimates = append(b.estimates, ev)
}

func (b *Buffer) TagArrival(ev ArrivalEvent) {
	b.order = append(b.order, kindTagArrival)
	b.arrivals = append(b.arrivals, ev)
}

func (b *Buffer) TagDeparture(ev DepartureEvent) {
	b.order = append(b.order, kindTagDeparture)
	b.departures = append(b.departures, ev)
}

func (b *Buffer) SessionCheckpoint(ev CheckpointEvent) {
	b.order = append(b.order, kindSessionCheckpoint)
	b.checkpoints = append(b.checkpoints, ev)
}

func (b *Buffer) FaultInjected(ev FaultEvent) {
	b.order = append(b.order, kindFaultInjected)
	b.faults = append(b.faults, ev)
}

func (b *Buffer) RecordQuarantined(ev QuarantineEvent) {
	b.order = append(b.order, kindRecordQuarantined)
	b.quarantines = append(b.quarantines, ev)
}

func (b *Buffer) ReaderRestart(ev RestartEvent) {
	b.order = append(b.order, kindReaderRestart)
	b.restarts = append(b.restarts, ev)
}

func (b *Buffer) FleetActivity(ev FleetEvent) {
	b.order = append(b.order, kindFleetActivity)
	b.fleets = append(b.fleets, ev)
}
