package obs

import "sync"

// HealthKind classifies a health-state transition detected by HealthMonitor.
type HealthKind uint8

const (
	// HealthStall fires when the reader has spent StallSlots consecutive
	// non-empty slots without identifying a single new tag — the protocol is
	// burning air time on collisions (or corrupted reports) and making no
	// progress. One event opens each stall episode; the next identification
	// closes it silently.
	HealthStall HealthKind = iota + 1
	// HealthRecovered fires when an identification ends a stall episode.
	HealthRecovered
	// HealthQuarantineSurge fires when the record store's quarantine rate
	// (quarantined / created) first exceeds QuarantineRateMax with at least
	// QuarantineMinRecords records observed.
	HealthQuarantineSurge
	// HealthRunFailed fires when a run ends with an error.
	HealthRunFailed
)

// String returns the health-kind name.
func (k HealthKind) String() string {
	switch k {
	case HealthStall:
		return "stall"
	case HealthRecovered:
		return "recovered"
	case HealthQuarantineSurge:
		return "quarantine-surge"
	case HealthRunFailed:
		return "run-failed"
	default:
		return "unknown"
	}
}

// HealthEvent is one typed health-state transition.
type HealthEvent struct {
	Kind HealthKind
	// Run is the 0-based run index the transition occurred in.
	Run int
	// Slot is the slot sequence number at the transition (-1 outside slots).
	Slot int
	// Score is the health score after the transition.
	Score float64
}

// HealthConfig tunes the monitor's detectors; zero values select defaults.
type HealthConfig struct {
	// StallSlots is the number of consecutive non-empty slots without a new
	// identification that opens a stall episode. Empty slots do not count —
	// an idle reader facing no tags is not stalled. Default 200.
	StallSlots int
	// EWMAAlpha is the smoothing factor of the rolling per-slot throughput
	// EWMA (identifications per slot). Default 0.05.
	EWMAAlpha float64
	// QuarantineRateMax is the quarantined/created record ratio above which
	// the store is considered poisoned. Default 0.25.
	QuarantineRateMax float64
	// QuarantineMinRecords gates the rate detector until enough records have
	// been observed. Default 20.
	QuarantineMinRecords int
}

func (c *HealthConfig) defaults() {
	if c.StallSlots <= 0 {
		c.StallSlots = 200
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 0.05
	}
	if c.QuarantineRateMax <= 0 {
		c.QuarantineRateMax = 0.25
	}
	if c.QuarantineMinRecords <= 0 {
		c.QuarantineMinRecords = 20
	}
}

// HealthSnapshot is a point-in-time view of the monitor, serialisable as the
// /healthz payload.
type HealthSnapshot struct {
	// Score is the current health score in [0, 100]; 100 is perfectly
	// healthy.
	Score float64 `json:"score"`
	// Healthy is Score above 50 with no stall episode currently open.
	Healthy bool `json:"healthy"`
	// Stalled reports an open stall episode.
	Stalled bool `json:"stalled"`
	// Stalls counts stall episodes opened so far.
	Stalls int `json:"stalls"`
	// Throughput is the rolling identifications-per-slot EWMA.
	Throughput float64 `json:"throughput"`
	// QuarantineRate is quarantined/created records (0 with no records).
	QuarantineRate float64 `json:"quarantine_rate"`
	// RunsFailed counts runs that ended with an error.
	RunsFailed int `json:"runs_failed"`
	// Slots counts slots observed across all runs.
	Slots int64 `json:"slots"`
	// Identified counts identifications across all runs.
	Identified int64 `json:"identified"`
}

// HealthMonitor is a Tracer that scores the traced system's health from the
// event stream: a rolling throughput EWMA, a stall detector (non-empty slots
// without progress), a quarantine-rate detector and a run-failure count fold
// into a 0-100 score. Transitions surface as typed HealthEvents through the
// OnEvent callback (invoked inline, in event order); the current state is
// available at any time via Snapshot, which sim.RunChaos folds into its
// reports and rfidsim serves at /healthz.
//
// All state is behind a mutex, so a monitor may be shared across the
// concurrent runs of a parallel campaign; scores are then campaign-global.
type HealthMonitor struct {
	NopTracer

	// OnEvent, when non-nil, receives every health transition. Set it before
	// the monitor sees events.
	OnEvent func(HealthEvent)

	cfg HealthConfig

	mu          sync.Mutex
	run         int // current run index (count of RunStarts - 1)
	slots       int64
	identified  int64
	ewma        float64
	barren      int // consecutive non-empty slots without identification
	sinceSlotID int // identifications since last SlotDone
	stalled     bool
	stalls      int
	recCreated  int64
	recQuar     int64
	quarSurged  bool
	runsFailed  int
	lastSlot    int
}

// NewHealthMonitor returns a monitor with the given configuration (zero
// fields take defaults).
func NewHealthMonitor(cfg HealthConfig) *HealthMonitor {
	cfg.defaults()
	return &HealthMonitor{cfg: cfg, run: -1, lastSlot: -1}
}

// scoreLocked computes the health score from current state (mu held).
func (m *HealthMonitor) scoreLocked() float64 {
	score := 100.0
	if m.stalled {
		score -= 40
	}
	// Repeat stall episodes beyond the first shave 5 points each, up to 20.
	if extra := m.stalls - 1; extra > 0 {
		p := float64(extra) * 5
		if p > 20 {
			p = 20
		}
		score -= p
	}
	if m.quarSurged {
		score -= 20
	}
	if m.runsFailed > 0 {
		p := float64(m.runsFailed) * 25
		if p > 50 {
			p = 50
		}
		score -= p
	}
	if score < 0 {
		score = 0
	}
	return score
}

func (m *HealthMonitor) emit(kind HealthKind, slot int) {
	if m.OnEvent == nil {
		return
	}
	ev := HealthEvent{Kind: kind, Run: m.run, Slot: slot, Score: m.scoreLocked()}
	m.OnEvent(ev)
}

// Snapshot returns the current health state.
func (m *HealthMonitor) Snapshot() HealthSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := HealthSnapshot{
		Score:      m.scoreLocked(),
		Stalled:    m.stalled,
		Stalls:     m.stalls,
		Throughput: m.ewma,
		RunsFailed: m.runsFailed,
		Slots:      m.slots,
		Identified: m.identified,
	}
	if m.recCreated > 0 {
		s.QuarantineRate = float64(m.recQuar) / float64(m.recCreated)
	}
	s.Healthy = s.Score > 50 && !s.Stalled
	return s
}

// Score returns the current health score in [0, 100].
func (m *HealthMonitor) Score() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scoreLocked()
}

// Stalls returns the number of stall episodes opened so far.
func (m *HealthMonitor) Stalls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stalls
}

// RunStart implements Tracer.
func (m *HealthMonitor) RunStart(RunStartEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.run++
	// A stall episode does not survive a run boundary.
	m.stalled = false
	m.barren = 0
	m.sinceSlotID = 0
	m.lastSlot = -1
}

// RunEnd implements Tracer.
func (m *HealthMonitor) RunEnd(ev RunEndEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.Err != "" {
		m.runsFailed++
		m.emit(HealthRunFailed, m.lastSlot)
	}
	m.stalled = false
	m.barren = 0
	m.sinceSlotID = 0
}

// SlotDone implements Tracer: the throughput EWMA and the stall detector
// both advance per slot.
func (m *HealthMonitor) SlotDone(ev SlotEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.slots++
	m.lastSlot = ev.Seq
	ids := m.sinceSlotID
	m.sinceSlotID = 0
	m.ewma += m.cfg.EWMAAlpha * (float64(ids) - m.ewma)
	if ids > 0 {
		m.barren = 0
		if m.stalled {
			m.stalled = false
			m.emit(HealthRecovered, ev.Seq)
		}
		return
	}
	if ev.Transmitters == 0 {
		// Idle air is not a stall: nothing was there to identify.
		return
	}
	m.barren++
	if m.barren == m.cfg.StallSlots && !m.stalled {
		m.stalled = true
		m.stalls++
		m.emit(HealthStall, ev.Seq)
	}
}

// TagIdentified implements Tracer.
func (m *HealthMonitor) TagIdentified(IdentifyEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.identified++
	m.sinceSlotID++
}

// RecordCreated implements Tracer.
func (m *HealthMonitor) RecordCreated(RecordEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recCreated++
}

// RecordQuarantined implements Tracer.
func (m *HealthMonitor) RecordQuarantined(QuarantineEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recQuar++
	if m.quarSurged {
		return
	}
	if m.recCreated >= int64(m.cfg.QuarantineMinRecords) &&
		float64(m.recQuar) > m.cfg.QuarantineRateMax*float64(m.recCreated) {
		m.quarSurged = true
		m.emit(HealthQuarantineSurge, m.lastSlot)
	}
}
