// Package obs is the observability layer of the simulator: a typed,
// allocation-free event stream emitted by every protocol run, plus the
// consumers that turn it into traces and metrics.
//
// The paper's argument is entirely about what happens *inside* slots —
// collision records accumulating, ANC cancellation cascades, the embedded
// estimator locking on (Eq. 12) — so the event taxonomy mirrors exactly
// those moments:
//
//	RunStart / RunEnd            one protocol run begins / finishes
//	FrameStart                   a frame boundary (framed protocols)
//	Advertisement                a per-slot advertisement (probe slots)
//	SlotDone                     one report segment completed
//	TagIdentified                a tag ID entered the reader's inventory
//	AckSent                      a reader acknowledgement (and its fate)
//	RecordCreated                a collision record was stored
//	CascadeStep                  a known signal is subtracted from records
//	RecordResolved               a record decoded (or was spent)
//	EstimatorUpdate              the population estimate changed
//	TagArrival                   a tag entered the field (dynamic workloads)
//	TagDeparture                 a tag left the field (dynamic workloads)
//	SessionCheckpoint            a session snapshot was taken
//
// Producers hold a Tracer behind a nil check (see protocol.Env.Tracer), so
// a run without observers pays nothing: events are plain structs passed by
// value through concrete method calls — no interface boxing, no heap
// allocation. bench_test.go guards this with a testing.AllocsPerRun
// assertion.
//
// Consumers provided here:
//
//   - JSONL: a machine-readable trace writer (one JSON object per line,
//     schema versioned by SchemaVersion; see docs/observability.md).
//   - Timeline: a human-readable slot timeline for debugging cascades.
//   - MetricsTracer: feeds an atomic counter/histogram Registry whose
//     totals mirror protocol.Metrics (cross-checked in tests) and whose
//     text dump parses as "key value" lines.
//   - Hooks: a struct-of-functions adapter for ad-hoc observers.
//   - Multi: fan-out to several tracers.
package obs

import (
	"time"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// SchemaVersion is the version number stamped on every JSONL trace line.
// It increments whenever an existing field changes meaning or is removed;
// adding new event types or new fields is backward compatible and does not
// bump it (see docs/observability.md for the full policy).
const SchemaVersion = 1

// AckKind classifies a reader acknowledgement.
type AckKind uint8

const (
	// AckDirect acknowledges a tag read from its own singleton slot.
	AckDirect AckKind = iota + 1
	// AckResolvedIndex acknowledges an ID recovered from a collision
	// record by broadcasting the record's 23-bit slot index (FCAT,
	// Section V-A).
	AckResolvedIndex
	// AckResolvedID acknowledges a recovered ID by broadcasting the full
	// 96-bit ID (SCAT and the frame-based collision resolvers).
	AckResolvedID
)

// String returns the acknowledgement-kind name.
func (k AckKind) String() string {
	switch k {
	case AckDirect:
		return "direct"
	case AckResolvedIndex:
		return "resolved-index"
	case AckResolvedID:
		return "resolved-id"
	default:
		return "unknown"
	}
}

// RunStartEvent opens one protocol run.
type RunStartEvent struct {
	// Protocol is the display name, e.g. "FCAT-2".
	Protocol string
	// Tags is the population size the run faces.
	Tags int
}

// RunEndEvent closes one protocol run.
type RunEndEvent struct {
	// Protocol is the display name, e.g. "FCAT-2".
	Protocol string
	// Slots, Frames, Direct and Resolved summarise the finished run (the
	// same quantities as protocol.Metrics).
	Slots    int
	Frames   int
	Direct   int
	Resolved int
	// Err is the run error, empty on success.
	Err string
	// At is the simulated air time the run finished at (equal to the run's
	// Metrics.OnAir). Not serialised by the JSONL tracer — the trace derives
	// slot times from the timing model; spans and sketches consume it.
	At time.Duration
}

// FrameEvent marks a frame boundary: the advertisement that opens a frame
// of Size slots at report probability P.
type FrameEvent struct {
	// Seq is the sequence number the frame's first slot will get.
	Seq int
	// Frame is the 1-based frame number within the run.
	Frame int
	// Size is the number of slots in the frame.
	Size int
	// P is the advertised report probability; 0 for frame-ALOHA protocols,
	// which advertise a frame size instead.
	P float64
	// At is the simulated air time the frame was advertised at.
	At time.Duration
}

// AdvertEvent marks a single-slot advertisement (SCAT's per-slot
// advertisements and FCAT's bootstrap/termination probes).
type AdvertEvent struct {
	// Seq is the sequence number the advertised slot will get.
	Seq int
	// P is the advertised report probability.
	P float64
	// At is the simulated air time of the advertisement.
	At time.Duration
}

// SlotEvent reports one completed report segment.
type SlotEvent struct {
	// Seq is the 0-based sequence number of the slot within the run.
	Seq int
	// Kind is the observed outcome (empty / singleton / collision).
	Kind channel.Kind
	// Transmitters is the number of tags that reported (ground truth).
	Transmitters int
	// Identified is the cumulative unique-ID count after the slot.
	Identified int
	// At is the simulated air time after the slot (report segment,
	// acknowledgements and resolution work included).
	At time.Duration
}

// IdentifyEvent reports a tag ID entering the reader's inventory, exactly
// once per counted tag.
type IdentifyEvent struct {
	// ID is the identified tag.
	ID tagid.ID
	// ViaResolution is true when the ID was recovered from a collision
	// record rather than read from a singleton slot.
	ViaResolution bool
	// At is the simulated air time of the identification. In a batch run it
	// doubles as the identification latency (every tag is present from t=0).
	At time.Duration
}

// AckEvent reports one reader acknowledgement and whether it reached its
// tag (lost acknowledgements make the tag keep transmitting, Section IV-E).
type AckEvent struct {
	// Seq is the sequence number of the slot the acknowledgement follows.
	Seq int
	// ID is the acknowledged tag.
	ID tagid.ID
	// Kind is the acknowledgement encoding.
	Kind AckKind
	// Delivered is false when the acknowledgement was lost.
	Delivered bool
	// At is the simulated air time of the acknowledgement.
	At time.Duration
}

// RecordEvent reports a collision record entering the reader's store.
type RecordEvent struct {
	// Slot is the record's slot index (the key FCAT later acknowledges).
	Slot uint64
	// Multiplicity is the number of tags that transmitted in the slot.
	Multiplicity int
	// Unknown is how many of them the reader had not identified yet when
	// the record was stored.
	Unknown int
}

// CascadeEvent reports one step of the resolution cascade: a newly-known
// tag's signal being subtracted from every record it participated in.
type CascadeEvent struct {
	// ID is the tag whose signal is subtracted.
	ID tagid.ID
	// Records is the number of stored records the tag participated in.
	Records int
	// Depth is the cascade depth: 0 for the identification that started
	// the cascade, d+1 for an ID recovered at depth d.
	Depth int
}

// ResolveEvent reports a collision record resolving.
type ResolveEvent struct {
	// Slot is the resolved record's slot index.
	Slot uint64
	// ID is the recovered tag ID (the record's last unknown constituent).
	ID tagid.ID
	// Trigger is the identification whose subtraction completed the
	// record; the zero ID when the record resolved as it was stored
	// (all other members already known).
	Trigger tagid.ID
	// Depth is the cascade depth at which the record resolved: 0 when it
	// resolved as stored, d+1 when triggered by an ID known at depth d.
	Depth int
	// Dup is true when the residual was an ID the reader already knew
	// (the record is spent but yields nothing new — two records in one
	// cascade can strip down to the same tag).
	Dup bool
}

// EstimateEvent reports a population-estimate update.
type EstimateEvent struct {
	// Frame is the frame number the update follows (0 for updates outside
	// frames, e.g. FCAT's bootstrap probe or SCAT's recovery heuristics).
	Frame int
	// Estimate is the reader's running estimate of the total population
	// after the update.
	Estimate float64
	// FrameEst is the raw single-frame estimate that produced the update
	// (0 when the update did not come from a frame inversion).
	FrameEst float64
	// Identified is the unique-ID count at the time of the update.
	Identified int
	// At is the simulated air time of the update.
	At time.Duration
}

// ArrivalEvent reports a tag entering the reader field. Only dynamic
// workloads (see internal/workload) emit it; batch runs over a frozen
// population never do.
type ArrivalEvent struct {
	// ID is the arriving tag.
	ID tagid.ID
	// At is the simulated air time of the arrival.
	At time.Duration
	// Active is the present (admitted and not departed) population size
	// after the admission.
	Active int
}

// DepartureEvent reports a tag leaving the reader field.
type DepartureEvent struct {
	// ID is the departing tag.
	ID tagid.ID
	// At is the simulated air time of the departure.
	At time.Duration
	// Identified is true when the reader had collected the tag's ID before
	// it left; false marks a missed read (departed unread).
	Identified bool
}

// CheckpointEvent reports a session snapshot being taken (see
// protocol.Session.Snapshot).
type CheckpointEvent struct {
	// Seq is the 0-based checkpoint counter within the session.
	Seq int
	// At is the simulated air time of the checkpoint.
	At time.Duration
	// Active is the present population size at the checkpoint.
	Active int
	// Identified is the unique-ID count at the checkpoint.
	Identified int
}

// FaultKind classifies an injected fault (see internal/fault).
type FaultKind uint8

const (
	// FaultBurst marks a slot spoiled by Gilbert–Elliott burst noise.
	FaultBurst FaultKind = iota + 1
	// FaultAckLoss marks a reader acknowledgement dropped by the injector.
	FaultAckLoss
	// FaultMute marks a mute tag filtered out of a slot's transmitters.
	FaultMute
	// FaultStuck marks a stuck responder keying up out of protocol.
	FaultStuck
	// FaultCorruptSingleton marks a lone report corrupted in flight.
	FaultCorruptSingleton
	// FaultCorruptDecode marks a record decode silently yielding a
	// bit-flipped ID.
	FaultCorruptDecode
	// FaultCrash marks a reader crash at a slot boundary.
	FaultCrash
)

// String returns the fault-kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultBurst:
		return "burst"
	case FaultAckLoss:
		return "ack-loss"
	case FaultMute:
		return "mute"
	case FaultStuck:
		return "stuck"
	case FaultCorruptSingleton:
		return "corrupt-singleton"
	case FaultCorruptDecode:
		return "corrupt-decode"
	case FaultCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// FaultEvent reports one injected fault taking effect. Only runs with a
// fault configuration emit it; fault-free runs produce byte-identical
// traces to a build without the injector.
type FaultEvent struct {
	// Slot is the sequence number of the affected slot; for ack-loss it is
	// instead the ordinal of the dropped acknowledgement within the run.
	Slot uint64
	// Kind is the fault shape that fired.
	Kind FaultKind
	// ID is the affected tag where one is identifiable (mute, stuck,
	// ack-loss); the zero ID for slot-scoped faults.
	ID tagid.ID
}

// QuarantineEvent reports the hardened record store evicting a poisoned
// collision record instead of propagating its garbage (see record.Store).
type QuarantineEvent struct {
	// Slot is the quarantined record's slot index.
	Slot uint64
	// Reason is "crc" when a decode produced an invalid ID, "residual" when
	// the residual-energy guard declared the record unrecoverable.
	Reason string
	// Members is the record's multiplicity; the surviving unidentified
	// members fall back to plain re-query.
	Members int
}

// RestartEvent reports the chaos harness crash-restarting the reader from
// its last session checkpoint (see sim.RunChaos).
type RestartEvent struct {
	// Wall is the monotone executed-slot count at the crash (never rewound
	// by the restore).
	Wall uint64
	// At is the simulated air time the restored checkpoint rewinds to.
	At time.Duration
	// Checkpoint is the sequence number of the checkpoint restored.
	Checkpoint int
}

// FleetKind classifies multi-reader scheduler activity (see internal/fleet).
type FleetKind uint8

const (
	// FleetSlotBlocked marks a transmission grant denied by the fleet's
	// coordination policy (TDMA out-of-phase, listen-before-talk deferral).
	FleetSlotBlocked FleetKind = iota + 1
	// FleetSlotInterfered marks a slot spoiled by a reader transmitting in
	// an adjacent interrogation zone (reader-to-reader interference).
	FleetSlotInterfered
	// FleetMigration marks a tag leaving one interrogation zone and being
	// admitted into the next.
	FleetMigration
)

// String returns the fleet-activity-kind name.
func (k FleetKind) String() string {
	switch k {
	case FleetSlotBlocked:
		return "blocked"
	case FleetSlotInterfered:
		return "interfered"
	case FleetMigration:
		return "migration"
	default:
		return "unknown"
	}
}

// FleetEvent reports multi-reader scheduler activity: policy slot denials,
// reader-to-reader interference, and inter-zone tag migrations. Only fleet
// runs (see internal/fleet) emit it; single-reader campaigns produce
// byte-identical traces to earlier releases.
type FleetEvent struct {
	// Reader is the index of the reader the activity belongs to.
	Reader int
	// Zone is the zone of the activity; for migrations it is the
	// destination zone.
	Zone int
	// Kind is the activity class.
	Kind FleetKind
	// ID is the migrating tag; the zero ID for slot-scoped activity.
	ID tagid.ID
	// From is the migration's source zone; -1 for slot-scoped activity.
	From int
	// At is the fleet's wall-clock simulated time of the activity (readers
	// whose policy defers transmissions accumulate less air time than wall
	// time, so this is distinct from the reader-stream At stamps).
	At time.Duration
}

// Tracer receives the typed event stream of a protocol run. Implementations
// must tolerate events from any protocol (a DFSA run emits no record or
// estimator events, a tree run emits only run/slot events, and so on).
//
// Embed NopTracer to implement only the methods you care about, or use
// Hooks for a closure-based observer.
type Tracer interface {
	RunStart(RunStartEvent)
	RunEnd(RunEndEvent)
	FrameStart(FrameEvent)
	Advertisement(AdvertEvent)
	SlotDone(SlotEvent)
	TagIdentified(IdentifyEvent)
	AckSent(AckEvent)
	RecordCreated(RecordEvent)
	CascadeStep(CascadeEvent)
	RecordResolved(ResolveEvent)
	EstimatorUpdate(EstimateEvent)
	TagArrival(ArrivalEvent)
	TagDeparture(DepartureEvent)
	SessionCheckpoint(CheckpointEvent)
	FaultInjected(FaultEvent)
	RecordQuarantined(QuarantineEvent)
	ReaderRestart(RestartEvent)
	FleetActivity(FleetEvent)
}

// NopTracer implements Tracer with no-ops; embed it to build partial
// tracers.
type NopTracer struct{}

var _ Tracer = NopTracer{}

func (NopTracer) RunStart(RunStartEvent)            {}
func (NopTracer) RunEnd(RunEndEvent)                {}
func (NopTracer) FrameStart(FrameEvent)             {}
func (NopTracer) Advertisement(AdvertEvent)         {}
func (NopTracer) SlotDone(SlotEvent)                {}
func (NopTracer) TagIdentified(IdentifyEvent)       {}
func (NopTracer) AckSent(AckEvent)                  {}
func (NopTracer) RecordCreated(RecordEvent)         {}
func (NopTracer) CascadeStep(CascadeEvent)          {}
func (NopTracer) RecordResolved(ResolveEvent)       {}
func (NopTracer) EstimatorUpdate(EstimateEvent)     {}
func (NopTracer) TagArrival(ArrivalEvent)           {}
func (NopTracer) TagDeparture(DepartureEvent)       {}
func (NopTracer) SessionCheckpoint(CheckpointEvent) {}
func (NopTracer) FaultInjected(FaultEvent)          {}
func (NopTracer) RecordQuarantined(QuarantineEvent) {}
func (NopTracer) ReaderRestart(RestartEvent)        {}
func (NopTracer) FleetActivity(FleetEvent)          {}

// Hooks adapts plain functions into a Tracer; nil fields are skipped. It is
// the quickest way to observe a run ad hoc:
//
//	env.Tracer = &obs.Hooks{
//		OnRecordResolved: func(ev obs.ResolveEvent) { ... },
//	}
type Hooks struct {
	OnRunStart        func(RunStartEvent)
	OnRunEnd          func(RunEndEvent)
	OnFrameStart      func(FrameEvent)
	OnAdvertisement   func(AdvertEvent)
	OnSlotDone        func(SlotEvent)
	OnTagIdentified   func(IdentifyEvent)
	OnAckSent         func(AckEvent)
	OnRecordCreated   func(RecordEvent)
	OnCascadeStep     func(CascadeEvent)
	OnRecordResolved  func(ResolveEvent)
	OnEstimatorUpdate func(EstimateEvent)

	OnTagArrival        func(ArrivalEvent)
	OnTagDeparture      func(DepartureEvent)
	OnSessionCheckpoint func(CheckpointEvent)

	OnFaultInjected     func(FaultEvent)
	OnRecordQuarantined func(QuarantineEvent)
	OnReaderRestart     func(RestartEvent)
	OnFleetActivity     func(FleetEvent)
}

var _ Tracer = (*Hooks)(nil)

func (h *Hooks) RunStart(ev RunStartEvent) {
	if h.OnRunStart != nil {
		h.OnRunStart(ev)
	}
}

func (h *Hooks) RunEnd(ev RunEndEvent) {
	if h.OnRunEnd != nil {
		h.OnRunEnd(ev)
	}
}

func (h *Hooks) FrameStart(ev FrameEvent) {
	if h.OnFrameStart != nil {
		h.OnFrameStart(ev)
	}
}

func (h *Hooks) Advertisement(ev AdvertEvent) {
	if h.OnAdvertisement != nil {
		h.OnAdvertisement(ev)
	}
}

func (h *Hooks) SlotDone(ev SlotEvent) {
	if h.OnSlotDone != nil {
		h.OnSlotDone(ev)
	}
}

func (h *Hooks) TagIdentified(ev IdentifyEvent) {
	if h.OnTagIdentified != nil {
		h.OnTagIdentified(ev)
	}
}

func (h *Hooks) AckSent(ev AckEvent) {
	if h.OnAckSent != nil {
		h.OnAckSent(ev)
	}
}

func (h *Hooks) RecordCreated(ev RecordEvent) {
	if h.OnRecordCreated != nil {
		h.OnRecordCreated(ev)
	}
}

func (h *Hooks) CascadeStep(ev CascadeEvent) {
	if h.OnCascadeStep != nil {
		h.OnCascadeStep(ev)
	}
}

func (h *Hooks) RecordResolved(ev ResolveEvent) {
	if h.OnRecordResolved != nil {
		h.OnRecordResolved(ev)
	}
}

func (h *Hooks) EstimatorUpdate(ev EstimateEvent) {
	if h.OnEstimatorUpdate != nil {
		h.OnEstimatorUpdate(ev)
	}
}

func (h *Hooks) TagArrival(ev ArrivalEvent) {
	if h.OnTagArrival != nil {
		h.OnTagArrival(ev)
	}
}

func (h *Hooks) TagDeparture(ev DepartureEvent) {
	if h.OnTagDeparture != nil {
		h.OnTagDeparture(ev)
	}
}

func (h *Hooks) SessionCheckpoint(ev CheckpointEvent) {
	if h.OnSessionCheckpoint != nil {
		h.OnSessionCheckpoint(ev)
	}
}

func (h *Hooks) FaultInjected(ev FaultEvent) {
	if h.OnFaultInjected != nil {
		h.OnFaultInjected(ev)
	}
}

func (h *Hooks) RecordQuarantined(ev QuarantineEvent) {
	if h.OnRecordQuarantined != nil {
		h.OnRecordQuarantined(ev)
	}
}

func (h *Hooks) ReaderRestart(ev RestartEvent) {
	if h.OnReaderRestart != nil {
		h.OnReaderRestart(ev)
	}
}

func (h *Hooks) FleetActivity(ev FleetEvent) {
	if h.OnFleetActivity != nil {
		h.OnFleetActivity(ev)
	}
}

// Multi fans every event out to each tracer in order. Nil members are
// skipped, so Multi(a, nil, b) is valid.
func Multi(tracers ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multi(kept)
}

type multi []Tracer

func (m multi) RunStart(ev RunStartEvent) {
	for _, t := range m {
		t.RunStart(ev)
	}
}

func (m multi) RunEnd(ev RunEndEvent) {
	for _, t := range m {
		t.RunEnd(ev)
	}
}

func (m multi) FrameStart(ev FrameEvent) {
	for _, t := range m {
		t.FrameStart(ev)
	}
}

func (m multi) Advertisement(ev AdvertEvent) {
	for _, t := range m {
		t.Advertisement(ev)
	}
}

func (m multi) SlotDone(ev SlotEvent) {
	for _, t := range m {
		t.SlotDone(ev)
	}
}

func (m multi) TagIdentified(ev IdentifyEvent) {
	for _, t := range m {
		t.TagIdentified(ev)
	}
}

func (m multi) AckSent(ev AckEvent) {
	for _, t := range m {
		t.AckSent(ev)
	}
}

func (m multi) RecordCreated(ev RecordEvent) {
	for _, t := range m {
		t.RecordCreated(ev)
	}
}

func (m multi) CascadeStep(ev CascadeEvent) {
	for _, t := range m {
		t.CascadeStep(ev)
	}
}

func (m multi) RecordResolved(ev ResolveEvent) {
	for _, t := range m {
		t.RecordResolved(ev)
	}
}

func (m multi) EstimatorUpdate(ev EstimateEvent) {
	for _, t := range m {
		t.EstimatorUpdate(ev)
	}
}

func (m multi) TagArrival(ev ArrivalEvent) {
	for _, t := range m {
		t.TagArrival(ev)
	}
}

func (m multi) TagDeparture(ev DepartureEvent) {
	for _, t := range m {
		t.TagDeparture(ev)
	}
}

func (m multi) SessionCheckpoint(ev CheckpointEvent) {
	for _, t := range m {
		t.SessionCheckpoint(ev)
	}
}

func (m multi) FaultInjected(ev FaultEvent) {
	for _, t := range m {
		t.FaultInjected(ev)
	}
}

func (m multi) RecordQuarantined(ev QuarantineEvent) {
	for _, t := range m {
		t.RecordQuarantined(ev)
	}
}

func (m multi) ReaderRestart(ev RestartEvent) {
	for _, t := range m {
		t.ReaderRestart(ev)
	}
}

func (m multi) FleetActivity(ev FleetEvent) {
	for _, t := range m {
		t.FleetActivity(ev)
	}
}
