package obs

import (
	"strconv"
	"time"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Metric names fed by MetricsTracer. The slot, frame, identification and
// transmission counters mirror the protocol.Metrics fields of the traced
// runs exactly (summed over runs when one registry serves a campaign);
// the remaining counters expose what Metrics cannot see: acknowledgement
// fates, record-store activity and cascade structure.
const (
	MetricRunsStarted   = "runs.started"
	MetricRunsCompleted = "runs.completed"
	MetricRunsFailed    = "runs.failed"

	MetricSlotsEmpty     = "slots.empty"
	MetricSlotsSingleton = "slots.singleton"
	MetricSlotsCollision = "slots.collision"

	MetricFrames  = "frames"
	MetricAdverts = "adverts"

	MetricTxTotal = "tx.total"

	MetricIDsDirect   = "ids.direct"
	MetricIDsResolved = "ids.resolved"

	MetricAcksSent = "acks.sent"
	MetricAcksLost = "acks.lost"

	MetricRecordsCreated  = "records.created"
	MetricRecordsResolved = "records.resolved"
	MetricRecordsSpent    = "records.spent"
	MetricCascadeSteps    = "cascade.steps"

	MetricEstimatorUpdates = "estimator.updates"

	MetricTagsArrived        = "tags.arrived"
	MetricTagsDeparted       = "tags.departed"
	MetricTagsDepartedUnread = "tags.departed_unread"
	MetricCheckpoints        = "checkpoints"

	HistTxPerSlot    = "hist.tx_per_slot"
	HistCascadeDepth = "hist.cascade_depth"
	HistRecordMult   = "hist.record_multiplicity"

	// Streaming quantile sketches (see Sketch): identification latency in
	// microseconds of simulated time — arrival-to-identification in dynamic
	// runs, run-start-to-identification in batch runs — and cascade depth of
	// every non-duplicate record resolution. Percentiles of both are
	// available mid-run without storing per-tag records.
	SketchIdentLatencyUS = "sketch.ident_latency_us"
	SketchCascadeDepth   = "sketch.cascade_depth"

	// Fault-path counters. Unlike the handles above these are created
	// lazily, on the first matching event: Registry.WriteTo prints every
	// registered counter (zeros included), and a fault-free campaign's
	// metrics dump must stay byte-identical to earlier releases.
	MetricFaultsPrefix       = "faults." // + FaultKind.String()
	MetricRecordsQuarantined = "records.quarantined"
	MetricReaderRestarts     = "reader.restarts"

	// Fleet-scheduler counter families (see internal/fleet). Like the
	// fault-path counters these are created lazily, on the first fleet
	// event, so single-reader campaigns keep byte-identical metrics dumps.
	// Each fleet event feeds a per-kind total ("fleet.<kind>") and a
	// reader-labelled family member ("fleet.<kind>.reader<i>").
	MetricFleetPrefix = "fleet." // + FleetKind.String() [+ ".reader<i>"]
)

// MetricsTracer feeds a Registry from the event stream. The counter handles
// are resolved once at construction, so per-event cost is a handful of
// atomic adds — safe for concurrent runs sharing one registry.
type MetricsTracer struct {
	runsStarted, runsCompleted, runsFailed     *Counter
	slotsEmpty, slotsSingleton, slotsCollision *Counter
	frames, adverts                            *Counter
	txTotal                                    *Counter
	idsDirect, idsResolved                     *Counter
	acksSent, acksLost                         *Counter
	recCreated, recResolved, recSpent          *Counter
	cascadeSteps, estimatorUpdates             *Counter
	tagsArrived, tagsDeparted, departedUnread  *Counter
	checkpoints                                *Counter
	txPerSlot, cascadeDepth, recordMult        *Histogram
	identLatency, cascadeDepthSketch           *Sketch

	// arrivals maps tag -> arrival time for latency stamping; it is created
	// lazily on the first TagArrival event, so batch runs (which never emit
	// arrivals) pay nothing and measure latency from run start.
	arrivals map[tagid.ID]time.Duration

	// reg backs the lazily created fault-path handles below; faultKinds
	// caches per-kind counters after first use.
	reg         *Registry
	faultKinds  [FaultCrash + 1]*Counter
	quarantined *Counter
	restarts    *Counter

	// fleetTotals and fleetReaders back the lazily created fleet counter
	// families, keyed by kind and by (kind, reader) respectively.
	fleetTotals  [FleetMigration + 1]*Counter
	fleetReaders map[uint32]*Counter
}

var _ Tracer = (*MetricsTracer)(nil)

// NewMetricsTracer returns a tracer that accumulates into reg.
func NewMetricsTracer(reg *Registry) *MetricsTracer {
	return &MetricsTracer{
		runsStarted:        reg.Counter(MetricRunsStarted),
		runsCompleted:      reg.Counter(MetricRunsCompleted),
		runsFailed:         reg.Counter(MetricRunsFailed),
		slotsEmpty:         reg.Counter(MetricSlotsEmpty),
		slotsSingleton:     reg.Counter(MetricSlotsSingleton),
		slotsCollision:     reg.Counter(MetricSlotsCollision),
		frames:             reg.Counter(MetricFrames),
		adverts:            reg.Counter(MetricAdverts),
		txTotal:            reg.Counter(MetricTxTotal),
		idsDirect:          reg.Counter(MetricIDsDirect),
		idsResolved:        reg.Counter(MetricIDsResolved),
		acksSent:           reg.Counter(MetricAcksSent),
		acksLost:           reg.Counter(MetricAcksLost),
		recCreated:         reg.Counter(MetricRecordsCreated),
		recResolved:        reg.Counter(MetricRecordsResolved),
		recSpent:           reg.Counter(MetricRecordsSpent),
		cascadeSteps:       reg.Counter(MetricCascadeSteps),
		estimatorUpdates:   reg.Counter(MetricEstimatorUpdates),
		tagsArrived:        reg.Counter(MetricTagsArrived),
		tagsDeparted:       reg.Counter(MetricTagsDeparted),
		departedUnread:     reg.Counter(MetricTagsDepartedUnread),
		checkpoints:        reg.Counter(MetricCheckpoints),
		txPerSlot:          reg.Histogram(HistTxPerSlot),
		cascadeDepth:       reg.Histogram(HistCascadeDepth),
		recordMult:         reg.Histogram(HistRecordMult),
		identLatency:       reg.Sketch(SketchIdentLatencyUS),
		cascadeDepthSketch: reg.Sketch(SketchCascadeDepth),
		reg:                reg,
	}
}

func (t *MetricsTracer) RunStart(RunStartEvent) {
	t.runsStarted.Inc()
	clear(t.arrivals)
}

func (t *MetricsTracer) RunEnd(ev RunEndEvent) {
	if ev.Err == "" {
		t.runsCompleted.Inc()
	} else {
		t.runsFailed.Inc()
	}
}

func (t *MetricsTracer) FrameStart(FrameEvent) { t.frames.Inc() }

func (t *MetricsTracer) Advertisement(AdvertEvent) { t.adverts.Inc() }

func (t *MetricsTracer) SlotDone(ev SlotEvent) {
	// Classify by the observed kind, not the transmitter count: a
	// corrupted singleton observes as a collision and must count as one.
	switch ev.Kind {
	case channel.Empty:
		t.slotsEmpty.Inc()
	case channel.Singleton:
		t.slotsSingleton.Inc()
	case channel.Collision, channel.Captured:
		// A captured slot still occupied the air as a collision; counting
		// it there keeps the registry's counter set (and the golden hashes
		// over its dump) stable whether or not capture is enabled.
		t.slotsCollision.Inc()
	}
	t.txTotal.Add(int64(ev.Transmitters))
	t.txPerSlot.Observe(int64(ev.Transmitters))
}

func (t *MetricsTracer) TagIdentified(ev IdentifyEvent) {
	if ev.ViaResolution {
		t.idsResolved.Inc()
	} else {
		t.idsDirect.Inc()
	}
	lat := ev.At
	if t0, ok := t.arrivals[ev.ID]; ok {
		lat = ev.At - t0
	}
	t.identLatency.Observe(lat.Microseconds())
}

func (t *MetricsTracer) AckSent(ev AckEvent) {
	t.acksSent.Inc()
	if !ev.Delivered {
		t.acksLost.Inc()
	}
}

func (t *MetricsTracer) RecordCreated(ev RecordEvent) {
	t.recCreated.Inc()
	t.recordMult.Observe(int64(ev.Multiplicity))
}

func (t *MetricsTracer) CascadeStep(CascadeEvent) { t.cascadeSteps.Inc() }

func (t *MetricsTracer) RecordResolved(ev ResolveEvent) {
	if ev.Dup {
		t.recSpent.Inc()
		return
	}
	t.recResolved.Inc()
	t.cascadeDepth.Observe(int64(ev.Depth))
	t.cascadeDepthSketch.Observe(int64(ev.Depth))
}

func (t *MetricsTracer) EstimatorUpdate(EstimateEvent) { t.estimatorUpdates.Inc() }

func (t *MetricsTracer) TagArrival(ev ArrivalEvent) {
	t.tagsArrived.Inc()
	if t.arrivals == nil {
		t.arrivals = make(map[tagid.ID]time.Duration)
	}
	t.arrivals[ev.ID] = ev.At
}

func (t *MetricsTracer) TagDeparture(ev DepartureEvent) {
	t.tagsDeparted.Inc()
	if !ev.Identified {
		t.departedUnread.Inc()
	}
}

func (t *MetricsTracer) SessionCheckpoint(CheckpointEvent) { t.checkpoints.Inc() }

func (t *MetricsTracer) FaultInjected(ev FaultEvent) {
	k := ev.Kind
	if int(k) >= len(t.faultKinds) {
		k = 0
	}
	c := t.faultKinds[k]
	if c == nil {
		c = t.reg.Counter(MetricFaultsPrefix + ev.Kind.String())
		t.faultKinds[k] = c
	}
	c.Inc()
}

func (t *MetricsTracer) RecordQuarantined(QuarantineEvent) {
	if t.quarantined == nil {
		t.quarantined = t.reg.Counter(MetricRecordsQuarantined)
	}
	t.quarantined.Inc()
}

func (t *MetricsTracer) ReaderRestart(RestartEvent) {
	if t.restarts == nil {
		t.restarts = t.reg.Counter(MetricReaderRestarts)
	}
	t.restarts.Inc()
}

func (t *MetricsTracer) FleetActivity(ev FleetEvent) {
	k := ev.Kind
	if int(k) >= len(t.fleetTotals) {
		k = 0
	}
	c := t.fleetTotals[k]
	if c == nil {
		c = t.reg.Counter(MetricFleetPrefix + ev.Kind.String())
		t.fleetTotals[k] = c
	}
	c.Inc()
	if ev.Reader < 0 || ev.Reader > 0xffff {
		return
	}
	key := uint32(k)<<16 | uint32(ev.Reader)
	rc := t.fleetReaders[key]
	if rc == nil {
		if t.fleetReaders == nil {
			t.fleetReaders = make(map[uint32]*Counter)
		}
		rc = t.reg.Counter(MetricFleetPrefix + ev.Kind.String() + ".reader" + strconv.Itoa(ev.Reader))
		t.fleetReaders[key] = rc
	}
	rc.Inc()
}
