package obs

import (
	"fmt"
	"io"
	"strings"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "rfid_"

// promName mangles a registry metric name into a legal Prometheus metric
// name: the rfid_ namespace plus the name with '.' and '-' replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamespace) + len(name))
	b.WriteString(promNamespace)
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '.' || c == '-' {
			c = '_'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metric families in sorted registry-name order:
//
//   - counters expose as a counter family with the conventional _total
//     suffix: rfid_slots_empty_total (not doubled when the name already
//     ends in "total");
//   - histograms expose as a histogram family with cumulative _bucket
//     lines over the power-of-two bucket uppers, an le="+Inf" bucket, and
//     _sum/_count;
//   - sketches expose as a summary family with quantile-labelled sample
//     lines (0.5, 0.9, 0.95, 0.99) and _sum/_count.
//
// All sample values are integers and the output is a pure function of the
// registry's atomic totals, so two dumps of the same quiesced campaign are
// byte-identical regardless of worker count — the same determinism contract
// as Registry.WriteTo. Served at /metrics by the rfidsim -serve endpoint.
func WritePrometheus(w io.Writer, r *Registry) (int64, error) {
	names, counters, hists, sketches := r.snapshot()

	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, name := range names {
		pn := promName(name)
		if c, ok := counters[name]; ok {
			cn := pn
			if !strings.HasSuffix(cn, "_total") {
				cn += "_total"
			}
			if err := emit("# TYPE %s counter\n%s %d\n", cn, cn, c.Value()); err != nil {
				return total, err
			}
		}
		if h, ok := hists[name]; ok {
			if err := emit("# TYPE %s histogram\n", pn); err != nil {
				return total, err
			}
			last := histBuckets - 1
			for last > 0 && h.Bucket(last) == 0 {
				last--
			}
			cum := int64(0)
			for i := 0; i <= last; i++ {
				cum += h.Bucket(i)
				if err := emit("%s_bucket{le=\"%d\"} %d\n", pn, BucketUpper(i), cum); err != nil {
					return total, err
				}
			}
			if err := emit("%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				pn, h.Count(), pn, h.Sum(), pn, h.Count()); err != nil {
				return total, err
			}
		}
		if s, ok := sketches[name]; ok {
			if err := emit("# TYPE %s summary\n", pn); err != nil {
				return total, err
			}
			for _, sq := range sketchQuantiles {
				if err := emit("%s{quantile=\"%s\"} %d\n", pn, sq.label, s.Quantile(sq.q)); err != nil {
					return total, err
				}
			}
			if err := emit("%s_sum %d\n%s_count %d\n", pn, s.Sum(), pn, s.Count()); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}
