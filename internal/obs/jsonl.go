package obs

import (
	"io"
	"strconv"

	"github.com/ancrfid/ancrfid/internal/tagid"
)

// JSONL writes the event stream as JSON Lines: one self-contained JSON
// object per event, each stamped with the schema version ("v") and the
// event name ("ev"). The format is append-only and stream-friendly —
// `jq 'select(.ev=="resolve")'` over a trace file reconstructs every
// cancellation cascade of a run.
//
// Every line additionally carries "run", a 0-based counter of RunStart
// events seen by this writer, so traces of multi-run campaigns stay
// separable.
//
// The writer is not safe for concurrent use; give each concurrent run its
// own JSONL (or serialise runs, as the sim harness does). Errors are
// sticky: the first write error stops all output and is reported by Err.
type JSONL struct {
	w   io.Writer
	buf []byte
	run int
	err error
}

var _ Tracer = (*JSONL)(nil)

// NewJSONL returns a JSONL trace writer over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, buf: make([]byte, 0, 256), run: -1}
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

// open starts a line with the fixed prefix {"v":1,"ev":"<name>","run":N.
func (j *JSONL) open(ev string) {
	j.buf = j.buf[:0]
	j.buf = append(j.buf, `{"v":`...)
	j.buf = strconv.AppendInt(j.buf, SchemaVersion, 10)
	j.buf = append(j.buf, `,"ev":"`...)
	j.buf = append(j.buf, ev...)
	j.buf = append(j.buf, `","run":`...)
	j.buf = strconv.AppendInt(j.buf, int64(j.run), 10)
}

func (j *JSONL) int(key string, v int64) {
	j.buf = append(j.buf, ',', '"')
	j.buf = append(j.buf, key...)
	j.buf = append(j.buf, '"', ':')
	j.buf = strconv.AppendInt(j.buf, v, 10)
}

func (j *JSONL) float(key string, v float64) {
	j.buf = append(j.buf, ',', '"')
	j.buf = append(j.buf, key...)
	j.buf = append(j.buf, '"', ':')
	j.buf = strconv.AppendFloat(j.buf, v, 'g', -1, 64)
}

func (j *JSONL) str(key, v string) {
	j.buf = append(j.buf, ',', '"')
	j.buf = append(j.buf, key...)
	j.buf = append(j.buf, '"', ':')
	j.buf = strconv.AppendQuote(j.buf, v)
}

func (j *JSONL) bool(key string, v bool) {
	j.buf = append(j.buf, ',', '"')
	j.buf = append(j.buf, key...)
	j.buf = append(j.buf, '"', ':')
	j.buf = strconv.AppendBool(j.buf, v)
}

func (j *JSONL) id(key string, v tagid.ID) {
	j.str(key, v.String())
}

func (j *JSONL) close() {
	if j.err != nil {
		return
	}
	j.buf = append(j.buf, '}', '\n')
	if _, err := j.w.Write(j.buf); err != nil {
		j.err = err
	}
}

func (j *JSONL) RunStart(ev RunStartEvent) {
	if j.err != nil {
		return
	}
	j.run++
	j.open("run_start")
	j.str("protocol", ev.Protocol)
	j.int("tags", int64(ev.Tags))
	j.close()
}

func (j *JSONL) RunEnd(ev RunEndEvent) {
	if j.err != nil {
		return
	}
	j.open("run_end")
	j.str("protocol", ev.Protocol)
	j.int("slots", int64(ev.Slots))
	j.int("frames", int64(ev.Frames))
	j.int("direct", int64(ev.Direct))
	j.int("resolved", int64(ev.Resolved))
	if ev.Err != "" {
		j.str("err", ev.Err)
	}
	j.close()
}

func (j *JSONL) FrameStart(ev FrameEvent) {
	if j.err != nil {
		return
	}
	j.open("frame")
	j.int("seq", int64(ev.Seq))
	j.int("frame", int64(ev.Frame))
	j.int("size", int64(ev.Size))
	j.float("p", ev.P)
	j.close()
}

func (j *JSONL) Advertisement(ev AdvertEvent) {
	if j.err != nil {
		return
	}
	j.open("advert")
	j.int("seq", int64(ev.Seq))
	j.float("p", ev.P)
	j.close()
}

func (j *JSONL) SlotDone(ev SlotEvent) {
	if j.err != nil {
		return
	}
	j.open("slot")
	j.int("seq", int64(ev.Seq))
	j.str("kind", ev.Kind.String())
	j.int("tx", int64(ev.Transmitters))
	j.int("identified", int64(ev.Identified))
	j.close()
}

func (j *JSONL) TagIdentified(ev IdentifyEvent) {
	if j.err != nil {
		return
	}
	j.open("identify")
	j.id("id", ev.ID)
	j.bool("via_resolution", ev.ViaResolution)
	j.close()
}

func (j *JSONL) AckSent(ev AckEvent) {
	if j.err != nil {
		return
	}
	j.open("ack")
	j.int("seq", int64(ev.Seq))
	j.id("id", ev.ID)
	j.str("kind", ev.Kind.String())
	j.bool("delivered", ev.Delivered)
	j.close()
}

func (j *JSONL) RecordCreated(ev RecordEvent) {
	if j.err != nil {
		return
	}
	j.open("record")
	j.int("slot", int64(ev.Slot))
	j.int("mult", int64(ev.Multiplicity))
	j.int("unknown", int64(ev.Unknown))
	j.close()
}

func (j *JSONL) CascadeStep(ev CascadeEvent) {
	if j.err != nil {
		return
	}
	j.open("cascade")
	j.id("id", ev.ID)
	j.int("records", int64(ev.Records))
	j.int("depth", int64(ev.Depth))
	j.close()
}

func (j *JSONL) RecordResolved(ev ResolveEvent) {
	if j.err != nil {
		return
	}
	j.open("resolve")
	j.int("slot", int64(ev.Slot))
	j.id("id", ev.ID)
	var zero tagid.ID
	if ev.Trigger != zero {
		j.id("trigger", ev.Trigger)
	}
	j.int("depth", int64(ev.Depth))
	if ev.Dup {
		j.bool("dup", true)
	}
	j.close()
}

func (j *JSONL) EstimatorUpdate(ev EstimateEvent) {
	if j.err != nil {
		return
	}
	j.open("estimate")
	j.int("frame", int64(ev.Frame))
	j.float("estimate", ev.Estimate)
	j.float("frame_est", ev.FrameEst)
	j.int("identified", int64(ev.Identified))
	j.close()
}

func (j *JSONL) TagArrival(ev ArrivalEvent) {
	if j.err != nil {
		return
	}
	j.open("arrival")
	j.id("id", ev.ID)
	j.int("t_us", ev.At.Microseconds())
	j.int("active", int64(ev.Active))
	j.close()
}

func (j *JSONL) TagDeparture(ev DepartureEvent) {
	if j.err != nil {
		return
	}
	j.open("departure")
	j.id("id", ev.ID)
	j.int("t_us", ev.At.Microseconds())
	j.bool("identified", ev.Identified)
	j.close()
}

func (j *JSONL) SessionCheckpoint(ev CheckpointEvent) {
	if j.err != nil {
		return
	}
	j.open("checkpoint")
	j.int("seq", int64(ev.Seq))
	j.int("t_us", ev.At.Microseconds())
	j.int("active", int64(ev.Active))
	j.int("identified", int64(ev.Identified))
	j.close()
}

func (j *JSONL) FaultInjected(ev FaultEvent) {
	if j.err != nil {
		return
	}
	j.open("fault")
	j.int("slot", int64(ev.Slot))
	j.str("kind", ev.Kind.String())
	var zero tagid.ID
	if ev.ID != zero {
		j.id("id", ev.ID)
	}
	j.close()
}

func (j *JSONL) RecordQuarantined(ev QuarantineEvent) {
	if j.err != nil {
		return
	}
	j.open("quarantine")
	j.int("slot", int64(ev.Slot))
	j.str("reason", ev.Reason)
	j.int("members", int64(ev.Members))
	j.close()
}

func (j *JSONL) ReaderRestart(ev RestartEvent) {
	if j.err != nil {
		return
	}
	j.open("restart")
	j.int("wall", int64(ev.Wall))
	j.int("t_us", ev.At.Microseconds())
	j.int("checkpoint", int64(ev.Checkpoint))
	j.close()
}

func (j *JSONL) FleetActivity(ev FleetEvent) {
	if j.err != nil {
		return
	}
	j.open("fleet")
	j.int("reader", int64(ev.Reader))
	j.int("zone", int64(ev.Zone))
	j.str("kind", ev.Kind.String())
	var zero tagid.ID
	if ev.ID != zero {
		j.id("id", ev.ID)
	}
	if ev.From >= 0 {
		j.int("from", int64(ev.From))
	}
	j.int("t_us", ev.At.Microseconds())
	j.close()
}
