package obs

import (
	"math"
	"sync/atomic"
)

// Sketch parameters. gamma is the log-bucket base: bucket i covers
// (gamma^(i-1), gamma^i], so any value is reported within a relative error
// of (gamma-1)/(gamma+1) — about 2.4% for gamma = 1.05 (documented as
// <= 2.5% in docs/observability.md). 904 buckets plus the zero bucket
// cover the whole non-negative int64 range: log(2^63)/log(1.05) < 904.
const (
	sketchGamma   = 1.05
	sketchBuckets = 905
)

// sketchLnGamma is ln(sketchGamma), precomputed for the Observe hot path.
var sketchLnGamma = math.Log(sketchGamma)

// Sketch is a streaming log-bucket quantile sketch (the DDSketch design):
// non-negative integer observations land in geometrically sized buckets,
// so any quantile is available at any time within a fixed relative error,
// with O(1) insertion and no per-observation storage. All state is atomic —
// concurrent Observe calls from parallel campaign workers commute, so the
// totals (and therefore every quantile computed from them) are identical
// for any worker count, exactly like the Registry's counters.
type Sketch struct {
	count atomic.Int64
	sum   atomic.Int64
	zero  atomic.Int64 // observations <= 0
	b     [sketchBuckets]atomic.Int64
}

// sketchIndex maps a positive value to its bucket: ceil(ln(v)/ln(gamma)),
// clamped to the table.
func sketchIndex(v int64) int {
	i := int(math.Ceil(math.Log(float64(v)) / sketchLnGamma))
	if i < 0 {
		i = 0
	}
	if i >= sketchBuckets {
		i = sketchBuckets - 1
	}
	return i
}

// Observe records one value. Values <= 0 land in the exact zero bucket.
func (s *Sketch) Observe(v int64) {
	s.count.Add(1)
	s.sum.Add(v)
	if v <= 0 {
		s.zero.Add(1)
		return
	}
	s.b[sketchIndex(v)].Add(1)
}

// Count returns the number of observations.
func (s *Sketch) Count() int64 { return s.count.Load() }

// Sum returns the sum of observed values.
func (s *Sketch) Sum() int64 { return s.sum.Load() }

// Quantile returns the q-th quantile (0 <= q <= 1) of the observations,
// within the sketch's relative-error bound; 0 with no observations. The
// returned value is the geometric midpoint of the bucket holding the
// nearest-rank observation, so it is a pure function of the bucket totals —
// deterministic for any observation order.
func (s *Sketch) Quantile(q float64) int64 {
	n := s.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	cum := s.zero.Load()
	if rank <= cum {
		return 0
	}
	for i := 0; i < sketchBuckets; i++ {
		cum += s.b[i].Load()
		if rank <= cum {
			// Midpoint of (gamma^(i-1), gamma^i]: 2*gamma^i/(gamma+1).
			return int64(math.Round(2 * math.Pow(sketchGamma, float64(i)) / (sketchGamma + 1)))
		}
	}
	// Unreachable while count == zero + sum(buckets); be safe.
	return 0
}
