package obs

import (
	"math"
	"sort"
	"testing"
)

// TestSketchRelativeError: every reported quantile of a known distribution
// must land within the documented 2.5% relative-error bound of the exact
// nearest-rank quantile.
func TestSketchRelativeError(t *testing.T) {
	// A deterministic long-tailed sample: squares, so values span 1..1e6.
	var values []int64
	for i := 1; i <= 1000; i++ {
		values = append(values, int64(i*i))
	}
	var s Sketch
	for _, v := range values {
		s.Observe(v)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0} {
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		exact := float64(sorted[rank-1])
		got := float64(s.Quantile(q))
		if rel := math.Abs(got-exact) / exact; rel > 0.025 {
			t.Errorf("q=%.2f: got %v, exact %v, relative error %.4f > 0.025", q, got, exact, rel)
		}
	}
}

// TestSketchZeroAndEmpty: zero/negative observations land in the exact zero
// bucket, and an empty sketch reports zero quantiles.
func TestSketchZeroAndEmpty(t *testing.T) {
	var s Sketch
	if s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	s.Observe(0)
	s.Observe(-3)
	s.Observe(100)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of {0,-3,100} = %d, want 0 (zero bucket)", got)
	}
	if got := s.Quantile(1.0); got == 0 {
		t.Error("max quantile must see the 100 observation")
	}
	if s.Count() != 3 || s.Sum() != 97 {
		t.Errorf("count=%d sum=%d, want 3 and 97", s.Count(), s.Sum())
	}
}

// TestSketchOrderInvariance: bucket totals commute, so any observation order
// (as from parallel campaign workers) yields identical quantiles.
func TestSketchOrderInvariance(t *testing.T) {
	var a, b Sketch
	for i := int64(1); i <= 500; i++ {
		a.Observe(i * 7 % 1000)
	}
	for i := int64(500); i >= 1; i-- {
		b.Observe(i * 7 % 1000)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%.2f: order-dependent quantile %d vs %d", q, a.Quantile(q), b.Quantile(q))
		}
	}
}
