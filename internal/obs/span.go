package obs

import "time"

// SpanKind classifies a span in the hierarchical trace model: a campaign
// contains runs, a run contains frames (framed protocols) and slots, a slot
// contains the record/cascade/decode activity it triggered, and a frame-end
// resolution phase (CRDSA-style iterative cancellation) groups the decode
// work that happens between a frame's last slot and the next frame.
type SpanKind uint8

const (
	// Duration spans.
	SpanCampaign SpanKind = iota + 1
	SpanRun
	SpanFrame
	SpanSlot
	// SpanResolution is a frame-end resolution phase: cascade/decode work
	// emitted after a frame's last slot (iterative cancellation protocols).
	SpanResolution
	// Instant spans (Start == End).
	SpanAdvert
	SpanIdentify
	SpanAck
	SpanRecord
	SpanCascade
	SpanResolve
	SpanEstimate
	SpanArrival
	SpanDeparture
	SpanCheckpoint
	SpanFault
	SpanQuarantine
	SpanRestart
	SpanFleet
)

// spanKindNames backs String; the names double as Chrome-trace event names.
var spanKindNames = [...]string{
	SpanCampaign:   "campaign",
	SpanRun:        "run",
	SpanFrame:      "frame",
	SpanSlot:       "slot",
	SpanResolution: "resolution",
	SpanAdvert:     "advert",
	SpanIdentify:   "identify",
	SpanAck:        "ack",
	SpanRecord:     "record",
	SpanCascade:    "cascade",
	SpanResolve:    "resolve",
	SpanEstimate:   "estimate",
	SpanArrival:    "arrival",
	SpanDeparture:  "departure",
	SpanCheckpoint: "checkpoint",
	SpanFault:      "fault",
	SpanQuarantine: "quarantine",
	SpanRestart:    "restart",
	SpanFleet:      "fleet",
}

// String returns the span-kind name.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) && spanKindNames[k] != "" {
		return spanKindNames[k]
	}
	return "unknown"
}

// Instant reports whether the kind is a point event (Start == End).
func (k SpanKind) Instant() bool { return k >= SpanAdvert }

// Span is one node of the hierarchical trace: a [Start, End] interval of
// simulated air time with a parent link. IDs are assigned sequentially in
// event order by SpanBuilder, so a span stream is deterministic — byte-
// identical for any worker count when fed through the campaign harness's
// ordered-merge replay. The payload fields are deliberately flat (no maps,
// no slices) so emitting a span allocates nothing.
type Span struct {
	// ID is the span's unique identifier within the stream (1 is the
	// campaign span); Parent is the containing span's ID (0 for the
	// campaign).
	ID     uint64
	Parent uint64
	Kind   SpanKind
	// Run is the 0-based run index; -1 on the campaign span.
	Run int
	// Seq is a kind-specific sequence number: the slot sequence for slots
	// and acks, the first-slot sequence for frames, the checkpoint sequence
	// for checkpoints and restarts; -1 when not applicable.
	Seq int
	// Start and End bound the span in the run's simulated air time
	// (Start == End for instants; Start <= End always).
	Start time.Duration
	End   time.Duration
	// Label carries the protocol name on run spans; empty otherwise.
	Label string
	// N1 and N2 are kind-specific payloads:
	//   run        N1=population          N2=0
	//   frame      N1=frame number        N2=frame size
	//   slot       N1=observed kind       N2=transmitters
	//   identify   N1=viaResolution(0/1)  N2=0
	//   ack        N1=AckKind             N2=delivered(0/1)
	//   record     N1=multiplicity        N2=unknown members
	//   cascade    N1=records touched     N2=depth
	//   resolve    N1=depth               N2=dup(0/1)
	//   estimate   N1=round(estimate)     N2=identified
	//   arrival    N1=active              N2=0
	//   departure  N1=identified(0/1)     N2=0
	//   checkpoint N1=active              N2=identified
	//   fault      N1=FaultKind           N2=0
	//   quarantine N1=members             N2=0
	//   restart    N1=wall slots          N2=0
	//   fleet      N1=FleetKind           N2=zone
	N1, N2 int
}

// SpanSink consumes the span stream of a SpanBuilder. Duration spans are
// emitted when they close, instants immediately; the campaign span is
// emitted last, by Close.
type SpanSink interface {
	EmitSpan(Span)
}

// SpanSinkFunc adapts a function to a SpanSink.
type SpanSinkFunc func(Span)

// EmitSpan implements SpanSink.
func (f SpanSinkFunc) EmitSpan(s Span) { f(s) }

// SpanBuilder folds the flat event stream into hierarchical spans: it
// implements Tracer, tracks the open campaign/run/frame/slot nesting, and
// emits each span to its sink as the span closes. Timestamps come from the
// events' At fields (deterministic simulated time); events without a
// timestamp of their own (record-store activity) are stamped at the
// builder's running cursor, the time of the slot that triggered them.
//
// Feed it as (part of) a campaign Tracer: the parallel harness buffers and
// replays events in run order, so the span stream — IDs included — is
// byte-identical for any worker count. Call Close after the campaign to
// flush the campaign span.
type SpanBuilder struct {
	sink   SpanSink
	nextID uint64

	run     int           // current run index; -1 before the first run
	cursor  time.Duration // running timestamp within the run (rewinds on restart)
	runHi   time.Duration // high-water mark of the current run
	campHi  time.Duration // high-water mark across runs
	runOpen bool

	runSpan   Span
	frameSpan Span // open frame; ID 0 when none
	pendSpan  Span // open slot / resolution phase; ID 0 when none
	pendSlots int  // SlotDone count inside pendSpan (0 = pure resolution phase)
	frameHi   time.Duration
	pendHi    time.Duration
}

var _ Tracer = (*SpanBuilder)(nil)

// NewSpanBuilder returns a builder emitting into sink.
func NewSpanBuilder(sink SpanSink) *SpanBuilder {
	b := &SpanBuilder{sink: sink, run: -1, nextID: 1}
	return b
}

// id assigns the next span ID.
func (b *SpanBuilder) id() uint64 {
	b.nextID++
	return b.nextID
}

// advance moves the cursor (and every open high-water mark) forward to at;
// a zero or backward at leaves the cursor in place.
func (b *SpanBuilder) advance(at time.Duration) {
	if at > b.cursor {
		b.cursor = at
	}
	if b.cursor > b.runHi {
		b.runHi = b.cursor
	}
	if b.cursor > b.campHi {
		b.campHi = b.cursor
	}
	if b.frameSpan.ID != 0 && b.cursor > b.frameHi {
		b.frameHi = b.cursor
	}
	if b.pendSpan.ID != 0 && b.cursor > b.pendHi {
		b.pendHi = b.cursor
	}
}

// parent returns the innermost open container's ID.
func (b *SpanBuilder) parent() uint64 {
	if b.pendSpan.ID != 0 {
		return b.pendSpan.ID
	}
	if b.frameSpan.ID != 0 {
		return b.frameSpan.ID
	}
	if b.runOpen {
		return b.runSpan.ID
	}
	return 1 // campaign
}

// openPending opens the slot-or-resolution span the next slot-scoped events
// nest under, starting at the cursor (the previous slot's end).
func (b *SpanBuilder) openPending() {
	if b.pendSpan.ID != 0 {
		return
	}
	start := b.cursor
	if b.frameSpan.ID != 0 && start < b.frameSpan.Start {
		start = b.frameSpan.Start // post-restart rewind clamp
	}
	b.pendSpan = Span{ID: b.id(), Parent: b.parentOfPending(), Kind: SpanSlot,
		Run: b.run, Seq: -1, Start: start}
	b.pendHi = start
	b.pendSlots = 0
}

func (b *SpanBuilder) parentOfPending() uint64 {
	if b.frameSpan.ID != 0 {
		return b.frameSpan.ID
	}
	if b.runOpen {
		return b.runSpan.ID
	}
	return 1
}

// closePending flushes the open slot span. A pending span that never saw a
// SlotDone (decode work after a frame's last slot) closes as a resolution
// phase instead of a slot.
func (b *SpanBuilder) closePending() {
	if b.pendSpan.ID == 0 {
		return
	}
	sp := b.pendSpan
	if b.pendSlots == 0 {
		sp.Kind = SpanResolution
	}
	sp.End = b.pendHi
	b.pendSpan = Span{}
	b.sink.EmitSpan(sp)
}

// instant emits a point span at the cursor under the given parent.
func (b *SpanBuilder) instant(kind SpanKind, parent uint64, seq, n1, n2 int) {
	at := b.cursor
	b.sink.EmitSpan(Span{ID: b.id(), Parent: parent, Kind: kind, Run: b.run,
		Seq: seq, Start: at, End: at, N1: n1, N2: n2})
}

// closeFrame flushes the open frame span.
func (b *SpanBuilder) closeFrame() {
	if b.frameSpan.ID == 0 {
		return
	}
	sp := b.frameSpan
	sp.End = b.frameHi
	b.frameSpan = Span{}
	b.sink.EmitSpan(sp)
}

// closeRun flushes the open run span.
func (b *SpanBuilder) closeRun() {
	if !b.runOpen {
		return
	}
	b.closePending()
	b.closeFrame()
	sp := b.runSpan
	sp.End = b.runHi
	b.runOpen = false
	b.sink.EmitSpan(sp)
}

// RunStart implements Tracer.
func (b *SpanBuilder) RunStart(ev RunStartEvent) {
	b.closeRun()
	b.run++
	b.cursor = 0
	b.runHi = 0
	b.runSpan = Span{ID: b.id(), Parent: 1, Kind: SpanRun, Run: b.run, Seq: -1,
		Label: ev.Protocol, N1: ev.Tags}
	b.runOpen = true
}

// RunEnd implements Tracer.
func (b *SpanBuilder) RunEnd(ev RunEndEvent) {
	b.advance(ev.At)
	b.closeRun()
}

// FrameStart implements Tracer.
func (b *SpanBuilder) FrameStart(ev FrameEvent) {
	b.closePending()
	b.closeFrame()
	start := b.cursor
	b.advance(ev.At)
	b.frameSpan = Span{ID: b.id(), Parent: b.parentOfPending(), Kind: SpanFrame,
		Run: b.run, Seq: ev.Seq, Start: start, N1: ev.Frame, N2: ev.Size}
	b.frameHi = b.cursor
}

// Advertisement implements Tracer: a per-slot advertisement opens the slot
// it pays for (any frame-end decode work still pending closes first).
func (b *SpanBuilder) Advertisement(ev AdvertEvent) {
	b.closePending()
	b.openPending()
	b.advance(ev.At)
	b.instant(SpanAdvert, b.pendSpan.ID, ev.Seq, 0, 0)
}

// SlotDone implements Tracer: it closes the pending slot span (opening one
// retroactively for slots with no inner events, e.g. empty slots).
func (b *SpanBuilder) SlotDone(ev SlotEvent) {
	b.openPending()
	b.advance(ev.At)
	b.pendSpan.Seq = ev.Seq
	b.pendSpan.N1 = int(ev.Kind)
	b.pendSpan.N2 = ev.Transmitters
	b.pendSlots++
	b.closePending()
}

// TagIdentified implements Tracer.
func (b *SpanBuilder) TagIdentified(ev IdentifyEvent) {
	b.openPending()
	b.advance(ev.At)
	via := 0
	if ev.ViaResolution {
		via = 1
	}
	b.instant(SpanIdentify, b.pendSpan.ID, -1, via, 0)
}

// AckSent implements Tracer.
func (b *SpanBuilder) AckSent(ev AckEvent) {
	b.openPending()
	b.advance(ev.At)
	delivered := 0
	if ev.Delivered {
		delivered = 1
	}
	b.instant(SpanAck, b.pendSpan.ID, ev.Seq, int(ev.Kind), delivered)
}

// RecordCreated implements Tracer. Record-store events carry no timestamp;
// they are stamped at the cursor, the time of the slot that produced them.
func (b *SpanBuilder) RecordCreated(ev RecordEvent) {
	b.openPending()
	b.instant(SpanRecord, b.pendSpan.ID, -1, ev.Multiplicity, ev.Unknown)
}

// CascadeStep implements Tracer.
func (b *SpanBuilder) CascadeStep(ev CascadeEvent) {
	b.openPending()
	b.instant(SpanCascade, b.pendSpan.ID, -1, ev.Records, ev.Depth)
}

// RecordResolved implements Tracer.
func (b *SpanBuilder) RecordResolved(ev ResolveEvent) {
	b.openPending()
	dup := 0
	if ev.Dup {
		dup = 1
	}
	b.instant(SpanResolve, b.pendSpan.ID, -1, ev.Depth, dup)
}

// EstimatorUpdate implements Tracer: estimates close the frame-end decode
// phase (they are computed from the finished frame, not from a slot).
func (b *SpanBuilder) EstimatorUpdate(ev EstimateEvent) {
	b.closePending()
	b.advance(ev.At)
	b.instant(SpanEstimate, b.parent(), -1, int(ev.Estimate+0.5), ev.Identified)
}

// TagArrival implements Tracer.
func (b *SpanBuilder) TagArrival(ev ArrivalEvent) {
	b.advance(ev.At)
	b.instant(SpanArrival, b.runParent(), -1, ev.Active, 0)
}

// TagDeparture implements Tracer.
func (b *SpanBuilder) TagDeparture(ev DepartureEvent) {
	b.advance(ev.At)
	identified := 0
	if ev.Identified {
		identified = 1
	}
	b.instant(SpanDeparture, b.runParent(), -1, identified, 0)
}

// SessionCheckpoint implements Tracer.
func (b *SpanBuilder) SessionCheckpoint(ev CheckpointEvent) {
	b.advance(ev.At)
	b.instant(SpanCheckpoint, b.runParent(), ev.Seq, ev.Active, ev.Identified)
}

// FaultInjected implements Tracer: faults fire mid-slot, so they nest under
// the open slot when there is one.
func (b *SpanBuilder) FaultInjected(ev FaultEvent) {
	b.instant(SpanFault, b.parent(), -1, int(ev.Kind), 0)
}

// RecordQuarantined implements Tracer.
func (b *SpanBuilder) RecordQuarantined(ev QuarantineEvent) {
	b.instant(SpanQuarantine, b.parent(), -1, ev.Members, 0)
}

// ReaderRestart implements Tracer: a crash-restart rewinds the cursor to
// the restored checkpoint's simulated time (the one place time moves
// backwards); high-water marks keep already-closed spans consistent.
func (b *SpanBuilder) ReaderRestart(ev RestartEvent) {
	b.closePending()
	b.cursor = ev.At
	b.instant(SpanRestart, b.runParent(), ev.Checkpoint, int(ev.Wall), 0)
}

// FleetActivity implements Tracer: fleet-scheduler instants carry a
// wall-clock timestamp that can run ahead of the reader's air clock, so
// they are stamped at the builder's cursor (like record-store events)
// rather than advancing it. Seq carries the reader index.
func (b *SpanBuilder) FleetActivity(ev FleetEvent) {
	b.instant(SpanFleet, b.parent(), ev.Reader, int(ev.Kind), ev.Zone)
}

// runParent returns the run span's ID (workload-level events never nest
// under frames or slots).
func (b *SpanBuilder) runParent() uint64 {
	if b.runOpen {
		return b.runSpan.ID
	}
	return 1
}

// Close flushes any open spans and emits the campaign span (ID 1, covering
// every run). Call it once after the campaign; the builder must not be
// reused afterwards.
func (b *SpanBuilder) Close() {
	b.closeRun()
	b.sink.EmitSpan(Span{ID: 1, Kind: SpanCampaign, Run: -1, Seq: -1, End: b.campHi})
}
