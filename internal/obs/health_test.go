package obs

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
)

// collisionSlot is a non-empty slot that identifies nothing.
func collisionSlot(seq int) SlotEvent {
	return SlotEvent{Seq: seq, Kind: channel.Collision, Transmitters: 3}
}

// TestHealthStallAndRecovery: StallSlots consecutive barren non-empty slots
// open a stall episode (scoring down), the next identification closes it,
// and empty slots never count toward a stall.
func TestHealthStallAndRecovery(t *testing.T) {
	var events []HealthEvent
	m := NewHealthMonitor(HealthConfig{StallSlots: 5})
	m.OnEvent = func(ev HealthEvent) { events = append(events, ev) }

	m.RunStart(RunStartEvent{Protocol: "X", Tags: 10})
	for i := 0; i < 4; i++ {
		m.SlotDone(collisionSlot(i))
	}
	// Empty slots must not advance the stall counter.
	for i := 4; i < 40; i++ {
		m.SlotDone(SlotEvent{Seq: i, Kind: channel.Empty})
	}
	if len(events) != 0 {
		t.Fatalf("no stall expected yet, got %v", events)
	}
	m.SlotDone(collisionSlot(40)) // 5th consecutive barren non-empty slot
	if len(events) != 1 || events[0].Kind != HealthStall {
		t.Fatalf("want one HealthStall, got %v", events)
	}
	if s := m.Snapshot(); !s.Stalled || s.Stalls != 1 || s.Score >= 100 {
		t.Fatalf("stalled snapshot wrong: %+v", s)
	}

	// An identification inside the next slot ends the episode.
	m.TagIdentified(IdentifyEvent{})
	m.SlotDone(SlotEvent{Seq: 41, Kind: channel.Singleton, Transmitters: 1})
	if len(events) != 2 || events[1].Kind != HealthRecovered {
		t.Fatalf("want HealthRecovered, got %v", events)
	}
	if s := m.Snapshot(); s.Stalled || s.Stalls != 1 {
		t.Fatalf("recovered snapshot wrong: %+v", s)
	}
}

// TestHealthQuarantineSurge: the rate detector stays quiet below the
// threshold and under the minimum record count, then fires once.
func TestHealthQuarantineSurge(t *testing.T) {
	var events []HealthEvent
	m := NewHealthMonitor(HealthConfig{QuarantineRateMax: 0.25, QuarantineMinRecords: 8})
	m.OnEvent = func(ev HealthEvent) { events = append(events, ev) }
	m.RunStart(RunStartEvent{})

	// 2 quarantines in 4 records is over-rate but under the minimum count.
	for i := 0; i < 4; i++ {
		m.RecordCreated(RecordEvent{Multiplicity: 2})
	}
	m.RecordQuarantined(QuarantineEvent{})
	m.RecordQuarantined(QuarantineEvent{})
	if len(events) != 0 {
		t.Fatalf("surge fired under the record minimum: %v", events)
	}
	for i := 0; i < 4; i++ {
		m.RecordCreated(RecordEvent{Multiplicity: 2})
	}
	m.RecordQuarantined(QuarantineEvent{}) // 3/8 > 0.25 with 8 records
	if len(events) != 1 || events[0].Kind != HealthQuarantineSurge {
		t.Fatalf("want one HealthQuarantineSurge, got %v", events)
	}
	m.RecordQuarantined(QuarantineEvent{}) // latched: no second event
	if len(events) != 1 {
		t.Fatalf("surge must fire once, got %v", events)
	}
	if s := m.Snapshot(); s.Score > 80 {
		t.Fatalf("surge must cost at least 20 points, snapshot %+v", s)
	}
}

// TestHealthRunFailure: failed runs emit events and drag the score down,
// saturating rather than going negative.
func TestHealthRunFailure(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{})
	m.RunStart(RunStartEvent{})
	m.RunEnd(RunEndEvent{Err: "boom"})
	if got := m.Score(); got != 75 {
		t.Fatalf("one failed run: score %v, want 75", got)
	}
	for i := 0; i < 10; i++ {
		m.RunStart(RunStartEvent{})
		m.RunEnd(RunEndEvent{Err: "boom"})
	}
	if got := m.Score(); got != 50 {
		t.Fatalf("failure penalty must cap at 50: score %v", got)
	}
	if got := m.Snapshot(); got.RunsFailed != 11 || got.Healthy {
		t.Fatalf("snapshot %+v, want 11 failures and unhealthy", got)
	}
}

// TestHealthThroughputEWMA: the rolling throughput tracks identifications
// per slot.
func TestHealthThroughputEWMA(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{EWMAAlpha: 0.5})
	m.RunStart(RunStartEvent{})
	for i := 0; i < 20; i++ {
		m.TagIdentified(IdentifyEvent{})
		m.SlotDone(SlotEvent{Seq: i, Kind: channel.Singleton, Transmitters: 1})
	}
	if tp := m.Snapshot().Throughput; tp < 0.99 || tp > 1.01 {
		t.Fatalf("steady 1 id/slot: EWMA %v, want ~1", tp)
	}
}
