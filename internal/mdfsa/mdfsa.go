// Package mdfsa implements Multi-Packet-Reception Dynamic Framed Slotted
// ALOHA: the DFSA baseline upgraded with an M-capable decode stack and the
// matching frame-size rule (Pudasaini, Kang & Shin, "Multipacket reception
// aware...", arXiv:1311.7458).
//
// Like DFSA, each unread tag picks one uniformly random slot per frame.
// Unlike DFSA, colliding slots are not pure waste: the reader records every
// collision and feeds it to the ANC record store, so a k-collision with
// k <= M resolves by cascade once enough constituents are known, and a
// captured slot acknowledges its strongest constituent immediately. The
// frame size follows the MPR-optimal load rule L = backlog/mu*_M rather
// than Schoute's backlog ~ 2.39c, where mu*_M maximises the expected
// per-slot decode yield of an M-capable receiver (estimate.MPROptimalLoad).
//
// The backlog itself is inverted from the per-frame collision count with
// the exact framed-ALOHA estimator: slot occupancy in a frame of f slots
// is Binomial(N, 1/f), which is precisely estimate.Exact's model at
// p = 1/f.
package mdfsa

import (
	"fmt"
	"maps"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	"github.com/ancrfid/ancrfid/internal/estimate"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Config parameterises MDFSA.
type Config struct {
	// M is the reception capability the frame-size rule is tuned for: the
	// maximum collision multiplicity the decode stack can eventually
	// resolve. It should match the channel's capability (Lambda or
	// Capability.MaxOrder). Zero or negative selects 2.
	M int
	// InitialFrame is the first frame size. Zero grants the perfect
	// initial estimate (first frame = N/mu*_M for the starting
	// population), mirroring the DFSA baseline's conservative seeding; see
	// the corresponding note on dfsa.Config.InitialFrame.
	InitialFrame int
	// MaxFrame caps the frame size; zero means uncapped.
	MaxFrame int
}

// Protocol is a configured MDFSA instance.
type Protocol struct {
	cfg Config
	mu  float64 // MPR-optimal per-slot load mu*_M, fixed by M
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns an MDFSA instance; M defaults to 2.
func New(cfg Config) *Protocol {
	if cfg.M < 1 {
		cfg.M = 2
	}
	return &Protocol{cfg: cfg, mu: estimate.MPROptimalLoad(cfg.M)}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("MDFSA-%d", p.cfg.M) }

var _ protocol.SessionProtocol = (*Protocol)(nil)

// Run implements protocol.Protocol by driving a fresh session to
// completion.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	return protocol.RunSession(p, env)
}

// session carries one MDFSA execution. The step structure is DFSA's (one
// report slot per step, frame boundaries folded into the edge slots); the
// additions are the persistent record store and the MPR re-estimate.
type session struct {
	p       *Protocol
	env     *protocol.Env
	m       protocol.Metrics
	clock   air.Clock
	unread  []tagid.ID
	seen    map[tagid.ID]struct{}
	store   *record.Store
	scratch dfsa.FrameScratch

	slots, budget int
	frameSize     int

	// Current-frame state, meaningful while inFrame.
	inFrame                   bool
	frameLen                  int
	slotJ                     int
	collisions, transmissions int
	identifiedBefore          int
	occ                       [][]tagid.ID
	read                      map[tagid.ID]struct{}

	err error
}

var _ protocol.Session = (*session)(nil)

// sessionScratch is the reusable core of a session (see protocol.Scratch).
type sessionScratch struct {
	store *record.Store
	seen  map[tagid.ID]struct{}
}

// scratchKey namespaces this protocol's state in the shared container.
const scratchKey = "mdfsa"

// Begin implements protocol.SessionProtocol.
func (p *Protocol) Begin(env *protocol.Env) protocol.Session {
	s := &session{
		p:      p,
		env:    env,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		unread: make([]tagid.ID, len(env.Tags)),
		budget: env.SlotBudget(),
	}
	if sc, _ := env.Scratch.Get(scratchKey).(*sessionScratch); sc != nil {
		sc.store.Reset()
		clear(sc.seen)
		s.store, s.seen = sc.store, sc.seen
	} else {
		s.store = record.NewStore()
		s.seen = make(map[tagid.ID]struct{}, len(env.Tags))
		env.Scratch.Put(scratchKey, &sessionScratch{store: s.store, seen: s.seen})
	}
	s.store.Tracer = env.Tracer
	s.store.Quarantine = env.Hardened()
	// Records beyond the decode capability can never resolve (a captured
	// slot's residual still fits: k members leave k-1 unknowns).
	s.store.DropAbove = p.cfg.M + 1
	if env.Stream {
		if rel, ok := env.Channel.(channel.Releaser); ok {
			s.store.SetReleaser(rel)
		}
	}
	env.Clock = &s.clock
	env.TraceRunStart(p.Name())
	copy(s.unread, env.Tags)
	s.frameSize = p.cfg.InitialFrame
	if s.frameSize <= 0 {
		s.frameSize = estimate.MPRFrameSize(float64(len(env.Tags)), p.cfg.M)
	}
	return s
}

// Protocol implements protocol.Session.
func (s *session) Protocol() string { return s.p.Name() }

// Step implements protocol.Session. Like DFSA, a done session keeps
// stepping one-slot frames so newly admitted tags are observed.
func (s *session) Step() (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	if !s.inFrame {
		if s.slots >= s.budget {
			s.err = protocol.ErrNoProgress
			return false, s.err
		}
		f := s.frameSize
		if f < 1 {
			f = 1
		}
		if s.p.cfg.MaxFrame > 0 && f > s.p.cfg.MaxFrame {
			f = s.p.cfg.MaxFrame
		}
		s.clock.Add(s.env.Timing.FrameAnnouncement())
		s.m.Frames++
		s.env.TraceFrame(obsev.FrameEvent{Seq: s.slots, Frame: s.m.Frames, Size: f, P: 1})
		s.occ = s.scratch.Buckets(f)
		for _, id := range s.unread {
			j := s.env.RNG.Intn(f)
			s.occ[j] = append(s.occ[j], id)
		}
		s.read = s.scratch.Read()
		s.frameLen = f
		s.slotJ, s.collisions, s.transmissions = 0, 0, 0
		s.identifiedBefore = s.m.Identified()
		s.inFrame = true
	}

	tx := s.occ[s.slotJ]
	s.transmissions += len(tx)
	slot := uint64(s.m.TotalSlots())
	obs := s.env.Channel.Observe(tx)
	switch obs.Kind {
	case channel.Empty:
		s.m.EmptySlots++
	case channel.Singleton:
		s.m.SingletonSlots++
		s.countDirect(obs.ID)
		for _, res := range s.store.OnIdentified(obs.ID) {
			s.countResolved(res)
		}
	case channel.Collision:
		// Unlike DFSA the mixed recording is kept: it resolves by cascade
		// once enough constituents are known. The collision still feeds
		// the backlog estimator.
		s.m.CollisionSlots++
		s.collisions++
		for _, res := range s.store.Add(slot, obs.Mix, tx) {
			s.countResolved(res)
		}
	case channel.Captured:
		// The slot occupied the air as a collision but its strongest
		// constituent decoded through; the residual recording joins the
		// store with the captured tag already known.
		s.m.CollisionSlots++
		s.collisions++
		s.countDirect(obs.ID)
		for _, res := range s.store.OnIdentified(obs.ID) {
			s.countResolved(res)
		}
		for _, res := range s.store.Add(slot, obs.Mix, tx) {
			s.countResolved(res)
		}
	}
	s.m.TagTransmissions += len(tx)
	s.env.NotifySlot(protocol.SlotEvent{
		Seq:          s.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(tx),
		Identified:   s.m.Identified(),
	})
	s.slotJ++
	s.slots++
	s.clock.Add(s.env.Timing.Slot())
	if s.slotJ < s.frameLen {
		return false, nil
	}

	// Frame end: silence the tags read this frame.
	s.inFrame = false
	if len(s.read) > 0 {
		remaining := s.unread[:0]
		for _, id := range s.unread {
			if _, ok := s.read[id]; !ok {
				remaining = append(remaining, id)
			}
		}
		s.unread = remaining
	}
	if s.transmissions == 0 {
		return true, nil
	}
	// Re-estimate the backlog from the collision count (occupancy in a
	// frame of f slots is Binomial(N, 1/f)) and size the next frame for
	// the MPR-optimal load. A saturated frame (every slot colliding) falls
	// outside the estimator's domain; double the frame instead.
	est, ok := estimate.Exact(s.collisions, s.frameLen, 1/float64(s.frameLen))
	if !ok {
		s.frameSize = 2 * s.frameLen
	} else {
		backlog := est - float64(s.m.Identified()-s.identifiedBefore)
		s.frameSize = estimate.MPRFrameSize(backlog, s.p.cfg.M)
	}
	s.env.TraceEstimate(obsev.EstimateEvent{
		Frame: s.m.Frames, Estimate: float64(s.frameSize) * s.p.mu,
		FrameEst: est, Identified: s.m.Identified(),
	})
	return false, nil
}

// countDirect records a first-time identification from a singleton or
// captured slot and acknowledges it; the tag joins the read set only if
// the acknowledgement lands.
func (s *session) countDirect(id tagid.ID) {
	if _, dup := s.seen[id]; !dup {
		s.seen[id] = struct{}{}
		s.m.DirectIDs++
		s.env.NotifyIdentified(id, false)
	}
	delivered := s.env.AckDelivered()
	s.env.TraceAck(obsev.AckEvent{
		Seq: s.m.TotalSlots() - 1, ID: id, Kind: obsev.AckDirect, Delivered: delivered,
	})
	if delivered {
		s.read[id] = struct{}{}
	}
}

// countResolved records an ID recovered from a collision record,
// acknowledged FCAT-style by broadcasting the resolved slot's index.
func (s *session) countResolved(res record.Resolved) {
	if _, dup := s.seen[res.ID]; !dup {
		s.seen[res.ID] = struct{}{}
		s.m.ResolvedIDs++
		s.env.NotifyIdentified(res.ID, true)
	}
	s.clock.Add(s.env.Timing.ResolvedIndexAck())
	delivered := s.env.AckDelivered()
	s.env.TraceAck(obsev.AckEvent{
		Seq: s.m.TotalSlots() - 1, ID: res.ID, Kind: obsev.AckResolvedIndex, Delivered: delivered,
	})
	if delivered {
		s.read[res.ID] = struct{}{}
	}
}

// Admit implements protocol.Session: the tags join the unread backlog and
// first transmit in the next frame's bucketing.
func (s *session) Admit(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := s.seen[id]; identified {
			continue
		}
		if containsID(s.unread, id) {
			continue
		}
		s.unread = append(s.unread, id)
		s.m.Tags++
		s.store.Readmit(id)
	}
}

// Revoke implements protocol.Session: the tags leave the backlog, stop
// transmitting immediately, and their pending record memberships are
// voided so stale cascades cannot identify a departed tag.
func (s *session) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := s.seen[id]; !identified {
			s.store.Revoke(id)
		}
		if !removeID(&s.unread, id) {
			continue
		}
		if s.inFrame {
			for j := s.slotJ; j < s.frameLen; j++ {
				bucket := s.occ[j]
				if removeID(&bucket, id) {
					s.occ[j] = bucket
					break
				}
			}
		}
	}
}

// containsID reports whether ids contains id.
func containsID(ids []tagid.ID, id tagid.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// removeID deletes id from *ids preserving order; it reports whether the
// id was present.
func removeID(ids *[]tagid.ID, id tagid.ID) bool {
	for i, v := range *ids {
		if v == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			return true
		}
	}
	return false
}

// Metrics implements protocol.Session.
func (s *session) Metrics() protocol.Metrics {
	m := s.m
	m.OnAir = s.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (s *session) Elapsed() time.Duration { return s.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (s *session) Outstanding() int { return len(s.unread) }

// checkpoint is a deep copy of an MDFSA session's state.
type checkpoint struct {
	name   string
	m      protocol.Metrics
	clock  air.Clock
	unread []tagid.ID
	seen   map[tagid.ID]struct{}
	store  *record.Store

	slots, budget int
	frameSize     int

	inFrame                   bool
	frameLen                  int
	slotJ                     int
	collisions, transmissions int
	identifiedBefore          int
	occ                       [][]tagid.ID
	read                      map[tagid.ID]struct{}

	err error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *checkpoint) Protocol() string { return c.name }

// Snapshot implements protocol.Session.
func (s *session) Snapshot() (protocol.Checkpoint, error) {
	store, err := s.store.Clone()
	if err != nil {
		return nil, err
	}
	cp := &checkpoint{
		name:             s.p.Name(),
		m:                s.m,
		clock:            s.clock,
		unread:           append([]tagid.ID(nil), s.unread...),
		seen:             maps.Clone(s.seen),
		store:            store,
		slots:            s.slots,
		budget:           s.budget,
		frameSize:        s.frameSize,
		inFrame:          s.inFrame,
		frameLen:         s.frameLen,
		slotJ:            s.slotJ,
		collisions:       s.collisions,
		transmissions:    s.transmissions,
		identifiedBefore: s.identifiedBefore,
		err:              s.err,
		rng:              *s.env.RNG,
	}
	if s.inFrame {
		cp.occ = cloneBuckets(s.occ)
		cp.read = maps.Clone(s.read)
	}
	if st, ok := s.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (s *session) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*checkpoint)
	if !ok || cp.name != s.p.Name() {
		return protocol.ErrCheckpointMismatch
	}
	store, err := cp.store.Clone()
	if err != nil {
		return err
	}
	s.m = cp.m
	s.clock = cp.clock
	s.unread = append(s.unread[:0:0], cp.unread...)
	s.seen = maps.Clone(cp.seen)
	s.store = store
	s.slots = cp.slots
	s.budget = cp.budget
	s.frameSize = cp.frameSize
	s.inFrame = cp.inFrame
	s.frameLen = cp.frameLen
	s.slotJ = cp.slotJ
	s.collisions = cp.collisions
	s.transmissions = cp.transmissions
	s.identifiedBefore = cp.identifiedBefore
	s.occ = nil
	s.read = nil
	if cp.inFrame {
		s.occ = cloneBuckets(cp.occ)
		s.read = maps.Clone(cp.read)
	}
	s.err = cp.err
	*s.env.RNG = cp.rng
	if cp.chanState != nil {
		s.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}

// cloneBuckets deep-copies a frame's slot-occupancy buckets.
func cloneBuckets(occ [][]tagid.ID) [][]tagid.ID {
	out := make([][]tagid.ID, len(occ))
	for i, b := range occ {
		if len(b) > 0 {
			out[i] = append([]tagid.ID(nil), b...)
		}
	}
	return out
}
