package mdfsa

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	"github.com/ancrfid/ancrfid/internal/estimate"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags int, cfg channel.AbstractConfig) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(cfg, r),
		Timing:  air.ICode(),
	}
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "MDFSA-2" {
		t.Fatal("wrong default name")
	}
	if New(Config{M: 3}).Name() != "MDFSA-3" {
		t.Fatal("wrong name")
	}
}

func TestIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 5, 200, 4000} {
		m, err := New(Config{}).Run(env(uint64(n), n, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.Identified() != n {
			t.Fatalf("N=%d: identified %d", n, m.Identified())
		}
	}
}

func TestEmptyPopulation(t *testing.T) {
	m, err := New(Config{}).Run(env(1, 0, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 0 {
		t.Fatal("identified tags in empty field")
	}
}

func TestResolvesCollisions(t *testing.T) {
	// Frames run above load 1 (mu*_2 ~ 1.618), so 2-collisions are common
	// and a meaningful share of the population must arrive by cascade
	// resolution, not singleton luck.
	m, err := New(Config{}).Run(env(7, 3000, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.ResolvedIDs == 0 {
		t.Fatal("no collision-resolved identifications; the record store is not wired")
	}
	if frac := float64(m.ResolvedIDs) / 3000; frac < 0.15 {
		t.Errorf("resolved fraction %.3f, want a substantial share", frac)
	}
}

func TestBeatsDFSASlotCount(t *testing.T) {
	// With the same lambda = 2 channel, recovering collision slots must
	// make identification cheaper per tag than the collision-blind DFSA
	// baseline (which needs ~ e*N slots).
	const n = 5000
	md, err := New(Config{}).Run(env(11, n, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	base, err := dfsa.New(dfsa.Config{}).Run(env(11, n, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if md.TotalSlots() >= base.TotalSlots() {
		t.Fatalf("MDFSA used %d slots, DFSA %d — MPR recovery should win", md.TotalSlots(), base.TotalSlots())
	}
}

func TestFrameSizingTracksMPRLoad(t *testing.T) {
	// The first frame of a perfectly seeded run is N/mu*_M rounded.
	for _, m := range []int{2, 3, 4} {
		p := New(Config{M: m})
		e := env(uint64(m), 1000, channel.AbstractConfig{Lambda: m})
		s := p.Begin(e).(*session)
		want := estimate.MPRFrameSize(1000, m)
		if s.frameSize != want {
			t.Fatalf("M=%d: initial frame %d, want %d", m, s.frameSize, want)
		}
		if math.Abs(float64(want)*estimate.MPROptimalLoad(m)-1000) > float64(m) {
			t.Fatalf("M=%d: frame %d does not match load rule", m, want)
		}
	}
}

func TestHigherMNeedsFewerSlots(t *testing.T) {
	// A more capable decode stack (larger matched M and lambda) should
	// finish the same population in fewer slots.
	const n = 4000
	m2, err := New(Config{M: 2}).Run(env(5, n, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	m4, err := New(Config{M: 4}).Run(env(5, n, channel.AbstractConfig{Lambda: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if m4.TotalSlots() >= m2.TotalSlots() {
		t.Fatalf("M=4 used %d slots, M=2 used %d", m4.TotalSlots(), m2.TotalSlots())
	}
}

func TestCaptureAddsDirectReads(t *testing.T) {
	// With capture enabled on the same seed, some collision slots decode
	// their strongest constituent; the run must complete at least as
	// efficiently and record captured reads as direct identifications.
	const n = 2000
	cfg := channel.AbstractConfig{Lambda: 2}
	plain, err := New(Config{}).Run(env(9, n, cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Capability = channel.Capability{MaxOrder: 2, CaptureSINRdB: 3}
	capm, err := New(Config{}).Run(env(9, n, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if capm.Identified() != n || plain.Identified() != n {
		t.Fatal("incomplete read")
	}
	if capm.TotalSlots() > plain.TotalSlots() {
		t.Errorf("capture-enabled run used %d slots, capture-free %d", capm.TotalSlots(), plain.TotalSlots())
	}
}

func TestAdmitRevoke(t *testing.T) {
	e := env(13, 50, channel.AbstractConfig{Lambda: 2})
	r2 := rng.New(99)
	extra := tagid.Population(r2, 10)
	s := New(Config{}).Begin(e)
	for i := 0; i < 5; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s.Admit(extra)
	s.Revoke(extra[:5])
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	m := s.Metrics()
	if m.Identified() < 50 {
		t.Fatalf("identified %d of at least 50", m.Identified())
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding %d after done", s.Outstanding())
	}
}
