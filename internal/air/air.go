// Package air models the RFID air interface timing.
//
// All throughput numbers in the paper derive from the Philips I-Code
// specification (Section VI): a 53 kbit/s channel (18.88 us per bit), 96-bit
// IDs (1812 us), 20-bit reader acknowledgements (378 us) and a 302 us guard
// wait before the report and acknowledgement segments, giving a slot of
// about 2.8 ms. Protocols additionally pay for advertisements (SCAT per
// slot, FCAT and the framed ALOHA baselines per frame) and, in FCAT, for the
// 23-bit slot indices that acknowledge IDs recovered from collision records.
package air

import "time"

// Timing holds the air-interface parameters shared by every protocol.
type Timing struct {
	// BitDuration is the on-air time of one bit.
	BitDuration time.Duration
	// Guard is the waiting time inserted before the report segment and
	// before the acknowledgement segment to separate transmissions.
	Guard time.Duration
	// IDBits is the tag ID length including its CRC.
	IDBits int
	// AckBits is the length of the reader's basic acknowledgement,
	// including its CRC.
	AckBits int
	// SlotIndexBits is the length of a slot index; FCAT acknowledges an ID
	// recovered from a collision record by broadcasting the record's slot
	// index instead of the full ID (Section V-A: 23-bit indices allow more
	// than 8 million slots, always enough since the protocols never need
	// more than 2N slots).
	SlotIndexBits int
	// ProbBits is l, the fixed-point width of the advertised report
	// probability.
	ProbBits int
	// FrameSizeBits is the width of the frame-size field announced by the
	// framed ALOHA baselines.
	FrameSizeBits int
}

// ICode returns the Philips I-Code timing used throughout the paper's
// evaluation.
func ICode() Timing {
	return Timing{
		BitDuration:   18880 * time.Nanosecond, // 53 kbit/s
		Guard:         302 * time.Microsecond,
		IDBits:        96,
		AckBits:       20,
		SlotIndexBits: 23,
		ProbBits:      16,
		FrameSizeBits: 16,
	}
}

// Gen2 returns a timing model for an ISO 18000-6C / EPC Gen2-style link
// (the standard of the paper's reference [15]) at a 128 kbit/s
// tag-to-reader rate with 62.5 us guard intervals. The protocols are
// rate-agnostic; this preset exists to study how the throughput ranking
// scales with channel speed (it is preserved — every protocol's slot
// budget shrinks by the same factor).
func Gen2() Timing {
	return Timing{
		BitDuration:   7812 * time.Nanosecond, // 128 kbit/s
		Guard:         62500 * time.Nanosecond,
		IDBits:        96,
		AckBits:       20,
		SlotIndexBits: 23,
		ProbBits:      16,
		FrameSizeBits: 16,
	}
}

// Bits returns the on-air duration of n bits.
func (t Timing) Bits(n int) time.Duration {
	return time.Duration(n) * t.BitDuration
}

// Slot returns the duration of one basic time slot:
// guard + report (ID) + guard + acknowledgement.
func (t Timing) Slot() time.Duration {
	return 2*t.Guard + t.Bits(t.IDBits) + t.Bits(t.AckBits)
}

// SlotAdvertisement returns the cost of SCAT's per-slot advertisement
// carrying the slot index and the report probability.
func (t Timing) SlotAdvertisement() time.Duration {
	return t.Guard + t.Bits(t.SlotIndexBits+t.ProbBits)
}

// FrameAdvertisement returns the cost of FCAT's pre-frame advertisement
// carrying the frame index and the report probability.
func (t Timing) FrameAdvertisement() time.Duration {
	return t.Guard + t.Bits(t.SlotIndexBits+t.ProbBits)
}

// FrameAnnouncement returns the cost of a framed-ALOHA frame announcement
// carrying the next frame size.
func (t Timing) FrameAnnouncement() time.Duration {
	return t.Guard + t.Bits(t.FrameSizeBits)
}

// ResolvedIndexAck returns the extra acknowledgement cost of announcing one
// resolved collision record by its slot index (FCAT).
func (t Timing) ResolvedIndexAck() time.Duration {
	return t.Bits(t.SlotIndexBits)
}

// ResolvedIDAck returns the extra acknowledgement cost of announcing one
// resolved ID in full (SCAT, before the FCAT optimisation).
func (t Timing) ResolvedIDAck() time.Duration {
	return t.Bits(t.IDBits)
}

// Clock accumulates simulated on-air time for one protocol run.
type Clock struct {
	elapsed time.Duration
}

// Add advances the clock by d.
func (c *Clock) Add(d time.Duration) { c.elapsed += d }

// AddSlots advances the clock by n basic slots.
func (c *Clock) AddSlots(t Timing, n int) { c.elapsed += time.Duration(n) * t.Slot() }

// Elapsed returns the accumulated on-air time.
func (c *Clock) Elapsed() time.Duration { return c.elapsed }
