package air

import (
	"testing"
	"time"
)

func TestICodeMatchesPaper(t *testing.T) {
	tm := ICode()
	// Section VI: 53 kbit/s -> 18.88 us per bit.
	if tm.BitDuration != 18880*time.Nanosecond {
		t.Errorf("bit duration %v, want 18.88us", tm.BitDuration)
	}
	// 96-bit ID takes 1812 us.
	if got := tm.Bits(tm.IDBits); got.Round(time.Microsecond) != 1812*time.Microsecond {
		t.Errorf("ID transmission %v, want ~1812us", got)
	}
	// 20-bit acknowledgement takes 378 us.
	if got := tm.Bits(tm.AckBits); got.Round(time.Microsecond) != 378*time.Microsecond {
		t.Errorf("ack transmission %v, want ~378us", got)
	}
	// Each slot is "about 2.8 ms".
	slot := tm.Slot()
	if slot < 2700*time.Microsecond || slot > 2900*time.Microsecond {
		t.Errorf("slot duration %v, want ~2.8ms", slot)
	}
}

func TestSlotComposition(t *testing.T) {
	tm := ICode()
	want := 2*tm.Guard + tm.Bits(tm.IDBits+tm.AckBits)
	if tm.Slot() != want {
		t.Errorf("Slot() = %v, want guard+ID+guard+ack = %v", tm.Slot(), want)
	}
}

func TestAdvertisementDurations(t *testing.T) {
	tm := ICode()
	if tm.SlotAdvertisement() != tm.Guard+tm.Bits(tm.SlotIndexBits+tm.ProbBits) {
		t.Error("SlotAdvertisement composition wrong")
	}
	if tm.FrameAdvertisement() != tm.SlotAdvertisement() {
		t.Error("frame and slot advertisements should cost the same bits")
	}
	if tm.FrameAnnouncement() != tm.Guard+tm.Bits(tm.FrameSizeBits) {
		t.Error("FrameAnnouncement composition wrong")
	}
	if tm.ResolvedIndexAck() != tm.Bits(tm.SlotIndexBits) {
		t.Error("ResolvedIndexAck composition wrong")
	}
	if tm.ResolvedIDAck() != tm.Bits(tm.IDBits) {
		t.Error("ResolvedIDAck composition wrong")
	}
	// The FCAT optimisation: a slot-index ack is much cheaper than a full
	// ID ack (23 vs 96 bits).
	if tm.ResolvedIndexAck() >= tm.ResolvedIDAck() {
		t.Error("slot-index ack should be cheaper than full-ID ack")
	}
}

func TestBitsZero(t *testing.T) {
	if ICode().Bits(0) != 0 {
		t.Error("Bits(0) != 0")
	}
}

func TestClock(t *testing.T) {
	tm := ICode()
	var c Clock
	if c.Elapsed() != 0 {
		t.Fatal("fresh clock not zero")
	}
	c.Add(time.Millisecond)
	c.AddSlots(tm, 3)
	want := time.Millisecond + 3*tm.Slot()
	if c.Elapsed() != want {
		t.Errorf("Elapsed() = %v, want %v", c.Elapsed(), want)
	}
}

func TestGen2Constants(t *testing.T) {
	tm := Gen2()
	// 128 kbit/s -> ~7.81 us per bit.
	if tm.BitDuration < 7500*time.Nanosecond || tm.BitDuration > 8000*time.Nanosecond {
		t.Errorf("Gen2 bit duration %v", tm.BitDuration)
	}
	if tm.IDBits != 96 || tm.AckBits != 20 {
		t.Errorf("Gen2 field widths changed: %+v", tm)
	}
	// Gen2 slots are well under half an I-Code slot.
	if tm.Slot() >= ICode().Slot()/2 {
		t.Errorf("Gen2 slot %v not much faster than I-Code %v", tm.Slot(), ICode().Slot())
	}
}
