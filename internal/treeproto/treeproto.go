// Package treeproto implements the tree-based anti-collision baselines the
// paper compares against (Section VI): Adaptive Binary Splitting (ABS) and
// Adaptive Query Splitting (AQS), both from Myung & Lee, MobiHoc 2006
// (paper reference [12]).
//
// Both protocols resolve collisions by recursively splitting the colliding
// tag set into two subsets until every subset is a singleton:
//
//   - ABS splits on a random bit each colliding tag draws. Tags maintain
//     slot counters that realise a depth-first traversal of the random
//     split tree; simulating the traversal with an explicit group stack is
//     slot-for-slot identical and avoids touching every tag every slot.
//   - AQS splits on the next bit of the tag ID: the reader grows query
//     prefixes, and tags whose ID extends the query respond. Its adaptive
//     feature is that a reading round starts from the leaf queries of the
//     previous round instead of from the root.
package treeproto

import (
	"bytes"
	"sort"

	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// ABS is the Adaptive Binary Splitting protocol.
type ABS struct{}

var _ protocol.SessionProtocol = ABS{}

// NewABS returns an ABS instance.
func NewABS() ABS { return ABS{} }

// Name implements protocol.Protocol.
func (ABS) Name() string { return "ABS" }

// Run implements protocol.Protocol by driving a fresh session to
// completion. The first round of ABS begins with all tags answering the
// initial query (every counter starts at zero), which is one big
// collision that the random splitting then resolves.
func (p ABS) Run(env *protocol.Env) (protocol.Metrics, error) {
	return protocol.RunSession(p, env)
}

// query is one pending AQS query: a bit prefix (the first depth bits of
// prefix) and the tags whose IDs extend it.
type query struct {
	depth  int
	prefix tagid.ID
	tags   []tagid.ID
}

// AQS is the Adaptive Query Splitting protocol. The zero value starts a
// fresh reading process from the root queries {0, 1}; after a completed
// round, the leaf queries are retained so the next round (for an unchanged
// tag population) skips the collision-resolution work — AQS's adaptive
// feature for periodic inventory reads.
type AQS struct {
	// leaves are the readable (singleton or empty) queries retained from
	// the last completed round. They partition the whole ID space, so any
	// population — including tags that arrived since — maps onto exactly
	// one leaf each.
	leaves []leaf
}

// leaf is a retained readable query: the first depth bits of prefix.
// hasTag records whether the query read a singleton (false: it read empty).
type leaf struct {
	depth  int
	prefix tagid.ID
	hasTag bool
}

var _ protocol.SessionProtocol = (*AQS)(nil)

// NewAQS returns a fresh AQS reader.
func NewAQS() *AQS { return &AQS{} }

// Name implements protocol.Protocol.
func (*AQS) Name() string { return "AQS" }

// Run implements protocol.Protocol: one independent reading round started
// from the root queries. Monte-Carlo campaigns reuse a protocol instance
// across unrelated populations — possibly from concurrent runs of a
// parallel campaign — so Run neither reads nor writes the retained leaf
// state; use RunRound for AQS's adaptive periodic re-reads.
func (a *AQS) Run(env *protocol.Env) (protocol.Metrics, error) {
	s := a.begin(env, nil)
	m, err := protocol.DriveSession(s, env, a.Name())
	return m, err
}

// RunRound executes one reading round, starting from the leaf queries
// retained by the previous round if any — AQS's adaptive feature:
// re-reading an unchanged population costs about one slot per retained
// query and resolves no collisions, while arrivals collide inside their
// covering leaf and are split out as usual. Unlike Run, RunRound is
// stateful and must not be called concurrently on one reader.
func (a *AQS) RunRound(env *protocol.Env) (protocol.Metrics, error) {
	s := a.begin(env, a.leaves)
	m, err := protocol.DriveSession(s, env, a.Name())
	if err == nil {
		a.leaves = s.leaves
	}
	return m, err
}

// replayLeaves distributes the population over the retained leaves. The
// leaves partition the ID space, so each tag extends exactly one leaf
// prefix; tags that arrived since the last round land in some leaf and
// trigger collision splitting there.
func replayLeaves(leaves []leaf, tags []tagid.ID) []query {
	queue := make([]query, len(leaves))
	for i, lf := range leaves {
		queue[i] = query{depth: lf.depth, prefix: lf.prefix}
	}
	// Sort leaf indices by prefix so each tag finds its covering leaf by
	// binary search (the padded prefix is the lower bound of its range).
	order := make([]int, len(leaves))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := leaves[order[x]], leaves[order[y]]
		return prefixLess(a.prefix, b.prefix)
	})
	for _, id := range tags {
		// Rightmost leaf whose padded prefix is <= id.
		lo, hi := 0, len(order)
		for lo < hi {
			mid := (lo + hi) / 2
			if prefixLess(id, leaves[order[mid]].prefix) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo == 0 {
			// The leaves partition the space, so this cannot happen with a
			// consistent leaf set; fall back to the first leaf.
			lo = 1
		}
		q := &queue[order[lo-1]]
		q.tags = append(q.tags, id)
	}
	return queue
}

// mergeEmptySiblings compresses the retained leaf set: pairs of sibling
// queries that both read empty are replaced by their parent query,
// repeatedly, so a departed population does not leave a forest of stale
// one-slot holes to re-probe every round.
func mergeEmptySiblings(leaves []leaf) []leaf {
	type key struct {
		depth  int
		prefix tagid.ID
	}
	empty := make(map[key]bool)
	kept := make([]leaf, 0, len(leaves))
	for _, lf := range leaves {
		if lf.hasTag {
			kept = append(kept, lf)
		} else {
			empty[key{lf.depth, lf.prefix}] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for k := range empty {
			if k.depth < 1 || !empty[k] {
				continue
			}
			bit := k.prefix.Bit(k.depth - 1)
			sibling := key{k.depth, withBit(k.prefix, k.depth-1, 1-bit)}
			if !empty[sibling] {
				continue
			}
			delete(empty, k)
			delete(empty, sibling)
			empty[key{k.depth - 1, withBit(k.prefix, k.depth-1, 0)}] = true
			changed = true
		}
	}
	// Emit the surviving holes in (prefix, depth) order: map iteration
	// order must not leak into the retained leaf list, which fixes the
	// next round's query order and hence the whole downstream schedule.
	rest := make([]leaf, 0, len(empty))
	for k := range empty {
		rest = append(rest, leaf{depth: k.depth, prefix: k.prefix})
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].prefix != rest[j].prefix {
			return prefixLess(rest[i].prefix, rest[j].prefix)
		}
		return rest[i].depth < rest[j].depth
	})
	return append(kept, rest...)
}

// withBit returns id with bit i (most significant first) set to v.
func withBit(id tagid.ID, i int, v byte) tagid.ID {
	if v == 0 {
		id[i/8] &^= 1 << (7 - i%8)
	} else {
		id[i/8] |= 1 << (7 - i%8)
	}
	return id
}

// prefixLess compares two IDs as big-endian bit strings.
func prefixLess(a, b tagid.ID) bool {
	return bytes.Compare(a[:], b[:]) < 0
}

// samePrefix reports whether the first depth bits of the two IDs agree.
func samePrefix(a, b tagid.ID, depth int) bool {
	for i := 0; i < depth; i++ {
		if a.Bit(i) != b.Bit(i) {
			return false
		}
	}
	return true
}
