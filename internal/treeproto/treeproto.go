// Package treeproto implements the tree-based anti-collision baselines the
// paper compares against (Section VI): Adaptive Binary Splitting (ABS) and
// Adaptive Query Splitting (AQS), both from Myung & Lee, MobiHoc 2006
// (paper reference [12]).
//
// Both protocols resolve collisions by recursively splitting the colliding
// tag set into two subsets until every subset is a singleton:
//
//   - ABS splits on a random bit each colliding tag draws. Tags maintain
//     slot counters that realise a depth-first traversal of the random
//     split tree; simulating the traversal with an explicit group stack is
//     slot-for-slot identical and avoids touching every tag every slot.
//   - AQS splits on the next bit of the tag ID: the reader grows query
//     prefixes, and tags whose ID extends the query respond. Its adaptive
//     feature is that a reading round starts from the leaf queries of the
//     previous round instead of from the root.
package treeproto

import (
	"bytes"
	"sort"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// ABS is the Adaptive Binary Splitting protocol.
type ABS struct{}

var _ protocol.Protocol = ABS{}

// NewABS returns an ABS instance.
func NewABS() ABS { return ABS{} }

// Name implements protocol.Protocol.
func (ABS) Name() string { return "ABS" }

// Run implements protocol.Protocol. The first round of ABS begins with all
// tags answering the initial query (every counter starts at zero), which is
// one big collision that the random splitting then resolves.
func (p ABS) Run(env *protocol.Env) (protocol.Metrics, error) {
	m, err := p.run(env)
	env.TraceRunEnd(p.Name(), m, err)
	return m, err
}

func (p ABS) run(env *protocol.Env) (protocol.Metrics, error) {
	var (
		m     = protocol.Metrics{Tags: len(env.Tags)}
		clock air.Clock
	)
	env.TraceRunStart(p.Name())
	budget := env.SlotBudget()

	// The stack holds the pending tag groups in depth-first order, exactly
	// the order the tags' slot counters would produce.
	initial := make([]tagid.ID, len(env.Tags))
	copy(initial, env.Tags)
	stack := [][]tagid.ID{initial}
	slots := 0

	for len(stack) > 0 {
		if slots >= budget {
			m.OnAir = clock.Elapsed()
			return m, protocol.ErrNoProgress
		}
		group := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		slots++
		clock.AddSlots(env.Timing, 1)

		obs := env.Channel.Observe(group)
		switch obs.Kind {
		case channel.Empty:
			m.EmptySlots++
		case channel.Singleton:
			m.SingletonSlots++
			m.DirectIDs++
			env.NotifyIdentified(obs.ID, false)
		case channel.Collision:
			m.CollisionSlots++
			// Each colliding tag draws a random bit; the zero-subset
			// transmits in the next slot. Tags are exchangeable under the
			// random draw, so splitting by a binomial count is equivalent
			// to per-tag draws.
			k := env.RNG.Binomial(len(group), 0.5)
			zero, one := group[:k], group[k:]
			stack = append(stack, one, zero)
		}
		m.TagTransmissions += len(group)
		env.NotifySlot(protocol.SlotEvent{
			Seq:          m.TotalSlots() - 1,
			Kind:         obs.Kind,
			Transmitters: len(group),
			Identified:   m.Identified(),
		})
	}
	m.OnAir = clock.Elapsed()
	return m, nil
}

// query is one pending AQS query: a bit prefix (the first depth bits of
// prefix) and the tags whose IDs extend it.
type query struct {
	depth  int
	prefix tagid.ID
	tags   []tagid.ID
}

// AQS is the Adaptive Query Splitting protocol. The zero value starts a
// fresh reading process from the root queries {0, 1}; after a completed
// round, the leaf queries are retained so the next round (for an unchanged
// tag population) skips the collision-resolution work — AQS's adaptive
// feature for periodic inventory reads.
type AQS struct {
	// leaves are the readable (singleton or empty) queries retained from
	// the last completed round. They partition the whole ID space, so any
	// population — including tags that arrived since — maps onto exactly
	// one leaf each.
	leaves []leaf
}

// leaf is a retained readable query: the first depth bits of prefix.
// hasTag records whether the query read a singleton (false: it read empty).
type leaf struct {
	depth  int
	prefix tagid.ID
	hasTag bool
}

var _ protocol.Protocol = (*AQS)(nil)

// NewAQS returns a fresh AQS reader.
func NewAQS() *AQS { return &AQS{} }

// Name implements protocol.Protocol.
func (*AQS) Name() string { return "AQS" }

// Run implements protocol.Protocol: one independent reading round started
// from the root queries. Monte-Carlo campaigns reuse a protocol instance
// across unrelated populations — possibly from concurrent runs of a
// parallel campaign — so Run neither reads nor writes the retained leaf
// state; use RunRound for AQS's adaptive periodic re-reads.
func (a *AQS) Run(env *protocol.Env) (protocol.Metrics, error) {
	m, _, err := aqsRound(env, nil)
	env.TraceRunEnd(a.Name(), m, err)
	return m, err
}

// RunRound executes one reading round, starting from the leaf queries
// retained by the previous round if any — AQS's adaptive feature:
// re-reading an unchanged population costs about one slot per retained
// query and resolves no collisions, while arrivals collide inside their
// covering leaf and are split out as usual. Unlike Run, RunRound is
// stateful and must not be called concurrently on one reader.
func (a *AQS) RunRound(env *protocol.Env) (protocol.Metrics, error) {
	m, leaves, err := aqsRound(env, a.leaves)
	if err == nil {
		a.leaves = leaves
	}
	env.TraceRunEnd(a.Name(), m, err)
	return m, err
}

// aqsRound runs one reading round from the given retained leaves (nil =
// the root queries) and returns the merged leaf set a follow-up round
// would start from. It touches no reader state.
func aqsRound(env *protocol.Env, start []leaf) (protocol.Metrics, []leaf, error) {
	var (
		m     = protocol.Metrics{Tags: len(env.Tags)}
		clock air.Clock
	)
	env.TraceRunStart("AQS")
	budget := env.SlotBudget()

	// Build the initial query queue: retained leaves if a previous round
	// ran, else the root queries 0 and 1.
	var queue []query
	if len(start) > 0 {
		queue = replayLeaves(start, env.Tags)
	} else {
		var zero, one []tagid.ID
		for _, id := range env.Tags {
			if id.Bit(0) == 0 {
				zero = append(zero, id)
			} else {
				one = append(one, id)
			}
		}
		queue = []query{
			{depth: 1, prefix: withBit(tagid.ID{}, 0, 0), tags: zero},
			{depth: 1, prefix: withBit(tagid.ID{}, 0, 1), tags: one},
		}
	}

	var nextLeaves []leaf
	slots := 0
	// AQS serves queries breadth-first from a FIFO queue.
	for head := 0; head < len(queue); head++ {
		if slots >= budget {
			m.OnAir = clock.Elapsed()
			return m, nil, protocol.ErrNoProgress
		}
		q := queue[head]
		slots++
		clock.AddSlots(env.Timing, 1)

		obs := env.Channel.Observe(q.tags)
		switch obs.Kind {
		case channel.Empty:
			m.EmptySlots++
			// Empty queries stay readable and are retained; sibling empties
			// are merged after the round so stale holes do not accumulate.
			nextLeaves = append(nextLeaves, leaf{depth: q.depth, prefix: q.prefix})
		case channel.Singleton:
			m.SingletonSlots++
			m.DirectIDs++
			env.NotifyIdentified(obs.ID, false)
			nextLeaves = append(nextLeaves, leaf{depth: q.depth, prefix: q.prefix, hasTag: true})
		case channel.Collision:
			m.CollisionSlots++
			if q.depth >= tagid.Bits {
				// Identical 96-bit IDs cannot be split further; with the
				// distinct populations used here this cannot happen.
				m.OnAir = clock.Elapsed()
				return m, nil, protocol.ErrNoProgress
			}
			var zero, one []tagid.ID
			for _, id := range q.tags {
				if id.Bit(q.depth) == 0 {
					zero = append(zero, id)
				} else {
					one = append(one, id)
				}
			}
			queue = append(queue,
				query{depth: q.depth + 1, prefix: withBit(q.prefix, q.depth, 0), tags: zero},
				query{depth: q.depth + 1, prefix: withBit(q.prefix, q.depth, 1), tags: one})
		}
		m.TagTransmissions += len(q.tags)
		env.NotifySlot(protocol.SlotEvent{
			Seq:          m.TotalSlots() - 1,
			Kind:         obs.Kind,
			Transmitters: len(q.tags),
			Identified:   m.Identified(),
		})
	}
	m.OnAir = clock.Elapsed()
	return m, mergeEmptySiblings(nextLeaves), nil
}

// replayLeaves distributes the population over the retained leaves. The
// leaves partition the ID space, so each tag extends exactly one leaf
// prefix; tags that arrived since the last round land in some leaf and
// trigger collision splitting there.
func replayLeaves(leaves []leaf, tags []tagid.ID) []query {
	queue := make([]query, len(leaves))
	for i, lf := range leaves {
		queue[i] = query{depth: lf.depth, prefix: lf.prefix}
	}
	// Sort leaf indices by prefix so each tag finds its covering leaf by
	// binary search (the padded prefix is the lower bound of its range).
	order := make([]int, len(leaves))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := leaves[order[x]], leaves[order[y]]
		return prefixLess(a.prefix, b.prefix)
	})
	for _, id := range tags {
		// Rightmost leaf whose padded prefix is <= id.
		lo, hi := 0, len(order)
		for lo < hi {
			mid := (lo + hi) / 2
			if prefixLess(id, leaves[order[mid]].prefix) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo == 0 {
			// The leaves partition the space, so this cannot happen with a
			// consistent leaf set; fall back to the first leaf.
			lo = 1
		}
		q := &queue[order[lo-1]]
		q.tags = append(q.tags, id)
	}
	return queue
}

// mergeEmptySiblings compresses the retained leaf set: pairs of sibling
// queries that both read empty are replaced by their parent query,
// repeatedly, so a departed population does not leave a forest of stale
// one-slot holes to re-probe every round.
func mergeEmptySiblings(leaves []leaf) []leaf {
	type key struct {
		depth  int
		prefix tagid.ID
	}
	empty := make(map[key]bool)
	kept := make([]leaf, 0, len(leaves))
	for _, lf := range leaves {
		if lf.hasTag {
			kept = append(kept, lf)
		} else {
			empty[key{lf.depth, lf.prefix}] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for k := range empty {
			if k.depth < 1 || !empty[k] {
				continue
			}
			bit := k.prefix.Bit(k.depth - 1)
			sibling := key{k.depth, withBit(k.prefix, k.depth-1, 1-bit)}
			if !empty[sibling] {
				continue
			}
			delete(empty, k)
			delete(empty, sibling)
			empty[key{k.depth - 1, withBit(k.prefix, k.depth-1, 0)}] = true
			changed = true
		}
	}
	for k := range empty {
		kept = append(kept, leaf{depth: k.depth, prefix: k.prefix})
	}
	return kept
}

// withBit returns id with bit i (most significant first) set to v.
func withBit(id tagid.ID, i int, v byte) tagid.ID {
	if v == 0 {
		id[i/8] &^= 1 << (7 - i%8)
	} else {
		id[i/8] |= 1 << (7 - i%8)
	}
	return id
}

// prefixLess compares two IDs as big-endian bit strings.
func prefixLess(a, b tagid.ID) bool {
	return bytes.Compare(a[:], b[:]) < 0
}

// samePrefix reports whether the first depth bits of the two IDs agree.
func samePrefix(a, b tagid.ID, depth int) bool {
	for i := 0; i < depth; i++ {
		if a.Bit(i) != b.Bit(i) {
			return false
		}
	}
	return true
}
