// Session implementations for the tree protocols. A step is one query
// slot: popping a group (ABS) or serving the queue head (AQS). Both
// sessions keep stepping after the tree drains — ABS probes the empty
// field one slot at a time, AQS replays its retained leaf queries as
// fresh monitoring rounds — so tags admitted later are picked up by the
// continuing traversal.
package treeproto

import (
	"maps"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// containsID reports whether ids contains id.
func containsID(ids []tagid.ID, id tagid.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// removeID deletes id from *ids preserving order; it reports whether the
// id was present.
func removeID(ids *[]tagid.ID, id tagid.ID) bool {
	for i, v := range *ids {
		if v == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			return true
		}
	}
	return false
}

// absSession carries one ABS execution: the explicit depth-first group
// stack plus the session bookkeeping.
type absSession struct {
	p     ABS
	env   *protocol.Env
	m     protocol.Metrics
	clock air.Clock
	stack [][]tagid.ID
	seen  map[tagid.ID]struct{}

	slots, budget int
	err           error
}

var _ protocol.Session = (*absSession)(nil)

// Begin implements protocol.SessionProtocol. The first round of ABS
// begins with all tags answering the initial query (every counter starts
// at zero), which is one big collision that the random splitting then
// resolves.
func (p ABS) Begin(env *protocol.Env) protocol.Session {
	s := &absSession{
		p:      p,
		env:    env,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		seen:   make(map[tagid.ID]struct{}, len(env.Tags)),
		budget: env.SlotBudget(),
	}
	env.Clock = &s.clock
	env.TraceRunStart(p.Name())
	initial := make([]tagid.ID, len(env.Tags))
	copy(initial, env.Tags)
	s.stack = [][]tagid.ID{initial}
	return s
}

// Protocol implements protocol.Session.
func (s *absSession) Protocol() string { return s.p.Name() }

// Step implements protocol.Session: one query slot. With the stack
// drained the reader keeps probing the (empty) field, so an admitted
// group restarts the traversal on the next step.
func (s *absSession) Step() (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	if s.slots >= s.budget {
		s.err = protocol.ErrNoProgress
		return false, s.err
	}
	var group []tagid.ID
	if n := len(s.stack); n > 0 {
		group = s.stack[n-1]
		s.stack = s.stack[:n-1]
	}
	s.slots++
	s.clock.AddSlots(s.env.Timing, 1)

	obs := s.env.Channel.Observe(group)
	switch obs.Kind {
	case channel.Empty:
		s.m.EmptySlots++
	case channel.Singleton:
		s.m.SingletonSlots++
		// A lone report from an already-read tag (a stuck responder keying
		// up out of turn) is not a fresh identification.
		if _, dup := s.seen[obs.ID]; !dup {
			s.m.DirectIDs++
			s.seen[obs.ID] = struct{}{}
			s.env.NotifyIdentified(obs.ID, false)
		}
	case channel.Collision, channel.Captured:
		// Each colliding tag draws a random bit; the zero-subset
		// transmits in the next slot. Tags are exchangeable under the
		// random draw, so splitting by a binomial count is equivalent to
		// per-tag draws. A Captured observation is handled as a plain
		// collision: the splitting protocol has no acknowledgement for an
		// out-of-turn decode, so the captured tag re-contends like the rest.
		s.m.CollisionSlots++
		k := s.env.RNG.Binomial(len(group), 0.5)
		zero, one := group[:k], group[k:]
		s.stack = append(s.stack, one, zero)
	}
	s.m.TagTransmissions += len(group)
	s.env.NotifySlot(protocol.SlotEvent{
		Seq:          s.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(group),
		Identified:   s.m.Identified(),
	})
	return len(s.stack) == 0, nil
}

// Admit implements protocol.Session: the tags join the traversal as one
// fresh group, queued below the pending splits so the in-flight
// resolution finishes first (new arrivals reset their counters past the
// current tree in ABS).
func (s *absSession) Admit(ids []tagid.ID) {
	var group []tagid.ID
	for _, id := range ids {
		if _, identified := s.seen[id]; identified {
			continue
		}
		present := false
		for _, g := range s.stack {
			if containsID(g, id) {
				present = true
				break
			}
		}
		if present {
			continue
		}
		group = append(group, id)
		s.m.Tags++
	}
	if len(group) > 0 {
		s.stack = append([][]tagid.ID{group}, s.stack...)
	}
}

// Revoke implements protocol.Session: the tags simply stop answering, so
// they are dropped from every pending group. ABS keeps no collision
// records, so nothing else needs invalidating.
func (s *absSession) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		for i := range s.stack {
			g := s.stack[i]
			if removeID(&g, id) {
				s.stack[i] = g
				break
			}
		}
	}
}

// Metrics implements protocol.Session.
func (s *absSession) Metrics() protocol.Metrics {
	m := s.m
	m.OnAir = s.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (s *absSession) Elapsed() time.Duration { return s.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (s *absSession) Outstanding() int {
	n := 0
	for _, g := range s.stack {
		n += len(g)
	}
	return n
}

// absCheckpoint is a deep copy of an ABS session's state.
type absCheckpoint struct {
	m     protocol.Metrics
	clock air.Clock
	stack [][]tagid.ID
	seen  map[tagid.ID]struct{}

	slots, budget int
	err           error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *absCheckpoint) Protocol() string { return "ABS" }

func cloneGroups(groups [][]tagid.ID) [][]tagid.ID {
	out := make([][]tagid.ID, len(groups))
	for i, g := range groups {
		if len(g) > 0 {
			out[i] = append([]tagid.ID(nil), g...)
		}
	}
	return out
}

// Snapshot implements protocol.Session.
func (s *absSession) Snapshot() (protocol.Checkpoint, error) {
	cp := &absCheckpoint{
		m:      s.m,
		clock:  s.clock,
		stack:  cloneGroups(s.stack),
		seen:   maps.Clone(s.seen),
		slots:  s.slots,
		budget: s.budget,
		err:    s.err,
		rng:    *s.env.RNG,
	}
	if st, ok := s.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (s *absSession) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*absCheckpoint)
	if !ok {
		return protocol.ErrCheckpointMismatch
	}
	s.m = cp.m
	s.clock = cp.clock
	s.stack = cloneGroups(cp.stack)
	s.seen = maps.Clone(cp.seen)
	s.slots = cp.slots
	s.budget = cp.budget
	s.err = cp.err
	*s.env.RNG = cp.rng
	if cp.chanState != nil {
		s.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}

// aqsSession carries one AQS reading process: the current round's query
// queue plus the retained leaves the next round starts from.
type aqsSession struct {
	p     *AQS
	env   *protocol.Env
	m     protocol.Metrics
	clock air.Clock

	queue      []query
	head       int
	nextLeaves []leaf
	// leaves is the retained readable-query set, refreshed each time a
	// round completes.
	leaves []leaf
	// active lists the currently present tags in admission order; rounds
	// after the first re-read only the unidentified ones.
	active []tagid.ID
	seen   map[tagid.ID]struct{}

	slots, budget int
	err           error
}

var _ protocol.Session = (*aqsSession)(nil)

// Begin implements protocol.SessionProtocol: a reading process started
// from the root queries, exactly like Run. The retained reader state (the
// adaptive feature RunRound exposes) is seeded from a.leaves.
func (a *AQS) Begin(env *protocol.Env) protocol.Session {
	return a.begin(env, nil)
}

func (a *AQS) begin(env *protocol.Env, start []leaf) *aqsSession {
	s := &aqsSession{
		p:      a,
		env:    env,
		active: append([]tagid.ID(nil), env.Tags...),
		seen:   make(map[tagid.ID]struct{}, len(env.Tags)),
		budget: env.SlotBudget(),
		leaves: start,
	}
	env.Clock = &s.clock
	env.TraceRunStart(a.Name())
	s.m = protocol.Metrics{Tags: len(env.Tags)}
	s.beginRound(start, env.Tags)
	return s
}

// beginRound builds the round's query queue: the retained leaves if a
// previous round ran, else the root queries 0 and 1.
func (s *aqsSession) beginRound(start []leaf, tags []tagid.ID) {
	s.head = 0
	s.nextLeaves = nil
	if len(start) > 0 {
		s.queue = replayLeaves(start, tags)
		return
	}
	var zero, one []tagid.ID
	for _, id := range tags {
		if id.Bit(0) == 0 {
			zero = append(zero, id)
		} else {
			one = append(one, id)
		}
	}
	s.queue = []query{
		{depth: 1, prefix: withBit(tagid.ID{}, 0, 0), tags: zero},
		{depth: 1, prefix: withBit(tagid.ID{}, 0, 1), tags: one},
	}
}

// unidentified returns the active tags not yet read, in admission order.
func (s *aqsSession) unidentified() []tagid.ID {
	out := make([]tagid.ID, 0, len(s.active))
	for _, id := range s.active {
		if _, ok := s.seen[id]; !ok {
			out = append(out, id)
		}
	}
	return out
}

// Protocol implements protocol.Session.
func (s *aqsSession) Protocol() string { return s.p.Name() }

// Step implements protocol.Session: one query slot, breadth-first from
// the FIFO queue. When the round's queue drains the step reports done and
// the retained leaves are refreshed; the next step replays them over the
// still-unidentified population — AQS's periodic-inventory monitoring —
// so arrivals collide inside their covering leaf and are split out.
func (s *aqsSession) Step() (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	if s.head >= len(s.queue) {
		s.beginRound(s.leaves, s.unidentified())
	}
	if s.slots >= s.budget {
		s.err = protocol.ErrNoProgress
		return false, s.err
	}
	q := s.queue[s.head]
	s.head++
	s.slots++
	s.clock.AddSlots(s.env.Timing, 1)

	obs := s.env.Channel.Observe(q.tags)
	switch obs.Kind {
	case channel.Empty:
		s.m.EmptySlots++
		// Empty queries stay readable and are retained; sibling empties
		// are merged after the round so stale holes do not accumulate.
		s.nextLeaves = append(s.nextLeaves, leaf{depth: q.depth, prefix: q.prefix})
	case channel.Singleton:
		s.m.SingletonSlots++
		// A lone report from an already-read tag (a stuck responder keying
		// up out of turn) is not a fresh identification.
		if _, dup := s.seen[obs.ID]; !dup {
			s.m.DirectIDs++
			s.seen[obs.ID] = struct{}{}
			s.env.NotifyIdentified(obs.ID, false)
		}
		s.nextLeaves = append(s.nextLeaves, leaf{depth: q.depth, prefix: q.prefix, hasTag: true})
	case channel.Collision, channel.Captured:
		// A Captured observation splits like a plain collision: the query
		// tree has no acknowledgement path for an out-of-turn decode, so
		// the captured tag is re-read at a deeper prefix.
		s.m.CollisionSlots++
		if q.depth >= tagid.Bits {
			// Identical 96-bit IDs cannot be split further; with the
			// distinct populations used here this cannot happen.
			s.err = protocol.ErrNoProgress
			return false, s.err
		}
		var zero, one []tagid.ID
		for _, id := range q.tags {
			if id.Bit(q.depth) == 0 {
				zero = append(zero, id)
			} else {
				one = append(one, id)
			}
		}
		s.queue = append(s.queue,
			query{depth: q.depth + 1, prefix: withBit(q.prefix, q.depth, 0), tags: zero},
			query{depth: q.depth + 1, prefix: withBit(q.prefix, q.depth, 1), tags: one})
	}
	s.noteSlot(obs.Kind, len(q.tags))
	if s.head >= len(s.queue) {
		s.leaves = mergeEmptySiblings(s.nextLeaves)
		return true, nil
	}
	return false, nil
}

func (s *aqsSession) noteSlot(kind channel.Kind, transmitters int) {
	s.m.TagTransmissions += transmitters
	s.env.NotifySlot(protocol.SlotEvent{
		Seq:          s.m.TotalSlots() - 1,
		Kind:         kind,
		Transmitters: transmitters,
		Identified:   s.m.Identified(),
	})
}

// Admit implements protocol.Session: arrivals join the population and are
// read in the next round, colliding inside the retained leaf that covers
// their ID — exactly AQS's arrival story.
func (s *aqsSession) Admit(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := s.seen[id]; identified {
			continue
		}
		if containsID(s.active, id) {
			continue
		}
		s.active = append(s.active, id)
		s.m.Tags++
	}
}

// Revoke implements protocol.Session: departed tags stop answering, so
// they are dropped from the population and from any pending queries of
// the in-flight round. AQS keeps no collision records to invalidate.
func (s *aqsSession) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		if !removeID(&s.active, id) {
			continue
		}
		for j := s.head; j < len(s.queue); j++ {
			if removeID(&s.queue[j].tags, id) {
				break
			}
		}
	}
}

// Metrics implements protocol.Session.
func (s *aqsSession) Metrics() protocol.Metrics {
	m := s.m
	m.OnAir = s.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (s *aqsSession) Elapsed() time.Duration { return s.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (s *aqsSession) Outstanding() int {
	n := 0
	for _, id := range s.active {
		if _, ok := s.seen[id]; !ok {
			n++
		}
	}
	return n
}

// aqsCheckpoint is a deep copy of an AQS session's state.
type aqsCheckpoint struct {
	m     protocol.Metrics
	clock air.Clock

	queue      []query
	head       int
	nextLeaves []leaf
	leaves     []leaf
	active     []tagid.ID
	seen       map[tagid.ID]struct{}

	slots, budget int
	err           error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *aqsCheckpoint) Protocol() string { return "AQS" }

func cloneQueries(qs []query) []query {
	out := make([]query, len(qs))
	for i, q := range qs {
		out[i] = query{depth: q.depth, prefix: q.prefix}
		if len(q.tags) > 0 {
			out[i].tags = append([]tagid.ID(nil), q.tags...)
		}
	}
	return out
}

// Snapshot implements protocol.Session.
func (s *aqsSession) Snapshot() (protocol.Checkpoint, error) {
	cp := &aqsCheckpoint{
		m:          s.m,
		clock:      s.clock,
		queue:      cloneQueries(s.queue),
		head:       s.head,
		nextLeaves: append([]leaf(nil), s.nextLeaves...),
		leaves:     append([]leaf(nil), s.leaves...),
		active:     append([]tagid.ID(nil), s.active...),
		seen:       maps.Clone(s.seen),
		slots:      s.slots,
		budget:     s.budget,
		err:        s.err,
		rng:        *s.env.RNG,
	}
	if st, ok := s.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (s *aqsSession) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*aqsCheckpoint)
	if !ok {
		return protocol.ErrCheckpointMismatch
	}
	s.m = cp.m
	s.clock = cp.clock
	s.queue = cloneQueries(cp.queue)
	s.head = cp.head
	s.nextLeaves = append([]leaf(nil), cp.nextLeaves...)
	s.leaves = append([]leaf(nil), cp.leaves...)
	s.active = append([]tagid.ID(nil), cp.active...)
	s.seen = maps.Clone(cp.seen)
	s.slots = cp.slots
	s.budget = cp.budget
	s.err = cp.err
	*s.env.RNG = cp.rng
	if cp.chanState != nil {
		s.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}
