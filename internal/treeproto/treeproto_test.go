package treeproto

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags int, cfg channel.AbstractConfig) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(cfg, r),
		Timing:  air.ICode(),
	}
}

func TestNames(t *testing.T) {
	if NewABS().Name() != "ABS" || NewAQS().Name() != "AQS" {
		t.Fatal("wrong names")
	}
}

func TestABSIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 2, 7, 300, 5000} {
		m, err := NewABS().Run(env(uint64(n), n, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.Identified() != n || m.SingletonSlots != n {
			t.Fatalf("N=%d: identified=%d singletons=%d", n, m.Identified(), m.SingletonSlots)
		}
	}
}

func TestAQSIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 2, 7, 300, 5000} {
		m, err := NewAQS().Run(env(uint64(n)+100, n, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.Identified() != n {
			t.Fatalf("N=%d: identified=%d", n, m.Identified())
		}
	}
}

func TestEmptyPopulations(t *testing.T) {
	for _, p := range []protocol.Protocol{NewABS(), NewAQS()} {
		m, err := p.Run(env(9, 0, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if m.Identified() != 0 {
			t.Fatalf("%s identified tags in an empty field", p.Name())
		}
	}
}

func TestTreeSlotCounts(t *testing.T) {
	// Theory (and the paper's Table II): total slots ~ 2.88N; collision
	// slots (internal nodes) ~ 1.44N; empty ~ 0.44N; singleton = N.
	const n = 10000
	for _, p := range []protocol.Protocol{NewABS(), NewAQS()} {
		m, err := p.Run(env(10, n, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatal(err)
		}
		total := float64(m.TotalSlots())
		if math.Abs(total-2.88*n)/(2.88*n) > 0.05 {
			t.Errorf("%s total slots %v, want ~2.88N", p.Name(), total)
		}
		if c := float64(m.CollisionSlots); math.Abs(c-1.44*n)/(1.44*n) > 0.08 {
			t.Errorf("%s collision slots %v, want ~1.44N", p.Name(), c)
		}
	}
}

func TestTreeThroughputNearBound(t *testing.T) {
	// Both tree protocols sit near 1/(2.88 T) ~ 124 tags/s (Table I).
	const n = 4000
	for _, p := range []protocol.Protocol{NewABS(), NewAQS()} {
		m, err := p.Run(env(11, n, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatal(err)
		}
		if tput := m.Throughput(); tput < 118 || tput > 129 {
			t.Errorf("%s throughput %v outside [118, 129]", p.Name(), tput)
		}
	}
}

func TestABSCorruptionRetries(t *testing.T) {
	// Corrupted singletons re-enter splitting and are eventually read.
	m, err := NewABS().Run(env(12, 400, channel.AbstractConfig{Lambda: 2, PCorruptSingleton: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 400 {
		t.Fatalf("identified %d of 400", m.Identified())
	}
}

func TestAQSAdaptiveReRead(t *testing.T) {
	// The second round over an unchanged population replays the retained
	// leaf queries: no collisions, and many fewer slots.
	const n = 2000
	reader := NewAQS()
	e := env(13, n, channel.AbstractConfig{Lambda: 2})
	first, err := reader.RunRound(e)
	if err != nil {
		t.Fatal(err)
	}
	second, err := reader.RunRound(e)
	if err != nil {
		t.Fatal(err)
	}
	if second.Identified() != n {
		t.Fatalf("re-read identified %d", second.Identified())
	}
	if second.CollisionSlots != 0 {
		t.Fatalf("re-read had %d collisions; adaptive replay should have none", second.CollisionSlots)
	}
	if second.TotalSlots() >= first.TotalSlots() {
		t.Fatalf("re-read (%d slots) not cheaper than first round (%d)", second.TotalSlots(), first.TotalSlots())
	}
}

func TestAQSRunResetsState(t *testing.T) {
	// Run (the Monte-Carlo entry point) must not leak state between
	// unrelated populations.
	reader := NewAQS()
	if _, err := reader.Run(env(14, 500, channel.AbstractConfig{Lambda: 2})); err != nil {
		t.Fatal(err)
	}
	m, err := reader.Run(env(15, 500, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 500 {
		t.Fatalf("second independent run identified %d", m.Identified())
	}
	// Slot count of an independent run must look like a cold round.
	if float64(m.TotalSlots()) < 2.5*500 {
		t.Fatalf("second Run looks like a warm replay: %d slots", m.TotalSlots())
	}
}

func TestAQSDepartedTags(t *testing.T) {
	// Re-read with half the tags removed: retained singleton queries for
	// departed tags read empty; everyone still present is found.
	reader := NewAQS()
	e := env(16, 1000, channel.AbstractConfig{Lambda: 2})
	if _, err := reader.RunRound(e); err != nil {
		t.Fatal(err)
	}
	e2 := env(16, 1000, channel.AbstractConfig{Lambda: 2})
	e2.Tags = e.Tags[:500]
	m, err := reader.RunRound(e2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 500 {
		t.Fatalf("identified %d of the 500 remaining", m.Identified())
	}
	if m.EmptySlots < 400 {
		t.Fatalf("departed tags should show as empty retained queries (got %d empties)", m.EmptySlots)
	}
}

func TestSamePrefix(t *testing.T) {
	a := tagid.New(0b1010_1010_0000_0000, 0)
	b := tagid.New(0b1010_0101_0000_0000, 0)
	if !samePrefix(a, b, 4) {
		t.Error("first 4 bits agree")
	}
	if samePrefix(a, b, 5) {
		t.Error("bit 4 differs")
	}
	if !samePrefix(a, a, 96) {
		t.Error("identical IDs share every prefix")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(p protocol.Protocol) protocol.Metrics {
		m, err := p.Run(env(17, 800, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(NewABS()), run(NewABS()); a != b {
		t.Fatal("ABS: same seed, different metrics")
	}
	if a, b := run(NewAQS()), run(NewAQS()); a != b {
		t.Fatal("AQS: same seed, different metrics")
	}
}

func TestQueryTreeSensitiveToIDDistribution(t *testing.T) {
	// Paper, Section VII: "A query-tree protocol can have quite different
	// reading throughputs determined by the tag ID distribution." AQS over
	// clustered IDs (sequential serials sharing long prefixes) wastes
	// queries walking shared prefixes; ABS splits on random draws and is
	// distribution-independent.
	const n = 2000
	clustered := make([]tagid.ID, n)
	for i := range clustered {
		clustered[i] = tagid.FromParts(42, 7, uint64(i))
	}

	runWith := func(p protocol.Protocol, tags []tagid.ID) protocol.Metrics {
		r := rng.New(99)
		e := &protocol.Env{
			RNG:     r,
			Tags:    tags,
			Channel: channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r),
			Timing:  air.ICode(),
		}
		m, err := p.Run(e)
		if err != nil {
			t.Fatal(err)
		}
		if m.Identified() != n {
			t.Fatalf("%s identified %d of %d", p.Name(), m.Identified(), n)
		}
		return m
	}

	// A warehouse-style population: many vendor/class clusters, each a
	// sparse sampled subset (items in one reader's range). Deep shared
	// prefixes with half-empty subtrees are the expensive direction.
	sub := rng.New(2)
	sparse := make([]tagid.ID, 0, n)
	for _, i := range sub.SampleDistinct(n, 3*n) {
		sparse = append(sparse, tagid.FromParts(uint32(1000+i%6), uint16(i%37), uint64(i)))
	}

	uniform := tagid.Population(rng.New(1), n)
	aqsUniform := runWith(NewAQS(), uniform)
	aqsDense := runWith(NewAQS(), clustered)
	aqsSparse := runWith(NewAQS(), sparse)
	absUniform := runWith(NewABS(), uniform)
	absDense := runWith(NewABS(), clustered)

	// A dense sequential block packs a perfectly balanced subtree: cheaper
	// than uniform IDs. A sparse subset wastes queries on empty branches:
	// costlier. Both directions demonstrate the distribution dependence.
	if float64(aqsDense.TotalSlots()) > 0.85*float64(aqsUniform.TotalSlots()) {
		t.Errorf("AQS on a dense block should be cheaper: %d vs uniform %d slots",
			aqsDense.TotalSlots(), aqsUniform.TotalSlots())
	}
	if float64(aqsSparse.TotalSlots()) < 1.15*float64(aqsUniform.TotalSlots()) {
		t.Errorf("AQS on a sparse subset should be costlier: %d vs uniform %d slots",
			aqsSparse.TotalSlots(), aqsUniform.TotalSlots())
	}
	absRel := float64(absDense.TotalSlots()) / float64(absUniform.TotalSlots())
	if absRel < 0.9 || absRel > 1.1 {
		t.Errorf("ABS should be distribution-independent: %d vs %d slots",
			absDense.TotalSlots(), absUniform.TotalSlots())
	}
}

func TestAQSArrivalsIdentifiedOnReRead(t *testing.T) {
	// Tags that arrive between rounds collide inside their covering
	// retained leaf and must be split out and identified.
	reader := NewAQS()
	r := rng.New(30)
	all := tagid.Population(r, 1500)
	e := env(30, 0, channel.AbstractConfig{Lambda: 2})
	e.Tags = all[:1000]
	if _, err := reader.RunRound(e); err != nil {
		t.Fatal(err)
	}
	e2 := env(31, 0, channel.AbstractConfig{Lambda: 2})
	e2.Tags = all // 500 arrivals
	m, err := reader.RunRound(e2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 1500 {
		t.Fatalf("re-read identified %d of 1500 after arrivals", m.Identified())
	}
}

func TestAQSEmptyLeafMerging(t *testing.T) {
	// After a mass departure, sibling empty leaves merge so later rounds
	// do not re-probe a forest of holes one slot each.
	reader := NewAQS()
	e := env(32, 4000, channel.AbstractConfig{Lambda: 2})
	if _, err := reader.RunRound(e); err != nil {
		t.Fatal(err)
	}
	// Everyone leaves.
	gone := env(33, 0, channel.AbstractConfig{Lambda: 2})
	first, err := reader.RunRound(gone)
	if err != nil {
		t.Fatal(err)
	}
	second, err := reader.RunRound(gone)
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalSlots() < 4000 {
		t.Fatalf("departure round should probe every retained leaf (%d slots)", first.TotalSlots())
	}
	if second.TotalSlots() > 4 {
		t.Fatalf("after merging, an empty field should cost ~1 slot, used %d", second.TotalSlots())
	}
}
