// Package inventory coordinates whole-site RFID inventory: the paper's
// motivating scenario (Sections I and II-A). A reader whose range cannot
// cover the deployment region performs the reading process at several
// positions and removes the duplicate IDs of tags covered by multiple
// readings; the site inventory is the union.
package inventory

import (
	"fmt"
	"math"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Position is a reader location on the floor, in metres.
type Position struct {
	X, Y float64
}

// Item is a tagged object at a fixed location (tags are static during
// reading; Section IV-E).
type Item struct {
	ID   tagid.ID
	X, Y float64
}

// Field is the set of tagged items on a site.
type Field struct {
	items []Item
}

// NewField builds a field from explicit items.
func NewField(items []Item) *Field {
	f := &Field{items: make([]Item, len(items))}
	copy(f.items, items)
	return f
}

// RandomField places n freshly-generated tags uniformly over a side x side
// square.
func RandomField(r *rng.Source, n int, side float64) *Field {
	ids := tagid.Population(r, n)
	items := make([]Item, n)
	for i, id := range ids {
		items[i] = Item{ID: id, X: side * r.Float64(), Y: side * r.Float64()}
	}
	return &Field{items: items}
}

// Size returns the number of items on the field.
func (f *Field) Size() int { return len(f.items) }

// InRange returns the IDs of the items within radius of the position.
func (f *Field) InRange(pos Position, radius float64) []tagid.ID {
	var ids []tagid.ID
	for _, it := range f.items {
		if math.Hypot(it.X-pos.X, it.Y-pos.Y) <= radius {
			ids = append(ids, it.ID)
		}
	}
	return ids
}

// PlanGrid returns reader positions on a square grid that covers a
// side x side floor with circles of the given radius: grid pitch
// radius*sqrt(2) so every point lies within some circle.
func PlanGrid(side, radius float64) []Position {
	if side <= 0 || radius <= 0 {
		return nil
	}
	pitch := radius * math.Sqrt2
	per := int(math.Ceil(side / pitch))
	if per < 1 {
		per = 1
	}
	step := side / float64(per)
	var out []Position
	for i := 0; i < per; i++ {
		for j := 0; j < per; j++ {
			out = append(out, Position{
				X: (float64(i) + 0.5) * step,
				Y: (float64(j) + 0.5) * step,
			})
		}
	}
	return out
}

// Config parameterises a whole-site read.
type Config struct {
	// Protocol performs the per-position identification (required).
	Protocol protocol.Protocol
	// Positions are the reader locations (required, at least one).
	Positions []Position
	// Radius is the reader's communication range in metres (required).
	Radius float64
	// RNG drives the randomness (required).
	RNG *rng.Source
	// NewChannel builds the channel for each position; nil selects the
	// abstract model with Lambda.
	NewChannel func(r *rng.Source) channel.Channel
	// Lambda is the default abstract channel's ANC capability (default 2).
	Lambda int
	// Timing is the air interface (zero value selects Philips I-Code).
	Timing air.Timing
}

// PositionReport is the outcome of reading at one position.
type PositionReport struct {
	Position   Position
	InRange    int
	NewIDs     int
	Duplicates int
	Metrics    protocol.Metrics
}

// Report is the outcome of a whole-site read.
type Report struct {
	Positions []PositionReport
	// Inventory is the union of collected IDs.
	Inventory map[tagid.ID]struct{}
	// Missed counts items outside every position's range.
	Missed int
	// Duplicates counts reads of IDs already collected at an earlier
	// position (removed from the inventory union).
	Duplicates int
	// OnAir is the total air time over all positions.
	OnAir time.Duration
}

// Missing returns the expected IDs absent from the collected inventory,
// in input order — the paper's audit use case: a non-empty result flags
// administration error, vendor fraud or theft (Section I).
func (r Report) Missing(expected []tagid.ID) []tagid.ID {
	var missing []tagid.ID
	for _, id := range expected {
		if _, ok := r.Inventory[id]; !ok {
			missing = append(missing, id)
		}
	}
	return missing
}

// Coverage returns the fraction of the field collected.
func (r Report) Coverage(field *Field) float64 {
	if field.Size() == 0 {
		return 1
	}
	return float64(len(r.Inventory)) / float64(field.Size())
}

// Read performs the whole-site inventory: one protocol run per position,
// with duplicate removal across positions.
func Read(field *Field, cfg Config) (Report, error) {
	if cfg.Protocol == nil {
		return Report{}, fmt.Errorf("inventory: Config.Protocol is required")
	}
	if len(cfg.Positions) == 0 {
		return Report{}, fmt.Errorf("inventory: at least one position is required")
	}
	if cfg.Radius <= 0 {
		return Report{}, fmt.Errorf("inventory: Config.Radius must be positive")
	}
	if cfg.RNG == nil {
		return Report{}, fmt.Errorf("inventory: Config.RNG is required")
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 2
	}
	if cfg.Timing == (air.Timing{}) {
		cfg.Timing = air.ICode()
	}

	rep := Report{Inventory: make(map[tagid.ID]struct{}, field.Size())}
	for _, pos := range cfg.Positions {
		inRange := field.InRange(pos, cfg.Radius)
		pr := PositionReport{Position: pos, InRange: len(inRange)}

		chanRNG := cfg.RNG.Split()
		ch := cfg.newChannel(chanRNG)
		env := &protocol.Env{
			RNG:     cfg.RNG.Split(),
			Tags:    inRange,
			Channel: ch,
			Timing:  cfg.Timing,
			OnIdentified: func(id tagid.ID, _ bool) {
				if _, seen := rep.Inventory[id]; seen {
					pr.Duplicates++
					return
				}
				rep.Inventory[id] = struct{}{}
				pr.NewIDs++
			},
		}
		m, err := cfg.Protocol.Run(env)
		if err != nil {
			return rep, fmt.Errorf("inventory: position (%.0f,%.0f): %w", pos.X, pos.Y, err)
		}
		pr.Metrics = m
		rep.OnAir += m.OnAir
		rep.Duplicates += pr.Duplicates
		rep.Positions = append(rep.Positions, pr)
	}
	rep.Missed = field.Size() - len(rep.Inventory)
	return rep, nil
}

func (c Config) newChannel(r *rng.Source) channel.Channel {
	if c.NewChannel != nil {
		return c.NewChannel(r)
	}
	return channel.NewAbstract(channel.AbstractConfig{Lambda: c.Lambda}, r)
}
