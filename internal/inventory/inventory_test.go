package inventory

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func TestRandomField(t *testing.T) {
	r := rng.New(1)
	f := RandomField(r, 500, 100)
	if f.Size() != 500 {
		t.Fatalf("size %d", f.Size())
	}
	for _, it := range f.items {
		if it.X < 0 || it.X > 100 || it.Y < 0 || it.Y > 100 {
			t.Fatalf("item outside the floor: %+v", it)
		}
	}
}

func TestInRange(t *testing.T) {
	f := NewField([]Item{
		{ID: tagid.New(1, 1), X: 0, Y: 0},
		{ID: tagid.New(2, 2), X: 3, Y: 4}, // distance 5
		{ID: tagid.New(3, 3), X: 30, Y: 40},
	})
	got := f.InRange(Position{0, 0}, 5)
	if len(got) != 2 {
		t.Fatalf("InRange found %d items, want 2 (boundary inclusive)", len(got))
	}
}

func TestPlanGridCoversFloor(t *testing.T) {
	const side, radius = 100.0, 30.0
	positions := PlanGrid(side, radius)
	if len(positions) == 0 {
		t.Fatal("no positions planned")
	}
	// Every floor point (sampled on a fine grid) must be within radius of
	// some position.
	for x := 0.0; x <= side; x += 5 {
		for y := 0.0; y <= side; y += 5 {
			covered := false
			for _, p := range positions {
				if math.Hypot(p.X-x, p.Y-y) <= radius {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("point (%v,%v) not covered by %d positions", x, y, len(positions))
			}
		}
	}
}

func TestPlanGridDegenerate(t *testing.T) {
	if PlanGrid(0, 10) != nil || PlanGrid(10, 0) != nil {
		t.Fatal("degenerate plans should be nil")
	}
	if got := PlanGrid(10, 100); len(got) != 1 {
		t.Fatalf("huge radius should need a single position, got %d", len(got))
	}
}

func TestReadFullCoverage(t *testing.T) {
	r := rng.New(2)
	field := RandomField(r, 2000, 100)
	rep, err := Read(field, Config{
		Protocol:  fcat.New(fcat.Config{Lambda: 2}),
		Positions: PlanGrid(100, 45),
		Radius:    45,
		RNG:       r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage(field) != 1 {
		t.Fatalf("coverage %.3f with a covering plan (missed %d)", rep.Coverage(field), rep.Missed)
	}
	if rep.Duplicates == 0 {
		t.Fatal("overlapping positions must produce duplicate reads")
	}
	if rep.OnAir <= 0 {
		t.Fatal("no air time accumulated")
	}
	// Per-position accounting must tie out.
	totalNew := 0
	for _, pr := range rep.Positions {
		if pr.NewIDs+pr.Duplicates != pr.Metrics.Identified() {
			t.Fatalf("position accounting inconsistent: %+v", pr)
		}
		totalNew += pr.NewIDs
	}
	if totalNew != len(rep.Inventory) {
		t.Fatalf("new-ID sum %d != inventory %d", totalNew, len(rep.Inventory))
	}
}

func TestReadPartialCoverage(t *testing.T) {
	r := rng.New(3)
	field := RandomField(r, 1000, 100)
	rep, err := Read(field, Config{
		Protocol:  fcat.New(fcat.Config{Lambda: 2}),
		Positions: []Position{{25, 25}},
		Radius:    30,
		RNG:       r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missed == 0 {
		t.Fatal("one corner position cannot cover the floor")
	}
	if got := rep.Coverage(field); got <= 0 || got >= 1 {
		t.Fatalf("coverage %.3f should be partial", got)
	}
}

func TestReadValidation(t *testing.T) {
	r := rng.New(4)
	field := RandomField(r, 10, 10)
	proto := fcat.New(fcat.Config{Lambda: 2})
	cases := []Config{
		{Positions: []Position{{0, 0}}, Radius: 5, RNG: r},          // no protocol
		{Protocol: proto, Radius: 5, RNG: r},                        // no positions
		{Protocol: proto, Positions: []Position{{0, 0}}, RNG: r},    // no radius
		{Protocol: proto, Positions: []Position{{0, 0}}, Radius: 5}, // no rng
	}
	for i, cfg := range cases {
		if _, err := Read(field, cfg); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestCoverageEmptyField(t *testing.T) {
	f := NewField(nil)
	if (Report{}).Coverage(f) != 1 {
		t.Fatal("empty field is trivially covered")
	}
}

func TestReadPropagatesProtocolErrors(t *testing.T) {
	r := rng.New(5)
	field := RandomField(r, 50, 10)
	_, err := Read(field, Config{
		Protocol:  fcat.New(fcat.Config{Lambda: 2}),
		Positions: []Position{{5, 5}},
		Radius:    20,
		RNG:       r,
		NewChannel: func(cr *rng.Source) channel.Channel {
			// Every singleton corrupted: the read can never complete.
			return channel.NewAbstract(channel.AbstractConfig{
				Lambda: 2, PCorruptSingleton: 1,
			}, cr)
		},
	})
	if err == nil {
		t.Fatal("a hopeless channel should surface the protocol error")
	}
}
