package record

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// newMix produces an abstract collision record over the given tags.
func newMix(t *testing.T, lambda int, tags ...tagid.ID) channel.Mixed {
	t.Helper()
	ch := channel.NewAbstract(channel.AbstractConfig{Lambda: lambda}, rng.New(99))
	obs := ch.Observe(tags)
	if obs.Kind != channel.Collision {
		t.Fatalf("expected a collision, got %v", obs.Kind)
	}
	return obs.Mix
}

func pop(n int) []tagid.ID { return tagid.Population(rng.New(7), n) }

func TestSimpleResolution(t *testing.T) {
	tags := pop(2)
	s := NewStore()
	s.Add(5, newMix(t, 2, tags...), tags)
	if s.Active() != 1 || s.Total() != 1 {
		t.Fatalf("Active=%d Total=%d", s.Active(), s.Total())
	}

	got := s.OnIdentified(tags[0])
	if len(got) != 1 || got[0].ID != tags[1] || got[0].Slot != 5 {
		t.Fatalf("OnIdentified = %v", got)
	}
	if s.Active() != 0 {
		t.Fatalf("Active=%d after resolution", s.Active())
	}
}

func TestCascadeChain(t *testing.T) {
	// Records {A,B}@1 and {B,C}@2: identifying A resolves B, which
	// resolves C — the chain of Fig. 1 in the paper.
	tags := pop(3)
	a, b, c := tags[0], tags[1], tags[2]
	s := NewStore()
	s.Add(1, newMix(t, 2, a, b), []tagid.ID{a, b})
	s.Add(2, newMix(t, 2, b, c), []tagid.ID{b, c})

	got := s.OnIdentified(a)
	if len(got) != 2 {
		t.Fatalf("cascade yielded %d IDs, want 2", len(got))
	}
	if got[0].ID != b || got[0].Slot != 1 {
		t.Errorf("first recovery %v, want B@1", got[0])
	}
	if got[1].ID != c || got[1].Slot != 2 {
		t.Errorf("second recovery %v, want C@2", got[1])
	}
}

func TestNoDoubleYield(t *testing.T) {
	// Records {A,C}@1 and {B,C}@2. Identifying B resolves C from record 2,
	// and the cascade propagates C into record 1, which then yields A —
	// every ID exactly once. A later (redundant) identification of A must
	// recover nothing: both records are spent and C is already known.
	tags := pop(3)
	a, b, c := tags[0], tags[1], tags[2]
	s := NewStore()
	s.Add(1, newMix(t, 2, a, c), []tagid.ID{a, c})
	s.Add(2, newMix(t, 2, b, c), []tagid.ID{b, c})

	first := s.OnIdentified(b)
	if len(first) != 2 || first[0].ID != c || first[0].Slot != 2 || first[1].ID != a || first[1].Slot != 1 {
		t.Fatalf("first cascade = %v, want [C@2, A@1]", first)
	}
	if second := s.OnIdentified(a); len(second) != 0 {
		t.Fatalf("second cascade yielded %v; nothing must be recovered twice", second)
	}
	if s.Active() != 0 {
		t.Fatalf("%d records still active", s.Active())
	}
}

func TestUnresolvableMultiplicity(t *testing.T) {
	// A 3-collision under a lambda=2 decoder never resolves.
	tags := pop(3)
	s := NewStore()
	s.Add(1, newMix(t, 2, tags...), tags)
	if got := s.OnIdentified(tags[0]); len(got) != 0 {
		t.Fatalf("yielded %v from an unresolvable record", got)
	}
	if got := s.OnIdentified(tags[1]); len(got) != 0 {
		t.Fatalf("yielded %v from an unresolvable record", got)
	}
	if s.Active() != 1 {
		t.Fatalf("unresolvable record left the store")
	}
}

func TestThreeCollisionWithLambda3(t *testing.T) {
	tags := pop(3)
	s := NewStore()
	s.Add(9, newMix(t, 3, tags...), tags)
	if got := s.OnIdentified(tags[0]); len(got) != 0 {
		t.Fatal("resolved with two unknowns")
	}
	got := s.OnIdentified(tags[1])
	if len(got) != 1 || got[0].ID != tags[2] || got[0].Slot != 9 {
		t.Fatalf("got %v", got)
	}
}

func TestIdentifyingNonMemberIsNoOp(t *testing.T) {
	tags := pop(3)
	s := NewStore()
	s.Add(1, newMix(t, 2, tags[0], tags[1]), []tagid.ID{tags[0], tags[1]})
	if got := s.OnIdentified(tags[2]); len(got) != 0 {
		t.Fatalf("non-member identification yielded %v", got)
	}
	if s.Active() != 1 {
		t.Fatal("record count changed")
	}
}

func TestWideCascade(t *testing.T) {
	// A hub tag appearing in many records unlocks all of them at once.
	tags := pop(6)
	hub := tags[0]
	s := NewStore()
	for i, other := range tags[1:] {
		s.Add(uint64(i), newMix(t, 2, hub, other), []tagid.ID{hub, other})
	}
	got := s.OnIdentified(hub)
	if len(got) != 5 {
		t.Fatalf("hub cascade yielded %d, want 5", len(got))
	}
	seen := make(map[tagid.ID]bool)
	for _, res := range got {
		if seen[res.ID] {
			t.Fatalf("duplicate recovery of %v", res.ID)
		}
		seen[res.ID] = true
	}
	if s.Active() != 0 {
		t.Fatalf("%d records left active", s.Active())
	}
}

func TestEmptyStore(t *testing.T) {
	s := NewStore()
	if got := s.OnIdentified(pop(1)[0]); len(got) != 0 {
		t.Fatal("empty store yielded recoveries")
	}
	if s.Active() != 0 || s.Total() != 0 {
		t.Fatal("empty store has nonzero counts")
	}
}

func TestTwinRecordsYieldOnce(t *testing.T) {
	// Regression (found by the agentsim differential test): two records
	// over the same pair, {A,B}@1 and {A,B}@2, both strip to B when A is
	// learned; B must be yielded exactly once and both records spent.
	tags := pop(2)
	a, b := tags[0], tags[1]
	s := NewStore()
	s.Add(1, newMix(t, 2, a, b), []tagid.ID{a, b})
	s.Add(2, newMix(t, 2, a, b), []tagid.ID{a, b})

	got := s.OnIdentified(a)
	if len(got) != 1 || got[0].ID != b {
		t.Fatalf("cascade yielded %v, want B exactly once", got)
	}
	if s.Active() != 0 {
		t.Fatalf("%d records still active; both twins are spent", s.Active())
	}
}
