// Package record implements the reader side of collision-aware tag
// identification: the store of recorded collision slots and the cascading
// resolution procedure of the paper's Section IV-B pseudo-code.
//
// Whenever the reader learns a tag ID (from a singleton slot or from a
// previous resolution), it revisits every stored collision record the tag
// participated in, subtracts the tag's signal, and attempts to decode the
// residual. Each successful decode yields a new ID which is fed back into
// the same procedure, so one singleton can unlock a whole chain of records.
package record

import (
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Resolved reports one ID recovered from a stored collision record.
type Resolved struct {
	// ID is the recovered tag identifier.
	ID tagid.ID
	// Slot is the index of the slot whose record resolved; FCAT acknowledges
	// the recovery by broadcasting this index (Section V-A).
	Slot uint64
}

type entry struct {
	slot     uint64
	mix      channel.Mixed
	resolved bool
}

// Store holds the reader's outstanding collision records, indexed by
// participant so the resolution cascade touches only relevant records.
//
// Under the real protocol the reader finds the records a newly-learned tag
// participated in by re-evaluating the report hash H(ID|j) against each
// record's advertised threshold; because the hash also decided the original
// transmissions, that scan selects exactly the records the tag is in. The
// member index used here is therefore outcome-identical, just faster.
type Store struct {
	// Tracer, when non-nil, receives record-created, cascade-step and
	// record-resolved events as the store works (see internal/obs).
	// Protocols point it at their run's Env.Tracer.
	Tracer obs.Tracer

	byMember map[tagid.ID][]*entry
	// known records every ID the reader has learned. A tag whose
	// acknowledgement was lost keeps transmitting (Section IV-E) and lands
	// in new collision records; its signal is already known, so it is
	// subtracted on arrival.
	known  map[tagid.ID]struct{}
	active int
	total  int
}

// NewStore returns an empty record store.
func NewStore() *Store {
	return &Store{
		byMember: make(map[tagid.ID][]*entry),
		known:    make(map[tagid.ID]struct{}),
	}
}

// Add stores the mixed signal of a collision slot. members lists the tags
// that transmitted in the slot (the ground truth that the report hash
// reconstructs for the reader). Signals of members the reader has already
// identified are subtracted immediately, which can resolve the record on
// the spot; any IDs recovered this way are returned (including cascades).
func (s *Store) Add(slot uint64, mix channel.Mixed, members []tagid.ID) []Resolved {
	e := &entry{slot: slot, mix: mix}
	unknown := 0
	for _, id := range members {
		if _, ok := s.known[id]; ok {
			e.mix.Subtract(id)
			continue
		}
		s.byMember[id] = append(s.byMember[id], e)
		unknown++
	}
	s.total++
	if s.Tracer != nil {
		s.Tracer.RecordCreated(obs.RecordEvent{Slot: slot, Multiplicity: len(members), Unknown: unknown})
	}
	if y, ok := e.mix.Decode(); ok {
		// All but one member were already known: the record resolves as it
		// is stored.
		e.resolved = true
		if s.Tracer != nil {
			s.Tracer.RecordResolved(obs.ResolveEvent{Slot: slot, ID: y})
		}
		out := []Resolved{{ID: y, Slot: slot}}
		return append(out, s.OnIdentified(y)...)
	}
	if unknown == 0 {
		// Every member was a retransmitting known tag; nothing new here.
		e.resolved = true
		return nil
	}
	s.active++
	return nil
}

// MarkKnown tells a fresh store that the reader already knows this ID (a
// retransmitter from an earlier frame whose acknowledgement was lost), so
// its signal is subtracted from any record it joins.
func (s *Store) MarkKnown(id tagid.ID) {
	s.known[id] = struct{}{}
}

// Active returns the number of unresolved records currently held.
func (s *Store) Active() int { return s.active }

// Total returns the number of records ever stored.
func (s *Store) Total() int { return s.total }

// OnIdentified tells the store that the reader has learned id, and runs the
// resolution cascade: the tag's signal is subtracted from every record it
// participated in, fully-determined records are decoded, and each recovered
// ID is processed the same way. It returns the recovered IDs with the slots
// whose records yielded them, in recovery order.
func (s *Store) OnIdentified(id tagid.ID) []Resolved {
	var out []Resolved
	queue := []cascadeItem{{id: id}}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		s.known[x.id] = struct{}{}
		entries := s.byMember[x.id]
		delete(s.byMember, x.id)
		if s.Tracer != nil && len(entries) > 0 {
			s.Tracer.CascadeStep(obs.CascadeEvent{ID: x.id, Records: len(entries), Depth: x.depth})
		}
		for _, e := range entries {
			if e.resolved {
				continue
			}
			e.mix.Subtract(x.id)
			y, ok := e.mix.Decode()
			if !ok {
				continue
			}
			e.resolved = true
			s.active--
			if _, dup := s.known[y]; dup {
				// The residual is a signal the reader already knows: two
				// records in one cascade can strip down to the same tag
				// (e.g. {A,B}@i and {A,B}@j when A is learned). The second
				// record is spent, but yields nothing new.
				if s.Tracer != nil {
					s.Tracer.RecordResolved(obs.ResolveEvent{
						Slot: e.slot, ID: y, Trigger: x.id, Depth: x.depth + 1, Dup: true,
					})
				}
				continue
			}
			s.known[y] = struct{}{}
			if s.Tracer != nil {
				s.Tracer.RecordResolved(obs.ResolveEvent{
					Slot: e.slot, ID: y, Trigger: x.id, Depth: x.depth + 1,
				})
			}
			out = append(out, Resolved{ID: y, Slot: e.slot})
			queue = append(queue, cascadeItem{id: y, depth: x.depth + 1})
		}
	}
	return out
}

// cascadeItem is one pending step of the resolution cascade: a
// newly-learned ID and the cascade depth it was learned at.
type cascadeItem struct {
	id    tagid.ID
	depth int
}
