// Package record implements the reader side of collision-aware tag
// identification: the store of recorded collision slots and the cascading
// resolution procedure of the paper's Section IV-B pseudo-code.
//
// Whenever the reader learns a tag ID (from a singleton slot or from a
// previous resolution), it revisits every stored collision record the tag
// participated in, subtracts the tag's signal, and attempts to decode the
// residual. Each successful decode yields a new ID which is fed back into
// the same procedure, so one singleton can unlock a whole chain of records.
package record

import (
	"errors"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Resolved reports one ID recovered from a stored collision record.
type Resolved struct {
	// ID is the recovered tag identifier.
	ID tagid.ID
	// Slot is the index of the slot whose record resolved; FCAT acknowledges
	// the recovery by broadcasting this index (Section V-A).
	Slot uint64
}

type entry struct {
	slot     uint64
	mix      channel.Mixed
	resolved bool
}

// member is one node of the member index: the outstanding records an
// unidentified tag participates in. Nodes are keyed by the tag's 64-bit
// report-hash prefix (tagid.HashPrefix), which gives the index map a
// word-sized key; the exact ID is kept on the node and the next pointer
// chains the astronomically unlikely prefix collision, so behaviour is
// exact regardless. The first two records are stored inline because in
// steady state a tag is outstanding in at most a couple of records; only
// deeper histories (heavy acknowledgement loss) spill to a slice.
type member struct {
	id     tagid.ID
	e0, e1 *entry
	more   []*entry
	n      int
	next   *member
}

func (m *member) add(e *entry) {
	switch m.n {
	case 0:
		m.e0 = e
	case 1:
		m.e1 = e
	default:
		m.more = append(m.more, e)
	}
	m.n++
}

// record returns the i'th record in insertion order.
func (m *member) record(i int) *entry {
	switch i {
	case 0:
		return m.e0
	case 1:
		return m.e1
	default:
		return m.more[i-2]
	}
}

// entryChunk and memberNodeChunk size the store's arena blocks. Entries and
// member nodes live until the run ends, so they are carved out of fixed-cap
// chunks (never grown in place — handed-out pointers must stay valid) and
// the per-collision allocation cost amortises to a fraction of a make.
const (
	entryChunk      = 256
	memberNodeChunk = 256
)

// Store holds the reader's outstanding collision records, indexed by
// participant so the resolution cascade touches only relevant records.
//
// Under the real protocol the reader finds the records a newly-learned tag
// participated in by re-evaluating the report hash H(ID|j) against each
// record's advertised threshold; because the hash also decided the original
// transmissions, that scan selects exactly the records the tag is in. The
// member index used here is therefore outcome-identical, just faster.
type Store struct {
	// Tracer, when non-nil, receives record-created, cascade-step and
	// record-resolved events as the store works (see internal/obs).
	// Protocols point it at their run's Env.Tracer.
	Tracer obs.Tracer

	// Quarantine arms the store's poisoned-record defenses, used by the
	// collision-aware protocols when running under fault injection
	// (protocol.Env.Hardened):
	//
	//   - CRC-validated cascade decodes: a decode that yields an ID failing
	//     its CRC is a poisoned record (imperfect cancellation propagated
	//     garbage); the record is quarantined instead of admitting a
	//     phantom ID into the inventory.
	//   - Residual-energy guard: a record whose residual is down to one
	//     constituent but still refuses to decode is permanently
	//     unrecoverable — decoding is deterministic, retrying never helps —
	//     and is evicted rather than retried forever.
	//
	// Either way the record's surviving unidentified members keep their
	// active-tag status and are simply re-queried in later slots (their
	// acknowledgements never arrived), so a quarantine degrades to plain
	// re-query instead of corrupting the store. Off by default: fault-free
	// runs keep their historical, bit-reproducible behaviour.
	Quarantine bool

	// DropAbove, when positive, makes Add discard any record whose
	// multiplicity exceeds it without indexing its members: the entry is
	// never stored, its recording is released immediately in streaming
	// mode, and no cascade will ever visit it. This is the roster-aware
	// session's cheap-cascade lever — a pseudo-random ALOHA reader replays
	// every tag's slot choices, so it knows a slot's exact multiplicity up
	// front and can prove a record beyond the decode capability (k > M, or
	// k > M+1 with capture) is dead weight. Only set it to a bound at or
	// above the channel's decode order; 0 (the default) disables pruning
	// and preserves historical behaviour bit for bit.
	DropAbove int

	byMember map[tagid.HashPrefix]*member
	// known records every ID the reader has learned, keyed by hash prefix
	// with the exact ID as the value. A tag whose acknowledgement was lost
	// keeps transmitting (Section IV-E) and lands in new collision records;
	// its signal is already known, so it is subtracted on arrival.
	known map[tagid.HashPrefix]tagid.ID
	// knownOverflow holds further IDs sharing a prefix already in known.
	// It stays nil until the first 64-bit prefix collision among learned
	// IDs, i.e. in practice forever.
	knownOverflow map[tagid.ID]struct{}

	// revoked records tags that left the field unidentified (dynamic
	// workloads; see Revoke). A cascade that strips a record down to a
	// revoked tag marks the record spent instead of yielding the ID: the
	// tag is gone, so the read would be stale. nil until the first Revoke,
	// so batch runs pay nothing.
	revoked map[tagid.ID]struct{}

	active      int
	total       int
	quarantined int
	dropped     int

	// releaser, when armed via SetReleaser, receives each recording the
	// moment its record is marked resolved (after any tracer event that
	// inspects it), so the channel can recycle the buffers behind it —
	// the record store's half of the streaming campaign mode. cloned
	// sticky-disables releasing once a checkpoint clone shares this
	// store's recordings: a clone's unresolved records alias the same
	// waveform buffers, so recycling them would corrupt the checkpoint.
	releaser channel.Releaser
	cloned   bool

	// Arena chunks and reusable cascade buffers. The queue and out slices
	// back every cascade, so the slice returned by Add/OnIdentified is only
	// valid until the next call on the store.
	entries []entry
	nodes   []member
	queue   []cascadeItem
	out     []Resolved

	// Filled arena chunks are parked on the used lists instead of being
	// dropped, and Reset recycles them through the spare lists, so a store
	// reused across campaign repetitions (protocol.Scratch) reaches a
	// steady state with no arena allocation at all.
	usedEntries, spareEntries [][]entry
	usedNodes, spareNodes     [][]member
}

// NewStore returns an empty record store.
func NewStore() *Store {
	return &Store{
		byMember: make(map[tagid.HashPrefix]*member),
		known:    make(map[tagid.HashPrefix]tagid.ID),
	}
}

// SetReleaser arms streaming-mode record spilling: every recording whose
// record resolves (yields its ID, proves spent, or is quarantined) is
// handed back to the channel for buffer reuse. Must be set before the
// first Add; releasing stops permanently once Clone is called.
func (s *Store) SetReleaser(r channel.Releaser) {
	s.releaser = r
}

// release recycles a resolved entry's recording. Callers invoke it only
// after every tracer event that reads the recording has fired.
func (s *Store) release(e *entry) {
	if s.releaser == nil || s.cloned || e.mix == nil {
		return
	}
	s.releaser.ReleaseMixed(e.mix)
	// Drop the reference: the buffers behind it now belong to the channel
	// again, and any stray decode of a released record must fail loudly
	// rather than read recycled memory.
	e.mix = nil
}

func (s *Store) newEntry(slot uint64, mix channel.Mixed) *entry {
	if len(s.entries) == cap(s.entries) {
		if cap(s.entries) != 0 {
			s.usedEntries = append(s.usedEntries, s.entries)
		}
		if n := len(s.spareEntries); n > 0 {
			s.entries = s.spareEntries[n-1]
			s.spareEntries = s.spareEntries[:n-1]
		} else {
			s.entries = make([]entry, 0, entryChunk)
		}
	}
	s.entries = append(s.entries, entry{slot: slot, mix: mix})
	return &s.entries[len(s.entries)-1]
}

func (s *Store) isKnown(pre tagid.HashPrefix, id tagid.ID) bool {
	v, ok := s.known[pre]
	if !ok {
		return false
	}
	if v == id {
		return true
	}
	if s.knownOverflow == nil {
		return false
	}
	_, ok = s.knownOverflow[id]
	return ok
}

func (s *Store) markKnown(pre tagid.HashPrefix, id tagid.ID) {
	v, ok := s.known[pre]
	if !ok {
		s.known[pre] = id
		return
	}
	if v == id {
		return
	}
	if s.knownOverflow == nil {
		s.knownOverflow = make(map[tagid.ID]struct{})
	}
	s.knownOverflow[id] = struct{}{}
}

// memberFor returns the index node for id, creating it if absent.
func (s *Store) memberFor(pre tagid.HashPrefix, id tagid.ID) *member {
	for m := s.byMember[pre]; m != nil; m = m.next {
		if m.id == id {
			return m
		}
	}
	if len(s.nodes) == cap(s.nodes) {
		if cap(s.nodes) != 0 {
			s.usedNodes = append(s.usedNodes, s.nodes)
		}
		if n := len(s.spareNodes); n > 0 {
			s.nodes = s.spareNodes[n-1]
			s.spareNodes = s.spareNodes[:n-1]
		} else {
			s.nodes = make([]member, 0, memberNodeChunk)
		}
	}
	s.nodes = append(s.nodes, member{id: id, next: s.byMember[pre]})
	m := &s.nodes[len(s.nodes)-1]
	s.byMember[pre] = m
	return m
}

// takeMember unlinks and returns the index node for id, or nil.
func (s *Store) takeMember(pre tagid.HashPrefix, id tagid.ID) *member {
	m := s.byMember[pre]
	if m == nil {
		return nil
	}
	if m.id == id {
		if m.next == nil {
			delete(s.byMember, pre)
		} else {
			s.byMember[pre] = m.next
		}
		return m
	}
	for prev := m; prev.next != nil; prev = prev.next {
		if prev.next.id == id {
			m = prev.next
			prev.next = m.next
			return m
		}
	}
	return nil
}

// Add stores the mixed signal of a collision slot. members lists the tags
// that transmitted in the slot (the ground truth that the report hash
// reconstructs for the reader). Signals of members the reader has already
// identified are subtracted immediately, which can resolve the record on
// the spot; any IDs recovered this way are returned (including cascades).
// The returned slice is reused: it is valid until the next Add or
// OnIdentified call on this store.
func (s *Store) Add(slot uint64, mix channel.Mixed, members []tagid.ID) []Resolved {
	if s.DropAbove > 0 && len(members) > s.DropAbove {
		// Provably-dead record: its multiplicity exceeds the capability
		// bound the caller vouched for, so no sequence of subtractions can
		// ever decode it. Skip the member index entirely and hand the
		// recording straight back to the channel.
		s.total++
		s.dropped++
		if s.Tracer != nil {
			s.Tracer.RecordQuarantined(obs.QuarantineEvent{
				Slot: slot, Reason: "order", Members: len(members),
			})
		}
		if s.releaser != nil && !s.cloned && mix != nil {
			s.releaser.ReleaseMixed(mix)
		}
		return nil
	}
	e := s.newEntry(slot, mix)
	unknown := 0
	for _, id := range members {
		pre := id.HashPrefix()
		if s.isKnown(pre, id) {
			e.mix.Subtract(id)
			continue
		}
		s.memberFor(pre, id).add(e)
		unknown++
	}
	s.total++
	if s.Tracer != nil {
		s.Tracer.RecordCreated(obs.RecordEvent{Slot: slot, Multiplicity: len(members), Unknown: unknown})
	}
	if y, ok := e.mix.Decode(); ok {
		if s.Quarantine && !y.Valid() {
			// Poisoned decode: the residual fails its CRC. Quarantine the
			// record; its unidentified member keeps retransmitting and is
			// re-read from a clean slot later.
			s.discard(e, "crc")
			return nil
		}
		if s.isRevoked(y) || s.isKnown(y.HashPrefix(), y) {
			// The residual names a departed tag (stale read) or one the
			// reader already knows (possible when the member list carries a
			// duplicated ID, so the duplicate's subtraction was a no-op).
			// The record is spent, but yields nothing — the same guards the
			// cascade applies.
			e.resolved = true
			if s.Tracer != nil {
				s.Tracer.RecordResolved(obs.ResolveEvent{Slot: slot, ID: y, Dup: true})
			}
			s.release(e)
			return nil
		}
		// All but one member were already known: the record resolves as it
		// is stored.
		e.resolved = true
		if s.Tracer != nil {
			s.Tracer.RecordResolved(obs.ResolveEvent{Slot: slot, ID: y})
		}
		s.release(e)
		s.out = append(s.out[:0], Resolved{ID: y, Slot: slot})
		s.queue = append(s.queue[:0], cascadeItem{id: y, pre: y.HashPrefix()})
		s.cascade()
		return s.out
	}
	if unknown == 0 {
		// Every member was a retransmitting known tag; nothing new here.
		e.resolved = true
		s.release(e)
		return nil
	}
	if s.Quarantine {
		if rem, ok := channel.Remaining(e.mix); ok && rem <= 1 {
			// Residual-energy guard: one constituent left and the decode
			// still failed, so the record can never resolve (decoding is
			// deterministic). Do not even hold it.
			s.discard(e, "residual")
			return nil
		}
	}
	s.active++
	return nil
}

// Reset rewinds the store for a new run, retaining its arena chunks, map
// bucket storage and cascade buffers. Equivalent to NewStore() in every
// observable way: all counters, indexes, defenses and the streaming
// releaser are cleared; chunks are zeroed so no recording from the
// previous run stays pinned.
func (s *Store) Reset() {
	s.Tracer = nil
	s.Quarantine = false
	s.DropAbove = 0
	if s.byMember == nil {
		s.byMember = make(map[tagid.HashPrefix]*member)
	} else {
		clear(s.byMember)
	}
	if s.known == nil {
		s.known = make(map[tagid.HashPrefix]tagid.ID)
	} else {
		clear(s.known)
	}
	s.knownOverflow = nil
	s.revoked = nil
	s.active, s.total, s.quarantined, s.dropped = 0, 0, 0, 0
	s.releaser = nil
	s.cloned = false
	s.queue = s.queue[:0]
	s.out = s.out[:0]

	if cap(s.entries) != 0 {
		s.usedEntries = append(s.usedEntries, s.entries)
	}
	s.entries = nil
	for _, c := range s.usedEntries {
		clear(c[:cap(c)])
		s.spareEntries = append(s.spareEntries, c[:0])
	}
	s.usedEntries = s.usedEntries[:0]

	if cap(s.nodes) != 0 {
		s.usedNodes = append(s.usedNodes, s.nodes)
	}
	s.nodes = nil
	for _, c := range s.usedNodes {
		clear(c[:cap(c)])
		s.spareNodes = append(s.spareNodes, c[:0])
	}
	s.usedNodes = s.usedNodes[:0]
}

// discard quarantines a freshly stored, never-counted record: it is marked
// resolved so no cascade revisits it, and its surviving members fall back
// to plain re-query.
func (s *Store) discard(e *entry, reason string) {
	e.resolved = true
	s.quarantined++
	if s.Tracer != nil {
		s.Tracer.RecordQuarantined(obs.QuarantineEvent{
			Slot: e.slot, Reason: reason, Members: e.mix.Multiplicity(),
		})
	}
	s.release(e)
}

// Quarantined returns the number of records the store has quarantined.
func (s *Store) Quarantined() int { return s.quarantined }

// Dropped returns the number of records discarded by the DropAbove bound.
func (s *Store) Dropped() int { return s.dropped }

// Revoke removes a departed tag from the store's outstanding bookkeeping:
// its member-index node is unlinked — invalidating every pending
// collision-record membership, so no cascade will ever be started for the
// tag — and the ID is remembered so that a record whose residual strips
// down to the departed tag is marked spent rather than yielding a stale
// identification. Records the tag participated in remain stored: their
// other members can still be recovered by subtracting signals the reader
// does know. Revoking an identified or unknown tag only marks the ID.
func (s *Store) Revoke(id tagid.ID) {
	if node := s.takeMember(id.HashPrefix(), id); node != nil {
		node.e0, node.e1, node.more = nil, nil, nil
	}
	if s.revoked == nil {
		s.revoked = make(map[tagid.ID]struct{})
	}
	s.revoked[id] = struct{}{}
}

// Readmit clears a tag's revoked mark when it re-enters the field, so its
// future transmissions decode normally again. Memberships severed by the
// earlier Revoke stay severed — the reader discarded that bookkeeping when
// the tag left.
func (s *Store) Readmit(id tagid.ID) {
	if s.revoked != nil {
		delete(s.revoked, id)
	}
}

// isRevoked reports whether the tag has departed unidentified.
func (s *Store) isRevoked(id tagid.ID) bool {
	if s.revoked == nil {
		return false
	}
	_, ok := s.revoked[id]
	return ok
}

// MarkKnown tells a fresh store that the reader already knows this ID (a
// retransmitter from an earlier frame whose acknowledgement was lost), so
// its signal is subtracted from any record it joins.
func (s *Store) MarkKnown(id tagid.ID) {
	s.markKnown(id.HashPrefix(), id)
}

// Active returns the number of unresolved records currently held.
func (s *Store) Active() int { return s.active }

// Total returns the number of records ever stored.
func (s *Store) Total() int { return s.total }

// OnIdentified tells the store that the reader has learned id, and runs the
// resolution cascade: the tag's signal is subtracted from every record it
// participated in, fully-determined records are decoded, and each recovered
// ID is processed the same way. It returns the recovered IDs with the slots
// whose records yielded them, in recovery order. The returned slice is
// reused: it is valid until the next Add or OnIdentified call on this
// store.
func (s *Store) OnIdentified(id tagid.ID) []Resolved {
	s.out = s.out[:0]
	s.queue = append(s.queue[:0], cascadeItem{id: id, pre: id.HashPrefix()})
	s.cascade()
	return s.out
}

// cascade drains s.queue breadth-first, appending recoveries to s.out.
func (s *Store) cascade() {
	for head := 0; head < len(s.queue); head++ {
		x := s.queue[head]
		s.markKnown(x.pre, x.id)
		node := s.takeMember(x.pre, x.id)
		if node == nil {
			continue
		}
		if s.Tracer != nil {
			s.Tracer.CascadeStep(obs.CascadeEvent{ID: x.id, Records: node.n, Depth: x.depth})
		}
		for i := 0; i < node.n; i++ {
			e := node.record(i)
			if e.resolved {
				continue
			}
			e.mix.Subtract(x.id)
			y, ok := e.mix.Decode()
			if !ok {
				if s.Quarantine {
					if rem, rok := channel.Remaining(e.mix); rok && rem <= 1 {
						// Residual-energy guard: the subtraction left a single
						// constituent that still refuses to decode — the
						// record is permanently unrecoverable. Evict it so the
						// cascade never revisits it; its last member stays
						// active and falls back to plain re-query.
						s.evict(e, "residual")
					}
				}
				continue
			}
			if s.Quarantine && !y.Valid() {
				// CRC-validated cascade decode: a residual failing its CRC is
				// a poisoned record; quarantine it instead of admitting a
				// phantom ID into the inventory.
				s.evict(e, "crc")
				continue
			}
			e.resolved = true
			s.active--
			ypre := y.HashPrefix()
			if s.isRevoked(y) {
				// The residual names a tag that left the field unidentified:
				// the record is spent, but the stale read is discarded (the
				// acknowledgement would go unanswered).
				if s.Tracer != nil {
					s.Tracer.RecordResolved(obs.ResolveEvent{
						Slot: e.slot, ID: y, Trigger: x.id, Depth: x.depth + 1, Dup: true,
					})
				}
				s.release(e)
				continue
			}
			if s.isKnown(ypre, y) {
				// The residual is a signal the reader already knows: two
				// records in one cascade can strip down to the same tag
				// (e.g. {A,B}@i and {A,B}@j when A is learned). The second
				// record is spent, but yields nothing new.
				if s.Tracer != nil {
					s.Tracer.RecordResolved(obs.ResolveEvent{
						Slot: e.slot, ID: y, Trigger: x.id, Depth: x.depth + 1, Dup: true,
					})
				}
				s.release(e)
				continue
			}
			s.markKnown(ypre, y)
			if s.Tracer != nil {
				s.Tracer.RecordResolved(obs.ResolveEvent{
					Slot: e.slot, ID: y, Trigger: x.id, Depth: x.depth + 1,
				})
			}
			s.release(e)
			s.out = append(s.out, Resolved{ID: y, Slot: e.slot})
			s.queue = append(s.queue, cascadeItem{id: y, pre: ypre, depth: x.depth + 1})
		}
		// The node is spent; drop its record references so resolved mixes
		// are not pinned by the arena.
		node.e0, node.e1, node.more = nil, nil, nil
	}
}

// evict quarantines a record that was counted active: it is marked resolved
// and removed from the active count.
func (s *Store) evict(e *entry, reason string) {
	e.resolved = true
	s.active--
	s.quarantined++
	if s.Tracer != nil {
		s.Tracer.RecordQuarantined(obs.QuarantineEvent{
			Slot: e.slot, Reason: reason, Members: e.mix.Multiplicity(),
		})
	}
	s.release(e)
}

// Clone returns a deep copy of the store for a session checkpoint:
// continuing to use the original (or the clone) leaves the other
// untouched. Unresolved recordings are cloned via channel.CloneMixed;
// resolved entries' recordings are never mutated again and stay shared.
// It fails when the channel's Mixed implementation does not support
// cloning. The clone carries the same Tracer.
func (s *Store) Clone() (*Store, error) {
	// From here on the clone's unresolved records share waveform buffers
	// with ours, so recycling them is permanently off (see SetReleaser).
	// Streaming memory bounds degrade gracefully under checkpointing; the
	// replayed behaviour stays bit-identical either way.
	s.cloned = true
	c := &Store{
		Tracer:      s.Tracer,
		Quarantine:  s.Quarantine,
		DropAbove:   s.DropAbove,
		byMember:    make(map[tagid.HashPrefix]*member, len(s.byMember)),
		known:       make(map[tagid.HashPrefix]tagid.ID, len(s.known)),
		active:      s.active,
		total:       s.total,
		quarantined: s.quarantined,
		dropped:     s.dropped,
	}
	for k, v := range s.known {
		c.known[k] = v
	}
	if s.knownOverflow != nil {
		c.knownOverflow = make(map[tagid.ID]struct{}, len(s.knownOverflow))
		for id := range s.knownOverflow {
			c.knownOverflow[id] = struct{}{}
		}
	}
	if s.revoked != nil {
		c.revoked = make(map[tagid.ID]struct{}, len(s.revoked))
		for id := range s.revoked {
			c.revoked[id] = struct{}{}
		}
	}
	// Entries are reachable only through member nodes; copy each exactly
	// once so nodes sharing a record share its clone too.
	cloned := make(map[*entry]*entry)
	cloneEntry := func(e *entry) (*entry, error) {
		if ce, ok := cloned[e]; ok {
			return ce, nil
		}
		ce := &entry{slot: e.slot, mix: e.mix, resolved: e.resolved}
		if !e.resolved {
			mix, ok := channel.CloneMixed(e.mix)
			if !ok {
				return nil, errors.New("record: channel recording does not support cloning")
			}
			ce.mix = mix
		}
		cloned[e] = ce
		return ce, nil
	}
	for pre, head := range s.byMember {
		var prevClone *member
		for node := head; node != nil; node = node.next {
			nc := &member{id: node.id, n: node.n}
			for i := 0; i < node.n; i++ {
				e := node.record(i)
				if e == nil {
					nc.n = i
					break
				}
				ce, err := cloneEntry(e)
				if err != nil {
					return nil, err
				}
				nc.add2(i, ce)
			}
			if prevClone == nil {
				c.byMember[pre] = nc
			} else {
				prevClone.next = nc
			}
			prevClone = nc
		}
	}
	return c, nil
}

// add2 places a record clone at position i (mirrors add, but positional).
func (m *member) add2(i int, e *entry) {
	switch i {
	case 0:
		m.e0 = e
	case 1:
		m.e1 = e
	default:
		m.more = append(m.more, e)
	}
}

// cascadeItem is one pending step of the resolution cascade: a
// newly-learned ID (with its precomputed hash prefix) and the cascade depth
// it was learned at.
type cascadeItem struct {
	id    tagid.ID
	pre   tagid.HashPrefix
	depth int
}
