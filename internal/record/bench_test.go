package record

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// BenchmarkCascadeResolve measures the store's hot path end to end: filing
// a chain of two-collision records {t0,t1}@1, {t1,t2}@2, ... and then
// learning t0, which cascades through the whole chain. One op = building
// and fully resolving a 256-record chain.
func BenchmarkCascadeResolve(b *testing.B) {
	const chain = 256
	r := rng.New(42)
	tags := tagid.Population(r, chain+1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch := channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r)
		s := NewStore()
		for j := 0; j < chain; j++ {
			obs := ch.Observe(tags[j : j+2])
			if obs.Kind != channel.Collision {
				b.Fatal("expected collision")
			}
			s.Add(uint64(j), obs.Mix, tags[j:j+2])
		}
		if got := len(s.OnIdentified(tags[0])); got != chain {
			b.Fatalf("cascade resolved %d records, want %d", got, chain)
		}
	}
}
