package record

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// TestDropAbovePrunes: records beyond the bound are never indexed — no
// cascade ever yields from them — while records at or below it behave
// exactly as without the bound.
func TestDropAbovePrunes(t *testing.T) {
	r := rng.New(1)
	ch := channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r)
	ids := tagid.Population(rng.New(2), 5)

	s := NewStore()
	s.DropAbove = 2
	big := ch.Observe(ids[:4]) // multiplicity 4 > 2: pruned
	if got := s.Add(0, big.Mix, ids[:4]); got != nil {
		t.Fatalf("pruned Add returned %v", got)
	}
	if s.Active() != 0 || s.Dropped() != 1 || s.Total() != 1 {
		t.Fatalf("after prune: active=%d dropped=%d total=%d", s.Active(), s.Dropped(), s.Total())
	}
	// Identifying members of the pruned record must not resolve anything.
	if got := s.OnIdentified(ids[0]); len(got) != 0 {
		t.Fatalf("cascade through pruned record yielded %v", got)
	}

	small := ch.Observe(ids[1:3]) // multiplicity 2: kept
	if got := s.Add(1, small.Mix, ids[1:3]); got != nil {
		t.Fatalf("unexpected immediate resolution: %v", got)
	}
	if s.Active() != 1 {
		t.Fatalf("kept record not active: %d", s.Active())
	}
	res := s.OnIdentified(ids[1])
	if len(res) != 1 || res[0].ID != ids[2] {
		t.Fatalf("kept record cascade = %v, want %v", res, ids[2])
	}
}

// TestDropAboveZeroDisabled: the zero value changes nothing.
func TestDropAboveZeroDisabled(t *testing.T) {
	r := rng.New(3)
	ch := channel.NewAbstract(channel.AbstractConfig{Lambda: 4}, r)
	ids := tagid.Population(rng.New(4), 4)
	s := NewStore()
	ob := ch.Observe(ids[:4])
	s.Add(0, ob.Mix, ids[:4])
	if s.Active() != 1 || s.Dropped() != 0 {
		t.Fatalf("active=%d dropped=%d, want 1, 0", s.Active(), s.Dropped())
	}
	s.OnIdentified(ids[0])
	s.OnIdentified(ids[1])
	res := s.OnIdentified(ids[2])
	if len(res) != 1 || res[0].ID != ids[3] {
		t.Fatalf("cascade = %v, want %v", res, ids[3])
	}
}

// TestDropAboveReleasesStreaming: in streaming mode a pruned record's
// recording goes straight back to the channel.
func TestDropAboveReleasesStreaming(t *testing.T) {
	r := rng.New(5)
	ch := channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r)
	ids := tagid.Population(rng.New(6), 4)
	s := NewStore()
	s.DropAbove = 2
	s.SetReleaser(ch)
	ob := ch.Observe(ids[:4])
	s.Add(0, ob.Mix, ids[:4])
	// The released recording should be recycled by the very next Observe.
	ob2 := ch.Observe(ids[:3])
	if ob2.Mix != ob.Mix {
		t.Fatal("pruned recording was not recycled through the releaser")
	}
}
