package record

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/tagid"
)

func TestAddSubtractsKnownMembers(t *testing.T) {
	// A known retransmitter colliding with one unknown tag resolves the
	// record the moment it is stored.
	tags := pop(2)
	s := NewStore()
	s.MarkKnown(tags[0])
	got := s.Add(1, newMix(t, 2, tags...), tags)
	if len(got) != 1 || got[0].ID != tags[1] || got[0].Slot != 1 {
		t.Fatalf("Add resolved %v, want the unknown member", got)
	}
	if s.Active() != 0 {
		t.Fatal("instantly-resolved record left active")
	}
}

func TestAddAllKnownMembersIsInert(t *testing.T) {
	tags := pop(2)
	s := NewStore()
	s.MarkKnown(tags[0])
	s.MarkKnown(tags[1])
	if got := s.Add(1, newMix(t, 2, tags...), tags); len(got) != 0 {
		t.Fatalf("all-known record yielded %v", got)
	}
	if s.Active() != 0 {
		t.Fatal("all-known record left active")
	}
}

func TestAddImmediateResolutionCascades(t *testing.T) {
	// Record {B,C} is stored first; then a record {A,B} with A known
	// resolves instantly to B, and the cascade must propagate B into the
	// earlier record, yielding C.
	tags := pop(3)
	a, b, c := tags[0], tags[1], tags[2]
	s := NewStore()
	s.Add(1, newMix(t, 2, b, c), []tagid.ID{b, c})
	s.MarkKnown(a)
	got := s.Add(2, newMix(t, 2, a, b), []tagid.ID{a, b})
	if len(got) != 2 || got[0].ID != b || got[1].ID != c {
		t.Fatalf("cascade from instant resolution = %v, want [B, C]", got)
	}
}

func TestOnIdentifiedMarksKnown(t *testing.T) {
	// After OnIdentified(x), records added later with x as a member have x
	// pre-subtracted.
	tags := pop(2)
	s := NewStore()
	s.OnIdentified(tags[0])
	got := s.Add(5, newMix(t, 2, tags...), tags)
	if len(got) != 1 || got[0].ID != tags[1] {
		t.Fatalf("retransmitter not subtracted on Add: %v", got)
	}
}
