package record

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// FuzzCascade drives a Store (with and without Quarantine armed) through an
// arbitrary op sequence — record insertion with possibly-duplicated member
// lists, identification, revoke/readmit, clone-and-swap — and checks the
// inventory invariants after every step:
//
//   - no ID is ever yielded twice (duplicate identification),
//   - no yielded ID is revoked at yield time (stale identification),
//   - every yielded ID belongs to the universe (no phantom),
//   - the active-record count never goes negative and never exceeds Total.
//
// The op encoding is deliberately permissive: any byte string decodes to a
// valid sequence, so the fuzzer explores deep interleavings (cyclic record
// references, revoked-then-readmitted tags, duplicate members) for free.
func FuzzCascade(f *testing.F) {
	f.Add([]byte{0x00, 0x03, 0x10, 0x21})                   // add {0,1}, identify 0
	f.Add([]byte{0x00, 0x03, 0x00, 0x06, 0x00, 0x05, 0x10}) // cycle {0,1},{1,2},{0,2}, identify 0
	f.Add([]byte{0x20, 0x10, 0x00, 0x83, 0x10})             // revoke 0, identify 0, add dup {0,0,1}
	f.Add([]byte{0x20, 0x30, 0x00, 0x03, 0x10})             // revoke 0, readmit 0, add {0,1}, identify 0
	f.Add([]byte{0x10, 0x00, 0x83, 0x00, 0x83})             // identify 1, then dup records {0,0,1}
	f.Add([]byte{0x06, 0x00, 0x81})                         // identify 0, add dup record {0,0}
	f.Add([]byte{0x10, 0x02, 0x00, 0x03})                   // identify 1, revoke 0, add {0,1}
	f.Add([]byte{0x40, 0x00, 0x03, 0x40, 0x10, 0x40})       // clone swaps around a resolution
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, quarantine := range []bool{false, true} {
			runCascadeOps(t, data, quarantine)
		}
	})
}

func runCascadeOps(t *testing.T, data []byte, quarantine bool) {
	const nTags = 6
	universe := tagid.Population(rng.New(7), nTags)
	inUniverse := make(map[tagid.ID]bool, nTags)
	for _, id := range universe {
		inUniverse[id] = true
	}
	ch := channel.NewAbstract(channel.AbstractConfig{Lambda: 3}, rng.New(99))

	s := NewStore()
	s.Quarantine = quarantine

	seen := make(map[tagid.ID]bool)    // IDs the reader has learned (model)
	revoked := make(map[tagid.ID]bool) // currently-revoked tags (model)
	var slot uint64

	check := func(op string, got []Resolved) {
		t.Helper()
		for _, res := range got {
			if !inUniverse[res.ID] {
				t.Fatalf("quarantine=%v %s: yielded phantom ID %v", quarantine, op, res.ID)
			}
			if seen[res.ID] {
				t.Fatalf("quarantine=%v %s: duplicate yield of %v", quarantine, op, res.ID)
			}
			if revoked[res.ID] {
				t.Fatalf("quarantine=%v %s: yielded revoked tag %v", quarantine, op, res.ID)
			}
			seen[res.ID] = true
		}
		if s.Active() < 0 {
			t.Fatalf("quarantine=%v %s: negative active count %d", quarantine, op, s.Active())
		}
		if s.Active() > s.Total() {
			t.Fatalf("quarantine=%v %s: active %d exceeds total %d", quarantine, op, s.Active(), s.Total())
		}
	}

	for i := 0; i < len(data); i++ {
		op := data[i]
		tag := universe[int(op>>4)%nTags]
		switch op % 5 {
		case 0: // Add a record; the next byte is a member bitmask.
			if i+1 >= len(data) {
				return
			}
			i++
			mask := data[i]
			var members []tagid.ID
			for b := 0; b < nTags; b++ {
				if mask&(1<<b) != 0 {
					members = append(members, universe[b])
				}
			}
			if mask&0x80 != 0 && len(members) > 0 {
				// Duplicate-member corruption: repeat the first member.
				members = append(members, members[0])
			}
			if len(members) < 2 {
				continue
			}
			ob := ch.Observe(members)
			if ob.Kind != channel.Collision {
				continue
			}
			slot++
			check("Add", s.Add(slot, ob.Mix, members))
		case 1: // The reader learns a tag from a singleton read.
			if seen[tag] || revoked[tag] {
				continue
			}
			seen[tag] = true
			check("OnIdentified", s.OnIdentified(tag))
		case 2:
			revoked[tag] = true
			s.Revoke(tag)
			check("Revoke", nil)
		case 3:
			delete(revoked, tag)
			s.Readmit(tag)
			check("Readmit", nil)
		case 4: // Checkpoint round-trip: continue on the clone.
			c, err := s.Clone()
			if err != nil {
				t.Fatalf("quarantine=%v Clone: %v", quarantine, err)
			}
			s = c
			check("Clone", nil)
		}
	}
}
