package record

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// recordingReleaser counts the recordings handed back through the
// streaming-spill hook.
type recordingReleaser struct {
	released []channel.Mixed
}

func (r *recordingReleaser) ReleaseMixed(m channel.Mixed) { r.released = append(r.released, m) }

// TestStoreReleaserSpill: every path that marks a record resolved must hand
// its recording back exactly once and drop the store's own reference.
func TestStoreReleaserSpill(t *testing.T) {
	r := rng.New(21)
	ids := tagid.Population(r, 4)
	rel := &recordingReleaser{}

	s := NewStore()
	s.SetReleaser(rel)

	// Cascade spill: {a,b} stored outstanding, then a identified.
	s.Add(1, newMix(t, 2, ids[0], ids[1]), []tagid.ID{ids[0], ids[1]})
	if len(rel.released) != 0 {
		t.Fatalf("outstanding record released early")
	}
	res := s.OnIdentified(ids[0])
	if len(res) != 1 || res[0].ID != ids[1] {
		t.Fatalf("cascade did not resolve: %v", res)
	}
	if len(rel.released) != 1 {
		t.Fatalf("cascade-resolved record released %d times, want 1", len(rel.released))
	}

	// Immediate-resolve spill: all but one member already known.
	s.Add(2, newMix(t, 2, ids[0], ids[2]), []tagid.ID{ids[0], ids[2]})
	if len(rel.released) != 2 {
		t.Fatalf("add-resolved record not released (%d)", len(rel.released))
	}

	// Spent-record spill: every member a known retransmitter.
	s.Add(3, newMix(t, 2, ids[0], ids[1]), []tagid.ID{ids[0], ids[1]})
	if len(rel.released) != 3 {
		t.Fatalf("spent record not released (%d)", len(rel.released))
	}
	if s.Active() != 0 {
		t.Fatalf("active = %d, want 0", s.Active())
	}
}

// TestStoreCloneDisablesSpill: once a checkpoint clone shares the store's
// recordings, releasing must stop permanently — a clone's unresolved
// records alias the same buffers.
func TestStoreCloneDisablesSpill(t *testing.T) {
	r := rng.New(22)
	ids := tagid.Population(r, 3)
	rel := &recordingReleaser{}

	s := NewStore()
	s.SetReleaser(rel)
	s.Add(1, newMix(t, 2, ids[0], ids[1]), []tagid.ID{ids[0], ids[1]})
	if _, err := s.Clone(); err != nil {
		t.Fatal(err)
	}
	if res := s.OnIdentified(ids[0]); len(res) != 1 {
		t.Fatalf("cascade did not resolve: %v", res)
	}
	if len(rel.released) != 0 {
		t.Fatalf("post-clone resolve released %d recordings, want 0", len(rel.released))
	}
}

// TestStoreResetEquivalence: a Reset store must behave exactly like a
// fresh one — same resolutions, same counters — while retaining its arena
// chunks.
func TestStoreResetEquivalence(t *testing.T) {
	r := rng.New(23)
	ids := tagid.Population(r, 600)

	exercise := func(s *Store) (resolved, active, total int) {
		for i := 0; i+1 < len(ids); i += 2 {
			s.Add(uint64(i), newMix(t, 2, ids[i], ids[i+1]), []tagid.ID{ids[i], ids[i+1]})
		}
		for i := 0; i+1 < len(ids); i += 2 {
			resolved += len(s.OnIdentified(ids[i]))
		}
		return resolved, s.Active(), s.Total()
	}

	fresh := NewStore()
	wantRes, wantAct, wantTot := exercise(fresh)

	reused := NewStore()
	reused.SetReleaser(&recordingReleaser{})
	exercise(reused)
	reused.Reset()
	if reused.Active() != 0 || reused.Total() != 0 || reused.Quarantined() != 0 {
		t.Fatalf("Reset left counters: active=%d total=%d quarantined=%d",
			reused.Active(), reused.Total(), reused.Quarantined())
	}
	if reused.releaser != nil || reused.cloned {
		t.Fatal("Reset kept the releaser or the cloned latch")
	}
	gotRes, gotAct, gotTot := exercise(reused)
	if gotRes != wantRes || gotAct != wantAct || gotTot != wantTot {
		t.Fatalf("reused store diverged: resolved=%d/%d active=%d/%d total=%d/%d",
			gotRes, wantRes, gotAct, wantAct, gotTot, wantTot)
	}
}

// TestStreamingSpillZeroAlloc pins the steady-state spill path: with the
// abstract channel's recording freelist armed as the store's releaser,
// a retransmitting-collision slot (record stored, immediately spent,
// recording recycled) must settle to zero allocations.
func TestStreamingSpillZeroAlloc(t *testing.T) {
	r := rng.New(29)
	ids := tagid.Population(r, 2)
	ch := channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r)

	s := NewStore()
	s.SetReleaser(ch)
	s.MarkKnown(ids[0])
	s.MarkKnown(ids[1])

	slot := uint64(0)
	cycle := func() {
		obs := ch.Observe(ids)
		if obs.Kind != channel.Collision {
			t.Fatal("expected a collision")
		}
		// Both members are known retransmitters: the record is spent on
		// arrival and its recording goes straight back to the channel.
		if out := s.Add(slot, obs.Mix, ids); out != nil {
			t.Fatal("spent record yielded IDs")
		}
		slot++
	}
	for i := 0; i < 300; i++ {
		cycle() // warm the entry chunk and the channel freelist
	}
	allocs := testing.AllocsPerRun(200, cycle)
	if allocs != 0 {
		t.Errorf("streaming spill cycle allocates %v times, want 0", allocs)
	}
}

// TestStoreResetChunkReuse: across Reset cycles the entry and node arenas
// must be recycled, not reallocated — the cross-run scratch contract.
func TestStoreResetChunkReuse(t *testing.T) {
	r := rng.New(31)
	ids := tagid.Population(r, 512)
	ch := channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r)

	s := NewStore()
	run := func() {
		for i := 0; i+1 < len(ids); i += 2 {
			obs := ch.Observe(ids[i : i+2])
			s.Add(uint64(i), obs.Mix, ids[i:i+2])
		}
		for i := 0; i+1 < len(ids); i += 2 {
			s.OnIdentified(ids[i])
		}
		s.Reset()
	}
	run() // size the arenas
	run()
	// Reset the channel alongside the store each cycle, as the campaign
	// runner does, so its record arena is recycled too; the whole
	// run+reset cycle must then be allocation-free.
	allocs := testing.AllocsPerRun(5, func() {
		ch.Reset(r)
		run()
	})
	if allocs != 0 {
		t.Errorf("store+channel reset cycle allocates %v times, want 0", allocs)
	}
}
