// Package estimate implements FCAT's embedded population estimator
// (paper, Section V-C): after each frame the reader counts the collision
// slots n_c and inverts E(n_c) to an estimate of the number of tags still
// participating, removing the need for a separate pre-estimation phase.
package estimate

import (
	"math"

	"github.com/ancrfid/ancrfid/internal/analysis"
)

// ClosedForm inverts Eq. 12 of the paper:
//
//	N^ = (ln(1 - n_c/f) - ln(1 - p + omega)) / ln(1 - p) + 1
//
// where p is the frame's report probability and omega is the design
// constant the reader targeted when it chose p (omega ~= N*p once the
// estimate has locked on). ok is false when the frame carries no usable
// information: every slot collided (n_c >= f, the estimate diverges — the
// caller should grow its guess) or the inputs are degenerate.
func ClosedForm(nc, f int, p, omega float64) (est float64, ok bool) {
	if f <= 0 || p <= 0 || p >= 1 || nc < 0 {
		return 0, false
	}
	if nc >= f {
		return 0, false
	}
	est = (math.Log(1-float64(nc)/float64(f))-math.Log(1-p+omega))/math.Log(1-p) + 1
	if math.IsNaN(est) || math.IsInf(est, 0) {
		return 0, false
	}
	if est < 0 {
		est = 0
	}
	return est, true
}

// Exact inverts E(n_c) = f*(1 - (1-p)^(N-1)*(1-p+Np)) for N by bisection,
// avoiding the omega ~= Np approximation baked into the closed form. The
// expectation is strictly increasing in N for N >= 1, so the root is
// unique.
//
// Contract (matching ClosedForm): nc == 0 is a valid observation, not a
// degenerate one — zero collisions is exactly what a population of at most
// one tag produces, so Exact(0, f, p) returns an estimate of ~1, the
// largest population whose expected collision count is zero. ok is false
// only for truly uninformative inputs: nc < 0, nc >= f (every slot
// collided; the inversion diverges and the caller should grow its guess),
// or out-of-range f/p. ClosedForm shares this contract except that its
// log-domain algebra cannot represent nc == 0 exactly when omega is large;
// both reject the same nc >= f saturation.
func Exact(nc, f int, p float64) (est float64, ok bool) {
	if f <= 0 || p <= 0 || p >= 1 || nc < 0 {
		return 0, false
	}
	if nc >= f {
		return 0, false
	}
	target := float64(nc)
	g := func(n float64) float64 {
		return float64(f)*(1-math.Pow(1-p, n-1)*(1-p+n*p)) - target
	}
	lo, hi := 0.0, 2.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, false
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*(1+hi); i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// FromEmpty estimates N from the empty-slot count using Eq. 7:
// E(n0) = f*(1-p)^N, so N^ = ln(n0/f)/ln(1-p). The paper rejects this
// estimator because its variance is larger (Section V-C); it is provided for
// the ablation that verifies that claim. ok is false when n0 is 0 (the log
// diverges) or out of range.
func FromEmpty(n0, f int, p float64) (est float64, ok bool) {
	if f <= 0 || p <= 0 || p >= 1 || n0 <= 0 || n0 > f {
		return 0, false
	}
	est = math.Log(float64(n0)/float64(f)) / math.Log(1-p)
	if math.IsNaN(est) || math.IsInf(est, 0) {
		return 0, false
	}
	return est, true
}

// Variance re-exports the analytic single-frame relative variance of the
// collision-count estimator so callers sizing confidence intervals need not
// import package analysis.
func Variance(omega float64, f int) float64 {
	return analysis.EstimatorVariance(omega, f)
}

// Tracker maintains a weighted running mean of the per-frame estimates of
// the *total* population N* (remaining + already identified). The paper
// notes that averaging across frames shrinks the estimator variance with
// the square root of the frame count (end of Section V-C).
//
// The per-frame estimate's absolute standard deviation is proportional to
// the number of tags still participating (the relative variance of Eq. 25
// is constant), so late frames — read at higher report probability p —
// carry far tighter absolute information. Weighting each frame by p^2,
// i.e. by its inverse variance, is therefore the minimum-variance
// combination; p is fixed before the frame runs, so the weight does not
// bias the estimate.
type Tracker struct {
	sum     float64
	weights float64
	count   int
}

// Add records one per-frame estimate with unit weight.
func (t *Tracker) Add(est float64) { t.AddWeighted(est, 1) }

// AddWeighted records one per-frame estimate with the given positive
// weight (use the frame's p^2 for inverse-variance weighting).
func (t *Tracker) AddWeighted(est, weight float64) {
	if weight <= 0 {
		return
	}
	t.sum += est * weight
	t.weights += weight
	t.count++
}

// Mean returns the weighted-average estimate and whether any estimate was
// recorded.
func (t *Tracker) Mean() (float64, bool) {
	if t.count == 0 || t.weights == 0 {
		return 0, false
	}
	return t.sum / t.weights, true
}

// Count returns the number of estimates recorded.
func (t *Tracker) Count() int { return t.count }
