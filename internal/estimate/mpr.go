// MPR frame sizing for multi-packet-reception readers.
//
// A framed-ALOHA reader whose ANC decoder resolves collisions of
// multiplicity up to M (the capability model's max order) should not run
// its frames at the classic one-tag-per-slot load: a slot holding k <= M
// tags yields all k of them, so the reader wants *denser* frames. Pudasaini
// et al. ("Optimum Frame Size Analysis of Framed Slotted ALOHA with
// Multi-Packet Reception Capability", arXiv:1311.7458) show the per-slot
// efficiency under Poisson load mu is
//
//	g_M(mu) = sum_{k=1..M} k * e^-mu * mu^k / k!
//
// and the optimal operating load mu*_M is its unique maximiser; the
// MPR-optimal frame size for a backlog of N tags is then L* = N / mu*_M.
// For M = 1 this degenerates to mu* = 1 and the textbook L = N rule.
package estimate

import "math"

// MPRThroughput returns g_M(mu): the expected number of tags resolved per
// slot when slots receive Poisson(mu) tags and every slot of multiplicity
// k <= m decodes completely. m < 1 is treated as 1.
func MPRThroughput(mu float64, m int) float64 {
	if mu <= 0 {
		return 0
	}
	if m < 1 {
		m = 1
	}
	// Accumulate k * P(K = k) with the Poisson pmf built incrementally:
	// term_k = e^-mu mu^k / k!.
	term := math.Exp(-mu) * mu // k = 1
	sum := term
	for k := 2; k <= m; k++ {
		term *= mu / float64(k)
		sum += float64(k) * term
	}
	return sum
}

// MPROptimalLoad returns mu*_M, the per-slot load maximising g_M. The
// value is found by golden-section search (g_M is unimodal on (0, inf):
// it rises from 0 and decays like a polynomial times e^-mu); M = 1 returns
// exactly 1 so legacy single-reception sizing is bit-stable.
func MPROptimalLoad(m int) float64 {
	if m <= 1 {
		return 1
	}
	// The maximiser sits between 1 (M = 1) and M + 1 (the mode of the
	// k = M term's weight grows like M).
	lo, hi := 1.0, float64(m)+2
	const phi = 0.6180339887498949 // (sqrt(5)-1)/2
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := MPRThroughput(x1, m), MPRThroughput(x2, m)
	for i := 0; i < 120 && hi-lo > 1e-10; i++ {
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = MPRThroughput(x2, m)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = MPRThroughput(x1, m)
		}
	}
	return (lo + hi) / 2
}

// MPRFrameSize returns the MPR-optimal frame length for the given backlog
// estimate: round(backlog / mu*_M), floored at 1. Callers feed it the
// population estimate from Exact/ClosedForm (or an exact outstanding count
// when the roster is known, as in the pseudo-random session).
func MPRFrameSize(backlog float64, m int) int {
	if backlog <= 0 {
		return 1
	}
	l := int(math.Round(backlog / MPROptimalLoad(m)))
	if l < 1 {
		l = 1
	}
	return l
}
