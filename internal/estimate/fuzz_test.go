package estimate

import (
	"math"
	"testing"
)

// FuzzEstimateInvert round-trips the collision-count estimator: pick a
// population N, compute the expected collision count E(n_c) under (f, p),
// invert it with Exact, and require the forward map of the inverted
// estimate to land back on E(n_c). Checking the round trip in count space
// (rather than |N^ - N|) keeps the tolerance meaningful near saturation,
// where dE/dN flattens and tiny count noise legitimately moves N^ a lot.
// The MPR frame rule is exercised on the inverted estimate as well: it
// must stay positive and monotone in capability for any backlog the
// estimator can produce.
func FuzzEstimateInvert(f *testing.F) {
	f.Add(uint16(100), uint16(64), uint16(30000), uint8(2))
	f.Add(uint16(1), uint16(1), uint16(1), uint8(1))
	f.Add(uint16(5000), uint16(4096), uint16(65535), uint8(4))
	f.Add(uint16(0), uint16(30), uint16(100), uint8(3))
	f.Fuzz(func(t *testing.T, rawN, rawF, rawP uint16, rawM uint8) {
		n := float64(rawN % 5001)          // population 0..5000
		frame := int(rawF%4096) + 1        // frame size 1..4096
		p := (float64(rawP) + 1) / 65537.0 // report probability in (0, 1)
		m := int(rawM%8) + 1               // capability 1..8

		// Forward: expected collision count, clamped to a realisable one.
		expect := float64(frame) * (1 - math.Pow(1-p, n-1)*(1-p+n*p))
		if n == 0 {
			expect = 0
		}
		nc := int(math.Round(expect))
		if nc < 0 {
			nc = 0
		}
		est, ok := Exact(nc, frame, p)
		if nc >= frame {
			if ok {
				t.Fatalf("Exact accepted saturated nc=%d >= f=%d", nc, frame)
			}
			return
		}
		if !ok {
			t.Fatalf("Exact(%d, %d, %v) rejected a realisable observation", nc, frame, p)
		}
		if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("Exact(%d, %d, %v) = %v, not a population", nc, frame, p, est)
		}

		// Round trip: E(n_c) at the estimate must match the observed count
		// to within the rounding we injected plus bisection slop.
		back := float64(frame) * (1 - math.Pow(1-p, est-1)*(1-p+est*p))
		if math.Abs(back-float64(nc)) > 0.5+1e-6*float64(frame) {
			t.Fatalf("round trip: Exact(%d, %d, %v) = %v maps back to %v collisions",
				nc, frame, p, est, back)
		}

		// The MPR frame rule must accept anything the estimator emits.
		prev := math.MaxInt
		for mm := 1; mm <= m; mm++ {
			l := MPRFrameSize(est, mm)
			if l < 1 {
				t.Fatalf("MPRFrameSize(%v, %d) = %d", est, mm, l)
			}
			if l > prev {
				t.Fatalf("MPRFrameSize(%v, %d) = %d grew over M-1's %d", est, mm, l, prev)
			}
			prev = l
		}
	})
}
