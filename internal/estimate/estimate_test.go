package estimate

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/rng"
)

func TestClosedFormAtExpectation(t *testing.T) {
	// Feeding the closed form the exact expectation E(n_c) at the design
	// load (p = omega/N) must return approximately N.
	for _, n := range []int{1000, 5000, 20000} {
		omega := 1.414
		p := omega / float64(n)
		f := 30
		enc := analysis.ExpectedCollision(n, p, f)
		est, ok := ClosedForm(int(math.Round(enc)), f, p, omega)
		if !ok {
			t.Fatalf("ClosedForm rejected valid inputs at N=%d", n)
		}
		if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.08 {
			t.Errorf("N=%d: closed-form estimate %v (rel err %.3f)", n, est, rel)
		}
	}
}

func TestClosedFormDegenerateInputs(t *testing.T) {
	if _, ok := ClosedForm(30, 30, 0.001, 1.414); ok {
		t.Error("saturated frame (nc=f) should not estimate")
	}
	if _, ok := ClosedForm(31, 30, 0.001, 1.414); ok {
		t.Error("nc>f should not estimate")
	}
	if _, ok := ClosedForm(-1, 30, 0.001, 1.414); ok {
		t.Error("negative nc should not estimate")
	}
	if _, ok := ClosedForm(5, 0, 0.001, 1.414); ok {
		t.Error("f=0 should not estimate")
	}
	if _, ok := ClosedForm(5, 30, 0, 1.414); ok {
		t.Error("p=0 should not estimate")
	}
	if _, ok := ClosedForm(5, 30, 1, 1.414); ok {
		t.Error("p=1 should not estimate")
	}
}

func TestExactInvertsExpectation(t *testing.T) {
	// Exact is the self-consistent inversion of Eq. 10: at any (N, p) with
	// informative E(n_c), inverting the exact expectation recovers N.
	for _, tc := range []struct {
		n int
		p float64
	}{
		{1000, 1.414 / 1000}, {1000, 0.005}, {10000, 0.0002},
		{50, 0.05}, {200, 0.002},
	} {
		f := 30
		enc := analysis.ExpectedCollision(tc.n, tc.p, f)
		if enc < 1 || enc > float64(f)-1 {
			continue // uninformative regime
		}
		est, ok := Exact(int(math.Round(enc)), f, tc.p)
		if !ok {
			t.Fatalf("Exact rejected valid inputs at N=%d p=%v", tc.n, tc.p)
		}
		// Rounding E(nc) to an integer count limits precision.
		if rel := math.Abs(est-float64(tc.n)) / float64(tc.n); rel > 0.15 {
			t.Errorf("N=%d p=%v: exact estimate %v (rel err %.3f)", tc.n, tc.p, est, rel)
		}
	}
}

func TestExactDegenerateInputs(t *testing.T) {
	if _, ok := Exact(30, 30, 0.001); ok {
		t.Error("saturated frame should not estimate")
	}
	if _, ok := Exact(-1, 30, 0.001); ok {
		t.Error("negative nc should not estimate")
	}
}

// TestExactZeroCollisions pins the nc == 0 contract shared with
// ClosedForm: zero observed collisions is a valid observation meaning "at
// most ~1 tag", not a degenerate input.
func TestExactZeroCollisions(t *testing.T) {
	for _, p := range []float64{0.001, 0.1, 0.5, 0.9} {
		est, ok := Exact(0, 30, p)
		if !ok {
			t.Fatalf("Exact(0, 30, %v) not ok; nc=0 is a valid observation", p)
		}
		if est < 0 || est > 1.5 {
			t.Fatalf("Exact(0, 30, %v) = %v, want a zero-ish estimate in [0, 1.5]", p, est)
		}
	}
}

func TestExactMonotoneInCollisions(t *testing.T) {
	prev := 0.0
	for nc := 1; nc < 30; nc++ {
		est, ok := Exact(nc, 30, 0.001)
		if !ok {
			t.Fatalf("Exact failed at nc=%d", nc)
		}
		if est <= prev {
			t.Fatalf("estimate not increasing at nc=%d: %v <= %v", nc, est, prev)
		}
		prev = est
	}
}

func TestFromEmptyInvertsExpectation(t *testing.T) {
	for _, n := range []int{500, 5000} {
		p := 1.414 / float64(n)
		f := 30
		en0 := analysis.ExpectedEmpty(n, p, f)
		est, ok := FromEmpty(int(math.Round(en0)), f, p)
		if !ok {
			t.Fatalf("FromEmpty rejected valid inputs at N=%d", n)
		}
		if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.15 {
			t.Errorf("N=%d: empty-based estimate %v (rel err %.3f)", n, est, rel)
		}
	}
}

func TestFromEmptyDegenerate(t *testing.T) {
	if _, ok := FromEmpty(0, 30, 0.01); ok {
		t.Error("n0=0 should not estimate (log diverges)")
	}
	if _, ok := FromEmpty(31, 30, 0.01); ok {
		t.Error("n0>f should not estimate")
	}
}

// simulateFrames returns per-frame estimates from simulated frames at the
// design load, using the given estimator kind.
func simulateFrames(r *rng.Source, n, f, frames int, omega float64, fromEmpty bool) []float64 {
	p := omega / float64(n)
	var out []float64
	for i := 0; i < frames; i++ {
		nc, n0 := 0, 0
		for s := 0; s < f; s++ {
			switch k := r.Binomial(n, p); {
			case k == 0:
				n0++
			case k >= 2:
				nc++
			}
		}
		var est float64
		var ok bool
		if fromEmpty {
			est, ok = FromEmpty(n0, f, p)
		} else {
			est, ok = Exact(nc, f, p)
		}
		if ok {
			out = append(out, est/float64(n))
		}
	}
	return out
}

func TestMonteCarloAccuracy(t *testing.T) {
	// The mean of per-frame exact estimates should track N within a few
	// percent, and the empirical variance should match Eq. 25.
	r := rng.New(42)
	rel := simulateFrames(r, 10000, 30, 4000, 1.414, false)
	var sum, sumsq float64
	for _, v := range rel {
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(len(rel))
	variance := sumsq/float64(len(rel)) - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("mean relative estimate %v, want ~1", mean)
	}
	want := analysis.EstimatorVariance(1.414, 30)
	if math.Abs(variance-want) > 0.35*want {
		t.Errorf("empirical variance %v, want ~%v (Eq. 25)", variance, want)
	}
}

func TestEmptyEstimatorHasHigherVariance(t *testing.T) {
	// The paper rejects the empty-slot estimator because its variance is
	// larger (Section V-C); verify that claim empirically.
	r := rng.New(43)
	varOf := func(fromEmpty bool) float64 {
		rel := simulateFrames(r, 10000, 30, 3000, 1.414, fromEmpty)
		var sum, sumsq float64
		for _, v := range rel {
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(len(rel))
		return sumsq/float64(len(rel)) - mean*mean
	}
	collisionVar := varOf(false)
	emptyVar := varOf(true)
	if emptyVar <= collisionVar {
		t.Errorf("empty-based variance %v should exceed collision-based %v", emptyVar, collisionVar)
	}
}

func TestTracker(t *testing.T) {
	var tr Tracker
	if _, ok := tr.Mean(); ok {
		t.Fatal("empty tracker reported a mean")
	}
	tr.Add(10)
	tr.Add(20)
	if m, ok := tr.Mean(); !ok || m != 15 {
		t.Fatalf("Mean = %v, %v", m, ok)
	}
	if tr.Count() != 2 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestTrackerWeighted(t *testing.T) {
	var tr Tracker
	tr.AddWeighted(10, 1)
	tr.AddWeighted(40, 3)
	if m, _ := tr.Mean(); m != 32.5 {
		t.Fatalf("weighted mean = %v, want 32.5", m)
	}
	tr.AddWeighted(100, 0)  // ignored
	tr.AddWeighted(100, -1) // ignored
	if m, _ := tr.Mean(); m != 32.5 {
		t.Fatalf("non-positive weights changed the mean: %v", m)
	}
}

func TestVarianceReexport(t *testing.T) {
	if Variance(1.414, 30) != analysis.EstimatorVariance(1.414, 30) {
		t.Fatal("Variance must match analysis.EstimatorVariance")
	}
}
