package estimate

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
)

func TestMPROptimalLoadM1(t *testing.T) {
	if got := MPROptimalLoad(1); got != 1 {
		t.Fatalf("MPROptimalLoad(1) = %v, want exactly 1", got)
	}
	if got := MPROptimalLoad(0); got != 1 {
		t.Fatalf("MPROptimalLoad(0) = %v, want 1", got)
	}
}

func TestMPROptimalLoadIsStationary(t *testing.T) {
	for m := 2; m <= 8; m++ {
		mu := MPROptimalLoad(m)
		g := MPRThroughput(mu, m)
		for _, eps := range []float64{0.01, 0.05} {
			if MPRThroughput(mu-eps, m) > g || MPRThroughput(mu+eps, m) > g {
				t.Fatalf("M=%d: mu*=%v is not a local max of g", m, mu)
			}
		}
		if mu <= MPROptimalLoad(m-1) {
			t.Fatalf("mu*_%d = %v not increasing in M", m, mu)
		}
	}
}

func TestMPRFrameSize(t *testing.T) {
	if got := MPRFrameSize(100, 1); got != 100 {
		t.Fatalf("M=1 backlog 100: frame %d, want classic 100", got)
	}
	if got := MPRFrameSize(0, 3); got != 1 {
		t.Fatalf("empty backlog: frame %d, want 1", got)
	}
	// Denser frames as capability grows.
	prev := MPRFrameSize(240, 1)
	for m := 2; m <= 4; m++ {
		l := MPRFrameSize(240, m)
		if l >= prev {
			t.Fatalf("M=%d frame %d not smaller than M=%d frame %d", m, l, m-1, prev)
		}
		prev = l
	}
}

// TestMPREmpiricalOptimum is the tentpole's acceptance check for the frame
// rule: for M in {2,3,4}, Monte-Carlo simulate framed ALOHA where every
// slot of multiplicity k <= M resolves completely, sweep the frame size,
// and require the empirically best frame to sit within 5% (plus one grid
// step) of the analytic N / mu*_M.
func TestMPREmpiricalOptimum(t *testing.T) {
	const n = 240
	const trials = 1500
	r := rng.New(0xA11CE)
	counts := make([]int, 0, 512)
	for m := 2; m <= 4; m++ {
		analytic := float64(n) / MPROptimalLoad(m)
		step := int(math.Max(1, math.Round(analytic/50))) // ~2% grid
		bestL, bestEff := 0, -1.0
		for l := int(0.5 * analytic); l <= int(1.7*analytic); l += step {
			counts = counts[:l]
			var resolved int64
			for trial := 0; trial < trials; trial++ {
				for i := range counts {
					counts[i] = 0
				}
				for tag := 0; tag < n; tag++ {
					counts[r.Intn(l)]++
				}
				for _, k := range counts {
					if k >= 1 && k <= m {
						resolved += int64(k)
					}
				}
			}
			if eff := float64(resolved) / float64(l); eff > bestEff {
				bestEff, bestL = eff, l
			}
		}
		tol := 0.05*analytic + float64(step)
		if math.Abs(float64(bestL)-analytic) > tol {
			t.Fatalf("M=%d: empirical optimum L=%d vs analytic %.1f (tolerance %.1f)",
				m, bestL, analytic, tol)
		}
		t.Logf("M=%d: empirical L*=%d, analytic %.1f, efficiency %.3f tags/slot",
			m, bestL, analytic, bestEff/float64(trials))
	}
}

// BenchmarkMPREstimate measures one backlog-estimation step of an MPR
// frame boundary: invert the collision count to a population estimate and
// size the next frame by the MPR rule. Gated in CI (ns/op + allocs/op).
func BenchmarkMPREstimate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est, ok := Exact(37, 96, 0.8)
		if !ok {
			b.Fatal("Exact failed")
		}
		if MPRFrameSize(est, 3) < 1 {
			b.Fatal("bad frame size")
		}
	}
}
