// Package stats provides the small set of descriptive statistics the
// Monte-Carlo experiments report.
package stats

import "math"

// Summary describes a sample of observations.
type Summary struct {
	N    int
	Mean float64
	// Std is the sample standard deviation (n-1 denominator).
	Std float64
	Min float64
	Max float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the sample variance of xs (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// RMSE returns the root-mean-square error of xs against a reference value.
func RMSE(xs []float64, ref float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - ref
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}
