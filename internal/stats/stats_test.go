package stats

import (
	"math"
	"testing"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	// Sample std with n-1: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("single summary %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatal("CI of single observation should be 0")
	}
}

func TestCI95(t *testing.T) {
	s := Summary{N: 100, Std: 10}
	if want := 1.96; math.Abs(s.CI95()-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func TestVariance(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("variance of one value")
	}
	if got := Variance([]float64{1, 3}); got != 2 {
		t.Fatalf("Variance = %v, want 2", got)
	}
}

func TestRMSE(t *testing.T) {
	if RMSE(nil, 1) != 0 {
		t.Fatal("RMSE(nil)")
	}
	if got := RMSE([]float64{3, 5}, 4); got != 1 {
		t.Fatalf("RMSE = %v, want 1", got)
	}
}
