package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded stream repeated values: %d unique of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p, c := New(7), child
	_ = p.Uint64() // consume what Split consumed
	matches := 0
	for i := 0; i < 100; i++ {
		if p.Uint64() == c.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("child replayed %d parent values", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Errorf("digit %d count %d deviates from uniform", d, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

// binomialMoments checks empirical mean and variance of the sampler in one
// (n, p) regime against theory within z standard errors.
func binomialMoments(t *testing.T, r *Source, n int, p float64, samples int) {
	t.Helper()
	var sum, sumsq float64
	for i := 0; i < samples; i++ {
		v := float64(r.Binomial(n, p))
		if v < 0 || v > float64(n) {
			t.Fatalf("Binomial(%d,%v) out of range: %v", n, p, v)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(samples)
	variance := sumsq/float64(samples) - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	if se := math.Sqrt(wantVar / float64(samples)); math.Abs(mean-wantMean) > 6*se+1e-9 {
		t.Errorf("Binomial(%d,%v) mean %v, want %v", n, p, mean, wantMean)
	}
	if wantVar > 0 && math.Abs(variance-wantVar) > 0.1*wantVar+0.05 {
		t.Errorf("Binomial(%d,%v) variance %v, want %v", n, p, variance, wantVar)
	}
}

func TestBinomialRegimes(t *testing.T) {
	r := New(9)
	// Direct counting (n <= 16), inversion (small mean), normal approx
	// (large mean), complement flip (p > 0.5).
	binomialMoments(t, r, 10, 0.3, 20000)
	binomialMoments(t, r, 10000, 0.0001414, 20000) // protocol regime: mean ~1.4
	binomialMoments(t, r, 10000, 0.01, 20000)      // large mean: normal approx
	binomialMoments(t, r, 1000, 0.9, 20000)        // complement path
}

func TestBinomialEdges(t *testing.T) {
	r := New(10)
	if r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial(0, .5) != 0")
	}
	if r.Binomial(100, 0) != 0 {
		t.Error("Binomial(100, 0) != 0")
	}
	if r.Binomial(100, 1) != 100 {
		t.Error("Binomial(100, 1) != 100")
	}
	if r.Binomial(-5, 0.5) != 0 {
		t.Error("Binomial(-5, .5) != 0")
	}
}

func TestSampleDistinctProperty(t *testing.T) {
	r := New(11)
	prop := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		out := r.SampleDistinct(k, n)
		if len(out) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinctFullRange(t *testing.T) {
	r := New(12)
	out := r.SampleDistinct(100, 100)
	seen := make(map[int]bool)
	for _, v := range out {
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("k=n sample not a permutation: %d unique", len(seen))
	}
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each element should be selected with probability k/n.
	r := New(13)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleDistinct(2, 20) {
			counts[v]++
		}
	}
	want := float64(trials) * 2 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestSampleDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleDistinct(5, 3) did not panic")
		}
	}()
	New(1).SampleDistinct(5, 3)
}

func TestPerm(t *testing.T) {
	r := New(14)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(15)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

// legacySampleDistinct is the original allocating implementation (dense
// partial Fisher-Yates, sparse map-based rejection). SampleDistinctAppend
// must consume the identical generator stream and produce the identical
// output order so simulations keep their published results bit-for-bit.
func legacySampleDistinct(r *Source, k, n int) []int {
	if k == 0 {
		return nil
	}
	out := make([]int, 0, k)
	if k*8 >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		return append(out, idx[:k]...)
	}
	seen := make(map[int]struct{}, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

func TestSampleDistinctAppendStreamEquivalence(t *testing.T) {
	var buf []int
	for trial := 0; trial < 500; trial++ {
		ra := New(uint64(trial))
		rb := New(uint64(trial))
		n := 1 + ra.Intn(300)
		rb.Intn(300) // keep the streams aligned
		k := ra.Intn(n + 1)
		rb.Intn(n + 1)
		want := legacySampleDistinct(ra, k, n)
		buf = rb.SampleDistinctAppend(buf[:0], k, n)
		if len(buf) != len(want) {
			t.Fatalf("trial %d (k=%d n=%d): len %d, want %d", trial, k, n, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("trial %d (k=%d n=%d): out[%d] = %d, want %d", trial, k, n, i, buf[i], want[i])
			}
		}
		// Both sources must have consumed the same number of variates.
		if ra.Uint64() != rb.Uint64() {
			t.Fatalf("trial %d (k=%d n=%d): generator streams diverged", trial, k, n)
		}
	}
}

func TestSampleDistinctAppendPreservesPrefix(t *testing.T) {
	r := New(3)
	buf := []int{7, 8, 9}
	buf = r.SampleDistinctAppend(buf, 4, 50)
	if len(buf) != 7 || buf[0] != 7 || buf[1] != 8 || buf[2] != 9 {
		t.Fatalf("prefix clobbered: %v", buf)
	}
	seen := map[int]bool{}
	for _, v := range buf[3:] {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad sample: %v", buf)
		}
		seen[v] = true
	}
}

func TestBinomialPowMemo(t *testing.T) {
	// The memoised math.Pow in binomialInversion must not change the sampled
	// stream: interleave draws over varying (n, p) and compare against a
	// fresh Source driven through a memo-less reference.
	ra, rb := New(77), New(77)
	ref := func(r *Source, n int, p float64) int {
		// Reference inversion sampler without the memo.
		q := 1 - p
		s := p / q
		pdf := math.Pow(q, float64(n))
		cdf := pdf
		u := r.Float64()
		k := 0
		for u > cdf && k < n {
			k++
			pdf *= s * float64(n-k+1) / float64(k)
			cdf += pdf
		}
		return k
	}
	cases := []struct {
		n int
		p float64
	}{{100, 0.02}, {100, 0.02}, {99, 0.02}, {100, 0.05}, {100, 0.02}, {500, 0.01}, {100, 0.02}}
	for i, c := range cases {
		got := ra.binomialInversion(c.n, c.p)
		want := ref(rb, c.n, c.p)
		if got != want {
			t.Fatalf("case %d (n=%d p=%v): got %d want %d", i, c.n, c.p, got, want)
		}
	}
}
