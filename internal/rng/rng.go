// Package rng provides a small, deterministic pseudo-random number source
// used by every simulation in this module.
//
// The protocols and experiments in this repository are Monte-Carlo
// simulations whose published outputs must be reproducible bit-for-bit from
// a seed. The standard library's math/rand/v2 would work, but pinning our
// own generator keeps results stable across Go releases and lets us derive
// independent child streams for parallel runs.
//
// The core generator is xoshiro256** seeded through SplitMix64, the
// combination recommended by the xoshiro authors.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s [4]uint64

	// Spare normal deviate from the last Box-Muller pair.
	normSpare    float64
	hasNormSpare bool

	// Memo of the last math.Pow(q, n) evaluated by binomialInversion. The
	// protocols draw Binomial(n, p) once per slot with p fixed for a whole
	// frame and n changing only when a tag is silenced, so consecutive slots
	// usually repeat the same (q, n) pair; caching the transcendental makes
	// the common draw a table walk. A memo hit returns the bit-identical
	// value a fresh math.Pow call would, so the sampled stream is unchanged.
	powQ   float64
	powN   int
	powVal float64
}

// New returns a Source seeded from seed. Distinct seeds yield streams that
// are, for simulation purposes, independent.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Split derives a child Source whose stream is independent of the parent's
// subsequent output. It is used to hand one generator to each Monte-Carlo
// run so runs can be reordered or parallelised without changing results.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform deviate in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	thresh := -n % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= thresh {
			return hi
		}
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate (Box-Muller, polar form).
func (r *Source) NormFloat64() float64 {
	if r.hasNormSpare {
		r.hasNormSpare = false
		return r.normSpare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.normSpare = v * f
		r.hasNormSpare = true
		return u * f
	}
}

// binomialInversionCutoff bounds the expected work of the sequential-search
// binomial sampler; above it the normal approximation is indistinguishable
// for our workloads (collision slots with hundreds of transmitters).
const binomialInversionCutoff = 32

// Binomial returns a sample from Binomial(n, p).
//
// The report probabilities in the RFID protocols keep n*p near the design
// constant omega (about 1.4-2.2), so the common case is handled by CDF
// inversion in O(n*p) expected time. For the rare large-mean case (e.g. the
// estimator bootstrap frames where p is far too high) a clamped normal
// approximation is used; those slots are deep collisions whichever exact
// value is drawn, so the approximation does not affect protocol behaviour.
func (r *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	flip := false
	if p > 0.5 {
		// Sample the complement to keep the mean small.
		p = 1 - p
		flip = true
	}
	var k int
	mean := float64(n) * p
	switch {
	case n <= 16:
		// Direct Bernoulli counting; cheapest and exact for tiny n.
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
	case mean <= binomialInversionCutoff:
		k = r.binomialInversion(n, p)
	default:
		sd := math.Sqrt(mean * (1 - p))
		k = int(math.Round(mean + sd*r.NormFloat64()))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
	}
	if flip {
		k = n - k
	}
	return k
}

// binomialInversion walks the binomial CDF from k=0. Requires n*p small
// enough that (1-p)^n does not underflow (guaranteed by the caller).
func (r *Source) binomialInversion(n int, p float64) int {
	q := 1 - p
	s := p / q
	if r.powQ != q || r.powN != n || r.powVal == 0 {
		r.powQ, r.powN, r.powVal = q, n, math.Pow(q, float64(n))
	}
	pdf := r.powVal
	cdf := pdf
	u := r.Float64()
	k := 0
	for u > cdf && k < n {
		k++
		pdf *= s * float64(n-k+1) / float64(k)
		cdf += pdf
	}
	return k
}

// SampleDistinct returns k distinct integers drawn uniformly from [0, n),
// in no particular order. It panics if k > n or k < 0.
func (r *Source) SampleDistinct(k, n int) []int {
	if k == 0 {
		return nil
	}
	out := r.SampleDistinctAppend(nil, k, n)
	return out[:k:k]
}

// SampleDistinctAppend draws k distinct integers uniformly from [0, n) and
// appends them to buf, which callers reuse across draws to keep the per-slot
// sampling allocation-free. It panics if k > n or k < 0. The generator
// stream it consumes is identical to SampleDistinct's for every (k, n): the
// same variates are drawn and the same acceptance decisions are made, so
// simulations keep their published outputs bit-for-bit.
func (r *Source) SampleDistinctAppend(buf []int, k, n int) []int {
	if k < 0 || k > n {
		panic("rng: SampleDistinct with k out of range")
	}
	if k == 0 {
		return buf
	}
	base := len(buf)
	if k*8 >= n {
		// Dense case: partial Fisher-Yates over an index array, materialised
		// in buf's spare capacity and truncated to the k chosen values.
		for i := 0; i < n; i++ {
			buf = append(buf, i)
		}
		idx := buf[base:]
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		return buf[:base+k]
	}
	// Sparse case: rejection sampling against the values already chosen.
	// k < n/8 here, and the protocols' per-slot draws keep k near the design
	// constant omega (single digits), so the linear duplicate scan beats a
	// map; the accept/reject decisions match the map-based original exactly.
	for len(buf)-base < k {
		v := r.Intn(n)
		dup := false
		for _, u := range buf[base:] {
			if u == v {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		buf = append(buf, v)
	}
	return buf
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
