// Dynamic-population campaigns: the Monte-Carlo harness over the workload
// driver instead of the batch Run, with the same per-run seed derivation
// and the same ordered-merge determinism contract as the static path (see
// docs/parallelism.md).
package sim

import (
	"sync"

	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/stats"
	"github.com/ancrfid/ancrfid/internal/tagid"
	"github.com/ancrfid/ancrfid/internal/workload"
)

// DynamicConfig describes a dynamic-population campaign: the campaign
// knobs of Config plus a workload schedule. Config.Tags is the initial
// population present when the session opens; the workload admits and
// revokes tags while it runs.
type DynamicConfig struct {
	// Config carries the campaign knobs (Runs, Seed, Workers, channel,
	// timing, tracing); Config.MaxSlots 0 lets the workload driver budget
	// by horizon instead of by initial population.
	Config
	// Workload is the arrival/departure schedule of every run. Each run
	// draws its schedule from a dedicated generator derived from
	// (Seed, run), so schedules are deterministic and independent of the
	// protocol's own draws.
	Workload workload.Config
}

// DynamicResult aggregates a dynamic campaign.
type DynamicResult struct {
	Protocol string
	// Runs holds one workload report per run, in run order.
	Runs []workload.Report

	// Admitted, Identified, DepartedUnread and ActiveUnread summarise the
	// per-run population accounting.
	Admitted       stats.Summary
	Identified     stats.Summary
	DepartedUnread stats.Summary
	ActiveUnread   stats.Summary
	// Throughput summarises identified tags per second of simulated time.
	Throughput stats.Summary
	// LatencyP50, LatencyP90 and LatencyP99 summarise the per-run
	// identification-latency percentiles, in seconds.
	LatencyP50 stats.Summary
	LatencyP90 stats.Summary
	LatencyP99 stats.Summary
}

// RunDynamic executes the dynamic campaign for one session protocol. With
// cfg.Workers > 1 the runs execute on a bounded worker pool with the
// static campaign's merge discipline: outcomes land in run order, traces
// are buffered and replayed in run order, and the first error reported is
// the lowest-indexed failing run's. Unlike the static path, a failing run
// still contributes its partial report to the error return's context —
// but the campaign result is withheld, exactly like Run.
func RunDynamic(p protocol.SessionProtocol, cfg DynamicConfig) (DynamicResult, error) {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Workers > 1 && cfg.Runs > 1 {
		return runDynamicParallel(p, cfg)
	}
	res := DynamicResult{Protocol: p.Name(), Runs: make([]workload.Report, 0, cfg.Runs)}
	for i := 0; i < cfg.Runs; i++ {
		rep, err := RunDynamicOnce(p, cfg, i)
		if cfg.Progress != nil {
			cfg.Progress(i, rep.Metrics, err)
		}
		if err != nil {
			return DynamicResult{}, runError(p, cfg.Config, i, err)
		}
		res.Runs = append(res.Runs, rep)
	}
	res.summarize()
	return res, nil
}

// RunDynamicOnce executes a single dynamic run with the deterministic
// generators derived from (cfg.Seed, run): the protocol draws from the
// run generator exactly as a batch run would, and the workload schedule
// draws from a Split-off child stream.
func RunDynamicOnce(p protocol.SessionProtocol, cfg DynamicConfig, run int) (workload.Report, error) {
	cfg.Config = cfg.Config.withDefaults()
	r := runRNG(cfg.Seed, run)
	tags := tagid.Population(r, cfg.Tags)
	wl := r.Split()
	ch := cfg.newChannel(r)
	env := &protocol.Env{
		RNG:      r,
		Tags:     tags,
		Channel:  ch,
		Timing:   cfg.Timing,
		TxModel:  cfg.TxModel,
		MaxSlots: cfg.MaxSlots,
		PAckLoss: cfg.PAckLoss,
		Tracer:   cfg.tracer(),
	}
	return workload.Run(p, env, wl, cfg.Workload)
}

// runDynamicParallel mirrors runParallel for workload reports; see that
// function for the determinism argument.
func runDynamicParallel(p protocol.SessionProtocol, cfg DynamicConfig) (DynamicResult, error) {
	workers := cfg.Workers
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	type outcome struct {
		rep workload.Report
		err error
		buf *obs.Buffer
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		outcomes = make([]*outcome, cfg.Runs)
		next     int
		inflight int
		failed   bool
		wg       sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if failed || next >= cfg.Runs {
				mu.Unlock()
				return
			}
			i := next
			next++
			inflight++
			mu.Unlock()

			runCfg := cfg
			runCfg.Tracer = nil
			var buf *obs.Buffer
			if cfg.Tracer != nil {
				buf = &obs.Buffer{}
				runCfg.Tracer = buf
			}
			rep, err := RunDynamicOnce(p, runCfg, i)

			mu.Lock()
			outcomes[i] = &outcome{rep: rep, err: err, buf: buf}
			inflight--
			if err != nil {
				failed = true
			}
			if cfg.Progress != nil {
				cfg.Progress(i, rep.Metrics, err)
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go worker()
	}

	res := DynamicResult{Protocol: p.Name(), Runs: make([]workload.Report, 0, cfg.Runs)}
	var firstErr error
	mu.Lock()
merge:
	for i := 0; i < cfg.Runs; i++ {
		for outcomes[i] == nil {
			if failed && i >= next && inflight == 0 {
				break merge
			}
			cond.Wait()
		}
		o := outcomes[i]
		outcomes[i] = nil
		mu.Unlock()
		if o.buf != nil {
			o.buf.Replay(cfg.Tracer)
		}
		if o.err != nil {
			firstErr = runError(p, cfg.Config, i, o.err)
			mu.Lock()
			break
		}
		res.Runs = append(res.Runs, o.rep)
		mu.Lock()
	}
	mu.Unlock()
	wg.Wait()

	if firstErr != nil {
		return DynamicResult{}, firstErr
	}
	res.summarize()
	return res, nil
}

func (r *DynamicResult) summarize() {
	n := len(r.Runs)
	var (
		adm = make([]float64, 0, n)
		idf = make([]float64, 0, n)
		dep = make([]float64, 0, n)
		act = make([]float64, 0, n)
		tp  = make([]float64, 0, n)
		p50 = make([]float64, 0, n)
		p90 = make([]float64, 0, n)
		p99 = make([]float64, 0, n)
	)
	for i := range r.Runs {
		rep := &r.Runs[i]
		adm = append(adm, float64(rep.Admitted))
		idf = append(idf, float64(rep.Identified))
		dep = append(dep, float64(rep.DepartedUnread))
		act = append(act, float64(rep.ActiveUnread))
		if rep.Duration > 0 {
			tp = append(tp, float64(rep.Identified)/rep.Duration.Seconds())
		}
		lat := rep.Latencies()
		if len(lat) > 0 {
			p50 = append(p50, workload.Percentile(lat, 50).Seconds())
			p90 = append(p90, workload.Percentile(lat, 90).Seconds())
			p99 = append(p99, workload.Percentile(lat, 99).Seconds())
		}
	}
	r.Admitted = stats.Summarize(adm)
	r.Identified = stats.Summarize(idf)
	r.DepartedUnread = stats.Summarize(dep)
	r.ActiveUnread = stats.Summarize(act)
	r.Throughput = stats.Summarize(tp)
	r.LatencyP50 = stats.Summarize(p50)
	r.LatencyP90 = stats.Summarize(p90)
	r.LatencyP99 = stats.Summarize(p99)
}
