package sim

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/workload"
)

func dynamicConfig(workers int) DynamicConfig {
	return DynamicConfig{
		Config: Config{Tags: 10, Runs: 6, Seed: 21, Workers: workers},
		Workload: workload.Config{
			Duration:      1500 * time.Millisecond,
			ArrivalRate:   60,
			DepartureRate: 0.3,
		},
	}
}

// TestRunDynamicParallelDeterminism holds the ordered-merge contract for
// dynamic campaigns: any worker count yields the identical reports and
// the byte-identical trace stream.
func TestRunDynamicParallelDeterminism(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})

	var seqTrace bytes.Buffer
	seqCfg := dynamicConfig(1)
	seqCfg.Tracer = obs.NewJSONL(&seqTrace)
	seq, err := RunDynamic(p, seqCfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8} {
		var trace bytes.Buffer
		cfg := dynamicConfig(workers)
		cfg.Tracer = obs.NewJSONL(&trace)
		got, err := RunDynamic(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Fatalf("workers=%d changed the dynamic campaign result", workers)
		}
		if !bytes.Equal(seqTrace.Bytes(), trace.Bytes()) {
			t.Fatalf("workers=%d changed the trace stream", workers)
		}
	}
}

// TestRunDynamicError checks a failing run surfaces as the campaign error
// with its run index, like the static path.
func TestRunDynamicError(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	cfg := dynamicConfig(1)
	cfg.MaxSlots = 3 // starve the budget so the horizon is unreachable
	_, err := RunDynamic(p, cfg)
	if !errors.Is(err, protocol.ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
}

// TestRunDynamicOncePartialReport checks the failing run still hands back
// its partially accumulated report (the CLI prints it).
func TestRunDynamicOncePartialReport(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	cfg := dynamicConfig(1)
	cfg.MaxSlots = 3
	rep, err := RunDynamicOnce(p, cfg, 0)
	if !errors.Is(err, protocol.ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
	if rep.Admitted == 0 {
		t.Fatal("partial report lost the admitted population")
	}
}
