// Fleet campaigns: the Monte-Carlo harness over the multi-reader
// discrete-event scheduler (internal/fleet), with the same per-run seed
// derivation and the same ordered-merge determinism contract as the static
// and dynamic paths (see docs/parallelism.md and docs/fleet.md).
package sim

import (
	"sync"

	"github.com/ancrfid/ancrfid/internal/fleet"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/stats"
)

// FleetConfig describes a multi-reader campaign: the campaign knobs of
// Config plus the fleet topology. Config.Tags is the initial population
// per reader; Config.Workers parallelises across Monte-Carlo runs while
// Fleet.Workers parallelises the zone shards inside each run — the two
// compose, and every combination is bit-identical.
type FleetConfig struct {
	// Config carries the campaign knobs (Runs, Seed, Workers, channel,
	// timing, faults, tracing). Its environment fields are copied into the
	// fleet config of every run; reader 0 of a one-reader one-zone fleet
	// reproduces the plain RunOnce run exactly.
	Config
	// Fleet is the topology: reader and zone counts, coordination policy,
	// link budget, migration workload, per-reader overrides. Its Seed,
	// Tags, channel/timing/fault and Tracer fields are overwritten from
	// Config per run.
	Fleet fleet.Config
}

// fleetConfig assembles the per-run fleet configuration from the campaign
// knobs.
func (c FleetConfig) fleetConfig() fleet.Config {
	fc := c.Fleet
	fc.Seed = c.Seed
	fc.Tags = c.Tags
	fc.Lambda = c.Lambda
	fc.Timing = c.Timing
	fc.TxModel = c.TxModel
	fc.MaxSlots = c.MaxSlots
	fc.PAckLoss = c.PAckLoss
	fc.NewChannel = c.NewChannel
	fc.Faults = c.Faults
	fc.Tracer = c.tracer()
	return fc
}

// FleetResult aggregates a fleet campaign.
type FleetResult struct {
	Protocol string
	Policy   string
	// Runs holds one fleet report per run, in run order.
	Runs []fleet.Report

	// Identified, DepartedUnread and ActiveUnread summarise the fleet-wide
	// per-run population accounting.
	Identified     stats.Summary
	DepartedUnread stats.Summary
	ActiveUnread   stats.Summary
	// Migrations, ReaderCollisions and BlockedSlots summarise the fleet
	// scheduler's per-run coordination counters.
	Migrations       stats.Summary
	ReaderCollisions stats.Summary
	BlockedSlots     stats.Summary
	// Throughput summarises fleet-wide identified tags per second of fleet
	// wall-clock time.
	Throughput stats.Summary
}

// fleetRunMetrics sums the per-reader protocol metrics of one fleet run
// into the campaign-level Metrics handed to Progress: fleet-wide slot and
// identification counts, with OnAir being total reader air time.
func fleetRunMetrics(rep *fleet.Report) protocol.Metrics {
	var m protocol.Metrics
	for _, rr := range rep.Readers {
		m.Tags += rr.Metrics.Tags
		m.EmptySlots += rr.Metrics.EmptySlots
		m.SingletonSlots += rr.Metrics.SingletonSlots
		m.CollisionSlots += rr.Metrics.CollisionSlots
		m.DirectIDs += rr.Metrics.DirectIDs
		m.ResolvedIDs += rr.Metrics.ResolvedIDs
		m.Frames += rr.Metrics.Frames
		m.TagTransmissions += rr.Metrics.TagTransmissions
		m.OnAir += rr.Metrics.OnAir
	}
	return m
}

// RunFleet executes the fleet campaign for one session protocol. With
// cfg.Workers > 1 the runs execute on a bounded worker pool with the
// static campaign's merge discipline: outcomes land in run order, traces
// are buffered and replayed in run order, and the first error reported is
// the lowest-indexed failing run's.
func RunFleet(p protocol.SessionProtocol, cfg FleetConfig) (FleetResult, error) {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Workers > 1 && cfg.Runs > 1 {
		return runFleetParallel(p, cfg)
	}
	res := FleetResult{Protocol: p.Name(), Runs: make([]fleet.Report, 0, cfg.Runs)}
	for i := 0; i < cfg.Runs; i++ {
		rep, err := RunFleetOnce(p, cfg, i)
		if cfg.Progress != nil {
			cfg.Progress(i, fleetRunMetrics(&rep), err)
		}
		if err != nil {
			return FleetResult{}, runError(p, cfg.Config, i, err)
		}
		res.Runs = append(res.Runs, rep)
	}
	res.summarize()
	return res, nil
}

// RunFleetOnce executes a single fleet run with the deterministic
// generators derived from (cfg.Seed, run, reader index); see fleet.Run.
func RunFleetOnce(p protocol.SessionProtocol, cfg FleetConfig, run int) (fleet.Report, error) {
	cfg.Config = cfg.Config.withDefaults()
	return fleet.Run(p, cfg.fleetConfig(), run)
}

// runFleetParallel mirrors runParallel for fleet reports; see that
// function for the determinism argument.
func runFleetParallel(p protocol.SessionProtocol, cfg FleetConfig) (FleetResult, error) {
	workers := cfg.Workers
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	type outcome struct {
		rep fleet.Report
		err error
		buf *obs.Buffer
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		outcomes = make([]*outcome, cfg.Runs)
		next     int
		inflight int
		failed   bool
		wg       sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if failed || next >= cfg.Runs {
				mu.Unlock()
				return
			}
			i := next
			next++
			inflight++
			mu.Unlock()

			runCfg := cfg
			runCfg.Tracer = nil
			var buf *obs.Buffer
			if cfg.Tracer != nil {
				buf = &obs.Buffer{}
				runCfg.Tracer = buf
			}
			rep, err := RunFleetOnce(p, runCfg, i)

			mu.Lock()
			outcomes[i] = &outcome{rep: rep, err: err, buf: buf}
			inflight--
			if err != nil {
				failed = true
			}
			if cfg.Progress != nil {
				cfg.Progress(i, fleetRunMetrics(&rep), err)
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go worker()
	}

	res := FleetResult{Protocol: p.Name(), Runs: make([]fleet.Report, 0, cfg.Runs)}
	var firstErr error
	mu.Lock()
merge:
	for i := 0; i < cfg.Runs; i++ {
		for outcomes[i] == nil {
			if failed && i >= next && inflight == 0 {
				break merge
			}
			cond.Wait()
		}
		o := outcomes[i]
		outcomes[i] = nil
		mu.Unlock()
		if o.buf != nil {
			o.buf.Replay(cfg.Tracer)
		}
		if o.err != nil {
			firstErr = runError(p, cfg.Config, i, o.err)
			mu.Lock()
			break
		}
		res.Runs = append(res.Runs, o.rep)
		mu.Lock()
	}
	mu.Unlock()
	wg.Wait()

	if firstErr != nil {
		return FleetResult{}, firstErr
	}
	res.summarize()
	return res, nil
}

func (r *FleetResult) summarize() {
	n := len(r.Runs)
	var (
		idf = make([]float64, 0, n)
		dep = make([]float64, 0, n)
		act = make([]float64, 0, n)
		mig = make([]float64, 0, n)
		col = make([]float64, 0, n)
		blk = make([]float64, 0, n)
		tp  = make([]float64, 0, n)
	)
	for i := range r.Runs {
		rep := &r.Runs[i]
		if r.Policy == "" {
			r.Policy = rep.Policy
		}
		idf = append(idf, float64(rep.Identified))
		dep = append(dep, float64(rep.DepartedUnread))
		act = append(act, float64(rep.ActiveUnread))
		mig = append(mig, float64(rep.Migrations))
		col = append(col, float64(rep.ReaderCollisions))
		blk = append(blk, float64(rep.BlockedSlots))
		if rep.Duration > 0 {
			tp = append(tp, float64(rep.Identified)/rep.Duration.Seconds())
		}
	}
	r.Identified = stats.Summarize(idf)
	r.DepartedUnread = stats.Summarize(dep)
	r.ActiveUnread = stats.Summarize(act)
	r.Migrations = stats.Summarize(mig)
	r.ReaderCollisions = stats.Summarize(col)
	r.BlockedSlots = stats.Summarize(blk)
	r.Throughput = stats.Summarize(tp)
}
