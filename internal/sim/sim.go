// Package sim is the Monte-Carlo harness: it executes a protocol over many
// independent runs with deterministic per-run seeds and aggregates the
// metrics the paper's tables report. The paper averages 100 runs per data
// point (Section VI); every experiment here does the same by default.
package sim

import (
	"fmt"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/stats"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// DefaultRuns is the paper's Monte-Carlo repetition count.
const DefaultRuns = 100

// Config describes one simulation campaign (a protocol at one population
// size).
type Config struct {
	// Tags is the population size N.
	Tags int
	// Runs is the number of independent Monte-Carlo runs (default 100).
	Runs int
	// Seed makes the whole campaign reproducible. Run i derives its own
	// generator from (Seed, i), so runs are independent and reorderable.
	Seed uint64
	// NewChannel builds the channel model for a run; nil selects the
	// paper's abstract model with Lambda.
	NewChannel func(r *rng.Source) channel.Channel
	// Lambda is the ANC capability of the default abstract channel
	// (ignored when NewChannel is set); zero selects 2.
	Lambda int
	// Timing is the air-interface model; the zero value selects Philips
	// I-Code.
	Timing air.Timing
	// TxModel selects the transmitter-set model (default TxBinomial).
	TxModel protocol.TxModel
	// MaxSlots bounds each run (0 = automatic).
	MaxSlots int
	// PAckLoss is the probability a reader acknowledgement is lost (see
	// protocol.Env.PAckLoss).
	PAckLoss float64
	// Tracer, when non-nil, receives the typed event stream of every run in
	// the campaign (see internal/obs). Events from consecutive runs are
	// delimited by RunStart/RunEnd pairs.
	Tracer obs.Tracer
	// Metrics, when non-nil, aggregates campaign-wide counters and
	// histograms: every run's events are folded into the registry through an
	// obs.MetricsTracer, alongside (and independent of) Tracer.
	Metrics *obs.Registry
	// Progress, when non-nil, is called after each completed run with the
	// 0-based run index and the run's metrics; err is non-nil when the run
	// failed (the campaign then stops after the callback).
	Progress func(run int, m protocol.Metrics, err error)
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = DefaultRuns
	}
	if c.Lambda <= 0 {
		c.Lambda = 2
	}
	if c.Timing == (air.Timing{}) {
		c.Timing = air.ICode()
	}
	if c.TxModel == 0 {
		c.TxModel = protocol.TxBinomial
	}
	return c
}

// Result aggregates a campaign.
type Result struct {
	Protocol string
	Tags     int
	Runs     []protocol.Metrics

	Throughput     stats.Summary
	EmptySlots     stats.Summary
	SingletonSlots stats.Summary
	CollisionSlots stats.Summary
	TotalSlots     stats.Summary
	DirectIDs      stats.Summary
	ResolvedIDs    stats.Summary
}

// Run executes the campaign for one protocol.
func Run(p protocol.Protocol, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Protocol: p.Name(), Tags: cfg.Tags, Runs: make([]protocol.Metrics, 0, cfg.Runs)}

	for i := 0; i < cfg.Runs; i++ {
		m, err := RunOnce(p, cfg, i)
		if cfg.Progress != nil {
			cfg.Progress(i, m, err)
		}
		if err != nil {
			return res, fmt.Errorf("%s run %d (N=%d): %w", p.Name(), i, cfg.Tags, err)
		}
		res.Runs = append(res.Runs, m)
	}
	res.summarize()
	return res, nil
}

// RunOnce executes a single run of the campaign with the deterministic
// generator derived from (cfg.Seed, run).
func RunOnce(p protocol.Protocol, cfg Config, run int) (protocol.Metrics, error) {
	cfg = cfg.withDefaults()
	r := runRNG(cfg.Seed, run)
	tags := tagid.Population(r, cfg.Tags)
	ch := cfg.newChannel(r)
	env := &protocol.Env{
		RNG:      r,
		Tags:     tags,
		Channel:  ch,
		Timing:   cfg.Timing,
		TxModel:  cfg.TxModel,
		MaxSlots: cfg.MaxSlots,
		PAckLoss: cfg.PAckLoss,
		Tracer:   cfg.tracer(),
	}
	return p.Run(env)
}

// tracer combines the campaign's event tracer with the metrics registry
// into the single tracer each run's Env carries. Nil when neither is set,
// so untraced campaigns keep the zero-cost fast path.
func (c Config) tracer() obs.Tracer {
	if c.Metrics == nil {
		return c.Tracer
	}
	return obs.Multi(obs.NewMetricsTracer(c.Metrics), c.Tracer)
}

func (c Config) newChannel(r *rng.Source) channel.Channel {
	if c.NewChannel != nil {
		return c.NewChannel(r)
	}
	return channel.NewAbstract(channel.AbstractConfig{Lambda: c.Lambda}, r)
}

// runRNG derives the run's generator: a SplitMix-style mix of the campaign
// seed and the run index, so each run has an independent stream.
func runRNG(seed uint64, run int) *rng.Source {
	return rng.New(seed ^ (uint64(run)+1)*0x9e3779b97f4a7c15)
}

func (r *Result) summarize() {
	n := len(r.Runs)
	var (
		tp  = make([]float64, 0, n)
		e   = make([]float64, 0, n)
		s   = make([]float64, 0, n)
		c   = make([]float64, 0, n)
		tot = make([]float64, 0, n)
		d   = make([]float64, 0, n)
		rv  = make([]float64, 0, n)
	)
	for _, m := range r.Runs {
		tp = append(tp, m.Throughput())
		e = append(e, float64(m.EmptySlots))
		s = append(s, float64(m.SingletonSlots))
		c = append(c, float64(m.CollisionSlots))
		tot = append(tot, float64(m.TotalSlots()))
		d = append(d, float64(m.DirectIDs))
		rv = append(rv, float64(m.ResolvedIDs))
	}
	r.Throughput = stats.Summarize(tp)
	r.EmptySlots = stats.Summarize(e)
	r.SingletonSlots = stats.Summarize(s)
	r.CollisionSlots = stats.Summarize(c)
	r.TotalSlots = stats.Summarize(tot)
	r.DirectIDs = stats.Summarize(d)
	r.ResolvedIDs = stats.Summarize(rv)
}
