// Package sim is the Monte-Carlo harness: it executes a protocol over many
// independent runs with deterministic per-run seeds and aggregates the
// metrics the paper's tables report. The paper averages 100 runs per data
// point (Section VI); every experiment here does the same by default.
package sim

import (
	"fmt"
	"sync"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/fault"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/stats"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// DefaultRuns is the paper's Monte-Carlo repetition count.
const DefaultRuns = 100

// Config describes one simulation campaign (a protocol at one population
// size).
type Config struct {
	// Tags is the population size N.
	Tags int
	// Runs is the number of independent Monte-Carlo runs (default 100).
	Runs int
	// Seed makes the whole campaign reproducible. Run i derives its own
	// generator from (Seed, i), so runs are independent and reorderable.
	Seed uint64
	// Workers bounds the number of runs executed concurrently. 0 or 1
	// executes runs sequentially on the calling goroutine (the library
	// default); larger values fan the runs across a worker pool. The
	// campaign's Result, trace stream and metrics registry are
	// bit-identical for every worker count: results are merged by run
	// index, each run's tracer events are buffered and replayed in run
	// order, and registry counters are commutative atomics. See
	// docs/parallelism.md for the full determinism contract.
	Workers int
	// NewChannel builds the channel model for a run; nil selects the
	// paper's abstract model with Lambda.
	NewChannel func(r *rng.Source) channel.Channel
	// Lambda is the ANC capability of the default abstract channel
	// (ignored when NewChannel is set); zero selects 2.
	Lambda int
	// Capability extends the default abstract channel with the unified
	// decode-capability model: MaxOrder overrides Lambda and CaptureSINRdB
	// enables capture-effect decoding over the link budget (ignored when
	// NewChannel is set). The zero value is the degenerate capability —
	// campaigns are bit-identical to earlier releases.
	Capability channel.Capability
	// Timing is the air-interface model; the zero value selects Philips
	// I-Code.
	Timing air.Timing
	// TxModel selects the transmitter-set model (default TxBinomial).
	TxModel protocol.TxModel
	// MaxSlots bounds each run (0 = automatic).
	MaxSlots int
	// PAckLoss is the probability a reader acknowledgement is lost (see
	// protocol.Env.PAckLoss).
	PAckLoss float64
	// Stream enables the streaming campaign mode for mega-N populations:
	// identified tags are compacted out of the active set, fully-resolved
	// collision records hand their recordings back to the channel for
	// reuse, and the runner recycles its per-run arenas (population
	// buffer, channel state, protocol session structures) across
	// repetitions, so steady-state memory tracks the outstanding
	// population instead of the cumulative one. Streaming changes memory
	// management only — no RNG draw, decode decision or trace event moves
	// — so a streaming campaign is bit-identical to a non-streaming one.
	// See docs/performance.md.
	Stream bool
	// Faults configures deterministic fault injection (see internal/fault).
	// The zero value is the fault-free fast path: no wrapper channel, no
	// extra RNG draws, bit-identical results and traces to earlier
	// releases. When enabled, each run derives its injector purely from
	// (Seed, run index) — like the run RNG — so campaigns stay reproducible
	// and reorderable across worker counts.
	Faults fault.Config
	// Tracer, when non-nil, receives the typed event stream of every run in
	// the campaign (see internal/obs). Events from consecutive runs are
	// delimited by RunStart/RunEnd pairs.
	Tracer obs.Tracer
	// Metrics, when non-nil, aggregates campaign-wide counters and
	// histograms: every run's events are folded into the registry through an
	// obs.MetricsTracer, alongside (and independent of) Tracer.
	Metrics *obs.Registry
	// Progress, when non-nil, is called after each completed run with the
	// 0-based run index and the run's metrics; err is non-nil when the run
	// failed (the campaign then stops after the callback).
	Progress func(run int, m protocol.Metrics, err error)
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = DefaultRuns
	}
	if c.Lambda <= 0 {
		c.Lambda = 2
	}
	if c.Timing == (air.Timing{}) {
		c.Timing = air.ICode()
	}
	if c.TxModel == 0 {
		c.TxModel = protocol.TxBinomial
	}
	return c
}

// Result aggregates a campaign.
type Result struct {
	Protocol string
	Tags     int
	Runs     []protocol.Metrics

	Throughput     stats.Summary
	EmptySlots     stats.Summary
	SingletonSlots stats.Summary
	CollisionSlots stats.Summary
	TotalSlots     stats.Summary
	DirectIDs      stats.Summary
	ResolvedIDs    stats.Summary
}

// Run executes the campaign for one protocol. With cfg.Workers > 1 the
// runs execute on a bounded worker pool; the outcome is bit-identical to
// the sequential campaign (see Config.Workers). On error Run returns the
// zero Result together with the error of the lowest-indexed failing run —
// callers never see a half-populated summary.
func Run(p protocol.Protocol, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers > 1 && cfg.Runs > 1 {
		return runParallel(p, cfg)
	}
	res := Result{Protocol: p.Name(), Tags: cfg.Tags, Runs: make([]protocol.Metrics, 0, cfg.Runs)}

	var sc runScratch
	for i := 0; i < cfg.Runs; i++ {
		m, err := runOnce(p, cfg, i, &sc)
		if cfg.Progress != nil {
			cfg.Progress(i, m, err)
		}
		if err != nil {
			return Result{}, runError(p, cfg, i, err)
		}
		res.Runs = append(res.Runs, m)
	}
	res.summarize()
	return res, nil
}

// runError wraps a run's error with its campaign context, identically for
// the sequential and parallel paths.
func runError(p protocol.Protocol, cfg Config, run int, err error) error {
	return fmt.Errorf("%s run %d (N=%d): %w", p.Name(), run, cfg.Tags, err)
}

// runParallel executes the campaign's runs across min(Workers, Runs)
// goroutines and merges the outcomes deterministically:
//
//   - Workers claim run indices from an ascending dispatch cursor, so
//     whenever run i executes, every run j < i has been dispatched too.
//   - Each run's metrics land in the slot its index names; summaries are
//     computed from the index-ordered slice exactly as the sequential path
//     does.
//   - cfg.Metrics is fed live through per-run MetricsTracers — its atomic
//     counters commute, so the final dump is order-independent.
//   - cfg.Tracer is never called concurrently: each run records its events
//     into an obs.Buffer, and the merge loop below replays the buffers in
//     run order as the completed prefix grows, so the trace is a
//     deterministic sequence of RunStart/RunEnd-delimited streams.
//   - cfg.Progress is invoked under the pool lock (serialized), but in
//     completion order, not run order.
//   - The first error (always the lowest failing index, because dispatch
//     is ascending and lower runs are deterministic) cancels dispatch of
//     the remaining runs; in-flight runs drain before Run returns.
func runParallel(p protocol.Protocol, cfg Config) (Result, error) {
	workers := cfg.Workers
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	type outcome struct {
		m   protocol.Metrics
		err error
		buf *obs.Buffer
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		outcomes = make([]*outcome, cfg.Runs)
		next     int // next run index to dispatch
		inflight int // dispatched but not yet deposited
		failed   bool
		wg       sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		var sc runScratch
		for {
			mu.Lock()
			if failed || next >= cfg.Runs {
				mu.Unlock()
				return
			}
			i := next
			next++
			inflight++
			mu.Unlock()

			runCfg := cfg
			runCfg.Tracer = nil // untraced runs keep the zero-cost fast path
			var buf *obs.Buffer
			if cfg.Tracer != nil {
				buf = &obs.Buffer{}
				runCfg.Tracer = buf
			}
			m, err := runOnce(p, runCfg, i, &sc)

			mu.Lock()
			outcomes[i] = &outcome{m: m, err: err, buf: buf}
			inflight--
			if err != nil {
				failed = true
			}
			if cfg.Progress != nil {
				cfg.Progress(i, m, err)
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go worker()
	}

	res := Result{Protocol: p.Name(), Tags: cfg.Tags, Runs: make([]protocol.Metrics, 0, cfg.Runs)}
	var firstErr error
	mu.Lock()
merge:
	for i := 0; i < cfg.Runs; i++ {
		for outcomes[i] == nil {
			if failed && i >= next && inflight == 0 {
				// Run i was cancelled before dispatch; nothing more to merge.
				break merge
			}
			cond.Wait()
		}
		o := outcomes[i]
		outcomes[i] = nil // release the buffer as the prefix is consumed
		mu.Unlock()
		if o.buf != nil {
			o.buf.Replay(cfg.Tracer)
		}
		if o.err != nil {
			firstErr = runError(p, cfg, i, o.err)
			mu.Lock()
			break
		}
		res.Runs = append(res.Runs, o.m)
		mu.Lock()
	}
	mu.Unlock()
	wg.Wait()

	if firstErr != nil {
		return Result{}, firstErr
	}
	res.summarize()
	return res, nil
}

// runScratch holds the arenas one campaign worker recycles across its
// runs: the population buffer, the runner-constructed channel (rewound via
// channel.Resettable instead of reallocated) and the protocol scratch
// container. Reuse never changes a run's draws or decisions — the
// scratch-free RunOnce and runOnce are bit-identical.
type runScratch struct {
	tags []tagid.ID
	ch   channel.Channel
	ps   protocol.Scratch
}

// RunOnce executes a single run of the campaign with the deterministic
// generator derived from (cfg.Seed, run).
func RunOnce(p protocol.Protocol, cfg Config, run int) (protocol.Metrics, error) {
	return runOnce(p, cfg, run, nil)
}

// runOnce is RunOnce with an optional cross-run scratch (nil allocates
// everything fresh).
func runOnce(p protocol.Protocol, cfg Config, run int, sc *runScratch) (protocol.Metrics, error) {
	cfg = cfg.withDefaults()
	r := runRNG(cfg.Seed, run)
	var tags []tagid.ID
	if sc != nil {
		sc.tags = tagid.PopulationAppend(sc.tags, r, cfg.Tags)
		tags = sc.tags
	} else {
		tags = tagid.Population(r, cfg.Tags)
	}
	var ch channel.Channel
	if sc != nil && cfg.NewChannel == nil {
		// Only channels the runner built itself are reused: a NewChannel
		// hook may capture per-run state the runner cannot see.
		if rc, ok := sc.ch.(channel.Resettable); ok {
			rc.Reset(r)
			ch = sc.ch
		}
	}
	if ch == nil {
		ch = cfg.newChannel(r)
		if sc != nil && cfg.NewChannel == nil {
			sc.ch = ch
		}
	}
	env := &protocol.Env{
		RNG:      r,
		Tags:     tags,
		Channel:  ch,
		Timing:   cfg.Timing,
		TxModel:  cfg.TxModel,
		MaxSlots: cfg.MaxSlots,
		PAckLoss: cfg.PAckLoss,
		Tracer:   cfg.tracer(),
		Stream:   cfg.Stream,
	}
	if sc != nil {
		env.Scratch = &sc.ps
	}
	if cfg.Faults.Enabled() {
		inj := fault.New(cfg.Faults, cfg.Seed, run)
		fch := fault.WrapChannel(ch, inj)
		fch.Tracer = env.Tracer
		fch.AdmitAll(tags)
		env.Channel = fch
		env.Faults = inj
	}
	return p.Run(env)
}

// tracer combines the campaign's event tracer with the metrics registry
// into the single tracer each run's Env carries. Nil when neither is set,
// so untraced campaigns keep the zero-cost fast path.
func (c Config) tracer() obs.Tracer {
	if c.Metrics == nil {
		return c.Tracer
	}
	return obs.Multi(obs.NewMetricsTracer(c.Metrics), c.Tracer)
}

func (c Config) newChannel(r *rng.Source) channel.Channel {
	if c.NewChannel != nil {
		return c.NewChannel(r)
	}
	return channel.NewAbstract(channel.AbstractConfig{Lambda: c.Lambda, Capability: c.Capability}, r)
}

// runRNG derives the run's generator: a SplitMix-style mix of the campaign
// seed and the run index, so each run has an independent stream.
func runRNG(seed uint64, run int) *rng.Source {
	return rng.New(seed ^ (uint64(run)+1)*0x9e3779b97f4a7c15)
}

func (r *Result) summarize() {
	n := len(r.Runs)
	var (
		tp  = make([]float64, 0, n)
		e   = make([]float64, 0, n)
		s   = make([]float64, 0, n)
		c   = make([]float64, 0, n)
		tot = make([]float64, 0, n)
		d   = make([]float64, 0, n)
		rv  = make([]float64, 0, n)
	)
	for _, m := range r.Runs {
		tp = append(tp, m.Throughput())
		e = append(e, float64(m.EmptySlots))
		s = append(s, float64(m.SingletonSlots))
		c = append(c, float64(m.CollisionSlots))
		tot = append(tot, float64(m.TotalSlots()))
		d = append(d, float64(m.DirectIDs))
		rv = append(rv, float64(m.ResolvedIDs))
	}
	r.Throughput = stats.Summarize(tp)
	r.EmptySlots = stats.Summarize(e)
	r.SingletonSlots = stats.Summarize(s)
	r.CollisionSlots = stats.Summarize(c)
	r.TotalSlots = stats.Summarize(tot)
	r.DirectIDs = stats.Summarize(d)
	r.ResolvedIDs = stats.Summarize(rv)
}
