// Chaos campaigns: the Monte-Carlo harness over a fault-injected dynamic
// run with reader crash-restart. The chaos driver is a hardened variant of
// the workload driver whose entire schedule — arrivals, departures AND
// faults — is precomputed as a pure function of (seed, run), so a reader
// crash can rewind the session to its last checkpoint and the replayed
// slots face the identical world.
//
// The driver also audits the invariants the robustness work promises
// (docs/robustness.md): no tag identified twice, no phantom IDs, and exact
// population accounting at the horizon. Violations are tallied in the
// ChaosReport rather than panicking, so the chaos suite can assert them and
// a CLI user can see them.
package sim

import (
	"container/heap"
	"math"
	"sync"
	"time"

	"github.com/ancrfid/ancrfid/internal/fault"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/stats"
	"github.com/ancrfid/ancrfid/internal/tagid"
	"github.com/ancrfid/ancrfid/internal/workload"
)

// DefaultChaosCheckpointEvery is the default checkpoint cadence of the
// chaos driver, in executed slots.
const DefaultChaosCheckpointEvery = 32

// ChaosConfig describes a chaos campaign: campaign knobs (including the
// fault configuration in Config.Faults), a dynamic workload, and the
// crash-recovery checkpoint cadence.
type ChaosConfig struct {
	// Config carries the campaign knobs. Config.Faults selects the fault
	// shapes; Config.Tags is the initial population.
	Config
	// Workload is the arrival/departure schedule. Its CheckpointEvery field
	// is ignored here — the chaos driver checkpoints by executed slots (see
	// CheckpointEvery below) so that crash rollback cost is bounded in
	// reader work, not in simulated time.
	Workload workload.Config
	// CheckpointEvery is the checkpoint cadence in executed slots (default
	// DefaultChaosCheckpointEvery). When Config.Faults.CrashEvery is
	// positive it is raised to at least twice this cadence, so every crash
	// cycle makes net forward progress.
	CheckpointEvery int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	c.Config = c.Config.withDefaults()
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = DefaultChaosCheckpointEvery
	}
	if c.Faults.CrashEvery > 0 && c.Faults.CrashEvery < 2*c.CheckpointEvery {
		c.Faults.CrashEvery = 2 * c.CheckpointEvery
	}
	return c
}

// ChaosReport is the outcome of one chaos run.
type ChaosReport struct {
	Protocol string
	// Metrics are the session's protocol metrics at cutoff. Under crashes
	// they reflect the surviving timeline (rolled-back slots are not
	// counted twice — the session state itself was rewound).
	Metrics protocol.Metrics
	// Tags holds one lifecycle record per admitted tag, in admission order.
	Tags []workload.TagRecord

	// Admitted == Identified + DepartedUnread + ActiveUnread is the exact
	// accounting invariant; Unaccounted is its violation count (0 always,
	// unless the harness itself is broken).
	Admitted       int
	Identified     int
	DepartedUnread int
	ActiveUnread   int

	// DupIdents counts tags the session reported identified twice within
	// one crash-free stretch; Phantoms counts reported IDs that were never
	// admitted. Both must be zero — they are the hard invariants the
	// record-store defenses exist for.
	DupIdents int
	Phantoms  int

	// Crashes counts reader crash-restarts; Checkpoints the recovery marks
	// taken; WallSteps the total executed slots including rolled-back work.
	Crashes     int
	Checkpoints int
	WallSteps   uint64

	// FaultsInjected and Quarantined tally the run's FaultInjected and
	// RecordQuarantined events (rolled-back work included: the trace is the
	// honest wall-clock history, not the surviving timeline).
	FaultsInjected int
	Quarantined    int

	// Stalls counts stall episodes the health monitor flagged (stretches of
	// non-empty slots with no new identification; see obs.HealthMonitor),
	// and HealthScore is the monitor's final 0-100 degradation score.
	Stalls      int
	HealthScore float64

	// Duration is the simulated air time of the surviving timeline.
	Duration time.Duration
}

// Accounted reports whether the exact-accounting invariant holds.
func (r *ChaosReport) Accounted() bool {
	return r.Admitted == r.Identified+r.DepartedUnread+r.ActiveUnread
}

// ChaosResult aggregates a chaos campaign.
type ChaosResult struct {
	Protocol string
	Runs     []ChaosReport

	Admitted       stats.Summary
	Identified     stats.Summary
	DepartedUnread stats.Summary
	ActiveUnread   stats.Summary
	Throughput     stats.Summary
	Crashes        stats.Summary
	FaultsInjected stats.Summary
	Quarantined    stats.Summary
	Stalls         stats.Summary
	HealthScore    stats.Summary
}

// RunChaos executes the chaos campaign for one session protocol, with the
// static campaign's parallel merge discipline (see Config.Workers): results
// land in run order, traces replay in run order, and the first error
// reported is the lowest-indexed failing run's.
func RunChaos(p protocol.SessionProtocol, cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers > 1 && cfg.Runs > 1 {
		return runChaosParallel(p, cfg)
	}
	res := ChaosResult{Protocol: p.Name(), Runs: make([]ChaosReport, 0, cfg.Runs)}
	for i := 0; i < cfg.Runs; i++ {
		rep, err := RunChaosOnce(p, cfg, i)
		if cfg.Progress != nil {
			cfg.Progress(i, rep.Metrics, err)
		}
		if err != nil {
			return ChaosResult{}, runError(p, cfg.Config, i, err)
		}
		res.Runs = append(res.Runs, rep)
	}
	res.summarize()
	return res, nil
}

// chaosArrival is one scheduled admission of the precomputed script.
type chaosArrival struct {
	at time.Duration
	id tagid.ID
}

// chaosScript is the run's precomputed world: every arrival and departure,
// drawn up front from the workload generator so the schedule is a pure
// function of (seed, run) and survives any number of crash rollbacks.
type chaosScript struct {
	arrivals   []chaosArrival
	departures []workloadDeparture // sorted by (at, seq)
}

type workloadDeparture struct {
	at  time.Duration
	seq int
}

type workloadDepartureHeap []workloadDeparture

func (h workloadDepartureHeap) Len() int { return len(h) }
func (h workloadDepartureHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h workloadDepartureHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *workloadDepartureHeap) Push(x any)   { *h = append(*h, x.(workloadDeparture)) }
func (h *workloadDepartureHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// chaosMark is one crash-recovery checkpoint: the session checkpoint plus a
// deep copy of the harness's own progress (script cursors and per-tag
// lifecycle), so a restore rewinds driver and session to the same instant.
type chaosMark struct {
	cp     protocol.Checkpoint
	seq    int // checkpoint sequence number
	at     time.Duration
	arrCur int
	depCur int
	tags   []workload.TagRecord
}

// RunChaosOnce executes a single chaos run with the deterministic
// generators derived from (cfg.Seed, run).
func RunChaosOnce(p protocol.SessionProtocol, cfg ChaosConfig, run int) (ChaosReport, error) {
	cfg = cfg.withDefaults()
	wlCfg := cfg.Workload
	if wlCfg.Burst <= 0 {
		wlCfg.Burst = 1
	}

	r := runRNG(cfg.Seed, run)
	tags := tagid.Population(r, cfg.Tags)
	wl := r.Split()
	ch := cfg.newChannel(r)

	rep := ChaosReport{Protocol: p.Name()}

	env := &protocol.Env{
		RNG:      r,
		Tags:     tags,
		Channel:  ch,
		Timing:   cfg.Timing,
		TxModel:  cfg.TxModel,
		MaxSlots: cfg.MaxSlots,
		PAckLoss: cfg.PAckLoss,
	}
	if env.MaxSlots == 0 {
		env.MaxSlots = int(4*wlCfg.Duration/env.Timing.Slot()) + 10000
	}

	// The run-local audit tracer tallies fault activity into the report; it
	// sees events in emission order regardless of worker count because it
	// lives inside the run.
	audit := &obs.Hooks{
		OnFaultInjected:     func(obs.FaultEvent) { rep.FaultsInjected++ },
		OnRecordQuarantined: func(obs.QuarantineEvent) { rep.Quarantined++ },
	}
	// The health monitor rides the same in-run event stream as the audit;
	// its final score and stall count land in the report.
	health := obs.NewHealthMonitor(obs.HealthConfig{})
	env.Tracer = obs.Multi(audit, health, cfg.tracer())

	var (
		inj *fault.Injector
		fch *fault.Channel
	)
	if cfg.Faults.Enabled() {
		inj = fault.New(cfg.Faults, cfg.Seed, run)
		fch = fault.WrapChannel(ch, inj)
		fch.Tracer = env.Tracer
		fch.AdmitAll(tags)
		env.Channel = fch
		env.Faults = inj
	}

	// Precompute the whole workload script. The draw order matches the
	// workload driver (admission draws its departure immediately), so the
	// same (seed, run, workload) pair faces statistically identical worlds
	// in both harnesses.
	script := buildChaosScript(tags, wl, wlCfg)
	index := make(map[tagid.ID]int, len(script.arrivals))
	for seq, a := range script.arrivals {
		index[a.id] = seq
	}

	var pendingIdent []tagid.ID
	env.OnIdentified = func(id tagid.ID, viaResolution bool) {
		pendingIdent = append(pendingIdent, id)
	}

	s := p.Begin(env)

	var (
		arrCur, depCur int
		wall           uint64
		mark           chaosMark
		haveMark       bool
		runErr         error
	)
	// Admit the initial population's lifecycle records (the session read
	// them from env.Tags).
	for arrCur < len(script.arrivals) && script.arrivals[arrCur].at == 0 {
		a := script.arrivals[arrCur]
		rep.Tags = append(rep.Tags, workload.TagRecord{ID: a.id})
		arrCur++
	}

	takeMark := func(now time.Duration) bool {
		cp, err := s.Snapshot()
		if err != nil {
			runErr = err
			return false
		}
		mark = chaosMark{
			cp:     cp,
			seq:    rep.Checkpoints,
			at:     now,
			arrCur: arrCur,
			depCur: depCur,
			tags:   append(mark.tags[:0:0], rep.Tags...),
		}
		haveMark = true
		env.TraceCheckpoint(obs.CheckpointEvent{
			Seq:        mark.seq,
			At:         now,
			Active:     s.Outstanding(),
			Identified: s.Metrics().Identified(),
		})
		rep.Checkpoints++
		return true
	}

	// wallCap bounds total executed slots, rolled-back work included. The
	// crash cycle guarantees net progress (CrashEvery >= 2*CheckpointEvery,
	// rollback <= CheckpointEvery), so 4x the session budget only trips on
	// genuine livelock; the run then reports ErrNoProgress with the partial
	// accounting intact.
	wallCap := uint64(env.MaxSlots) * 4

	for runErr == nil {
		now := s.Elapsed()

		// Stamp identifications from the last step and audit the hard
		// invariants: an ID outside the admitted set is a phantom (a
		// poisoned record that slipped past the CRC defenses); a repeated
		// identification within one crash-free stretch is a duplicate
		// (crash replays are rolled back below before they re-stamp).
		for _, id := range pendingIdent {
			seq, ok := index[id]
			if !ok {
				rep.Phantoms++
				continue
			}
			if seq >= arrCur {
				// Arrival not yet delivered — also phantom territory: the
				// reader identified a tag before it entered the field.
				rep.Phantoms++
				continue
			}
			rec := &rep.Tags[seq]
			if rec.Identified {
				rep.DupIdents++
				continue
			}
			rec.Identified = true
			rec.IdentifiedAt = now
			rep.Identified++
		}
		pendingIdent = pendingIdent[:0]

		// Deliver script events due at or before the air clock, departures
		// winning ties (as in the workload driver).
		for {
			depDue := depCur < len(script.departures) && script.departures[depCur].at <= now
			arrDue := arrCur < len(script.arrivals) && script.arrivals[arrCur].at <= now
			switch {
			case depDue && (!arrDue || script.departures[depCur].at <= script.arrivals[arrCur].at):
				d := script.departures[depCur]
				depCur++
				rec := &rep.Tags[d.seq]
				rec.Departed = true
				rec.DepartedAt = d.at
				s.Revoke([]tagid.ID{rec.ID})
				if fch != nil {
					fch.Revoke(rec.ID)
				}
				env.TraceDeparture(obs.DepartureEvent{ID: rec.ID, At: d.at, Identified: rec.Identified})
			case arrDue:
				a := script.arrivals[arrCur]
				arrCur++
				rep.Tags = append(rep.Tags, workload.TagRecord{ID: a.id, ArrivedAt: a.at})
				if fch != nil {
					fch.Admit(a.id)
				}
				s.Admit([]tagid.ID{a.id})
				env.TraceArrival(obs.ArrivalEvent{ID: a.id, At: a.at, Active: activeCount(rep.Tags)})
			default:
			}
			if !depDue && !arrDue {
				break
			}
		}

		if now >= wlCfg.Duration {
			break
		}

		// Checkpoint by executed slots so crash rollback is bounded in
		// reader work. The initial mark (wall 0) exists before the first
		// step, so the first crash always has somewhere to land.
		if !haveMark || (cfg.CheckpointEvery > 0 && wall%uint64(cfg.CheckpointEvery) == 0) {
			if !takeMark(now) {
				break
			}
		}

		if _, err := s.Step(); err != nil {
			runErr = err
			break
		}
		wall++
		if wall > wallCap {
			runErr = protocol.ErrNoProgress
			break
		}

		// Reader crash: rewind session AND harness to the last mark. The
		// wall counter is deliberately not rewound — it schedules the next
		// crash and bounds total work.
		if inj.ShouldCrash(wall) && haveMark {
			if err := s.Restore(mark.cp); err != nil {
				runErr = err
				break
			}
			// Roll the harness back in lockstep: identifications and
			// deliveries after the mark un-happen (copy-on-restore keeps
			// the mark reusable).
			arrCur = mark.arrCur
			depCur = mark.depCur
			rep.Tags = append(rep.Tags[:0], mark.tags...)
			rep.Identified = 0
			for i := range rep.Tags {
				if rep.Tags[i].Identified {
					rep.Identified++
				}
			}
			pendingIdent = pendingIdent[:0]
			rep.Crashes++
			if env.Tracer != nil {
				env.Tracer.FaultInjected(obs.FaultEvent{Slot: wall, Kind: obs.FaultCrash})
				env.Tracer.ReaderRestart(obs.RestartEvent{Wall: wall, At: mark.at, Checkpoint: mark.seq})
			}
		}
	}

	rep.Metrics = s.Metrics()
	rep.Duration = s.Elapsed()
	rep.WallSteps = wall
	for i := range rep.Tags {
		t := &rep.Tags[i]
		if t.Departed && !t.Identified {
			rep.DepartedUnread++
		}
		if !t.Departed && !t.Identified {
			rep.ActiveUnread++
		}
	}
	rep.Admitted = len(rep.Tags)
	env.TraceRunEnd(p.Name(), rep.Metrics, runErr)
	rep.Stalls = health.Stalls()
	rep.HealthScore = health.Score()
	return rep, runErr
}

// activeCount counts admitted-and-present tags (trace annotation only).
func activeCount(tags []workload.TagRecord) int {
	n := 0
	for i := range tags {
		if !tags[i].Departed {
			n++
		}
	}
	return n
}

// buildChaosScript draws the complete arrival/departure schedule from wl.
// Draw order mirrors the workload driver: each admission draws its
// departure immediately, then the next arrival epoch is drawn.
func buildChaosScript(initial []tagid.ID, wl *rng.Source, cfg workload.Config) chaosScript {
	var sc chaosScript
	var deps workloadDepartureHeap

	admit := func(id tagid.ID, at time.Duration) {
		seq := len(sc.arrivals)
		sc.arrivals = append(sc.arrivals, chaosArrival{at: at, id: id})
		due := time.Duration(1<<63 - 1)
		if cfg.Dwell > 0 {
			due = at + cfg.Dwell
		}
		if cfg.DepartureRate > 0 {
			if d := at + expDraw(wl, cfg.DepartureRate); d < due {
				due = d
			}
		}
		if due <= cfg.Duration {
			heap.Push(&deps, workloadDeparture{at: due, seq: seq})
		}
	}

	for _, id := range initial {
		admit(id, 0)
	}
	if cfg.ArrivalRate > 0 {
		seen := make(map[tagid.ID]struct{}, len(initial))
		for _, id := range initial {
			seen[id] = struct{}{}
		}
		for at := expDraw(wl, cfg.ArrivalRate); at <= cfg.Duration; at += expDraw(wl, cfg.ArrivalRate) {
			for i := 0; i < cfg.Burst; i++ {
				id := tagid.Random(wl)
				if _, dup := seen[id]; dup {
					continue // 96-bit collision; vanishingly rare
				}
				seen[id] = struct{}{}
				admit(id, at)
			}
		}
	}

	sc.departures = make([]workloadDeparture, 0, len(deps))
	for len(deps) > 0 {
		sc.departures = append(sc.departures, heap.Pop(&deps).(workloadDeparture))
	}
	return sc
}

// expDraw draws an exponential deviate with the given rate (events per
// second), matching the workload driver's generator.
func expDraw(wl *rng.Source, rate float64) time.Duration {
	u := wl.Float64()
	return time.Duration(-math.Log(1-u) / rate * float64(time.Second))
}

// runChaosParallel mirrors runParallel for chaos reports; see that function
// for the determinism argument.
func runChaosParallel(p protocol.SessionProtocol, cfg ChaosConfig) (ChaosResult, error) {
	workers := cfg.Workers
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	type outcome struct {
		rep ChaosReport
		err error
		buf *obs.Buffer
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		outcomes = make([]*outcome, cfg.Runs)
		next     int
		inflight int
		failed   bool
		wg       sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if failed || next >= cfg.Runs {
				mu.Unlock()
				return
			}
			i := next
			next++
			inflight++
			mu.Unlock()

			runCfg := cfg
			runCfg.Tracer = nil
			var buf *obs.Buffer
			if cfg.Tracer != nil {
				buf = &obs.Buffer{}
				runCfg.Tracer = buf
			}
			rep, err := RunChaosOnce(p, runCfg, i)

			mu.Lock()
			outcomes[i] = &outcome{rep: rep, err: err, buf: buf}
			inflight--
			if err != nil {
				failed = true
			}
			if cfg.Progress != nil {
				cfg.Progress(i, rep.Metrics, err)
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go worker()
	}

	res := ChaosResult{Protocol: p.Name(), Runs: make([]ChaosReport, 0, cfg.Runs)}
	var firstErr error
	mu.Lock()
merge:
	for i := 0; i < cfg.Runs; i++ {
		for outcomes[i] == nil {
			if failed && i >= next && inflight == 0 {
				break merge
			}
			cond.Wait()
		}
		o := outcomes[i]
		outcomes[i] = nil
		mu.Unlock()
		if o.buf != nil {
			o.buf.Replay(cfg.Tracer)
		}
		if o.err != nil {
			firstErr = runError(p, cfg.Config, i, o.err)
			mu.Lock()
			break
		}
		res.Runs = append(res.Runs, o.rep)
		mu.Lock()
	}
	mu.Unlock()
	wg.Wait()

	if firstErr != nil {
		return ChaosResult{}, firstErr
	}
	res.summarize()
	return res, nil
}

func (r *ChaosResult) summarize() {
	n := len(r.Runs)
	var (
		adm = make([]float64, 0, n)
		idf = make([]float64, 0, n)
		dep = make([]float64, 0, n)
		act = make([]float64, 0, n)
		tp  = make([]float64, 0, n)
		cr  = make([]float64, 0, n)
		fl  = make([]float64, 0, n)
		qr  = make([]float64, 0, n)
		st  = make([]float64, 0, n)
		hs  = make([]float64, 0, n)
	)
	for i := range r.Runs {
		rep := &r.Runs[i]
		adm = append(adm, float64(rep.Admitted))
		idf = append(idf, float64(rep.Identified))
		dep = append(dep, float64(rep.DepartedUnread))
		act = append(act, float64(rep.ActiveUnread))
		if rep.Duration > 0 {
			tp = append(tp, float64(rep.Identified)/rep.Duration.Seconds())
		}
		cr = append(cr, float64(rep.Crashes))
		fl = append(fl, float64(rep.FaultsInjected))
		qr = append(qr, float64(rep.Quarantined))
		st = append(st, float64(rep.Stalls))
		hs = append(hs, rep.HealthScore)
	}
	r.Admitted = stats.Summarize(adm)
	r.Identified = stats.Summarize(idf)
	r.DepartedUnread = stats.Summarize(dep)
	r.ActiveUnread = stats.Summarize(act)
	r.Throughput = stats.Summarize(tp)
	r.Crashes = stats.Summarize(cr)
	r.FaultsInjected = stats.Summarize(fl)
	r.Quarantined = stats.Summarize(qr)
	r.Stalls = stats.Summarize(st)
	r.HealthScore = stats.Summarize(hs)
}
