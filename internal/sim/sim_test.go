package sim

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
)

func TestRunAggregates(t *testing.T) {
	res, err := Run(fcat.New(fcat.Config{Lambda: 2}), Config{Tags: 500, Runs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "FCAT-2" || res.Tags != 500 || len(res.Runs) != 5 {
		t.Fatalf("result header: %+v", res)
	}
	if res.Throughput.N != 5 || res.Throughput.Mean <= 0 {
		t.Fatalf("throughput summary: %+v", res.Throughput)
	}
	for _, m := range res.Runs {
		if m.Identified() != 500 {
			t.Fatalf("a run identified %d of 500", m.Identified())
		}
	}
	// total = empty + singleton + collision must hold in the aggregate.
	sum := res.EmptySlots.Mean + res.SingletonSlots.Mean + res.CollisionSlots.Mean
	if diff := sum - res.TotalSlots.Mean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("slot means inconsistent: %v vs %v", sum, res.TotalSlots.Mean)
	}
}

func TestReproducibility(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	cfg := Config{Tags: 300, Runs: 3, Seed: 9}
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("run %d differs between identical campaigns", i)
		}
	}
}

func TestSeedsMatter(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	a, err := Run(p, Config{Tags: 300, Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Config{Tags: 300, Runs: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs[0] == b.Runs[0] {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunsAreIndependentOfOrder(t *testing.T) {
	// RunOnce(i) must reproduce run i of the campaign regardless of the
	// other runs.
	p := fcat.New(fcat.Config{Lambda: 2})
	cfg := Config{Tags: 200, Runs: 4, Seed: 5}
	all, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i >= 0; i-- {
		m, err := RunOnce(p, cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		if m != all.Runs[i] {
			t.Fatalf("RunOnce(%d) differs from campaign run %d", i, i)
		}
	}
}

func TestCustomChannelFactory(t *testing.T) {
	used := 0
	cfg := Config{
		Tags: 100, Runs: 2, Seed: 3,
		NewChannel: func(r *rng.Source) channel.Channel {
			used++
			return channel.NewAbstract(channel.AbstractConfig{Lambda: 3}, r)
		},
	}
	if _, err := Run(fcat.New(fcat.Config{Lambda: 3}), cfg); err != nil {
		t.Fatal(err)
	}
	if used != 2 {
		t.Fatalf("channel factory called %d times, want 2", used)
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Runs != DefaultRuns || c.Lambda != 2 || c.TxModel != protocol.TxBinomial {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Timing.BitDuration == 0 {
		t.Fatal("timing default not applied")
	}
}

func TestErrorPropagatesWithContext(t *testing.T) {
	cfg := Config{
		Tags: 30, Runs: 2, Seed: 1, MaxSlots: 100,
		NewChannel: func(r *rng.Source) channel.Channel {
			return channel.NewAbstract(channel.AbstractConfig{Lambda: 2, PCorruptSingleton: 1}, r)
		},
	}
	_, err := Run(fcat.New(fcat.Config{Lambda: 2}), cfg)
	if err == nil {
		t.Fatal("expected an error from a hopeless channel")
	}
}
