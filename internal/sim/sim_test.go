package sim

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
)

func TestRunAggregates(t *testing.T) {
	res, err := Run(fcat.New(fcat.Config{Lambda: 2}), Config{Tags: 500, Runs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "FCAT-2" || res.Tags != 500 || len(res.Runs) != 5 {
		t.Fatalf("result header: %+v", res)
	}
	if res.Throughput.N != 5 || res.Throughput.Mean <= 0 {
		t.Fatalf("throughput summary: %+v", res.Throughput)
	}
	for _, m := range res.Runs {
		if m.Identified() != 500 {
			t.Fatalf("a run identified %d of 500", m.Identified())
		}
	}
	// total = empty + singleton + collision must hold in the aggregate.
	sum := res.EmptySlots.Mean + res.SingletonSlots.Mean + res.CollisionSlots.Mean
	if diff := sum - res.TotalSlots.Mean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("slot means inconsistent: %v vs %v", sum, res.TotalSlots.Mean)
	}
}

func TestReproducibility(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	cfg := Config{Tags: 300, Runs: 3, Seed: 9}
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("run %d differs between identical campaigns", i)
		}
	}
}

func TestSeedsMatter(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	a, err := Run(p, Config{Tags: 300, Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Config{Tags: 300, Runs: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs[0] == b.Runs[0] {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunsAreIndependentOfOrder(t *testing.T) {
	// RunOnce(i) must reproduce run i of the campaign regardless of the
	// other runs.
	p := fcat.New(fcat.Config{Lambda: 2})
	cfg := Config{Tags: 200, Runs: 4, Seed: 5}
	all, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i >= 0; i-- {
		m, err := RunOnce(p, cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		if m != all.Runs[i] {
			t.Fatalf("RunOnce(%d) differs from campaign run %d", i, i)
		}
	}
}

func TestCustomChannelFactory(t *testing.T) {
	used := 0
	cfg := Config{
		Tags: 100, Runs: 2, Seed: 3,
		NewChannel: func(r *rng.Source) channel.Channel {
			used++
			return channel.NewAbstract(channel.AbstractConfig{Lambda: 3}, r)
		},
	}
	if _, err := Run(fcat.New(fcat.Config{Lambda: 3}), cfg); err != nil {
		t.Fatal(err)
	}
	if used != 2 {
		t.Fatalf("channel factory called %d times, want 2", used)
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Runs != DefaultRuns || c.Lambda != 2 || c.TxModel != protocol.TxBinomial {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Timing.BitDuration == 0 {
		t.Fatal("timing default not applied")
	}
}

// hopelessConfig builds a campaign whose every run exhausts its slot
// budget: a channel that corrupts every singleton makes identification
// impossible.
func hopelessConfig(runs, workers int) Config {
	return Config{
		Tags: 30, Runs: runs, Seed: 1, MaxSlots: 100, Workers: workers,
		NewChannel: func(r *rng.Source) channel.Channel {
			return channel.NewAbstract(channel.AbstractConfig{Lambda: 2, PCorruptSingleton: 1}, r)
		},
	}
}

func TestErrorPropagatesWithContext(t *testing.T) {
	res, err := Run(fcat.New(fcat.Config{Lambda: 2}), hopelessConfig(2, 1))
	if err == nil {
		t.Fatal("expected an error from a hopeless channel")
	}
	if !strings.Contains(err.Error(), "FCAT-2 run 0 (N=30)") {
		t.Fatalf("error lacks campaign context: %v", err)
	}
	// The error path must return the zero Result, never a half-populated
	// summary.
	if !reflect.DeepEqual(res, Result{}) {
		t.Fatalf("error path returned a non-zero Result: %+v", res)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	for _, workers := range []int{2, 3, 8, 64} {
		seq, err := Run(p, Config{Tags: 300, Runs: 6, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(p, Config{Tags: 300, Runs: 6, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("Workers=%d result differs from sequential", workers)
		}
	}
}

// TestParallelErrorIsLowestRun checks the parallel pool reports the same
// error as the sequential path — the lowest-indexed failing run — and
// returns the zero Result.
func TestParallelErrorIsLowestRun(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	seqRes, seqErr := Run(p, hopelessConfig(16, 1))
	parRes, parErr := Run(p, hopelessConfig(16, 8))
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got %v / %v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("parallel error %q differs from sequential %q", parErr, seqErr)
	}
	if !reflect.DeepEqual(parRes, Result{}) || !reflect.DeepEqual(seqRes, Result{}) {
		t.Fatal("error paths returned non-zero Results")
	}
}

// TestParallelErrorStopsPool checks an injected run error drains the pool
// promptly and leaks no goroutines.
func TestParallelErrorStopsPool(t *testing.T) {
	before := runtime.NumGoroutine()
	if _, err := Run(fcat.New(fcat.Config{Lambda: 2}), hopelessConfig(64, 8)); err == nil {
		t.Fatal("expected an error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelProgressSerialized checks the Progress callback is invoked
// exactly once per run with no concurrent invocations.
func TestParallelProgressSerialized(t *testing.T) {
	var (
		active  atomic.Int32
		overlap atomic.Bool
		seen    = make(map[int]bool)
		mu      sync.Mutex
	)
	cfg := Config{
		Tags: 200, Runs: 12, Seed: 3, Workers: 4,
		Progress: func(run int, m protocol.Metrics, err error) {
			if active.Add(1) > 1 {
				overlap.Store(true)
			}
			mu.Lock()
			seen[run] = true
			mu.Unlock()
			active.Add(-1)
		},
	}
	if _, err := Run(fcat.New(fcat.Config{Lambda: 2}), cfg); err != nil {
		t.Fatal(err)
	}
	if overlap.Load() {
		t.Fatal("Progress callbacks overlapped")
	}
	if len(seen) != 12 {
		t.Fatalf("Progress saw %d distinct runs, want 12", len(seen))
	}
}

// TestWorkersCappedAtRuns: more workers than runs must still work (the
// pool clamps) and stay deterministic.
func TestWorkersCappedAtRuns(t *testing.T) {
	p := fcat.New(fcat.Config{Lambda: 2})
	seq, err := Run(p, Config{Tags: 100, Runs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(p, Config{Tags: 100, Runs: 2, Seed: 4, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("clamped pool diverged from sequential")
	}
}
