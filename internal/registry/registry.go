// Package registry resolves protocol display names ("FCAT-2", "AQS", …)
// to constructed protocol instances. It is the single name→protocol table
// shared by the public facade (ancrfid.ByName) and the inventory session
// server (internal/server), which must build sessions from persisted
// checkpoint specs without importing the facade.
package registry

import (
	"fmt"
	"strings"

	"github.com/ancrfid/ancrfid/internal/crdsa"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	"github.com/ancrfid/ancrfid/internal/edfsa"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/mdfsa"
	"github.com/ancrfid/ancrfid/internal/praloha"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/scat"
	"github.com/ancrfid/ancrfid/internal/treeproto"
)

// ByName builds a protocol from its table name: "FCAT-2", "SCAT-3",
// "DFSA", "EDFSA", "MDFSA-3", "PRALOHA-2", "ABS", "AQS", "CRDSA"
// (case-insensitive; the numeric suffix is the decode capability and
// defaults to 2).
func ByName(name string) (protocol.Protocol, error) {
	n := strings.ToUpper(strings.TrimSpace(name))
	switch {
	case n == "DFSA":
		return dfsa.New(dfsa.Config{}), nil
	case n == "EDFSA":
		return edfsa.New(edfsa.Config{}), nil
	case n == "ABS":
		return treeproto.NewABS(), nil
	case n == "AQS":
		return treeproto.NewAQS(), nil
	case n == "CRDSA":
		return crdsa.New(crdsa.Config{}), nil
	case strings.HasPrefix(n, "FCAT"), strings.HasPrefix(n, "SCAT"),
		strings.HasPrefix(n, "MDFSA"), strings.HasPrefix(n, "PRALOHA"):
		lambda := 2
		if i := strings.IndexByte(n, '-'); i >= 0 {
			if _, err := fmt.Sscanf(n[i+1:], "%d", &lambda); err != nil {
				return nil, fmt.Errorf("bad lambda in protocol name %q", name)
			}
		}
		if lambda < 1 || lambda > 16 {
			return nil, fmt.Errorf("lambda %d out of range in %q", lambda, name)
		}
		switch {
		case strings.HasPrefix(n, "FCAT"):
			return fcat.New(fcat.Config{Lambda: lambda}), nil
		case strings.HasPrefix(n, "MDFSA"):
			return mdfsa.New(mdfsa.Config{M: lambda}), nil
		case strings.HasPrefix(n, "PRALOHA"):
			return praloha.New(praloha.Config{M: lambda}), nil
		default:
			return scat.New(scat.Config{Lambda: lambda}), nil
		}
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

// Session resolves name and asserts the stepwise session contract every
// in-tree protocol satisfies.
func Session(name string) (protocol.SessionProtocol, error) {
	p, err := ByName(name)
	if err != nil {
		return nil, err
	}
	sp, ok := p.(protocol.SessionProtocol)
	if !ok {
		return nil, fmt.Errorf("protocol %q does not support sessions", name)
	}
	return sp, nil
}
