package registry

import "testing"

func TestByNameRoster(t *testing.T) {
	cases := map[string]string{
		"fcat-3":    "FCAT-3",
		"FCAT":      "FCAT-2",
		"scat-2":    "SCAT-2",
		"dfsa":      "DFSA",
		"edfsa":     "EDFSA",
		"abs":       "ABS",
		"aqs":       "AQS",
		"crdsa":     "CRDSA",
		"mdfsa-3":   "MDFSA-3",
		"praloha-2": "PRALOHA-2",
	}
	for in, want := range cases {
		p, err := ByName(in)
		if err != nil {
			t.Fatalf("ByName(%q): %v", in, err)
		}
		if got := p.Name(); got != want {
			t.Errorf("ByName(%q).Name() = %q, want %q", in, got, want)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	for _, in := range []string{"", "GEN2", "FCAT-x", "FCAT-0", "SCAT-17"} {
		if _, err := ByName(in); err == nil {
			t.Errorf("ByName(%q): expected error", in)
		}
	}
}

func TestSessionRoster(t *testing.T) {
	for _, name := range []string{"FCAT-2", "SCAT-2", "DFSA", "EDFSA", "ABS", "AQS", "CRDSA", "MDFSA-2", "PRALOHA-2"} {
		sp, err := Session(name)
		if err != nil {
			t.Fatalf("Session(%q): %v", name, err)
		}
		if sp.Name() != name {
			t.Errorf("Session(%q).Name() = %q", name, sp.Name())
		}
	}
}
