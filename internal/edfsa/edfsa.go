// Package edfsa implements the Enhanced Dynamic Framed Slotted ALOHA
// baseline (Lee, Joo & Lee, MOBIQUITOUS 2005; paper reference [5]).
//
// EDFSA caps the frame size at 256 slots. When the estimated number of
// unread tags exceeds what a 256-slot frame can serve efficiently (354
// tags, per the published table), the tags are split into M = 2^k modulo
// groups and only one group responds per frame; for smaller backlogs the
// frame size is chosen from the published range table.
package edfsa

import (
	"math"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// maxFrame is EDFSA's largest (and default) frame size.
const maxFrame = 256

// maxUnreadPerFrame is the published threshold above which tags are split
// into modulo groups (354 unread tags per 256-slot frame).
const maxUnreadPerFrame = 354

// Config parameterises EDFSA.
type Config struct {
	// InitialEstimate seeds the unread-tag estimate. Zero grants the reader
	// a perfect initial estimate (the population size), matching the
	// ramp-free baseline behaviour in the paper's evaluation; see the
	// corresponding note on dfsa.Config.InitialFrame.
	InitialEstimate int
}

// Protocol is a configured EDFSA instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns an EDFSA instance.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "EDFSA" }

// frameSizeFor returns the published frame size for an estimated backlog
// (Lee et al., Table 2) together with the number of modulo groups.
func frameSizeFor(est int) (frame, groups int) {
	switch {
	case est <= 11:
		return 8, 1
	case est <= 19:
		return 16, 1
	case est <= 40:
		return 32, 1
	case est <= 81:
		return 64, 1
	case est <= 176:
		return 128, 1
	case est <= maxUnreadPerFrame:
		return maxFrame, 1
	default:
		groups = 1
		for est > maxUnreadPerFrame*groups {
			groups *= 2
		}
		return maxFrame, groups
	}
}

// Run implements protocol.Protocol.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	m, err := p.run(env)
	env.TraceRunEnd(p.Name(), m, err)
	return m, err
}

func (p *Protocol) run(env *protocol.Env) (protocol.Metrics, error) {
	var (
		m     = protocol.Metrics{Tags: len(env.Tags)}
		clock air.Clock
	)
	env.TraceRunStart(p.Name())
	unread := make([]tagid.ID, len(env.Tags))
	copy(unread, env.Tags)
	seen := make(map[tagid.ID]struct{}, len(env.Tags))
	budget := env.SlotBudget()
	estimated := p.cfg.InitialEstimate
	if estimated <= 0 {
		estimated = len(env.Tags)
	}
	if estimated < 1 {
		estimated = 1
	}
	slots := 0
	round := uint64(0)
	var scratch dfsa.FrameScratch
	var membersBuf []tagid.ID

	for {
		frame, groups := frameSizeFor(estimated)
		roundCollisions := 0
		roundTransmissions := 0
		for g := 0; g < groups; g++ {
			if slots >= budget {
				m.OnAir = clock.Elapsed()
				return m, protocol.ErrNoProgress
			}
			members := groupMembers(membersBuf[:0], unread, round, groups, g)
			if groups > 1 {
				membersBuf = members
			}
			clock.Add(env.Timing.FrameAnnouncement())
			m.Frames++
			env.TraceFrame(obsev.FrameEvent{
				Seq: slots, Frame: m.Frames, Size: frame, P: 1 / float64(groups),
			})
			collisions, transmissions, read := runGroupFrame(env, &scratch, frame, members, seen, &m)
			roundCollisions += collisions
			roundTransmissions += transmissions
			slots += frame
			clock.AddSlots(env.Timing, frame)
			if len(read) > 0 {
				remaining := unread[:0]
				for _, id := range unread {
					if _, ok := read[id]; !ok {
						remaining = append(remaining, id)
					}
				}
				unread = remaining
			}
		}
		round++
		if roundTransmissions == 0 {
			m.OnAir = clock.Elapsed()
			return m, nil
		}
		estimated = int(math.Round(dfsa.SchouteFactor * float64(roundCollisions)))
		if estimated < 1 {
			estimated = 1
		}
		env.TraceEstimate(obsev.EstimateEvent{
			Frame: m.Frames, Estimate: float64(estimated), Identified: m.Identified(),
		})
	}
}

// groupMembers selects the unread tags whose hash (salted by the round so
// group boundaries reshuffle between rounds) falls in modulo group g,
// appending them to buf (reused across groups; ignored when groups == 1,
// where the unread slice itself is the single group).
func groupMembers(buf, unread []tagid.ID, round uint64, groups, g int) []tagid.ID {
	if groups == 1 {
		return unread
	}
	for _, id := range unread {
		if int(id.ReportHash(round))%groups == g {
			buf = append(buf, id)
		}
	}
	return buf
}

// runGroupFrame runs one frame over the given group members. seen holds
// the IDs counted in earlier frames so retransmissions after a lost
// acknowledgement are not double-counted. The returned read set is owned by
// scratch and only valid until the next runGroupFrame call.
func runGroupFrame(env *protocol.Env, scratch *dfsa.FrameScratch, frameSize int, members []tagid.ID, seen map[tagid.ID]struct{}, m *protocol.Metrics) (collisions, transmissions int, read map[tagid.ID]struct{}) {
	occupants := scratch.Buckets(frameSize)
	for _, id := range members {
		s := env.RNG.Intn(frameSize)
		occupants[s] = append(occupants[s], id)
	}
	read = scratch.Read()
	for _, tx := range occupants {
		transmissions += len(tx)
		obs := env.Channel.Observe(tx)
		switch obs.Kind {
		case channel.Empty:
			m.EmptySlots++
		case channel.Singleton:
			m.SingletonSlots++
			if _, dup := seen[obs.ID]; !dup {
				seen[obs.ID] = struct{}{}
				m.DirectIDs++
				env.NotifyIdentified(obs.ID, false)
			}
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: m.TotalSlots() - 1, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
			})
			if delivered {
				read[obs.ID] = struct{}{}
			}
		case channel.Collision:
			m.CollisionSlots++
			collisions++
		}
		m.TagTransmissions += len(tx)
		env.NotifySlot(protocol.SlotEvent{
			Seq:          m.TotalSlots() - 1,
			Kind:         obs.Kind,
			Transmitters: len(tx),
			Identified:   m.Identified(),
		})
	}
	return collisions, transmissions, read
}
