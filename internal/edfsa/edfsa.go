// Package edfsa implements the Enhanced Dynamic Framed Slotted ALOHA
// baseline (Lee, Joo & Lee, MOBIQUITOUS 2005; paper reference [5]).
//
// EDFSA caps the frame size at 256 slots. When the estimated number of
// unread tags exceeds what a 256-slot frame can serve efficiently (354
// tags, per the published table), the tags are split into M = 2^k modulo
// groups and only one group responds per frame; for smaller backlogs the
// frame size is chosen from the published range table.
package edfsa

import (
	"maps"
	"math"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// maxFrame is EDFSA's largest (and default) frame size.
const maxFrame = 256

// maxUnreadPerFrame is the published threshold above which tags are split
// into modulo groups (354 unread tags per 256-slot frame).
const maxUnreadPerFrame = 354

// Config parameterises EDFSA.
type Config struct {
	// InitialEstimate seeds the unread-tag estimate. Zero grants the reader
	// a perfect initial estimate (the population size), matching the
	// ramp-free baseline behaviour in the paper's evaluation; see the
	// corresponding note on dfsa.Config.InitialFrame.
	InitialEstimate int
}

// Protocol is a configured EDFSA instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns an EDFSA instance.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "EDFSA" }

// frameSizeFor returns the published frame size for an estimated backlog
// (Lee et al., Table 2) together with the number of modulo groups.
func frameSizeFor(est int) (frame, groups int) {
	switch {
	case est <= 11:
		return 8, 1
	case est <= 19:
		return 16, 1
	case est <= 40:
		return 32, 1
	case est <= 81:
		return 64, 1
	case est <= 176:
		return 128, 1
	case est <= maxUnreadPerFrame:
		return maxFrame, 1
	default:
		groups = 1
		for est > maxUnreadPerFrame*groups {
			groups *= 2
		}
		return maxFrame, groups
	}
}

var _ protocol.SessionProtocol = (*Protocol)(nil)

// Run implements protocol.Protocol by driving a fresh session to
// completion.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	return protocol.RunSession(p, env)
}

// session carries one EDFSA execution. A step is one report slot; group-
// frame boundaries (group selection, announcement and bucketing at the
// front, the unread filter at the back) and round boundaries (the Schoute
// re-estimate) fold into the adjacent slots' steps.
type session struct {
	p          *Protocol
	env        *protocol.Env
	m          protocol.Metrics
	clock      air.Clock
	unread     []tagid.ID
	seen       map[tagid.ID]struct{}
	scratch    dfsa.FrameScratch
	membersBuf []tagid.ID

	slots, budget int
	estimated     int
	round         uint64

	// Current-round state, meaningful while inRound.
	inRound                             bool
	frame, groups                       int
	g                                   int
	roundCollisions, roundTransmissions int

	// Current group-frame state, meaningful while inFrame.
	inFrame                   bool
	slotJ                     int
	collisions, transmissions int
	occ                       [][]tagid.ID
	read                      map[tagid.ID]struct{}

	err error
}

var _ protocol.Session = (*session)(nil)

// Begin implements protocol.SessionProtocol.
func (p *Protocol) Begin(env *protocol.Env) protocol.Session {
	s := &session{
		p:      p,
		env:    env,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		unread: make([]tagid.ID, len(env.Tags)),
		seen:   make(map[tagid.ID]struct{}, len(env.Tags)),
		budget: env.SlotBudget(),
	}
	env.Clock = &s.clock
	env.TraceRunStart(p.Name())
	copy(s.unread, env.Tags)
	s.estimated = p.cfg.InitialEstimate
	if s.estimated <= 0 {
		s.estimated = len(env.Tags)
	}
	if s.estimated < 1 {
		s.estimated = 1
	}
	return s
}

// Protocol implements protocol.Session.
func (s *session) Protocol() string { return s.p.Name() }

// Step implements protocol.Session. A done session keeps stepping: empty
// rounds at the smallest table frame keep polling the field, so newly
// admitted tags are observed in the next round.
func (s *session) Step() (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	if !s.inFrame {
		if !s.inRound {
			s.frame, s.groups = frameSizeFor(s.estimated)
			s.g = 0
			s.roundCollisions, s.roundTransmissions = 0, 0
			s.inRound = true
		}
		if s.slots >= s.budget {
			s.err = protocol.ErrNoProgress
			return false, s.err
		}
		members := groupMembers(s.membersBuf[:0], s.unread, s.round, s.groups, s.g)
		if s.groups > 1 {
			s.membersBuf = members
		}
		s.clock.Add(s.env.Timing.FrameAnnouncement())
		s.m.Frames++
		s.env.TraceFrame(obsev.FrameEvent{
			Seq: s.slots, Frame: s.m.Frames, Size: s.frame, P: 1 / float64(s.groups),
		})
		s.occ = s.scratch.Buckets(s.frame)
		for _, id := range members {
			j := s.env.RNG.Intn(s.frame)
			s.occ[j] = append(s.occ[j], id)
		}
		s.read = s.scratch.Read()
		s.slotJ, s.collisions, s.transmissions = 0, 0, 0
		s.inFrame = true
	}

	tx := s.occ[s.slotJ]
	s.transmissions += len(tx)
	obs := s.env.Channel.Observe(tx)
	switch obs.Kind {
	case channel.Empty:
		s.m.EmptySlots++
	case channel.Singleton:
		s.m.SingletonSlots++
		if _, dup := s.seen[obs.ID]; !dup {
			s.seen[obs.ID] = struct{}{}
			s.m.DirectIDs++
			s.env.NotifyIdentified(obs.ID, false)
		}
		delivered := s.env.AckDelivered()
		s.env.TraceAck(obsev.AckEvent{
			Seq: s.m.TotalSlots() - 1, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			s.read[obs.ID] = struct{}{}
		}
	case channel.Collision:
		s.m.CollisionSlots++
		s.collisions++
	case channel.Captured:
		// Capture effect: the collision still counts for Vogt's estimator,
		// but the captured ID is read and acknowledged like a singleton.
		s.m.CollisionSlots++
		s.collisions++
		if _, dup := s.seen[obs.ID]; !dup {
			s.seen[obs.ID] = struct{}{}
			s.m.DirectIDs++
			s.env.NotifyIdentified(obs.ID, false)
		}
		delivered := s.env.AckDelivered()
		s.env.TraceAck(obsev.AckEvent{
			Seq: s.m.TotalSlots() - 1, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			s.read[obs.ID] = struct{}{}
		}
	}
	s.m.TagTransmissions += len(tx)
	s.env.NotifySlot(protocol.SlotEvent{
		Seq:          s.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(tx),
		Identified:   s.m.Identified(),
	})
	s.slotJ++
	s.slots++
	s.clock.Add(s.env.Timing.Slot())
	if s.slotJ < s.frame {
		return false, nil
	}

	// Group-frame end: silence the tags read this frame.
	s.inFrame = false
	s.roundCollisions += s.collisions
	s.roundTransmissions += s.transmissions
	if len(s.read) > 0 {
		remaining := s.unread[:0]
		for _, id := range s.unread {
			if _, ok := s.read[id]; !ok {
				remaining = append(remaining, id)
			}
		}
		s.unread = remaining
	}
	s.g++
	if s.g < s.groups {
		return false, nil
	}

	// Round end.
	s.inRound = false
	s.round++
	if s.roundTransmissions == 0 {
		return true, nil
	}
	s.estimated = int(math.Round(dfsa.SchouteFactor * float64(s.roundCollisions)))
	if s.estimated < 1 {
		s.estimated = 1
	}
	s.env.TraceEstimate(obsev.EstimateEvent{
		Frame: s.m.Frames, Estimate: float64(s.estimated), Identified: s.m.Identified(),
	})
	return false, nil
}

// Admit implements protocol.Session: the tags join the unread backlog and
// first transmit in the next group-frame whose modulo group they hash into.
func (s *session) Admit(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := s.seen[id]; identified {
			continue
		}
		if containsID(s.unread, id) {
			continue
		}
		s.unread = append(s.unread, id)
		s.m.Tags++
	}
}

// Revoke implements protocol.Session: the tags leave the backlog and stop
// transmitting immediately — they are stripped from the current frame's
// remaining slot buckets.
func (s *session) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		if !removeID(&s.unread, id) {
			continue
		}
		if s.inFrame {
			for j := s.slotJ; j < s.frame; j++ {
				bucket := s.occ[j]
				if removeID(&bucket, id) {
					s.occ[j] = bucket
					break
				}
			}
		}
	}
}

// containsID reports whether ids contains id.
func containsID(ids []tagid.ID, id tagid.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// removeID deletes id from *ids preserving order; it reports whether the
// id was present.
func removeID(ids *[]tagid.ID, id tagid.ID) bool {
	for i, v := range *ids {
		if v == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			return true
		}
	}
	return false
}

// Metrics implements protocol.Session.
func (s *session) Metrics() protocol.Metrics {
	m := s.m
	m.OnAir = s.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (s *session) Elapsed() time.Duration { return s.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (s *session) Outstanding() int { return len(s.unread) }

// checkpoint is a deep copy of an EDFSA session's state.
type checkpoint struct {
	name   string
	m      protocol.Metrics
	clock  air.Clock
	unread []tagid.ID
	seen   map[tagid.ID]struct{}

	slots, budget int
	estimated     int
	round         uint64

	inRound                             bool
	frame, groups                       int
	g                                   int
	roundCollisions, roundTransmissions int

	inFrame                   bool
	slotJ                     int
	collisions, transmissions int
	occ                       [][]tagid.ID
	read                      map[tagid.ID]struct{}

	err error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *checkpoint) Protocol() string { return c.name }

// Snapshot implements protocol.Session.
func (s *session) Snapshot() (protocol.Checkpoint, error) {
	cp := &checkpoint{
		name:               s.p.Name(),
		m:                  s.m,
		clock:              s.clock,
		unread:             append([]tagid.ID(nil), s.unread...),
		seen:               maps.Clone(s.seen),
		slots:              s.slots,
		budget:             s.budget,
		estimated:          s.estimated,
		round:              s.round,
		inRound:            s.inRound,
		frame:              s.frame,
		groups:             s.groups,
		g:                  s.g,
		roundCollisions:    s.roundCollisions,
		roundTransmissions: s.roundTransmissions,
		inFrame:            s.inFrame,
		slotJ:              s.slotJ,
		collisions:         s.collisions,
		transmissions:      s.transmissions,
		err:                s.err,
		rng:                *s.env.RNG,
	}
	if s.inFrame {
		cp.occ = cloneBuckets(s.occ)
		cp.read = maps.Clone(s.read)
	}
	if st, ok := s.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (s *session) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*checkpoint)
	if !ok || cp.name != s.p.Name() {
		return protocol.ErrCheckpointMismatch
	}
	s.m = cp.m
	s.clock = cp.clock
	s.unread = append(s.unread[:0:0], cp.unread...)
	s.seen = maps.Clone(cp.seen)
	s.slots = cp.slots
	s.budget = cp.budget
	s.estimated = cp.estimated
	s.round = cp.round
	s.inRound = cp.inRound
	s.frame = cp.frame
	s.groups = cp.groups
	s.g = cp.g
	s.roundCollisions = cp.roundCollisions
	s.roundTransmissions = cp.roundTransmissions
	s.inFrame = cp.inFrame
	s.slotJ = cp.slotJ
	s.collisions = cp.collisions
	s.transmissions = cp.transmissions
	s.occ = nil
	s.read = nil
	if cp.inFrame {
		s.occ = cloneBuckets(cp.occ)
		s.read = maps.Clone(cp.read)
	}
	s.err = cp.err
	*s.env.RNG = cp.rng
	if cp.chanState != nil {
		s.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}

// cloneBuckets deep-copies a frame's slot-occupancy buckets.
func cloneBuckets(occ [][]tagid.ID) [][]tagid.ID {
	out := make([][]tagid.ID, len(occ))
	for i, b := range occ {
		if len(b) > 0 {
			out[i] = append([]tagid.ID(nil), b...)
		}
	}
	return out
}

// groupMembers selects the unread tags whose hash (salted by the round so
// group boundaries reshuffle between rounds) falls in modulo group g,
// appending them to buf (reused across groups; ignored when groups == 1,
// where the unread slice itself is the single group).
func groupMembers(buf, unread []tagid.ID, round uint64, groups, g int) []tagid.ID {
	if groups == 1 {
		return unread
	}
	for _, id := range unread {
		if int(id.ReportHash(round))%groups == g {
			buf = append(buf, id)
		}
	}
	return buf
}
