package edfsa

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags int) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r),
		Timing:  air.ICode(),
	}
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "EDFSA" {
		t.Fatal("wrong name")
	}
}

func TestFrameSizeTable(t *testing.T) {
	tests := []struct {
		est        int
		wantFrame  int
		wantGroups int
	}{
		{1, 8, 1},
		{11, 8, 1},
		{12, 16, 1},
		{19, 16, 1},
		{20, 32, 1},
		{40, 32, 1},
		{41, 64, 1},
		{81, 64, 1},
		{82, 128, 1},
		{176, 128, 1},
		{177, 256, 1},
		{354, 256, 1},
		{355, 256, 2},
		{708, 256, 2},
		{709, 256, 4},
		{1416, 256, 4},
		{1417, 256, 8},
		{10000, 256, 32},
	}
	for _, tt := range tests {
		frame, groups := frameSizeFor(tt.est)
		if frame != tt.wantFrame || groups != tt.wantGroups {
			t.Errorf("frameSizeFor(%d) = (%d, %d), want (%d, %d)",
				tt.est, frame, groups, tt.wantFrame, tt.wantGroups)
		}
	}
}

func TestGroupMembersPartition(t *testing.T) {
	r := rng.New(1)
	tags := tagid.Population(r, 1000)
	const groups = 8
	seen := make(map[tagid.ID]int)
	total := 0
	for g := 0; g < groups; g++ {
		for _, id := range groupMembers(nil, tags, 3, groups, g) {
			seen[id]++
			total++
		}
	}
	if total != 1000 || len(seen) != 1000 {
		t.Fatalf("groups do not partition: total=%d unique=%d", total, len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("tag %v in %d groups", id, c)
		}
	}
}

func TestGroupMembersReshuffleAcrossRounds(t *testing.T) {
	r := rng.New(2)
	tags := tagid.Population(r, 500)
	a := groupMembers(nil, tags, 1, 4, 0)
	b := groupMembers(nil, tags, 2, 4, 0)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("group membership identical across rounds (salt not applied)")
		}
	}
}

func TestSingleGroupFastPath(t *testing.T) {
	r := rng.New(3)
	tags := tagid.Population(r, 10)
	got := groupMembers(nil, tags, 0, 1, 0)
	if len(got) != 10 {
		t.Fatal("single group must contain everyone")
	}
}

func TestIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 50, 400, 3000} {
		m, err := New(Config{}).Run(env(uint64(n), n))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.Identified() != n {
			t.Fatalf("N=%d: identified %d", n, m.Identified())
		}
	}
}

func TestEmptyPopulation(t *testing.T) {
	m, err := New(Config{}).Run(env(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 0 {
		t.Fatal("identified tags in empty field")
	}
}

func TestLargePopulationUsesGroups(t *testing.T) {
	// 3000 tags force the 256-slot frame with modulo groups; throughput
	// lands just below DFSA, as in the paper's Table I.
	m, err := New(Config{}).Run(env(5, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 3000 {
		t.Fatalf("identified %d", m.Identified())
	}
	if tput := m.Throughput(); tput < 115 || tput > 135 {
		t.Errorf("EDFSA throughput %v outside the expected band", tput)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() protocol.Metrics {
		m, err := New(Config{}).Run(env(6, 700))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(), run(); a != b {
		t.Fatal("same seed, different metrics")
	}
}

func TestExplicitInitialEstimate(t *testing.T) {
	m, err := New(Config{InitialEstimate: 10}).Run(env(7, 800))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 800 {
		t.Fatalf("identified %d of 800", m.Identified())
	}
}

func TestAckLossStillCompletes(t *testing.T) {
	e := env(30, 400)
	e.PAckLoss = 0.4
	m, err := New(Config{}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 400 {
		t.Fatalf("identified %d of 400 under ack loss", m.Identified())
	}
}
