package protocol

import (
	"errors"
	"time"

	"github.com/ancrfid/ancrfid/internal/tagid"
)

// ErrCheckpointMismatch is returned by Session.Restore when the checkpoint
// was taken from a different protocol (or a different session type).
var ErrCheckpointMismatch = errors.New("protocol: checkpoint belongs to a different protocol")

// Checkpoint is an opaque deep copy of a Session's state, produced by
// Session.Snapshot and consumed by Session.Restore. A checkpoint is
// self-contained: restoring it and continuing reproduces exactly the slots,
// events and RNG draws the original session would have produced from the
// snapshot point, and a checkpoint can be restored any number of times.
type Checkpoint interface {
	// Protocol returns the display name of the protocol that produced the
	// checkpoint, e.g. "FCAT-2".
	Protocol() string
}

// Session is a resumable protocol execution: the same identification logic
// as Protocol.Run, restructured as an explicit state machine that advances
// one unit of air activity at a time and whose tag population can change
// between steps.
//
// A Session is single-goroutine, like the Env it runs over. Driving a fresh
// session with Step until done is bit-identical to the batch Run (the
// differential suite in the repository root proves it); between steps a
// dynamic workload may Admit arriving tags, Revoke departing ones, or
// Snapshot the session for later resumption.
//
// Stepping past done is allowed and is how continuous inventory works: the
// protocol keeps monitoring the field (probe slots, empty frames or empty
// rounds, by protocol) and picks newly admitted tags back up.
type Session interface {
	// Protocol returns the display name of the protocol, e.g. "FCAT-2".
	Protocol() string

	// Step advances the session by one unit of air activity — one report
	// segment for the slot-stepped protocols (SCAT, FCAT, DFSA, EDFSA,
	// CRDSA), one query for the tree protocols (ABS, AQS). It returns done
	// when the protocol's batch termination condition holds (every tag
	// identified as far as the reader can tell), and a non-nil error when
	// the run fails (ErrNoProgress on slot-budget exhaustion). Stepping a
	// done session keeps monitoring the field.
	Step() (done bool, err error)

	// Admit adds tags to the in-field population, effective from the
	// protocol's next natural boundary (immediately for per-slot protocols,
	// next frame for framed ones, next round for tree ones). IDs already
	// admitted or already identified are ignored.
	Admit(ids []tagid.ID)

	// Revoke removes tags from the in-field population: they stop
	// transmitting immediately and their pending collision-record
	// memberships are invalidated (see record.Store.Revoke). Revoking an
	// unknown ID is a no-op.
	Revoke(ids []tagid.ID)

	// Snapshot returns a deep-copy checkpoint of the session. It fails only
	// when the channel's collision recordings do not support cloning (both
	// in-tree channels do).
	Snapshot() (Checkpoint, error)

	// Restore rewinds the session to a checkpoint previously taken from a
	// session of the same protocol configuration over the same Env. The
	// environment's RNG is rewound as part of the restore.
	Restore(Checkpoint) error

	// Metrics returns the metrics accumulated so far, with OnAir set to the
	// current simulated air time. For dynamic populations, Tags counts
	// every tag ever admitted.
	Metrics() Metrics

	// Elapsed returns the simulated air time consumed so far.
	Elapsed() time.Duration

	// Outstanding returns the number of admitted tags the reader has not
	// yet confirmed (identified and, where the protocol acknowledges,
	// successfully acknowledged).
	Outstanding() int
}

// SessionProtocol is a Protocol whose execution can be driven stepwise.
// All seven protocols in this module implement it.
type SessionProtocol interface {
	Protocol
	// Begin opens a session over env. It emits the run-start trace event
	// and performs no air activity; the first Step does.
	Begin(env *Env) Session
}

// RunSession drives a fresh session to completion and emits the run-end
// trace event — the batch semantics of Protocol.Run. Every protocol's Run
// is this wrapper.
func RunSession(p SessionProtocol, env *Env) (Metrics, error) {
	return DriveSession(p.Begin(env), env, p.Name())
}

// DriveSession steps an already-opened session until it reports done or
// fails, then emits the run-end trace event. Callers that need the session
// afterwards (e.g. AQS's retained leaves) open it themselves and hand it
// here.
func DriveSession(s Session, env *Env, name string) (Metrics, error) {
	var err error
	for {
		done, e := s.Step()
		if e != nil {
			err = e
			break
		}
		if done {
			break
		}
	}
	m := s.Metrics()
	env.TraceRunEnd(name, m, err)
	return m, err
}
