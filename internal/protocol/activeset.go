package protocol

import (
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// ActiveSet tracks the tags still participating in a probabilistic protocol
// (those that have not yet received a positive acknowledgement) and draws
// per-slot transmitter sets under either transmission model.
//
// The set keeps a struct-of-arrays layout: the IDs and their precomputed
// report-hash prefixes (tagid.HashPrefix) live in parallel slices, so the
// per-slot TxHash scan folds only the 8 slot bytes per tag instead of
// re-hashing the full 20-byte (ID, slot) input — the dominant cost of the
// exact transmission model at large N.
type ActiveSet struct {
	ids      []tagid.ID
	prefixes []tagid.HashPrefix
	pos      map[tagid.ID]int

	// idx is the reusable scratch for TxBinomial's distinct-index draws; it
	// keeps steady-state slots allocation-free.
	idx []int

	// stream arms backing-array compaction on Remove (Env.Stream): once
	// the live set falls below a quarter of capacity, the arrays and the
	// position map are rebuilt at the live size, so a mega-N inventory's
	// active-set memory shrinks with the outstanding population. Off by
	// default: the steady-state zero-allocation guarantees of Remove/Add
	// hold exactly when compaction is off.
	stream bool
}

// NewActiveSet returns a set containing all given tags.
func NewActiveSet(tags []tagid.ID) *ActiveSet {
	s := &ActiveSet{
		ids:      make([]tagid.ID, len(tags)),
		prefixes: make([]tagid.HashPrefix, len(tags)),
		pos:      make(map[tagid.ID]int, len(tags)),
	}
	copy(s.ids, tags)
	for i, id := range s.ids {
		s.prefixes[i] = id.HashPrefix()
		s.pos[id] = i
	}
	return s
}

// SetStream toggles streaming-mode compaction (see the stream field).
func (s *ActiveSet) SetStream(on bool) { s.stream = on }

// ResetTags reinitialises the set in place for a new repetition over a new
// population, reusing the backing arrays and map storage of the previous
// one. Equivalent to NewActiveSet(tags) in every observable way.
func (s *ActiveSet) ResetTags(tags []tagid.ID) {
	s.stream = false
	n := len(tags)
	if cap(s.ids) < n {
		s.ids = make([]tagid.ID, n)
		s.prefixes = make([]tagid.HashPrefix, n)
	} else {
		s.ids = s.ids[:n]
		s.prefixes = s.prefixes[:n]
	}
	copy(s.ids, tags)
	if s.pos == nil {
		s.pos = make(map[tagid.ID]int, n)
	} else {
		clear(s.pos)
	}
	for i, id := range s.ids {
		s.prefixes[i] = id.HashPrefix()
		s.pos[id] = i
	}
}

// Len returns the number of active tags.
func (s *ActiveSet) Len() int { return len(s.ids) }

// Contains reports whether the tag is active.
func (s *ActiveSet) Contains(id tagid.ID) bool {
	_, ok := s.pos[id]
	return ok
}

// IDs returns the active tags in the set's internal order. The slice is the
// set's own storage: callers must not modify it and must not hold it across
// mutations.
func (s *ActiveSet) IDs() []tagid.ID { return s.ids }

// Add admits a tag into the set. It reports whether the tag was added
// (false when already present).
func (s *ActiveSet) Add(id tagid.ID) bool {
	if _, ok := s.pos[id]; ok {
		return false
	}
	s.pos[id] = len(s.ids)
	s.ids = append(s.ids, id)
	s.prefixes = append(s.prefixes, id.HashPrefix())
	return true
}

// Clone returns a deep copy of the set (scratch buffers excluded).
func (s *ActiveSet) Clone() *ActiveSet {
	c := &ActiveSet{
		ids:      make([]tagid.ID, len(s.ids)),
		prefixes: make([]tagid.HashPrefix, len(s.prefixes)),
		pos:      make(map[tagid.ID]int, len(s.pos)),
	}
	copy(c.ids, s.ids)
	copy(c.prefixes, s.prefixes)
	for id, i := range s.pos {
		c.pos[id] = i
	}
	return c
}

// Remove silences a tag (it received its acknowledgement). It reports
// whether the tag was still active.
func (s *ActiveSet) Remove(id tagid.ID) bool {
	i, ok := s.pos[id]
	if !ok {
		return false
	}
	last := len(s.ids) - 1
	moved := s.ids[last]
	s.ids[i] = moved
	s.prefixes[i] = s.prefixes[last]
	s.pos[moved] = i
	s.ids = s.ids[:last]
	s.prefixes = s.prefixes[:last]
	delete(s.pos, id)
	if s.stream && cap(s.ids) >= 1024 && len(s.ids) < cap(s.ids)/4 {
		s.compact()
	}
	return true
}

// compact rebuilds the backing arrays and position map at the live size
// (with 2x headroom for re-admissions). Entry order is preserved, so
// compaction is invisible to the transmitter draws.
func (s *ActiveSet) compact() {
	n := len(s.ids)
	c := 2 * n
	if c < 64 {
		c = 64
	}
	ids := make([]tagid.ID, n, c)
	prefixes := make([]tagid.HashPrefix, n, c)
	copy(ids, s.ids)
	copy(prefixes, s.prefixes)
	s.ids, s.prefixes = ids, prefixes
	// Rebuild the map from the slice (deterministic order) so its bucket
	// storage, sized for the peak population, is released too.
	pos := make(map[tagid.ID]int, n)
	for i, id := range ids {
		pos[id] = i
	}
	s.pos = pos
}

// Transmitters returns the tags that report in the given slot at report
// probability p, appended to buf (which is reused across slots to avoid
// allocation). The hash model evaluates H(ID|slot) per tag from the
// precomputed prefixes; the binomial model draws the count and samples
// distinct tags.
func (s *ActiveSet) Transmitters(r *rng.Source, model TxModel, slot uint64, p float64, buf []tagid.ID) []tagid.ID {
	buf = buf[:0]
	switch model {
	case TxHash:
		threshold := tagid.Threshold(p)
		for i, pre := range s.prefixes {
			if pre.Reports(slot, threshold) {
				buf = append(buf, s.ids[i])
			}
		}
	default: // TxBinomial
		k := r.Binomial(len(s.ids), p)
		if k == 0 {
			return buf
		}
		if k >= len(s.ids) {
			return append(buf, s.ids...)
		}
		s.idx = r.SampleDistinctAppend(s.idx[:0], k, len(s.ids))
		for _, i := range s.idx {
			buf = append(buf, s.ids[i])
		}
	}
	return buf
}
