package protocol

import (
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// ActiveSet tracks the tags still participating in a probabilistic protocol
// (those that have not yet received a positive acknowledgement) and draws
// per-slot transmitter sets under either transmission model.
type ActiveSet struct {
	ids []tagid.ID
	pos map[tagid.ID]int
}

// NewActiveSet returns a set containing all given tags.
func NewActiveSet(tags []tagid.ID) *ActiveSet {
	s := &ActiveSet{
		ids: make([]tagid.ID, len(tags)),
		pos: make(map[tagid.ID]int, len(tags)),
	}
	copy(s.ids, tags)
	for i, id := range s.ids {
		s.pos[id] = i
	}
	return s
}

// Len returns the number of active tags.
func (s *ActiveSet) Len() int { return len(s.ids) }

// Remove silences a tag (it received its acknowledgement). It reports
// whether the tag was still active.
func (s *ActiveSet) Remove(id tagid.ID) bool {
	i, ok := s.pos[id]
	if !ok {
		return false
	}
	last := len(s.ids) - 1
	moved := s.ids[last]
	s.ids[i] = moved
	s.pos[moved] = i
	s.ids = s.ids[:last]
	delete(s.pos, id)
	return true
}

// Transmitters returns the tags that report in the given slot at report
// probability p, appended to buf (which is reused across slots to avoid
// allocation). The hash model evaluates H(ID|slot) per tag; the binomial
// model draws the count and samples distinct tags.
func (s *ActiveSet) Transmitters(r *rng.Source, model TxModel, slot uint64, p float64, buf []tagid.ID) []tagid.ID {
	buf = buf[:0]
	switch model {
	case TxHash:
		threshold := tagid.Threshold(p)
		for _, id := range s.ids {
			if id.Reports(slot, threshold) {
				buf = append(buf, id)
			}
		}
	default: // TxBinomial
		k := r.Binomial(len(s.ids), p)
		if k == 0 {
			return buf
		}
		if k >= len(s.ids) {
			return append(buf, s.ids...)
		}
		for _, i := range r.SampleDistinct(k, len(s.ids)) {
			buf = append(buf, s.ids[i])
		}
	}
	return buf
}
