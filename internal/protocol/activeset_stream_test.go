package protocol

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// TestActiveSetStreamCompaction: with streaming on, removing most of a
// large population must shrink the backing arrays, and compaction must be
// invisible to the set's observable behaviour (order, membership, draws).
func TestActiveSetStreamCompaction(t *testing.T) {
	r := rng.New(11)
	tags := tagid.Population(r, 4096)
	s := NewActiveSet(tags)
	s.SetStream(true)
	mirror := NewActiveSet(tags) // no streaming: the behavioural reference

	for i, id := range tags {
		if i == len(tags)-13 {
			break // keep a small live tail
		}
		if !s.Remove(id) || !mirror.Remove(id) {
			t.Fatalf("tag %d not active", i)
		}
	}
	if got, want := s.Len(), mirror.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got := cap(s.ids); got >= 1024 {
		t.Errorf("streaming set kept cap %d after retiring to %d live tags", got, s.Len())
	}
	// Entry order and membership must match the uncompacted reference
	// exactly: Transmitters draws index into this order.
	for i, id := range mirror.IDs() {
		if s.ids[i] != id {
			t.Fatalf("order diverged at %d after compaction", i)
		}
		if !s.Contains(id) {
			t.Fatalf("live tag %v lost by compaction", id)
		}
		if s.pos[id] != i {
			t.Fatalf("position index stale for %v", id)
		}
	}
	buf1 := mirror.Transmitters(rng.New(5), TxHash, 77, 0.5, nil)
	buf2 := s.Transmitters(rng.New(5), TxHash, 77, 0.5, nil)
	if len(buf1) != len(buf2) {
		t.Fatalf("transmitter draw diverged: %d vs %d", len(buf1), len(buf2))
	}
	for i := range buf1 {
		if buf1[i] != buf2[i] {
			t.Fatalf("transmitter %d diverged", i)
		}
	}
}

// TestActiveSetResetTags: the in-place reinitialisation must be equivalent
// to a fresh set, including after streaming compaction mangled the arrays.
func TestActiveSetResetTags(t *testing.T) {
	r := rng.New(13)
	first := tagid.Population(r, 2048)
	second := tagid.Population(r, 300)

	s := NewActiveSet(first)
	s.SetStream(true)
	for _, id := range first[:2000] {
		s.Remove(id)
	}
	s.ResetTags(second)

	fresh := NewActiveSet(second)
	if s.Len() != fresh.Len() {
		t.Fatalf("Len = %d, want %d", s.Len(), fresh.Len())
	}
	for i, id := range fresh.IDs() {
		if s.ids[i] != id || s.prefixes[i] != fresh.prefixes[i] || s.pos[id] != i {
			t.Fatalf("reset set diverges from fresh set at %d", i)
		}
	}
	if s.stream {
		t.Error("ResetTags kept the stream flag armed")
	}
	// And the reused set must behave identically on removals.
	for _, id := range second[:100] {
		if s.Remove(id) != fresh.Remove(id) {
			t.Fatalf("Remove diverged for %v", id)
		}
	}
	if s.Len() != fresh.Len() {
		t.Fatalf("post-removal Len = %d, want %d", s.Len(), fresh.Len())
	}
}

// TestActiveSetStreamRetireZeroAlloc pins the streaming retire path: a
// steady-state Remove+Add cycle (live count far above the compaction
// trigger) must not allocate — retiring identified tags out of a mega-N
// inventory is pure swap-delete.
func TestActiveSetStreamRetireZeroAlloc(t *testing.T) {
	r := rng.New(17)
	tags := tagid.Population(r, 2048)
	s := NewActiveSet(tags)
	s.SetStream(true)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		id := tags[i%len(tags)]
		if !s.Remove(id) {
			t.Fatal("tag not active")
		}
		if !s.Add(id) {
			t.Fatal("tag not re-added")
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("streaming retire cycle allocates %v times, want 0", allocs)
	}
}
