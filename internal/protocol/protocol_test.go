package protocol

import (
	"math"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func TestActiveSetRemove(t *testing.T) {
	r := rng.New(1)
	tags := tagid.Population(r, 10)
	s := NewActiveSet(tags)
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Remove(tags[3]) {
		t.Fatal("Remove of a member failed")
	}
	if s.Remove(tags[3]) {
		t.Fatal("second Remove of the same tag succeeded")
	}
	if s.Len() != 9 {
		t.Fatalf("Len = %d after removal", s.Len())
	}
	if s.Remove(tagid.Random(r)) {
		t.Fatal("Remove of a non-member succeeded")
	}
}

func TestActiveSetRemoveAll(t *testing.T) {
	r := rng.New(2)
	tags := tagid.Population(r, 100)
	s := NewActiveSet(tags)
	for _, id := range tags {
		if !s.Remove(id) {
			t.Fatal("member missing")
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after removing all", s.Len())
	}
}

func TestTransmittersBinomialStats(t *testing.T) {
	r := rng.New(3)
	tags := tagid.Population(r, 1000)
	s := NewActiveSet(tags)
	const p = 0.002
	var total int
	const slots = 20000
	buf := make([]tagid.ID, 0, 16)
	for i := 0; i < slots; i++ {
		buf = s.Transmitters(r, TxBinomial, uint64(i), p, buf)
		total += len(buf)
	}
	mean := float64(total) / slots
	want := 1000 * p
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("binomial transmitter mean %v, want %v", mean, want)
	}
}

func TestTransmittersHashStats(t *testing.T) {
	r := rng.New(4)
	tags := tagid.Population(r, 1000)
	s := NewActiveSet(tags)
	const p = 0.002
	var total int
	const slots = 20000
	buf := make([]tagid.ID, 0, 16)
	for i := 0; i < slots; i++ {
		buf = s.Transmitters(r, TxHash, uint64(i), p, buf)
		total += len(buf)
	}
	mean := float64(total) / slots
	want := 1000 * p
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("hash transmitter mean %v, want %v", mean, want)
	}
}

func TestTransmittersHashDeterministic(t *testing.T) {
	// The hash model must select exactly the tags whose report hash passes:
	// re-evaluating the same slot yields the same set.
	r := rng.New(5)
	tags := tagid.Population(r, 200)
	s := NewActiveSet(tags)
	a := s.Transmitters(r, TxHash, 17, 0.1, nil)
	b := s.Transmitters(r, TxHash, 17, 0.1, nil)
	if len(a) != len(b) {
		t.Fatalf("hash model not deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("hash model selected different tags")
		}
	}
}

func TestTransmittersModelsAgreeInDistribution(t *testing.T) {
	// The binomial fast path must match the hash model's transmitter-count
	// distribution (mean and variance) — the equivalence DESIGN.md claims.
	r := rng.New(6)
	tags := tagid.Population(r, 500)
	s := NewActiveSet(tags)
	const p, slots = 0.004, 30000
	stats := func(model TxModel) (mean, variance float64) {
		var sum, sumsq float64
		buf := make([]tagid.ID, 0, 16)
		for i := 0; i < slots; i++ {
			buf = s.Transmitters(r, model, uint64(i)+1e6, p, buf)
			k := float64(len(buf))
			sum += k
			sumsq += k * k
		}
		mean = sum / slots
		return mean, sumsq/slots - mean*mean
	}
	hm, hv := stats(TxHash)
	bm, bv := stats(TxBinomial)
	if math.Abs(hm-bm) > 0.06 {
		t.Errorf("means differ: hash %v binomial %v", hm, bm)
	}
	if math.Abs(hv-bv) > 0.25 {
		t.Errorf("variances differ: hash %v binomial %v", hv, bv)
	}
}

func TestTransmittersProbabilityOne(t *testing.T) {
	r := rng.New(7)
	tags := tagid.Population(r, 50)
	s := NewActiveSet(tags)
	for _, model := range []TxModel{TxHash, TxBinomial} {
		got := s.Transmitters(r, model, 1, 1.0, nil)
		if len(got) != 50 {
			t.Errorf("model %v: %d transmitters at p=1, want 50", model, len(got))
		}
	}
}

func TestTransmittersProbabilityZero(t *testing.T) {
	r := rng.New(8)
	s := NewActiveSet(tagid.Population(r, 50))
	for _, model := range []TxModel{TxHash, TxBinomial} {
		if got := s.Transmitters(r, model, 1, 0, nil); len(got) != 0 {
			t.Errorf("model %v: %d transmitters at p=0", model, len(got))
		}
	}
}

func TestMetricsArithmetic(t *testing.T) {
	m := Metrics{
		Tags: 10, EmptySlots: 3, SingletonSlots: 4, CollisionSlots: 5,
		DirectIDs: 4, ResolvedIDs: 6, OnAir: 2 * time.Second,
	}
	if m.TotalSlots() != 12 {
		t.Errorf("TotalSlots = %d", m.TotalSlots())
	}
	if m.Identified() != 10 {
		t.Errorf("Identified = %d", m.Identified())
	}
	if m.Throughput() != 5 {
		t.Errorf("Throughput = %v, want 5 tags/s", m.Throughput())
	}
	if (Metrics{}).Throughput() != 0 {
		t.Error("zero metrics should have zero throughput")
	}
}

func TestSlotBudget(t *testing.T) {
	e := &Env{Tags: make([]tagid.ID, 100)}
	if e.SlotBudget() != 200*100+10000 {
		t.Errorf("auto budget = %d", e.SlotBudget())
	}
	e.MaxSlots = 7
	if e.SlotBudget() != 7 {
		t.Errorf("explicit budget = %d", e.SlotBudget())
	}
}

func TestNotifyIdentified(t *testing.T) {
	var got []tagid.ID
	var resolved []bool
	e := &Env{OnIdentified: func(id tagid.ID, via bool) {
		got = append(got, id)
		resolved = append(resolved, via)
	}}
	id := tagid.New(1, 2)
	e.NotifyIdentified(id, true)
	if len(got) != 1 || got[0] != id || !resolved[0] {
		t.Fatal("callback not invoked correctly")
	}
	// Nil callback must be safe.
	(&Env{}).NotifyIdentified(id, false)
}
