package protocol

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// TestTransmittersZeroAlloc requires the per-slot transmitter draw to be
// allocation-free once its scratch buffers are warm, under both
// transmission models and across the binomial sampler's sparse and dense
// regimes.
func TestTransmittersZeroAlloc(t *testing.T) {
	r := rng.New(7)
	tags := tagid.Population(r, 300)
	s := NewActiveSet(tags)
	buf := make([]tagid.ID, 0, len(tags))
	slot := uint64(0)
	for _, p := range []float64{0.02, 0.5, 0.95} { // warm sparse and dense paths
		for i := 0; i < 50; i++ {
			buf = s.Transmitters(r, TxBinomial, slot, p, buf)
			buf = s.Transmitters(r, TxHash, slot, p, buf)
			slot++
		}
	}
	for _, tx := range []TxModel{TxBinomial, TxHash} {
		for _, p := range []float64{0.02, 0.5, 0.95} {
			allocs := testing.AllocsPerRun(300, func() {
				buf = s.Transmitters(r, tx, slot, p, buf)
				slot++
			})
			if allocs != 0 {
				t.Errorf("tx=%v p=%v: Transmitters allocates %v times, want 0", tx, p, allocs)
			}
		}
	}
}

// TestAckDeliveredZeroAlloc: the acknowledgement draw runs once per
// identified tag; with no injector configured it must stay allocation-free
// so fault-capable builds cost existing campaigns nothing.
func TestAckDeliveredZeroAlloc(t *testing.T) {
	env := &Env{RNG: rng.New(3), PAckLoss: 0.1}
	allocs := testing.AllocsPerRun(1000, func() {
		env.AckDelivered()
	})
	if allocs != 0 {
		t.Errorf("AckDelivered with nil Faults allocates %v times, want 0", allocs)
	}
}
