// Package protocol defines the types shared by every tag-identification
// protocol in this module: the simulation environment, the transmission
// models, the active-tag set, and the run metrics from which the paper's
// tables are computed.
package protocol

import (
	"errors"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/fault"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// ErrNoProgress is returned when a protocol exceeds its slot budget without
// identifying every tag; it indicates a livelock (e.g. an over-noisy channel
// where nothing resolves and report probabilities starve).
var ErrNoProgress = errors.New("protocol: slot budget exhausted before all tags were identified")

// TxModel selects how per-slot transmitter sets are drawn for the
// probabilistic protocols (SCAT/FCAT).
type TxModel int

const (
	// TxHash evaluates the real per-tag rule: tag transmits in slot i when
	// H(ID|i) < floor(p*2^l). Exact protocol semantics; O(N) per slot.
	TxHash TxModel = iota + 1
	// TxBinomial draws the transmitter count from Binomial(N_active, p) and
	// picks that many distinct active tags uniformly. Distributionally
	// identical to TxHash for uniformly random IDs (property-tested), and
	// O(omega) per slot, which makes 20000-tag Monte-Carlo sweeps cheap.
	TxBinomial
)

// Env is the environment one protocol run executes in.
type Env struct {
	// RNG drives every random choice of the run.
	RNG *rng.Source
	// Tags is the population to identify.
	Tags []tagid.ID
	// Channel models the report segment and the ANC decoder.
	Channel channel.Channel
	// Timing is the air-interface timing model.
	Timing air.Timing
	// TxModel selects the transmitter-set model (defaults to TxBinomial).
	TxModel TxModel
	// MaxSlots bounds the run; 0 means an automatic budget of
	// 200*N + 10000 slots (the paper observes well-tuned runs use < 3N).
	MaxSlots int
	// OnIdentified, when non-nil, is called once for each tag ID the
	// reader collects, with viaResolution true when the ID was recovered
	// from a collision record rather than read from a singleton slot.
	OnIdentified func(id tagid.ID, viaResolution bool)
	// OnSlot, when non-nil, receives one SlotEvent per completed report
	// segment — the hook behind progress traces and visualisations.
	OnSlot func(SlotEvent)
	// Tracer, when non-nil, receives the run's full typed event stream
	// (slot outcomes, frame boundaries, advertisements, acknowledgements,
	// collision-record activity, estimator updates; see internal/obs).
	// The nil default costs nothing: every emission point is a nil check
	// around a by-value method call, with no allocation on the hot path.
	Tracer obs.Tracer
	// Clock, when non-nil, is the session's simulated air-time clock.
	// Sessions register their clock in Begin so the trace helpers can stamp
	// every event with the deterministic simulated time it occurred at (the
	// At fields in internal/obs). Nil — e.g. before Begin, or for a custom
	// driver — stamps events with 0. Never read on the tracer-off path.
	Clock *air.Clock
	// PAckLoss is the probability that a reader acknowledgement fails to
	// reach its tag. The tag then keeps transmitting until a later
	// acknowledgement gets through, and the reader discards the duplicate
	// reads — the retransmit-until-confirmed behaviour of Section IV-E.
	// Supported by the ALOHA-family protocols (SCAT, FCAT, DFSA, EDFSA,
	// CRDSA); the tree protocols use a different feedback structure and
	// ignore it.
	PAckLoss float64
	// Faults, when non-nil, is the run's deterministic fault injector (see
	// internal/fault). It layers additional acknowledgement loss on top of
	// PAckLoss and switches the reader into hardened mode (Hardened), which
	// arms the record store's quarantine defenses. Nil — the default — is
	// the fault-free fast path: no extra RNG draws, no extra allocations,
	// byte-identical behaviour to a build without the injector.
	Faults *fault.Injector
	// Stream enables the streaming campaign mode for mega-N populations:
	// identified tags are compacted out of the active set's backing
	// arrays, and fully-resolved collision records hand their recordings
	// back to the channel for reuse (channel.Releaser), so steady-state
	// memory tracks the outstanding population instead of the total one.
	// Streaming changes memory management only — no RNG draw, decode
	// decision or trace event moves — so a streaming run is bit-identical
	// to a non-streaming one. See docs/performance.md.
	Stream bool
	// Scratch, when non-nil, is a container of protocol-owned reusable
	// state. The campaign runner threads one container per worker through
	// that worker's runs; protocols that support arena reuse (FCAT, SCAT)
	// stash their session-sized structures here in Begin and reinitialise
	// them in place on the next run instead of reallocating. Nil — e.g. a
	// standalone RunOnce — allocates fresh structures; reuse never changes
	// a run's draws or decisions.
	Scratch *Scratch
}

// Scratch is a keyed container of protocol-owned reusable state (see
// Env.Scratch). Each protocol namespaces its state under its own key, so a
// mixed campaign threading one container through different protocols is
// safe. The zero value is ready to use; all methods tolerate a nil
// receiver (a no-op container).
type Scratch struct {
	m map[string]any
}

// Get returns the state stored under key, or nil when absent (or when the
// container itself is nil).
func (s *Scratch) Get(key string) any {
	if s == nil {
		return nil
	}
	return s.m[key]
}

// Put stores state under key. A nil container discards the state.
func (s *Scratch) Put(key string, v any) {
	if s == nil {
		return
	}
	if s.m == nil {
		s.m = make(map[string]any, 2)
	}
	s.m[key] = v
}

// Now returns the session's current simulated air time; 0 when no clock is
// registered. It is only called inside tracer-on branches, so the tracer-off
// path stays untouched (and zero-alloc).
func (e *Env) Now() time.Duration {
	if e.Clock == nil {
		return 0
	}
	return e.Clock.Elapsed()
}

// Hardened reports whether the run executes under fault injection. The
// collision-aware protocols arm their record-store defenses (CRC-validated
// cascade decodes, residual-energy quarantine) exactly when it is true, so
// fault-free runs keep their historical, bit-reproducible behaviour.
func (e *Env) Hardened() bool { return e.Faults != nil }

// AckDelivered draws whether one acknowledgement reaches its tag. The
// baseline PAckLoss draw always happens first (and consumes the run RNG
// identically whether or not faults are configured); the injector can only
// drop additional acknowledgements, never resurrect one.
func (e *Env) AckDelivered() bool {
	delivered := e.PAckLoss <= 0 || !e.RNG.Bool(e.PAckLoss)
	if e.Faults == nil {
		return delivered
	}
	if !e.Faults.AckDelivered() {
		if e.Tracer != nil {
			e.Tracer.FaultInjected(obs.FaultEvent{Slot: e.Faults.Acks(), Kind: obs.FaultAckLoss})
		}
		return false
	}
	return delivered
}

// SlotEvent describes one completed report segment, for observers that
// trace or visualise a run's progress.
type SlotEvent struct {
	// Seq is the 0-based sequence number of the report segment within the
	// run (all protocols count uniformly, frames included).
	Seq int
	// Kind is the observed outcome.
	Kind channel.Kind
	// Transmitters is the number of tags that reported (simulation ground
	// truth; a real reader knows it only for 0 and 1).
	Transmitters int
	// Identified is the cumulative number of unique IDs collected after
	// this slot's acknowledgement segment.
	Identified int
}

// NotifySlot invokes the OnSlot callback if one is set and forwards the
// slot outcome to the tracer.
func (e *Env) NotifySlot(ev SlotEvent) {
	if e.OnSlot != nil {
		e.OnSlot(ev)
	}
	if e.Tracer != nil {
		e.Tracer.SlotDone(obs.SlotEvent{
			Seq:          ev.Seq,
			Kind:         ev.Kind,
			Transmitters: ev.Transmitters,
			Identified:   ev.Identified,
			At:           e.Now(),
		})
	}
}

// NotifyIdentified invokes the OnIdentified callback if one is set and
// forwards the identification to the tracer. Protocols call it exactly once
// per counted tag, so tracer-side tallies match Metrics.DirectIDs and
// Metrics.ResolvedIDs.
func (e *Env) NotifyIdentified(id tagid.ID, viaResolution bool) {
	if e.OnIdentified != nil {
		e.OnIdentified(id, viaResolution)
	}
	if e.Tracer != nil {
		e.Tracer.TagIdentified(obs.IdentifyEvent{ID: id, ViaResolution: viaResolution, At: e.Now()})
	}
}

// TraceRunStart emits the run-opening event.
func (e *Env) TraceRunStart(protocol string) {
	if e.Tracer != nil {
		e.Tracer.RunStart(obs.RunStartEvent{Protocol: protocol, Tags: len(e.Tags)})
	}
}

// TraceRunEnd emits the run-closing event with the finished run's totals.
func (e *Env) TraceRunEnd(protocol string, m Metrics, err error) {
	if e.Tracer == nil {
		return
	}
	ev := obs.RunEndEvent{
		Protocol: protocol,
		Slots:    m.TotalSlots(),
		Frames:   m.Frames,
		Direct:   m.DirectIDs,
		Resolved: m.ResolvedIDs,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	ev.At = m.OnAir
	e.Tracer.RunEnd(ev)
}

// TraceFrame emits a frame-boundary event.
func (e *Env) TraceFrame(ev obs.FrameEvent) {
	if e.Tracer != nil {
		ev.At = e.Now()
		e.Tracer.FrameStart(ev)
	}
}

// TraceAdvert emits a single-slot advertisement event.
func (e *Env) TraceAdvert(ev obs.AdvertEvent) {
	if e.Tracer != nil {
		ev.At = e.Now()
		e.Tracer.Advertisement(ev)
	}
}

// TraceAck emits an acknowledgement event.
func (e *Env) TraceAck(ev obs.AckEvent) {
	if e.Tracer != nil {
		ev.At = e.Now()
		e.Tracer.AckSent(ev)
	}
}

// TraceEstimate emits a population-estimate update event.
func (e *Env) TraceEstimate(ev obs.EstimateEvent) {
	if e.Tracer != nil {
		ev.At = e.Now()
		e.Tracer.EstimatorUpdate(ev)
	}
}

// TraceArrival emits a tag-arrival event (dynamic workloads only).
func (e *Env) TraceArrival(ev obs.ArrivalEvent) {
	if e.Tracer != nil {
		e.Tracer.TagArrival(ev)
	}
}

// TraceDeparture emits a tag-departure event (dynamic workloads only).
func (e *Env) TraceDeparture(ev obs.DepartureEvent) {
	if e.Tracer != nil {
		e.Tracer.TagDeparture(ev)
	}
}

// TraceCheckpoint emits a session-checkpoint event.
func (e *Env) TraceCheckpoint(ev obs.CheckpointEvent) {
	if e.Tracer != nil {
		e.Tracer.SessionCheckpoint(ev)
	}
}

// SlotBudget returns the effective slot bound for the run.
func (e *Env) SlotBudget() int {
	if e.MaxSlots > 0 {
		return e.MaxSlots
	}
	return 200*len(e.Tags) + 10000
}

// Protocol is a complete tag-identification protocol.
type Protocol interface {
	// Name returns the display name used in tables (e.g. "FCAT-2").
	Name() string
	// Run identifies every tag in the environment and returns the run's
	// metrics. Implementations must be deterministic given env.RNG.
	Run(env *Env) (Metrics, error)
}

// Metrics aggregates the observable outcomes of one protocol run. The
// paper's Tables I-IV and Figures 5-6 are all functions of these fields.
type Metrics struct {
	// Tags is the population size.
	Tags int
	// EmptySlots, SingletonSlots and CollisionSlots break down the report
	// segments by outcome (Table II).
	EmptySlots     int
	SingletonSlots int
	CollisionSlots int
	// DirectIDs counts tags identified from their own singleton slot;
	// ResolvedIDs counts tags recovered from collision records via ANC
	// (Table III).
	DirectIDs   int
	ResolvedIDs int
	// Frames counts protocol frames (0 for unframed protocols).
	Frames int
	// TagTransmissions counts every individual tag transmission (each
	// costs the tag transmit energy; tree protocols make tags answer at
	// every tree level, ALOHA-family tags answer a few times in total —
	// the energy axis studied by the paper's reference [14]).
	TagTransmissions int
	// OnAir is the simulated air time of the whole run, including slot
	// guards, advertisements and acknowledgement payloads.
	OnAir time.Duration
}

// TransmissionsPerTag returns the mean number of times each tag keyed its
// transmitter during the run.
func (m Metrics) TransmissionsPerTag() float64 {
	if m.Tags == 0 {
		return 0
	}
	return float64(m.TagTransmissions) / float64(m.Tags)
}

// TotalSlots returns the number of report segments used.
func (m Metrics) TotalSlots() int {
	return m.EmptySlots + m.SingletonSlots + m.CollisionSlots
}

// Identified returns the number of tags the reader collected.
func (m Metrics) Identified() int { return m.DirectIDs + m.ResolvedIDs }

// Throughput returns the reading throughput in tag IDs per second: the
// paper's headline metric (Section VI-A).
func (m Metrics) Throughput() float64 {
	if m.OnAir <= 0 {
		return 0
	}
	return float64(m.Identified()) / m.OnAir.Seconds()
}
