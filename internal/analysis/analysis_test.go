package analysis

import (
	"math"
	"testing"
)

func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestOptimalOmegaPaperValues(t *testing.T) {
	// Section IV-C: 1.414, 1.817, 2.213 for lambda = 2, 3, 4.
	near(t, OptimalOmega(2), math.Sqrt2, 1e-12, "omega(2)")
	near(t, OptimalOmega(3), math.Cbrt(6), 1e-12, "omega(3)")
	near(t, OptimalOmega(4), math.Sqrt(math.Sqrt(24)), 1e-12, "omega(4)")
	near(t, OptimalOmega(2), 1.414, 0.001, "omega(2) paper")
	near(t, OptimalOmega(3), 1.817, 0.001, "omega(3) paper")
	near(t, OptimalOmega(4), 2.213, 0.001, "omega(4) paper")
}

func TestOptimalOmegaLambdaOne(t *testing.T) {
	// lambda = 1 is classical slotted ALOHA: omega = 1 (p = 1/N).
	near(t, OptimalOmega(1), 1, 1e-12, "omega(1)")
	near(t, OptimalOmega(0), 1, 1e-12, "omega(0) clamps to lambda=1")
}

func TestOptimalOmegaMatchesNumericSearch(t *testing.T) {
	for lambda := 1; lambda <= 8; lambda++ {
		closed := OptimalOmega(lambda)
		numeric := OptimalOmegaNumeric(lambda)
		near(t, closed, numeric, 1e-6, "omega closed vs numeric")
	}
}

func TestOptimalOmegaIsMaximum(t *testing.T) {
	for lambda := 2; lambda <= 5; lambda++ {
		w := OptimalOmega(lambda)
		at := UsefulSlotProbPoisson(w, lambda)
		if UsefulSlotProbPoisson(w*0.9, lambda) >= at || UsefulSlotProbPoisson(w*1.1, lambda) >= at {
			t.Errorf("omega(%d) is not a local maximum", lambda)
		}
	}
}

func TestUsefulSlotProbPoissonKnownValues(t *testing.T) {
	// lambda=1, omega=1: P(X=1) = e^-1 = 0.368 (the classic ALOHA figure).
	near(t, UsefulSlotProbPoisson(1, 1), 1/math.E, 1e-12, "P(X=1)")
	// lambda=2, omega=sqrt(2): (w + w^2/2)e^-w = 0.58694.
	near(t, UsefulSlotProbPoisson(math.Sqrt2, 2), 0.58694, 0.0001, "P useful lambda=2")
	if UsefulSlotProbPoisson(0, 2) != 0 {
		t.Error("P at omega=0 should be 0")
	}
	if UsefulSlotProbPoisson(-1, 2) != 0 {
		t.Error("P at omega<0 should be 0")
	}
}

func TestUsefulSlotProbBinomialConvergesToPoisson(t *testing.T) {
	for _, lambda := range []int{1, 2, 3, 4} {
		w := OptimalOmega(lambda)
		n := 100000
		near(t, UsefulSlotProbBinomial(n, w/float64(n), lambda),
			UsefulSlotProbPoisson(w, lambda), 1e-4, "binomial vs poisson")
	}
}

func TestUsefulSlotProbBinomialEdges(t *testing.T) {
	if UsefulSlotProbBinomial(0, 0.5, 2) != 0 {
		t.Error("n=0")
	}
	if UsefulSlotProbBinomial(10, 0, 2) != 0 {
		t.Error("p=0")
	}
	if UsefulSlotProbBinomial(2, 1, 2) != 1 {
		t.Error("p=1, n<=lambda should be certain")
	}
	if UsefulSlotProbBinomial(5, 1, 2) != 0 {
		t.Error("p=1, n>lambda should be impossible")
	}
	// Exact small case: n=2, p=0.5, lambda=2: P(X=1)+P(X=2) = 0.5+0.25.
	near(t, UsefulSlotProbBinomial(2, 0.5, 2), 0.75, 1e-12, "n=2 exact")
}

func TestExpectedSlotCountsSumToFrame(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		p := 1.414 / float64(n)
		sum := ExpectedEmpty(n, p, 30) + ExpectedSingleton(n, p, 30) + ExpectedCollision(n, p, 30)
		near(t, sum, 30, 1e-9, "E(n0)+E(n1)+E(nc)")
	}
}

func TestExpectedSlotCountsAtOptimalLoad(t *testing.T) {
	// At p = omega/N the per-slot probabilities approach the Poisson
	// fractions e^-w, w*e^-w.
	const n, f = 10000, 30
	p := math.Sqrt2 / n
	near(t, ExpectedEmpty(n, p, f)/f, math.Exp(-math.Sqrt2), 1e-4, "empty fraction")
	near(t, ExpectedSingleton(n, p, f)/f, math.Sqrt2*math.Exp(-math.Sqrt2), 1e-4, "singleton fraction")
}

func TestEstimatorBiasPaperValues(t *testing.T) {
	// Fig. 3: |bias| ~= 0.0082, 0.011, 0.014 for omega = 1.414/1.817/2.213
	// at f = 30, essentially independent of N.
	for _, tc := range []struct {
		omega float64
		want  float64
	}{
		{1.414, 0.0082}, {1.817, 0.011}, {2.213, 0.014},
	} {
		got := math.Abs(EstimatorBias(10000, tc.omega, 30))
		near(t, got, tc.want, 0.0012, "bias")
		// Independence of N (the paper's flat curves).
		near(t, math.Abs(EstimatorBias(40000, tc.omega, 30)), got, 0.0005, "bias flatness")
	}
}

func TestEstimatorVariancePaperValues(t *testing.T) {
	// Appendix: V(N^/N) ~= 0.0342, 0.0287, 0.0265 for the three omegas.
	near(t, EstimatorVariance(1.414, 30), 0.0342, 0.0005, "variance w=1.414")
	near(t, EstimatorVariance(1.817, 30), 0.0287, 0.0005, "variance w=1.817")
	near(t, EstimatorVariance(2.213, 30), 0.0265, 0.0005, "variance w=2.213")
}

func TestEstimatorVarianceShrinksWithFrameSize(t *testing.T) {
	if EstimatorVariance(1.414, 60) >= EstimatorVariance(1.414, 30) {
		t.Error("variance should shrink as the frame grows")
	}
}

func TestCollisionCountVariance(t *testing.T) {
	// V(nc) = f*q*(1-q) with q = (1+w)e^-w; at w=1.414, q=0.5864... no:
	// q = (1+1.414)*e^-1.414 = 0.5865 -> V = 30*0.5865*0.4135.
	q := (1 + 1.414) * math.Exp(-1.414)
	near(t, CollisionCountVariance(10000, 1.414/10000, 30), 30*q*(1-q), 1e-6, "V(nc)")
}

func TestBounds(t *testing.T) {
	// With the paper's ~2.794 ms slot: 1/(eT) ~= 131.7, 1/(2.88T) ~= 124.3.
	const slot = 0.00279408
	near(t, AlohaBound(slot), 131.67, 0.05, "ALOHA bound")
	near(t, TreeBound(slot), 124.27, 0.05, "tree bound")
	// ANC bound for lambda=2: 0.58694/T ~= 210.1.
	near(t, ANCBound(slot, 2), 210.06, 0.2, "ANC bound")
	// Ordering: tree < ALOHA < ANC-2 < ANC-3 < ANC-4.
	if !(TreeBound(slot) < AlohaBound(slot) &&
		AlohaBound(slot) < ANCBound(slot, 2) &&
		ANCBound(slot, 2) < ANCBound(slot, 3) &&
		ANCBound(slot, 3) < ANCBound(slot, 4)) {
		t.Error("bound ordering violated")
	}
}

func TestANCBoundDiminishingReturns(t *testing.T) {
	// The paper: improvement shrinks quickly with lambda.
	const slot = 0.0028
	gain23 := ANCBound(slot, 3) - ANCBound(slot, 2)
	gain34 := ANCBound(slot, 4) - ANCBound(slot, 3)
	gain45 := ANCBound(slot, 5) - ANCBound(slot, 4)
	if !(gain23 > gain34 && gain34 > gain45) {
		t.Errorf("gains not diminishing: %v %v %v", gain23, gain34, gain45)
	}
}
