package analysis

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/air"
)

func TestFCATThroughputPredictsTable1(t *testing.T) {
	// The analytic model should land on the paper's Table I numbers (which
	// our simulation reproduces) to within a few percent.
	tm := air.ICode()
	for _, tc := range []struct {
		lambda int
		paper  float64
	}{
		{2, 201.3}, {3, 241.8}, {4, 265.1},
	} {
		got := FCATThroughput(10000, tc.lambda, 30, tm)
		if rel := math.Abs(got-tc.paper) / tc.paper; rel > 0.04 {
			t.Errorf("lambda=%d: model %v vs paper %v (%.1f%%)", tc.lambda, got, tc.paper, rel*100)
		}
	}
}

func TestDFSAThroughputPredictsTable1(t *testing.T) {
	got := DFSAThroughput(10000, air.ICode())
	if math.Abs(got-131.4) > 1.5 {
		t.Errorf("DFSA model %v, paper 131.4", got)
	}
}

func TestTreeThroughputPredictsTable1(t *testing.T) {
	got := TreeThroughput(10000, air.ICode())
	if math.Abs(got-124) > 1.5 {
		t.Errorf("tree model %v, paper ~124", got)
	}
}

func TestSCATSlowerThanFCAT(t *testing.T) {
	tm := air.ICode()
	s := SCATThroughput(10000, 2, tm)
	f := FCATThroughput(10000, 2, 30, tm)
	if s >= f {
		t.Fatalf("SCAT model (%v) should trail FCAT (%v)", s, f)
	}
	// SCAT's per-slot advertisement is ~37% of the slot, so expect a big gap.
	if s > f*0.8 {
		t.Errorf("SCAT model %v too close to FCAT %v", s, f)
	}
}

func TestResolvedSharePredictsTable3(t *testing.T) {
	// Table III fractions: ~0.41, ~0.59, ~0.70.
	for _, tc := range []struct {
		lambda int
		want   float64
	}{
		{2, 0.41}, {3, 0.59}, {4, 0.70},
	} {
		if got := ResolvedShare(tc.lambda); math.Abs(got-tc.want) > 0.02 {
			t.Errorf("lambda=%d: resolved share %v, want ~%v", tc.lambda, got, tc.want)
		}
	}
}

func TestModelsDegenerate(t *testing.T) {
	tm := air.ICode()
	if FCATThroughput(0, 2, 30, tm) != 0 || DFSAThroughput(0, tm) != 0 ||
		TreeThroughput(0, tm) != 0 || SCATThroughput(0, 2, tm) != 0 {
		t.Fatal("zero population should predict zero throughput")
	}
}

func TestThroughputScalesWithChannelRate(t *testing.T) {
	// Under the faster Gen2 link every model speeds up by roughly the
	// slot-duration ratio, preserving the ranking.
	icode, gen2 := air.ICode(), air.Gen2()
	ratio := icode.Slot().Seconds() / gen2.Slot().Seconds()
	if ratio < 2 {
		t.Fatalf("Gen2 slots should be much shorter (ratio %v)", ratio)
	}
	fI := FCATThroughput(10000, 2, 30, icode)
	fG := FCATThroughput(10000, 2, 30, gen2)
	if math.Abs(fG/fI-ratio)/ratio > 0.05 {
		t.Errorf("FCAT Gen2 speedup %v, want ~slot ratio %v", fG/fI, ratio)
	}
	if !(FCATThroughput(10000, 2, 30, gen2) > DFSAThroughput(10000, gen2) &&
		DFSAThroughput(10000, gen2) > TreeThroughput(10000, gen2)) {
		t.Error("ranking not preserved under Gen2 timing")
	}
}
