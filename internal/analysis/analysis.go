// Package analysis implements the paper's closed-form results: the optimal
// report-probability constant omega for a given ANC capability lambda
// (Section IV-C), the expected slot-type counts behind the embedded
// estimator (Section V-C, Eqs. 7-10), the estimator's bias and variance
// (Eq. 16 and the appendix), and the classical throughput bounds the paper
// compares against.
package analysis

import "math"

// OptimalOmega returns the omega = N*p that maximises the probability that
// a slot carries 1..lambda transmitters, i.e. that the slot is useful under
// an ANC decoder able to resolve lambda-collisions.
//
// Differentiating sum_{k=1..lambda} omega^k/k! * e^-omega gives
// e^-omega * (1 - omega^lambda/lambda!), so the optimum is the closed form
// omega = (lambda!)^(1/lambda): 1.414, 1.817, 2.213 for lambda = 2, 3, 4
// (paper, Section IV-C). lambda = 1 recovers classical slotted ALOHA's
// omega = 1.
func OptimalOmega(lambda int) float64 {
	if lambda < 1 {
		lambda = 1
	}
	logFact := 0.0
	for k := 2; k <= lambda; k++ {
		logFact += math.Log(float64(k))
	}
	return math.Exp(logFact / float64(lambda))
}

// OptimalOmegaNumeric cross-checks OptimalOmega by golden-section search on
// UsefulSlotProbPoisson over [0, 2*lambda].
func OptimalOmegaNumeric(lambda int) float64 {
	lo, hi := 0.0, 2*float64(lambda)+1
	const phi = 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := UsefulSlotProbPoisson(a, lambda), UsefulSlotProbPoisson(b, lambda)
	for hi-lo > 1e-12 {
		if fa < fb {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = UsefulSlotProbPoisson(b, lambda)
		} else {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = UsefulSlotProbPoisson(a, lambda)
		}
	}
	return (lo + hi) / 2
}

// UsefulSlotProbPoisson returns P{1 <= X <= lambda} for X ~ Poisson(omega):
// the Poisson (large-N) approximation of the probability that a slot is a
// singleton or a resolvable collision (paper, Eq. 4 generalised).
func UsefulSlotProbPoisson(omega float64, lambda int) float64 {
	if omega <= 0 {
		return 0
	}
	term := omega // omega^1/1!
	sum := term
	for k := 2; k <= lambda; k++ {
		term *= omega / float64(k)
		sum += term
	}
	return sum * math.Exp(-omega)
}

// UsefulSlotProbBinomial returns P{1 <= X <= lambda} for X ~ Binomial(n, p):
// the exact finite-population counterpart of UsefulSlotProbPoisson
// (paper, Eq. 2).
func UsefulSlotProbBinomial(n int, p float64, lambda int) float64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		if n <= lambda {
			return 1
		}
		return 0
	}
	// Walk the pmf multiplicatively to avoid large binomial coefficients.
	pdf := math.Pow(1-p, float64(n)) // P{X=0}
	ratio := p / (1 - p)
	sum := 0.0
	for k := 1; k <= lambda && k <= n; k++ {
		pdf *= ratio * float64(n-k+1) / float64(k)
		sum += pdf
	}
	return sum
}

// ExpectedEmpty returns E(n0), the expected number of empty slots in a
// frame of f slots when n tags each report with probability p (Eq. 7).
func ExpectedEmpty(n int, p float64, f int) float64 {
	return float64(f) * math.Pow(1-p, float64(n))
}

// ExpectedSingleton returns E(n1) (Eq. 9).
func ExpectedSingleton(n int, p float64, f int) float64 {
	return float64(f) * float64(n) * p * math.Pow(1-p, float64(n-1))
}

// ExpectedCollision returns E(nc) = f - E(n0) - E(n1) (Eq. 10).
func ExpectedCollision(n int, p float64, f int) float64 {
	return float64(f) - ExpectedEmpty(n, p, f) - ExpectedSingleton(n, p, f)
}

// CollisionCountVariance returns V(nc) for a frame of f slots (Eq. 19,
// Poisson-approximated as in the appendix).
func CollisionCountVariance(n int, p float64, f int) float64 {
	np := float64(n) * p
	q := (1 + np) * math.Exp(-np)
	return float64(f) * q * (1 - q)
}

// EstimatorBias returns the relative bias Bias(N^/N) of the collision-count
// estimator (Eq. 16) for a population of n tags read with p = omega/n in
// frames of f slots. The value is negative (slight underestimate); Fig. 3
// plots its absolute value, which is essentially independent of n.
func EstimatorBias(n int, omega float64, f int) float64 {
	p := omega / float64(n)
	return (1 + omega - math.Exp(omega)) /
		(2 * float64(f) * float64(n) * math.Log(1-p) * (1 + omega))
}

// EstimatorVariance returns V(N^/N), the relative variance of a
// single-frame estimate (Eq. 25 with Np ~= omega): about 0.0342, 0.0287 and
// 0.0265 for omega = 1.414, 1.817 and 2.213 (f = 30). Averaging estimates
// across frames shrinks it by the frame count.
func EstimatorVariance(omega float64, f int) float64 {
	num := (1+omega)*math.Exp(omega) - (1 + 2*omega + omega*omega)
	return num / (float64(f) * math.Pow(omega, 4))
}

// AlohaBound returns 1/(e*T), the maximal reading throughput (tags/second)
// of any ALOHA protocol without collision resolution, for slot length T in
// seconds (paper, Section I).
func AlohaBound(slotSeconds float64) float64 {
	return 1 / (math.E * slotSeconds)
}

// TreeBound returns 1/(2.88*T), the maximal reading throughput of
// binary-tree splitting protocols (paper, Section VII).
func TreeBound(slotSeconds float64) float64 {
	return 1 / (2.88 * slotSeconds)
}

// ANCBound returns the collision-aware counterpart: with optimal omega each
// slot yields an ID with probability UsefulSlotProbPoisson(omega, lambda),
// so the throughput bound is that probability divided by the slot length.
func ANCBound(slotSeconds float64, lambda int) float64 {
	return UsefulSlotProbPoisson(OptimalOmega(lambda), lambda) / slotSeconds
}
