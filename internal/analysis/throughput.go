package analysis

import (
	"math"

	"github.com/ancrfid/ancrfid/internal/air"
)

// Analytic reading-throughput models. Each returns the predicted
// steady-state throughput in tag IDs per second for a population of n tags
// under the given air timing, from the slot-type probabilities alone — the
// closed-form counterpart of the Monte-Carlo numbers in Table I. The
// simulation tests assert the two agree to a few percent.

// FCATThroughput predicts FCAT's reading throughput for a decoder of
// capability lambda running at the optimal omega.
//
// Per slot, the probability of (eventually) learning one ID is
// S = sum_{k=1..lambda} P{X=k} with X ~ Poisson(omega), so identifying n
// tags takes ~ n/S slots, of which a fraction S*resolvedShare yield their
// ID via a record resolution that costs an extra slot-index
// acknowledgement; frames of f slots each add one advertisement.
func FCATThroughput(n int, lambda int, frameSize int, t air.Timing) float64 {
	if n <= 0 {
		return 0
	}
	omega := OptimalOmega(lambda)
	s := UsefulSlotProbPoisson(omega, lambda)
	slots := float64(n) / s

	// Share of IDs recovered from records: all useful slots except the
	// singletons (Table III's fractions).
	singleton := omega * math.Exp(-omega)
	resolvedShare := (s - singleton) / s

	airTime := slots*t.Slot().Seconds() +
		(slots/float64(frameSize))*t.FrameAdvertisement().Seconds() +
		float64(n)*resolvedShare*t.ResolvedIndexAck().Seconds()
	return float64(n) / airTime
}

// DFSAThroughput predicts dynamic framed slotted ALOHA's throughput: e*n
// slots at matched load plus one frame announcement per frame (frames
// shrink geometrically, so about 1/(1-1/e) announcements per initial
// population... negligible; we count log-many frames at the observed ~15
// per run, which contributes under 0.1% and is ignored).
func DFSAThroughput(n int, t air.Timing) float64 {
	if n <= 0 {
		return 0
	}
	slots := float64(n) * math.E
	return float64(n) / (slots * t.Slot().Seconds())
}

// TreeThroughput predicts the binary splitting protocols' throughput:
// ~2.88 slots per tag (paper, Section VII).
func TreeThroughput(n int, t air.Timing) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / (2.88 * float64(n) * t.Slot().Seconds())
}

// SCATThroughput predicts SCAT's throughput: like FCAT but with a per-slot
// advertisement and full 96-bit ID acknowledgements for resolved records
// (the Section V-A inefficiencies FCAT removes).
func SCATThroughput(n int, lambda int, t air.Timing) float64 {
	if n <= 0 {
		return 0
	}
	omega := OptimalOmega(lambda)
	s := UsefulSlotProbPoisson(omega, lambda)
	slots := float64(n) / s
	singleton := omega * math.Exp(-omega)
	resolvedShare := (s - singleton) / s

	airTime := slots*(t.Slot()+t.SlotAdvertisement()).Seconds() +
		float64(n)*resolvedShare*t.ResolvedIDAck().Seconds()
	return float64(n) / airTime
}

// ResolvedShare returns the predicted fraction of IDs recovered from
// collision records at the optimal omega (Table III: ~0.41 / 0.59 / 0.70
// for lambda = 2 / 3 / 4).
func ResolvedShare(lambda int) float64 {
	omega := OptimalOmega(lambda)
	s := UsefulSlotProbPoisson(omega, lambda)
	singleton := omega * math.Exp(-omega)
	return (s - singleton) / s
}
