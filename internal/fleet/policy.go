// Reader-coordination policies. The dense-reader problem is classic RFID
// engineering: readers in adjacent zones jam each other's backscatter
// decode, and deployments coordinate either by time-division (the Colorwave
// family: colour the zone graph, transmit only in your colour's phase) or
// by carrier sensing (listen-before-talk, the ETSI EN 302 208 mechanism).
// Both are modelled here behind one interface; Uncoordinated is the
// baseline that shows why coordination matters.
package fleet

import "time"

// GrantContext is what a policy sees when deciding whether a reader may
// open a slot: the reader's zone, the interference horizon of its
// neighbours, and the fleet's slot quantum. It is computed from the
// scheduler's epoch-start snapshot, never from in-flight state, which is
// what keeps fleet runs bit-identical for any worker count.
type GrantContext struct {
	// Zone is the requesting reader's zone index.
	Zone int
	// Zones is the fleet's zone count.
	Zones int
	// AdjacentBusyUntil is the end of the latest interfering adjacent-zone
	// transmission committed before the current scheduling window; zero
	// when no neighbour's carrier reaches into it.
	AdjacentBusyUntil time.Duration
	// Quantum is the fleet's scheduling quantum (one nominal slot time);
	// TDMA phases are Quantum long.
	Quantum time.Duration
	// Colors is the fleet's default TDMA colour count (1 for one zone, 2
	// for an even ring, 3 for an odd ring).
	Colors int
}

// Policy decides whether a reader may transmit a slot at a given fleet
// wall-clock time. Implementations must be pure functions of their
// arguments (no internal mutable state): the scheduler may consult them
// from concurrent zone shards.
type Policy interface {
	// Name returns the policy's display name, e.g. "tdma".
	Name() string
	// Grant reports whether the reader may open a slot at time at. When it
	// returns false, retry is the earliest time the reader should ask
	// again (strictly later than at).
	Grant(ctx GrantContext, at time.Duration) (ok bool, retry time.Duration)
}

// defaultColors returns the chromatic number of the zone ring: 1 for a
// single zone, 2 for an even ring, 3 for an odd ring of more than one
// zone.
func defaultColors(zones int) int {
	switch {
	case zones <= 1:
		return 1
	case zones%2 == 0:
		return 2
	default:
		return 3
	}
}

// zoneColor assigns zone its TDMA colour such that adjacent ring zones
// never share one (given colors >= defaultColors(zones)): plain modular
// colouring when the ring length divides evenly, otherwise alternate
// through the first colors-1 colours and spend the spare colour on the
// last zone to fix the wraparound seam.
func zoneColor(zone, zones, colors int) int {
	if colors <= 1 {
		return 0
	}
	if zones%colors == 0 {
		return zone % colors
	}
	if zone == zones-1 {
		return colors - 1
	}
	return zone % (colors - 1)
}

// Uncoordinated is the baseline policy: every reader transmits whenever it
// has work, interference be damned. It is the control arm of the
// TDMA-versus-uncoordinated scenario test.
type Uncoordinated struct{}

func (Uncoordinated) Name() string { return "none" }

func (Uncoordinated) Grant(GrantContext, time.Duration) (bool, time.Duration) {
	return true, 0
}

// TDMA is Colorwave-style time-division coordination: zones are coloured
// by zoneColor, time is divided into phases one quantum long, and a reader
// transmits only while the running phase index (t / quantum) mod k equals
// its zone's colour. Adjacent ring zones always hold different colours
// (see defaultColors and zoneColor), so coordinated readers never start
// slots concurrently with their neighbours — residual interference comes
// only from slots that overrun their quantum into the next phase.
type TDMA struct {
	// Colors overrides the colour count; 0 uses the fleet default.
	Colors int
}

func (TDMA) Name() string { return "tdma" }

func (p TDMA) Grant(ctx GrantContext, at time.Duration) (bool, time.Duration) {
	colors := p.Colors
	if colors <= 0 {
		colors = ctx.Colors
	}
	if colors <= 1 || ctx.Quantum <= 0 {
		return true, 0
	}
	color := time.Duration(zoneColor(ctx.Zone, ctx.Zones, colors))
	cycle := ctx.Quantum * time.Duration(colors)
	phase := (at / ctx.Quantum) % time.Duration(colors)
	if phase == color {
		return true, 0
	}
	// Retry at the start of the zone's next phase.
	base := at - at%cycle
	next := base + color*ctx.Quantum
	if next <= at {
		next += cycle
	}
	return false, next
}

// LBT is listen-before-talk: the reader senses the carrier before opening a
// slot and defers while an interfering adjacent-zone transmission covers
// the start time. The sensing window is the scheduling quantum — carriers
// that start within the same window are mutually invisible, which is
// exactly the LBT collision window of real deployments, but falls below
// this model's interference resolution (see docs/fleet.md).
type LBT struct{}

func (LBT) Name() string { return "lbt" }

func (LBT) Grant(ctx GrantContext, at time.Duration) (bool, time.Duration) {
	if at < ctx.AdjacentBusyUntil {
		return false, ctx.AdjacentBusyUntil
	}
	return true, 0
}
