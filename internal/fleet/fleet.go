// Package fleet is the multi-reader layer of the simulator: a
// deterministic discrete-event scheduler hosting N readers as event-driven
// entities wrapping the protocol.Session state machine, with overlapping
// interrogation zones, reader-to-reader interference, pluggable
// coordination policies (Colorwave-style TDMA, listen-before-talk) and tag
// populations migrating between zones.
//
// The paper evaluates one reader over one field; the deployments it
// motivates (warehouses, dock-door portals) run many. This package answers
// the question the single-reader tables cannot: how much of the ANC
// throughput gain survives when adjacent readers jam each other, and how
// much coordination buys back.
//
// # Determinism
//
// Execution advances in scheduling windows one slot-quantum long. Within a
// window every zone drains its own event queue independently — zone state
// is strictly zone-local, and cross-zone facts (interference horizons,
// migrations) are read from snapshots committed at the previous window
// barrier. Between windows a sequential barrier commits, in ascending zone
// order, each zone's transmission spill and staged migrations. The result:
// a fleet run is bit-identical — Report, trace stream, registry dump — for
// any Workers value, and a single-reader single-zone fleet is byte-for-byte
// the plain sim.RunOnce run. See docs/fleet.md for the full contract.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/fault"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
	"github.com/ancrfid/ancrfid/internal/workload"
)

// ErrMigrationNeedsHorizon is returned by Run when MigrationRate is set
// without a Horizon: a migrating population has no batch termination
// condition, so continuous-inventory mode is required.
var ErrMigrationNeedsHorizon = errors.New("fleet: MigrationRate requires a Horizon")

// Config describes one fleet run: the reader/zone topology, the
// coordination policy, the RF link budget, the migration workload, and the
// per-run environment knobs shared with the single-reader harness.
type Config struct {
	// Readers is the number of readers N (default 1). Reader i serves zone
	// i mod Zones; zones with several readers are assumed sectorised
	// (directional antennas), so only adjacent-zone interference is
	// modelled.
	Readers int
	// Zones is the number of interrogation zones M (default Readers).
	// Zones are arranged on a ring unless Linear is set.
	Zones int
	// Tags is the initial population size per reader, drawn from the
	// reader's own generator exactly as sim.RunOnce draws its population.
	Tags int
	// Policy coordinates the readers (default Uncoordinated).
	Policy Policy
	// Horizon, when positive, runs the fleet in continuous-inventory mode:
	// every reader keeps stepping (monitoring included) until its wall
	// clock passes the horizon. Zero runs each reader to its batch
	// termination (static populations only).
	Horizon time.Duration
	// MigrationRate is the per-tag exponential hazard (1/s) of hopping to
	// the next zone. An unidentified tag departing zone z is admitted into
	// zone (z+1) mod Zones (or exits the fleet from the last zone when
	// Linear); an identified tag exits the fleet at its hop. Requires
	// Horizon > 0.
	MigrationRate float64
	// Linear arranges the zones on a line instead of a ring: the first and
	// last zones are not adjacent, and tags migrating out of the last zone
	// leave the fleet.
	Linear bool
	// Workers bounds the number of zone shards executed concurrently
	// within a scheduling window. Any value produces bit-identical output;
	// 0 or 1 runs the zones sequentially on the calling goroutine.
	Workers int
	// Link is the reader-to-reader interference budget (zero value: see
	// DefaultLinkBudget).
	Link LinkBudget
	// ReaderPower optionally overrides the transmit power (dBm) per reader
	// index; missing or zero entries fall back to Link.TxPowerDBm.
	ReaderPower []float64

	// Seed, Lambda, Timing, TxModel, MaxSlots, PAckLoss, NewChannel and
	// Faults mirror sim.Config; each reader derives its generator, channel
	// and fault injector from (Seed, run, reader index), with reader 0's
	// derivation identical to the single-reader harness's.
	Seed       uint64
	Lambda     int
	Timing     air.Timing
	TxModel    protocol.TxModel
	MaxSlots   int
	PAckLoss   float64
	NewChannel func(r *rng.Source) channel.Channel
	// Faults is the fleet-wide fault shape; ReaderFaults overrides it for
	// individual readers (key: reader index), letting chaos experiments
	// degrade one portal of a fleet.
	Faults       fault.Config
	ReaderFaults map[int]fault.Config

	// Tracer receives the fleet's full event stream: each reader's
	// RunStart..RunEnd stream is buffered during execution and replayed in
	// reader-index order when the run finishes, so trace output is
	// bit-identical for any worker count.
	Tracer obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Readers <= 0 {
		c.Readers = 1
	}
	if c.Zones <= 0 {
		c.Zones = c.Readers
	}
	if c.Policy == nil {
		c.Policy = Uncoordinated{}
	}
	if c.Lambda <= 0 {
		c.Lambda = 2
	}
	if c.Timing == (air.Timing{}) {
		c.Timing = air.ICode()
	}
	if c.TxModel == 0 {
		c.TxModel = protocol.TxBinomial
	}
	c.Link = c.Link.withDefaults()
	return c
}

func (c Config) newChannel(r *rng.Source) channel.Channel {
	if c.NewChannel != nil {
		return c.NewChannel(r)
	}
	return channel.NewAbstract(channel.AbstractConfig{Lambda: c.Lambda}, r)
}

// readerFaults returns the fault shape of one reader.
func (c Config) readerFaults(i int) fault.Config {
	if fc, ok := c.ReaderFaults[i]; ok {
		return fc
	}
	return c.Faults
}

// TagLifecycle is one tag's journey through the fleet: the single-reader
// lifecycle record plus where the tag is and how many zones it crossed.
type TagLifecycle struct {
	workload.TagRecord
	// Zone is the tag's current (or final) zone.
	Zone int
	// Hops is the number of inter-zone migrations the tag made.
	Hops int
}

// ReaderReport summarises one reader of the fleet.
type ReaderReport struct {
	Reader int
	Zone   int
	// PowerDBm is the reader's transmit power.
	PowerDBm float64
	// Metrics are the reader's protocol metrics at cutoff.
	Metrics protocol.Metrics
	// Steps counts granted protocol steps; Blocked counts policy denials;
	// Interfered counts slots spoiled by adjacent-zone transmissions.
	Steps      int
	Blocked    int
	Interfered int
	// OnAir is the reader's accumulated air time; Wall is its fleet
	// wall-clock finish time (>= OnAir when the policy deferred slots).
	OnAir time.Duration
	Wall  time.Duration
}

// Report aggregates one fleet run. The population accounting is total and
// fleet-wide: Admitted == Identified + DepartedUnread + ActiveUnread, with
// every tag counted exactly once however many zones it crossed.
type Report struct {
	Protocol string
	Policy   string
	Readers  []ReaderReport
	// Tags holds one lifecycle per admitted tag, in admission order
	// (reader 0's initial population first).
	Tags []TagLifecycle

	Admitted       int
	Identified     int
	DepartedUnread int
	ActiveUnread   int
	// Migrations counts inter-zone hops; ReaderCollisions counts slots
	// spoiled by reader-to-reader interference; BlockedSlots counts policy
	// denials.
	Migrations       int
	ReaderCollisions int
	BlockedSlots     int
	// DupIdents counts tags reported identified by more than one reader
	// (zero unless zones overlap); Phantoms counts identifications of IDs
	// never admitted (possible only under decode-corrupting faults).
	DupIdents int
	Phantoms  int
	// Duration is the fleet wall-clock time consumed (max over readers).
	Duration time.Duration
}

// Accounted reports whether the fleet-wide population accounting is total.
func (r *Report) Accounted() bool {
	return r.Admitted == r.Identified+r.DepartedUnread+r.ActiveUnread
}

// reader is one event-driven reader entity.
type reader struct {
	index, zone int
	powerDBm    float64
	pop         []tagid.ID
	session     protocol.Session
	env         *protocol.Env
	gate        *rfGate
	fch         *fault.Channel
	buf         *obs.Buffer
	pending     []tagid.ID // identifications reported by the last step

	wall       time.Duration // fleet wall-clock time of the last step's end
	steps      int
	blocked    int
	interfered int
	finished   bool
	err        error
}

// migration is one staged inter-zone hop, committed at the window barrier.
type migration struct {
	tag int
	id  tagid.ID
	to  int
	at  time.Duration
}

// zoneState is the strictly zone-local scheduler state: during a window a
// zone touches nothing outside it except immutable snapshots.
type zoneState struct {
	idx     int
	q       eventQueue
	readers []*reader
	rr      int         // round-robin cursor for migrated-tag admission
	wl      *rng.Source // migration dwell draws
	// adjBusy is the interference horizon: the end of the latest
	// interfering adjacent-zone transmission committed before this window.
	// Written only at the barrier.
	adjBusy time.Duration
	// txEnd is the zone's own transmission high-water mark; read by
	// neighbours only at the barrier.
	txEnd time.Duration
	// interferes reports whether this zone's readers are strong enough to
	// spoil a neighbour's slots (precomputed from the link budget).
	interferes bool

	staged     []migration
	migrations int
	dups       int
	phantoms   int
	err        error
}

// fleetRun is the in-flight state of one fleet run.
type fleetRun struct {
	cfg     Config
	proto   protocol.SessionProtocol
	run     int
	quantum time.Duration
	colors  int

	readers []*reader
	zones   []*zoneState
	tags    []TagLifecycle
	index   map[tagid.ID]int
	owner   []*reader // owner[t] serves tag t's current zone; nil in a dead zone
}

const (
	// runGolden matches sim.runRNG's SplitMix increment, so reader 0's
	// generator is the single-reader harness's run generator.
	runGolden = 0x9e3779b97f4a7c15
	// readerSalt separates reader streams (reader 0's salt is zero).
	readerSalt = 0xbf58476d1ce4e5b9
	// zoneSalt separates the per-zone migration streams from every reader
	// stream, so enabling migration never shifts a reader's draws.
	zoneSalt = 0x94d049bb133111eb
)

// readerRNG derives reader i's generator for (seed, run). Reader 0's
// derivation is exactly sim.runRNG(seed, run).
func readerRNG(seed uint64, run, reader int) *rng.Source {
	return rng.New((seed ^ uint64(reader)*readerSalt) ^ (uint64(run)+1)*runGolden)
}

// zoneRNG derives zone z's migration-schedule generator for (seed, run).
func zoneRNG(seed uint64, run, zone int) *rng.Source {
	return rng.New((seed ^ zoneSalt ^ uint64(zone)*readerSalt) ^ (uint64(run)+1)*runGolden)
}

// Run executes one fleet run of p with the deterministic generators
// derived from (cfg.Seed, run). On error the partially accumulated Report
// is still returned, like workload.Run.
func Run(p protocol.SessionProtocol, cfg Config, run int) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.MigrationRate > 0 && cfg.Horizon <= 0 {
		return Report{}, ErrMigrationNeedsHorizon
	}

	f := &fleetRun{
		cfg:     cfg,
		proto:   p,
		run:     run,
		quantum: cfg.Timing.Slot(),
		colors:  defaultColors(cfg.Zones),
		index:   make(map[tagid.ID]int, cfg.Readers*cfg.Tags),
	}
	f.setup()
	f.seedSchedule()

	runErr := f.loop()
	rep := f.finalize(runErr)
	if cfg.Tracer != nil {
		for _, rd := range f.readers {
			rd.buf.Replay(cfg.Tracer)
		}
	}
	return rep, runErr
}

// setup builds the zones and readers. Reader construction order (ascending
// index) fixes every generator's draw sequence; reader 0's environment is
// constructed exactly as sim.RunOnce constructs its run environment.
func (f *fleetRun) setup() {
	cfg := f.cfg
	f.zones = make([]*zoneState, cfg.Zones)
	for z := range f.zones {
		f.zones[z] = &zoneState{idx: z}
		if cfg.MigrationRate > 0 {
			f.zones[z].wl = zoneRNG(cfg.Seed, f.run, z)
		}
	}

	f.readers = make([]*reader, cfg.Readers)
	for i := range f.readers {
		z := i % cfg.Zones
		rd := &reader{index: i, zone: z, powerDBm: cfg.Link.TxPowerDBm}
		if i < len(cfg.ReaderPower) && cfg.ReaderPower[i] != 0 {
			rd.powerDBm = cfg.ReaderPower[i]
		}

		r := readerRNG(cfg.Seed, f.run, i)
		rd.pop = tagid.Population(r, cfg.Tags)
		ch := cfg.newChannel(r)
		env := &protocol.Env{
			RNG:      r,
			Tags:     rd.pop,
			Channel:  ch,
			Timing:   cfg.Timing,
			TxModel:  cfg.TxModel,
			MaxSlots: cfg.MaxSlots,
			PAckLoss: cfg.PAckLoss,
		}
		if env.MaxSlots == 0 && cfg.Horizon > 0 {
			// The batch budget does not scale with the horizon; budget like
			// the workload driver does.
			env.MaxSlots = int(4*cfg.Horizon/cfg.Timing.Slot()) + 10000
		}
		if cfg.Tracer != nil {
			rd.buf = &obs.Buffer{}
			env.Tracer = rd.buf
		}
		if fc := cfg.readerFaults(i); fc.Enabled() {
			inj := fault.New(fc, cfg.Seed^uint64(i)*readerSalt, f.run)
			fch := fault.WrapChannel(ch, inj)
			fch.Tracer = env.Tracer
			fch.AdmitAll(rd.pop)
			env.Channel = fch
			env.Faults = inj
			rd.fch = fch
		}
		if cfg.Zones > 1 {
			rd.gate = &rfGate{inner: env.Channel}
			env.Channel = rd.gate
		}
		env.OnIdentified = func(id tagid.ID, viaResolution bool) {
			rd.pending = append(rd.pending, id)
		}
		rd.env = env
		rd.session = f.proto.Begin(env)
		f.readers[i] = rd
		f.zones[z].readers = append(f.zones[z].readers, rd)

		for _, id := range rd.pop {
			f.index[id] = len(f.tags)
			f.tags = append(f.tags, TagLifecycle{TagRecord: workload.TagRecord{ID: id}, Zone: z})
			f.owner = append(f.owner, rd)
		}
	}

	// Precompute which zones can spoil a neighbour's slots: a zone
	// interferes when its strongest reader clears the budget's threshold.
	for _, z := range f.zones {
		for _, rd := range z.readers {
			if f.cfg.Link.Interferes(rd.powerDBm) {
				z.interferes = true
				break
			}
		}
	}
}

// seedSchedule enqueues the initial events: one step per reader at t=0 and,
// when migration is on, every initial tag's first hop (drawn from the
// zone's schedule generator in (zone, reader, tag) order).
func (f *fleetRun) seedSchedule() {
	for _, rd := range f.readers {
		f.zones[rd.zone].q.push(event{at: 0, kind: evStep, reader: rd.index})
	}
	if f.cfg.MigrationRate <= 0 {
		return
	}
	for _, z := range f.zones {
		for _, rd := range z.readers {
			for _, id := range rd.pop {
				due := workload.Exp(z.wl, f.cfg.MigrationRate)
				if due <= f.cfg.Horizon {
					z.q.push(event{at: due, kind: evDepart, tag: f.index[id], id: id})
				}
			}
		}
	}
}

// loop runs scheduling windows until every queue drains or a reader fails.
func (f *fleetRun) loop() error {
	for {
		minAt := time.Duration(-1)
		for _, z := range f.zones {
			if ev, ok := z.q.peek(); ok && (minAt < 0 || ev.at < minAt) {
				minAt = ev.at
			}
		}
		if minAt < 0 {
			return nil
		}
		ws := (minAt / f.quantum) * f.quantum
		we := ws + f.quantum

		f.runWindow(ws, we)

		if err := f.commit(); err != nil {
			return err
		}
	}
}

// runWindow drains every zone's events due before we — in parallel across
// zone shards when Workers allows. Zones are mutually independent within a
// window (they read only barrier-committed snapshots), so the shard
// assignment cannot influence the outcome.
func (f *fleetRun) runWindow(ws, we time.Duration) {
	workers := f.cfg.Workers
	if workers > len(f.zones) {
		workers = len(f.zones)
	}
	if workers <= 1 || len(f.zones) <= 1 {
		for _, z := range f.zones {
			f.drainZone(z, we)
		}
		return
	}
	var (
		next int32
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= len(f.zones) {
					return
				}
				f.drainZone(f.zones[i], we)
			}
		}()
	}
	wg.Wait()
}

// drainZone processes one zone's events due before we, in (at, seq) order.
func (f *fleetRun) drainZone(z *zoneState, we time.Duration) {
	for z.err == nil {
		ev, ok := z.q.peek()
		if !ok || ev.at >= we {
			return
		}
		z.q.pop()
		switch ev.kind {
		case evStep:
			f.stepReader(z, f.readers[ev.reader], ev.at)
		case evDepart:
			f.depart(z, ev)
		case evArrive:
			f.arrive(z, ev)
		}
	}
}

// stepReader asks the policy for a grant and, if granted, executes one
// protocol step of rd starting at fleet wall time t. The slot is spoiled
// when an interfering adjacent-zone transmission committed at an earlier
// barrier covers t — the later-starting slot is always the victim.
func (f *fleetRun) stepReader(z *zoneState, rd *reader, t time.Duration) {
	ctx := GrantContext{
		Zone:              z.idx,
		Zones:             f.cfg.Zones,
		AdjacentBusyUntil: z.adjBusy,
		Quantum:           f.quantum,
		Colors:            f.colors,
	}
	ok, retry := f.cfg.Policy.Grant(ctx, t)
	if !ok {
		rd.blocked++
		f.traceFleet(rd, obs.FleetSlotBlocked, z.idx, -1, tagid.ID{}, t)
		if retry <= t {
			retry = t + f.quantum // defensive: a policy must move time forward
		}
		if f.cfg.Horizon > 0 && retry >= f.cfg.Horizon {
			f.finishReader(rd, nil)
			return
		}
		z.q.push(event{at: retry, kind: evStep, reader: rd.index})
		return
	}

	interfered := t < z.adjBusy
	if rd.gate != nil {
		rd.gate.interfered = interfered
	}
	if interfered {
		rd.interfered++
		f.traceFleet(rd, obs.FleetSlotInterfered, z.idx, -1, tagid.ID{}, t)
	}
	before := rd.session.Elapsed()
	done, err := rd.session.Step()
	if rd.gate != nil {
		rd.gate.interfered = false
	}
	dur := rd.session.Elapsed() - before
	if dur <= 0 {
		dur = time.Nanosecond // defensive: every step consumes air time
	}
	end := t + dur
	rd.wall = end
	rd.steps++
	if end > z.txEnd {
		z.txEnd = end
	}
	f.stampIdents(z, rd)

	if err != nil {
		z.err = fmt.Errorf("fleet reader %d (zone %d, wall %v): %w", rd.index, z.idx, end, err)
		f.finishReader(rd, err)
		return
	}
	if f.cfg.Horizon > 0 {
		if end >= f.cfg.Horizon {
			f.finishReader(rd, nil)
			return
		}
	} else if done {
		f.finishReader(rd, nil)
		return
	}
	z.q.push(event{at: end, kind: evStep, reader: rd.index})
}

// stampIdents folds the identifications the last step reported into the
// fleet's tag table. Only the owning zone's reader can identify a tag, so
// these writes never race across zone shards.
func (f *fleetRun) stampIdents(z *zoneState, rd *reader) {
	for _, id := range rd.pending {
		seq, ok := f.index[id]
		if !ok {
			z.phantoms++ // a decode-corrupting fault invented this ID
			continue
		}
		rec := &f.tags[seq]
		if rec.Identified {
			z.dups++
			continue
		}
		rec.Identified = true
		rec.IdentifiedAt = rd.wall
	}
	rd.pending = rd.pending[:0]
}

// depart handles a tag's scheduled hop out of its current zone: identified
// tags and tags leaving the end of a line exit the fleet; unidentified
// tags stage a migration, committed into the next zone at the barrier.
func (f *fleetRun) depart(z *zoneState, ev event) {
	rec := &f.tags[ev.tag]
	rd := f.owner[ev.tag]
	if rd != nil {
		rd.session.Revoke([]tagid.ID{ev.id})
		if rd.fch != nil {
			rd.fch.Revoke(ev.id)
		}
	}
	exits := rec.Identified || (f.cfg.Linear && z.idx == f.cfg.Zones-1)
	if exits {
		rec.Departed = true
		rec.DepartedAt = ev.at
		if rd != nil && rd.env.Tracer != nil {
			rd.env.TraceDeparture(obs.DepartureEvent{ID: ev.id, At: rd.env.Now(), Identified: rec.Identified})
		}
		return
	}
	dest := (z.idx + 1) % f.cfg.Zones
	f.traceFleet(rd, obs.FleetMigration, dest, z.idx, ev.id, ev.at)
	z.staged = append(z.staged, migration{tag: ev.tag, id: ev.id, to: dest, at: ev.at})
	z.migrations++
}

// arrive admits a migrated tag into its destination zone, assigns it a
// serving reader round-robin, and draws its next hop from the zone's
// schedule generator.
func (f *fleetRun) arrive(z *zoneState, ev event) {
	rec := &f.tags[ev.tag]
	rec.Zone = z.idx
	rec.Hops++
	var rd *reader
	if len(z.readers) > 0 {
		rd = z.readers[z.rr%len(z.readers)]
		z.rr++
	}
	f.owner[ev.tag] = rd
	if rd != nil {
		rd.session.Admit([]tagid.ID{ev.id})
		if rd.fch != nil {
			rd.fch.Admit(ev.id)
		}
		if rd.env.Tracer != nil {
			rd.env.TraceArrival(obs.ArrivalEvent{ID: ev.id, At: rd.env.Now(), Active: rd.session.Outstanding()})
		}
	}
	due := ev.at + workload.Exp(z.wl, f.cfg.MigrationRate)
	if due <= f.cfg.Horizon {
		z.q.push(event{at: due, kind: evDepart, tag: ev.tag, id: ev.id})
	}
}

// commit is the window barrier: sequentially, in ascending zone order, it
// recomputes every zone's interference horizon from the committed
// transmission high-water marks and delivers staged migrations into their
// destination queues. It returns the lowest-zone error of the window.
func (f *fleetRun) commit() error {
	for _, z := range f.zones {
		z.adjBusy = 0
		for _, n := range f.neighbors(z.idx) {
			nz := f.zones[n]
			if nz.interferes && nz.txEnd > z.adjBusy {
				z.adjBusy = nz.txEnd
			}
		}
	}
	for _, z := range f.zones {
		for _, m := range z.staged {
			f.zones[m.to].q.push(event{at: m.at, kind: evArrive, tag: m.tag, id: m.id, from: z.idx})
		}
		z.staged = z.staged[:0]
	}
	for _, z := range f.zones {
		if z.err != nil {
			return z.err
		}
	}
	return nil
}

// neighbors returns the zones adjacent to z (ring or line).
func (f *fleetRun) neighbors(z int) []int {
	m := f.cfg.Zones
	if m <= 1 {
		return nil
	}
	if f.cfg.Linear {
		switch z {
		case 0:
			return []int{1}
		case m - 1:
			return []int{m - 2}
		default:
			return []int{z - 1, z + 1}
		}
	}
	if m == 2 {
		return []int{1 - z}
	}
	return []int{(z + m - 1) % m, (z + 1) % m}
}

// finishReader closes a reader's stream exactly once, emitting the run-end
// trace event the single-reader driver would.
func (f *fleetRun) finishReader(rd *reader, err error) {
	if rd.finished {
		return
	}
	rd.finished = true
	rd.err = err
	rd.env.TraceRunEnd(f.proto.Name(), rd.session.Metrics(), err)
}

// traceFleet emits a fleet-scheduler event into rd's stream.
func (f *fleetRun) traceFleet(rd *reader, kind obs.FleetKind, zone, from int, id tagid.ID, at time.Duration) {
	if rd == nil || rd.env.Tracer == nil {
		return
	}
	rd.env.Tracer.FleetActivity(obs.FleetEvent{
		Reader: rd.index, Zone: zone, Kind: kind, ID: id, From: from, At: at,
	})
}

// finalize assembles the Report.
func (f *fleetRun) finalize(runErr error) Report {
	rep := Report{
		Protocol: f.proto.Name(),
		Policy:   f.cfg.Policy.Name(),
		Readers:  make([]ReaderReport, 0, len(f.readers)),
		Tags:     f.tags,
	}
	for _, rd := range f.readers {
		if !rd.finished && runErr == nil {
			// Defensive: a drained schedule should have finished everyone.
			f.finishReader(rd, nil)
		}
		rep.Readers = append(rep.Readers, ReaderReport{
			Reader:     rd.index,
			Zone:       rd.zone,
			PowerDBm:   rd.powerDBm,
			Metrics:    rd.session.Metrics(),
			Steps:      rd.steps,
			Blocked:    rd.blocked,
			Interfered: rd.interfered,
			OnAir:      rd.session.Elapsed(),
			Wall:       rd.wall,
		})
		rep.BlockedSlots += rd.blocked
		rep.ReaderCollisions += rd.interfered
		if rd.wall > rep.Duration {
			rep.Duration = rd.wall
		}
	}
	for _, z := range f.zones {
		rep.Migrations += z.migrations
		rep.DupIdents += z.dups
		rep.Phantoms += z.phantoms
	}
	rep.Admitted = len(f.tags)
	for i := range f.tags {
		t := &f.tags[i]
		switch {
		case t.Identified:
			rep.Identified++
		case t.Departed:
			rep.DepartedUnread++
		default:
			rep.ActiveUnread++
		}
	}
	return rep
}
