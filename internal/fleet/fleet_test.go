package fleet

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/fault"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/obs"
)

func TestEventQueueOrder(t *testing.T) {
	var q eventQueue
	r := rand.New(rand.NewSource(7))
	const n = 500
	for i := 0; i < n; i++ {
		// Coarse times force plenty of ties; seq must break them in push
		// order.
		q.push(event{at: time.Duration(r.Intn(20)) * time.Millisecond, kind: evStep, reader: i})
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	var prev event
	for i := 0; i < n; i++ {
		peeked, ok := q.peek()
		if !ok {
			t.Fatalf("peek %d: empty", i)
		}
		ev, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if peeked != ev {
			t.Fatalf("pop %d: peek %+v != pop %+v", i, peeked, ev)
		}
		if i > 0 && ev.before(prev) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, ev, prev)
		}
		if i > 0 && ev.at == prev.at && ev.seq < prev.seq {
			t.Fatalf("pop %d: tie not broken by push order: %+v after %+v", i, ev, prev)
		}
		prev = ev
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty queue reported an event")
	}
}

func TestDefaultColors(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 4: 2, 8: 2, 3: 3, 5: 3, 7: 3}
	for zones, want := range cases {
		if got := defaultColors(zones); got != want {
			t.Errorf("defaultColors(%d) = %d, want %d", zones, got, want)
		}
	}
	// Adjacency check: on any ring the default colouring must give adjacent
	// zones distinct colours (including across the wraparound seam).
	for zones := 2; zones <= 9; zones++ {
		k := defaultColors(zones)
		for z := 0; z < zones; z++ {
			c := zoneColor(z, zones, k)
			if c < 0 || c >= k {
				t.Fatalf("zones=%d: zoneColor(%d) = %d out of range", zones, z, c)
			}
			if n := (z + 1) % zones; c == zoneColor(n, zones, k) {
				t.Errorf("zones=%d colors=%d: zone %d and %d share colour", zones, k, z, n)
			}
		}
	}
}

func TestTDMAGrant(t *testing.T) {
	q := 2 * time.Millisecond
	ctx := GrantContext{Zone: 1, Zones: 4, Quantum: q, Colors: 2}
	p := TDMA{}
	// Zone 1, 2 colours: own phases are odd quanta.
	if ok, _ := p.Grant(ctx, q); !ok {
		t.Fatal("own phase denied")
	}
	if ok, _ := p.Grant(ctx, q+q/2); !ok {
		t.Fatal("mid own phase denied")
	}
	ok, retry := p.Grant(ctx, 0)
	if ok {
		t.Fatal("foreign phase granted")
	}
	if retry != q {
		t.Fatalf("retry = %v, want %v", retry, q)
	}
	// From inside a foreign phase the retry is the NEXT own phase start.
	ok, retry = p.Grant(ctx, 2*q+q/4)
	if ok {
		t.Fatal("foreign phase granted")
	}
	if retry != 3*q {
		t.Fatalf("retry = %v, want %v", retry, 3*q)
	}
	if ok2, retry2 := p.Grant(ctx, retry); !ok2 {
		t.Fatalf("retry time %v denied (retry -> %v)", retry, retry2)
	}
	// Single colour degenerates to always-grant.
	if ok, _ := (TDMA{Colors: 1}).Grant(ctx, 0); !ok {
		t.Fatal("single colour denied")
	}
}

func TestLBTGrant(t *testing.T) {
	busy := 5 * time.Millisecond
	ctx := GrantContext{AdjacentBusyUntil: busy}
	ok, retry := LBT{}.Grant(ctx, 1*time.Millisecond)
	if ok {
		t.Fatal("granted under a busy carrier")
	}
	if retry != busy {
		t.Fatalf("retry = %v, want %v", retry, busy)
	}
	if ok, _ := (LBT{}).Grant(ctx, busy); !ok {
		t.Fatal("denied at carrier end")
	}
	if ok, _ := (LBT{}).Grant(GrantContext{}, 0); !ok {
		t.Fatal("denied with idle neighbours")
	}
}

func TestLinkBudget(t *testing.T) {
	lb := DefaultLinkBudget()
	if !lb.Interferes(lb.TxPowerDBm) {
		t.Fatal("default budget should interfere at default power")
	}
	// -80 dBm threshold: 40 dB loss + (-90 + 10) dBm floor+margin.
	if lb.Interferes(-41) {
		t.Fatal("-41 dBm should be below the interference threshold")
	}
	if !lb.Interferes(-39) {
		t.Fatal("-39 dBm should clear the interference threshold")
	}
	if s := lb.NoiseSigma(); s < 0.03 || s > 0.04 {
		t.Fatalf("NoiseSigma = %v, want ~0.0316", s)
	}
	if sc := lb.SignalConfig(); sc.NoiseSigma != lb.NoiseSigma() {
		t.Fatal("SignalConfig did not adopt the budget's sigma")
	}
	var zero LinkBudget
	if zero.withDefaults() != DefaultLinkBudget() {
		t.Fatal("zero budget should fill to the default")
	}
}

// traceBytes runs one fleet and returns (report dump, JSONL trace bytes).
func traceBytes(t *testing.T, cfg Config) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Tracer = obs.NewJSONL(&buf)
	rep, err := Run(fcat.New(fcat.Config{Lambda: 2}), cfg, 0)
	if err != nil {
		t.Fatalf("fleet run failed: %v", err)
	}
	return fmt.Sprintf("%#v", rep), buf.Bytes()
}

func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	for _, pol := range []Policy{Uncoordinated{}, TDMA{}, LBT{}} {
		for _, zones := range []int{2, 4} {
			base := Config{
				Readers:       4,
				Zones:         zones,
				Tags:          30,
				Policy:        pol,
				Seed:          42,
				Horizon:       400 * time.Millisecond,
				MigrationRate: 4,
			}
			seq := base
			seq.Workers = 1
			par := base
			par.Workers = 8
			repSeq, traceSeq := traceBytes(t, seq)
			repPar, tracePar := traceBytes(t, par)
			if repSeq != repPar {
				t.Errorf("policy=%s zones=%d: report differs between 1 and 8 workers", pol.Name(), zones)
			}
			if !bytes.Equal(traceSeq, tracePar) {
				t.Errorf("policy=%s zones=%d: JSONL trace differs between 1 and 8 workers", pol.Name(), zones)
			}
		}
	}
}

func TestFleetStaticBatchCompletes(t *testing.T) {
	rep, err := Run(fcat.New(fcat.Config{Lambda: 2}), Config{
		Readers: 3, Zones: 3, Tags: 25, Seed: 7, Policy: TDMA{},
	}, 0)
	if err != nil {
		t.Fatalf("fleet run failed: %v", err)
	}
	if rep.Admitted != 75 {
		t.Fatalf("Admitted = %d, want 75", rep.Admitted)
	}
	if rep.Identified != 75 {
		t.Fatalf("static batch left %d tags unidentified", rep.Admitted-rep.Identified)
	}
	if !rep.Accounted() {
		t.Fatal("accounting not total")
	}
	for i, rr := range rep.Readers {
		if rr.Metrics.Identified() != 25 {
			t.Errorf("reader %d identified %d, want 25", i, rr.Metrics.Identified())
		}
		if rr.Wall < rr.OnAir {
			t.Errorf("reader %d wall %v < air %v", i, rr.Wall, rr.OnAir)
		}
	}
}

func TestFleetMigrationAccounting(t *testing.T) {
	for _, linear := range []bool{false, true} {
		cfg := Config{
			Readers:       4,
			Zones:         4,
			Tags:          40,
			Seed:          99,
			Horizon:       500 * time.Millisecond,
			MigrationRate: 6,
			Linear:        linear,
		}
		rep, err := Run(fcat.New(fcat.Config{Lambda: 2}), cfg, 0)
		if err != nil {
			t.Fatalf("linear=%v: fleet run failed: %v", linear, err)
		}
		if !rep.Accounted() {
			t.Fatalf("linear=%v: admitted %d != identified %d + departed-unread %d + active %d",
				linear, rep.Admitted, rep.Identified, rep.DepartedUnread, rep.ActiveUnread)
		}
		if rep.Migrations == 0 {
			t.Errorf("linear=%v: no migrations at rate %v over %v", linear, cfg.MigrationRate, cfg.Horizon)
		}
		if rep.DupIdents != 0 {
			t.Errorf("linear=%v: %d tags identified by more than one reader (zones do not overlap)", linear, rep.DupIdents)
		}
		if rep.Phantoms != 0 {
			t.Errorf("linear=%v: %d phantom identifications without faults", linear, rep.Phantoms)
		}
		hops := 0
		for _, tag := range rep.Tags {
			hops += tag.Hops
			if tag.Zone < 0 || tag.Zone >= cfg.Zones {
				t.Fatalf("linear=%v: tag in zone %d of %d", linear, tag.Zone, cfg.Zones)
			}
		}
		if hops != rep.Migrations {
			t.Errorf("linear=%v: per-tag hops %d != Migrations %d", linear, hops, rep.Migrations)
		}
		if linear {
			// On a line, unread tags leaving the last zone exit the fleet.
			if rep.DepartedUnread == 0 {
				t.Error("linear fleet recorded no unread exits")
			}
		}
	}
}

func TestFleetMigrationRequiresHorizon(t *testing.T) {
	_, err := Run(fcat.New(fcat.Config{Lambda: 2}), Config{Readers: 2, Tags: 10, MigrationRate: 1}, 0)
	if err != ErrMigrationNeedsHorizon {
		t.Fatalf("err = %v, want ErrMigrationNeedsHorizon", err)
	}
}

func TestTDMABeatsUncoordinated(t *testing.T) {
	base := Config{Readers: 4, Zones: 4, Tags: 60, Seed: 11}
	un := base
	un.Policy = Uncoordinated{}
	unRep, err := Run(fcat.New(fcat.Config{Lambda: 2}), un, 0)
	if err != nil {
		t.Fatalf("uncoordinated run failed: %v", err)
	}
	td := base
	td.Policy = TDMA{}
	tdRep, err := Run(fcat.New(fcat.Config{Lambda: 2}), td, 0)
	if err != nil {
		t.Fatalf("tdma run failed: %v", err)
	}
	if unRep.ReaderCollisions == 0 {
		t.Fatal("uncoordinated 4-zone fleet saw no reader-to-reader interference; scenario is too easy")
	}
	if tdRep.ReaderCollisions >= unRep.ReaderCollisions {
		t.Fatalf("tdma interfered slots %d, want strictly fewer than uncoordinated %d",
			tdRep.ReaderCollisions, unRep.ReaderCollisions)
	}
	if tdRep.BlockedSlots == 0 {
		t.Error("tdma blocked no slots; the policy never engaged")
	}
}

func TestFleetLowPowerDisablesInterference(t *testing.T) {
	cfg := Config{
		Readers: 4, Zones: 4, Tags: 40, Seed: 11,
		// Everyone below the -80 dBm adjacent threshold: budget says no
		// reader can spoil a neighbour.
		ReaderPower: []float64{-50, -50, -50, -50},
	}
	rep, err := Run(fcat.New(fcat.Config{Lambda: 2}), cfg, 0)
	if err != nil {
		t.Fatalf("fleet run failed: %v", err)
	}
	if rep.ReaderCollisions != 0 {
		t.Fatalf("low-power fleet recorded %d interfered slots, want 0", rep.ReaderCollisions)
	}
	for _, rr := range rep.Readers {
		if rr.PowerDBm != -50 {
			t.Fatalf("reader %d power %v, want -50", rr.Reader, rr.PowerDBm)
		}
	}
}

func TestFleetPerReaderFaults(t *testing.T) {
	// Mute every tag of reader 1 only: reader 0 finishes its batch normally
	// while reader 1's bootstrap proves a silent field and it parks in
	// monitoring with nothing identified. The per-reader override must leave
	// reader 0 untouched, and the muted tags must show up as ActiveUnread in
	// the fleet accounting.
	cfg := Config{
		Readers: 2, Zones: 2, Tags: 20, Seed: 5,
		ReaderFaults: map[int]fault.Config{1: {MuteProb: 1}},
	}
	rep, err := Run(fcat.New(fcat.Config{Lambda: 2}), cfg, 0)
	if err != nil {
		t.Fatalf("fleet run failed: %v", err)
	}
	if got := rep.Readers[0].Metrics.Identified(); got != 20 {
		t.Errorf("fault-free reader 0 identified %d, want 20", got)
	}
	if got := rep.Readers[1].Metrics.Identified(); got != 0 {
		t.Errorf("fully muted reader 1 identified %d, want 0", got)
	}
	if rep.ActiveUnread != 20 || !rep.Accounted() {
		t.Errorf("ActiveUnread = %d (accounted=%v), want 20 muted tags still active",
			rep.ActiveUnread, rep.Accounted())
	}
}

func BenchmarkEventQueue(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ats := make([]time.Duration, 1024)
	for i := range ats {
		ats[i] = time.Duration(r.Intn(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q eventQueue
		for j, at := range ats {
			q.push(event{at: at, kind: evStep, reader: j})
		}
		for q.Len() > 0 {
			q.pop()
		}
	}
}
