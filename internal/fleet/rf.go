// RF model of a multi-reader deployment: per-reader transmit-power link
// budgets, the adjacent-zone interference criterion, and the channel
// wrapper that spoils a victim slot when an interfering reader's carrier
// covers it.
package fleet

import (
	"math"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// LinkBudget is the dBm arithmetic of reader-to-reader interference. Zones
// are arranged on a ring (or a line, see Config.Linear); readers one zone
// apart are "adjacent" and their carriers reach each other attenuated by
// AdjacentLossDB. A transmission interferes with a neighbouring zone's
// slot exactly when its received power clears the victim reader's noise
// floor by more than the interference margin — so lowering TxPowerDBm (the
// rfidsim -reader-power flag) below the budget's threshold switches
// reader-to-reader interference off entirely.
type LinkBudget struct {
	// TxPowerDBm is the default reader transmit power (30 dBm ~ 1 W ERP,
	// the UHF RFID regulatory ceiling in most regions).
	TxPowerDBm float64
	// AdjacentLossDB is the path loss between the antennas of readers one
	// zone apart (default 40 dB).
	AdjacentLossDB float64
	// NoiseFloorDBm is the ambient noise floor at the reader's receiver
	// (default -90 dBm).
	NoiseFloorDBm float64
	// InterferenceMarginDB is how far above the noise floor an interfering
	// carrier must land to spoil a slot (default 10 dB).
	InterferenceMarginDB float64
}

// DefaultLinkBudget returns the warehouse-portal defaults: 30 dBm readers,
// 40 dB of separation between adjacent zones, a -90 dBm floor and a 10 dB
// margin — adjacent-zone interference is on (30 - 40 = -10 dBm received,
// far above -80 dBm).
func DefaultLinkBudget() LinkBudget {
	return LinkBudget{TxPowerDBm: 30, AdjacentLossDB: 40, NoiseFloorDBm: -90, InterferenceMarginDB: 10}
}

// withDefaults fills unset (zero) fields with the default budget. A caller
// that really wants a 0 dBm transmitter sets a tiny non-zero value.
func (l LinkBudget) withDefaults() LinkBudget {
	d := DefaultLinkBudget()
	if l.TxPowerDBm == 0 {
		l.TxPowerDBm = d.TxPowerDBm
	}
	if l.AdjacentLossDB == 0 {
		l.AdjacentLossDB = d.AdjacentLossDB
	}
	if l.NoiseFloorDBm == 0 {
		l.NoiseFloorDBm = d.NoiseFloorDBm
	}
	if l.InterferenceMarginDB == 0 {
		l.InterferenceMarginDB = d.InterferenceMarginDB
	}
	return l
}

// Interferes reports whether a transmission at txPowerDBm from an adjacent
// zone spoils this budget's slots: received power after one zone of path
// loss must clear the noise floor by more than the margin.
func (l LinkBudget) Interferes(txPowerDBm float64) bool {
	return txPowerDBm-l.AdjacentLossDB > l.NoiseFloorDBm+l.InterferenceMarginDB
}

// NoiseSigma converts the noise floor into the signal channel's per-sample
// AWGN sigma, referenced to tag backscatter received at -60 dBm mapping to
// unit amplitude. The default -90 dBm floor yields sigma ~ 0.0316, the
// same regime as channel.DefaultSignalConfig's 0.03.
func (l LinkBudget) NoiseSigma() float64 {
	return math.Pow(10, (l.NoiseFloorDBm+60)/20)
}

// SignalConfig feeds the budget into the physical-layer channel preset:
// the default signal configuration with its AWGN sigma derived from the
// budget's noise floor.
func (l LinkBudget) SignalConfig() channel.SignalConfig {
	sc := channel.DefaultSignalConfig()
	sc.NoiseSigma = l.NoiseSigma()
	return sc
}

// rfGate wraps a reader's channel and spoils the observation of slots the
// scheduler marked as interfered. The inner channel always observes first
// — its RNG draws are consumed identically whether or not the slot is
// spoiled, so interference never shifts a run's random stream, only what
// the reader learns from the slot.
//
// The victim asymmetry: a slot is spoiled when an adjacent-zone
// transmission committed in an earlier scheduling window covers its start.
// Empty slots stay empty (carrier sense distinguishes an idle tag field
// from garbled backscatter); singleton and collision slots degrade to an
// ANC-unrecoverable collision recording.
type rfGate struct {
	inner channel.Channel
	// interfered is set by the scheduler immediately before the step that
	// executes the slot, and cleared after.
	interfered bool
}

var _ channel.Channel = (*rfGate)(nil)

func (g *rfGate) Observe(transmitters []tagid.ID) channel.Observation {
	o := g.inner.Observe(transmitters)
	if !g.interfered || o.Kind == channel.Empty {
		return o
	}
	return channel.Observation{Kind: channel.Collision, Mix: newSpoiledMix(transmitters)}
}

// spoiledMix is the recording of a slot ruined by reader-to-reader
// interference: the ground-truth membership is intact (the simulator knows
// who transmitted), but no amount of ANC cancellation recovers a residual
// — Decode always fails. Under hardened mode the record store's
// residual-energy guard quarantines it once stripped to one member; under
// normal operation the unidentified members simply keep retransmitting.
type spoiledMix struct {
	members    []tagid.ID
	subtracted []bool
	remaining  int
}

var (
	_ channel.Mixed    = (*spoiledMix)(nil)
	_ channel.Cloner   = (*spoiledMix)(nil)
	_ channel.Residual = (*spoiledMix)(nil)
)

func newSpoiledMix(transmitters []tagid.ID) *spoiledMix {
	return &spoiledMix{
		members:    append([]tagid.ID(nil), transmitters...),
		subtracted: make([]bool, len(transmitters)),
		remaining:  len(transmitters),
	}
}

func (m *spoiledMix) Contains(id tagid.ID) bool {
	for _, mem := range m.members {
		if mem == id {
			return true
		}
	}
	return false
}

func (m *spoiledMix) Subtract(id tagid.ID) {
	for i, mem := range m.members {
		if mem == id && !m.subtracted[i] {
			m.subtracted[i] = true
			m.remaining--
			return
		}
	}
}

func (m *spoiledMix) Decode() (tagid.ID, bool) { return tagid.ID{}, false }

func (m *spoiledMix) Multiplicity() int { return len(m.members) }

func (m *spoiledMix) CloneMixed() channel.Mixed {
	return &spoiledMix{
		members:    append([]tagid.ID(nil), m.members...),
		subtracted: append([]bool(nil), m.subtracted...),
		remaining:  m.remaining,
	}
}

func (m *spoiledMix) Remaining() int { return m.remaining }
