package fleet

import (
	"time"

	"github.com/ancrfid/ancrfid/internal/tagid"
)

// eventKind discriminates the scheduler's event types.
type eventKind uint8

const (
	// evStep schedules one protocol step of a reader.
	evStep eventKind = iota + 1
	// evDepart schedules a tag leaving its current zone (migration hop or
	// fleet exit).
	evDepart
	// evArrive schedules a migrated tag's admission into its destination
	// zone. Arrivals are pushed at the epoch barrier by the source zone's
	// commit, so they always execute in a later scheduling window than the
	// departure that produced them.
	evArrive
)

// event is one entry of a zone's discrete-event queue.
type event struct {
	// at is the fleet wall-clock time the event is due.
	at time.Duration
	// seq is the queue-local push counter; it breaks ties between events
	// due at the same instant, so the pop order is a total order and the
	// schedule is deterministic.
	seq uint64

	kind   eventKind
	reader int      // evStep: reader index
	tag    int      // evDepart/evArrive: index into the fleet's tag table
	id     tagid.ID // evDepart/evArrive: the tag itself
	from   int      // evArrive: source zone; -1 otherwise
}

// before is the heap ordering: earliest due time first, push order breaking
// ties.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a binary min-heap of events keyed by (at, seq). It is the
// per-zone spine of the discrete-event scheduler: hand-rolled sift
// operations (no container/heap boxing) keep pushes and pops
// allocation-free once the backing array has grown.
type eventQueue struct {
	h    []event
	next uint64 // next push's seq
}

// Len returns the number of queued events.
func (q *eventQueue) Len() int { return len(q.h) }

// push enqueues an event, stamping its tie-break sequence number.
func (q *eventQueue) push(e event) {
	e.seq = q.next
	q.next++
	q.h = append(q.h, e)
	q.siftUp(len(q.h) - 1)
}

// peek returns the earliest event without removing it.
func (q *eventQueue) peek() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return q.h[0], true
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return top, true
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q.h[l].before(q.h[least]) {
			least = l
		}
		if r < n && q.h[r].before(q.h[least]) {
			least = r
		}
		if least == i {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}
