package tagid

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ancrfid/ancrfid/internal/rng"
)

func TestNewProducesValidIDs(t *testing.T) {
	prop := func(hi uint16, lo uint64) bool {
		return New(hi, lo).Valid()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueInvalid(t *testing.T) {
	var id ID
	if id.Valid() {
		t.Fatal("zero ID must not verify (CRC of zero payload is not zero)")
	}
}

func TestRandomValid(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if !Random(r).Valid() {
			t.Fatal("Random produced an invalid ID")
		}
	}
}

func TestPopulationDistinct(t *testing.T) {
	r := rng.New(2)
	ids := Population(r, 5000)
	if len(ids) != 5000 {
		t.Fatalf("population size %d, want 5000", len(ids))
	}
	seen := make(map[ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate ID %v", id)
		}
		seen[id] = true
		if !id.Valid() {
			t.Fatalf("invalid ID %v in population", id)
		}
	}
}

func TestBitAccessor(t *testing.T) {
	id := New(0x8001, 0) // first bit set, bit 15 set
	if id.Bit(0) != 1 {
		t.Error("Bit(0) = 0, want 1")
	}
	if id.Bit(1) != 0 {
		t.Error("Bit(1) = 1, want 0")
	}
	if id.Bit(15) != 1 {
		t.Error("Bit(15) = 0, want 1")
	}
	// Verify every bit against the byte representation.
	b := id.Bytes()
	for i := 0; i < Bits; i++ {
		want := b[i/8] >> (7 - i%8) & 1
		if id.Bit(i) != want {
			t.Fatalf("Bit(%d) = %d, want %d", i, id.Bit(i), want)
		}
	}
}

func TestBytesIsACopy(t *testing.T) {
	id := New(1, 2)
	b := id.Bytes()
	b[0] ^= 0xFF
	if id.Bytes()[0] == b[0] {
		t.Fatal("Bytes returned a view into the ID")
	}
}

func TestCorruptBitInvalidates(t *testing.T) {
	prop := func(hi uint16, lo uint64, pos uint8) bool {
		id := New(hi, lo)
		return !id.CorruptBit(int(pos) % Bits).Valid()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	s := New(0xABCD, 0x1122334455667788).String()
	if !strings.HasPrefix(s, "abcd-1122334455667788-") {
		t.Fatalf("unexpected String: %q", s)
	}
	if len(strings.Split(s, "-")) != 3 {
		t.Fatalf("String should have 3 groups: %q", s)
	}
}

func TestReportHashDeterministicAndBounded(t *testing.T) {
	prop := func(hi uint16, lo uint64, slot uint64) bool {
		id := New(hi, lo)
		h := id.ReportHash(slot)
		return h == id.ReportHash(slot) && h < 1<<HashBits
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReportHashVariesAcrossSlots(t *testing.T) {
	id := New(7, 7)
	seen := make(map[uint32]bool)
	for slot := uint64(0); slot < 1000; slot++ {
		seen[id.ReportHash(slot)] = true
	}
	// With a 16-bit range, 1000 slots should give nearly 1000 values.
	if len(seen) < 950 {
		t.Fatalf("hash shows too many collisions across slots: %d unique of 1000", len(seen))
	}
}

func TestReportHashUniform(t *testing.T) {
	// Mean of the hash over many (ID, slot) pairs should be ~2^15.
	r := rng.New(3)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(Random(r).ReportHash(uint64(i)))
	}
	mean := sum / n
	want := float64(1<<HashBits) / 2
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("hash mean %v, want ~%v", mean, want)
	}
}

func TestThreshold(t *testing.T) {
	if Threshold(0) != 0 {
		t.Error("Threshold(0) != 0")
	}
	if Threshold(-1) != 0 {
		t.Error("Threshold(-1) != 0")
	}
	if Threshold(1) != 1<<HashBits {
		t.Error("Threshold(1) != 2^l")
	}
	if Threshold(2) != 1<<HashBits {
		t.Error("Threshold(2) != 2^l")
	}
	if Threshold(0.5) != 1<<(HashBits-1) {
		t.Errorf("Threshold(0.5) = %d", Threshold(0.5))
	}
}

func TestReportsProbability(t *testing.T) {
	// The fraction of (tag, slot) pairs that report should track p.
	r := rng.New(4)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
		th := Threshold(p)
		count := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if Random(r).Reports(uint64(i), th) {
				count++
			}
		}
		got := float64(count) / n
		if math.Abs(got-p) > 4*math.Sqrt(p*(1-p)/n)+1.0/(1<<HashBits) {
			t.Errorf("Reports rate at p=%v: got %v", p, got)
		}
	}
}

func TestReportsAlwaysAtPOne(t *testing.T) {
	r := rng.New(5)
	th := Threshold(1)
	for i := 0; i < 1000; i++ {
		if !Random(r).Reports(uint64(i), th) {
			t.Fatal("a tag skipped a p=1 slot")
		}
	}
}
