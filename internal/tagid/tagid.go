// Package tagid models 96-bit RFID tag identifiers.
//
// Following the paper (Section VI: "We set the ID length to be 96 bits
// (including the 16 bits CRC code)"), an ID is an 80-bit payload followed by
// a CRC-16. The package also implements the report hash H(ID|i) that SCAT
// and FCAT tags evaluate to decide whether to transmit in slot i
// (Section IV-A).
package tagid

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"github.com/ancrfid/ancrfid/internal/crc"
	"github.com/ancrfid/ancrfid/internal/rng"
)

const (
	// Bits is the total ID length on air, CRC included.
	Bits = 96
	// PayloadBits is the number of identity bits (EPC-style payload).
	PayloadBits = Bits - crc.Size
	// bytesLen is the ID length in bytes.
	bytesLen = Bits / 8
)

// HashBits is l, the width of the report-probability fixed-point encoding:
// the reader advertises floor(p * 2^l) and a tag transmits in slot i when
// H(ID|i) <= floor(p * 2^l) (paper, Section IV-A).
const HashBits = 16

// ID is a 96-bit tag identifier: 80 payload bits followed by a CRC-16 over
// the payload. The zero value is not a valid ID (its CRC does not verify).
type ID [bytesLen]byte

// New builds an ID from an 80-bit payload (the top 16 bits of hi are
// ignored) and appends the CRC.
func New(hi uint16, lo uint64) ID {
	var id ID
	binary.BigEndian.PutUint16(id[0:2], hi)
	binary.BigEndian.PutUint64(id[2:10], lo)
	sum := crc.Checksum(id[:10])
	binary.BigEndian.PutUint16(id[10:12], sum)
	return id
}

// Random returns a uniformly random valid ID.
func Random(r *rng.Source) ID {
	return New(uint16(r.Uint64()), r.Uint64())
}

// Population returns n distinct uniformly random IDs.
func Population(r *rng.Source, n int) []ID {
	return PopulationAppend(nil, r, n)
}

// PopulationAppend draws n distinct uniformly random IDs into dst[:0],
// reusing its backing array when large enough. The draw sequence is
// identical to Population's, so campaigns that recycle a population buffer
// across repetitions produce bit-identical runs.
func PopulationAppend(dst []ID, r *rng.Source, n int) []ID {
	ids := dst[:0]
	if cap(ids) < n {
		ids = make([]ID, 0, n)
	}
	seen := make(map[ID]struct{}, n)
	for len(ids) < n {
		id := Random(r)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		ids = append(ids, id)
	}
	return ids
}

// Valid reports whether the embedded CRC verifies. The reader uses this to
// distinguish a clean singleton decode from a collision or a corrupted
// signal.
func (id ID) Valid() bool {
	return crc.Verify(id[:10], binary.BigEndian.Uint16(id[10:12]))
}

// Bit returns bit i of the ID, most-significant first (bit 0 is the first
// bit sent on air). Query-tree protocols split tag sets on these bits.
func (id ID) Bit(i int) byte {
	return id[i/8] >> (7 - i%8) & 1
}

// Bytes returns the 12-byte wire encoding.
func (id ID) Bytes() []byte {
	b := make([]byte, bytesLen)
	copy(b, id[:])
	return b
}

// CorruptBit returns a copy of the ID with bit i flipped; used to emulate
// channel errors. The result fails Valid with overwhelming probability.
func (id ID) CorruptBit(i int) ID {
	id[i/8] ^= 1 << (7 - i%8)
	return id
}

// String renders the ID as hex, e.g. "30f1-4e2a99c0b51d-77aa".
func (id ID) String() string {
	return fmt.Sprintf("%s-%s-%s",
		hex.EncodeToString(id[0:2]),
		hex.EncodeToString(id[2:10]),
		hex.EncodeToString(id[10:12]))
}

// FNV-1a parameters of the report hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashPrefix is the FNV-1a state after absorbing the 12 ID bytes of the
// report hash H(ID|slot). FNV-1a folds its input strictly left to right, so
// the state after the ID bytes is a pure function of the ID and can be
// computed once per tag; evaluating the hash for a slot then only folds the
// 8 slot bytes. Protocol structures that evaluate the hash for many slots
// (the per-slot transmitter scan, the collision-record member index) store
// the prefix alongside the ID and skip re-hashing the ID's 12 bytes — 60%
// of the hash input — on every evaluation.
type HashPrefix uint64

// HashPrefix returns the precomputable ID part of the report hash.
func (id ID) HashPrefix() HashPrefix {
	h := uint64(fnvOffset)
	for _, b := range id {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return HashPrefix(h)
}

// ReportHash completes H(ID|slot) from the precomputed ID prefix by folding
// the slot index. Equal to ID.ReportHash by FNV-1a's sequential structure
// (differentially fuzzed in the package tests).
func (p HashPrefix) ReportHash(slot uint64) uint32 {
	h := uint64(p)
	for i := 0; i < 8; i++ {
		h = (h ^ (slot >> (8 * i) & 0xff)) * fnvPrime
	}
	// Fold to HashBits so the threshold comparison matches the advertised
	// fixed-point probability.
	return uint32(h^h>>16^h>>32^h>>48) & (1<<HashBits - 1)
}

// Reports reports whether a tag with this hash prefix transmits in slot
// given the advertised threshold.
func (p HashPrefix) Reports(slot uint64, threshold uint32) bool {
	return p.ReportHash(slot) < threshold
}

// ReportHash computes H(ID|slot) in [0, 2^HashBits): the pseudo-random but
// deterministic value a tag compares against the advertised threshold to
// decide whether to report in the slot. Both the tag (to transmit) and the
// reader (to test membership of a learned ID in an old collision record)
// evaluate this function, so it must depend only on (ID, slot).
func (id ID) ReportHash(slot uint64) uint32 {
	// FNV-1a over the 12 ID bytes followed by the slot index.
	return id.HashPrefix().ReportHash(slot)
}

// Threshold converts a report probability into the fixed-point threshold the
// reader advertises: a tag transmits when ReportHash(slot) < Threshold(p).
// Threshold(1) is 2^HashBits, which every hash value is below.
func Threshold(p float64) uint32 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << HashBits
	}
	return uint32(p * (1 << HashBits))
}

// Reports reports whether the tag with this ID transmits in slot given the
// advertised threshold.
func (id ID) Reports(slot uint64, threshold uint32) bool {
	return id.ReportHash(slot) < threshold
}
