package tagid

import "math"

// LinkBudget models the per-tag downlink power a reader receives from a
// backscattering tag: each tag sits at a deterministic pseudo-random
// distance from the reader and its receive power follows a log-distance
// path-loss law. The draw is a pure hash of the tag's identity (its report
// hash prefix) and the budget seed — no RNG stream is consumed — so the
// channel, the record store and any replaying reader all agree on a tag's
// power without coordinating, and legacy runs that never consult the budget
// keep bit-identical RNG draw sequences.
//
// The zero value is usable: Distance, RxPowerDBm and friends normalise zero
// fields to the defaults below on every call (the methods are pure, so
// there is no state to pre-normalise).
type LinkBudget struct {
	// TxPowerDBm is the effective radiated power reaching a tag at the
	// reference distance, in dBm. Default 30 dBm (1 W, the EPC Gen2
	// regulatory ceiling in most regions).
	TxPowerDBm float64
	// PathLossExp is the path-loss exponent eta of the log-distance model.
	// Default 2 (free space); indoor RFID deployments measure 1.6-3.
	PathLossExp float64
	// RefDistance is d0, the reference distance of the path-loss model in
	// metres. Default 1 m.
	RefDistance float64
	// MinDistance and MaxDistance bound the annulus tags are placed in,
	// in metres. Tags are uniform over the annulus area (not the radius),
	// matching a reader in the middle of a flat tag field. Defaults 1-10 m.
	MinDistance float64
	MaxDistance float64
	// NoiseFloorDBm is the reader's noise floor in dBm. Default -90 dBm.
	NoiseFloorDBm float64
	// Seed decorrelates the placement draw between campaigns; two budgets
	// with different seeds place the same tag at different distances.
	Seed uint64
}

// Defaults for zero LinkBudget fields.
const (
	defaultTxPowerDBm    = 30.0
	defaultPathLossExp   = 2.0
	defaultRefDistance   = 1.0
	defaultMinDistance   = 1.0
	defaultMaxDistance   = 10.0
	defaultNoiseFloorDBm = -90.0
)

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used
// everywhere the simulation needs a decision that is deterministic in some
// identity but independent of the RNG draw sequence (fault schedules,
// pseudo-random slot choice, tag placement).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to a float64 in [0, 1) using the top 53 bits.
func unit(h uint64) float64 {
	return float64(h>>11) * 0x1p-53
}

// linkSalt separates the placement hash domain from FrameSlot's.
const linkSalt = 0x9d8f31c04be65a27

// Distance returns the tag's deterministic distance from the reader in
// metres: uniform over the annulus area between MinDistance and
// MaxDistance, drawn by hashing (prefix, Seed).
func (b LinkBudget) Distance(p HashPrefix) float64 {
	dmin, dmax := b.MinDistance, b.MaxDistance
	if dmin <= 0 {
		dmin = defaultMinDistance
	}
	if dmax < dmin {
		dmax = defaultMaxDistance
	}
	u := unit(splitmix64(uint64(p) ^ b.Seed ^ linkSalt))
	// Area-uniform: P(d <= x) proportional to x^2 - dmin^2.
	return math.Sqrt(dmin*dmin + u*(dmax*dmax-dmin*dmin))
}

// RxPowerDBm returns the receive power of the tag's backscatter at the
// reader in dBm under the log-distance path-loss model:
//
//	P_rx(d) = P_tx - 10 eta log10(d / d0)
func (b LinkBudget) RxPowerDBm(p HashPrefix) float64 {
	tx := b.TxPowerDBm
	if tx == 0 {
		tx = defaultTxPowerDBm
	}
	eta := b.PathLossExp
	if eta <= 0 {
		eta = defaultPathLossExp
	}
	d0 := b.RefDistance
	if d0 <= 0 {
		d0 = defaultRefDistance
	}
	return tx - 10*eta*math.Log10(b.Distance(p)/d0)
}

// RxPowerMW returns the tag's receive power in linear milliwatts.
func (b LinkBudget) RxPowerMW(p HashPrefix) float64 {
	return dbmToMW(b.RxPowerDBm(p))
}

// PeakRxPowerMW returns the receive power of a tag at MinDistance — the
// strongest any tag can be under this budget — in linear milliwatts.
func (b LinkBudget) PeakRxPowerMW() float64 {
	tx := b.TxPowerDBm
	if tx == 0 {
		tx = defaultTxPowerDBm
	}
	eta := b.PathLossExp
	if eta <= 0 {
		eta = defaultPathLossExp
	}
	d0 := b.RefDistance
	if d0 <= 0 {
		d0 = defaultRefDistance
	}
	dmin := b.MinDistance
	if dmin <= 0 {
		dmin = defaultMinDistance
	}
	return dbmToMW(tx - 10*eta*math.Log10(dmin/d0))
}

// Amplitude returns the tag's waveform amplitude relative to the strongest
// possible tag under this budget: sqrt(P / P_peak), in (0, 1]. The signal
// channel uses it to scale each tag's unit-gain reference waveform so that
// sample-domain power ratios reproduce the link-budget power ratios.
func (b LinkBudget) Amplitude(p HashPrefix) float64 {
	return math.Sqrt(b.RxPowerMW(p) / b.PeakRxPowerMW())
}

// NoiseMW returns the reader noise floor in linear milliwatts.
func (b LinkBudget) NoiseMW() float64 {
	n := b.NoiseFloorDBm
	if n == 0 {
		n = defaultNoiseFloorDBm
	}
	return dbmToMW(n)
}

// dbmToMW converts dBm to linear milliwatts.
func dbmToMW(dbm float64) float64 {
	return math.Pow(10, dbm/10)
}

// frameSalt separates FrameSlot's hash domain from the placement hash.
const frameSalt = 0x6a09e667f3bcc909

// FrameSlot returns the slot in [0, frameSize) a tag with this hash prefix
// transmits in during the given frame of a pseudo-random ALOHA session.
// The choice is a pure hash of (identity, frame) — per Ricciato &
// Castiglione, the tag's "random" draw is a deterministic PRNG the reader
// can replay, so a reader that knows an ID can reconstruct every slot that
// tag ever picked without having observed it.
func (p HashPrefix) FrameSlot(frame uint64, frameSize int) int {
	if frameSize <= 1 {
		return 0
	}
	h := splitmix64(uint64(p) ^ splitmix64(frame^frameSalt))
	// Fixed-point multiply avoids modulo bias without a divide.
	return int(((h >> 32) * uint64(frameSize)) >> 32)
}
