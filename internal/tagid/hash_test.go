package tagid

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
)

// legacyReportHash is the original single-pass H(ID|slot): one FNV-1a sweep
// over the 12 ID bytes followed by the 8 slot bytes. It is kept here as the
// reference the split prefix/suffix implementation is differentially tested
// against.
func legacyReportHash(id ID, slot uint64) uint32 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range id {
		h = (h ^ uint64(b)) * prime
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (slot >> (8 * i) & 0xff)) * prime
	}
	return uint32(h^h>>16^h>>32^h>>48) & (1<<HashBits - 1)
}

// FuzzReportHashSplit asserts that the precomputed-prefix hash equals the
// legacy full-pass hash for arbitrary (ID, slot) pairs. FNV-1a is strictly
// sequential, so the state after the ID bytes is a pure function of the ID;
// this fuzz target is the safety net under that argument.
func FuzzReportHashSplit(f *testing.F) {
	f.Add(uint16(0), uint64(0), uint64(0))
	f.Add(uint16(0xffff), uint64(math.MaxUint64), uint64(math.MaxUint64))
	f.Add(uint16(7), uint64(42), uint64(1<<23))
	f.Fuzz(func(t *testing.T, hi uint16, lo, slot uint64) {
		id := New(hi, lo)
		want := legacyReportHash(id, slot)
		if got := id.ReportHash(slot); got != want {
			t.Fatalf("ReportHash(%v, %d) = %d, legacy = %d", id, slot, got, want)
		}
		if got := id.HashPrefix().ReportHash(slot); got != want {
			t.Fatalf("HashPrefix().ReportHash(%v, %d) = %d, legacy = %d", id, slot, got, want)
		}
	})
}

func TestReportHashSplitRandomPairs(t *testing.T) {
	// Deterministic differential sweep (the always-on companion of the fuzz
	// target): random IDs, random and structured slot values.
	r := rng.New(99)
	for i := 0; i < 20000; i++ {
		id := Random(r)
		slot := r.Uint64()
		if i%4 == 0 {
			slot = uint64(i) // small sequential slots, the protocol's common case
		}
		want := legacyReportHash(id, slot)
		p := id.HashPrefix()
		if got := p.ReportHash(slot); got != want {
			t.Fatalf("split hash diverged at id=%v slot=%d: got %d want %d", id, slot, got, want)
		}
		th := Threshold(0.3)
		if p.Reports(slot, th) != (want < th) {
			t.Fatalf("Reports diverged at id=%v slot=%d", id, slot)
		}
	}
}

func TestThresholdEdgeCases(t *testing.T) {
	denormal := math.SmallestNonzeroFloat64 // 5e-324, denormal
	cases := []struct {
		p    float64
		want uint32
	}{
		{0, 0},
		{-0.5, 0},
		{math.Inf(-1), 0},
		{1, 1 << HashBits},
		{1.5, 1 << HashBits},
		{math.Inf(1), 1 << HashBits},
		{denormal, 0},                 // underflows the fixed-point grid
		{1e-10, 0},                    // below 2^-HashBits resolution
		{math.Nextafter(1, 0), 65535}, // largest p < 1
	}
	for _, tc := range cases {
		if got := Threshold(tc.p); got != tc.want {
			t.Errorf("Threshold(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	// NaN must not panic (comparisons with NaN are false, so it falls
	// through to the fixed-point conversion; the converted value is
	// platform-specific and never used by callers, which gate p upstream).
	_ = Threshold(math.NaN())
	// Every returned threshold is a valid comparison bound for ReportHash.
	id := New(1, 2)
	for _, tc := range cases {
		th := Threshold(tc.p)
		_ = id.Reports(0, th) // must not panic
		if th > 1<<HashBits {
			t.Errorf("Threshold(%v) = %d exceeds 2^HashBits", tc.p, th)
		}
	}
}

// BenchmarkReportHash measures the per-evaluation cost of the report hash:
// the legacy-equivalent full evaluation from the ID, and the per-slot
// suffix fold from a precomputed prefix (the form the per-slot transmitter
// scan uses).
func BenchmarkReportHash(b *testing.B) {
	r := rng.New(1)
	ids := Population(r, 1024)
	prefixes := make([]HashPrefix, len(ids))
	for i, id := range ids {
		prefixes[i] = id.HashPrefix()
	}
	b.Run("full", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink += ids[i%len(ids)].ReportHash(uint64(i))
		}
		_ = sink
	})
	b.Run("prefix", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink += prefixes[i%len(prefixes)].ReportHash(uint64(i))
		}
		_ = sink
	})
}
