package tagid

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
)

func TestLinkBudgetPathLoss(t *testing.T) {
	// A tag at the reference distance receives exactly TxPowerDBm; doubling
	// the distance under eta=2 costs 10*2*log10(2) ~ 6.02 dB.
	b := LinkBudget{TxPowerDBm: 30, PathLossExp: 2, RefDistance: 1, MinDistance: 2, MaxDistance: 2}
	ids := Population(rng.New(1), 4)
	for _, id := range ids {
		got := b.RxPowerDBm(id.HashPrefix())
		want := 30 - 20*math.Log10(2)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("RxPowerDBm at pinned d=2: got %v want %v", got, want)
		}
	}
}

func TestLinkBudgetAreaUniform(t *testing.T) {
	// Under area-uniform placement over [dmin, dmax], the median distance
	// satisfies d_med^2 = (dmin^2 + dmax^2)/2.
	var b LinkBudget
	ids := Population(rng.New(2), 4000)
	inInner := 0
	med := math.Sqrt((1*1 + 10*10) / 2)
	for _, id := range ids {
		if b.Distance(id.HashPrefix()) < med {
			inInner++
		}
	}
	frac := float64(inInner) / float64(len(ids))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("area-uniform median split = %.3f, want ~0.5", frac)
	}
}

func TestFrameSlotRange(t *testing.T) {
	ids := Population(rng.New(3), 200)
	for _, f := range []int{1, 2, 7, 64, 1000} {
		for frame := uint64(0); frame < 5; frame++ {
			for _, id := range ids {
				s := id.HashPrefix().FrameSlot(frame, f)
				if s < 0 || s >= f {
					t.Fatalf("FrameSlot(%d, %d) = %d out of range", frame, f, s)
				}
				if s != id.HashPrefix().FrameSlot(frame, f) {
					t.Fatal("FrameSlot not deterministic")
				}
			}
		}
	}
}

func TestFrameSlotUniform(t *testing.T) {
	// Chi-square-ish sanity: 6400 tags over 64 slots, every slot should be
	// within a generous band of the expected 100.
	ids := Population(rng.New(4), 6400)
	var counts [64]int
	for _, id := range ids {
		counts[id.HashPrefix().FrameSlot(11, 64)]++
	}
	for s, c := range counts {
		if c < 50 || c > 160 {
			t.Fatalf("slot %d count %d far from expected 100", s, c)
		}
	}
}

func TestFrameSlotVariesAcrossFrames(t *testing.T) {
	// A tag must re-draw its slot every frame: across 32 frames of size 16,
	// a stuck mapping would repeat one value.
	p := Population(rng.New(5), 1)[0].HashPrefix()
	seen := map[int]bool{}
	for frame := uint64(0); frame < 32; frame++ {
		seen[p.FrameSlot(frame, 16)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("slot choice across 32 frames hit only %d/16 slots", len(seen))
	}
}
