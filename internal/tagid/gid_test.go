package tagid

import (
	"testing"
	"testing/quick"

	"github.com/ancrfid/ancrfid/internal/rng"
)

func TestFromPartsRoundTrip(t *testing.T) {
	prop := func(manager uint32, class uint16, serial uint64) bool {
		m := manager & (1<<ManagerBits - 1)
		s := serial & (1<<SerialBits - 1)
		id := FromParts(manager, class, serial)
		return id.Valid() &&
			id.Manager() == m &&
			id.Class() == class &&
			id.Serial() == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFromPartsKnownLayout(t *testing.T) {
	id := FromParts(0x0ABCDEF, 0x1234, 0x567890ABC)
	if id.Manager() != 0x0ABCDEF {
		t.Errorf("manager %#x", id.Manager())
	}
	if id.Class() != 0x1234 {
		t.Errorf("class %#x", id.Class())
	}
	if id.Serial() != 0x567890ABC {
		t.Errorf("serial %#x", id.Serial())
	}
}

func TestFromPartsTruncates(t *testing.T) {
	id := FromParts(^uint32(0), 0xFFFF, ^uint64(0))
	if id.Manager() != 1<<ManagerBits-1 {
		t.Errorf("manager not truncated to %d bits: %#x", ManagerBits, id.Manager())
	}
	if id.Serial() != 1<<SerialBits-1 {
		t.Errorf("serial not truncated to %d bits: %#x", SerialBits, id.Serial())
	}
}

func TestFromPartsDistinctSerials(t *testing.T) {
	// Same vendor and class, different serials: distinct valid IDs.
	seen := make(map[ID]bool)
	for serial := uint64(0); serial < 1000; serial++ {
		id := FromParts(42, 7, serial)
		if seen[id] {
			t.Fatalf("duplicate ID at serial %d", serial)
		}
		seen[id] = true
	}
}

func TestFieldWidthsSumToPayload(t *testing.T) {
	if ManagerBits+ClassBits+SerialBits != PayloadBits {
		t.Fatalf("field widths %d+%d+%d != payload %d",
			ManagerBits, ClassBits, SerialBits, PayloadBits)
	}
}

func TestStructuredIDsHashUniformly(t *testing.T) {
	// Sequential serials (the realistic case) must still spread the report
	// hash: tags from one vendor should not collide systematically.
	r := rng.New(1)
	_ = r
	var sum float64
	const n = 20000
	for serial := uint64(0); serial < n; serial++ {
		sum += float64(FromParts(42, 7, serial).ReportHash(3))
	}
	mean := sum / n
	want := float64(uint64(1)<<HashBits) / 2
	if mean < want*0.98 || mean > want*1.02 {
		t.Fatalf("hash mean %v over sequential serials, want ~%v", mean, want)
	}
}
