package tagid

// Structured ID layout. The paper's motivating application is inventory
// auditing — "guard against administration error, vendor fraud and
// employee theft" (Section I) — which needs IDs that carry who made the
// item and what it is. Following the EPC General Identifier layout, the
// 80 payload bits (the 96-bit ID minus its CRC-16) are split as
//
//	manager (28 bits) | class (16 bits) | serial (36 bits)
//
// where manager identifies the vendor, class the product line and serial
// the individual item.
const (
	// ManagerBits is the width of the vendor/manager field.
	ManagerBits = 28
	// ClassBits is the width of the product-class field.
	ClassBits = 16
	// SerialBits is the width of the per-item serial field.
	SerialBits = 36
)

// FromParts builds an ID from its manager, class and serial fields
// (values are truncated to their field widths) and appends the CRC.
func FromParts(manager uint32, class uint16, serial uint64) ID {
	m := uint64(manager) & (1<<ManagerBits - 1)
	s := serial & (1<<SerialBits - 1)
	// Payload bit layout, most significant first:
	// [manager 28][class 16][serial 36] = 80 bits = hi(16) + lo(64).
	hi := uint16(m >> 12)
	lo := (m&0xFFF)<<52 | uint64(class)<<36 | s
	return New(hi, lo)
}

// payload returns the 80 payload bits as (hi 16, lo 64).
func (id ID) payload() (uint16, uint64) {
	hi := uint16(id[0])<<8 | uint16(id[1])
	var lo uint64
	for _, b := range id[2:10] {
		lo = lo<<8 | uint64(b)
	}
	return hi, lo
}

// Manager returns the 28-bit vendor/manager field.
func (id ID) Manager() uint32 {
	hi, lo := id.payload()
	return uint32(hi)<<12 | uint32(lo>>52)
}

// Class returns the 16-bit product-class field.
func (id ID) Class() uint16 {
	_, lo := id.payload()
	return uint16(lo >> 36)
}

// Serial returns the 36-bit per-item serial field.
func (id ID) Serial() uint64 {
	_, lo := id.payload()
	return lo & (1<<SerialBits - 1)
}
