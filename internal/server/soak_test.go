package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/obs"
)

// TestSoakKillRecovery is the acceptance soak: ≥1000 concurrent sessions
// driven through the HTTP API, a hard kill mid-flight (the in-process
// stand-in for kill -9 — shard workers stop dead, nothing checkpoints on
// the way down), a restart over the same directory, and then the audit:
// every session recovers from its durable checkpoint, the accounting
// identity (admitted == identified + departed-unread + still-active)
// holds exactly, no identification is duplicated, and the drained server
// leaks no goroutines.
func TestSoakKillRecovery(t *testing.T) {
	const (
		sessions = 1000
		tags     = 12
		drivers  = 16
	)
	dir := t.TempDir()
	cfg := Config{
		Dir:             dir,
		NoSync:          true,
		Shards:          8,
		QueueDepth:      4096,
		CheckpointEvery: 32,
	}
	baseline := runtime.NumGoroutine()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	sessionID := func(i int) string { return fmt.Sprintf("soak-%04d", i) }

	// Phase 1: create the whole fleet concurrently.
	var wg sync.WaitGroup
	createErrs := make(chan error, sessions)
	sem := make(chan struct{}, drivers)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			code, body := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
				"id":   sessionID(i),
				"spec": Spec{Protocol: "DFSA", Seed: uint64(i) + 1, Tags: tags},
			})
			if code != http.StatusCreated {
				createErrs <- fmt.Errorf("create %d: HTTP %d: %s", i, code, body)
			}
		}(i)
	}
	wg.Wait()
	close(createErrs)
	for err := range createErrs {
		t.Fatal(err)
	}

	// Phase 2: drivers hammer random sessions with step batches (and some
	// churn) until the server is killed under them. Backpressure (429) and
	// the kill itself (503, connection errors) are expected weather.
	stop := make(chan struct{})
	var stepped atomic.Int64
	for w := 0; w < drivers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := w; ; i = (i + drivers) % sessions {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"steps":%d}`, 8+w)
				req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+sessionID(i)+"/step",
					strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					return // server killed mid-request
				}
				var sr stepResponse
				json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				stepped.Add(int64(sr.Executed))
			}
		}(w)
	}

	// Let real load build, then pull the plug mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for stepped.Load() < sessions*4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if stepped.Load() == 0 {
		t.Fatal("no steps executed before the kill")
	}
	s.Kill()
	close(stop)
	wg.Wait()
	ts.Close()

	// Phase 3: restart over the same directory and audit the recovery.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	if got := s2.reg.Value(obs.MetricServerRecoveryRecovered); got != sessions {
		t.Fatalf("recovered %d sessions, want %d", got, sessions)
	}
	if got := s2.reg.Value(obs.MetricServerRecoveryQuarantined); got != 0 {
		t.Fatalf("%d sessions quarantined on a clean store", got)
	}
	auditErrs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			id := sessionID(i)
			code, body := doJSON(t, "GET", ts2.URL+"/v1/sessions/"+id, nil)
			if code != http.StatusOK {
				auditErrs <- fmt.Errorf("%s: HTTP %d: %s", id, code, body)
				return
			}
			var st status
			if err := json.Unmarshal(body, &st); err != nil {
				auditErrs <- fmt.Errorf("%s: %v", id, err)
				return
			}
			if st.Admitted != st.Identified+st.Departed+st.Active {
				auditErrs <- fmt.Errorf("%s: accounting broken: %d != %d+%d+%d",
					id, st.Admitted, st.Identified, st.Departed, st.Active)
			}
			if st.DupIdents != 0 || st.Phantoms != 0 {
				auditErrs <- fmt.Errorf("%s: %d dup idents, %d phantoms", id, st.DupIdents, st.Phantoms)
			}
			// The ident list itself must be duplicate-free.
			code, body = doJSON(t, "GET", ts2.URL+"/v1/sessions/"+id+"/idents", nil)
			if code != http.StatusOK {
				auditErrs <- fmt.Errorf("%s idents: HTTP %d", id, code)
				return
			}
			var il struct {
				Idents []string `json:"idents"`
			}
			if err := json.Unmarshal(body, &il); err != nil {
				auditErrs <- fmt.Errorf("%s idents: %v", id, err)
				return
			}
			seen := make(map[string]bool, len(il.Idents))
			for _, h := range il.Idents {
				if seen[h] {
					auditErrs <- fmt.Errorf("%s: duplicate ident %s", id, h)
				}
				seen[h] = true
			}
			if len(il.Idents) != st.Identified {
				auditErrs <- fmt.Errorf("%s: %d idents listed, status says %d", id, len(il.Idents), st.Identified)
			}
		}(i)
	}
	wg.Wait()
	close(auditErrs)
	failures := 0
	for err := range auditErrs {
		t.Error(err)
		if failures++; failures > 20 {
			t.Fatal("too many audit failures, stopping")
		}
	}
	ts2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s2.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Goroutine-leak check: after both servers stopped, the count settles
	// back near the baseline.
	settle := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+8 && time.Now().Before(settle) {
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+8 {
		t.Fatalf("goroutine leak after drain: %d live, baseline %d", n, baseline)
	}
}
