// Sharded, supervised session execution. Sessions are partitioned over a
// fixed set of shards by ID hash; each shard is one worker goroutine that
// owns its sessions outright — no per-session locks, no cross-shard
// coordination. Requests reach a shard through a bounded queue: a full
// queue is backpressure (HTTP 429 + Retry-After), not unbounded memory
// growth. The worker survives anything a request does: a panic inside a
// protocol step poisons that one session (500, quarantined in place, its
// last durable checkpoint intact for the next restart) and the worker
// keeps serving every other session.
package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime/debug"
	"time"

	"github.com/ancrfid/ancrfid/internal/obs"
)

// Sentinel errors of the serving ladder; the HTTP layer maps each to its
// status code.
var (
	// ErrBusy reports a full shard queue — back off and retry.
	ErrBusy = errors.New("server: shard queue full")
	// ErrDraining reports a server past the start of its graceful drain.
	ErrDraining = errors.New("server: draining")
	// ErrNotFound reports an unknown session.
	ErrNotFound = errors.New("server: unknown session")
	// ErrExists reports a create colliding with a live session.
	ErrExists = errors.New("server: session already exists")
	// ErrPoisoned reports a session quarantined after a panic; its state
	// on disk is the last durable checkpoint, recovered on next restart.
	ErrPoisoned = errors.New("server: session poisoned")
)

type shardResult struct {
	v   any
	err error
}

// shardCall is one unit of work for a shard worker. session names the
// session the call touches, so a panic can be pinned on it.
type shardCall struct {
	session string
	fn      func() (any, error)
	done    chan shardResult
}

// entry is a shard's view of one session. h == nil with poisoned set is a
// quarantined session; absence from the map entirely means passivated (on
// disk only) or never created.
type entry struct {
	h        *hosted
	lastUsed time.Time
	poisoned bool
	reason   string
}

type shard struct {
	srv      *Server
	index    int
	queue    chan *shardCall
	quit     chan struct{} // closed by Drain/Kill
	stopped  chan struct{} // closed when the worker exited
	sessions map[string]*entry
	// tracer folds this shard's protocol events into the shared registry
	// and health monitor. It is shard-local because MetricsTracer keeps a
	// per-run scratch map; registry counters themselves are atomic and
	// commute across shards.
	tracer obs.Tracer
}

func newShard(srv *Server, index int) *shard {
	return &shard{
		srv:      srv,
		index:    index,
		queue:    make(chan *shardCall, srv.cfg.QueueDepth),
		quit:     make(chan struct{}),
		stopped:  make(chan struct{}),
		sessions: make(map[string]*entry),
		tracer:   obs.Multi(obs.NewMetricsTracer(srv.reg), srv.health),
	}
}

// shardFor maps a session ID to its owning shard.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// do submits fn to the shard and waits for its result. A full queue fails
// fast with ErrBusy; a shard that stopped while the call waited fails
// with ErrDraining.
func (sh *shard) do(session string, fn func() (any, error)) (any, error) {
	c := &shardCall{session: session, fn: fn, done: make(chan shardResult, 1)}
	select {
	case sh.queue <- c:
	default:
		return nil, ErrBusy
	}
	select {
	case r := <-c.done:
		return r.v, r.err
	case <-sh.stopped:
		// The worker exited; its shutdown pass may still have answered us.
		select {
		case r := <-c.done:
			return r.v, r.err
		default:
			return nil, ErrDraining
		}
	}
}

// run is the shard worker loop.
func (sh *shard) run() {
	defer close(sh.stopped)
	var tick <-chan time.Time
	if sh.srv.cfg.IdleAfter > 0 {
		t := time.NewTicker(sh.srv.cfg.EvictInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case c := <-sh.queue:
			sh.serve(c)
		case <-tick:
			sh.evictIdle(time.Now())
		case <-sh.quit:
			sh.shutdown()
			return
		}
	}
}

// serve runs one call under the panic supervisor.
func (sh *shard) serve(c *shardCall) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(c.session, r)
			c.done <- shardResult{err: fmt.Errorf("%w: %v", ErrPoisoned, r)}
		}
	}()
	v, err := c.fn()
	c.done <- shardResult{v: v, err: err}
}

// poison quarantines a session after a panic: the in-memory state is
// dropped (it is unknowable mid-panic), the entry stays as a tombstone so
// the API reports 500 rather than 404, and the durable checkpoint is left
// untouched — the next restart recovers the last consistent state.
func (sh *shard) poison(id string, cause any) {
	reason := fmt.Sprintf("%v", cause)
	sh.srv.logf("server: shard %d: session %q poisoned: %s\n%s", sh.index, id, reason, debug.Stack())
	sh.srv.reg.Counter(obs.MetricServerSessionsPoisoned).Inc()
	sh.srv.health.RunEnd(obs.RunEndEvent{Protocol: "server", Err: "poisoned: " + reason})
	e, ok := sh.sessions[id]
	if !ok {
		e = &entry{}
		sh.sessions[id] = e
	}
	if e.h != nil {
		sh.srv.live.Add(-1)
	}
	e.h = nil
	e.poisoned = true
	e.reason = reason
}

// shutdown answers everything still queued with ErrDraining, then — on a
// graceful drain, not a kill — checkpoints every live dirty session so
// nothing accepted is lost.
func (sh *shard) shutdown() {
	for {
		select {
		case c := <-sh.queue:
			c.done <- shardResult{err: ErrDraining}
		default:
			if !sh.srv.killed.Load() {
				for _, e := range sh.sessions {
					if e.h != nil {
						sh.checkpoint(e.h)
					}
				}
			}
			return
		}
	}
}

// checkpoint durably persists h if it has unpersisted state. Write
// failures degrade gracefully: the session stays live and dirty (its
// state is not lost, only not yet durable), the error is counted and
// returned for the caller to surface.
func (sh *shard) checkpoint(h *hosted) error {
	if !h.dirty {
		return nil
	}
	rec := h.record()
	n, err := sh.srv.store.Write(rec)
	if err != nil {
		sh.srv.reg.Counter(obs.MetricServerCheckpointErrors).Inc()
		sh.srv.logf("server: checkpoint %q seq %d: %v", h.id, rec.Seq, err)
		return err
	}
	h.ckptSeq = rec.Seq
	h.dirty = false
	h.stepsSinceCkpt = 0
	sh.srv.reg.Counter(obs.MetricServerCheckpointWrites).Inc()
	sh.srv.reg.Counter(obs.MetricServerCheckpointBytes).Add(int64(n))
	return nil
}

// evictIdle passivates sessions untouched for IdleAfter: checkpoint, then
// drop from memory. The session is not gone — the next request for it
// reactivates it from disk by replay. A session whose checkpoint cannot
// be written is kept in memory: bounded staleness never trumps losing
// accepted state.
func (sh *shard) evictIdle(now time.Time) {
	for id, e := range sh.sessions {
		if e.h == nil || now.Sub(e.lastUsed) < sh.srv.cfg.IdleAfter {
			continue
		}
		if sh.checkpoint(e.h) != nil {
			continue
		}
		sh.srv.sink.ServerEvict(obs.ServerEvictEvent{Session: id, Idle: now.Sub(e.lastUsed)})
		sh.srv.live.Add(-1)
		delete(sh.sessions, id)
	}
}

// lookup returns the live entry for id, reactivating a passivated session
// from its durable checkpoint on demand.
func (sh *shard) lookup(id string) (*entry, error) {
	if e, ok := sh.sessions[id]; ok {
		if e.poisoned {
			return nil, fmt.Errorf("%w: %s", ErrPoisoned, e.reason)
		}
		return e, nil
	}
	rec, err := sh.srv.store.Load(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	h, err := replayHosted(rec, sh.tracer)
	if err != nil {
		return nil, err
	}
	e := &entry{h: h, lastUsed: time.Now()}
	sh.sessions[id] = e
	sh.srv.live.Add(1)
	sh.srv.reg.Counter(obs.MetricServerSessionsReactivated).Inc()
	return e, nil
}
