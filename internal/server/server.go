// Package server hosts concurrent inventory sessions behind an HTTP API
// with the robustness properties ROADMAP.md item 2 demands: durable
// checkpoints with crash recovery, bounded queues with real backpressure,
// per-client rate limits, supervised workers that quarantine a panicking
// session instead of dying, idle passivation, and a graceful drain that
// checkpoints everything before the process exits.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ancrfid/ancrfid/internal/fault"
	"github.com/ancrfid/ancrfid/internal/obs"
)

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	// Dir is the durable checkpoint directory (required).
	Dir string
	// Shards is the worker-pool width; sessions hash onto shards and each
	// shard is one goroutine. Default 8.
	Shards int
	// QueueDepth bounds each shard's request queue; a full queue is HTTP
	// 429. Default 128.
	QueueDepth int
	// CheckpointEvery is the step-driven checkpoint cadence: a session is
	// persisted after this many steps since its last checkpoint. Ops
	// (admit/revoke) always checkpoint eagerly. Default 4096; negative
	// disables step-driven checkpoints.
	CheckpointEvery int
	// IdleAfter passivates sessions untouched this long (checkpoint, then
	// release memory; the next request reactivates by replay). 0 disables.
	IdleAfter time.Duration
	// EvictInterval is the idle-scan period. Default IdleAfter/4, min 1s.
	EvictInterval time.Duration
	// StepDeadline bounds the wall time one step request may hold its
	// shard. Default 2s; negative disables.
	StepDeadline time.Duration
	// MaxStepsPerRequest caps the step batch a single request may ask
	// for. Default 65536.
	MaxStepsPerRequest int
	// RateLimit is the per-client request rate (tokens/second, keyed by
	// X-Client-ID else remote host). 0 disables. RateBurst defaults to
	// 2×RateLimit, min 1.
	RateLimit float64
	RateBurst int
	// MaxSessions caps concurrently live (in-memory) sessions; at the cap
	// creates are rejected with 429. 0 is unlimited.
	MaxSessions int
	// DiskFaults injects deterministic checkpoint-write faults (tests and
	// chaos drills only), derived from FaultSeed.
	DiskFaults fault.DiskConfig
	FaultSeed  uint64
	// NoSync skips fsync on checkpoint writes — benchmarks only.
	NoSync bool
	// Logf receives operational log lines; nil discards them.
	Logf func(string, ...any)
	// newSession overrides hosted-session construction — tests use it to
	// inject panicking sessions into the supervision path.
	newSession func(id string, spec Spec, tracer obs.Tracer) (*hosted, error)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4096
	}
	if c.EvictInterval <= 0 {
		c.EvictInterval = c.IdleAfter / 4
		if c.EvictInterval < time.Second {
			c.EvictInterval = time.Second
		}
	}
	if c.StepDeadline == 0 {
		c.StepDeadline = 2 * time.Second
	}
	if c.MaxStepsPerRequest <= 0 {
		c.MaxStepsPerRequest = 65536
	}
	if c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RateLimit)
	}
	return c
}

// Server is the inventory session host. Create one with New, mount
// Handler on an http.Server, and stop with Drain (graceful) or Kill
// (simulated crash — tests only).
type Server struct {
	cfg     Config
	store   *Store
	reg     *obs.Registry
	health  *obs.HealthMonitor
	sink    obs.ServerSink
	shards  []*shard
	limiter *rateLimiter

	live     atomic.Int64 // sessions resident in memory
	draining atomic.Bool
	killed   atomic.Bool
	stopOnce sync.Once
	stopped  chan struct{}

	// newSession builds a hosted session; tests override it to inject
	// panicking sessions into the supervision path.
	newSession func(id string, spec Spec, tracer obs.Tracer) (*hosted, error)
}

// New opens the checkpoint store, runs the recovery scan — every valid
// checkpoint is replayed back to a live session, every damaged or
// divergent one is quarantined — and starts the shard workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	var disk *fault.Disk
	if cfg.DiskFaults.Enabled() {
		disk = fault.NewDisk(cfg.DiskFaults, cfg.FaultSeed)
	}
	store, err := OpenStore(cfg.Dir, disk, cfg.NoSync)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:        cfg,
		store:      store,
		reg:        reg,
		health:     obs.NewHealthMonitor(obs.HealthConfig{}),
		sink:       obs.NewServerMetrics(reg),
		limiter:    newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		stopped:    make(chan struct{}),
		newSession: cfg.newSession,
	}
	if s.newSession == nil {
		s.newSession = newHosted
	}
	// Touch every server-plane counter so /metrics serves the full zeroed
	// families from the first scrape.
	for _, name := range []string{
		obs.MetricServerRejectBackpressure, obs.MetricServerRejectRatelimit,
		obs.MetricServerRejectDraining, obs.MetricServerSessionsCreated,
		obs.MetricServerSessionsDeleted, obs.MetricServerSessionsPoisoned,
		obs.MetricServerSessionsReactivated, obs.MetricServerSteps,
		obs.MetricServerCheckpointWrites, obs.MetricServerCheckpointErrors,
		obs.MetricServerCheckpointBytes, obs.MetricServerDupIdents,
		obs.MetricServerPhantoms,
	} {
		reg.Counter(name)
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(s, i)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	for _, sh := range s.shards {
		go sh.run()
	}
	return s, nil
}

// recover replays every surviving checkpoint into its shard. Shards
// replay in parallel (each on its own goroutine with its own tracer);
// a record that passes the CRC but fails replay is quarantined like a
// corrupt file — the server starts with what it can prove, not what it
// hopes.
func (s *Server) recover() error {
	scan, err := s.store.Recover()
	if err != nil {
		return err
	}
	for _, q := range scan.Quarantined {
		s.logf("server: recovery: quarantined %s: %v", q.Path, q.Err)
		s.sink.ServerRecovery(obs.ServerRecoveryEvent{Session: q.Path, Quarantined: true, Err: q.Err.Error()})
	}
	perShard := make([][]*Record, len(s.shards))
	for _, rec := range scan.Records {
		i := s.shardFor(rec.ID).index
		perShard[i] = append(perShard[i], rec)
	}
	var wg sync.WaitGroup
	for i, recs := range perShard {
		if len(recs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, recs []*Record) {
			defer wg.Done()
			for _, rec := range recs {
				h, err := replayHosted(rec, sh.tracer)
				if err != nil {
					qpath := s.store.Quarantine(rec.ID)
					s.logf("server: recovery: session %q replay failed, quarantined to %s: %v", rec.ID, qpath, err)
					s.sink.ServerRecovery(obs.ServerRecoveryEvent{Session: rec.ID, Quarantined: true, Err: err.Error()})
					continue
				}
				sh.sessions[rec.ID] = &entry{h: h, lastUsed: time.Now()}
				s.live.Add(1)
				s.sink.ServerRecovery(obs.ServerRecoveryEvent{Session: rec.ID, Steps: rec.Steps})
			}
		}(s.shards[i], recs)
	}
	wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Registry exposes the server's metric registry (tests and embedding).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Live reports the number of sessions resident in memory.
func (s *Server) Live() int64 { return s.live.Load() }

// Drain gracefully stops the server: new work is rejected with 503,
// queued requests are answered, and every live session is checkpointed
// before the workers exit. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.stop()
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill hard-stops the workers WITHOUT checkpointing — the in-process
// stand-in for kill -9, used by the soak test to exercise recovery. State
// since the last checkpoint is deliberately lost.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.draining.Store(true)
	s.stop()
	<-s.stopped
}

func (s *Server) stop() {
	s.stopOnce.Do(func() {
		go func() {
			for _, sh := range s.shards {
				close(sh.quit)
			}
			for _, sh := range s.shards {
				<-sh.stopped
			}
			close(s.stopped)
		}()
	})
}

// ---- HTTP layer ----

// Handler returns the server's HTTP API:
//
//	POST   /v1/sessions              create (body: {"id": ..., "spec": {...}})
//	GET    /v1/sessions              list session statuses
//	GET    /v1/sessions/{id}         one session's status
//	DELETE /v1/sessions/{id}         delete session and its checkpoint
//	POST   /v1/sessions/{id}/step    run steps (body: {"steps": n})
//	POST   /v1/sessions/{id}/admit   admit tags (body: {"ids": [hex...]})
//	POST   /v1/sessions/{id}/revoke  revoke tags (body: {"ids": [hex...]})
//	POST   /v1/sessions/{id}/snapshot  force a durable checkpoint
//	GET    /v1/sessions/{id}/idents  identified tag IDs, in order
//	GET    /metrics                  Prometheus exposition
//	GET    /healthz                  health score + drain state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.guard("create", s.handleCreate))
	mux.HandleFunc("GET /v1/sessions", s.guard("list", s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.guard("status", s.handleStatus))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.guard("delete", s.handleDelete))
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.guard("step", s.handleStep))
	mux.HandleFunc("POST /v1/sessions/{id}/admit", s.guard("admit", s.handleAdmit))
	mux.HandleFunc("POST /v1/sessions/{id}/revoke", s.guard("revoke", s.handleRevoke))
	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", s.guard("snapshot", s.handleSnapshot))
	mux.HandleFunc("GET /v1/sessions/{id}/idents", s.guard("idents", s.handleIdents))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// statusWriter captures the served status for request accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// guard wraps an API handler with the admission ladder — drain check,
// rate limit — and request accounting.
func (s *Server) guard(op string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			s.sink.ServerRequest(obs.ServerRequestEvent{Op: op, Session: r.PathValue("id"), Status: sw.code})
		}()
		if s.draining.Load() {
			s.reg.Counter(obs.MetricServerRejectDraining).Inc()
			s.fail(sw, r, op, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		key := clientKey(r.Header.Get("X-Client-ID"), r.RemoteAddr)
		if ok, wait := s.limiter.allow(key, time.Now()); !ok {
			s.reg.Counter(obs.MetricServerRejectRatelimit).Inc()
			sw.Header().Set("Retry-After", strconv.Itoa(int(wait/time.Second)+1))
			s.fail(sw, r, op, http.StatusTooManyRequests, errors.New("server: rate limit exceeded"))
			return
		}
		h(sw, r)
	}
}

// fail serves a JSON error body.
func (s *Server) fail(w http.ResponseWriter, _ *http.Request, _ string, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// failMapped serves err with the status its sentinel demands.
func (s *Server) failMapped(w http.ResponseWriter, r *http.Request, op string, err error) {
	switch {
	case errors.Is(err, ErrBusy):
		s.reg.Counter(obs.MetricServerRejectBackpressure).Inc()
		w.Header().Set("Retry-After", "1")
		s.fail(w, r, op, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		s.reg.Counter(obs.MetricServerRejectDraining).Inc()
		s.fail(w, r, op, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrNotFound):
		s.fail(w, r, op, http.StatusNotFound, err)
	case errors.Is(err, ErrExists):
		s.fail(w, r, op, http.StatusConflict, err)
	case errors.Is(err, ErrPoisoned), errors.Is(err, ErrReplayDiverged):
		s.fail(w, r, op, http.StatusInternalServerError, err)
	default:
		s.fail(w, r, op, http.StatusBadRequest, err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

type createRequest struct {
	// ID names the session; empty lets the server assign one.
	ID   string `json:"id,omitempty"`
	Spec Spec   `json:"spec"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeBody(r, &req); err != nil {
		s.failMapped(w, r, "create", err)
		return
	}
	if req.ID == "" {
		var b [8]byte
		rand.Read(b[:])
		req.ID = "s-" + hex.EncodeToString(b[:])
	}
	if !validSessionID(req.ID) {
		s.failMapped(w, r, "create", fmt.Errorf("server: invalid session id %q", req.ID))
		return
	}
	if s.cfg.MaxSessions > 0 && s.live.Load() >= int64(s.cfg.MaxSessions) {
		s.failMapped(w, r, "create", fmt.Errorf("%w: %d sessions live", ErrBusy, s.live.Load()))
		return
	}
	sh := s.shardFor(req.ID)
	v, err := sh.do(req.ID, func() (any, error) {
		if _, ok := sh.sessions[req.ID]; ok {
			return nil, ErrExists
		}
		if s.store.Exists(req.ID) {
			return nil, ErrExists
		}
		h, err := s.newSession(req.ID, req.Spec, sh.tracer)
		if err != nil {
			return nil, err
		}
		h.dirty = true
		if err := sh.checkpoint(h); err != nil {
			// Not durable — refuse the create rather than hand out a
			// session recovery would not know about.
			return nil, fmt.Errorf("server: create checkpoint: %w", err)
		}
		sh.sessions[req.ID] = &entry{h: h, lastUsed: time.Now()}
		s.live.Add(1)
		s.reg.Counter(obs.MetricServerSessionsCreated).Inc()
		return h.Status(), nil
	})
	if err != nil {
		s.failMapped(w, r, "create", err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var all []status
	for _, sh := range s.shards {
		v, err := sh.do("", func() (any, error) {
			out := make([]status, 0, len(sh.sessions))
			for id, e := range sh.sessions {
				if e.h == nil {
					out = append(out, status{ID: id, Poisoned: e.poisoned})
					continue
				}
				out = append(out, e.h.Status())
			}
			return out, nil
		})
		if err != nil {
			s.failMapped(w, r, "list", err)
			return
		}
		all = append(all, v.([]status)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, map[string]any{"sessions": all, "live": len(all)})
}

// withSession runs fn on the session's shard after resolving it (with
// reactivation from disk if passivated).
func (s *Server) withSession(id string, fn func(*hosted, *shard) (any, error)) (any, error) {
	sh := s.shardFor(id)
	return sh.do(id, func() (any, error) {
		e, err := sh.lookup(id)
		if err != nil {
			return nil, err
		}
		e.lastUsed = time.Now()
		return fn(e.h, sh)
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := s.withSession(id, func(h *hosted, _ *shard) (any, error) {
		return h.Status(), nil
	})
	if err != nil {
		s.failMapped(w, r, "status", err)
		return
	}
	writeJSON(w, v)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sh := s.shardFor(id)
	_, err := sh.do(id, func() (any, error) {
		e, ok := sh.sessions[id]
		if !ok && !s.store.Exists(id) {
			return nil, ErrNotFound
		}
		if ok {
			if e.h != nil {
				s.live.Add(-1)
			}
			delete(sh.sessions, id)
		}
		if err := s.store.Delete(id); err != nil {
			return nil, err
		}
		s.reg.Counter(obs.MetricServerSessionsDeleted).Inc()
		return nil, nil
	})
	if err != nil {
		s.failMapped(w, r, "delete", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type stepRequest struct {
	Steps int `json:"steps"`
}

type stepResponse struct {
	Executed int    `json:"executed"`
	Done     bool   `json:"done"`
	Failed   string `json:"failed,omitempty"`
	Steps    uint64 `json:"steps"`
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req stepRequest
	if err := decodeBody(r, &req); err != nil {
		s.failMapped(w, r, "step", err)
		return
	}
	if req.Steps <= 0 {
		req.Steps = 1
	}
	if req.Steps > s.cfg.MaxStepsPerRequest {
		req.Steps = s.cfg.MaxStepsPerRequest
	}
	v, err := s.withSession(r.PathValue("id"), func(h *hosted, sh *shard) (any, error) {
		var deadline time.Time
		if s.cfg.StepDeadline > 0 {
			deadline = time.Now().Add(s.cfg.StepDeadline)
		}
		executed, done, stepErr := h.step(req.Steps, deadline)
		s.reg.Counter(obs.MetricServerSteps).Add(int64(executed))
		s.reg.Histogram(obs.HistServerStepBatch).Observe(int64(executed))
		s.auditInvariants(h)
		if s.cfg.CheckpointEvery > 0 && h.stepsSinceCkpt >= uint64(s.cfg.CheckpointEvery) {
			// Cadence checkpoint; failure degrades durability, not service.
			sh.checkpoint(h)
		}
		resp := stepResponse{Executed: executed, Done: done, Steps: h.steps}
		if stepErr != nil {
			resp.Failed = stepErr.Error()
		}
		return resp, nil
	})
	if err != nil {
		s.failMapped(w, r, "step", err)
		return
	}
	writeJSON(w, v)
}

// auditInvariants folds a session's invariant violations into the global
// counters. Counters are monotone, session fields are totals, so fold the
// delta by re-deriving from the registry is impossible — instead the
// session tracks what it already reported.
func (s *Server) auditInvariants(h *hosted) {
	if d := h.dupIdents - h.dupReported; d > 0 {
		s.reg.Counter(obs.MetricServerDupIdents).Add(int64(d))
		h.dupReported = h.dupIdents
	}
	if d := h.phantoms - h.phantomReported; d > 0 {
		s.reg.Counter(obs.MetricServerPhantoms).Add(int64(d))
		h.phantomReported = h.phantoms
	}
}

type opRequest struct {
	IDs []string `json:"ids"`
}

type opResponse struct {
	Applied int    `json:"applied"`
	Steps   uint64 `json:"steps"`
}

// handleMutate implements admit and revoke: apply the op, then
// checkpoint eagerly — the op is durable before the response commits to
// it, so a crash cannot forget an acknowledged admission.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request, op string) {
	var req opRequest
	if err := decodeBody(r, &req); err != nil {
		s.failMapped(w, r, op, err)
		return
	}
	if len(req.IDs) == 0 {
		s.failMapped(w, r, op, errors.New("server: empty ids"))
		return
	}
	v, err := s.withSession(r.PathValue("id"), func(h *hosted, sh *shard) (any, error) {
		j := Op{}
		if op == "admit" {
			j.Admit = req.IDs
		} else {
			j.Revoke = req.IDs
		}
		admitted, revoked, err := h.apply(j)
		if err != nil {
			return nil, err
		}
		if err := sh.checkpoint(h); err != nil {
			return nil, fmt.Errorf("server: %s not durable: %w", op, err)
		}
		return opResponse{Applied: admitted + revoked, Steps: h.steps}, nil
	})
	if err != nil {
		s.failMapped(w, r, op, err)
		return
	}
	writeJSON(w, v)
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, "admit")
}

func (s *Server) handleRevoke(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, "revoke")
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	v, err := s.withSession(r.PathValue("id"), func(h *hosted, sh *shard) (any, error) {
		if err := sh.checkpoint(h); err != nil {
			return nil, err
		}
		return map[string]any{"seq": h.ckptSeq, "steps": h.steps}, nil
	})
	if err != nil {
		s.failMapped(w, r, "snapshot", err)
		return
	}
	writeJSON(w, v)
}

func (s *Server) handleIdents(w http.ResponseWriter, r *http.Request) {
	v, err := s.withSession(r.PathValue("id"), func(h *hosted, _ *shard) (any, error) {
		out := make([]string, len(h.identified))
		for i, id := range h.identified {
			out[i] = formatID(id)
		}
		return map[string]any{"idents": out}, nil
	})
	if err != nil {
		s.failMapped(w, r, "idents", err)
		return
	}
	writeJSON(w, v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WritePrometheus(w, s.reg)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.health.Snapshot()
	body := map[string]any{
		"health":   snap,
		"live":     s.live.Load(),
		"draining": s.draining.Load(),
	}
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(body)
		return
	}
	writeJSON(w, body)
}
