// Hosted sessions: the server's unit of work. A hosted session wraps a
// protocol.Session with the bookkeeping the durability and accounting
// contracts need — the op journal that makes it replayable, and the
// per-tag lifecycle ledger that makes the chaos invariants (no duplicate
// identifications, no phantoms, exact accounting) auditable per session,
// live, over HTTP.
package server

import (
	"errors"
	"fmt"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/registry"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// ErrReplayDiverged reports a checkpoint whose replay did not reproduce a
// healthy session — the step count could not be reached, or a step failed
// where the journal says it once succeeded. It marks a checkpoint written
// by a different build or a record that lies; the recovery scan
// quarantines the file.
var ErrReplayDiverged = errors.New("server: checkpoint replay diverged")

// tagState is one tag's accounting bucket. identified is terminal: a tag
// revoked after identification stays identified.
type tagState uint8

const (
	tagActive tagState = iota
	tagIdentified
	tagDeparted // revoked before being read
)

// hosted is one live session. It is owned by exactly one shard worker;
// nothing here is locked.
type hosted struct {
	id   string
	spec Spec
	sess protocol.Session
	env  *protocol.Env

	// steps counts successful Step calls; the journal pins ops to it.
	steps uint64
	ops   []Op
	// ckptSeq numbers checkpoints; opsSinceCkpt and stepsSinceCkpt drive
	// the cadence.
	ckptSeq        uint64
	stepsSinceCkpt uint64
	dirty          bool

	done    bool
	failed  error // terminal step error (e.g. ErrNoProgress)
	created time.Time

	// Accounting ledger, mirrored deterministically by replay.
	tags       map[tagid.ID]tagState
	identified []tagid.ID
	dupIdents  int
	phantoms   int
	departed   int // tags in state tagDeparted
	identCount int
	// dupReported/phantomReported track how much of the above already
	// reached the global invariant counters (see Server.auditInvariants).
	dupReported     int
	phantomReported int
}

// newHosted builds a fresh session from its spec. The construction
// sequence (RNG derivation, population draw, channel build) is fixed: it
// is the replay contract, so any change here invalidates every checkpoint
// on disk — bump checkpointVersion if it ever must change.
func newHosted(id string, spec Spec, tracer obs.Tracer) (*hosted, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	proto, err := registry.Session(spec.Protocol)
	if err != nil {
		return nil, err
	}
	r := rng.New(spec.Seed)
	tags := tagid.Population(r, spec.Tags)
	var ch channel.Channel
	switch spec.Channel {
	case "signal":
		ch = channel.NewSignal(channel.SignalConfig{NoiseSigma: spec.NoiseSigma, MaxCancel: spec.Lambda}, r)
	default:
		ch = channel.NewAbstract(channel.AbstractConfig{Lambda: spec.Lambda}, r)
	}
	h := &hosted{
		id:      id,
		spec:    spec,
		created: time.Now(),
		tags:    make(map[tagid.ID]tagState, len(tags)+8),
	}
	h.env = &protocol.Env{
		RNG:      r,
		Tags:     tags,
		Channel:  ch,
		Timing:   air.ICode(),
		TxModel:  protocol.TxBinomial,
		MaxSlots: spec.MaxSlots,
		PAckLoss: spec.PAckLoss,
		Tracer:   tracer,
		OnIdentified: func(tid tagid.ID, _ bool) {
			h.onIdentified(tid)
		},
	}
	for _, t := range tags {
		h.tags[t] = tagActive
	}
	h.sess = proto.Begin(h.env)
	return h, nil
}

// onIdentified is the session's identification callback: it maintains the
// ledger and audits the hard invariants. A duplicate or phantom
// identification is counted, surfaced in the status API and the metrics,
// and never double-books the ledger.
func (h *hosted) onIdentified(id tagid.ID) {
	st, known := h.tags[id]
	switch {
	case !known:
		h.phantoms++
	case st == tagIdentified:
		h.dupIdents++
	default:
		if st == tagDeparted {
			h.departed--
		}
		h.tags[id] = tagIdentified
		h.identified = append(h.identified, id)
		h.identCount++
	}
}

// step executes up to n protocol steps, stopping early at the deadline
// (checked every few steps — a livelocked session cannot hold its shard
// hostage) or on a terminal error. It reports the executed count.
func (h *hosted) step(n int, deadline time.Time) (executed int, done bool, err error) {
	if h.failed != nil {
		return 0, false, h.failed
	}
	const deadlineStride = 32
	for executed < n {
		done, err = h.sess.Step()
		if err != nil {
			h.failed = err
			h.dirty = true
			return executed, done, err
		}
		executed++
		h.steps++
		h.stepsSinceCkpt++
		h.done = done
		h.dirty = true
		if executed%deadlineStride == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
	}
	return executed, h.done, nil
}

// apply executes one journal op against the session and the ledger. It is
// the single mutation path shared by the live API and replay, so both
// filter identically: an ID is admitted at most once over the session's
// lifetime (re-admissions are ignored), and only currently active tags
// are revoked. The filtered slices — not the raw request — reach the
// protocol session, keeping its draw sequence a pure function of the
// journal.
func (h *hosted) apply(op Op) (admitted, revoked int, err error) {
	if len(op.Admit) > 0 {
		ids := make([]tagid.ID, 0, len(op.Admit))
		for _, hx := range op.Admit {
			id, perr := parseID(hx)
			if perr != nil {
				return 0, 0, perr
			}
			if _, known := h.tags[id]; known {
				continue
			}
			h.tags[id] = tagActive
			ids = append(ids, id)
		}
		if len(ids) > 0 {
			h.sess.Admit(ids)
		}
		admitted = len(ids)
	}
	if len(op.Revoke) > 0 {
		ids := make([]tagid.ID, 0, len(op.Revoke))
		for _, hx := range op.Revoke {
			id, perr := parseID(hx)
			if perr != nil {
				return admitted, 0, perr
			}
			if st, known := h.tags[id]; !known || st != tagActive {
				continue
			}
			h.tags[id] = tagDeparted
			h.departed++
			ids = append(ids, id)
		}
		if len(ids) > 0 {
			h.sess.Revoke(ids)
		}
		revoked = len(ids)
	}
	if admitted > 0 || revoked > 0 {
		h.ops = append(h.ops, Op{AtStep: h.steps, Admit: op.Admit, Revoke: op.Revoke})
		h.dirty = true
	}
	return admitted, revoked, nil
}

// record assembles the session's durable checkpoint payload. It does not
// advance ckptSeq — the writer does, and only once the write succeeded, so
// a failed write leaves the sequence (and the dirty flag) untouched.
func (h *hosted) record() *Record {
	return &Record{
		ID:    h.id,
		Seq:   h.ckptSeq + 1,
		Spec:  h.spec,
		Steps: h.steps,
		Ops:   h.ops,
	}
}

// replayHosted rebuilds a session from its checkpoint by deterministic
// replay: reconstruct the env from the spec, then re-execute the journal
// — ops at their recorded step counts, Step calls between them — until
// the checkpointed step count is reached. Any failure on the way is
// ErrReplayDiverged: the record passed its CRC but does not describe a
// session this build can reproduce, so the caller quarantines it.
func replayHosted(rec *Record, tracer obs.Tracer) (*hosted, error) {
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrReplayDiverged, err)
	}
	h, err := newHosted(rec.ID, rec.Spec, tracer)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrReplayDiverged, err)
	}
	next := 0
	for {
		for next < len(rec.Ops) && rec.Ops[next].AtStep == h.steps {
			if _, _, err := h.apply(rec.Ops[next]); err != nil {
				return nil, fmt.Errorf("%w: op %d: %v", ErrReplayDiverged, next, err)
			}
			next++
		}
		if h.steps >= rec.Steps {
			break
		}
		done, err := h.sess.Step()
		if err != nil {
			return nil, fmt.Errorf("%w: step %d of %d failed: %v", ErrReplayDiverged, h.steps, rec.Steps, err)
		}
		h.steps++
		h.done = done
	}
	if next < len(rec.Ops) {
		return nil, fmt.Errorf("%w: %d ops beyond checkpointed step", ErrReplayDiverged, len(rec.Ops)-next)
	}
	// The journal was re-appended by apply during replay; adopt the
	// canonical one and reset the cadence clock — the rebuilt state is
	// exactly the checkpoint, nothing newer to persist.
	h.ops = rec.Ops
	h.ckptSeq = rec.Seq
	h.stepsSinceCkpt = 0
	h.dirty = false
	return h, nil
}

// status is the session's API view.
type status struct {
	ID           string           `json:"id"`
	Protocol     string           `json:"protocol"`
	Steps        uint64           `json:"steps"`
	Done         bool             `json:"done"`
	Failed       string           `json:"failed,omitempty"`
	Admitted     int              `json:"admitted"`
	Identified   int              `json:"identified"`
	Departed     int              `json:"departed_unread"`
	Active       int              `json:"still_active"`
	Outstanding  int              `json:"outstanding"`
	DupIdents    int              `json:"dup_idents"`
	Phantoms     int              `json:"phantoms"`
	Checkpoints  uint64           `json:"checkpoints"`
	ElapsedAirUS int64            `json:"elapsed_air_us"`
	Metrics      protocol.Metrics `json:"metrics"`
	Poisoned     bool             `json:"poisoned,omitempty"`
}

// Status assembles the session's API view, recomputing the accounting
// identity from the ledger (admitted == identified + departed-unread +
// still-active holds by construction; the HTTP layer exposes the raw
// buckets so clients can check it themselves).
func (h *hosted) Status() status {
	st := status{
		ID:           h.id,
		Protocol:     h.spec.Protocol,
		Steps:        h.steps,
		Done:         h.done,
		Admitted:     len(h.tags),
		Identified:   h.identCount,
		Departed:     h.departed,
		Active:       len(h.tags) - h.identCount - h.departed,
		Outstanding:  h.sess.Outstanding(),
		DupIdents:    h.dupIdents,
		Phantoms:     h.phantoms,
		Checkpoints:  h.ckptSeq,
		ElapsedAirUS: h.sess.Elapsed().Microseconds(),
		Metrics:      h.sess.Metrics(),
	}
	if h.failed != nil {
		st.Failed = h.failed.Error()
	}
	return st
}
