// Durable checkpoint store: one CRC-framed checkpoint file per session,
// replaced atomically (write temp file, fsync, rename, fsync directory) so
// a crash at any instant leaves either the previous checkpoint or the new
// one — never a half state the recovery scan would have to guess about.
// Damaged files discovered during recovery are quarantined (renamed aside,
// bytes preserved for forensics) rather than deleted or fatal: the server
// keeps serving every session whose history survived.
package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"github.com/ancrfid/ancrfid/internal/fault"
)

const (
	ckptSuffix       = ".ckpt"
	tmpSuffix        = ".ckpt.tmp"
	quarantineSuffix = ".ckpt.quarantined"
)

// maxSessionIDLen bounds session identifiers; IDs are also restricted to
// a filename-safe alphabet so one session maps to one checkpoint file.
const maxSessionIDLen = 64

// validSessionID reports whether id is acceptable: non-empty, bounded,
// and drawn from [A-Za-z0-9._-] with no leading dot.
func validSessionID(id string) bool {
	if id == "" || len(id) > maxSessionIDLen || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Store is the durable checkpoint directory. Methods are safe for
// concurrent use by the shard workers: distinct sessions write distinct
// files, and the same session is only ever written by its owning shard.
type Store struct {
	dir string
	// faults, when non-nil, corrupts checkpoint writes deterministically
	// (tests only): the write ordinal is the fault position.
	faults *fault.Disk
	// noSync skips fsync — benchmarks and throwaway test stores only; the
	// durability contract requires it off.
	noSync bool
	// writes is the monotone write ordinal feeding the fault injector.
	writes atomic.Uint64
}

// OpenStore opens (creating if needed) the checkpoint directory.
func OpenStore(dir string, faults *fault.Disk, noSync bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	return &Store{dir: dir, faults: faults, noSync: noSync}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path returns the checkpoint file of a session.
func (s *Store) path(id string) string { return filepath.Join(s.dir, id+ckptSuffix) }

// Write durably replaces the session's checkpoint with rec. On any error
// the previous checkpoint (if one exists) is untouched: the temp file is
// abandoned and the rename never happens. Injected faults are applied to
// the encoded bytes before they reach the disk, so a "successful" faulted
// write really does plant a short or torn checkpoint under the final name
// — exactly the damage the recovery scan must survive.
func (s *Store) Write(rec *Record) (int, error) {
	data, err := EncodeCheckpoint(rec)
	if err != nil {
		return 0, err
	}
	seq := s.writes.Add(1)
	if data, err = s.faults.Corrupt(seq, data); err != nil {
		return 0, err
	}
	final := s.path(rec.ID)
	tmp := filepath.Join(s.dir, rec.ID+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if !s.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return 0, err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if !s.noSync {
		if err := syncDir(s.dir); err != nil {
			return 0, err
		}
	}
	return len(data), nil
}

// Exists reports whether a checkpoint file exists for the session.
func (s *Store) Exists(id string) bool {
	_, err := os.Stat(s.path(id))
	return err == nil
}

// Quarantine renames a session's checkpoint aside (bytes preserved) and
// returns the post-quarantine path. Used for records that pass the CRC
// but fail replay — the file is evidence, not state.
func (s *Store) Quarantine(id string) string {
	full := s.path(id)
	qpath := filepath.Join(s.dir, id+quarantineSuffix)
	if err := os.Rename(full, qpath); err != nil {
		return full
	}
	return qpath
}

// Load reads and decodes one session's checkpoint. A missing file returns
// os.ErrNotExist (wrapped); a damaged one returns the typed corruption
// error from DecodeCheckpoint.
func (s *Store) Load(id string) (*Record, error) {
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}

// Delete removes a session's checkpoint; a missing file is not an error.
func (s *Store) Delete(id string) error {
	err := os.Remove(s.path(id))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if s.noSync {
		return nil
	}
	return syncDir(s.dir)
}

// Quarantined is one damaged checkpoint file set aside by the recovery
// scan.
type Quarantined struct {
	// Path is the file's post-quarantine location.
	Path string
	// Err is the typed corruption error that disqualified it.
	Err error
}

// Recovered is the outcome of a recovery scan.
type Recovered struct {
	// Records are the valid checkpoints, one per surviving session.
	Records []*Record
	// Quarantined lists damaged files renamed aside.
	Quarantined []Quarantined
}

// Recover scans the directory: abandoned temp files are removed (a crash
// mid-write left them; the rename never happened, so they carry no
// committed state), valid checkpoints are returned, and corrupt or
// truncated ones are renamed aside with their bytes intact. The scan never
// fails on file content — only on I/O errors reading the directory
// itself.
func (s *Store) Recover() (Recovered, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return Recovered{}, fmt.Errorf("server: recovery scan: %w", err)
	}
	var rec Recovered
	for _, e := range entries {
		name := e.Name()
		full := filepath.Join(s.dir, name)
		switch {
		case e.IsDir(), strings.HasSuffix(name, quarantineSuffix):
			continue
		case strings.HasSuffix(name, tmpSuffix):
			os.Remove(full)
			continue
		case !strings.HasSuffix(name, ckptSuffix):
			continue
		}
		id := strings.TrimSuffix(name, ckptSuffix)
		data, err := os.ReadFile(full)
		var r *Record
		if err == nil {
			r, err = DecodeCheckpoint(data)
		}
		if err == nil && r.ID != id {
			err = fmt.Errorf("%w: record id %q under file %q", ErrCheckpointRecord, r.ID, name)
		}
		if err != nil {
			// Keep the damaged bytes; if even the rename fails, report the
			// original path.
			qpath := strings.TrimSuffix(full, ckptSuffix) + quarantineSuffix
			if renameErr := os.Rename(full, qpath); renameErr != nil {
				qpath = full
			}
			rec.Quarantined = append(rec.Quarantined, Quarantined{Path: qpath, Err: err})
			continue
		}
		rec.Records = append(rec.Records, r)
	}
	return rec, nil
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
