package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
)

// testServer boots a server over a fresh directory and mounts its API on
// an httptest server. Cleanup drains it.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	cfg.NoSync = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func createSession(t *testing.T, ts *httptest.Server, id string, spec Spec) status {
	t.Helper()
	code, body := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"id": id, "spec": spec})
	if code != http.StatusCreated {
		t.Fatalf("create %s: HTTP %d: %s", id, code, body)
	}
	var st status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (int, status) {
	t.Helper()
	code, body := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil)
	var st status
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
	}
	return code, st
}

func stepSession(t *testing.T, ts *httptest.Server, id string, n int) stepResponse {
	t.Helper()
	code, body := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", map[string]any{"steps": n})
	if code != http.StatusOK {
		t.Fatalf("step %s: HTTP %d: %s", id, code, body)
	}
	var resp stepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func checkAccounting(t *testing.T, st status) {
	t.Helper()
	if st.Admitted != st.Identified+st.Departed+st.Active {
		t.Fatalf("accounting broken: %d admitted != %d identified + %d departed + %d active",
			st.Admitted, st.Identified, st.Departed, st.Active)
	}
	if st.DupIdents != 0 || st.Phantoms != 0 {
		t.Fatalf("invariants broken: %d dup idents, %d phantoms", st.DupIdents, st.Phantoms)
	}
}

func TestServerLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	st := createSession(t, ts, "life-1", Spec{Protocol: "FCAT-2", Seed: 11, Tags: 40})
	if st.Admitted != 40 || st.Steps != 0 {
		t.Fatalf("fresh session: %+v", st)
	}
	// Step to completion.
	var done bool
	for i := 0; i < 100 && !done; i++ {
		done = stepSession(t, ts, "life-1", 500).Done
	}
	if !done {
		t.Fatal("session never completed")
	}
	code, st := getStatus(t, ts, "life-1")
	if code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	checkAccounting(t, st)
	if st.Identified != 40 {
		t.Fatalf("identified %d of 40", st.Identified)
	}
	// Ident list: unique, count matches.
	code, body := doJSON(t, "GET", ts.URL+"/v1/sessions/life-1/idents", nil)
	if code != http.StatusOK {
		t.Fatalf("idents: HTTP %d", code)
	}
	var il struct {
		Idents []string `json:"idents"`
	}
	if err := json.Unmarshal(body, &il); err != nil {
		t.Fatal(err)
	}
	if len(il.Idents) != 40 {
		t.Fatalf("%d idents, want 40", len(il.Idents))
	}
	seen := map[string]bool{}
	for _, h := range il.Idents {
		if seen[h] {
			t.Fatalf("duplicate ident %s", h)
		}
		seen[h] = true
	}
	// Admit new tags, step, revoke one.
	extra := []string{"aaaaaaaaaaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbbbbbbbbbb"}
	code, body = doJSON(t, "POST", ts.URL+"/v1/sessions/life-1/admit", map[string]any{"ids": extra})
	if code != http.StatusOK {
		t.Fatalf("admit: HTTP %d: %s", code, body)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/sessions/life-1/revoke", map[string]any{"ids": extra[:1]})
	if code != http.StatusOK {
		t.Fatalf("revoke: HTTP %d", code)
	}
	_, st = getStatus(t, ts, "life-1")
	checkAccounting(t, st)
	if st.Admitted != 42 || st.Departed != 1 {
		t.Fatalf("after churn: %+v", st)
	}
	// Delete, then 404 and 409-free re-create.
	code, _ = doJSON(t, "DELETE", ts.URL+"/v1/sessions/life-1", nil)
	if code != http.StatusNoContent {
		t.Fatalf("delete: HTTP %d", code)
	}
	if code, _ := getStatus(t, ts, "life-1"); code != http.StatusNotFound {
		t.Fatalf("status after delete: HTTP %d", code)
	}
	createSession(t, ts, "life-1", Spec{Protocol: "DFSA", Seed: 1, Tags: 5})
}

func TestServerCreateValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("}{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: HTTP %d, want 400", resp.StatusCode)
	}
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown field", map[string]any{"nope": 1}, http.StatusBadRequest},
		{"bad id", map[string]any{"id": "../etc", "spec": Spec{Protocol: "DFSA", Tags: 5}}, http.StatusBadRequest},
		{"unknown protocol", map[string]any{"id": "x1", "spec": Spec{Protocol: "NOPE", Tags: 5}}, http.StatusBadRequest},
		{"bad spec", map[string]any{"id": "x2", "spec": map[string]any{"protocol": "DFSA", "tags": -3}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _ := doJSON(t, "POST", ts.URL+"/v1/sessions", tc.body)
			if code != tc.want {
				t.Fatalf("HTTP %d, want %d", code, tc.want)
			}
		})
	}
	createSession(t, ts, "dup-1", Spec{Protocol: "DFSA", Seed: 1, Tags: 5})
	code, _ := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"id": "dup-1", "spec": Spec{Protocol: "DFSA", Tags: 5}})
	if code != http.StatusConflict {
		t.Fatalf("duplicate create: HTTP %d, want 409", code)
	}
}

// TestServerBackpressure wedges the single shard worker and checks that a
// full queue turns into 429 + Retry-After, not blocking or memory growth.
func TestServerBackpressure(t *testing.T) {
	s, ts := testServer(t, Config{Shards: 1, QueueDepth: 1})
	release := make(chan struct{})
	blocked := make(chan struct{})
	sh := s.shards[0]
	go sh.do("wedge", func() (any, error) {
		close(blocked)
		<-release
		return nil, nil
	})
	<-blocked
	// The worker is busy; fill the queue slot, then the next request must
	// bounce.
	filled := make(chan struct{})
	go func() {
		sh.do("fill", func() (any, error) { return nil, nil })
		close(filled)
	}()
	// Wait until the queued call occupies the slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(sh.queue) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", strings.NewReader(`{"id":"bp-1","spec":{"protocol":"DFSA","tags":5}}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	<-filled
	if s.reg.Value(obs.MetricServerRejectBackpressure) == 0 {
		t.Fatal("backpressure rejection not counted")
	}
}

func TestServerRateLimit(t *testing.T) {
	_, ts := testServer(t, Config{RateLimit: 0.001, RateBurst: 2})
	client := func() (int, http.Header) {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/sessions", nil)
		req.Header.Set("X-Client-ID", "greedy")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}
	if code, _ := client(); code != http.StatusOK {
		t.Fatalf("first request: HTTP %d", code)
	}
	if code, _ := client(); code != http.StatusOK {
		t.Fatalf("second request (burst): HTTP %d", code)
	}
	code, hdr := client()
	if code != http.StatusTooManyRequests {
		t.Fatalf("third request: HTTP %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("rate-limit 429 without Retry-After")
	}
	// A different client is unaffected.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/sessions", nil)
	req.Header.Set("X-Client-ID", "patient")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: HTTP %d", resp.StatusCode)
	}
}

// panicSession panics on its nth Step — the hostile payload for the
// supervision test.
type panicSession struct {
	protocol.Session
	fuse *int
}

func (p panicSession) Step() (bool, error) {
	*p.fuse--
	if *p.fuse <= 0 {
		panic("protocol bug: deliberate test detonation")
	}
	return p.Session.Step()
}

// TestServerPanicIsolation detonates one session and checks the blast
// radius: that session 500s and stays quarantined, every other session
// keeps serving, the process lives, and a restart recovers the poisoned
// session from its last good checkpoint.
func TestServerPanicIsolation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir: dir,
		newSession: func(id string, spec Spec, tracer obs.Tracer) (*hosted, error) {
			h, err := newHosted(id, spec, tracer)
			if err != nil {
				return nil, err
			}
			if id == "bomb" {
				fuse := 10
				h.sess = panicSession{Session: h.sess, fuse: &fuse}
			}
			return h, nil
		},
	}
	s, ts := testServer(t, cfg)
	createSession(t, ts, "bomb", Spec{Protocol: "DFSA", Seed: 5, Tags: 20})
	createSession(t, ts, "bystander", Spec{Protocol: "DFSA", Seed: 6, Tags: 20})

	code, body := doJSON(t, "POST", ts.URL+"/v1/sessions/bomb/step", map[string]any{"steps": 50})
	if code != http.StatusInternalServerError {
		t.Fatalf("stepping the bomb: HTTP %d: %s", code, body)
	}
	// Quarantined, not gone — and sticky.
	if code, _ := getStatus(t, ts, "bomb"); code != http.StatusInternalServerError {
		t.Fatalf("poisoned status: HTTP %d, want 500", code)
	}
	// The bystander on the same server is untouched.
	if resp := stepSession(t, ts, "bystander", 100); resp.Executed == 0 {
		t.Fatal("bystander stopped stepping")
	}
	if s.reg.Value(obs.MetricServerSessionsPoisoned) != 1 {
		t.Fatal("poisoning not counted")
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)

	// Restart without the detonator: the bomb's create-time checkpoint
	// recovers cleanly.
	s2, err := New(Config{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, st := getStatus(t, ts2, "bomb")
	if code != http.StatusOK {
		t.Fatalf("recovered bomb: HTTP %d", code)
	}
	checkAccounting(t, st)
}

// TestServerIdleEvictionReactivation passivates an idle session and
// checks a later request transparently reactivates it, state intact.
func TestServerIdleEvictionReactivation(t *testing.T) {
	s, ts := testServer(t, Config{
		Shards:        1,
		IdleAfter:     30 * time.Millisecond,
		EvictInterval: 10 * time.Millisecond,
	})
	createSession(t, ts, "ev-1", Spec{Protocol: "FCAT-2", Seed: 3, Tags: 30})
	before := stepSession(t, ts, "ev-1", 200)
	deadline := time.Now().Add(5 * time.Second)
	for s.Live() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Live() != 0 {
		t.Fatal("session never evicted")
	}
	code, st := getStatus(t, ts, "ev-1")
	if code != http.StatusOK {
		t.Fatalf("reactivation: HTTP %d", code)
	}
	if st.Steps != before.Steps {
		t.Fatalf("reactivated at step %d, passivated at %d", st.Steps, before.Steps)
	}
	checkAccounting(t, st)
	if s.reg.Value(obs.MetricServerSessionsReactivated) == 0 {
		t.Fatal("reactivation not counted")
	}
	if s.reg.Value(obs.MetricServerEvictIdle) == 0 {
		t.Fatal("eviction not counted")
	}
}

// TestServerDrainDurability checks the graceful path: Drain checkpoints
// every live session, so a restart resumes at the exact pre-drain state
// even with a checkpoint cadence that never fired.
func TestServerDrainDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, NoSync: true, CheckpointEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	steps := map[string]uint64{}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("dr-%d", i)
		createSession(t, ts, id, Spec{Protocol: "DFSA", Seed: uint64(i), Tags: 25})
		steps[id] = stepSession(t, ts, id, 50+i*17).Steps
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Draining servers refuse work.
	code, _ := doJSON(t, "GET", ts.URL+"/v1/sessions", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request while drained: HTTP %d, want 503", code)
	}
	ts.Close()

	s2, err := New(Config{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for id, want := range steps {
		code, st := getStatus(t, ts2, id)
		if code != http.StatusOK {
			t.Fatalf("recover %s: HTTP %d", id, code)
		}
		if st.Steps != want {
			t.Fatalf("%s recovered at step %d, drained at %d", id, st.Steps, want)
		}
		checkAccounting(t, st)
	}
	if got := s2.reg.Value(obs.MetricServerRecoveryRecovered); got != 8 {
		t.Fatalf("recovered %d sessions, want 8", got)
	}
}

// TestServerRecoveryMetrics plants damaged checkpoints and checks they
// surface as the rfid_server_recovery_* Prometheus families.
func TestServerRecoveryMetrics(t *testing.T) {
	dir := t.TempDir()
	// One valid checkpoint...
	st, err := OpenStore(dir, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	good := testRecord()
	good.ID = "ok-1"
	good.Steps = 120
	good.Ops = nil
	good.Spec = Spec{Protocol: "DFSA", Seed: 9, Tags: 20}
	if _, err := st.Write(good); err != nil {
		t.Fatal(err)
	}
	// ...one truncated, one torn.
	data, _ := EncodeCheckpoint(good)
	os.WriteFile(filepath.Join(dir, "trunc.ckpt"), data[:10], 0o644)
	torn := append([]byte(nil), data...)
	torn[len(torn)-2] ^= 0x01
	os.WriteFile(filepath.Join(dir, "torn.ckpt"), torn, 0o644)

	s, ts := testServer(t, Config{Dir: dir})
	_, body := doJSON(t, "GET", ts.URL+"/metrics", nil)
	text := string(body)
	for _, want := range []string{
		"rfid_server_recovery_scanned_total 3",
		"rfid_server_recovery_recovered_total 1",
		"rfid_server_recovery_quarantined_total 2",
		"rfid_server_recovery_replayed_steps_total 120",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	code, sess := getStatus(t, ts, "ok-1")
	if code != http.StatusOK || sess.Steps != 120 {
		t.Fatalf("recovered session: HTTP %d, steps %d", code, sess.Steps)
	}
	_ = s
}

// TestServerStepDeadline checks a livelocked step batch cannot hold its
// shard past the configured deadline.
func TestServerStepDeadline(t *testing.T) {
	_, ts := testServer(t, Config{StepDeadline: time.Millisecond})
	createSession(t, ts, "dl-1", Spec{Protocol: "DFSA", Seed: 2, Tags: 2000})
	start := time.Now()
	resp := stepSession(t, ts, "dl-1", 1<<20)
	if resp.Executed == 0 {
		t.Fatal("no steps executed")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("step batch held the shard %v despite 1ms deadline", elapsed)
	}
}
