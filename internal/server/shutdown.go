// Shared graceful shutdown for the module's HTTP binaries. Both
// cmd/rfidserver and rfidsim -serve run their listeners through
// ServeUntilSignal: SIGINT/SIGTERM stops accepting, in-flight requests
// get a bounded window to finish (http.Server.Shutdown), and an optional
// drain hook runs before the process exits — for the session server,
// that hook checkpoints every live session.
package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// GracefulOptions tunes ServeUntilSignal.
type GracefulOptions struct {
	// DrainTimeout bounds the whole shutdown (in-flight requests plus the
	// drain hook). Default 30s.
	DrainTimeout time.Duration
	// OnShutdown runs after the listener stopped accepting and in-flight
	// requests finished (or the timeout fired); typically Server.Drain.
	OnShutdown func(context.Context) error
	// Trigger, when non-nil, also initiates shutdown when it becomes
	// readable — tests use it in place of a real signal.
	Trigger <-chan struct{}
	// Logf receives progress lines; nil discards them.
	Logf func(string, ...any)
}

// ServeUntilSignal serves srv on ln until SIGINT or SIGTERM (or
// opts.Trigger), then shuts down gracefully. It returns nil after a clean
// shutdown, or the serve/shutdown error.
func ServeUntilSignal(srv *http.Server, ln net.Listener, opts GracefulOptions) error {
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; nothing to drain.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigc:
		logf("received %v, draining (timeout %v)", sig, opts.DrainTimeout)
	case <-opts.Trigger:
		logf("shutdown triggered, draining (timeout %v)", opts.DrainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	if opts.OnShutdown != nil {
		if err := opts.OnShutdown(ctx); err != nil && shutdownErr == nil {
			shutdownErr = err
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) && shutdownErr == nil {
		shutdownErr = err
	}
	return shutdownErr
}
