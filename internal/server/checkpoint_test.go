package server

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func testRecord() *Record {
	ids := tagid.Population(rng.New(7), 4)
	return &Record{
		ID:    "sess-1",
		Seq:   3,
		Spec:  Spec{Protocol: "FCAT-2", Seed: 42, Tags: 50},
		Steps: 900,
		Ops: []Op{
			{AtStep: 100, Admit: []string{formatID(ids[0]), formatID(ids[1])}},
			{AtStep: 100, Revoke: []string{formatID(ids[2])}},
			{AtStep: 640, Admit: []string{formatID(ids[3])}},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rec := testRecord()
	data, err := EncodeCheckpoint(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || got.Seq != rec.Seq || got.Steps != rec.Steps || len(got.Ops) != len(rec.Ops) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, rec)
	}
	if got.Spec != rec.Spec.withDefaults() && got.Spec != rec.Spec {
		t.Fatalf("spec mismatch: got %+v want %+v", got.Spec, rec.Spec)
	}
}

func TestCheckpointTypedErrors(t *testing.T) {
	rec := testRecord()
	good, err := EncodeCheckpoint(rec)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCheckpointTruncated},
		{"short header", good[:8], ErrCheckpointTruncated},
		{"truncated payload", good[:len(good)-5], ErrCheckpointTruncated},
		{"bad magic", append([]byte("NOPE"), good[4:]...), ErrCheckpointMagic},
		{"bad version", func() []byte {
			d := append([]byte(nil), good...)
			d[4] = 99
			return d
		}(), ErrCheckpointVersion},
		{"flipped payload bit", func() []byte {
			d := append([]byte(nil), good...)
			d[len(d)-3] ^= 0x40
			return d
		}(), ErrCheckpointChecksum},
		{"trailing garbage", append(append([]byte(nil), good...), 0xAA), ErrCheckpointRecord},
		{"huge declared length", func() []byte {
			d := append([]byte(nil), good...)
			binary.BigEndian.PutUint32(d[5:9], maxCheckpointPayload+1)
			return d
		}(), ErrCheckpointRecord},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCheckpoint(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("DecodeCheckpoint: got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestRecordValidate(t *testing.T) {
	base := testRecord()
	mutate := func(f func(*Record)) *Record {
		r := *base
		r.Ops = append([]Op(nil), base.Ops...)
		f(&r)
		return &r
	}
	cases := []struct {
		name string
		rec  *Record
		want string
	}{
		{"empty id", mutate(func(r *Record) { r.ID = "" }), "session id"},
		{"long id", mutate(func(r *Record) { r.ID = strings.Repeat("x", maxSessionIDLen+1) }), "session id"},
		{"too many steps", mutate(func(r *Record) { r.Steps = maxRecordSteps + 1 }), "replay bound"},
		{"ops out of order", mutate(func(r *Record) { r.Ops[2].AtStep = 50 }), "after step"},
		{"op beyond steps", mutate(func(r *Record) { r.Ops[2].AtStep = r.Steps + 1 }), "beyond checkpointed step"},
		{"bad hex id", mutate(func(r *Record) { r.Ops[0].Admit = []string{"zz"} }), "hex digits"},
		{"bad spec", mutate(func(r *Record) { r.Spec.Tags = -1 }), "tags"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.rec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate: got %v, want error containing %q", err, tc.want)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Protocol: "DFSA", Tags: 10}.withDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Protocol: "", Tags: 10},
		{Protocol: "DFSA", Tags: maxSpecTags + 1},
		{Protocol: "DFSA", Tags: 10, Channel: "quantum"},
		{Protocol: "DFSA", Tags: 10, Lambda: 99},
		{Protocol: "DFSA", Tags: 10, NoiseSigma: -1},
		{Protocol: "DFSA", Tags: 10, MaxSlots: -1},
		{Protocol: "DFSA", Tags: 10, PAckLoss: 1},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, sp)
		}
	}
}

func TestFormatParseID(t *testing.T) {
	ids := tagid.Population(rng.New(3), 16)
	for _, id := range ids {
		s := formatID(id)
		if len(s) != 24 {
			t.Fatalf("formatID length %d, want 24", len(s))
		}
		back, err := parseID(s)
		if err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("parseID(formatID(%v)) = %v", id, back)
		}
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 24), strings.Repeat("a", 23)} {
		if _, err := parseID(bad); err == nil {
			t.Errorf("parseID(%q) accepted", bad)
		}
	}
}
