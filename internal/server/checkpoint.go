// Checkpoint codec: the durable on-disk form of a hosted inventory
// session. A checkpoint does not serialise the protocol session's opaque
// in-memory state (channels, collision recordings, RNG internals); it
// serialises the session's *history* — the creation spec plus the journal
// of admissions and revocations, each pinned to the step count it was
// applied at. Because every protocol run in this module is a pure function
// of its Env and its operation sequence (the determinism contract of
// docs/architecture.md), replaying that history rebuilds the exact session
// state, bit for bit, including every RNG draw and collision record. The
// file stays small (a spec, a step count and the op journal) and replay
// costs tens of nanoseconds per step (BenchmarkSessionStep).
//
// Framing. A checkpoint file is
//
//	magic   4 bytes  "RFCK"
//	version 1 byte   (1)
//	length  4 bytes  big-endian payload byte count
//	crc32   4 bytes  big-endian IEEE CRC-32 of the payload
//	payload JSON-encoded Record
//
// DecodeCheckpoint validates every layer and returns typed errors — never
// a panic, whatever the input (FuzzCheckpointDecode pins this) — so the
// recovery scan can quarantine damaged files and keep serving.
package server

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/ancrfid/ancrfid/internal/tagid"
)

// checkpointMagic opens every checkpoint file.
var checkpointMagic = [4]byte{'R', 'F', 'C', 'K'}

// checkpointVersion is the current framing version.
const checkpointVersion = 1

// checkpointHeaderLen is the fixed prefix before the JSON payload.
const checkpointHeaderLen = 4 + 1 + 4 + 4

// maxCheckpointPayload bounds the declared payload length so a corrupt
// header cannot make the decoder allocate unbounded memory.
const maxCheckpointPayload = 64 << 20

// Typed corruption errors. Every way a checkpoint can be damaged maps to
// exactly one of these (possibly wrapped with detail); DecodeCheckpoint
// returns nothing else.
var (
	// ErrCheckpointTruncated reports a file shorter than its framing
	// declares — the short-write / crash-mid-write artefact.
	ErrCheckpointTruncated = errors.New("server: checkpoint truncated")
	// ErrCheckpointMagic reports a file that is not a checkpoint at all.
	ErrCheckpointMagic = errors.New("server: bad checkpoint magic")
	// ErrCheckpointVersion reports an unknown framing version.
	ErrCheckpointVersion = errors.New("server: unsupported checkpoint version")
	// ErrCheckpointChecksum reports a payload whose CRC does not verify —
	// the torn-write artefact.
	ErrCheckpointChecksum = errors.New("server: checkpoint checksum mismatch")
	// ErrCheckpointRecord reports a payload that passes the CRC but does
	// not decode to a semantically valid record (impossible via this
	// encoder; reachable by hand-built files).
	ErrCheckpointRecord = errors.New("server: invalid checkpoint record")
)

// Spec is the deterministic creation recipe of a hosted session: every
// field that feeds session construction, and nothing that does not. Two
// sessions built from equal specs are bit-identical until their operation
// histories diverge.
type Spec struct {
	// Protocol is the registry display name, e.g. "FCAT-2".
	Protocol string `json:"protocol"`
	// Seed derives the session's RNG, its initial population and its
	// channel state.
	Seed uint64 `json:"seed"`
	// Tags is the initial population size, drawn deterministically from
	// Seed exactly as sim.RunOnce draws it.
	Tags int `json:"tags"`
	// Channel selects the channel model: "abstract" (default) or "signal".
	Channel string `json:"channel,omitempty"`
	// Lambda is the abstract channel's ANC decode capability (default 2).
	Lambda int `json:"lambda,omitempty"`
	// NoiseSigma is the signal channel's AWGN sigma.
	NoiseSigma float64 `json:"noise,omitempty"`
	// MaxSlots bounds the session (0 = the protocol's automatic budget).
	MaxSlots int `json:"max_slots,omitempty"`
	// PAckLoss is the acknowledgement-loss probability.
	PAckLoss float64 `json:"p_ack_loss,omitempty"`
}

// maxSpecTags bounds the initial population a spec may request; it keeps
// one create request (or one forged checkpoint) from sizing a population
// that swallows the process.
const maxSpecTags = 1 << 20

// withDefaults normalises the zero values.
func (sp Spec) withDefaults() Spec {
	if sp.Channel == "" {
		sp.Channel = "abstract"
	}
	if sp.Lambda == 0 {
		sp.Lambda = 2
	}
	return sp
}

// Validate checks the spec's bounds. It does not resolve the protocol
// name — construction does that — but rejects everything else a hostile
// checkpoint could smuggle in.
func (sp Spec) Validate() error {
	if sp.Protocol == "" {
		return errors.New("spec: empty protocol name")
	}
	if sp.Tags < 0 || sp.Tags > maxSpecTags {
		return fmt.Errorf("spec: tags %d out of range [0, %d]", sp.Tags, maxSpecTags)
	}
	switch sp.Channel {
	case "", "abstract", "signal":
	default:
		return fmt.Errorf("spec: unknown channel %q", sp.Channel)
	}
	if sp.Lambda < 0 || sp.Lambda > 16 {
		return fmt.Errorf("spec: lambda %d out of range [0, 16]", sp.Lambda)
	}
	if sp.NoiseSigma < 0 || sp.NoiseSigma > 16 {
		return fmt.Errorf("spec: noise sigma %g out of range", sp.NoiseSigma)
	}
	if sp.MaxSlots < 0 {
		return fmt.Errorf("spec: negative max_slots %d", sp.MaxSlots)
	}
	if sp.PAckLoss < 0 || sp.PAckLoss >= 1 {
		return fmt.Errorf("spec: p_ack_loss %g out of range [0, 1)", sp.PAckLoss)
	}
	return nil
}

// Op is one population mutation of the journal: the tag IDs admitted and
// revoked at a given step count. Admissions apply before revocations
// within one op; ops sharing a step apply in journal order.
type Op struct {
	// AtStep is the number of successful steps executed before the op
	// applied.
	AtStep uint64 `json:"at"`
	// Admit and Revoke hold 24-digit hex tag IDs.
	Admit  []string `json:"admit,omitempty"`
	Revoke []string `json:"revoke,omitempty"`
}

// Record is a checkpoint payload: everything needed to rebuild one hosted
// session by deterministic replay.
type Record struct {
	// ID is the session's server-assigned identifier.
	ID string `json:"id"`
	// Seq is the checkpoint's monotone sequence number within the session.
	Seq uint64 `json:"seq"`
	// Spec is the creation recipe.
	Spec Spec `json:"spec"`
	// Steps is the number of successful Step calls executed at checkpoint
	// time; replay re-executes exactly this many.
	Steps uint64 `json:"steps"`
	// Ops is the admission/revocation journal, AtStep nondecreasing.
	Ops []Op `json:"ops,omitempty"`
}

// maxRecordSteps bounds the step count a record may demand of replay. At
// ~25ns per replayed step this caps recovery of one session near a
// second; a forged record cannot wedge startup.
const maxRecordSteps = 1 << 25

// Validate checks the record's internal consistency: spec bounds, journal
// ordering, step bounds and ID syntax.
func (rec *Record) Validate() error {
	if rec.ID == "" || len(rec.ID) > maxSessionIDLen {
		return fmt.Errorf("record: session id length %d out of range [1, %d]", len(rec.ID), maxSessionIDLen)
	}
	if err := rec.Spec.Validate(); err != nil {
		return err
	}
	if rec.Steps > maxRecordSteps {
		return fmt.Errorf("record: %d steps exceeds replay bound %d", rec.Steps, maxRecordSteps)
	}
	var prev uint64
	for i := range rec.Ops {
		op := &rec.Ops[i]
		if op.AtStep < prev {
			return fmt.Errorf("record: op %d at step %d after step %d", i, op.AtStep, prev)
		}
		if op.AtStep > rec.Steps {
			return fmt.Errorf("record: op %d at step %d beyond checkpointed step %d", i, op.AtStep, rec.Steps)
		}
		prev = op.AtStep
		for _, h := range op.Admit {
			if _, err := parseID(h); err != nil {
				return fmt.Errorf("record: op %d admit: %v", i, err)
			}
		}
		for _, h := range op.Revoke {
			if _, err := parseID(h); err != nil {
				return fmt.Errorf("record: op %d revoke: %v", i, err)
			}
		}
	}
	return nil
}

// formatID renders a tag ID as 24 hex digits (no separators — the journal
// form, denser than tagid.ID.String).
func formatID(id tagid.ID) string { return hex.EncodeToString(id[:]) }

// parseID inverts formatID.
func parseID(s string) (tagid.ID, error) {
	var id tagid.ID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("tag id %q: want %d hex digits", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("tag id %q: %v", s, err)
	}
	return id, nil
}

// EncodeCheckpoint frames rec for disk.
func EncodeCheckpoint(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, checkpointHeaderLen+len(payload))
	copy(buf[0:4], checkpointMagic[:])
	buf[4] = checkpointVersion
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[9:13], crc32.ChecksumIEEE(payload))
	copy(buf[checkpointHeaderLen:], payload)
	return buf, nil
}

// DecodeCheckpoint parses and validates a framed checkpoint. Every failure
// is one of the typed corruption errors; arbitrary input never panics.
func DecodeCheckpoint(data []byte) (*Record, error) {
	if len(data) < checkpointHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCheckpointTruncated, len(data), checkpointHeaderLen)
	}
	if [4]byte(data[0:4]) != checkpointMagic {
		return nil, fmt.Errorf("%w: % x", ErrCheckpointMagic, data[0:4])
	}
	if data[4] != checkpointVersion {
		return nil, fmt.Errorf("%w: %d", ErrCheckpointVersion, data[4])
	}
	n := binary.BigEndian.Uint32(data[5:9])
	if n > maxCheckpointPayload {
		return nil, fmt.Errorf("%w: declared payload %d exceeds %d", ErrCheckpointRecord, n, maxCheckpointPayload)
	}
	if len(data) < checkpointHeaderLen+int(n) {
		return nil, fmt.Errorf("%w: payload %d of %d bytes present",
			ErrCheckpointTruncated, len(data)-checkpointHeaderLen, n)
	}
	if len(data) > checkpointHeaderLen+int(n) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpointRecord, len(data)-checkpointHeaderLen-int(n))
	}
	payload := data[checkpointHeaderLen:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(data[9:13]) {
		return nil, fmt.Errorf("%w: crc32 %08x, header says %08x",
			ErrCheckpointChecksum, sum, binary.BigEndian.Uint32(data[9:13]))
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointRecord, err)
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointRecord, err)
	}
	return &rec, nil
}
