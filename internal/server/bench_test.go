package server

import (
	"testing"
	"time"
)

// BenchmarkServerStep measures one protocol step through the full hosted
// path — shard queue round trip, supervised execution, ledger accounting —
// the per-request overhead the API adds on top of the raw ~20ns
// protocol.Session.Step (BenchmarkSessionStep).
func BenchmarkServerStep(b *testing.B) {
	s, err := New(Config{
		Dir:    b.TempDir(),
		NoSync: true,
		Shards: 1,
		// Keep checkpoint writes out of the measured loop.
		CheckpointEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Kill()
	sh := s.shardFor("bench-1")
	_, err = sh.do("bench-1", func() (any, error) {
		// A huge explicit slot budget keeps the continuous-monitoring loop
		// from tripping the automatic budget's no-progress guard at b.N
		// scale.
		h, err := newHosted("bench-1", Spec{Protocol: "DFSA", Seed: 1, Tags: 200, MaxSlots: 1 << 30}, sh.tracer)
		if err != nil {
			return nil, err
		}
		sh.sessions["bench-1"] = &entry{h: h, lastUsed: time.Now()}
		return nil, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.do("bench-1", func() (any, error) {
			e := sh.sessions["bench-1"]
			_, _, err := e.h.step(1, time.Time{})
			return nil, err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointWrite measures one durable checkpoint replacement —
// encode, CRC, temp-file write, atomic rename — with fsync off so the
// gate tracks the CPU cost, not the runner's disk. The fsynced variant
// below exists for local measurement and is not gated.
func BenchmarkCheckpointWrite(b *testing.B) {
	benchCheckpointWrite(b, true)
}

func BenchmarkCheckpointWriteSync(b *testing.B) {
	benchCheckpointWrite(b, false)
}

func benchCheckpointWrite(b *testing.B, noSync bool) {
	store, err := OpenStore(b.TempDir(), nil, noSync)
	if err != nil {
		b.Fatal(err)
	}
	rec := testRecord()
	rec.ID = "bench-ckpt"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Seq = uint64(i + 1)
		if _, err := store.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}
