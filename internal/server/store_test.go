package server

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ancrfid/ancrfid/internal/fault"
)

func newTestStore(t *testing.T, faults *fault.Disk) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), faults, true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreWriteLoadDelete(t *testing.T) {
	s := newTestStore(t, nil)
	rec := testRecord()
	rec.ID = "wl-1"
	if _, err := s.Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("wl-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != rec.Seq || got.Steps != rec.Steps {
		t.Fatalf("loaded %+v, want %+v", got, rec)
	}
	if !s.Exists("wl-1") || s.Exists("other") {
		t.Fatal("Exists wrong")
	}
	if err := s.Delete("wl-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("wl-1"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Load after delete: %v", err)
	}
	if err := s.Delete("wl-1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStoreWriteReplacesAtomically(t *testing.T) {
	s := newTestStore(t, nil)
	rec := testRecord()
	rec.ID = "at-1"
	for seq := uint64(1); seq <= 5; seq++ {
		rec.Seq = seq
		if _, err := s.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Load("at-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 5 {
		t.Fatalf("Seq = %d, want 5", got.Seq)
	}
	entries, _ := os.ReadDir(s.Dir())
	if len(entries) != 1 {
		t.Fatalf("%d files in store dir, want 1 (no leftover temps)", len(entries))
	}
}

// TestStoreRecover builds a directory with every kind of resident — valid
// checkpoints, a truncated one, a bit-flipped one, an abandoned temp, a
// mismatched-ID record, a foreign file — and checks the scan sorts them.
func TestStoreRecover(t *testing.T) {
	s := newTestStore(t, nil)
	good := testRecord()
	good.ID = "good-1"
	if _, err := s.Write(good); err != nil {
		t.Fatal(err)
	}
	good2 := testRecord()
	good2.ID = "good-2"
	if _, err := s.Write(good2); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeCheckpoint(good)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, b []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(s.Dir(), name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("short"+ckptSuffix, data[:len(data)-7])
	torn := append([]byte(nil), data...)
	torn[len(torn)/2] ^= 0x10
	write("torn"+ckptSuffix, torn)
	write("mismatch"+ckptSuffix, data) // record says good-1, file says mismatch
	write("abandoned"+tmpSuffix, data[:3])
	write("README.txt", []byte("not a checkpoint"))

	got, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, r := range got.Records {
		ids[r.ID] = true
	}
	if len(got.Records) != 2 || !ids["good-1"] || !ids["good-2"] {
		t.Fatalf("recovered %v, want good-1 and good-2", ids)
	}
	if len(got.Quarantined) != 3 {
		t.Fatalf("%d quarantined, want 3: %+v", len(got.Quarantined), got.Quarantined)
	}
	for _, q := range got.Quarantined {
		if !strings.HasSuffix(q.Path, quarantineSuffix) {
			t.Errorf("quarantined file %s not renamed aside", q.Path)
		}
		if _, err := os.Stat(q.Path); err != nil {
			t.Errorf("quarantined bytes lost: %v", err)
		}
		if q.Err == nil {
			t.Errorf("quarantine without typed error: %s", q.Path)
		}
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "abandoned"+tmpSuffix)); !errors.Is(err, os.ErrNotExist) {
		t.Error("abandoned temp file not removed")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "README.txt")); err != nil {
		t.Error("foreign file disturbed")
	}
	// A second scan sees only the valid records; quarantined files stay put.
	again, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Records) != 2 || len(again.Quarantined) != 0 {
		t.Fatalf("rescan: %d records, %d quarantined; want 2, 0", len(again.Records), len(again.Quarantined))
	}
}

// TestStoreFaultedWritesQuarantined drives the store with deterministic
// disk faults and checks the recovery scan quarantines exactly the
// damaged files — the end-to-end torn/short-write durability story.
func TestStoreFaultedWritesQuarantined(t *testing.T) {
	disk := fault.NewDisk(fault.DiskConfig{ShortWrite: 0.25, Torn: 0.25}, 99)
	s := newTestStore(t, disk)
	const n = 40
	for i := 0; i < n; i++ {
		rec := testRecord()
		rec.ID = "f-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		rec.Seq = uint64(i + 1)
		if _, err := s.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Quarantined) == 0 {
		t.Fatal("fault injection produced no quarantined files")
	}
	if len(got.Records)+len(got.Quarantined) != n {
		t.Fatalf("%d records + %d quarantined != %d writes",
			len(got.Records), len(got.Quarantined), n)
	}
	for _, q := range got.Quarantined {
		if !errors.Is(q.Err, ErrCheckpointTruncated) && !errors.Is(q.Err, ErrCheckpointChecksum) &&
			!errors.Is(q.Err, ErrCheckpointMagic) && !errors.Is(q.Err, ErrCheckpointRecord) &&
			!errors.Is(q.Err, ErrCheckpointVersion) {
			t.Errorf("quarantine error not typed: %v", q.Err)
		}
	}
}

func TestValidSessionID(t *testing.T) {
	good := []string{"a", "lg-0001", "A.b_c-9", strings.Repeat("x", maxSessionIDLen)}
	for _, id := range good {
		if !validSessionID(id) {
			t.Errorf("validSessionID(%q) = false", id)
		}
	}
	bad := []string{"", ".hidden", "a/b", "a b", "..", strings.Repeat("x", maxSessionIDLen+1), "é"}
	for _, id := range bad {
		if validSessionID(id) {
			t.Errorf("validSessionID(%q) = true", id)
		}
	}
}
