package server

import (
	"errors"
	"testing"
)

// FuzzCheckpointDecode pins the recovery scan's core safety property:
// DecodeCheckpoint never panics, whatever bytes a torn write, a bad disk
// or an adversary put under a .ckpt name — every failure is one of the
// typed corruption errors, and every success round-trips.
func FuzzCheckpointDecode(f *testing.F) {
	good, err := EncodeCheckpoint(testRecord())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("RFCK"))
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCheckpointTruncated) &&
				!errors.Is(err, ErrCheckpointMagic) &&
				!errors.Is(err, ErrCheckpointVersion) &&
				!errors.Is(err, ErrCheckpointChecksum) &&
				!errors.Is(err, ErrCheckpointRecord) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A record the decoder accepted must survive re-encoding: the
		// codec's accepted set is closed under round trip.
		re, err := EncodeCheckpoint(rec)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed: %v", err)
		}
		if _, err := DecodeCheckpoint(re); err != nil {
			t.Fatalf("round trip of accepted record failed: %v", err)
		}
	})
}
