// Per-client token-bucket rate limiting. Clients are keyed by the
// X-Client-ID header when present (load generators and fleet controllers
// set it), else by the remote address's host part, so one greedy client
// throttles itself without starving its neighbours.
package server

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a classic token bucket per client key: rate tokens
// refill per second up to burst. A zero rate disables limiting.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	// lastSweep drives opportunistic expiry of idle buckets so the map
	// does not grow without bound under rotating client keys.
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// bucketIdleExpiry is how long an untouched bucket survives; by then it
// has long since refilled to burst, so dropping it loses nothing.
const bucketIdleExpiry = 5 * time.Minute

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

// allow consumes one token for key, reporting whether the request may
// proceed and, when it may not, how long until a token is available.
func (rl *rateLimiter) allow(key string, now time.Time) (bool, time.Duration) {
	if rl == nil || rl.rate <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if now.Sub(rl.lastSweep) > bucketIdleExpiry {
		for k, b := range rl.buckets {
			if now.Sub(b.last) > bucketIdleExpiry {
				delete(rl.buckets, k)
			}
		}
		rl.lastSweep = now
	}
	b, ok := rl.buckets[key]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait
}

// clientKey extracts the rate-limit key from a request's identity.
func clientKey(clientID, remoteAddr string) string {
	if clientID != "" {
		return clientID
	}
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
