// Package prestep implements the population pre-estimation phase that SCAT
// assumes (paper, Section IV-C: "Its value can be estimated to an arbitrary
// accuracy [24] in a pre-step of SCAT"), following the framed probabilistic
// scheme of Kodialam & Nandagopal, "Fast and Reliable Estimation Schemes in
// RFID Systems" (MobiCom 2006) — the paper's reference [24].
//
// The reader issues probe frames of f slots with a persistence probability
// p: each tag picks one uniformly random slot of the frame with probability
// p, so a slot's occupancy is Binomial(N, p/f). From the observed counts of
// empty and collision slots the reader inverts
//
//	E(n0) = f * (1 - p/f)^N               (zero estimator, ZE)
//	E(nc) = f * (1 - (1-rho)^N - N*rho*(1-rho)^(N-1)),  rho = p/f
//	                                      (collision estimator, CE)
//
// and averages the per-frame estimates. The persistence starts at 1 and is
// halved while frames saturate (all slots colliding), which locates the
// scale of N in a handful of frames.
//
// Unlike FCAT's embedded estimator (package estimate), the pre-step spends
// dedicated air time before identification begins; the paper's motivation
// for FCAT is precisely to remove this cost. Package scat can invoke it to
// run without an externally supplied population size.
package prestep

import (
	"errors"
	"math"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// ErrInconclusive is returned when the probe budget ends before any
// informative frame was observed.
var ErrInconclusive = errors.New("prestep: probe frames carried no usable information")

// Method selects the inversion applied to each probe frame.
type Method int

const (
	// MethodZero inverts the empty-slot count (Kodialam & Nandagopal's ZE).
	MethodZero Method = iota
	// MethodCollision inverts the collision-slot count (their CE).
	MethodCollision
)

// String returns the method name.
func (m Method) String() string {
	if m == MethodCollision {
		return "collision"
	}
	return "zero"
}

// Config parameterises the pre-estimation phase.
type Config struct {
	// FrameSize is the probe frame length (default 64).
	FrameSize int
	// Frames is the number of measurement frames averaged after the
	// persistence has locked on (default 8; accuracy improves with the
	// square root).
	Frames int
	// Method selects the estimator (default MethodZero).
	Method Method
}

func (c Config) withDefaults() Config {
	if c.FrameSize <= 0 {
		c.FrameSize = 64
	}
	if c.Frames <= 0 {
		c.Frames = 8
	}
	return c
}

// Result is the outcome of a pre-estimation phase.
type Result struct {
	// Estimate is the estimated population size.
	Estimate float64
	// Slots is the number of probe slots spent.
	Slots int
	// EmptySlots, SingletonSlots and CollisionSlots break the probe slots
	// down by outcome (probe responses are not decodable ID transmissions;
	// the reader only senses occupancy).
	EmptySlots     int
	SingletonSlots int
	CollisionSlots int
	// Frames is the number of probe frames issued (including the
	// persistence search).
	Frames int
	// OnAir is the air time consumed by the probe phase.
	OnAir time.Duration
}

// Estimate runs the pre-estimation phase against the environment's tag
// population and channel. It does not identify any tag: probe responses
// are short unmodulated bursts in the real scheme, but the slot timing is
// accounted at full ID-slot cost to keep the comparison with embedded
// estimation conservative.
func Estimate(env *protocol.Env, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var (
		res     Result
		clock   air.Clock
		f       = cfg.FrameSize
		p       = 1.0
		frames  int
		sum     float64
		samples int
	)
	budget := env.SlotBudget()

	for samples < cfg.Frames {
		if res.Slots >= budget {
			res.OnAir = clock.Elapsed()
			if samples > 0 {
				res.Estimate = sum / float64(samples)
				return res, nil
			}
			return res, ErrInconclusive
		}
		if env.Tracer != nil {
			env.Tracer.FrameStart(obsev.FrameEvent{Seq: res.Slots, Frame: frames + 1, Size: f, P: p})
		}
		n0, nc := probeFrame(env, f, p, res.Slots)
		res.Slots += f
		res.EmptySlots += n0
		res.CollisionSlots += nc
		res.SingletonSlots += f - n0 - nc
		frames++
		clock.Add(env.Timing.FrameAnnouncement())
		clock.AddSlots(env.Timing, f)

		if nc == f {
			// Saturated: halve the persistence and retry (the scale
			// search). Below a floor the population is beyond what this
			// probe can size; the caller's budget will stop us first.
			p /= 2
			if p < 1e-9 {
				res.OnAir = clock.Elapsed()
				return res, ErrInconclusive
			}
			continue
		}
		est, ok := invert(cfg.Method, n0, nc, f, p)
		if !ok {
			// Uninformative frame at this persistence (e.g. everything
			// empty because N is tiny): for MethodZero n0 == f inverts to
			// 0 cleanly, so this is mostly the CE with nc == 0.
			continue
		}
		sum += est
		samples++
	}
	res.Frames = frames
	res.Estimate = sum / float64(samples)
	res.OnAir = clock.Elapsed()
	return res, nil
}

// EstimateVariance returns the relative variance Var(N^/N) of a single
// zero-estimator probe frame of f slots at per-slot occupancy rho = p/f
// for a population of n tags. By the delta method on
// N^ = ln(n0/f)/ln(1-rho) with Var(n0) = f*q*(1-q), q = (1-rho)^n:
//
//	Var(N^) = (1-q) / (f * q * ln^2(1-rho))
//
// Averaging T frames divides the variance by T — the knob behind
// Kodialam & Nandagopal's "estimate to an arbitrary accuracy".
func EstimateVariance(n int, f int, p float64) float64 {
	rho := p / float64(f)
	if rho <= 0 || rho >= 1 || n <= 0 || f <= 0 {
		return math.Inf(1)
	}
	q := math.Pow(1-rho, float64(n))
	if q <= 0 || q >= 1 {
		return math.Inf(1)
	}
	l := math.Log(1 - rho)
	return (1 - q) / (float64(f) * q * l * l) / (float64(n) * float64(n))
}

// PlanFrames returns the number of measurement frames needed so that the
// averaged zero estimator's relative standard error drops below relErr for
// a population around n (read at the locked-on persistence p). The probe
// phase runs this many frames after the persistence search.
func PlanFrames(n int, cfg Config, p, relErr float64) int {
	cfg = cfg.withDefaults()
	if relErr <= 0 {
		return cfg.Frames
	}
	v := EstimateVariance(n, cfg.FrameSize, p)
	if math.IsInf(v, 1) {
		return cfg.Frames
	}
	frames := int(math.Ceil(v / (relErr * relErr)))
	if frames < 1 {
		frames = 1
	}
	return frames
}

// probeFrame simulates one probe frame: every tag picks a slot of the
// frame with probability p; the reader only needs each slot's
// empty/occupied/collided state. seq is the sequence number of the frame's
// first slot, used only to label trace events. Probe slots feed the tracer
// directly (not Env.NotifySlot) so pre-existing OnSlot observers keep
// seeing identification slots only.
func probeFrame(env *protocol.Env, f int, p float64, seq int) (n0, nc int) {
	occupants := make([][]tagid.ID, f)
	for _, id := range env.Tags {
		if !env.RNG.Bool(p) {
			continue
		}
		s := env.RNG.Intn(f)
		occupants[s] = append(occupants[s], id)
	}
	for i, tx := range occupants {
		obs := env.Channel.Observe(tx)
		switch obs.Kind {
		case channel.Empty:
			n0++
		case channel.Collision, channel.Captured:
			// A captured slot held multiple responders; the pre-estimator
			// counts multiplicity, not decode success.
			nc++
		}
		if env.Tracer != nil {
			env.Tracer.SlotDone(obsev.SlotEvent{
				Seq:          seq + i,
				Kind:         obs.Kind,
				Transmitters: len(tx),
			})
		}
	}
	return n0, nc
}

// invert maps one frame's counts to a population estimate.
func invert(m Method, n0, nc, f int, p float64) (float64, bool) {
	rho := p / float64(f)
	switch m {
	case MethodCollision:
		return invertCollision(nc, f, rho)
	default:
		return invertZero(n0, f, rho)
	}
}

// invertZero solves E(n0) = f*(1-rho)^N for N. A fully empty frame
// (n0 == f) inverts cleanly to zero responders.
func invertZero(n0, f int, rho float64) (float64, bool) {
	if rho <= 0 || rho >= 1 || n0 <= 0 || n0 > f {
		return 0, false
	}
	if n0 == f {
		return 0, true
	}
	return math.Log(float64(n0)/float64(f)) / math.Log(1-rho), true
}

// invertCollision solves E(nc) = f*(1-(1-rho)^N - N*rho*(1-rho)^(N-1)) for
// N by bisection (the expectation is increasing in N).
func invertCollision(nc, f int, rho float64) (float64, bool) {
	if nc <= 0 || nc >= f || rho <= 0 || rho >= 1 {
		return 0, false
	}
	target := float64(nc)
	g := func(n float64) float64 {
		return float64(f)*(1-math.Pow(1-rho, n)-n*rho*math.Pow(1-rho, n-1)) - target
	}
	lo, hi := 0.0, 2.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, false
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*(1+hi); i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}
