package prestep

import (
	"math"
	"testing"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags int) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r),
		Timing:  air.ICode(),
	}
}

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 50000} {
		res, err := Estimate(env(uint64(n), n), Config{})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if rel := math.Abs(res.Estimate-float64(n)) / float64(n); rel > 0.25 {
			t.Errorf("N=%d: estimate %.0f (rel err %.2f)", n, res.Estimate, rel)
		}
		if res.Slots <= 0 || res.OnAir <= 0 {
			t.Errorf("N=%d: no probe cost recorded", n)
		}
	}
}

func TestEstimateCollisionMethod(t *testing.T) {
	res, err := Estimate(env(1, 5000), Config{Method: MethodCollision, Frames: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Estimate-5000) / 5000; rel > 0.3 {
		t.Errorf("collision-method estimate %.0f (rel err %.2f)", res.Estimate, rel)
	}
}

func TestEstimateEmptyField(t *testing.T) {
	res, err := Estimate(env(2, 0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("empty field estimated as %.1f", res.Estimate)
	}
}

func TestEstimateTinyPopulation(t *testing.T) {
	res, err := Estimate(env(3, 3), Config{Frames: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate < 0 || res.Estimate > 12 {
		t.Fatalf("N=3 estimated as %.1f", res.Estimate)
	}
}

func TestProbeCostGrowsLogarithmically(t *testing.T) {
	// The persistence search halves p per saturated frame, so the probe
	// frame count grows ~log2(N/f), not with N.
	small, err := Estimate(env(4, 500), Config{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Estimate(env(4, 50000), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Frames > small.Frames+12 {
		t.Fatalf("probe frames grew too fast: %d -> %d", small.Frames, big.Frames)
	}
}

func TestSlotsBreakdownConsistent(t *testing.T) {
	res, err := Estimate(env(5, 2000), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EmptySlots+res.SingletonSlots+res.CollisionSlots != res.Slots {
		t.Fatalf("slot breakdown inconsistent: %+v", res)
	}
}

func TestMethodString(t *testing.T) {
	if MethodZero.String() != "zero" || MethodCollision.String() != "collision" {
		t.Fatal("method names wrong")
	}
}

func TestInvertZeroRoundTrip(t *testing.T) {
	// Feed the exact expectation; the inversion must return N.
	const f = 64
	for _, n := range []int{50, 500, 5000} {
		rho := 1.0 / float64(n) // informative regime
		en0 := float64(f) * math.Pow(1-rho, float64(n))
		est, ok := invertZero(int(math.Round(en0)), f, rho)
		if !ok {
			t.Fatalf("invertZero rejected valid inputs at N=%d", n)
		}
		if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.25 {
			t.Errorf("N=%d: inverted %v", n, est)
		}
	}
}

func TestInvertCollisionRoundTrip(t *testing.T) {
	const f = 64
	n := 2000
	rho := 1.0 / 1500.0
	enc := float64(f) * (1 - math.Pow(1-rho, float64(n)) - float64(n)*rho*math.Pow(1-rho, float64(n-1)))
	est, ok := invertCollision(int(math.Round(enc)), f, rho)
	if !ok {
		t.Fatal("invertCollision rejected valid inputs")
	}
	if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.3 {
		t.Errorf("inverted %v, want ~%d", est, n)
	}
}

func TestInvertDegenerate(t *testing.T) {
	if _, ok := invertZero(0, 64, 0.01); ok {
		t.Error("n0=0 should not invert")
	}
	if _, ok := invertZero(10, 64, 0); ok {
		t.Error("rho=0 should not invert")
	}
	if _, ok := invertCollision(0, 64, 0.01); ok {
		t.Error("nc=0 should not invert")
	}
	if _, ok := invertCollision(64, 64, 0.01); ok {
		t.Error("nc=f should not invert")
	}
}

func TestEstimateVarianceMatchesMonteCarlo(t *testing.T) {
	// The delta-method variance must match the empirical per-frame spread.
	const (
		n = 5000
		f = 64
	)
	p := float64(f) / float64(n) // rho = 1/n: the informative regime
	want := EstimateVariance(n, f, p)

	r := rng.New(9)
	rho := p / float64(f)
	var rel []float64
	for i := 0; i < 3000; i++ {
		n0 := 0
		for s := 0; s < f; s++ {
			if r.Binomial(n, rho) == 0 {
				n0++
			}
		}
		if est, ok := invertZero(n0, f, rho); ok {
			rel = append(rel, est/float64(n))
		}
	}
	var sum, sumsq float64
	for _, v := range rel {
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(len(rel))
	got := sumsq/float64(len(rel)) - mean*mean
	if got < want*0.6 || got > want*1.6 {
		t.Fatalf("empirical relative variance %v vs analytic %v", got, want)
	}
}

func TestPlanFramesShrinksWithTolerance(t *testing.T) {
	cfg := Config{}
	p := 64.0 / 5000
	loose := PlanFrames(5000, cfg, p, 0.10)
	tight := PlanFrames(5000, cfg, p, 0.02)
	if tight <= loose {
		t.Fatalf("tighter accuracy should need more frames: %d vs %d", tight, loose)
	}
	// Quadrupling accuracy costs ~16x frames.
	if tight < 10*loose {
		t.Fatalf("frame count should scale with 1/relErr^2: %d vs %d", tight, loose)
	}
}

func TestPlanFramesDegenerate(t *testing.T) {
	cfg := Config{}.withDefaults()
	if got := PlanFrames(100, Config{}, 0.1, 0); got != cfg.Frames {
		t.Fatalf("zero tolerance should fall back to the default frames, got %d", got)
	}
	if got := PlanFrames(0, Config{}, 0.1, 0.05); got != cfg.Frames {
		t.Fatalf("degenerate population should fall back, got %d", got)
	}
}

func TestPlannedAccuracyAchieved(t *testing.T) {
	// Running the planned number of frames should achieve roughly the
	// requested accuracy across repeated pre-estimations.
	const n, relErr = 3000, 0.05
	cfg := Config{FrameSize: 64}
	p := 64.0 / float64(n)
	frames := PlanFrames(n, cfg, p, relErr)
	cfg.Frames = frames

	var errs []float64
	for seed := uint64(0); seed < 20; seed++ {
		res, err := Estimate(env(seed+100, n), cfg)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, math.Abs(res.Estimate-float64(n))/float64(n))
	}
	var sum float64
	for _, e := range errs {
		sum += e
	}
	if mean := sum / float64(len(errs)); mean > 2.5*relErr {
		t.Fatalf("mean relative error %.3f far above planned %.3f (frames=%d)", mean, relErr, frames)
	}
}
