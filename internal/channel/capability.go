package channel

import (
	"math"

	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Capability is the unified decode-capability model of an ANC reader: how
// many colliding signals its decoder can peel apart, whether a strong
// constituent can be captured straight through a collision, and the
// link-budget draw that gives every tag the receive power those decisions
// are made from.
//
// It replaces the bare "Lambda int" that used to be threaded separately
// through the abstract channel, the signal channel and the record store.
// The zero value is deliberately degenerate: MaxOrder 0 defers to the
// channel's legacy Lambda field and CaptureSINRdB 0 disables capture, so a
// config that never mentions Capability behaves — bit for bit, RNG draw for
// RNG draw — exactly as before the model existed.
type Capability struct {
	// MaxOrder is M, the largest collision multiplicity the decoder can
	// resolve by successive cancellation (the paper's lambda). Zero means
	// "inherit the channel config's Lambda".
	MaxOrder int

	// CaptureSINRdB enables the capture effect when positive: in a
	// collision slot whose strongest constituent has
	//
	//	SINR = P_max / (sum(P_others) + N) >= 10^(CaptureSINRdB/10)
	//
	// the strongest tag's ID decodes immediately (Kind Captured) and the
	// full recording is kept as a residual for the cascade. Typical
	// monostatic-reader thresholds are 3-10 dB. Zero or negative disables
	// capture entirely.
	CaptureSINRdB float64

	// Budget supplies the per-tag receive powers the capture decision is
	// computed from (and, in the signal channel, the amplitude scaling of
	// each tag's waveform). The zero value uses the documented LinkBudget
	// defaults.
	Budget tagid.LinkBudget
}

// CaptureEnabled reports whether the capability models the capture effect.
func (c Capability) CaptureEnabled() bool {
	return c.CaptureSINRdB > 0
}

// captureLinear returns the linear SINR threshold, or 0 when capture is
// disabled.
func (c Capability) captureLinear() float64 {
	if !c.CaptureEnabled() {
		return 0
	}
	return math.Pow(10, c.CaptureSINRdB/10)
}

// order resolves the effective max decode order against a legacy Lambda
// field: the capability wins when set, the legacy field otherwise, floored
// at 1 (a reader that cannot decode even a singleton is not a reader).
func (c Capability) order(legacyLambda int) int {
	m := c.MaxOrder
	if m == 0 {
		m = legacyLambda
	}
	if m < 1 {
		m = 1
	}
	return m
}
