package channel

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// TestSignalCaptureClassification runs 2-collisions through the
// physical-layer channel with the capability model on: amplitudes follow
// the link budget, so pairs with a dominant constituent should sometimes
// decode through the collision and be reported as Captured, carrying both
// the decoded ID and a residual recording.
func TestSignalCaptureClassification(t *testing.T) {
	cfg := SignalConfig{
		NoiseSigma: 0.01,
		Capability: Capability{MaxOrder: 2, CaptureSINRdB: 3},
	}
	ch := NewSignal(cfg, rng.New(21))
	ids := tagid.Population(rng.New(22), 40)

	captured := 0
	for i := 0; i+2 <= len(ids); i += 2 {
		tx := ids[i : i+2]
		ob := ch.Observe(tx)
		switch ob.Kind {
		case Captured:
			captured++
			if ob.ID != tx[0] && ob.ID != tx[1] {
				t.Fatalf("captured ID %v not a transmitter", ob.ID)
			}
			if ob.Mix == nil || !ob.Mix.Contains(ob.ID) {
				t.Fatal("Captured observation must carry a residual containing the captured tag")
			}
		case Singleton:
			// A vastly dominant constituent can bury the interferer below the
			// envelope test entirely; the reader cannot tell it from a clean
			// singleton. Acceptable.
		case Collision:
			// Comparable powers: no capture.
		default:
			t.Fatalf("unexpected kind %v", ob.Kind)
		}
		if ob.Mix != nil {
			ch.ReleaseMixed(ob.Mix)
		}
	}
	if captured == 0 {
		t.Fatal("link-budget amplitudes never produced a Captured observation over 20 pairs")
	}
}

// TestSignalCapabilityOverridesMaxCancel: MaxOrder takes precedence over
// the legacy MaxCancel knob.
func TestSignalCapabilityOverridesMaxCancel(t *testing.T) {
	ch := NewSignal(SignalConfig{MaxCancel: 7, Capability: Capability{MaxOrder: 2}}, rng.New(1))
	if got := ch.cfg.MaxCancel; got != 2 {
		t.Fatalf("MaxCancel = %d after MaxOrder override, want 2", got)
	}
}

// TestSignalZeroCapabilityUnchanged: a zero Capability must leave the
// classification and the RNG draw sequence bit-identical to the legacy
// config — the same observations in the same order.
func TestSignalZeroCapabilityUnchanged(t *testing.T) {
	mk := func() *Signal {
		return NewSignal(SignalConfig{NoiseSigma: 0.03, MaxCancel: 2}, rng.New(77))
	}
	a, b := mk(), mk()
	// b gets an explicitly zero Capability (a no-op by construction).
	b.cfg.Capability = Capability{}
	ids := tagid.Population(rng.New(78), 12)
	szRNG := rng.New(79)
	for slot := 0; slot < 200; slot++ {
		n := szRNG.Intn(4)
		oa, ob := a.Observe(ids[:n]), b.Observe(ids[:n])
		if oa.Kind != ob.Kind || oa.ID != ob.ID {
			t.Fatalf("slot %d: (%v,%v) vs (%v,%v)", slot, oa.Kind, oa.ID, ob.Kind, ob.ID)
		}
		if oa.Mix != nil {
			a.ReleaseMixed(oa.Mix)
		}
		if ob.Mix != nil {
			b.ReleaseMixed(ob.Mix)
		}
	}
}
