package channel

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// TestAbstractObserveZeroAlloc requires the abstract channel's empty and
// singleton observations — the steady state of a well-tuned protocol — to
// be allocation-free. (Collision observations allocate, amortised through
// the channel's record arena; they are exercised by the arena tests.)
func TestAbstractObserveZeroAlloc(t *testing.T) {
	r := rng.New(3)
	a := NewAbstract(AbstractConfig{Lambda: 2}, r)
	ids := tagid.Population(r, 2)
	empty := []tagid.ID{}
	single := ids[:1]
	allocs := testing.AllocsPerRun(500, func() {
		if o := a.Observe(empty); o.Kind != Empty {
			t.Fatal("want empty")
		}
		if o := a.Observe(single); o.Kind != Singleton {
			t.Fatal("want singleton")
		}
	})
	if allocs != 0 {
		t.Errorf("empty+singleton Observe allocates %v times, want 0", allocs)
	}
}

// TestAbstractCollisionAmortisedAlloc checks the arena does its job: a long
// run of collision observations must average well under one heap object
// per member (the pre-arena cost was a map + header + buckets each).
func TestAbstractCollisionAmortisedAlloc(t *testing.T) {
	r := rng.New(4)
	a := NewAbstract(AbstractConfig{Lambda: 2}, r)
	ids := tagid.Population(r, 2)
	allocs := testing.AllocsPerRun(2000, func() {
		if o := a.Observe(ids); o.Kind != Collision {
			t.Fatal("want collision")
		}
	})
	if allocs > 0.5 {
		t.Errorf("collision Observe allocates %v times per slot, want amortised < 0.5", allocs)
	}
}
