package channel

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
)

func newSignalChan(seed uint64) (*Signal, *rng.Source) {
	r := rng.New(seed)
	return NewSignal(SignalConfig{}, r), r
}

func TestSignalEmptyAndSingleton(t *testing.T) {
	ch, r := newSignalChan(1)
	tags := ids(r, 1)
	if obs := ch.Observe(nil); obs.Kind != Empty {
		t.Fatalf("empty slot -> %v", obs.Kind)
	}
	obs := ch.Observe(tags)
	if obs.Kind != Singleton || obs.ID != tags[0] {
		t.Fatalf("singleton not decoded: %v", obs.Kind)
	}
}

func TestSignalTwoCollisionResolution(t *testing.T) {
	ch, r := newSignalChan(2)
	resolved := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		tags := ids(r, 2)
		obs := ch.Observe(tags)
		if obs.Kind != Collision {
			// Physical capture of a much stronger tag is possible; it is
			// still a correct read.
			if obs.Kind == Singleton && (obs.ID == tags[0] || obs.ID == tags[1]) {
				continue
			}
			t.Fatalf("unexpected observation %v", obs.Kind)
		}
		if obs.Mix.Multiplicity() != 2 {
			t.Fatalf("multiplicity %d", obs.Mix.Multiplicity())
		}
		obs.Mix.Subtract(tags[0])
		got, ok := obs.Mix.Decode()
		if ok {
			if got != tags[1] {
				t.Fatalf("resolved the wrong ID")
			}
			resolved++
		}
	}
	if resolved < trials*2/3 {
		t.Fatalf("only %d/%d two-collisions resolved at default SNR", resolved, trials)
	}
}

func TestSignalDecodeWithoutSubtraction(t *testing.T) {
	ch, r := newSignalChan(3)
	tags := ids(r, 2)
	obs := ch.Observe(tags)
	if obs.Kind != Collision {
		t.Skip("capture occurred; nothing to test")
	}
	if _, ok := obs.Mix.Decode(); ok {
		t.Fatal("record decoded with no known constituents")
	}
}

func TestSignalMaxCancel(t *testing.T) {
	r := rng.New(4)
	ch := NewSignal(SignalConfig{MaxCancel: 2}, r)
	tags := ids(r, 3)
	obs := ch.Observe(tags)
	if obs.Kind != Collision {
		t.Skip("capture occurred")
	}
	// lambda=2 decoder: cancelling 2 constituents of a 3-collision exceeds
	// its capability.
	obs.Mix.Subtract(tags[0])
	obs.Mix.Subtract(tags[1])
	if _, ok := obs.Mix.Decode(); ok {
		t.Fatal("3-collision resolved despite MaxCancel=2")
	}
}

func TestSignalThreeCollisionWithCapableDecoder(t *testing.T) {
	r := rng.New(5)
	ch := NewSignal(SignalConfig{MaxCancel: 3, NoiseSigma: 0.02}, r)
	resolved := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		tags := ids(r, 3)
		obs := ch.Observe(tags)
		if obs.Kind != Collision {
			continue
		}
		obs.Mix.Subtract(tags[0])
		obs.Mix.Subtract(tags[1])
		if got, ok := obs.Mix.Decode(); ok {
			if got != tags[2] {
				t.Fatal("resolved the wrong ID")
			}
			resolved++
		}
	}
	if resolved < trials/2 {
		t.Fatalf("only %d/%d three-collisions resolved with lambda=3", resolved, trials)
	}
}

func TestSignalGainStability(t *testing.T) {
	// A tag's channel gain is stable across slots (static tags), so the
	// same tag observed twice decodes both times.
	ch, r := newSignalChan(6)
	tags := ids(r, 1)
	for i := 0; i < 5; i++ {
		obs := ch.Observe(tags)
		if obs.Kind != Singleton || obs.ID != tags[0] {
			t.Fatalf("slot %d: singleton not stable", i)
		}
	}
}

func TestSignalSubtractIdempotent(t *testing.T) {
	ch, r := newSignalChan(7)
	tags := ids(r, 2)
	obs := ch.Observe(tags)
	if obs.Kind != Collision {
		t.Skip("capture occurred")
	}
	obs.Mix.Subtract(tags[0])
	obs.Mix.Subtract(tags[0])
	got, ok := obs.Mix.Decode()
	if !ok || got != tags[1] {
		t.Fatal("repeated subtraction broke resolution")
	}
}

func TestSignalPhaseJitterStillResolves(t *testing.T) {
	r := rng.New(8)
	ch := NewSignal(SignalConfig{PhaseJitter: 0.5}, r)
	resolved, collisions := 0, 0
	for i := 0; i < 20; i++ {
		tags := ids(r, 2)
		obs := ch.Observe(tags)
		if obs.Kind != Collision {
			continue
		}
		collisions++
		obs.Mix.Subtract(tags[0])
		if _, ok := obs.Mix.Decode(); ok {
			resolved++
		}
	}
	// The per-record LS gain estimate absorbs the phase offset.
	if collisions > 0 && resolved < collisions/2 {
		t.Fatalf("phase jitter broke resolution: %d/%d", resolved, collisions)
	}
}

func TestSignalConfigDefaults(t *testing.T) {
	r := rng.New(9)
	ch := NewSignal(SignalConfig{}, r)
	if ch.cfg.SamplesPerBit <= 0 || ch.cfg.MinAmplitude <= 0 || ch.cfg.MaxAmplitude < ch.cfg.MinAmplitude {
		t.Fatalf("defaults not applied: %+v", ch.cfg)
	}
}

func TestSignalFrequencyOffsetResolution(t *testing.T) {
	// With free-running tag oscillators, the offset-aware decoder still
	// resolves two-collisions.
	r := rng.New(20)
	ch := NewSignal(SignalConfig{FrequencyOffsetMax: 0.04, NoiseSigma: 0.02}, r)
	resolved, collisions := 0, 0
	for i := 0; i < 20; i++ {
		tags := ids(r, 2)
		obs := ch.Observe(tags)
		if obs.Kind != Collision {
			continue
		}
		collisions++
		obs.Mix.Subtract(tags[0])
		if got, ok := obs.Mix.Decode(); ok {
			if got != tags[1] {
				t.Fatal("resolved the wrong ID")
			}
			resolved++
		}
	}
	if collisions == 0 {
		t.Skip("no collisions observed")
	}
	if resolved < collisions*2/3 {
		t.Fatalf("only %d/%d drifting collisions resolved", resolved, collisions)
	}
}

func TestSignalFrequencyOffsetSingletons(t *testing.T) {
	// Offsets within the differential demodulator's tolerance must not
	// break plain singleton reads.
	r := rng.New(21)
	ch := NewSignal(SignalConfig{FrequencyOffsetMax: 0.04}, r)
	for i := 0; i < 30; i++ {
		tags := ids(r, 1)
		obs := ch.Observe(tags)
		if obs.Kind != Singleton || obs.ID != tags[0] {
			t.Fatalf("singleton decode failed under oscillator offset (kind %v)", obs.Kind)
		}
	}
}
