package channel

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func ids(r *rng.Source, n int) []tagid.ID {
	return tagid.Population(r, n)
}

func TestAbstractClassification(t *testing.T) {
	r := rng.New(1)
	ch := NewAbstract(AbstractConfig{Lambda: 2}, r)
	tags := ids(r, 3)

	if obs := ch.Observe(nil); obs.Kind != Empty {
		t.Errorf("no transmitters -> %v, want empty", obs.Kind)
	}
	if obs := ch.Observe(tags[:1]); obs.Kind != Singleton || obs.ID != tags[0] {
		t.Errorf("one transmitter -> %v", obs.Kind)
	}
	obs := ch.Observe(tags[:2])
	if obs.Kind != Collision || obs.Mix == nil {
		t.Fatalf("two transmitters -> %v", obs.Kind)
	}
	if obs.Mix.Multiplicity() != 2 {
		t.Errorf("multiplicity %d, want 2", obs.Mix.Multiplicity())
	}
}

func TestAbstractTwoCollisionResolves(t *testing.T) {
	r := rng.New(2)
	ch := NewAbstract(AbstractConfig{Lambda: 2}, r)
	tags := ids(r, 2)
	mix := ch.Observe(tags).Mix

	if _, ok := mix.Decode(); ok {
		t.Fatal("decoded with no subtraction")
	}
	if !mix.Contains(tags[0]) || !mix.Contains(tags[1]) {
		t.Fatal("Contains should report both members")
	}
	if mix.Contains(ids(r, 1)[0]) {
		t.Fatal("Contains reported a non-member")
	}
	mix.Subtract(tags[0])
	got, ok := mix.Decode()
	if !ok || got != tags[1] {
		t.Fatalf("Decode after one subtraction: %v, %v", got, ok)
	}
}

func TestAbstractLambdaLimit(t *testing.T) {
	r := rng.New(3)
	ch := NewAbstract(AbstractConfig{Lambda: 2}, r)
	tags := ids(r, 3)
	mix := ch.Observe(tags).Mix
	mix.Subtract(tags[0])
	mix.Subtract(tags[1])
	if _, ok := mix.Decode(); ok {
		t.Fatal("3-collision resolved under lambda=2")
	}

	ch3 := NewAbstract(AbstractConfig{Lambda: 3}, r)
	mix3 := ch3.Observe(tags).Mix
	mix3.Subtract(tags[0])
	mix3.Subtract(tags[1])
	got, ok := mix3.Decode()
	if !ok || got != tags[2] {
		t.Fatal("3-collision did not resolve under lambda=3")
	}
}

func TestAbstractSubtractIdempotent(t *testing.T) {
	r := rng.New(4)
	ch := NewAbstract(AbstractConfig{Lambda: 2}, r)
	tags := ids(r, 2)
	mix := ch.Observe(tags).Mix
	mix.Subtract(tags[0])
	mix.Subtract(tags[0]) // repeated subtraction must not fake progress
	got, ok := mix.Decode()
	if !ok || got != tags[1] {
		t.Fatal("idempotent subtraction broke decoding")
	}
}

func TestAbstractSubtractNonMember(t *testing.T) {
	r := rng.New(5)
	ch := NewAbstract(AbstractConfig{Lambda: 2}, r)
	tags := ids(r, 3)
	mix := ch.Observe(tags[:2]).Mix
	mix.Subtract(tags[2]) // not a member: no effect
	if _, ok := mix.Decode(); ok {
		t.Fatal("subtracting a non-member enabled decoding")
	}
}

func TestAbstractOverSubtraction(t *testing.T) {
	r := rng.New(6)
	ch := NewAbstract(AbstractConfig{Lambda: 2}, r)
	tags := ids(r, 2)
	mix := ch.Observe(tags).Mix
	mix.Subtract(tags[0])
	mix.Subtract(tags[1])
	// Zero unknowns left: nothing to decode.
	if _, ok := mix.Decode(); ok {
		t.Fatal("decoded a fully-subtracted record")
	}
}

func TestAbstractUnresolvableProbability(t *testing.T) {
	r := rng.New(7)
	ch := NewAbstract(AbstractConfig{Lambda: 2, PUnresolvable: 1}, r)
	tags := ids(r, 2)
	mix := ch.Observe(tags).Mix
	mix.Subtract(tags[0])
	if _, ok := mix.Decode(); ok {
		t.Fatal("record resolved despite PUnresolvable=1")
	}
}

func TestAbstractCorruptSingleton(t *testing.T) {
	r := rng.New(8)
	ch := NewAbstract(AbstractConfig{Lambda: 2, PCorruptSingleton: 1}, r)
	tags := ids(r, 1)
	obs := ch.Observe(tags)
	if obs.Kind != Collision {
		t.Fatalf("corrupted singleton observed as %v, want collision", obs.Kind)
	}
	if obs.Mix.Multiplicity() != 1 {
		t.Fatalf("pseudo-record multiplicity %d, want 1", obs.Mix.Multiplicity())
	}
	// A corrupted recording never yields an ID, even "fully known".
	obs.Mix.Subtract(tags[0])
	if _, ok := obs.Mix.Decode(); ok {
		t.Fatal("corrupted record decoded")
	}
}

func TestAbstractLambdaFloor(t *testing.T) {
	r := rng.New(9)
	ch := NewAbstract(AbstractConfig{Lambda: 0}, r) // clamped to 1
	tags := ids(r, 2)
	mix := ch.Observe(tags).Mix
	mix.Subtract(tags[0])
	if _, ok := mix.Decode(); ok {
		t.Fatal("lambda<1 should behave as ALOHA (no resolution)")
	}
}

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		Empty: "empty", Singleton: "singleton", Collision: "collision", Kind(99): "unknown",
	} {
		if kind.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", kind, kind.String(), want)
		}
	}
}

func TestAbstractUnresolvableFractionStatistical(t *testing.T) {
	// PUnresolvable=0.4 should spoil ~40% of otherwise-resolvable records.
	r := rng.New(40)
	ch := NewAbstract(AbstractConfig{Lambda: 2, PUnresolvable: 0.4}, r)
	resolved := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		tags := tagid.Population(r, 2)
		mix := ch.Observe(tags).Mix
		mix.Subtract(tags[0])
		if _, ok := mix.Decode(); ok {
			resolved++
		}
	}
	got := float64(resolved) / trials
	if got < 0.55 || got > 0.65 {
		t.Fatalf("resolvable fraction %.3f, want ~0.60", got)
	}
}

func TestAbstractCorruptionFractionStatistical(t *testing.T) {
	r := rng.New(41)
	ch := NewAbstract(AbstractConfig{Lambda: 2, PCorruptSingleton: 0.25}, r)
	singles := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		tags := tagid.Population(r, 1)
		if ch.Observe(tags).Kind == Singleton {
			singles++
		}
	}
	got := float64(singles) / trials
	if got < 0.70 || got > 0.80 {
		t.Fatalf("clean-singleton fraction %.3f, want ~0.75", got)
	}
}
