package channel

import (
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// AbstractConfig parameterises the paper's slot-level channel model.
type AbstractConfig struct {
	// Lambda is the largest collision multiplicity the ANC decoder can
	// resolve (paper: lambda = 2 with today's method; 3 and 4 studied as
	// future improvements). Must be >= 1; a k-collision record with
	// k > Lambda never resolves.
	Lambda int

	// PUnresolvable is the probability that an otherwise-resolvable
	// collision record is spoiled by noise or channel variation and never
	// resolves (Section IV-E). Zero reproduces the paper's main results.
	PUnresolvable float64

	// PCorruptSingleton is the probability that a lone transmission is
	// corrupted in flight: its CRC fails, so the reader records it as an
	// (unresolvable) collision and the tag retries later, exactly the
	// retransmit-until-acknowledged behaviour of Section IV-E.
	PCorruptSingleton float64

	// Capability is the power-aware decode model layered over the slot
	// channel. Its MaxOrder, when set, overrides Lambda; its capture
	// threshold, when positive, lets the strongest constituent of a
	// collision decode through (Kind Captured). The zero value is the
	// degenerate capture-free capability: behaviour — including the RNG
	// draw sequence — is bit-identical to a config that predates the field.
	Capability Capability
}

// Abstract is the slot-level channel used by the paper's evaluation.
//
// Collision records are block-allocated: record headers come from a chunked
// arena owned by the channel and member lists are carved out of shared
// backing arrays, so a collision slot costs amortised fractions of an
// allocation instead of a map plus header each. Records stay alive until
// the run ends (the record store may revisit them at any time); the arena
// simply stops handing out their storage for reuse.
type Abstract struct {
	cfg AbstractConfig
	rng *rng.Source

	// recs is the current record-header chunk. Chunks are never grown in
	// place (only replaced when full), so *abstractMixed pointers handed to
	// the reader stay valid for the whole run.
	recs []abstractMixed
	// memberPool is the current backing chunk for small member lists.
	memberPool []tagid.ID

	// usedRecs/usedPools retain filled chunks so Reset can rewind the
	// arena for the next repetition instead of reallocating it; spareRecs/
	// sparePools hold rewound chunks awaiting reuse.
	usedRecs   [][]abstractMixed
	spareRecs  [][]abstractMixed
	usedPools  [][]tagid.ID
	sparePools [][]tagid.ID

	// free holds records released through ReleaseMixed (streaming mode),
	// recycled — headers, member storage, big-record index maps — by the
	// next collision instead of growing the arena.
	free []*abstractMixed

	// Capture-decision constants, precomputed so the per-slot test is pure
	// float arithmetic: the linear SINR threshold (0 = capture off) and the
	// reader noise floor in mW.
	captureLinear float64
	noiseMW       float64
}

var (
	_ Channel  = (*Abstract)(nil)
	_ Releaser = (*Abstract)(nil)
)

// recChunk and memberChunk size the arena blocks: large enough to amortise
// the chunk allocation across many slots, small enough that a short run
// does not hold tens of kilobytes hostage.
const (
	recChunk    = 128
	memberChunk = 1024
)

// bigRecord is the member count above which a record carries a positional
// index map: linear member scans are faster below it, and the giant records
// (p=1 probe slots colliding hundreds of tags) that sit above it would turn
// cascade subtraction quadratic without one.
const bigRecord = 16

// NewAbstract returns the paper's channel model. The rng drives the noise
// processes; it may be shared with the protocol simulation.
func NewAbstract(cfg AbstractConfig, r *rng.Source) *Abstract {
	cfg.Lambda = cfg.Capability.order(cfg.Lambda)
	a := &Abstract{cfg: cfg, rng: r}
	if cfg.Capability.CaptureEnabled() {
		a.captureLinear = cfg.Capability.captureLinear()
		a.noiseMW = cfg.Capability.Budget.NoiseMW()
	}
	return a
}

// Observe implements Channel.
func (a *Abstract) Observe(transmitters []tagid.ID) Observation {
	switch len(transmitters) {
	case 0:
		return Observation{Kind: Empty}
	case 1:
		if a.rng.Bool(a.cfg.PCorruptSingleton) {
			// Corrupted singleton: CRC fails, reader stores a mixed-signal
			// record that can never be decoded; the tag retries later.
			return Observation{Kind: Collision, Mix: a.newMixed(transmitters, false)}
		}
		return Observation{Kind: Singleton, ID: transmitters[0]}
	default:
		if a.captureLinear > 0 {
			if id, ok := a.capture(transmitters); ok {
				// The captured tag peels off for free; the recording's
				// residual is a (k-1)-collision, so resolvability is judged
				// against one fewer constituent.
				resolvable := len(transmitters)-1 <= a.cfg.Lambda && !a.rng.Bool(a.cfg.PUnresolvable)
				return Observation{Kind: Captured, ID: id, Mix: a.newMixed(transmitters, resolvable)}
			}
		}
		resolvable := len(transmitters) <= a.cfg.Lambda && !a.rng.Bool(a.cfg.PUnresolvable)
		return Observation{Kind: Collision, Mix: a.newMixed(transmitters, resolvable)}
	}
}

// capture applies the capture-effect test to a collision: it computes every
// constituent's link-budget receive power and reports the strongest tag if
// its SINR against the rest of the mix plus noise clears the configured
// threshold. Powers are pure hashes of tag identity — no RNG draw, no
// allocation — so enabling capture perturbs nothing downstream of the
// slots it actually changes.
func (a *Abstract) capture(transmitters []tagid.ID) (tagid.ID, bool) {
	var sum, max float64
	var strongest tagid.ID
	for _, id := range transmitters {
		p := a.cfg.Capability.Budget.RxPowerMW(id.HashPrefix())
		sum += p
		if p > max {
			max = p
			strongest = id
		}
	}
	if max < a.captureLinear*(sum-max+a.noiseMW) {
		return tagid.ID{}, false
	}
	return strongest, true
}

func (a *Abstract) newMixed(transmitters []tagid.ID, resolvable bool) *abstractMixed {
	n := len(transmitters)
	var m *abstractMixed
	if k := len(a.free); k > 0 {
		// Streaming mode: recycle a released record. Its member storage,
		// index map and bitset are dead, so reusing them cannot change any
		// observable bit (the map is only ever looked up, never iterated).
		m = a.free[k-1]
		a.free[k-1] = nil
		a.free = a.free[:k-1]
		members := m.members
		if cap(members) >= n {
			members = members[:n]
			copy(members, transmitters)
		} else {
			members = a.copyMembers(transmitters)
		}
		index, subBig := m.index, m.subBig
		*m = abstractMixed{members: members, unknown: n, resolvable: resolvable}
		if n > bigRecord {
			if index == nil {
				index = make(map[tagid.ID]int32, n)
			} else {
				clear(index)
			}
			for i, id := range members {
				index[id] = int32(i)
			}
			m.index = index
			words := (n + 63) / 64
			if cap(subBig) >= words {
				subBig = subBig[:words]
				clear(subBig)
			} else {
				subBig = make([]uint64, words)
			}
			m.subBig = subBig
		}
		return m
	}
	if len(a.recs) == cap(a.recs) {
		if a.recs != nil {
			a.usedRecs = append(a.usedRecs, a.recs)
		}
		if k := len(a.spareRecs); k > 0 {
			a.recs = a.spareRecs[k-1][:0]
			a.spareRecs[k-1] = nil
			a.spareRecs = a.spareRecs[:k-1]
		} else {
			a.recs = make([]abstractMixed, 0, recChunk)
		}
	}
	a.recs = append(a.recs, abstractMixed{
		members:    a.copyMembers(transmitters),
		unknown:    n,
		resolvable: resolvable,
	})
	m = &a.recs[len(a.recs)-1]
	if len(m.members) > bigRecord {
		m.index = make(map[tagid.ID]int32, len(m.members))
		for i, id := range m.members {
			m.index[id] = int32(i)
		}
		m.subBig = make([]uint64, (len(m.members)+63)/64)
	}
	return m
}

// ReleaseMixed implements Releaser: a fully-resolved record's header and
// backing storage go onto the free list for the next collision to reuse.
func (a *Abstract) ReleaseMixed(m Mixed) {
	am, ok := m.(*abstractMixed)
	if !ok || am.members == nil {
		return
	}
	a.free = append(a.free, am)
}

// Reset rewinds the channel for a fresh repetition over a new RNG: all
// arena chunks are retained and reused, so back-to-back runs allocate
// records only while their live set exceeds every previous run's. The
// caller must guarantee no record from the previous run is still
// referenced (the per-run protocol state has been discarded).
func (a *Abstract) Reset(r *rng.Source) {
	a.rng = r
	for i, c := range a.usedRecs {
		a.spareRecs = append(a.spareRecs, c[:0])
		a.usedRecs[i] = nil
	}
	a.usedRecs = a.usedRecs[:0]
	if a.recs != nil {
		a.spareRecs = append(a.spareRecs, a.recs[:0])
		a.recs = nil
	}
	for i, c := range a.usedPools {
		a.sparePools = append(a.sparePools, c[:0])
		a.usedPools[i] = nil
	}
	a.usedPools = a.usedPools[:0]
	if a.memberPool != nil {
		a.sparePools = append(a.sparePools, a.memberPool[:0])
		a.memberPool = nil
	}
	// Freed records point into the chunks just rewound; handing them out
	// again would alias the arena cursor.
	for i := range a.free {
		a.free[i] = nil
	}
	a.free = a.free[:0]
}

// copyMembers snapshots the transmitter set (the caller reuses its buffer
// next slot) into the member pool. The full slice expression pins the
// capacity so the record's list can never alias a later record's.
func (a *Abstract) copyMembers(transmitters []tagid.ID) []tagid.ID {
	n := len(transmitters)
	if n > memberChunk/2 {
		// Giant record (a p=1 probe slot): give it dedicated storage rather
		// than churning pool chunks.
		out := make([]tagid.ID, n)
		copy(out, transmitters)
		return out
	}
	if len(a.memberPool)+n > cap(a.memberPool) {
		if a.memberPool != nil {
			a.usedPools = append(a.usedPools, a.memberPool)
		}
		if k := len(a.sparePools); k > 0 {
			a.memberPool = a.sparePools[k-1][:0]
			a.sparePools[k-1] = nil
			a.sparePools = a.sparePools[:k-1]
		} else {
			a.memberPool = make([]tagid.ID, 0, memberChunk)
		}
	}
	base := len(a.memberPool)
	a.memberPool = append(a.memberPool, transmitters...)
	return a.memberPool[base : base+n : base+n]
}

// abstractMixed tracks which constituents of a recorded collision have been
// subtracted. Decoding succeeds once a single constituent remains, provided
// the record was resolvable in the first place.
//
// Small records (the steady-state case: multiplicity a handful) keep their
// members in an arena-backed slice with a bitmask of subtracted positions —
// no per-record map, no per-record allocation. Records above bigRecord
// members add a positional index map and a wider bitset.
type abstractMixed struct {
	members    []tagid.ID
	sub        uint64             // subtracted-position bitmask, len(members) <= bigRecord
	subBig     []uint64           // bitset when len(members) > bigRecord
	index      map[tagid.ID]int32 // positional index, only for big records
	unknown    int
	resolvable bool
}

var _ Mixed = (*abstractMixed)(nil)

// find returns the member's position, or -1.
func (m *abstractMixed) find(id tagid.ID) int {
	if m.index != nil {
		if i, ok := m.index[id]; ok {
			return int(i)
		}
		return -1
	}
	for i := range m.members {
		if m.members[i] == id {
			return i
		}
	}
	return -1
}

// subtracted reports whether position i has been cancelled.
func (m *abstractMixed) subtracted(i int) bool {
	if m.subBig != nil {
		return m.subBig[i/64]&(1<<(i%64)) != 0
	}
	return m.sub&(1<<i) != 0
}

func (m *abstractMixed) Contains(id tagid.ID) bool {
	return m.find(id) >= 0
}

func (m *abstractMixed) Subtract(id tagid.ID) {
	i := m.find(id)
	if i < 0 || m.subtracted(i) {
		return
	}
	if m.subBig != nil {
		m.subBig[i/64] |= 1 << (i % 64)
	} else {
		m.sub |= 1 << i
	}
	m.unknown--
}

func (m *abstractMixed) Decode() (tagid.ID, bool) {
	if !m.resolvable || m.unknown != 1 {
		return tagid.ID{}, false
	}
	// Resolvable records have at most lambda members, so this scan is a
	// handful of bitmask tests.
	for i := range m.members {
		if !m.subtracted(i) {
			return m.members[i], true
		}
	}
	return tagid.ID{}, false
}

func (m *abstractMixed) Multiplicity() int { return len(m.members) }

// Remaining implements Residual.
func (m *abstractMixed) Remaining() int { return m.unknown }

// CloneMixed implements Cloner. The member list and positional index are
// immutable after construction and stay shared; the subtraction state is
// copied. The clone lives outside the channel's arena.
func (m *abstractMixed) CloneMixed() Mixed {
	c := *m
	if m.subBig != nil {
		c.subBig = make([]uint64, len(m.subBig))
		copy(c.subBig, m.subBig)
	}
	return &c
}
