package channel

import (
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// AbstractConfig parameterises the paper's slot-level channel model.
type AbstractConfig struct {
	// Lambda is the largest collision multiplicity the ANC decoder can
	// resolve (paper: lambda = 2 with today's method; 3 and 4 studied as
	// future improvements). Must be >= 1; a k-collision record with
	// k > Lambda never resolves.
	Lambda int

	// PUnresolvable is the probability that an otherwise-resolvable
	// collision record is spoiled by noise or channel variation and never
	// resolves (Section IV-E). Zero reproduces the paper's main results.
	PUnresolvable float64

	// PCorruptSingleton is the probability that a lone transmission is
	// corrupted in flight: its CRC fails, so the reader records it as an
	// (unresolvable) collision and the tag retries later, exactly the
	// retransmit-until-acknowledged behaviour of Section IV-E.
	PCorruptSingleton float64
}

// Abstract is the slot-level channel used by the paper's evaluation.
type Abstract struct {
	cfg AbstractConfig
	rng *rng.Source
}

var _ Channel = (*Abstract)(nil)

// NewAbstract returns the paper's channel model. The rng drives the noise
// processes; it may be shared with the protocol simulation.
func NewAbstract(cfg AbstractConfig, r *rng.Source) *Abstract {
	if cfg.Lambda < 1 {
		cfg.Lambda = 1
	}
	return &Abstract{cfg: cfg, rng: r}
}

// Observe implements Channel.
func (a *Abstract) Observe(transmitters []tagid.ID) Observation {
	switch len(transmitters) {
	case 0:
		return Observation{Kind: Empty}
	case 1:
		if a.rng.Bool(a.cfg.PCorruptSingleton) {
			// Corrupted singleton: CRC fails, reader stores a mixed-signal
			// record that can never be decoded; the tag retries later.
			return Observation{Kind: Collision, Mix: a.newMixed(transmitters, false)}
		}
		return Observation{Kind: Singleton, ID: transmitters[0]}
	default:
		resolvable := len(transmitters) <= a.cfg.Lambda && !a.rng.Bool(a.cfg.PUnresolvable)
		return Observation{Kind: Collision, Mix: a.newMixed(transmitters, resolvable)}
	}
}

func (a *Abstract) newMixed(transmitters []tagid.ID, resolvable bool) *abstractMixed {
	m := &abstractMixed{
		members:    make(map[tagid.ID]bool, len(transmitters)),
		unknown:    len(transmitters),
		resolvable: resolvable,
	}
	for _, id := range transmitters {
		m.members[id] = false
	}
	return m
}

// abstractMixed tracks which constituents of a recorded collision have been
// subtracted. Decoding succeeds once a single constituent remains, provided
// the record was resolvable in the first place.
type abstractMixed struct {
	// members maps each transmitter to whether its signal has been
	// subtracted from the mix.
	members    map[tagid.ID]bool
	unknown    int
	resolvable bool
}

var _ Mixed = (*abstractMixed)(nil)

func (m *abstractMixed) Contains(id tagid.ID) bool {
	_, ok := m.members[id]
	return ok
}

func (m *abstractMixed) Subtract(id tagid.ID) {
	subtracted, ok := m.members[id]
	if !ok || subtracted {
		return
	}
	m.members[id] = true
	m.unknown--
}

func (m *abstractMixed) Decode() (tagid.ID, bool) {
	if !m.resolvable || m.unknown != 1 {
		return tagid.ID{}, false
	}
	for id, subtracted := range m.members {
		if !subtracted {
			return id, true
		}
	}
	return tagid.ID{}, false
}

func (m *abstractMixed) Multiplicity() int { return len(m.members) }
