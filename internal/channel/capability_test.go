package channel

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// TestCapabilityDegeneracy is the refactor's safety net: a bare
// AbstractConfig{Lambda: k} and the equivalent capture-free
// Capability{MaxOrder: k} must classify every slot identically, draw for
// draw — otherwise the capability model silently changes legacy campaigns.
func TestCapabilityDegeneracy(t *testing.T) {
	for k := 1; k <= 4; k++ {
		for _, seed := range []uint64{1, 7, 42, 1001} {
			legacy := NewAbstract(AbstractConfig{
				Lambda:            k,
				PUnresolvable:     0.1,
				PCorruptSingleton: 0.05,
			}, rng.New(seed))
			capable := NewAbstract(AbstractConfig{
				PUnresolvable:     0.1,
				PCorruptSingleton: 0.05,
				Capability:        Capability{MaxOrder: k},
			}, rng.New(seed))

			popRNG := rng.New(seed ^ 0xabcdef)
			ids := tagid.Population(popRNG, 16)
			sizeRNG := rng.New(seed ^ 0x123456)
			for slot := 0; slot < 2000; slot++ {
				n := sizeRNG.Intn(7) // 0..6 transmitters
				tx := ids[:n]
				a := legacy.Observe(tx)
				b := capable.Observe(tx)
				if a.Kind != b.Kind || a.ID != b.ID {
					t.Fatalf("k=%d seed=%d slot=%d: legacy (%v, %v) vs capability (%v, %v)",
						k, seed, slot, a.Kind, a.ID, b.Kind, b.ID)
				}
				if (a.Mix == nil) != (b.Mix == nil) {
					t.Fatalf("k=%d seed=%d slot=%d: Mix presence diverged", k, seed, slot)
				}
				if a.Mix != nil {
					ida, oka := drain(a.Mix, tx)
					idb, okb := drain(b.Mix, tx)
					if oka != okb || ida != idb {
						t.Fatalf("k=%d seed=%d slot=%d: decode diverged (%v,%v) vs (%v,%v)",
							k, seed, slot, ida, oka, idb, okb)
					}
				}
			}
		}
	}
}

// drain subtracts all but the last transmitter and attempts a decode,
// exercising the resolvability bit the two configs must agree on.
func drain(m Mixed, tx []tagid.ID) (tagid.ID, bool) {
	for _, id := range tx[:len(tx)-1] {
		m.Subtract(id)
	}
	return m.Decode()
}

// TestCaptureStrongestDecodes checks the capture path end to end: with a
// permissive threshold the strongest constituent (nearest tag under the
// link budget) decodes through the collision, and the residual recording
// still resolves by cancelling the captured tag.
func TestCaptureStrongestDecodes(t *testing.T) {
	cap_ := Capability{MaxOrder: 2, CaptureSINRdB: 0.5}
	ch := NewAbstract(AbstractConfig{Capability: cap_}, rng.New(3))
	ids := tagid.Population(rng.New(9), 64)

	captured := 0
	for i := 0; i+2 <= len(ids); i += 2 {
		tx := ids[i : i+2]
		ob := ch.Observe(tx)
		switch ob.Kind {
		case Captured:
			captured++
			// The strongest tag by the budget draw must be the one captured.
			want := tx[0]
			if cap_.Budget.RxPowerMW(tx[1].HashPrefix()) > cap_.Budget.RxPowerMW(tx[0].HashPrefix()) {
				want = tx[1]
			}
			if ob.ID != want {
				t.Fatalf("captured %v, want strongest %v", ob.ID, want)
			}
			if ob.Mix == nil {
				t.Fatal("Captured observation missing residual Mix")
			}
			// Subtracting the captured tag must leave a decodable residual.
			ob.Mix.Subtract(ob.ID)
			got, ok := ob.Mix.Decode()
			other := tx[0]
			if other == ob.ID {
				other = tx[1]
			}
			if !ok || got != other {
				t.Fatalf("residual decode = (%v, %v), want (%v, true)", got, ok, other)
			}
		case Collision:
			// Below-threshold pair: fine.
		default:
			t.Fatalf("unexpected kind %v for a 2-collision", ob.Kind)
		}
	}
	if captured == 0 {
		t.Fatal("0.5 dB threshold never captured across 32 pairs; capture path dead")
	}
}

// TestCaptureHighThresholdNeverFires pins the other side: an absurd
// threshold must leave every collision a plain Collision.
func TestCaptureHighThresholdNeverFires(t *testing.T) {
	ch := NewAbstract(AbstractConfig{
		Capability: Capability{MaxOrder: 2, CaptureSINRdB: 80},
	}, rng.New(3))
	ids := tagid.Population(rng.New(9), 64)
	for i := 0; i+2 <= len(ids); i += 2 {
		if ob := ch.Observe(ids[i : i+2]); ob.Kind != Collision {
			t.Fatalf("80 dB threshold produced %v", ob.Kind)
		}
	}
}

// TestCaptureDecisionZeroAlloc pins the per-slot capture decision at zero
// allocations: the power draws are pure hashes and the SINR test is float
// arithmetic, so turning capture on must not add a single allocation to
// the slot loop's steady state.
func TestCaptureDecisionZeroAlloc(t *testing.T) {
	ch := NewAbstract(AbstractConfig{
		Capability: Capability{MaxOrder: 2, CaptureSINRdB: 6},
	}, rng.New(5))
	ids := tagid.Population(rng.New(6), 8)
	// Warm the arena so measurement sees the steady state, then release
	// each record (streaming discipline) so newMixed recycles instead of
	// growing chunks.
	for i := 0; i < recChunk; i++ {
		ob := ch.Observe(ids[:3])
		ch.ReleaseMixed(ob.Mix)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ob := ch.Observe(ids[:3])
		ch.ReleaseMixed(ob.Mix)
	})
	if allocs != 0 {
		t.Fatalf("capture-enabled Observe allocates %.1f/op, want 0", allocs)
	}
}

// TestLinkBudgetDeterminism: the power draw is a pure function of
// (identity, seed) — repeated calls agree, and different seeds decorrelate.
func TestLinkBudgetDeterminism(t *testing.T) {
	var b tagid.LinkBudget
	ids := tagid.Population(rng.New(17), 32)
	for _, id := range ids {
		p := id.HashPrefix()
		if b.RxPowerMW(p) != b.RxPowerMW(p) {
			t.Fatalf("power draw for %v not deterministic", id)
		}
		d := b.Distance(p)
		if d < 1 || d > 10 {
			t.Fatalf("default-budget distance %v outside [1, 10] m", d)
		}
	}
	seeded := tagid.LinkBudget{Seed: 99}
	moved := 0
	for _, id := range ids {
		if seeded.Distance(id.HashPrefix()) != b.Distance(id.HashPrefix()) {
			moved++
		}
	}
	if moved < len(ids)/2 {
		t.Fatalf("reseeding moved only %d/%d tags", moved, len(ids))
	}
}

// BenchmarkCaptureDecode measures the per-slot capture decision on a
// 3-collision: three link-budget power draws plus the SINR test and the
// residual recording. Gated in CI for both ns/op and allocs/op.
func BenchmarkCaptureDecode(b *testing.B) {
	ch := NewAbstract(AbstractConfig{
		Capability: Capability{MaxOrder: 3, CaptureSINRdB: 6},
	}, rng.New(5))
	ids := tagid.Population(rng.New(6), 3)
	for i := 0; i < recChunk; i++ {
		ob := ch.Observe(ids)
		ch.ReleaseMixed(ob.Mix)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob := ch.Observe(ids)
		ch.ReleaseMixed(ob.Mix)
	}
}
