package channel

import (
	"math"
	"math/cmplx"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/signal"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// SignalConfig parameterises the physical-layer channel model.
type SignalConfig struct {
	// SamplesPerBit is the complex-baseband oversampling factor.
	SamplesPerBit int

	// NoiseSigma is the per-sample AWGN standard deviation. Tag amplitudes
	// are drawn from [MinAmplitude, MaxAmplitude], so NoiseSigma expresses
	// noise relative to unit signal scale.
	NoiseSigma float64

	// MinAmplitude and MaxAmplitude bound the per-tag channel attenuation.
	// Tags are static during a read (Section IV-E), so a tag keeps its gain
	// for the whole run.
	MinAmplitude float64
	MaxAmplitude float64

	// PhaseJitter, when positive, adds a uniform random phase offset in
	// [-PhaseJitter, +PhaseJitter] radians to every individual transmission,
	// modelling oscillator drift between slots. The ANC canceller absorbs it
	// through per-record gain estimation.
	PhaseJitter float64

	// FrequencyOffsetMax, when positive, gives every tag a static carrier-
	// frequency offset drawn uniformly from [-FrequencyOffsetMax,
	// +FrequencyOffsetMax] radians per sample, modelling free-running tag
	// oscillators. The decoder then cancels constituents with the joint
	// gain-and-offset estimator instead of plain least squares.
	FrequencyOffsetMax float64

	// MaxCancel limits how many known constituents the decoder will try to
	// cancel from one record, mirroring the lambda capability of the
	// slot-level model. Zero means unlimited (cancellation is attempted and
	// succeeds or fails on the CRC alone).
	MaxCancel int

	// Capability is the power-aware decode model. When its MaxOrder is set
	// it overrides MaxCancel; when its capture threshold is positive, tag
	// amplitudes become deterministic link-budget draws (scaled into
	// [0, MaxAmplitude]) instead of uniform random, and a collision whose
	// dominant constituent still decodes with a valid CRC is reported as
	// Captured rather than silently treated as a clean singleton or lost.
	// The zero value changes nothing, including the RNG draw sequence.
	Capability Capability
}

// DefaultSignalConfig returns a configuration representative of a quiet
// warehouse: mild attenuation spread, 30 dB SNR, static phase.
func DefaultSignalConfig() SignalConfig {
	return SignalConfig{
		SamplesPerBit: signal.DefaultSamplesPerBit,
		NoiseSigma:    0.03,
		MinAmplitude:  0.5,
		MaxAmplitude:  1.0,
	}
}

// Signal is the physical-layer channel: transmissions are MSK waveforms,
// collisions are sums, and collision resolution is genuine interference
// cancellation with CRC verification.
//
// All waveform math runs on the batched structure-of-arrays kernels of
// package signal (flat float64 I/Q planes, see signal/soa.go): synthesis
// accumulates each transmitter straight into a reusable rx plane, and the
// decoder's gain fits, cancellations and envelope tests are block loops
// over the same planes. The kernels are bit-identical to the scalar
// complex128 path, so the channel's observable behaviour is unchanged.
//
// The channel owns the scratch buffers of its hot paths: the received
// plane is handed off to the collision record when a slot must be kept
// (lazily replaced, or recycled through ReleaseMixed in streaming mode),
// and the decoder's reference list, least-squares system and residual
// plane are reused across cancellation attempts. A Signal is
// single-goroutine, like the rng.Source it wraps.
type Signal struct {
	cfg     SignalConfig
	rng     *rng.Source
	gains   map[tagid.ID]complex128
	offsets map[tagid.ID]float64
	refs    map[tagid.ID]*signal.Plane
	rots    map[tagid.ID]*signal.Plane // cached e^(i*dw*n) ramps, offset mode only

	rxBuf    *signal.Plane // slot accumulator; nil after a collision keeps it
	freeRx   []*signal.Plane
	refsBuf  []*signal.Plane
	gainsBuf []complex128
	ls       signal.GainScratch
	resBuf   signal.Plane // decoder residual
}

var (
	_ Channel  = (*Signal)(nil)
	_ Releaser = (*Signal)(nil)
)

// NewSignal returns a physical-layer channel. Zero-valued config fields are
// replaced with the defaults from DefaultSignalConfig.
func NewSignal(cfg SignalConfig, r *rng.Source) *Signal {
	def := DefaultSignalConfig()
	if cfg.SamplesPerBit <= 0 {
		cfg.SamplesPerBit = def.SamplesPerBit
	}
	if cfg.MinAmplitude <= 0 {
		cfg.MinAmplitude = def.MinAmplitude
	}
	if cfg.MaxAmplitude <= 0 {
		cfg.MaxAmplitude = def.MaxAmplitude
	}
	if cfg.MaxAmplitude < cfg.MinAmplitude {
		cfg.MaxAmplitude = cfg.MinAmplitude
	}
	if cfg.Capability.MaxOrder > 0 {
		cfg.MaxCancel = cfg.Capability.MaxOrder
	}
	return &Signal{
		cfg:     cfg,
		rng:     r,
		gains:   make(map[tagid.ID]complex128),
		offsets: make(map[tagid.ID]float64),
		refs:    make(map[tagid.ID]*signal.Plane),
		rots:    make(map[tagid.ID]*signal.Plane),
	}
}

// Reset rewinds the channel for a fresh repetition over a new RNG. The
// per-run draws (gains, offsets, offset-dependent rotation ramps) are
// discarded; the reference-waveform cache is a pure function of the tag ID
// and samples-per-bit, so it carries over, as do the recycled rx planes.
func (c *Signal) Reset(r *rng.Source) {
	c.rng = r
	clear(c.gains)
	clear(c.offsets)
	clear(c.rots)
}

// gain returns the tag's static channel coefficient, drawing it on first
// use: a uniform amplitude in [MinAmplitude, MaxAmplitude] at a uniform
// random phase.
func (c *Signal) gain(id tagid.ID) complex128 {
	if g, ok := c.gains[id]; ok {
		return g
	}
	var amp float64
	if c.cfg.Capability.CaptureEnabled() {
		// Link-budget mode: the amplitude is a pure hash of the tag's
		// placement, so the sample-domain power ratios in a collision match
		// the capability model's SINR arithmetic. Only the phase is random.
		amp = c.cfg.MaxAmplitude * c.cfg.Capability.Budget.Amplitude(id.HashPrefix())
	} else {
		amp = c.cfg.MinAmplitude + (c.cfg.MaxAmplitude-c.cfg.MinAmplitude)*c.rng.Float64()
	}
	phase := 2 * math.Pi * c.rng.Float64()
	g := cmplx.Rect(amp, phase)
	c.gains[id] = g
	return g
}

// offset returns the tag's static oscillator offset, drawing it on first
// use.
func (c *Signal) offset(id tagid.ID) float64 {
	if c.cfg.FrequencyOffsetMax <= 0 {
		return 0
	}
	if dw, ok := c.offsets[id]; ok {
		return dw
	}
	dw := (2*c.rng.Float64() - 1) * c.cfg.FrequencyOffsetMax
	c.offsets[id] = dw
	return dw
}

// reference returns the cached canonical (unit-gain) waveform plane of an
// ID.
func (c *Signal) reference(id tagid.ID) *signal.Plane {
	if p, ok := c.refs[id]; ok {
		return p
	}
	p := &signal.Plane{}
	signal.ModulateIDInto(p, id, c.cfg.SamplesPerBit)
	c.refs[id] = p
	return p
}

// rotation returns the cached frequency-offset phase ramp of an ID. The
// ramp is a pure function of the tag's static offset, so caching it cannot
// change any bit of the synthesized waveform.
func (c *Signal) rotation(id tagid.ID, dw float64, n int) *signal.Plane {
	if p, ok := c.rots[id]; ok && p.Len() >= n {
		return p
	}
	p := &signal.Plane{}
	signal.RotationInto(p, dw, n)
	c.rots[id] = p
	return p
}

// Observe implements Channel: it synthesises the received waveform for the
// slot and lets the reader's decoder classify it.
//
// Each transmitter's contribution (ref * e^(i*dw*n), then * gain) is
// accumulated straight into the slot buffer in transmitter order — the
// same per-sample operations, in the same order, as building the parts
// individually and summing them, so the synthesised waveform is
// bit-identical to the unfused form.
func (c *Signal) Observe(transmitters []tagid.ID) Observation {
	if len(transmitters) == 0 {
		return Observation{Kind: Empty}
	}
	n := 1 + tagid.Bits*c.cfg.SamplesPerBit
	if c.rxBuf == nil {
		if k := len(c.freeRx); k > 0 {
			c.rxBuf = c.freeRx[k-1]
			c.freeRx[k-1] = nil
			c.freeRx = c.freeRx[:k-1]
		} else {
			c.rxBuf = &signal.Plane{}
		}
	}
	rx := c.rxBuf
	rx.Reset(n)
	for _, id := range transmitters {
		g := c.gain(id)
		if c.cfg.PhaseJitter > 0 {
			j := (2*c.rng.Float64() - 1) * c.cfg.PhaseJitter
			g *= cmplx.Exp(complex(0, j))
		}
		ref := c.reference(id)
		if dw := c.offset(id); dw != 0 {
			rx.AccumulateScaledRotated(ref, c.rotation(id, dw, n), g)
		} else {
			rx.AccumulateScaled(ref, g)
		}
	}
	signal.AddNoisePlane(rx, c.cfg.NoiseSigma, c.rng)

	// The reader first attempts a plain single-ID decode; the CRC tells it
	// whether the slot was a clean singleton (Section III-B).
	//
	// Differential MSK demodulation exhibits a strong capture effect: the
	// stronger of two superimposed signals often decodes with a valid CRC.
	// Real readers detect this from the envelope — a lone MSK signal has
	// constant magnitude, a mix does not — so a decode is only trusted when
	// the envelope is flat to within the noise floor. A much weaker
	// interferer (below the envelope test's sensitivity) is genuinely
	// captured: the reader reads the strong tag and the weak one retries.
	id, decoded := signal.DecodeIDPlane(rx, c.cfg.SamplesPerBit)
	if decoded && signal.EnvelopeFlatPlane(rx, c.cfg.NoiseSigma) {
		return Observation{Kind: Singleton, ID: id}
	}
	// The record keeps the received plane, so the accumulator is handed
	// off: the next Observe grabs one from the free list or allocates.
	c.rxBuf = nil
	m := &signalMixed{
		chan_:   c,
		wave:    rx,
		members: append(make([]tagid.ID, 0, len(transmitters)), transmitters...),
	}
	if decoded && len(transmitters) > 1 && c.cfg.Capability.CaptureEnabled() && m.Contains(id) {
		// The demodulator pulled a valid ID out of a non-flat envelope: the
		// dominant constituent was captured through the collision. With the
		// capability model on, that is a first-class observation — the ID is
		// delivered and the recording stays as the cascade's residual.
		return Observation{Kind: Captured, ID: id, Mix: m}
	}
	return Observation{Kind: Collision, Mix: m}
}

// ReleaseMixed implements Releaser: a fully-resolved collision record hands
// its plane back for reuse. Recycling only touches buffers whose contents
// are dead, so it cannot change any observable bit.
func (c *Signal) ReleaseMixed(m Mixed) {
	sm, ok := m.(*signalMixed)
	if !ok || sm.wave == nil {
		return
	}
	c.freeRx = append(c.freeRx, sm.wave)
	sm.wave = nil
}

// signalState is the persistent channel state captured by SnapshotState: the
// per-tag gains and oscillator offsets drawn so far. The reference-waveform
// cache is pure (no RNG involvement) and is deliberately not captured.
type signalState struct {
	gains   map[tagid.ID]complex128
	offsets map[tagid.ID]float64
}

var _ Stateful = (*Signal)(nil)

// SnapshotState implements Stateful.
func (c *Signal) SnapshotState() any {
	st := &signalState{
		gains:   make(map[tagid.ID]complex128, len(c.gains)),
		offsets: make(map[tagid.ID]float64, len(c.offsets)),
	}
	for id, g := range c.gains {
		st.gains[id] = g
	}
	for id, dw := range c.offsets {
		st.offsets[id] = dw
	}
	return st
}

// RestoreState implements Stateful.
func (c *Signal) RestoreState(state any) {
	st, ok := state.(*signalState)
	if !ok {
		return
	}
	c.gains = make(map[tagid.ID]complex128, len(st.gains))
	c.offsets = make(map[tagid.ID]float64, len(st.offsets))
	for id, g := range st.gains {
		c.gains[id] = g
	}
	for id, dw := range st.offsets {
		c.offsets[id] = dw
	}
}

// signalMixed is a recorded collision waveform plus the set of identified
// constituents the reader has marked for cancellation. Membership is a
// linear scan: record multiplicities are small in steady state, and even a
// deep bootstrap collision's scan is noise next to the least-squares fits
// Decode runs.
type signalMixed struct {
	chan_   *Signal
	wave    *signal.Plane // nil once released back to the channel
	members []tagid.ID
	known   []tagid.ID
}

var _ Mixed = (*signalMixed)(nil)

func (m *signalMixed) Contains(id tagid.ID) bool {
	for _, v := range m.members {
		if v == id {
			return true
		}
	}
	return false
}

func (m *signalMixed) Subtract(id tagid.ID) {
	for _, k := range m.known {
		if k == id {
			return
		}
	}
	m.known = append(m.known, id)
}

// Decode re-encodes the known constituents, jointly estimates their complex
// gains inside the recording by least squares, cancels them, and attempts a
// CRC-verified decode of the residual. This is the ANC resolution step of
// Section IV-B performed on real samples.
func (m *signalMixed) Decode() (tagid.ID, bool) {
	if len(m.known) == 0 || m.wave == nil {
		return tagid.ID{}, false
	}
	if max := m.chan_.cfg.MaxCancel; max > 0 && len(m.known) > max-1 {
		// The decoder's capability is lambda superimposed signals in total:
		// lambda-1 cancellations plus the residual.
		return tagid.ID{}, false
	}
	c := m.chan_
	var residual *signal.Plane
	if c.cfg.FrequencyOffsetMax > 0 {
		// Free-running oscillators: peel the known constituents one at a
		// time with the joint gain-and-offset estimator, cancelling in place
		// in the channel's residual plane after the first peel.
		residual = m.wave
		for _, known := range m.known {
			ref := c.reference(known)
			gain, dw := signal.EstimateGainAndOffsetPlane(residual, ref, c.cfg.SamplesPerBit)
			residual = signal.CancelWithOffsetIntoPlane(&c.resBuf, residual, ref, gain, dw)
		}
	} else {
		c.refsBuf = c.refsBuf[:0]
		for _, id := range m.known {
			c.refsBuf = append(c.refsBuf, c.reference(id))
		}
		c.gainsBuf = c.ls.EstimateGainsPlane(c.gainsBuf[:0], m.wave, c.refsBuf)
		if c.gainsBuf == nil {
			return tagid.ID{}, false
		}
		residual = signal.CancelIntoPlane(&c.resBuf, m.wave, c.refsBuf, c.gainsBuf)
	}
	id, ok := signal.DecodeIDPlane(residual, c.cfg.SamplesPerBit)
	if !ok {
		return tagid.ID{}, false
	}
	if !m.Contains(id) {
		// A decode that passes CRC but names a tag that never transmitted in
		// this slot is a false positive (probability ~2^-16); discard it.
		return tagid.ID{}, false
	}
	return id, true
}

func (m *signalMixed) Multiplicity() int { return len(m.members) }

// Remaining implements Residual. Subtract deduplicates, but callers may
// subtract IDs that never transmitted here, so clamp at zero.
func (m *signalMixed) Remaining() int {
	if n := len(m.members) - len(m.known); n > 0 {
		return n
	}
	return 0
}

// CloneMixed implements Cloner. The waveform and member list are immutable
// after construction and stay shared; the cancellation set is copied.
func (m *signalMixed) CloneMixed() Mixed {
	c := *m
	if m.known != nil {
		c.known = append(make([]tagid.ID, 0, len(m.known)), m.known...)
	}
	return &c
}
