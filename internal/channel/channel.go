// Package channel abstracts what the RFID reader observes in the report
// segment of a time slot, and what its analog-network-coding decoder can do
// with a recorded collision.
//
// Two implementations are provided:
//
//   - Abstract: the paper's own evaluation model (Section VI) — a k-collision
//     slot is resolvable exactly when k <= lambda, optionally degraded by an
//     unresolvable-record probability and a singleton-corruption probability
//     to model channel noise (Section IV-E).
//   - Signal: a full physical-layer model — every transmission is an MSK
//     waveform with a per-tag complex channel gain, collisions are sample-wise
//     sums plus AWGN, and a collision record resolves only if re-encoding the
//     known constituents, jointly estimating their gains, cancelling them and
//     CRC-checking the residual actually succeeds.
//
// Protocol code is identical over both; the experiments that regenerate the
// paper's tables use Abstract (as the paper did), while Signal backs the
// tests and examples that demonstrate the ANC substrate end-to-end.
package channel

import (
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Kind classifies what the reader observed in a report segment.
type Kind int

const (
	// Empty: no tag transmitted (idle channel).
	Empty Kind = iota + 1
	// Singleton: exactly one tag transmitted and its ID decoded cleanly.
	Singleton
	// Collision: the decode failed; the reader records the mixed signal.
	Collision
	// Captured: two or more tags transmitted but the strongest constituent's
	// SINR cleared the capture threshold, so its ID decoded through the
	// collision (Fyhn et al., "Multipacket Reception of Passive UHF RFID
	// Tags"). The observation carries both the decoded ID and a recorded
	// residual mix for the ANC cascade. Only channels configured with a
	// capturing Capability emit this kind.
	Captured
)

// String returns the slot-kind name.
func (k Kind) String() string {
	switch k {
	case Empty:
		return "empty"
	case Singleton:
		return "singleton"
	case Collision:
		return "collision"
	case Captured:
		return "captured"
	default:
		return "unknown"
	}
}

// Mixed is the reader's recording of one collision slot. The reader cannot
// see inside it directly; it can only subtract signals of tags it has since
// identified and attempt to decode what remains (paper, Section IV-B).
type Mixed interface {
	// Contains reports whether the given tag transmitted in the recorded
	// slot. Under the real protocol the reader derives this from the report
	// hash H(ID|slot); the simulation exposes the ground truth so that the
	// hash-free fast transmission model can run the same reader logic.
	Contains(id tagid.ID) bool

	// Subtract marks the given identified tag's signal as known so that the
	// next Decode attempt cancels it from the mix.
	Subtract(id tagid.ID)

	// Decode attempts to extract a single remaining ID from the residual.
	// It succeeds when all but one constituent has been subtracted, the
	// collision is within the ANC decoder's capability, and (for the signal
	// model) the residual's CRC verifies.
	Decode() (tagid.ID, bool)

	// Multiplicity returns the number of tags that transmitted in the slot.
	// It is simulation introspection for metrics; protocol logic must not
	// depend on it (the paper notes the reader cannot tell how many tags
	// collided).
	Multiplicity() int
}

// Cloner is implemented by Mixed recordings that support deep copying.
// Session checkpoints (protocol.Session.Snapshot) clone every unresolved
// recording in the reader's store so that continuing the live session does
// not mutate the checkpointed state. Both in-tree channels implement it.
type Cloner interface {
	// CloneMixed returns an independent copy of the recording: subtracting
	// signals from the copy leaves the original untouched. A nil return
	// means the copy could not be made (a wrapper over an uncloneable
	// recording); CloneMixed below reports that as a failure.
	CloneMixed() Mixed
}

// CloneMixed deep-copies a recording via its Cloner implementation. It
// reports false when the recording does not support cloning.
func CloneMixed(m Mixed) (Mixed, bool) {
	c, ok := m.(Cloner)
	if !ok {
		return nil, false
	}
	cm := c.CloneMixed()
	if cm == nil {
		return nil, false
	}
	return cm, true
}

// Residual is implemented by Mixed recordings that can report how many
// constituents are still unsubtracted. The hardened record store uses it as
// a residual-energy guard: a record whose residual is down to one signal
// but still refuses to decode is permanently unrecoverable (decoding is a
// deterministic computation, so retrying never helps) and is quarantined
// instead of being retried forever. Both in-tree channels implement it.
type Residual interface {
	// Remaining returns the number of constituent signals not yet
	// subtracted from the recording.
	Remaining() int
}

// Remaining reports the unsubtracted constituent count of a recording, or
// false when the recording does not expose it.
func Remaining(m Mixed) (int, bool) {
	r, ok := m.(Residual)
	if !ok {
		return 0, false
	}
	return r.Remaining(), true
}

// Stateful is implemented by channels that keep persistent state drawn from
// the RNG across Observe calls (the signal channel's lazily drawn per-tag
// gains and oscillator offsets). Session checkpoints capture that state so
// that restoring the RNG actually replays the same noise stream: without it,
// a gain memoised after the snapshot would survive the restore and skip its
// re-draw, desynchronising the replay.
//
// Channels whose only RNG use is memoryless per-observation draws (the
// abstract channel) need not implement Stateful.
type Stateful interface {
	// SnapshotState returns an opaque deep copy of the channel's persistent
	// state.
	SnapshotState() any
	// RestoreState reinstalls a state previously returned by SnapshotState.
	// The argument is copied, so one snapshot can be restored many times.
	RestoreState(state any)
}

// Releaser is implemented by channels that can recycle the buffers behind
// a Mixed recording once the reader is finished with it. The streaming
// campaign mode (protocol.Env.Stream) hands fully-resolved collision
// records back through this hook so mega-N inventories run in bounded
// memory; see docs/performance.md. A released recording must never be
// decoded again — the record store only releases entries it has marked
// resolved, and stops releasing entirely once a checkpoint clone shares
// its recordings.
type Releaser interface {
	// ReleaseMixed returns the recording's buffers to the channel for
	// reuse. Recordings the channel does not recognise are ignored.
	ReleaseMixed(m Mixed)
}

// Resettable is implemented by channels whose internal arenas can be
// rewound for a fresh repetition instead of reallocated. The campaign
// runner reuses one channel value across a worker's runs when the channel
// was constructed by the runner itself (Config.NewChannel == nil), calling
// Reset between runs; the reset must leave the channel observably
// indistinguishable from a newly constructed one seeded with r.
type Resettable interface {
	// Reset rewinds all per-run state and installs the new run's RNG.
	// Recordings handed out before the reset become invalid.
	Reset(r *rng.Source)
}

// Observation is the outcome of one report segment.
type Observation struct {
	Kind Kind
	// ID is the decoded tag ID; valid for Singleton and Captured
	// observations.
	ID tagid.ID
	// Mix is the recorded mixed signal; non-nil only for Collision and
	// Captured observations. For Captured it still contains every
	// constituent including the captured tag — the reader subtracts the
	// captured ID like any other identified tag before cascading.
	Mix Mixed
}

// Channel simulates the report segment of a slot: given the set of
// transmitting tags it returns what the reader observes.
type Channel interface {
	Observe(transmitters []tagid.ID) Observation
}
