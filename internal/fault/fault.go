// Package fault is the deterministic fault injector of the simulator: a
// composition of channel- and reader-level fault shapes whose schedule is a
// pure function of (campaign seed, run index), independent of how many
// random draws the protocol under test makes — the same contract the
// workload scheduler keeps (see internal/workload).
//
// The collision-recovery literature the roadmap cites (Ricciato &
// Castiglione; Fyhn et al.) shows ANC-style recovery degrades sharply under
// imperfect cancellation; this package supplies the imperfections:
//
//   - Gilbert–Elliott burst noise: a two-state good/bad process on the
//     channel. Slots in the bad state lose their singletons (CRC-corrupted,
//     recorded as undecodable collisions) and spoil their collision records.
//   - Acknowledgement loss: reader acks dropped on top of Env.PAckLoss, so
//     tags retransmit until a later acknowledgement gets through.
//   - Tag faults: muted tags (damaged antennas — selected per ID, never
//     heard) and stuck responders (tags that key up out of protocol).
//   - Silent decode corruption: a cascade decode that passes the channel
//     but yields a bit-flipped ID, exercising the reader's CRC defenses
//     (record.Store quarantine).
//   - Reader crash/restart: a slot-boundary schedule consumed by the chaos
//     harness (sim.RunChaos), which rewinds the session through the
//     Snapshot/Restore machinery.
//
// Determinism and rewind safety. Every per-slot and per-tag decision is a
// hash of (salt, fault stream, position) — no sequential RNG consumption —
// so replaying a slot after a checkpoint restore reproduces the identical
// fault. The two pieces of mutable state (the acknowledgement counter and
// the lazily extended burst schedule) are rewind-safe by construction: the
// counter is captured and restored with the fault channel's snapshot, and
// the burst schedule is append-only (queries for rewound slots re-read
// boundaries that were already drawn). docs/robustness.md states the rules.
package fault

import (
	"math"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Burst parameterises the Gilbert–Elliott burst-noise process.
type Burst struct {
	// Duty is the long-run fraction of slots spent in the bad state.
	// 0 disables burst noise; 1 keeps the channel bad permanently.
	Duty float64
	// MeanBad is the mean bad-sojourn length in slots (default 8). The mean
	// good sojourn follows from Duty: MeanBad * (1-Duty) / Duty.
	MeanBad float64
}

// Config composes the fault shapes of one campaign. The zero value injects
// nothing: Enabled reports false and the simulator takes its fault-free
// fast path, bit-identical to a build without this package.
type Config struct {
	// AckLoss is the probability an individual reader acknowledgement is
	// dropped, on top of (and independent of) protocol.Env.PAckLoss.
	AckLoss float64

	// Burst is the Gilbert–Elliott burst-noise process on the channel.
	Burst Burst

	// MuteProb is the probability a given tag is mute: present and counted
	// by the workload, but never heard by the reader.
	MuteProb float64

	// StuckProb is the probability a given tag is a stuck responder: it
	// keys up out of protocol in slots it was never scheduled to report in.
	StuckProb float64
	// StuckTxProb is the per-slot probability a stuck responder transmits
	// out of turn (default 0.5 when StuckProb > 0).
	StuckTxProb float64

	// CorruptSingleton is the per-slot probability a lone report is
	// corrupted in flight: its CRC fails and the reader records an
	// undecodable collision; the tag retries later.
	CorruptSingleton float64

	// CorruptDecode is the per-record probability that resolving the record
	// yields a silently bit-flipped ID instead of the true residual — the
	// poisoned-decode case the record store's CRC quarantine exists for.
	CorruptDecode float64

	// CrashEvery, when positive, crashes the reader every CrashEvery
	// executed slots (wall slots, monotone across restarts). Only the chaos
	// harness consumes it: the crash restores the last session checkpoint
	// and replays from there.
	CrashEvery int
}

// Enabled reports whether any fault shape is configured.
func (c Config) Enabled() bool {
	return c.AckLoss > 0 || c.Burst.Duty > 0 || c.MuteProb > 0 ||
		c.StuckProb > 0 || c.CorruptSingleton > 0 || c.CorruptDecode > 0 ||
		c.CrashEvery > 0
}

// withDefaults normalises the zero values.
func (c Config) withDefaults() Config {
	if c.Burst.Duty > 0 && c.Burst.MeanBad <= 0 {
		c.Burst.MeanBad = 8
	}
	if c.Burst.Duty > 1 {
		c.Burst.Duty = 1
	}
	if c.StuckProb > 0 && c.StuckTxProb <= 0 {
		c.StuckTxProb = 0.5
	}
	return c
}

// Stream salts keep the decision families independent: the same position
// hashed under different salts yields independent draws.
const (
	saltAck      = 0x41434b21_00000001
	saltMute     = 0x4d555445_00000002
	saltStuckSel = 0x53545543_00000003
	saltStuckTx  = 0x53545854_00000004
	saltSingle   = 0x53494e47_00000005
	saltDecode   = 0x4445434f_00000006
	saltBurst    = 0x42555253_00000007
	saltRoot     = 0x616e6366_61756c74 // "ancfault"
)

// mix64 is the SplitMix64 finalizer: a bijective avalanche mix used to turn
// (salt, position) pairs into independent uniform words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Injector draws the fault decisions of one run. It is single-goroutine,
// like the rng.Source and Env of the run it serves. Construct one per run
// with New; the zero Injector (and a nil *Injector) injects nothing.
type Injector struct {
	cfg  Config
	salt uint64

	// acks counts acknowledgement draws. It is the injector's only
	// sequential state and is captured/restored with the fault channel's
	// snapshot, so a rewound session replays identical acknowledgement
	// fates.
	acks uint64

	// Gilbert–Elliott sojourn schedule: bounds[i] is the first slot index
	// after sojourn i; even sojourns are good, odd are bad. The schedule is
	// extended lazily from its own generator and never truncated, so
	// rewound queries are pure re-reads.
	geRng    *rng.Source
	bounds   []uint64
	geCursor uint64 // first slot index not yet covered by bounds
}

// New derives the run's injector from the campaign seed and run index. The
// derivation is independent of the run generator handed to the protocol, so
// enabling faults never shifts a protocol's own draws.
func New(cfg Config, seed uint64, run int) *Injector {
	cfg = cfg.withDefaults()
	inj := &Injector{
		cfg:  cfg,
		salt: mix64(seed ^ saltRoot ^ mix64((uint64(run)+1)*0x9e3779b97f4a7c15)),
	}
	if cfg.Burst.Duty > 0 {
		inj.geRng = rng.New(inj.salt ^ saltBurst)
	}
	return inj
}

// Config returns the injector's normalised configuration.
func (i *Injector) Config() Config { return i.cfg }

// chance draws a Bernoulli(p) decision for one (stream, position) pair.
func (i *Injector) chance(stream, pos uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := mix64(i.salt ^ stream ^ mix64(pos))
	return float64(h>>11)*(1.0/(1<<53)) < p
}

// AckDelivered draws the fate of the next reader acknowledgement: false
// means the injector dropped it. A nil injector delivers everything.
func (i *Injector) AckDelivered() bool {
	if i == nil {
		return true
	}
	i.acks++
	return !i.chance(saltAck, i.acks, i.cfg.AckLoss)
}

// Acks returns the ordinal of the last acknowledgement drawn, for labelling
// fault events.
func (i *Injector) Acks() uint64 { return i.acks }

// Muted reports whether the tag is permanently mute. The selection is a
// pure function of the ID, so it never changes within a run.
func (i *Injector) Muted(id tagid.ID) bool {
	return i.chance(saltMute, uint64(id.HashPrefix()), i.cfg.MuteProb)
}

// Stuck reports whether the tag is a stuck responder.
func (i *Injector) Stuck(id tagid.ID) bool {
	return i.chance(saltStuckSel, uint64(id.HashPrefix()), i.cfg.StuckProb)
}

// StuckTransmits reports whether a stuck responder keys up out of turn in
// the given slot.
func (i *Injector) StuckTransmits(slot uint64, id tagid.ID) bool {
	return i.chance(saltStuckTx, mix64(slot)^uint64(id.HashPrefix()), i.cfg.StuckTxProb)
}

// CorruptSingleton reports whether the slot's lone report is corrupted in
// flight.
func (i *Injector) CorruptSingleton(slot uint64) bool {
	return i.chance(saltSingle, slot, i.cfg.CorruptSingleton)
}

// CorruptDecodeBit returns the bit to flip in the record's resolved ID and
// whether the record's decode is silently corrupted at all. The decision is
// a pure function of the record's slot, so repeated decodes of the same
// record corrupt identically.
func (i *Injector) CorruptDecodeBit(slot uint64) (int, bool) {
	if !i.chance(saltDecode, slot, i.cfg.CorruptDecode) {
		return 0, false
	}
	return int(mix64(i.salt^saltDecode^mix64(slot^0x5bd1)) % tagid.Bits), true
}

// BadSlot reports whether the Gilbert–Elliott process is in the bad state
// for the given slot, extending the sojourn schedule as needed.
func (i *Injector) BadSlot(slot uint64) bool {
	if i.geRng == nil {
		return false
	}
	if i.cfg.Burst.Duty >= 1 {
		return true
	}
	for i.geCursor <= slot {
		// Alternate good/bad sojourns with geometric-ish (rounded
		// exponential) lengths matching the configured duty cycle.
		mean := i.cfg.Burst.MeanBad * (1 - i.cfg.Burst.Duty) / i.cfg.Burst.Duty
		if len(i.bounds)%2 == 1 { // next sojourn is bad
			mean = i.cfg.Burst.MeanBad
		}
		i.geCursor += i.geomLen(mean)
		i.bounds = append(i.bounds, i.geCursor)
	}
	// Binary search for the sojourn containing slot; odd index = bad.
	lo, hi := 0, len(i.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if i.bounds[mid] <= slot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo%2 == 1
}

// geomLen draws one sojourn length (>= 1 slot) with the given mean.
func (i *Injector) geomLen(mean float64) uint64 {
	if mean < 1 {
		mean = 1
	}
	u := i.geRng.Float64()
	n := uint64(-mean * math.Log1p(-u))
	if n < 1 {
		n = 1
	}
	return n
}

// ShouldCrash reports whether the reader crashes after executing the given
// wall slot (a monotone count of executed slots that is NOT rewound by a
// restore — otherwise a crash would re-trigger forever at the same point).
func (i *Injector) ShouldCrash(wallSlot uint64) bool {
	if i == nil || i.cfg.CrashEvery <= 0 || wallSlot == 0 {
		return false
	}
	return wallSlot%uint64(i.cfg.CrashEvery) == 0
}

// injectorState is the injector's rewindable state (see Channel snapshots).
type injectorState struct{ acks uint64 }

func (i *Injector) snapshotState() injectorState { return injectorState{acks: i.acks} }

func (i *Injector) restoreState(st injectorState) { i.acks = st.acks }
