package fault

import (
	"errors"
	"fmt"
)

// Disk fault salts, independent of the channel/reader fault streams.
const (
	saltDiskKind = 0x4449534b_00000008
	saltDiskPos  = 0x4449534b_00000009
	saltDiskBit  = 0x4449534b_0000000a
)

// ErrDiskFull is the error an injected write failure surfaces, standing in
// for ENOSPC and its kin. Callers match it with errors.Is.
var ErrDiskFull = errors.New("fault: injected disk write failure (no space left on device)")

// DiskConfig composes the durable-storage fault shapes: the ways a
// checkpoint write can betray the reader that later recovers from it. The
// zero value injects nothing.
type DiskConfig struct {
	// ShortWrite is the probability a write is truncated at a
	// position-derived offset — the classic crash-during-write artefact
	// (the file made it to its final name, but only a prefix of the
	// payload did).
	ShortWrite float64
	// Torn is the probability a write lands whole but with a
	// position-derived bit flipped — a torn sector or a cable that lies,
	// the case CRC framing exists for.
	Torn float64
	// WriteErr is the probability the write call itself fails with
	// ErrDiskFull before anything reaches the disk; the previous
	// checkpoint must survive such a failure untouched.
	WriteErr float64
}

// Enabled reports whether any disk fault shape is configured.
func (c DiskConfig) Enabled() bool {
	return c.ShortWrite > 0 || c.Torn > 0 || c.WriteErr > 0
}

// Disk draws deterministic disk-write fault decisions. Like Injector,
// every decision is a pure hash of (seed, write position): the nth write
// of a store seeded identically always meets the same fate, regardless of
// what was written before it or by whom. It is safe for concurrent use —
// it holds no mutable state at all.
type Disk struct {
	cfg  DiskConfig
	salt uint64
}

// NewDisk derives a disk-fault injector from a seed. A nil *Disk injects
// nothing.
func NewDisk(cfg DiskConfig, seed uint64) *Disk {
	return &Disk{cfg: cfg, salt: mix64(seed ^ saltRoot ^ saltDiskKind)}
}

// Config returns the injector's configuration.
func (d *Disk) Config() DiskConfig { return d.cfg }

func (d *Disk) chance(stream, pos uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := mix64(d.salt ^ stream ^ mix64(pos))
	return float64(h>>11)*(1.0/(1<<53)) < p
}

// Corrupt decides the fate of write seq carrying data. It returns the
// bytes that actually reach the disk and a nil error, or no bytes and an
// error when the write call itself must fail. The input slice is never
// mutated: a corrupted outcome returns a fresh slice. The decision ladder
// is write-error, then short write, then torn write — at most one shape
// fires per write, each drawn from its own hash stream.
func (d *Disk) Corrupt(seq uint64, data []byte) ([]byte, error) {
	if d == nil || !d.cfg.Enabled() {
		return data, nil
	}
	if d.chance(saltDiskKind, seq, d.cfg.WriteErr) {
		return nil, fmt.Errorf("write %d: %w", seq, ErrDiskFull)
	}
	if len(data) == 0 {
		return data, nil
	}
	if d.chance(saltDiskPos, seq, d.cfg.ShortWrite) {
		// Truncate at a hash-derived fraction of the payload, always
		// strictly short so the damage is guaranteed.
		cut := int(mix64(d.salt^saltDiskPos^mix64(seq)) % uint64(len(data)))
		return append([]byte(nil), data[:cut]...), nil
	}
	if d.chance(saltDiskBit, seq, d.cfg.Torn) {
		bit := mix64(d.salt^saltDiskBit^mix64(seq)) % uint64(len(data)*8)
		out := append([]byte(nil), data...)
		out[bit/8] ^= 1 << (bit % 8)
		return out, nil
	}
	return data, nil
}
