package fault

import (
	"bytes"
	"errors"
	"testing"
)

// Disk decisions must be pure functions of (seed, write position): the
// same seq always meets the same fate, independent of call order.
func TestDiskDeterministicByPosition(t *testing.T) {
	cfg := DiskConfig{ShortWrite: 0.2, Torn: 0.2, WriteErr: 0.2}
	data := bytes.Repeat([]byte{0xa5}, 256)

	a := NewDisk(cfg, 42)
	b := NewDisk(cfg, 42)

	// Drive a forward, b in reverse: outcomes must agree per position.
	const n = 200
	type outcome struct {
		data []byte
		err  error
	}
	fwd := make([]outcome, n)
	for i := 0; i < n; i++ {
		d, err := a.Corrupt(uint64(i), data)
		fwd[i] = outcome{d, err}
	}
	for i := n - 1; i >= 0; i-- {
		d, err := b.Corrupt(uint64(i), data)
		if (err == nil) != (fwd[i].err == nil) || !bytes.Equal(d, fwd[i].data) {
			t.Fatalf("write %d: order-dependent disk fault decision", i)
		}
	}
}

func TestDiskShapes(t *testing.T) {
	data := bytes.Repeat([]byte{0x5a}, 512)

	t.Run("write-error", func(t *testing.T) {
		d := NewDisk(DiskConfig{WriteErr: 1}, 1)
		if _, err := d.Corrupt(0, data); !errors.Is(err, ErrDiskFull) {
			t.Fatalf("want ErrDiskFull, got %v", err)
		}
	})
	t.Run("short-write", func(t *testing.T) {
		d := NewDisk(DiskConfig{ShortWrite: 1}, 1)
		out, err := d.Corrupt(0, data)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) >= len(data) {
			t.Fatalf("short write kept %d of %d bytes", len(out), len(data))
		}
		if !bytes.Equal(out, data[:len(out)]) {
			t.Fatal("short write is not a prefix")
		}
	})
	t.Run("torn-write", func(t *testing.T) {
		d := NewDisk(DiskConfig{Torn: 1}, 1)
		out, err := d.Corrupt(0, data)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(data) {
			t.Fatalf("torn write changed length: %d != %d", len(out), len(data))
		}
		diff := 0
		for i := range out {
			if out[i] != data[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("torn write flipped %d bytes, want exactly 1", diff)
		}
	})
	t.Run("input-never-mutated", func(t *testing.T) {
		orig := append([]byte(nil), data...)
		d := NewDisk(DiskConfig{ShortWrite: 0.5, Torn: 0.5}, 7)
		for i := 0; i < 64; i++ {
			_, _ = d.Corrupt(uint64(i), data)
		}
		if !bytes.Equal(orig, data) {
			t.Fatal("Corrupt mutated its input")
		}
	})
	t.Run("empty-data", func(t *testing.T) {
		d := NewDisk(DiskConfig{ShortWrite: 1, Torn: 1}, 1)
		if out, err := d.Corrupt(0, nil); err != nil || len(out) != 0 {
			t.Fatalf("empty write: out=%v err=%v", out, err)
		}
	})
}

// A nil or zero-config Disk is the fault-free fast path.
func TestDiskDisabled(t *testing.T) {
	data := []byte{1, 2, 3}
	var nilDisk *Disk
	if out, err := nilDisk.Corrupt(0, data); err != nil || &out[0] != &data[0] {
		t.Fatal("nil Disk must pass data through untouched")
	}
	d := NewDisk(DiskConfig{}, 9)
	if out, err := d.Corrupt(0, data); err != nil || &out[0] != &data[0] {
		t.Fatal("zero-config Disk must pass data through untouched")
	}
	if (DiskConfig{}).Enabled() {
		t.Fatal("zero DiskConfig reports enabled")
	}
}

// Fault rates must land near their configured probabilities.
func TestDiskRates(t *testing.T) {
	const n = 20000
	cfg := DiskConfig{ShortWrite: 0.1, Torn: 0.1, WriteErr: 0.1}
	d := NewDisk(cfg, 3)
	data := bytes.Repeat([]byte{0xff}, 64)
	var short, torn, werr int
	for i := 0; i < n; i++ {
		out, err := d.Corrupt(uint64(i), data)
		switch {
		case err != nil:
			werr++
		case len(out) < len(data):
			short++
		case !bytes.Equal(out, data):
			torn++
		}
	}
	check := func(name string, got int, p float64) {
		f := float64(got) / n
		if f < p*0.7 || f > p*1.3 {
			t.Errorf("%s rate %.3f, want ~%.3f", name, f, p)
		}
	}
	check("write-error", werr, 0.1)
	// Short and torn are drawn after the error gate, so their marginal
	// rates are p*(1-0.1) and p*(1-0.1)*(1-0.1).
	check("short-write", short, 0.1*0.9)
	check("torn-write", torn, 0.1*0.9*0.9)
}
