package fault

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// observeTrace runs n slots of random transmitter subsets against ch and
// returns a fingerprint of each observation. The transmitter schedule is
// derived from its own generator so it is identical across replays.
func observeTrace(ch channel.Channel, ids []tagid.ID, seed uint64, n int) []string {
	r := rng.New(seed)
	out := make([]string, 0, n)
	for s := 0; s < n; s++ {
		var tx []tagid.ID
		for _, id := range ids {
			if r.Float64() < 0.1 {
				tx = append(tx, id)
			}
		}
		ob := ch.Observe(tx)
		fp := ob.Kind.String()
		if ob.Kind == channel.Singleton {
			fp += ":" + ob.ID.String()
		}
		if ob.Kind == channel.Collision && ob.Mix != nil {
			if y, ok := ob.Mix.Decode(); ok {
				fp += ":decode:" + y.String()
			} else {
				fp += ":undecodable"
			}
		}
		out = append(out, fp)
	}
	return out
}

// TestChannelRewind: snapshotting the fault channel mid-run and restoring
// it replays bit-identical observations — the property the chaos harness's
// crash-restart relies on.
func TestChannelRewind(t *testing.T) {
	cfg := Config{
		Burst:            Burst{Duty: 0.2, MeanBad: 4},
		MuteProb:         0.1,
		StuckProb:        0.1,
		CorruptSingleton: 0.1,
		CorruptDecode:    0.2,
	}
	mk := func() (*Channel, []tagid.ID) {
		r := rng.New(77)
		ids := tagid.Population(r, 40)
		inner := channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r)
		fch := WrapChannel(inner, New(cfg, 13, 0))
		fch.AdmitAll(ids)
		return fch, ids
	}

	fch, ids := mk()
	_ = observeTrace(fch, ids, 1, 50) // advance
	st := fch.SnapshotState()
	want := observeTrace(fch, ids, 2, 50)
	fch.RestoreState(st)
	got := observeTrace(fch, ids, 2, 50)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d after restore: %s, want %s", i, got[i], want[i])
		}
	}

	// A snapshot survives multiple restores (the chaos harness restores the
	// same mark after every crash in a cycle).
	fch.RestoreState(st)
	again := observeTrace(fch, ids, 2, 50)
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("slot %d after second restore: %s, want %s", i, again[i], want[i])
		}
	}
}

// TestChannelRosterRewind: Admit/Revoke changes after a snapshot are rolled
// back by a restore.
func TestChannelRosterRewind(t *testing.T) {
	r := rng.New(5)
	ids := tagid.Population(r, 10)
	inner := channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r)
	fch := WrapChannel(inner, New(Config{StuckProb: 1, StuckTxProb: 1}, 1, 0))
	fch.AdmitAll(ids[:5])

	st := fch.SnapshotState()
	fch.Admit(ids[7])
	fch.Revoke(ids[0])
	fch.RestoreState(st)

	// With StuckProb 1 and StuckTxProb 1 every admitted tag transmits every
	// slot, so the roster is observable through the collision multiplicity.
	ob := fch.Observe(nil)
	if ob.Kind != channel.Collision {
		t.Fatalf("observation kind %v, want collision from stuck roster", ob.Kind)
	}
	if m := ob.Mix.Multiplicity(); m != 5 {
		t.Fatalf("stuck roster multiplicity %d after restore, want 5", m)
	}
}
