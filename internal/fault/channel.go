package fault

import (
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Channel wraps a channel model and applies the injector's channel-level
// fault shapes: muted tags are filtered out of the transmitter set, stuck
// responders are added to it, burst noise spoils whole slots, and the
// singleton/decode corruption shapes poison individual recordings.
//
// The wrapper numbers slots itself (one per Observe call) and implements
// channel.Stateful even when the inner channel does not: a session
// checkpoint captures the slot counter, the stuck-responder roster and the
// injector's acknowledgement counter, so a restored session replays the
// identical fault schedule.
type Channel struct {
	// Tracer, when non-nil, receives a FaultInjected event per fault taking
	// effect. The simulator points it at the run's Env.Tracer.
	Tracer obs.Tracer

	inner channel.Channel
	inj   *Injector

	slot uint64
	// stuck is the roster of admitted stuck responders, in admission order
	// so runs are deterministic. Muted tags never make the roster: a tag
	// that cannot transmit cannot key up out of turn either.
	stuck []tagid.ID
	txBuf []tagid.ID
}

var (
	_ channel.Channel  = (*Channel)(nil)
	_ channel.Stateful = (*Channel)(nil)
)

// WrapChannel layers the injector's channel faults over inner.
func WrapChannel(inner channel.Channel, inj *Injector) *Channel {
	return &Channel{inner: inner, inj: inj}
}

// Injector returns the injector driving this wrapper.
func (c *Channel) Injector() *Injector { return c.inj }

// Admit registers a tag entering the field, drawing its stuck-responder
// fate. Call it once per admission (sim.RunOnce admits the whole batch
// population; the chaos driver admits on arrival).
func (c *Channel) Admit(id tagid.ID) {
	if c.inj.cfg.StuckProb <= 0 || !c.inj.Stuck(id) || c.inj.Muted(id) {
		return
	}
	for _, s := range c.stuck {
		if s == id {
			return
		}
	}
	c.stuck = append(c.stuck, id)
}

// AdmitAll registers a whole population (batch runs).
func (c *Channel) AdmitAll(ids []tagid.ID) {
	for _, id := range ids {
		c.Admit(id)
	}
}

// Revoke removes a departed tag from the stuck-responder roster.
func (c *Channel) Revoke(id tagid.ID) {
	for i, s := range c.stuck {
		if s == id {
			c.stuck = append(c.stuck[:i], c.stuck[i+1:]...)
			return
		}
	}
}

func (c *Channel) emit(ev obs.FaultEvent) {
	if c.Tracer != nil {
		c.Tracer.FaultInjected(ev)
	}
}

// Observe implements channel.Channel: it edits the transmitter set (mute,
// stuck), lets the inner channel observe the edited slot, then applies the
// slot-scoped faults (burst, corruption) to the observation.
func (c *Channel) Observe(transmitters []tagid.ID) channel.Observation {
	slot := c.slot
	c.slot++

	tx := transmitters
	if c.inj.cfg.MuteProb > 0 || len(c.stuck) > 0 {
		c.txBuf = c.txBuf[:0]
		for _, id := range transmitters {
			if c.inj.cfg.MuteProb > 0 && c.inj.Muted(id) {
				c.emit(obs.FaultEvent{Slot: slot, Kind: obs.FaultMute, ID: id})
				continue
			}
			c.txBuf = append(c.txBuf, id)
		}
	stuckLoop:
		for _, id := range c.stuck {
			if !c.inj.StuckTransmits(slot, id) {
				continue
			}
			for _, t := range c.txBuf {
				if t == id {
					// Already transmitting legitimately this slot.
					continue stuckLoop
				}
			}
			c.txBuf = append(c.txBuf, id)
			c.emit(obs.FaultEvent{Slot: slot, Kind: obs.FaultStuck, ID: id})
		}
		tx = c.txBuf
	}

	ob := c.inner.Observe(tx)
	bad := c.inj.BadSlot(slot)
	switch ob.Kind {
	case channel.Singleton:
		if bad {
			c.emit(obs.FaultEvent{Slot: slot, Kind: obs.FaultBurst, ID: ob.ID})
			return channel.Observation{Kind: channel.Collision, Mix: &poisonedMixed{id: ob.ID}}
		}
		if c.inj.CorruptSingleton(slot) {
			c.emit(obs.FaultEvent{Slot: slot, Kind: obs.FaultCorruptSingleton, ID: ob.ID})
			return channel.Observation{Kind: channel.Collision, Mix: &poisonedMixed{id: ob.ID}}
		}
	case channel.Collision:
		if bad {
			c.emit(obs.FaultEvent{Slot: slot, Kind: obs.FaultBurst})
			ob.Mix = &spoiledMixed{inner: ob.Mix}
			return ob
		}
		if bit, ok := c.inj.CorruptDecodeBit(slot); ok {
			c.emit(obs.FaultEvent{Slot: slot, Kind: obs.FaultCorruptDecode})
			ob.Mix = &corruptMixed{inner: ob.Mix, bit: bit}
		}
	case channel.Captured:
		if bad {
			// The burst buries the capture margin: the strong constituent is
			// lost along with everyone else, and the recording is spoiled.
			c.emit(obs.FaultEvent{Slot: slot, Kind: obs.FaultBurst})
			return channel.Observation{Kind: channel.Collision, Mix: &spoiledMixed{inner: ob.Mix}}
		}
		if bit, ok := c.inj.CorruptDecodeBit(slot); ok {
			// The captured ID already decoded off the air; the corruption
			// lands on the stored residual.
			c.emit(obs.FaultEvent{Slot: slot, Kind: obs.FaultCorruptDecode})
			ob.Mix = &corruptMixed{inner: ob.Mix, bit: bit}
		}
	}
	return ob
}

// channelState is the wrapper's checkpointable state.
type channelState struct {
	inner any
	slot  uint64
	stuck []tagid.ID
	inj   injectorState
}

// SnapshotState implements channel.Stateful.
func (c *Channel) SnapshotState() any {
	st := channelState{slot: c.slot, inj: c.inj.snapshotState()}
	if len(c.stuck) > 0 {
		st.stuck = append([]tagid.ID(nil), c.stuck...)
	}
	if s, ok := c.inner.(channel.Stateful); ok {
		st.inner = s.SnapshotState()
	}
	return st
}

// RestoreState implements channel.Stateful.
func (c *Channel) RestoreState(state any) {
	st := state.(channelState)
	c.slot = st.slot
	c.stuck = append(c.stuck[:0], st.stuck...)
	c.inj.restoreState(st.inj)
	if s, ok := c.inner.(channel.Stateful); ok && st.inner != nil {
		s.RestoreState(st.inner)
	}
}

// poisonedMixed is the recording of a corrupted lone report: the reader
// knows a tag transmitted but the payload failed its CRC, so the record can
// never decode. It mirrors the abstract channel's corrupted-singleton
// recording, which every protocol already handles (the tag is never
// acknowledged and retries later).
type poisonedMixed struct {
	id         tagid.ID
	subtracted bool
}

var (
	_ channel.Mixed    = (*poisonedMixed)(nil)
	_ channel.Cloner   = (*poisonedMixed)(nil)
	_ channel.Residual = (*poisonedMixed)(nil)
)

func (m *poisonedMixed) Contains(id tagid.ID) bool { return id == m.id }

func (m *poisonedMixed) Subtract(id tagid.ID) {
	if id == m.id {
		m.subtracted = true
	}
}

func (m *poisonedMixed) Decode() (tagid.ID, bool) { return tagid.ID{}, false }

func (m *poisonedMixed) Multiplicity() int { return 1 }

func (m *poisonedMixed) Remaining() int {
	if m.subtracted {
		return 0
	}
	return 1
}

func (m *poisonedMixed) CloneMixed() channel.Mixed {
	c := *m
	return &c
}

// spoiledMixed wraps a collision recording taken in a burst-noise slot: the
// interference drowned the samples, so no amount of cancellation ever
// decodes it. Subtractions still forward to the inner recording so the
// residual-energy guard sees an honest count.
type spoiledMixed struct {
	inner channel.Mixed
}

var (
	_ channel.Mixed    = (*spoiledMixed)(nil)
	_ channel.Cloner   = (*spoiledMixed)(nil)
	_ channel.Residual = (*spoiledMixed)(nil)
)

func (m *spoiledMixed) Contains(id tagid.ID) bool { return m.inner.Contains(id) }

func (m *spoiledMixed) Subtract(id tagid.ID) { m.inner.Subtract(id) }

func (m *spoiledMixed) Decode() (tagid.ID, bool) { return tagid.ID{}, false }

func (m *spoiledMixed) Multiplicity() int { return m.inner.Multiplicity() }

func (m *spoiledMixed) Remaining() int {
	if r, ok := channel.Remaining(m.inner); ok {
		return r
	}
	return m.inner.Multiplicity()
}

func (m *spoiledMixed) CloneMixed() channel.Mixed {
	ci, ok := channel.CloneMixed(m.inner)
	if !ok {
		return nil
	}
	return &spoiledMixed{inner: ci}
}

// corruptMixed wraps a collision recording whose eventual decode silently
// yields a bit-flipped ID: cancellation "succeeds" but the residual was
// damaged below the CRC's notice at capture time. The flipped bit always
// breaks the CRC of the decoded ID (tagid.CorruptBit), which is exactly
// what the record store's CRC-validated cascade decode quarantines.
type corruptMixed struct {
	inner channel.Mixed
	bit   int
}

var (
	_ channel.Mixed    = (*corruptMixed)(nil)
	_ channel.Cloner   = (*corruptMixed)(nil)
	_ channel.Residual = (*corruptMixed)(nil)
)

func (m *corruptMixed) Contains(id tagid.ID) bool { return m.inner.Contains(id) }

func (m *corruptMixed) Subtract(id tagid.ID) { m.inner.Subtract(id) }

func (m *corruptMixed) Decode() (tagid.ID, bool) {
	y, ok := m.inner.Decode()
	if !ok {
		return tagid.ID{}, false
	}
	return y.CorruptBit(m.bit), true
}

func (m *corruptMixed) Multiplicity() int { return m.inner.Multiplicity() }

func (m *corruptMixed) Remaining() int {
	if r, ok := channel.Remaining(m.inner); ok {
		return r
	}
	return m.inner.Multiplicity()
}

func (m *corruptMixed) CloneMixed() channel.Mixed {
	ci, ok := channel.CloneMixed(m.inner)
	if !ok {
		return nil
	}
	return &corruptMixed{inner: ci, bit: m.bit}
}
