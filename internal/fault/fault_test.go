package fault

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func TestZeroConfigDisabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config must report Enabled() == false")
	}
	for _, c := range []Config{
		{AckLoss: 0.1},
		{Burst: Burst{Duty: 0.2}},
		{MuteProb: 0.1},
		{StuckProb: 0.1},
		{CorruptSingleton: 0.1},
		{CorruptDecode: 0.1},
		{CrashEvery: 100},
	} {
		if !c.Enabled() {
			t.Fatalf("Config %+v must report Enabled() == true", c)
		}
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	for i := 0; i < 10; i++ {
		if !inj.AckDelivered() {
			t.Fatal("nil injector must deliver every acknowledgement")
		}
	}
	if inj.ShouldCrash(100) {
		t.Fatal("nil injector must never crash")
	}
}

// TestDeterminism: the same (cfg, seed, run) triple yields the identical
// fault schedule; a different run index yields a different one.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		AckLoss:          0.2,
		Burst:            Burst{Duty: 0.15, MeanBad: 6},
		MuteProb:         0.1,
		StuckProb:        0.1,
		CorruptSingleton: 0.1,
		CorruptDecode:    0.1,
	}
	sample := func(inj *Injector) []bool {
		r := rng.New(7)
		ids := tagid.Population(r, 64)
		var out []bool
		for s := uint64(0); s < 256; s++ {
			out = append(out, inj.BadSlot(s), inj.CorruptSingleton(s), inj.AckDelivered())
			if _, ok := inj.CorruptDecodeBit(s); ok {
				out = append(out, true)
			}
		}
		for _, id := range ids {
			out = append(out, inj.Muted(id), inj.Stuck(id), inj.StuckTransmits(3, id))
		}
		return out
	}
	a := sample(New(cfg, 42, 3))
	b := sample(New(cfg, 42, 3))
	if len(a) != len(b) {
		t.Fatalf("replay length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical injectors", i)
		}
	}
	c := sample(New(cfg, 42, 4))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different run indices produced the identical fault schedule")
	}
}

// TestDrawCountIndependence: per-slot and per-tag decisions are pure
// functions of position, so querying them in any order or any number of
// times gives the same answers — the property that keeps fault schedules
// independent of how many draws the protocol under test makes.
func TestDrawCountIndependence(t *testing.T) {
	cfg := Config{Burst: Burst{Duty: 0.2}, CorruptSingleton: 0.3, MuteProb: 0.2}
	fwd := New(cfg, 9, 0)
	var bad, corrupt []bool
	for s := uint64(0); s < 1000; s++ {
		bad = append(bad, fwd.BadSlot(s))
		corrupt = append(corrupt, fwd.CorruptSingleton(s))
	}
	rev := New(cfg, 9, 0)
	for s := uint64(999); ; s-- {
		if rev.BadSlot(s) != bad[s] {
			t.Fatalf("BadSlot(%d) depends on query order", s)
		}
		if rev.CorruptSingleton(s) != corrupt[s] {
			t.Fatalf("CorruptSingleton(%d) depends on query order", s)
		}
		if s == 0 {
			break
		}
	}
	// Re-reads of already-covered slots are pure.
	for s := uint64(0); s < 1000; s += 37 {
		if fwd.BadSlot(s) != bad[s] {
			t.Fatalf("BadSlot(%d) changed on re-read", s)
		}
	}
}

// TestAckRewind: the acknowledgement counter is the injector's only
// sequential state; restoring a snapshot replays the identical fates.
func TestAckRewind(t *testing.T) {
	inj := New(Config{AckLoss: 0.3}, 5, 1)
	var fates []bool
	for i := 0; i < 50; i++ {
		fates = append(fates, inj.AckDelivered())
	}
	st := inj.snapshotState()
	var tail []bool
	for i := 0; i < 50; i++ {
		tail = append(tail, inj.AckDelivered())
	}
	inj.restoreState(st)
	if inj.Acks() != 50 {
		t.Fatalf("restore: acks = %d, want 50", inj.Acks())
	}
	for i := 0; i < 50; i++ {
		if inj.AckDelivered() != tail[i] {
			t.Fatalf("replayed ack %d has a different fate", i)
		}
	}
	_ = fates
}

// TestBurstDuty: the Gilbert-Elliott process's long-run bad fraction tracks
// the configured duty cycle.
func TestBurstDuty(t *testing.T) {
	for _, duty := range []float64{0.1, 0.3, 0.5} {
		inj := New(Config{Burst: Burst{Duty: duty, MeanBad: 8}}, 11, 0)
		const slots = 200000
		bad := 0
		for s := uint64(0); s < slots; s++ {
			if inj.BadSlot(s) {
				bad++
			}
		}
		got := float64(bad) / slots
		if got < duty*0.7 || got > duty*1.3 {
			t.Errorf("duty %.2f: measured bad fraction %.3f outside +/-30%%", duty, got)
		}
	}
	// Degenerate duties.
	if New(Config{}, 1, 0).BadSlot(10) {
		t.Error("duty 0 must never be bad")
	}
	full := New(Config{Burst: Burst{Duty: 1}}, 1, 0)
	if !full.BadSlot(10) {
		t.Error("duty 1 must always be bad")
	}
}

// TestTagFaultRates: per-ID selections hit roughly the configured fraction
// of a population and are stable per ID.
func TestTagFaultRates(t *testing.T) {
	inj := New(Config{MuteProb: 0.2, StuckProb: 0.1}, 3, 0)
	r := rng.New(99)
	ids := tagid.Population(r, 5000)
	muted, stuck := 0, 0
	for _, id := range ids {
		if inj.Muted(id) {
			muted++
		}
		if inj.Stuck(id) {
			stuck++
		}
		if inj.Muted(id) != inj.Muted(id) {
			t.Fatal("Muted not stable per ID")
		}
	}
	if f := float64(muted) / 5000; f < 0.15 || f > 0.25 {
		t.Errorf("mute fraction %.3f, want ~0.20", f)
	}
	if f := float64(stuck) / 5000; f < 0.06 || f > 0.14 {
		t.Errorf("stuck fraction %.3f, want ~0.10", f)
	}
}

func TestCorruptDecodeBit(t *testing.T) {
	inj := New(Config{CorruptDecode: 0.5}, 21, 2)
	hits := 0
	for s := uint64(0); s < 2000; s++ {
		bit, ok := inj.CorruptDecodeBit(s)
		if !ok {
			continue
		}
		hits++
		if bit < 0 || bit >= tagid.Bits {
			t.Fatalf("corrupt bit %d out of range [0,%d)", bit, tagid.Bits)
		}
		bit2, ok2 := inj.CorruptDecodeBit(s)
		if !ok2 || bit2 != bit {
			t.Fatalf("CorruptDecodeBit(%d) not stable: (%d,%v) then (%d,%v)", s, bit, ok, bit2, ok2)
		}
	}
	if hits < 800 || hits > 1200 {
		t.Errorf("corrupt decode hits %d of 2000, want ~1000", hits)
	}
}

func TestShouldCrash(t *testing.T) {
	inj := New(Config{CrashEvery: 64}, 1, 0)
	if inj.ShouldCrash(0) {
		t.Error("wall slot 0 must not crash")
	}
	if !inj.ShouldCrash(64) || !inj.ShouldCrash(128) {
		t.Error("multiples of CrashEvery must crash")
	}
	if inj.ShouldCrash(65) {
		t.Error("non-multiples must not crash")
	}
	if New(Config{}, 1, 0).ShouldCrash(64) {
		t.Error("CrashEvery 0 must never crash")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{Burst: Burst{Duty: 2}, StuckProb: 0.5}.withDefaults()
	if c.Burst.Duty != 1 {
		t.Errorf("Duty clamped to %v, want 1", c.Burst.Duty)
	}
	if c.Burst.MeanBad != 8 {
		t.Errorf("MeanBad default %v, want 8", c.Burst.MeanBad)
	}
	if c.StuckTxProb != 0.5 {
		t.Errorf("StuckTxProb default %v, want 0.5", c.StuckTxProb)
	}
}
