package fault

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// TestInjectorZeroAlloc: steady-state fault decisions are hash evaluations
// and must not allocate — the injector sits on the per-slot and per-ack hot
// paths of every faulted run. BadSlot is warmed first: the Gilbert-Elliott
// sojourn schedule grows lazily toward the highest queried slot, and only
// that growth may allocate.
func TestInjectorZeroAlloc(t *testing.T) {
	inj := New(Config{
		AckLoss:          0.2,
		Burst:            Burst{Duty: 0.2, MeanBad: 6},
		MuteProb:         0.1,
		StuckProb:        0.1,
		CorruptSingleton: 0.1,
		CorruptDecode:    0.2,
	}, 3, 0)
	ids := tagid.Population(rng.New(5), 16)
	for s := uint64(0); s < 4096; s++ {
		inj.BadSlot(s) // warm the burst schedule
	}
	var slot uint64
	allocs := testing.AllocsPerRun(1000, func() {
		inj.BadSlot(slot % 4096)
		inj.CorruptSingleton(slot)
		inj.CorruptDecodeBit(slot)
		inj.AckDelivered()
		id := ids[slot%uint64(len(ids))]
		inj.Muted(id)
		inj.Stuck(id)
		inj.StuckTransmits(slot, id)
		inj.ShouldCrash(slot)
		slot++
	})
	if allocs != 0 {
		t.Errorf("steady-state injector decisions allocate %v times per slot, want 0", allocs)
	}
}
