// Package agentsim is an independent, message-level reference
// implementation of FCAT used to differentially validate the fast
// simulator in package fcat.
//
// Where package fcat simulates from the reader's vantage point (an
// active-tag set, a member-indexed record store), this package simulates
// the protocol as deployed hardware would run it:
//
//   - every tag is an explicit state machine that hears advertisements,
//     evaluates its report hash, remembers the slot indices it transmitted
//     in, and goes quiet only when it hears its own ID or a matching
//     resolved-slot index in an acknowledgement;
//   - the reader determines a learned tag's membership in old collision
//     records by re-evaluating H(ID|j) against each record's advertised
//     threshold — the O(records) scan of the paper's Section IV-B
//     pseudo-code — rather than by the member index;
//   - collision records hold the raw constituent multiset and resolve by
//     subtraction bookkeeping written independently of package record.
//
// Under the hash transmission model with a noiseless channel both
// implementations are fully deterministic functions of the population, so
// their metrics must agree exactly; the differential test in this package
// asserts just that.
package agentsim

import (
	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/estimate"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Config parameterises the reference FCAT run; the fields mirror
// fcat.Config's defaults exactly (lambda, optimal omega, f = 30).
type Config struct {
	Lambda    int
	Omega     float64
	FrameSize int
}

func (c Config) withDefaults() Config {
	if c.Lambda < 1 {
		c.Lambda = 2
	}
	if c.Omega <= 0 {
		c.Omega = analysis.OptimalOmega(c.Lambda)
	}
	if c.FrameSize <= 0 {
		c.FrameSize = 30
	}
	return c
}

// tag is one tag's state machine.
type tag struct {
	id tagid.ID
	// active is cleared when the tag hears a positive acknowledgement.
	active bool
	// txSlots are the slot indices this tag transmitted in and has not yet
	// been acknowledged for; it compares them against resolved-slot
	// acknowledgements (Section V-A).
	txSlots []uint64
}

// pendingRecord is the reader's memory of one unresolved collision slot.
type pendingRecord struct {
	slot      uint64
	threshold uint32
	// constituents is the recorded mixed signal: in this simulation, the
	// multiset of signals still buried in it.
	constituents []tagid.ID
	multiplicity int
}

// sim carries one reference run.
type sim struct {
	cfg     Config
	timing  air.Timing
	tags    []*tag
	m       protocol.Metrics
	clock   air.Clock
	records []*pendingRecord
	known   map[tagid.ID]bool
	slot    uint64
	budget  int
}

// Run executes the reference FCAT protocol over the population. Only the
// noiseless abstract channel semantics are modelled (the differential
// test's setting); env's channel is not consulted.
func Run(env *protocol.Env, cfg Config) (protocol.Metrics, error) {
	cfg = cfg.withDefaults()
	s := &sim{
		cfg:    cfg,
		timing: env.Timing,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		known:  make(map[tagid.ID]bool, len(env.Tags)),
		budget: env.SlotBudget(),
	}
	s.tags = make([]*tag, len(env.Tags))
	for i, id := range env.Tags {
		s.tags[i] = &tag{id: id, active: true}
	}
	err := s.execute()
	s.m.OnAir = s.clock.Elapsed()
	return s.m, err
}

func (s *sim) execute() error {
	estimateN, done, err := s.bootstrap()
	if err != nil {
		return err
	}
	if done {
		return nil
	}

	var tracker estimate.Tracker
	f := s.cfg.FrameSize
	for {
		remaining := estimateN - float64(s.m.Identified())
		if remaining < 0.5 {
			empty, err := s.probe()
			if err != nil {
				return err
			}
			if empty {
				return nil
			}
			rem, emptied, err := s.reBootstrap()
			if err != nil {
				return err
			}
			if emptied {
				return nil
			}
			estimateN = float64(s.m.Identified()) + rem
			tracker = estimate.Tracker{}
			continue
		}

		p := s.cfg.Omega / remaining
		if p > 1 {
			p = 1
		}
		s.clock.Add(s.timing.FrameAdvertisement())
		identifiedBefore := s.m.Identified()
		nc, n0 := 0, 0
		for j := 0; j < f; j++ {
			kind, err := s.doSlot(p)
			if err != nil {
				return err
			}
			switch kind {
			case slotEmpty:
				n0++
			case slotCollision:
				nc++
			}
		}
		s.m.Frames++

		if n0 == f {
			empty, err := s.probe()
			if err != nil {
				return err
			}
			if empty {
				return nil
			}
			rem, emptied, err := s.reBootstrap()
			if err != nil {
				return err
			}
			if emptied {
				return nil
			}
			estimateN = float64(s.m.Identified()) + rem
			tracker = estimate.Tracker{}
			continue
		}

		frameEst, ok := s.estimateFrame(nc, n0, f-n0-nc, p)
		if !ok {
			deficit := estimateN - float64(s.m.Identified())
			if deficit < 1 {
				deficit = 1
			}
			estimateN = float64(s.m.Identified()) + 2*deficit + 1
			continue
		}
		tracker.Add(frameEst + float64(identifiedBefore))
		estimateN, _ = tracker.Mean()
	}
}

func (s *sim) estimateFrame(nc, n0, n1 int, p float64) (float64, bool) {
	if nc == 0 {
		return float64(n1) / (float64(s.cfg.FrameSize) * p), true
	}
	return estimate.Exact(nc, s.cfg.FrameSize, p)
}

// bootstrap mirrors fcat's geometric probe: single slots at p = 1/2, 1/4,
// ... until one does not collide. done reports an empty field.
func (s *sim) bootstrap() (est float64, done bool, err error) {
	p := 1.0
	for {
		p /= 2
		kind, err := s.doSlotAdvertised(p)
		if err != nil {
			return 0, false, err
		}
		if kind != slotCollision {
			if kind == slotEmpty && p == 0.5 {
				probeKind, err := s.doSlotAdvertised(1)
				if err != nil {
					return 0, false, err
				}
				if probeKind == slotEmpty {
					return 0, true, nil
				}
			}
			return 1 / p, false, nil
		}
		if p < 1e-9 {
			return 0, false, protocol.ErrNoProgress
		}
	}
}

// reBootstrap relocates the outstanding population after an answered
// termination probe, mirroring fcat's recovery.
func (s *sim) reBootstrap() (est float64, done bool, err error) {
	return s.bootstrap()
}

// probe runs one p=1 slot; empty proves termination.
func (s *sim) probe() (empty bool, err error) {
	kind, err := s.doSlotAdvertised(1)
	if err != nil {
		return false, err
	}
	return kind == slotEmpty, nil
}

type slotKind int

const (
	slotEmpty slotKind = iota + 1
	slotSingleton
	slotCollision
)

func (s *sim) doSlotAdvertised(p float64) (slotKind, error) {
	s.clock.Add(s.timing.SlotAdvertisement())
	return s.doSlot(p)
}

// doSlot runs one report+acknowledgement slot: every active tag evaluates
// the advertised threshold against its report hash and transmits.
func (s *sim) doSlot(p float64) (slotKind, error) {
	if int(s.slot) >= s.budget {
		return 0, protocol.ErrNoProgress
	}
	slot := s.slot
	s.slot++
	s.clock.Add(s.timing.Slot())

	threshold := tagid.Threshold(p)
	var transmitters []*tag
	for _, t := range s.tags {
		if t.active && t.id.Reports(slot, threshold) {
			t.txSlots = append(t.txSlots, slot)
			transmitters = append(transmitters, t)
		}
	}

	s.m.TagTransmissions += len(transmitters)
	switch len(transmitters) {
	case 0:
		s.m.EmptySlots++
		return slotEmpty, nil
	case 1:
		s.m.SingletonSlots++
		t := transmitters[0]
		if !s.known[t.id] {
			s.known[t.id] = true
			s.m.DirectIDs++
		}
		// Positive acknowledgement carrying the ID silences the tag.
		t.hearIDAck()
		s.learn(t.id)
		return slotSingleton, nil
	default:
		s.m.CollisionSlots++
		rec := &pendingRecord{
			slot:         slot,
			threshold:    threshold,
			multiplicity: len(transmitters),
		}
		for _, t := range transmitters {
			if s.known[t.id] {
				// The reader re-encodes signals it already knows and
				// subtracts them from the recording immediately.
				continue
			}
			rec.constituents = append(rec.constituents, t.id)
		}
		s.records = append(s.records, rec)
		s.resolveFixpoint()
		return slotCollision, nil
	}
}

// learn runs the Section IV-B cascade for a newly learned ID: scan every
// record, test membership by the report hash, subtract, and decode
// stripped-bare records.
func (s *sim) learn(id tagid.ID) {
	for _, rec := range s.records {
		if !id.Reports(rec.slot, rec.threshold) {
			continue
		}
		rec.remove(id)
	}
	s.resolveFixpoint()
}

// resolveFixpoint decodes records until none changes: each record with
// exactly one remaining constituent (and multiplicity within the ANC
// capability) yields that ID, which is acknowledged by its slot index and
// subtracted everywhere it appears.
func (s *sim) resolveFixpoint() {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(s.records); i++ {
			rec := s.records[i]
			if len(rec.constituents) != 1 || rec.multiplicity > s.cfg.Lambda {
				continue
			}
			id := rec.constituents[0]
			rec.constituents = nil
			if !s.known[id] {
				s.known[id] = true
				s.m.ResolvedIDs++
			}
			// Acknowledge by broadcasting the resolved record's slot index;
			// every tag that transmitted in that slot and has been learned
			// goes quiet. (Only the recovered tag matches an un-acked
			// transmission here.)
			s.clock.Add(s.timing.ResolvedIndexAck())
			for _, t := range s.tags {
				t.hearSlotIndexAck(rec.slot)
			}
			// The newly learned signal strips the other records.
			for _, other := range s.records {
				if other == rec {
					continue
				}
				if id.Reports(other.slot, other.threshold) {
					other.remove(id)
				}
			}
			changed = true
		}
		if changed {
			s.compactRecords()
		}
	}
}

// compactRecords drops spent records (resolved or fully subtracted).
func (s *sim) compactRecords() {
	kept := s.records[:0]
	for _, rec := range s.records {
		if len(rec.constituents) > 0 {
			kept = append(kept, rec)
		}
	}
	s.records = kept
}

func (r *pendingRecord) remove(id tagid.ID) {
	for i, c := range r.constituents {
		if c == id {
			r.constituents = append(r.constituents[:i], r.constituents[i+1:]...)
			return
		}
	}
}

// hearIDAck is the tag reacting to a positive acknowledgement carrying
// its own ID.
func (t *tag) hearIDAck() {
	t.active = false
	t.txSlots = nil
}

// hearSlotIndexAck is the tag reacting to a resolved-slot-index broadcast:
// if it transmitted in that slot, its ID has been collected and it stops
// participating (Section V-A).
func (t *tag) hearSlotIndexAck(slot uint64) {
	if !t.active {
		return
	}
	for _, s := range t.txSlots {
		if s == slot {
			t.active = false
			t.txSlots = nil
			return
		}
	}
}
