package agentsim

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func refEnv(tags []tagid.ID) *protocol.Env {
	return &protocol.Env{
		RNG:    rng.New(0xC0FFEE), // unused under TxHash + noiseless channel
		Tags:   tags,
		Timing: air.ICode(),
	}
}

// fastEnv builds the environment for the production fcat implementation
// under the exact (hash) transmission model and a noiseless channel, where
// the whole run is a deterministic function of the population.
func fastEnv(tags []tagid.ID, lambda int) *protocol.Env {
	r := rng.New(0xC0FFEE)
	return &protocol.Env{
		RNG:     r,
		Tags:    tags,
		Channel: channel.NewAbstract(channel.AbstractConfig{Lambda: lambda}, r),
		Timing:  air.ICode(),
		TxModel: protocol.TxHash,
	}
}

// TestDifferentialAgainstFastSimulator is the package's reason to exist:
// the independent tag-level reference implementation and the fast
// reader-centric simulator must produce byte-identical metrics on the same
// population.
func TestDifferentialAgainstFastSimulator(t *testing.T) {
	for _, tc := range []struct {
		seed   uint64
		n      int
		lambda int
	}{
		{1, 50, 2}, {2, 200, 2}, {3, 1000, 2}, {4, 777, 3}, {5, 300, 4},
		{6, 1, 2}, {7, 2, 2}, {8, 3, 3}, {9, 2500, 2},
	} {
		tags := tagid.Population(rng.New(tc.seed), tc.n)

		ref, err := Run(refEnv(tags), Config{Lambda: tc.lambda})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", tc.seed, err)
		}
		fast, err := fcat.New(fcat.Config{Lambda: tc.lambda}).Run(fastEnv(tags, tc.lambda))
		if err != nil {
			t.Fatalf("seed %d: fast: %v", tc.seed, err)
		}
		if ref != fast {
			t.Errorf("seed %d N=%d lambda=%d: implementations diverge\nreference: %+v\nfast:      %+v",
				tc.seed, tc.n, tc.lambda, ref, fast)
		}
	}
}

func TestReferenceCompletes(t *testing.T) {
	tags := tagid.Population(rng.New(42), 800)
	m, err := Run(refEnv(tags), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 800 {
		t.Fatalf("identified %d of 800", m.Identified())
	}
	if m.ResolvedIDs == 0 {
		t.Fatal("no IDs recovered from collision records")
	}
}

func TestReferenceEmptyField(t *testing.T) {
	m, err := Run(refEnv(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 0 || m.TotalSlots() > 4 {
		t.Fatalf("empty field: %+v", m)
	}
}

func TestReferenceDeterminism(t *testing.T) {
	tags := tagid.Population(rng.New(5), 400)
	a, err := Run(refEnv(tags), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(refEnv(tags), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("reference implementation is not deterministic")
	}
}
