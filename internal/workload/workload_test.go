package workload

import (
	"reflect"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// newEnv builds a fresh deterministic environment for one dynamic run.
func newEnv(seed uint64, tags int) (*protocol.Env, *rng.Source) {
	r := rng.New(seed)
	pop := tagid.Population(r, tags)
	wl := r.Split()
	env := &protocol.Env{
		RNG:     r,
		Tags:    pop,
		Channel: channel.NewAbstract(channel.AbstractConfig{Lambda: 2}, r),
		Timing:  air.ICode(),
		TxModel: protocol.TxBinomial,
	}
	return env, wl
}

// TestConveyorAccounting checks the total population accounting of a
// conveyor run: every admitted tag ends identified, departed-unread, or
// still-active, and the per-tag records agree with the aggregate counters.
func TestConveyorAccounting(t *testing.T) {
	env, wl := newEnv(7, 10)
	p := fcat.New(fcat.Config{Lambda: 2})
	rep, err := Run(p, env, wl, Conveyor(80, 500*time.Millisecond, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != len(rep.Tags) {
		t.Fatalf("Admitted=%d but %d records", rep.Admitted, len(rep.Tags))
	}
	if got := rep.Identified + rep.DepartedUnread + rep.ActiveUnread; got != rep.Admitted {
		t.Fatalf("accounting leak: identified %d + missed %d + active %d = %d, admitted %d",
			rep.Identified, rep.DepartedUnread, rep.ActiveUnread, got, rep.Admitted)
	}
	if rep.Admitted < 200 {
		t.Fatalf("expected ~400 arrivals over 5s at 80/s, got %d", rep.Admitted)
	}
	var idf, missed, active int
	for _, rec := range rep.Tags {
		switch {
		case rec.Identified:
			idf++
			if rec.IdentifiedAt < rec.ArrivedAt {
				t.Fatalf("tag %v identified at %v before arrival %v", rec.ID, rec.IdentifiedAt, rec.ArrivedAt)
			}
		case rec.Departed:
			missed++
			if rec.DepartedAt < rec.ArrivedAt {
				t.Fatalf("tag %v departed at %v before arrival %v", rec.ID, rec.DepartedAt, rec.ArrivedAt)
			}
		default:
			active++
		}
	}
	if idf != rep.Identified || missed != rep.DepartedUnread || active != rep.ActiveUnread {
		t.Fatalf("record tally (%d,%d,%d) disagrees with counters (%d,%d,%d)",
			idf, missed, active, rep.Identified, rep.DepartedUnread, rep.ActiveUnread)
	}
	if rep.Metrics.Tags != rep.Admitted {
		t.Fatalf("Metrics.Tags=%d, want every admitted tag counted (%d)", rep.Metrics.Tags, rep.Admitted)
	}
	if rep.Duration < 5*time.Second {
		t.Fatalf("run stopped at %v, before the 5s horizon", rep.Duration)
	}
}

// TestRunDeterminism re-runs the identical configuration and expects the
// byte-identical report.
func TestRunDeterminism(t *testing.T) {
	cfg := Config{Duration: 2 * time.Second, ArrivalRate: 50, DepartureRate: 0.2, Burst: 3}
	env1, wl1 := newEnv(11, 5)
	rep1, err1 := Run(fcat.New(fcat.Config{Lambda: 2}), env1, wl1, cfg)
	env2, wl2 := newEnv(11, 5)
	rep2, err2 := Run(fcat.New(fcat.Config{Lambda: 2}), env2, wl2, cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("same seed produced different reports")
	}
}

// TestCheckpointCadence checks periodic snapshots are taken and counted.
func TestCheckpointCadence(t *testing.T) {
	env, wl := newEnv(3, 20)
	cfg := Config{Duration: 2 * time.Second, ArrivalRate: 20, CheckpointEvery: 250 * time.Millisecond}
	rep, err := Run(fcat.New(fcat.Config{Lambda: 2}), env, wl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checkpoints < 4 {
		t.Fatalf("expected at least 4 checkpoints over 2s at 250ms cadence, got %d", rep.Checkpoints)
	}
}

// TestPortalMissedReads drives a portal with dwell far shorter than the
// identification capacity allows, so some tags must depart unread — the
// missed-read accounting has to catch them.
func TestPortalMissedReads(t *testing.T) {
	env, wl := newEnv(5, 0)
	cfg := Portal(40, 2, 30*time.Millisecond, 3*time.Second)
	rep, err := Run(fcat.New(fcat.Config{Lambda: 2}), env, wl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DepartedUnread == 0 {
		t.Fatalf("expected missed reads with 30ms mean dwell and 80 tags/s offered, got none (admitted %d, identified %d)",
			rep.Admitted, rep.Identified)
	}
	if got := rep.Identified + rep.DepartedUnread + rep.ActiveUnread; got != rep.Admitted {
		t.Fatalf("accounting leak under departures: %d != %d", got, rep.Admitted)
	}
}

// TestPercentile pins the nearest-rank definition.
func TestPercentile(t *testing.T) {
	lat := []time.Duration{40, 10, 20, 30}
	if got := Percentile(lat, 50); got != 20 {
		t.Fatalf("p50 = %v, want 20", got)
	}
	if got := Percentile(lat, 100); got != 40 {
		t.Fatalf("p100 = %v, want 40", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
}
