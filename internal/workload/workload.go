// Package workload drives a protocol session over a dynamic tag
// population: tags arrive while the reader runs (conveyor belts, dock
// doors) and depart again after a dwell time, identified or not. It is the
// continuous-inventory layer the paper's motivating deployments imply —
// the collision-recovery literature (Ricciato & Castiglione; Fyhn et al.)
// evaluates exactly such continuous reading regimes.
//
// The driver owns a dedicated RNG for the arrival and dwell draws, kept
// separate from the protocol's generator so the workload schedule of a
// given seed is one fixed script: the protocol consumes its own stream
// exactly as a batch run would, and the schedule does not shift when the
// protocol's draw count changes.
package workload

import (
	"container/heap"
	"math"
	"sort"
	"time"

	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Config describes one dynamic-population run.
type Config struct {
	// Duration is the simulated time horizon; the session steps until its
	// air clock passes it. Required (> 0).
	Duration time.Duration
	// ArrivalRate is the mean arrival-epoch rate in epochs per second
	// (Poisson process; exponential inter-arrival times). 0 disables
	// arrivals.
	ArrivalRate float64
	// Burst is the number of tags admitted per arrival epoch — 1 models a
	// conveyor of single items, larger values model pallets through a dock
	// portal. Defaults to 1.
	Burst int
	// Dwell is a fixed in-field residence time per tag (conveyor past a
	// fixed antenna). 0 means no fixed dwell.
	Dwell time.Duration
	// DepartureRate is a per-tag exponential departure hazard in 1/s,
	// applied on top of (or instead of) Dwell; whichever departure comes
	// first wins. 0 disables it.
	DepartureRate float64
	// CheckpointEvery, when positive, snapshots the session at that
	// simulated-time cadence and emits a SessionCheckpoint event per
	// snapshot — the long-running reader-service pattern.
	CheckpointEvery time.Duration
}

// withDefaults normalises the zero values.
func (c Config) withDefaults() Config {
	if c.Burst <= 0 {
		c.Burst = 1
	}
	return c
}

// Conveyor is a single-item belt: tags arrive one at a time at rate
// tags/s and stay in the field for dwell before moving out of range.
func Conveyor(rate float64, dwell, duration time.Duration) Config {
	return Config{Duration: duration, ArrivalRate: rate, Burst: 1, Dwell: dwell}
}

// Portal is a dock-door scenario: pallets of burst tags arrive at
// epochRate pallets/s and each tag leaves after an exponential dwell with
// the given mean.
func Portal(burst int, epochRate float64, meanDwell, duration time.Duration) Config {
	var hazard float64
	if meanDwell > 0 {
		hazard = 1 / meanDwell.Seconds()
	}
	return Config{Duration: duration, ArrivalRate: epochRate, Burst: burst, DepartureRate: hazard}
}

// TagRecord is the lifecycle of one tag through a dynamic run.
type TagRecord struct {
	ID tagid.ID
	// ArrivedAt is the simulated time the tag entered the field (0 for the
	// initial population).
	ArrivedAt time.Duration
	// IdentifiedAt is the simulated time the reader collected the ID;
	// meaningful only when Identified.
	IdentifiedAt time.Duration
	// DepartedAt is the simulated time the tag left the field; meaningful
	// only when Departed.
	DepartedAt time.Duration
	Identified bool
	Departed   bool
}

// Latency returns the arrival-to-identification latency; 0 when the tag
// was never identified.
func (t TagRecord) Latency() time.Duration {
	if !t.Identified {
		return 0
	}
	return t.IdentifiedAt - t.ArrivedAt
}

// Report aggregates one dynamic run. The population accounting is total:
// Admitted == Identified + DepartedUnread + ActiveUnread, so every
// admitted tag is either identified or explicitly still in the field at
// cutoff (or provably missed).
type Report struct {
	Protocol string
	// Metrics are the session's protocol metrics at cutoff (Tags counts
	// every tag ever admitted).
	Metrics protocol.Metrics
	// Tags holds one record per admitted tag, in admission order.
	Tags []TagRecord

	// Admitted counts every tag that entered the field (initial population
	// included).
	Admitted int
	// Identified counts tags the reader collected before cutoff.
	Identified int
	// DepartedUnread counts missed reads: tags that left the field without
	// being identified.
	DepartedUnread int
	// ActiveUnread counts tags still in the field and not yet identified
	// at cutoff.
	ActiveUnread int
	// Checkpoints counts the session snapshots taken.
	Checkpoints int
	// Duration is the simulated air time actually consumed (>= the
	// configured horizon unless the run errored).
	Duration time.Duration
}

// Latencies returns the identification latencies of all identified tags,
// in admission order.
func (r *Report) Latencies() []time.Duration {
	out := make([]time.Duration, 0, r.Identified)
	for _, t := range r.Tags {
		if t.Identified {
			out = append(out, t.Latency())
		}
	}
	return out
}

// Percentile returns the nearest-rank p-th percentile (0 < p <= 100) of
// the given latencies; 0 for an empty set.
func Percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// departure is one scheduled departure, ordered by time then by admission
// sequence so equal times resolve deterministically.
type departure struct {
	at  time.Duration
	seq int // index into Report.Tags
}

type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h departureHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// exp draws an exponential deviate with the given rate (events per
// second) from wl.
func exp(wl *rng.Source, rate float64) time.Duration {
	u := wl.Float64()
	return time.Duration(-math.Log(1-u) / rate * float64(time.Second))
}

// Exp draws an exponential deviate with the given rate (events per second)
// from wl — the same draw the arrival and dwell schedules use. Exported for
// the fleet scheduler (internal/fleet), whose inter-zone migration dwell
// times must match the single-reader workload's distribution exactly.
func Exp(wl *rng.Source, rate float64) time.Duration {
	return exp(wl, rate)
}

// Run drives a session of p over env's initial population with the
// dynamic schedule cfg, drawing arrival times, burst IDs and dwell times
// from wl (a stream independent of env.RNG — see the package comment).
// The session steps until its air clock passes cfg.Duration; arrivals,
// departures and checkpoints due at or before the current air time are
// delivered between steps. On error (e.g. protocol.ErrNoProgress) the
// partially accumulated Report is still returned.
func Run(p protocol.SessionProtocol, env *protocol.Env, wl *rng.Source, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if env.MaxSlots == 0 {
		// The batch default (200N + 10k) does not scale with the horizon;
		// budget four slot-times per unit of simulated time plus headroom.
		env.MaxSlots = int(4*cfg.Duration/env.Timing.Slot()) + 10000
	}

	rep := Report{Protocol: p.Name()}
	index := make(map[tagid.ID]int, len(env.Tags)) // ID -> seq in rep.Tags
	present := 0                                   // admitted and not departed

	// Identifications are reported through the env callback; the driver
	// stamps them with the post-step clock so latency is measured at slot
	// granularity.
	var pendingIdent []tagid.ID
	prevIdent := env.OnIdentified
	env.OnIdentified = func(id tagid.ID, viaResolution bool) {
		if prevIdent != nil {
			prevIdent(id, viaResolution)
		}
		pendingIdent = append(pendingIdent, id)
	}

	var departures departureHeap
	admit := func(id tagid.ID, at time.Duration) {
		seq := len(rep.Tags)
		rep.Tags = append(rep.Tags, TagRecord{ID: id, ArrivedAt: at})
		index[id] = seq
		rep.Admitted++
		present++
		due := time.Duration(math.MaxInt64)
		if cfg.Dwell > 0 {
			due = at + cfg.Dwell
		}
		if cfg.DepartureRate > 0 {
			if d := at + exp(wl, cfg.DepartureRate); d < due {
				due = d
			}
		}
		if due <= cfg.Duration {
			heap.Push(&departures, departure{at: due, seq: seq})
		}
	}

	// The initial population is admitted at t=0 through env.Tags (Begin
	// reads it), so only its lifecycle bookkeeping happens here.
	for _, id := range env.Tags {
		admit(id, 0)
	}

	s := p.Begin(env)

	var nextArrival time.Duration = -1
	if cfg.ArrivalRate > 0 {
		nextArrival = exp(wl, cfg.ArrivalRate)
	}
	nextCheckpoint := cfg.CheckpointEvery

	var runErr error
	for {
		now := s.Elapsed()

		// Stamp identifications from the last step.
		for _, id := range pendingIdent {
			seq, ok := index[id]
			if !ok || rep.Tags[seq].Identified {
				continue
			}
			rep.Tags[seq].Identified = true
			rep.Tags[seq].IdentifiedAt = now
			rep.Identified++
		}
		pendingIdent = pendingIdent[:0]

		// Deliver every scheduled event due at or before the air clock, in
		// time order (departures and arrivals interleaved).
		for {
			depDue := len(departures) > 0 && departures[0].at <= now
			arrDue := nextArrival >= 0 && nextArrival <= now && nextArrival <= cfg.Duration
			switch {
			case depDue && (!arrDue || departures[0].at <= nextArrival):
				d := heap.Pop(&departures).(departure)
				rec := &rep.Tags[d.seq]
				rec.Departed = true
				rec.DepartedAt = d.at
				present--
				s.Revoke([]tagid.ID{rec.ID})
				env.TraceDeparture(obs.DepartureEvent{ID: rec.ID, At: d.at, Identified: rec.Identified})
			case arrDue:
				at := nextArrival
				for i := 0; i < cfg.Burst; i++ {
					id := tagid.Random(wl)
					if _, dup := index[id]; dup {
						continue // 96-bit collision; vanishingly rare
					}
					admit(id, at)
					s.Admit([]tagid.ID{id})
					env.TraceArrival(obs.ArrivalEvent{ID: id, At: at, Active: present})
				}
				nextArrival = at + exp(wl, cfg.ArrivalRate)
			default:
			}
			if !depDue && !arrDue {
				break
			}
		}

		if now >= cfg.Duration {
			break
		}
		if cfg.CheckpointEvery > 0 && now >= nextCheckpoint {
			if _, err := s.Snapshot(); err == nil {
				env.TraceCheckpoint(obs.CheckpointEvent{
					Seq:        rep.Checkpoints,
					At:         now,
					Active:     s.Outstanding(),
					Identified: s.Metrics().Identified(),
				})
				rep.Checkpoints++
			}
			for nextCheckpoint <= now {
				nextCheckpoint += cfg.CheckpointEvery
			}
		}

		if _, err := s.Step(); err != nil {
			runErr = err
			break
		}
	}

	rep.Metrics = s.Metrics()
	rep.Duration = s.Elapsed()
	for i := range rep.Tags {
		t := &rep.Tags[i]
		if t.Departed && !t.Identified {
			rep.DepartedUnread++
		}
		if !t.Departed && !t.Identified {
			rep.ActiveUnread++
		}
	}
	return rep, runErr
}
