// Package plot renders simple ASCII line charts, used by cmd/tables to
// draw the paper's figures directly in the terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the series into a width x height character grid with
// axes and a legend. Series with mismatched X/Y lengths are an error.
func Render(w io.Writer, title string, series []Series, width, height int) error {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 20
	}
	var (
		minX, maxX = math.Inf(1), math.Inf(-1)
		minY, maxY = math.Inf(1), math.Inf(-1)
		points     int
	)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return fmt.Errorf("plot: nothing to draw")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-row][col] = mark
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	yLabelW := 8
	for r, line := range grid {
		label := strings.Repeat(" ", yLabelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.4g", yLabelW, maxY)
		case height - 1:
			label = fmt.Sprintf("%*.4g", yLabelW, minY)
		case (height - 1) / 2:
			label = fmt.Sprintf("%*.4g", yLabelW, (minY+maxY)/2)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", yLabelW), width/2, minX, width-width/2, maxX); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s  legend: %s\n\n", strings.Repeat(" ", yLabelW), strings.Join(legend, "   "))
	return err
}
