package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var sb strings.Builder
	err := Render(&sb, "demo", []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "* a", "+ b", "legend:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("markers not drawn")
	}
}

func TestRenderAxisLabels(t *testing.T) {
	var sb strings.Builder
	err := Render(&sb, "t", []Series{{Name: "s", X: []float64{10, 20}, Y: []float64{100, 200}}}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"200", "100", "10", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("axis label %q missing:\n%s", want, out)
		}
	}
}

func TestRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, "t", nil, 40, 10); err == nil {
		t.Fatal("empty chart should error")
	}
	if err := Render(&sb, "t", []Series{{Name: "s", X: []float64{1}, Y: nil}}, 40, 10); err == nil {
		t.Fatal("mismatched series should error")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	var sb strings.Builder
	// A single point (zero x and y span) must not divide by zero.
	if err := Render(&sb, "t", []Series{{Name: "s", X: []float64{5}, Y: []float64{7}}}, 40, 10); err != nil {
		t.Fatal(err)
	}
}

func TestRenderClampsTinyDimensions(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, "t", []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(sb.String(), "\n")) < 10 {
		t.Fatal("tiny dimensions should be clamped to usable defaults")
	}
}

func TestManySeriesCycleMarkers(t *testing.T) {
	var sb strings.Builder
	series := make([]Series, 8)
	for i := range series {
		series[i] = Series{Name: string(rune('a' + i)), X: []float64{0, 1}, Y: []float64{float64(i), float64(i + 1)}}
	}
	if err := Render(&sb, "t", series, 40, 12); err != nil {
		t.Fatal(err)
	}
}
