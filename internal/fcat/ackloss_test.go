package fcat

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func TestAckLossStillCompletes(t *testing.T) {
	for _, pLoss := range []float64{0.1, 0.3, 0.6} {
		e := env(30, 500, channel.AbstractConfig{Lambda: 2})
		e.PAckLoss = pLoss
		m := mustRun(t, Config{Lambda: 2}, e)
		if m.Identified() != 500 {
			t.Fatalf("PAckLoss=%v: identified %d of 500", pLoss, m.Identified())
		}
	}
}

func TestAckLossNoDoubleCounting(t *testing.T) {
	e := env(31, 400, channel.AbstractConfig{Lambda: 2})
	e.PAckLoss = 0.5
	counts := make(map[tagid.ID]int)
	e.OnIdentified = func(id tagid.ID, _ bool) { counts[id]++ }
	m := mustRun(t, Config{Lambda: 2}, e)
	if m.Identified() != 400 {
		t.Fatalf("identified %d", m.Identified())
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("tag %v counted %d times", id, c)
		}
	}
}

func TestAckLossCostsSlots(t *testing.T) {
	clean := mustRun(t, Config{Lambda: 2}, env(32, 1000, channel.AbstractConfig{Lambda: 2}))
	lossy := func() int {
		e := env(32, 1000, channel.AbstractConfig{Lambda: 2})
		e.PAckLoss = 0.5
		return mustRun(t, Config{Lambda: 2}, e).TotalSlots()
	}()
	if lossy <= clean.TotalSlots() {
		t.Fatalf("losing half the acks should cost slots: %d vs %d", lossy, clean.TotalSlots())
	}
}
